"""Tests for sized vectors and the functional program DSL."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.functional import Input, KernelSpec, Map, Parallelism, Program, Reshape, Vect
from repro.functional.program import TupleValue
from repro.ir import ScalarType

UI32 = ScalarType.uint(32)


def make_saxpy_kernel():
    """A trivially simple elemental kernel: y = 3*x + b."""

    def golden(components):
        return {"y": 3 * components["x"] + components["b"]}

    def build(fb, streams):
        t = fb.mul(UI32, streams["x"], 3)
        fb.add(UI32, t, streams["b"], result="y")

    return KernelSpec(
        name="saxpy",
        element_type=UI32,
        inputs=["x", "b"],
        outputs=["y"],
        golden=golden,
        build_datapath=build,
        ops_per_item=2,
    )


class TestVect:
    def test_construction_and_size(self):
        v = Vect.of(np.arange(12))
        assert v.size == 12
        assert v.shape == (12,)
        assert v.ndim == 1

    def test_reshape_preserves_order_and_size(self):
        v = Vect.of(np.arange(12))
        r = v.reshape_to(3)
        assert r.shape == (3, 4)
        assert r.size == 12
        assert np.array_equal(r.nested()[1], [4, 5, 6, 7])
        assert np.array_equal(r.flatten().data, v.data)

    def test_reshape_invalid(self):
        v = Vect.of(np.arange(10))
        with pytest.raises(ValueError):
            v.reshape_to(3)
        with pytest.raises(ValueError):
            v.reshape_to(0)

    def test_rows(self):
        v = Vect.of(np.arange(8)).reshape_to(2)
        rows = v.rows()
        assert len(rows) == 2
        assert np.array_equal(rows[1].data, [4, 5, 6, 7])

    def test_map(self):
        v = Vect.of(np.arange(4))
        doubled = v.map(lambda x: 2 * x)
        assert np.array_equal(doubled.data, [0, 2, 4, 6])
        assert doubled.shape == v.shape

    def test_map_non_vectorised_function(self):
        v = Vect.of(np.arange(4))
        out = v.map(lambda x: int(x) + 1 if np.isscalar(x) or x.ndim == 0 else (_ for _ in ()).throw(TypeError()))
        assert np.array_equal(out.data, [1, 2, 3, 4])

    def test_equality(self):
        assert Vect.of([1, 2, 3]) == Vect.of([1, 2, 3])
        assert Vect.of([1, 2, 3]) != Vect.of([1, 2, 3]).reshape_to(3)

    def test_invalid_shape(self):
        with pytest.raises(ValueError):
            Vect(np.arange(4), (5,))
        with pytest.raises(ValueError):
            Vect(np.arange(4), ())

    @given(
        n_divisor=st.sampled_from([(12, 3), (100, 10), (64, 8), (30, 5), (7, 7)]),
        seed=st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=30, deadline=None)
    def test_reshape_roundtrip_property(self, n_divisor, seed):
        n, d = n_divisor
        rng = np.random.default_rng(seed)
        v = Vect.of(rng.integers(0, 100, n))
        assert np.array_equal(v.reshape_to(d).flatten().data, v.data)


class TestTupleValue:
    def test_mismatched_shapes_rejected(self):
        with pytest.raises(ValueError):
            TupleValue({"a": Vect.of([1, 2]), "b": Vect.of([1, 2, 3])})

    def test_reshape_and_rows(self):
        t = TupleValue({"a": Vect.of(np.arange(6)), "b": Vect.of(np.arange(6) * 10)})
        r = t.reshape_to(2)
        rows = r.rows()
        assert len(rows) == 2
        assert np.array_equal(rows[1].flat()["b"], [30, 40, 50])


class TestProgram:
    def test_baseline_evaluation(self):
        kernel = make_saxpy_kernel()
        program = Program.baseline(kernel, size=8)
        x = np.arange(8)
        b = np.full(8, 5)
        out = program.evaluate({"x": x, "b": b})
        assert np.array_equal(out["y"], 3 * x + 5)

    def test_kernel_and_input_accessors(self):
        kernel = make_saxpy_kernel()
        program = Program.baseline(kernel, size=8)
        assert program.kernel() is kernel
        assert program.input().size == 8
        assert program.lanes() == 1
        assert program.parallelism_chain() == [Parallelism.PIPE]

    def test_input_size_checked(self):
        kernel = make_saxpy_kernel()
        program = Program.baseline(kernel, size=8)
        with pytest.raises(ValueError):
            program.evaluate({"x": np.arange(4), "b": np.arange(4)})

    def test_nested_map_rowwise(self):
        kernel = make_saxpy_kernel()
        reshaped = Reshape(Input("pps", 8), 2)
        program = Program(Map(kernel, reshaped, Parallelism.PAR, nesting=2))
        x = np.arange(8)
        b = np.zeros(8, dtype=int)
        out = program.evaluate({"x": x, "b": b})
        assert np.array_equal(out["y"], 3 * x)
        assert program.lanes() == 2

    def test_golden_validation(self):
        kernel = make_saxpy_kernel()
        with pytest.raises(ValueError, match="missing input"):
            kernel.apply_golden({"x": np.arange(4)})
        with pytest.raises(ValueError, match="differ in size"):
            kernel.apply_golden({"x": np.arange(4), "b": np.arange(5)})

    def test_words_per_item(self):
        assert make_saxpy_kernel().words_per_item == 3
