"""Tests for type transformations and lowering to TyTra-IR."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compiler import TybecCompiler
from repro.functional import (
    Program,
    TransformationError,
    enumerate_lane_variants,
    lower_program,
    reshape_transform,
    verify_variant_equivalence,
)
from repro.functional.typetrans import valid_lane_counts
from repro.ir import print_module, validate_module
from repro.ir.functions import FunctionKind
from repro.models import KernelInstance, NDRange

from tests.functional.test_vector_program import make_saxpy_kernel


@pytest.fixture
def baseline():
    return Program.baseline(make_saxpy_kernel(), size=24)


def bindings(n=24, seed=0):
    rng = np.random.default_rng(seed)
    return {"x": rng.integers(0, 1000, n), "b": rng.integers(0, 1000, n)}


class TestReshapeTransform:
    def test_transform_creates_par_over_pipe(self, baseline):
        variant = reshape_transform(baseline, 4)
        assert variant.lanes() == 4
        assert variant.name.endswith("_l4")

    def test_lane_one_stays_pipeline(self, baseline):
        variant = reshape_transform(baseline, 1)
        assert variant.lanes() == 1

    def test_invalid_lane_counts(self, baseline):
        with pytest.raises(TransformationError):
            reshape_transform(baseline, 5)  # does not divide 24
        with pytest.raises(TransformationError):
            reshape_transform(baseline, 0)

    def test_only_baseline_programs_transformable(self, baseline):
        variant = reshape_transform(baseline, 2)
        with pytest.raises(TransformationError):
            reshape_transform(variant, 2)

    def test_valid_lane_counts(self):
        assert valid_lane_counts(24, max_lanes=8) == [1, 2, 3, 4, 6, 8]
        assert valid_lane_counts(7) == [1, 7]
        with pytest.raises(TransformationError):
            valid_lane_counts(0)

    def test_enumerate_variants(self, baseline):
        variants = enumerate_lane_variants(baseline, max_lanes=6)
        assert set(variants) == {1, 2, 3, 4, 6}
        assert all(v.lanes() == lanes for lanes, v in variants.items())

    def test_enumerate_with_explicit_candidates(self, baseline):
        variants = enumerate_lane_variants(baseline, candidate_lanes=[2, 5, 8])
        assert set(variants) == {2, 8}

    def test_enumerate_no_valid_candidates(self, baseline):
        with pytest.raises(TransformationError):
            enumerate_lane_variants(baseline, candidate_lanes=[5, 7])

    def test_equivalence_of_variants(self, baseline):
        data = bindings()
        for lanes in (1, 2, 3, 4, 6, 8, 12, 24):
            variant = reshape_transform(baseline, lanes)
            assert verify_variant_equivalence(baseline, variant, data)

    @given(
        lanes=st.sampled_from([1, 2, 3, 4, 6, 8, 12, 24]),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=30, deadline=None)
    def test_equivalence_property(self, lanes, seed):
        base = Program.baseline(make_saxpy_kernel(), size=24)
        variant = reshape_transform(base, lanes)
        assert verify_variant_equivalence(base, variant, bindings(seed=seed))

    def test_equivalence_detects_differences(self, baseline):
        """The check must actually fail for a program that computes
        something different."""
        broken_kernel = make_saxpy_kernel()
        broken_kernel.golden = lambda c: {"y": 2 * c["x"] + c["b"]}
        broken = Program.baseline(broken_kernel, size=24)
        assert not verify_variant_equivalence(baseline, broken, bindings())


class TestLowering:
    def test_lower_baseline(self, baseline):
        module = lower_program(baseline, grid=(24,))
        validate_module(module)
        assert module.has_function("saxpy_pe")
        pe = module.get_function("saxpy_pe")
        assert pe.kind is FunctionKind.PIPE
        assert pe.instruction_count() == 2
        assert len(module.stream_objects) == 3  # x, b in; y out
        assert module.entry.calls()[0].callee == "saxpy_pe"

    def test_lower_four_lanes_matches_figure14(self, baseline):
        variant = reshape_transform(baseline, 4)
        module = lower_program(variant, grid=(24,))
        validate_module(module)
        wrapper = module.get_function("saxpy_lanes")
        assert wrapper.kind is FunctionKind.PAR
        assert len(wrapper.calls()) == 4
        # one stream object per lane per array
        assert len(module.stream_objects) == 3 * 4
        text = print_module(module)
        assert text.count("call @saxpy_pe") == 4

    def test_lowered_module_costs(self, baseline):
        variant = reshape_transform(baseline, 2)
        module = lower_program(variant, grid=(24,))
        compiler = TybecCompiler()
        report = compiler.cost(module, KernelInstance("saxpy", NDRange((24,)), repetitions=10))
        assert report.ekit > 0
        assert report.resources.structure.lanes == 2

    def test_lane_count_respected_in_structure(self, baseline):
        from repro.cost.resource_model import ModuleStructure

        for lanes in (1, 2, 4, 8):
            module = lower_program(reshape_transform(baseline, lanes), grid=(24,))
            assert ModuleStructure.from_module(module).lanes == lanes

    def test_grid_constants_recorded(self, baseline):
        module = lower_program(baseline, grid=(4, 3, 2))
        assert module.constants["ND1"] == 4
        assert module.constants["ND2"] == 3
        assert module.constants["ND3"] == 2
