"""Tests for the TyTra-IR validator."""

import pytest

from repro.ir import (
    IRBuilder,
    IRValidationError,
    ScalarType,
    parse_module,
    validate_module,
)
from repro.ir.functions import IRFunction, MemoryObject, Module, PortDeclaration, StreamObject
from repro.ir.instructions import CallInstruction, Instruction, OffsetInstruction, Operand
from repro.ir.validator import validate_function

UI18 = ScalarType.uint(18)


def make_leaf(name="f0", body=None, args=None, kind="pipe"):
    return IRFunction(
        name=name,
        kind=kind,
        args=args if args is not None else [(UI18, "p")],
        body=body or [],
    )


def make_module(*funcs, main_calls=("f0",)):
    m = Module(name="t")
    for f in funcs:
        m.add_function(f)
    main = IRFunction(name="main", kind="none")
    for callee in main_calls:
        main.body.append(CallInstruction(callee=callee, args=["p"], kind="pipe"))
    m.add_function(main)
    return m


class TestFunctionRules:
    def test_comb_may_not_call(self):
        f = make_leaf(kind="comb", body=[CallInstruction("g")])
        with pytest.raises(IRValidationError, match="comb"):
            validate_function(f)

    def test_comb_may_not_offset(self):
        f = make_leaf(kind="comb", body=[OffsetInstruction("x", UI18, "p", 1)])
        with pytest.raises(IRValidationError, match="comb"):
            validate_function(f)

    def test_par_may_not_compute(self):
        f = make_leaf(
            kind="par",
            body=[Instruction("1", UI18, "add", [Operand.ssa("p"), Operand.const(1)])],
        )
        with pytest.raises(IRValidationError, match="par"):
            validate_function(f)

    def test_par_must_call(self):
        f = make_leaf(kind="par", body=[])
        with pytest.raises(IRValidationError, match="must call"):
            validate_function(f)

    def test_seq_must_call(self):
        f = make_leaf(kind="seq", body=[])
        with pytest.raises(IRValidationError):
            validate_function(f)


class TestSSARules:
    def test_use_before_def_rejected(self):
        f = make_leaf(
            body=[Instruction("1", UI18, "add", [Operand.ssa("nope"), Operand.const(1)])]
        )
        with pytest.raises(IRValidationError, match="undefined value"):
            validate_function(f)

    def test_double_definition_rejected(self):
        body = [
            Instruction("x", UI18, "add", [Operand.ssa("p"), Operand.const(1)]),
            Instruction("x", UI18, "add", [Operand.ssa("p"), Operand.const(2)]),
        ]
        with pytest.raises(IRValidationError, match="more than once"):
            validate_function(make_leaf(body=body))

    def test_wrong_arity_rejected(self):
        body = [Instruction("x", UI18, "add", [Operand.ssa("p")])]
        with pytest.raises(IRValidationError, match="expects 2 operands"):
            validate_function(make_leaf(body=body))

    def test_global_accumulator_may_be_read_and_written(self):
        body = [
            Instruction(
                "acc", UI18, "add", [Operand.ssa("p"), Operand.global_("acc")],
                result_is_global=True,
            )
        ]
        validate_function(make_leaf(body=body))

    def test_offset_source_must_be_argument(self):
        body = [
            Instruction("x", UI18, "add", [Operand.ssa("p"), Operand.const(1)]),
            OffsetInstruction("y", UI18, "x", 1),
        ]
        with pytest.raises(IRValidationError, match="must be a function argument"):
            validate_function(make_leaf(body=body))

    def test_offset_type_must_match_stream(self):
        body = [OffsetInstruction("y", ScalarType.uint(32), "p", 1)]
        with pytest.raises(IRValidationError, match="does not match"):
            validate_function(make_leaf(body=body))


class TestModuleRules:
    def test_missing_main(self):
        m = Module()
        m.add_function(make_leaf())
        with pytest.raises(IRValidationError, match="main"):
            validate_module(m)

    def test_empty_module(self):
        with pytest.raises(IRValidationError, match="no functions"):
            validate_module(Module())

    def test_main_must_only_call(self):
        m = Module()
        m.add_function(make_leaf())
        main = IRFunction(name="main", kind="none")
        main.body.append(
            Instruction("1", UI18, "add", [Operand.const(1), Operand.const(2)])
        )
        main.body.append(CallInstruction("f0", ["p"]))
        m.add_function(main)
        with pytest.raises(IRValidationError, match="calls only"):
            validate_module(m)

    def test_main_must_call_something(self):
        m = Module()
        m.add_function(make_leaf())
        m.add_function(IRFunction(name="main", kind="none"))
        with pytest.raises(IRValidationError, match="must call"):
            validate_module(m)

    def test_undefined_callee(self):
        m = make_module(make_leaf(), main_calls=("phantom",))
        with pytest.raises(IRValidationError, match="undefined function"):
            validate_module(m)

    def test_recursion_rejected(self):
        f0 = make_leaf(body=[CallInstruction("f1", ["p"], kind="pipe")])
        f1 = make_leaf(name="f1", body=[CallInstruction("f0", ["p"], kind="pipe")])
        m = make_module(f0, f1)
        with pytest.raises(IRValidationError, match="cycle"):
            validate_module(m)

    def test_stream_object_unknown_memory(self):
        m = make_module(make_leaf(body=[
            Instruction("1", UI18, "add", [Operand.ssa("p"), Operand.const(1)])
        ]))
        m.add_stream_object(StreamObject(name="s", memory="ghost"))
        with pytest.raises(IRValidationError, match="unknown memory object"):
            validate_module(m)

    def test_port_unknown_function(self):
        m = make_module(make_leaf(body=[
            Instruction("1", UI18, "add", [Operand.ssa("p"), Operand.const(1)])
        ]))
        m.add_port_declaration(PortDeclaration(function="ghost", port="p", element_type=UI18))
        with pytest.raises(IRValidationError, match="unknown function"):
            validate_module(m)

    def test_port_unknown_argument(self):
        m = make_module(make_leaf(body=[
            Instruction("1", UI18, "add", [Operand.ssa("p"), Operand.const(1)])
        ]))
        m.add_port_declaration(PortDeclaration(function="f0", port="ghost", element_type=UI18))
        with pytest.raises(IRValidationError, match="no argument"):
            validate_module(m)

    def test_port_unknown_stream_object(self):
        m = make_module(make_leaf(body=[
            Instruction("1", UI18, "add", [Operand.ssa("p"), Operand.const(1)])
        ]))
        m.add_port_declaration(
            PortDeclaration(function="f0", port="p", element_type=UI18, stream_object="ghost")
        )
        with pytest.raises(IRValidationError, match="unknown stream"):
            validate_module(m)

    def test_valid_module_passes(self, stencil_module, stencil_module_4lane):
        validate_module(stencil_module)
        validate_module(stencil_module_4lane)

    def test_memory_object_invariants(self):
        with pytest.raises(IRValidationError):
            MemoryObject(name="m", element_type=UI18, size=0)
        with pytest.raises(IRValidationError):
            MemoryObject(name="m", element_type=UI18, size=8, addr_space=7)
