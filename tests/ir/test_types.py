"""Tests for the TyTra-IR scalar type system."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.ir import IRTypeError, ScalarType, TypeKind, parse_type


class TestConstruction:
    def test_uint(self):
        t = ScalarType.uint(18)
        assert t.kind is TypeKind.UINT
        assert t.width == 18
        assert not t.is_signed
        assert t.is_integer
        assert not t.is_float

    def test_int(self):
        t = ScalarType.int_(32)
        assert t.is_signed
        assert t.is_integer

    def test_fixed(self):
        t = ScalarType.fixed(8, 10)
        assert t.width == 18
        assert t.fraction_bits == 10
        assert t.integer_bits == 8
        assert t.is_fixed
        assert t.is_signed

    def test_float(self):
        t = ScalarType.float_(32)
        assert t.is_float
        assert t.is_signed
        assert not t.is_integer

    def test_bool(self):
        t = ScalarType.bool_()
        assert t.is_bool
        assert t.width == 1

    def test_invalid_width(self):
        with pytest.raises(IRTypeError):
            ScalarType.uint(0)
        with pytest.raises(IRTypeError):
            ScalarType.uint(-3)

    def test_invalid_float_width(self):
        with pytest.raises(IRTypeError):
            ScalarType.float_(24)

    def test_invalid_fixed_fraction(self):
        with pytest.raises(IRTypeError):
            ScalarType(TypeKind.FIXED, 16, 16)
        with pytest.raises(IRTypeError):
            ScalarType(TypeKind.FIXED, 16, 0)

    def test_fraction_bits_only_for_fixed(self):
        with pytest.raises(IRTypeError):
            ScalarType(TypeKind.UINT, 16, 4)


class TestProperties:
    def test_bytes_rounding(self):
        assert ScalarType.uint(18).bytes == 3
        assert ScalarType.uint(8).bytes == 1
        assert ScalarType.uint(1).bytes == 1
        assert ScalarType.uint(32).bytes == 4

    def test_uint_range(self):
        t = ScalarType.uint(8)
        assert t.min_value() == 0
        assert t.max_value() == 255

    def test_int_range(self):
        t = ScalarType.int_(8)
        assert t.min_value() == -128
        assert t.max_value() == 127

    def test_float_range_infinite(self):
        t = ScalarType.float_(32)
        assert t.min_value() == float("-inf")
        assert t.max_value() == float("inf")

    def test_fixed_range(self):
        t = ScalarType.fixed(4, 4)
        assert t.min_value() == -8
        assert t.max_value() == pytest.approx(8 - 2**-4)

    def test_hashable_and_equal(self):
        assert ScalarType.uint(18) == ScalarType.uint(18)
        assert hash(ScalarType.uint(18)) == hash(ScalarType.uint(18))
        assert ScalarType.uint(18) != ScalarType.int_(18)
        d = {ScalarType.uint(18): "a"}
        assert d[ScalarType.uint(18)] == "a"

    def test_ordering(self):
        assert sorted([ScalarType.uint(32), ScalarType.uint(8)])[0].width == 8


class TestParsing:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("ui18", ScalarType.uint(18)),
            ("ui1", ScalarType.uint(1)),
            ("i32", ScalarType.int_(32)),
            ("float32", ScalarType.float_(32)),
            ("float64", ScalarType.float_(64)),
            ("fix8.10", ScalarType.fixed(8, 10)),
            ("bool", ScalarType.bool_()),
            ("  ui24  ", ScalarType.uint(24)),
        ],
    )
    def test_parse_valid(self, text, expected):
        assert parse_type(text) == expected

    @pytest.mark.parametrize("text", ["", "u18", "int32", "ui", "float", "fix8", "ui18x", "18"])
    def test_parse_invalid(self, text):
        with pytest.raises(IRTypeError):
            parse_type(text)

    def test_str_roundtrip_explicit(self):
        for t in [
            ScalarType.uint(18),
            ScalarType.int_(7),
            ScalarType.float_(64),
            ScalarType.fixed(6, 12),
        ]:
            assert parse_type(str(t)) == t


@given(width=st.integers(min_value=1, max_value=512))
def test_uint_str_roundtrip_property(width):
    t = ScalarType.uint(width)
    assert parse_type(str(t)) == t


@given(width=st.integers(min_value=2, max_value=256))
def test_int_str_roundtrip_property(width):
    t = ScalarType.int_(width)
    assert parse_type(str(t)) == t


@given(
    integer_bits=st.integers(min_value=1, max_value=64),
    fraction_bits=st.integers(min_value=1, max_value=64),
)
def test_fixed_str_roundtrip_property(integer_bits, fraction_bits):
    t = ScalarType.fixed(integer_bits, fraction_bits)
    assert parse_type(str(t)) == t
    assert t.width == integer_bits + fraction_bits


@given(width=st.integers(min_value=1, max_value=128))
def test_uint_max_value_matches_width(width):
    t = ScalarType.uint(width)
    assert t.max_value() == 2**width - 1
    assert t.min_value() == 0
