"""Tests for SSA statements and the opcode registry."""

import pytest

from repro.ir import (
    OPCODES,
    CallInstruction,
    Instruction,
    IRTypeError,
    OffsetInstruction,
    Operand,
    ScalarType,
    opcode_info,
)
from repro.ir.instructions import OperandKind, iter_ssa_uses

UI18 = ScalarType.uint(18)


class TestOperand:
    def test_ssa(self):
        op = Operand.ssa("%x")
        assert op.kind is OperandKind.SSA
        assert op.name == "x"
        assert str(op) == "%x"
        assert op.is_ssa and not op.is_const and not op.is_global

    def test_global(self):
        op = Operand.global_("@acc")
        assert op.is_global
        assert op.name == "acc"
        assert str(op) == "@acc"

    def test_const(self):
        op = Operand.const(42)
        assert op.is_const
        assert op.value == 42

    def test_named_requires_name(self):
        with pytest.raises(IRTypeError):
            Operand(OperandKind.SSA)

    def test_const_requires_value(self):
        with pytest.raises(IRTypeError):
            Operand(OperandKind.CONST)


class TestOpcodeRegistry:
    def test_known_opcodes_present(self):
        for name in ["add", "sub", "mul", "div", "fadd", "fmul", "icmp", "select", "shl"]:
            assert name in OPCODES

    def test_categories(self):
        assert OPCODES["mul"].category == "mul"
        assert OPCODES["div"].category == "div"
        assert OPCODES["add"].category == "add"
        assert OPCODES["shl"].category == "shift"

    def test_dsp_eligibility(self):
        assert OPCODES["mul"].dsp_eligible
        assert OPCODES["fmul"].dsp_eligible
        assert not OPCODES["add"].dsp_eligible
        assert not OPCODES["div"].dsp_eligible

    def test_latencies_positive(self):
        for info in OPCODES.values():
            assert info.latency >= 0

    def test_select_is_ternary(self):
        assert OPCODES["select"].arity == 3

    def test_unknown_opcode(self):
        with pytest.raises(IRTypeError):
            opcode_info("frobnicate")


class TestInstruction:
    def test_basic(self):
        inst = Instruction("1", UI18, "mul", [Operand.ssa("a"), Operand.ssa("b")])
        assert inst.result == "1"
        assert inst.info.category == "mul"
        assert inst.input_names == ["a", "b"]
        assert not inst.is_reduction
        assert inst.uses("a") and not inst.uses("z")

    def test_strips_sigils(self):
        inst = Instruction("%x", UI18, "add", [Operand.ssa("a"), Operand.const(1)])
        assert inst.result == "x"

    def test_reduction_flag(self):
        inst = Instruction(
            "acc", UI18, "add", [Operand.ssa("x"), Operand.global_("acc")],
            result_is_global=True,
        )
        assert inst.is_reduction
        assert "@acc" in str(inst)

    def test_constant_operands(self):
        inst = Instruction("1", UI18, "mul", [Operand.ssa("a"), Operand.const(3)])
        assert len(inst.constant_operands) == 1
        assert inst.input_names == ["a"]

    def test_unknown_opcode_rejected(self):
        with pytest.raises(IRTypeError):
            Instruction("1", UI18, "bogus", [Operand.ssa("a"), Operand.ssa("b")])


class TestOffsetInstruction:
    def test_integer_offset(self):
        off = OffsetInstruction("pip1", UI18, "p", +1)
        assert not off.is_symbolic
        assert off.resolved({}) == 1
        assert "!offset" in str(off)
        assert "+1" in str(off)

    def test_negative_offset(self):
        off = OffsetInstruction("pkn1", UI18, "p", -576)
        assert off.resolved({}) == -576

    def test_symbolic_offset(self):
        off = OffsetInstruction("pkn1", UI18, "p", "-ND1*ND2")
        assert off.is_symbolic
        assert off.resolved({"ND1": 24, "ND2": 24}) == -576

    def test_symbolic_offset_unknown_symbol(self):
        off = OffsetInstruction("x", UI18, "p", "-FOO*2")
        with pytest.raises(IRTypeError):
            off.resolved({"ND1": 24})

    def test_symbolic_offset_rejects_bad_chars(self):
        off = OffsetInstruction("x", UI18, "p", "__import__('os')")
        with pytest.raises(IRTypeError):
            off.resolved({})

    def test_symbolic_offset_rejects_non_integer(self):
        off = OffsetInstruction("x", UI18, "p", "ND1-ND1-(1)*(1)")
        assert off.resolved({"ND1": 5}) == -1


class TestComparePredicates:
    def test_predicate_accepted_on_icmp(self):
        instr = Instruction("c", UI18, "icmp",
                            [Operand.ssa("a"), Operand.ssa("b")], predicate="eq")
        assert instr.qualified_opcode == "icmp.eq"
        assert "icmp.eq" in str(instr)

    def test_no_predicate_prints_bare_opcode(self):
        instr = Instruction("c", UI18, "icmp",
                            [Operand.ssa("a"), Operand.ssa("b")])
        assert instr.qualified_opcode == "icmp"

    def test_unknown_predicate_rejected(self):
        import pytest

        from repro.ir.errors import IRTypeError

        with pytest.raises(IRTypeError):
            Instruction("c", UI18, "icmp",
                        [Operand.ssa("a"), Operand.ssa("b")], predicate="weird")

    def test_predicate_on_non_compare_rejected(self):
        import pytest

        from repro.ir.errors import IRTypeError

        with pytest.raises(IRTypeError):
            Instruction("c", UI18, "add",
                        [Operand.ssa("a"), Operand.ssa("b")], predicate="eq")

    def test_predicate_round_trips_through_text(self):
        from repro.ir.parser import parse_module
        from repro.ir.printer import print_module
        from repro.ir.builder import IRBuilder

        b = IRBuilder("pred")
        f = b.function("f0", kind="pipe", args=[(UI18, "a"), (UI18, "b")])
        f.icmp(UI18, f.arg("a"), f.arg("b"), predicate="sge", result="c")
        main = b.function("main", kind="none")
        main.call("f0", ["a", "b"], kind="pipe")
        module = b.build()
        text = print_module(module)
        assert "icmp.sge" in text
        reparsed = parse_module(text)
        instr = reparsed.get_function("f0").instructions()[0]
        assert instr.opcode == "icmp" and instr.predicate == "sge"
        assert print_module(reparsed) == text

    def test_fingerprint_distinguishes_predicates(self):
        from repro.ir.builder import IRBuilder

        def build(predicate):
            b = IRBuilder("pred")
            f = b.function("f0", kind="pipe", args=[(UI18, "a"), (UI18, "b")])
            f.icmp(UI18, f.arg("a"), f.arg("b"), predicate=predicate, result="c")
            main = b.function("main", kind="none")
            main.call("f0", ["a", "b"], kind="pipe")
            return b.build()

        assert build("eq").content_fingerprint() != build("ne").content_fingerprint()


class TestCallInstruction:
    def test_basic(self):
        call = CallInstruction("@f0", ["%p", "%rhs"], kind="pipe")
        assert call.callee == "f0"
        assert call.args == ["p", "rhs"]
        assert "pipe" in str(call)

    def test_no_kind(self):
        call = CallInstruction("f0", [])
        assert call.kind is None
        assert str(call) == "call @f0()"


def test_iter_ssa_uses():
    stmts = [
        OffsetInstruction("pip1", UI18, "p", 1),
        Instruction("1", UI18, "mul", [Operand.ssa("pip1"), Operand.const(3)]),
        CallInstruction("f0", ["x", "y"]),
    ]
    uses = [(type(s).__name__, n) for s, n in iter_ssa_uses(stmts)]
    assert ("OffsetInstruction", "p") in uses
    assert ("Instruction", "pip1") in uses
    assert ("CallInstruction", "x") in uses
    assert ("CallInstruction", "y") in uses
