"""Tests for the programmatic IR builder."""

import pytest

from repro.ir import IRBuilder, IRValidationError, ScalarType
from repro.ir.functions import FunctionKind, StreamDirection

UI18 = ScalarType.uint(18)
UI32 = ScalarType.uint(32)


def build_minimal():
    b = IRBuilder("mini")
    f = b.function("f0", kind="pipe", args=[(UI32, "x"), (UI32, "a")])
    t = f.mul(UI32, f.arg("x"), f.arg("a"))
    f.add(UI32, t, 3, result="y")
    main = b.function("main", kind="none")
    main.call("f0", ["x", "a"], kind="pipe")
    return b


class TestFunctionBuilder:
    def test_auto_names_are_unique(self):
        b = IRBuilder()
        f = b.function("f0", args=[(UI32, "x")])
        names = {f.add(UI32, f.arg("x"), i) for i in range(10)}
        assert len(names) == 10

    def test_arg_check(self):
        b = IRBuilder()
        f = b.function("f0", args=[(UI32, "x")])
        assert f.arg("x") == "x"
        assert f.arg("%x") == "x"
        with pytest.raises(IRValidationError):
            f.arg("nope")

    def test_explicit_result_name(self):
        b = IRBuilder()
        f = b.function("f0", args=[(UI32, "x")])
        name = f.add(UI32, f.arg("x"), 1, result="%out")
        assert name == "out"

    def test_constant_operand(self):
        b = IRBuilder()
        f = b.function("f0", args=[(UI32, "x")])
        f.instr("mul", UI32, "x", 7)
        inst = b.module.get_function("f0").instructions()[0]
        assert inst.constant_operands[0].value == 7

    def test_reduction(self):
        b = IRBuilder()
        f = b.function("f0", args=[(UI18, "x")])
        f.reduction("add", UI18, "@acc", f.arg("x"))
        inst = b.module.get_function("f0").instructions()[0]
        assert inst.is_reduction
        assert inst.result == "acc"

    def test_offset_builder(self):
        b = IRBuilder()
        f = b.function("f0", args=[(UI18, "p")])
        name = f.offset("p", -3, UI18)
        offs = b.module.get_function("f0").offsets()
        assert len(offs) == 1
        assert offs[0].result == name
        assert offs[0].offset == -3

    def test_bad_operand_type(self):
        b = IRBuilder()
        f = b.function("f0", args=[(UI32, "x")])
        with pytest.raises(IRValidationError):
            f.instr("add", UI32, object(), 1)


class TestIRBuilder:
    def test_build_valid_module(self):
        module = build_minimal().build()
        assert module.has_function("f0")
        assert module.entry.name == "main"
        assert module.get_function("f0").instruction_count() == 2

    def test_duplicate_function_rejected(self):
        b = IRBuilder()
        b.function("f0")
        with pytest.raises(IRValidationError):
            b.function("f0")

    def test_duplicate_memory_object_rejected(self):
        b = IRBuilder()
        b.memory_object("m", UI32, 16)
        with pytest.raises(IRValidationError):
            b.memory_object("m", UI32, 16)

    def test_constants(self):
        b = IRBuilder()
        b.constants(ND1=24, ND2=24)
        b.constant("ND3", 48)
        assert b.module.constants == {"ND1": 24, "ND2": 24, "ND3": 48}

    def test_memory_and_stream_objects(self):
        b = build_minimal()
        mem = b.memory_object("mobj_x", UI32, size=1024, label="x")
        stream = b.stream_object("strobj_x", mem, direction="istream")
        b.port("f0", "x", UI32, direction="istream", stream_object="strobj_x")
        module = b.build()
        assert module.memory_objects["mobj_x"].size_bytes == 4096
        assert module.stream_objects["strobj_x"].memory == "mobj_x"
        assert module.stream_objects["strobj_x"].direction is StreamDirection.INPUT
        assert module.port_declarations[0].qualified_name == "f0.x"

    def test_build_without_validation_allows_broken(self):
        b = IRBuilder()
        f = b.function("f0", kind="pipe", args=[(UI32, "x")])
        f.add(UI32, "undefined_value", 1)
        # no main: invalid, but allowed when validate=False
        module = b.build(validate=False)
        assert module.has_function("f0")

    def test_build_with_validation_rejects_broken(self):
        b = IRBuilder()
        f = b.function("f0", kind="pipe", args=[(UI32, "x")])
        f.add(UI32, "undefined_value", 1)
        with pytest.raises(IRValidationError):
            b.build()


class TestStencilFixture:
    def test_fixture_builds(self, stencil_module):
        assert stencil_module.has_function("f0")
        f0 = stencil_module.get_function("f0")
        assert f0.kind is FunctionKind.PIPE
        assert len(f0.offsets()) == 2
        assert f0.instruction_count() == 6

    def test_fixture_4lane(self, stencil_module_4lane):
        f1 = stencil_module_4lane.get_function("f1")
        assert f1.kind is FunctionKind.PAR
        assert len(f1.calls()) == 4

    def test_symbolic_offset_resolution(self, stencil_module):
        f0 = stencil_module.get_function("f0")
        offsets = [stencil_module.resolve_offset(o.offset) for o in f0.offsets()]
        assert +1 in offsets
        assert -64 in offsets  # ND1*ND2 = 8*8
