"""Tests for the IR optimisation passes."""

import pytest

from repro.ir import IRBuilder, ScalarType, validate_module
from repro.ir.passes import (
    constant_fold,
    eliminate_common_subexpressions,
    eliminate_dead_code,
    optimize_module,
)

UI16 = ScalarType.uint(16)


def build_module(body_fn, args=None, with_output_port=True):
    b = IRBuilder("opt_test")
    f = b.function("f0", kind="pipe", args=args or [(UI16, "x"), (UI16, "y")])
    body_fn(f)
    if with_output_port:
        b.port("f0", "out", UI16, direction="ostream")
    main = b.function("main", kind="none")
    main.call("f0", [n for _, n in (args or [(UI16, "x"), (UI16, "y")])], kind="pipe")
    return b.build(validate=False)


class TestConstantFolding:
    def test_folds_constant_chain(self):
        def body(f):
            a = f.add(UI16, 2, 3)            # 5
            c = f.mul(UI16, a, 4)            # 20
            f.add(UI16, c, f.arg("x"), result="out")

        module = build_module(body)
        f0 = module.get_function("f0")
        folded = constant_fold(f0)
        assert folded == 2
        assert f0.instruction_count() == 1
        final = f0.instructions()[0]
        assert any(op.is_const and op.value == 20 for op in final.operands)

    def test_folding_respects_width(self):
        def body(f):
            a = f.instr("shl", UI16, 1, 20)   # overflows ui16 -> masked to 0
            f.add(UI16, a, f.arg("x"), result="out")

        module = build_module(body)
        f0 = module.get_function("f0")
        constant_fold(f0)
        final = f0.instructions()[0]
        assert any(op.is_const and op.value == 0 for op in final.operands)

    def test_non_constant_untouched(self):
        def body(f):
            f.add(UI16, f.arg("x"), f.arg("y"), result="out")

        module = build_module(body)
        assert constant_fold(module.get_function("f0")) == 0


class TestCSE:
    def test_duplicate_expression_removed(self):
        def body(f):
            a = f.mul(UI16, f.arg("x"), f.arg("y"))
            b_ = f.mul(UI16, f.arg("x"), f.arg("y"))
            f.add(UI16, a, b_, result="out")

        module = build_module(body)
        f0 = module.get_function("f0")
        removed = eliminate_common_subexpressions(f0)
        assert removed == 1
        final = [i for i in f0.instructions() if i.result == "out"][0]
        names = [op.name for op in final.operands]
        assert names[0] == names[1]

    def test_commutative_matching(self):
        def body(f):
            a = f.add(UI16, f.arg("x"), f.arg("y"))
            b_ = f.add(UI16, f.arg("y"), f.arg("x"))
            f.mul(UI16, a, b_, result="out")

        module = build_module(body)
        assert eliminate_common_subexpressions(module.get_function("f0")) == 1

    def test_non_commutative_not_matched(self):
        def body(f):
            a = f.sub(UI16, f.arg("x"), f.arg("y"))
            b_ = f.sub(UI16, f.arg("y"), f.arg("x"))
            f.mul(UI16, a, b_, result="out")

        module = build_module(body)
        assert eliminate_common_subexpressions(module.get_function("f0")) == 0


class TestDCE:
    def test_unused_instruction_removed(self):
        def body(f):
            f.mul(UI16, f.arg("x"), 3)                 # dead
            f.add(UI16, f.arg("x"), f.arg("y"), result="out")

        module = build_module(body)
        f0 = module.get_function("f0")
        assert eliminate_dead_code(f0, module) == 1
        assert f0.instruction_count() == 1

    def test_reduction_keeps_producers_alive(self):
        def body(f):
            t = f.mul(UI16, f.arg("x"), 3)
            f.reduction("add", UI16, "acc", t)

        module = build_module(body, with_output_port=False)
        f0 = module.get_function("f0")
        assert eliminate_dead_code(f0, module) == 0
        assert f0.instruction_count() == 2

    def test_unused_offset_removed(self):
        def body(f):
            f.offset("x", 4, UI16, result="x_off")      # never consumed
            f.add(UI16, f.arg("x"), f.arg("y"), result="out")

        module = build_module(body)
        f0 = module.get_function("f0")
        assert eliminate_dead_code(f0, module) == 1
        assert len(f0.offsets()) == 0


class TestPipeline:
    def test_optimize_module_fixed_point_and_validity(self):
        def body(f):
            c1 = f.add(UI16, 1, 2)                       # fold -> 3
            c2 = f.mul(UI16, c1, 5)                      # fold -> 15
            dup_a = f.mul(UI16, f.arg("x"), c2)
            dup_b = f.mul(UI16, f.arg("x"), 15)          # becomes CSE with dup_a after folding
            dead = f.add(UI16, f.arg("y"), 7)            # dead after out uses only dup_a/dup_b
            _ = dead
            f.add(UI16, dup_a, dup_b, result="out")

        module = build_module(body)
        report = optimize_module(module)
        f0 = module.get_function("f0")
        assert report.folded >= 2
        assert report.cse_removed >= 1
        assert report.dead_removed >= 1
        assert report.total_removed == (report.folded + report.cse_removed
                                        + report.dead_removed)
        assert f0.instruction_count() == 2  # the surviving mul + the output add
        validate_module(module)
        assert "f0" in report.per_function

    def test_optimization_reduces_cost_estimate(self):
        """Removing functional units shows up directly in the resource cost."""
        from repro.cost import ResourceEstimator, calibrate_device
        from repro.substrate import MAIA_STRATIX_V_GSD8, SyntheticSynthesizer

        def body(f):
            a = f.mul(UI16, f.arg("x"), f.arg("y"))
            b_ = f.mul(UI16, f.arg("x"), f.arg("y"))     # duplicate
            c = f.add(UI16, 100, 200)                    # constant
            d = f.add(UI16, a, b_)
            f.add(UI16, d, c, result="out")

        before = build_module(body)
        after = build_module(body)
        optimize_module(after)

        estimator = ResourceEstimator(
            calibrate_device(SyntheticSynthesizer(MAIA_STRATIX_V_GSD8).characterize())
        )
        cost_before = estimator.estimate_module(before).total
        cost_after = estimator.estimate_module(after).total
        assert cost_after.alut < cost_before.alut
        assert cost_after.dsp <= cost_before.dsp

    def test_par_and_main_functions_skipped(self, stencil_module_4lane):
        report = optimize_module(stencil_module_4lane)
        validate_module(stencil_module_4lane)
        assert "f1" not in report.per_function  # the par wrapper is untouched
