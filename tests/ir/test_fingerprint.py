"""Tests for the structural content fingerprint cached on modules."""

from __future__ import annotations

from repro.ir import IRBuilder, ScalarType, parse_module, print_module
from repro.ir.fingerprint import structural_fingerprint


def _module(name="m", width=18, constant=3):
    ty = ScalarType.uint(width)
    b = IRBuilder(name)
    b.constant("C1", constant)
    b.memory_object("mobj_x", ty, size=64, addr_space=1, label="x")
    b.stream_object("strobj_x0", "mobj_x", direction="istream")
    f = b.function("f0", kind="pipe", args=[(ty, "x")])
    t = f.mul(ty, "x", 3)
    f.instr("add", ty, t, "x", result="y")
    b.port("f0", "x", ty, direction="istream", stream_object="strobj_x0")
    main = b.function("main", kind="none")
    main.call("f0", ["x"], kind="pipe")
    return b.build()


class TestFingerprintEquality:
    def test_identical_builds_share_a_fingerprint(self):
        assert _module().content_fingerprint() == _module().content_fingerprint()

    def test_distinguishes_what_the_printer_distinguishes(self):
        base = _module()
        assert base.content_fingerprint() != _module(name="other").content_fingerprint()
        assert base.content_fingerprint() != _module(width=32).content_fingerprint()
        assert base.content_fingerprint() != _module(constant=4).content_fingerprint()

    def test_roundtrip_through_printer_preserves_fingerprint(self):
        module = _module()
        reparsed = parse_module(print_module(module), name=module.name)
        assert reparsed.content_fingerprint() == module.content_fingerprint()


class TestFingerprintCaching:
    def test_cached_on_instance(self):
        module = _module()
        first = module.content_fingerprint()
        assert module.__dict__["_content_fingerprint"] == first
        assert module.content_fingerprint() is first  # attribute read, no rehash

    def test_mutation_invalidates(self):
        module = _module()
        before = module.content_fingerprint()
        ty = ScalarType.uint(18)
        extra = IRBuilder("scratch").function("g0", kind="pipe", args=[(ty, "x")])
        extra.add(ty, "x", 1)
        module.add_function(extra.function)
        after = module.content_fingerprint()
        assert after != before
        assert structural_fingerprint(module) == after

    def test_constant_redefinition_invalidates(self):
        """Regression: builder/parser constants go through set_constant."""
        module = _module()
        before = module.content_fingerprint()
        module.set_constant("C1", 99)
        assert module.content_fingerprint() != before

    def test_manual_invalidation_hook(self):
        module = _module()
        module.content_fingerprint()
        # direct surgery on a function body bypasses the add_* hooks …
        module.functions["f0"].body.pop()
        # … so callers must invalidate; the hook restores correctness
        module.invalidate_fingerprint()
        assert module.content_fingerprint() == structural_fingerprint(module)
