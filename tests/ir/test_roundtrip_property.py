"""Property-style round-trip tests over randomized-but-seeded IR modules.

Hypothesis generates small random design variants through
:class:`repro.ir.IRBuilder` — random element types, constants, stream
offsets (integer and symbolic), datapath shapes, reductions and lane
counts — and asserts the invariants the estimation pipeline relies on:

* ``print_module`` -> ``parse_module`` -> ``print_module`` is a fixed
  point (the canonical text is stable under one round-trip);
* the validator accepts every printed module, before and after the
  round-trip;
* structural queries (lanes, offsets, instruction counts) survive the
  round-trip — the parsed module is the *same design*, not merely a
  parseable one.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cost.resource_model import ModuleStructure
from repro.ir import IRBuilder, ScalarType, parse_module, print_module, validate_module

ELEMENT_WIDTHS = [16, 18, 20, 24, 32]
BINARY_OPS = ["add", "sub", "mul", "max", "min", "and", "or", "xor"]
UNARY_OPS = ["abs", "not"]
REDUCTIONS = ["add", "max", "min"]
SYMBOLIC_OFFSETS = ["+ND1", "-ND1", "+ND1*ND2", "-ND1*ND2", "+ND1+1", "-ND1-1"]


@st.composite
def random_modules(draw) -> "tuple":
    """A random-but-valid design variant built through the IRBuilder."""
    width = draw(st.sampled_from(ELEMENT_WIDTHS))
    signed = draw(st.booleans())
    ty = ScalarType.int_(width) if signed else ScalarType.uint(width)
    nd1 = draw(st.integers(min_value=4, max_value=32))
    nd2 = draw(st.integers(min_value=4, max_value=32))
    lanes = draw(st.sampled_from([1, 2, 3, 4]))
    n_args = draw(st.integers(min_value=1, max_value=3))
    arg_names = [f"s{i}" for i in range(n_args)]

    int_offsets = draw(st.lists(
        st.integers(min_value=-64, max_value=64).filter(lambda v: v != 0),
        max_size=3, unique=True))
    sym_offsets = draw(st.lists(st.sampled_from(SYMBOLIC_OFFSETS), max_size=2,
                                unique=True))
    n_ops = draw(st.integers(min_value=1, max_value=12))
    op_plan = draw(st.lists(st.sampled_from(BINARY_OPS + UNARY_OPS),
                            min_size=n_ops, max_size=n_ops))
    use_constant = draw(st.lists(st.booleans(), min_size=n_ops, max_size=n_ops))
    reduction = draw(st.sampled_from(REDUCTIONS + [None]))

    b = IRBuilder("propmod")
    b.constants(ND1=nd1, ND2=nd2)
    size = nd1 * nd2
    for arg in arg_names:
        b.memory_object(f"mobj_{arg}", ty, size=size, addr_space=1, label=arg)
    b.memory_object("mobj_out", ty, size=size, addr_space=1, label="out")
    for lane in range(lanes):
        for arg in arg_names:
            b.stream_object(f"strobj_{arg}{lane}", f"mobj_{arg}", direction="istream")
        b.stream_object(f"strobj_out{lane}", "mobj_out", direction="ostream")

    f = b.function("pe", kind="pipe", args=[(ty, a) for a in arg_names])
    values = list(arg_names)
    for index, off in enumerate(int_offsets):
        values.append(f.offset(arg_names[0], off, ty, result=f"ioff{index}"))
    for index, off in enumerate(sym_offsets):
        values.append(f.offset(arg_names[0], off, ty, result=f"soff{index}"))
    draw_index = draw(st.randoms(use_true_random=False))
    for opcode, constant in zip(op_plan, use_constant):
        a = values[draw_index.randrange(len(values))]
        if opcode in UNARY_OPS:
            values.append(f.instr(opcode, ty, a))
        elif constant:
            values.append(f.instr(opcode, ty, a, draw_index.randrange(1, 256)))
        else:
            second = values[draw_index.randrange(len(values))]
            values.append(f.instr(opcode, ty, a, second))
    f.instr("add", ty, values[-1], 0, result="out")
    if reduction is not None:
        f.reduction(reduction, ty, "acc", "out")

    for arg in arg_names:
        b.port("pe", arg, ty, direction="istream", stream_object=f"strobj_{arg}0")
    b.port("pe", "out", ty, direction="ostream", stream_object="strobj_out0")

    if lanes > 1:
        wrapper = b.function("wrap", kind="par", args=[(ty, a) for a in arg_names])
        for _ in range(lanes):
            wrapper.call("pe", arg_names, kind="pipe")
        main = b.function("main", kind="none")
        main.call("wrap", arg_names, kind="par")
    else:
        main = b.function("main", kind="none")
        main.call("pe", arg_names, kind="pipe")

    return b.build(), lanes, len(int_offsets) + len(sym_offsets)


class TestPrintParseRoundTrip:
    @given(random_modules())
    @settings(max_examples=40, deadline=None)
    def test_roundtrip_is_fixed_point(self, built):
        module, _, _ = built
        text = print_module(module)
        reparsed = parse_module(text, name=module.name)
        assert print_module(reparsed) == text
        # and a second trip stays put
        assert print_module(parse_module(print_module(reparsed))) == text

    @given(random_modules())
    @settings(max_examples=40, deadline=None)
    def test_validator_accepts_printed_modules(self, built):
        module, _, _ = built
        validate_module(module)
        reparsed = parse_module(print_module(module), name=module.name)
        validate_module(reparsed)

    @given(random_modules())
    @settings(max_examples=25, deadline=None)
    def test_structure_survives_roundtrip(self, built):
        module, lanes, n_offsets = built
        reparsed = parse_module(print_module(module), name=module.name)
        original = ModuleStructure.from_module(module)
        recovered = ModuleStructure.from_module(reparsed)
        assert recovered.lanes == original.lanes == lanes
        assert len(recovered.offset_buffers) == len(original.offset_buffers) == n_offsets
        assert recovered.instructions_per_pe == original.instructions_per_pe
        assert recovered.max_offset_span_words == original.max_offset_span_words

    @given(random_modules())
    @settings(max_examples=25, deadline=None)
    def test_constants_and_objects_survive_roundtrip(self, built):
        module, _, _ = built
        reparsed = parse_module(print_module(module), name=module.name)
        assert reparsed.constants == module.constants
        assert set(reparsed.memory_objects) == set(module.memory_objects)
        assert set(reparsed.stream_objects) == set(module.stream_objects)
        assert len(reparsed.port_declarations) == len(module.port_declarations)
