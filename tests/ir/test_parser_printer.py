"""Round-trip tests for the .tirl parser and printer."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ir import (
    IRBuilder,
    IRParseError,
    ScalarType,
    parse_module,
    print_module,
    validate_module,
)
from repro.ir.functions import AccessPatternKind, FunctionKind, StreamDirection

UI18 = ScalarType.uint(18)

SOR_LIKE_TIRL = """
; **** example close to the paper's Figure 12 ****
module "sor_c2"
const ND1 = 24
const ND2 = 24

; **** MANAGE-IR ****
%mobj_p = memobj addrSpace(1) ui18, !size, !13824, !"p"
%mobj_rhs = memobj addrSpace(1) ui18, !size, !13824
%strobj_p = streamobj %mobj_p, !"istream", !"CONT", !stride, !1
%strobj_rhs = streamobj %mobj_rhs, !"istream", !"CONT", !stride, !1

; **** COMPUTE-IR ****
@f0.p = addrSpace(1) ui18, !"istream", !"CONT", !0, !"strobj_p"
@f0.rhs = addrSpace(1) ui18, !"istream", !"CONT", !0, !"strobj_rhs"

define void @f0 (ui18 %p, ui18 %rhs, ui18 %cn2l, ui18 %cn2s) pipe {
  ;stream offsets
  ui18 %pip1 = ui18 %p, !offset, !+1
  ui18 %pin1 = ui18 %p, !offset, !-1
  ui18 %pkn1 = ui18 %p, !offset, !-ND1*ND2
  ;datapath instructions
  ui18 %1 = mul ui18 %pip1, %cn2l
  ui18 %2 = mul ui18 %pin1, %cn2s
  ui18 %3 = add ui18 %1, %2
  ui18 %4 = sub ui18 %3, %rhs
  ;reduction operation on global variable
  ui18 @sorErrAcc = add ui18 %4, @sorErrAcc
}

define void @main () {
  call @f0(%p, %rhs, %cn2l, %cn2s) pipe }
"""


class TestParser:
    def test_parse_sor_like(self):
        m = parse_module(SOR_LIKE_TIRL)
        assert m.name == "sor_c2"
        assert m.constants == {"ND1": 24, "ND2": 24}
        assert set(m.memory_objects) == {"mobj_p", "mobj_rhs"}
        assert set(m.stream_objects) == {"strobj_p", "strobj_rhs"}
        assert len(m.port_declarations) == 2
        f0 = m.get_function("f0")
        assert f0.kind is FunctionKind.PIPE
        assert len(f0.offsets()) == 3
        assert f0.instruction_count() == 5
        assert f0.reductions()[0].result == "sorErrAcc"
        assert m.entry.calls()[0].callee == "f0"

    def test_parse_memory_object_fields(self):
        m = parse_module(SOR_LIKE_TIRL)
        mobj = m.memory_objects["mobj_p"]
        assert mobj.size == 13824
        assert mobj.addr_space == 1
        assert mobj.label == "p"
        assert str(mobj.element_type) == "ui18"

    def test_parse_stream_object_fields(self):
        m = parse_module(SOR_LIKE_TIRL)
        s = m.stream_objects["strobj_p"]
        assert s.memory == "mobj_p"
        assert s.direction is StreamDirection.INPUT
        assert s.pattern is AccessPatternKind.CONTIGUOUS
        assert s.stride == 1

    def test_parse_symbolic_offset(self):
        m = parse_module(SOR_LIKE_TIRL)
        f0 = m.get_function("f0")
        symbolic = [o for o in f0.offsets() if o.is_symbolic]
        assert len(symbolic) == 1
        assert m.resolve_offset(symbolic[0].offset) == -576

    def test_parsed_module_validates(self):
        validate_module(parse_module(SOR_LIKE_TIRL))

    def test_closing_brace_same_line(self):
        text = """
define void @f0 (ui18 %x) pipe {
  ui18 %1 = add ui18 %x, 1 }
define void @main () {
  call @f0(%x) pipe }
"""
        m = parse_module(text)
        assert m.get_function("f0").instruction_count() == 1

    def test_par_wrapper(self):
        text = """
define void @f0 (ui18 %x) pipe {
  ui18 %1 = add ui18 %x, 1
}
define void @f1 (ui18 %x) par {
  call @f0(%x) pipe
  call @f0(%x) pipe
  call @f0(%x) pipe
  call @f0(%x) pipe
}
define void @main () {
  call @f1(%x) par
}
"""
        m = parse_module(text)
        f1 = m.get_function("f1")
        assert f1.kind is FunctionKind.PAR
        assert len(f1.calls()) == 4
        validate_module(m)

    @pytest.mark.parametrize(
        "bad",
        [
            "define void @f0 (ui18 %x) wibble {\n}",
            "ui18 %x = add ui18 %a, %b",  # statement outside function
            "%m = memobj addrSpace(9zz) ui18, !size, !10",
            "}",
        ],
    )
    def test_parse_errors(self, bad):
        with pytest.raises(IRParseError):
            parse_module(bad)

    def test_missing_close_brace(self):
        with pytest.raises(IRParseError):
            parse_module("define void @f0 (ui18 %x) pipe {\n  ui18 %1 = add ui18 %x, 1")

    def test_unknown_call_kind(self):
        with pytest.raises(IRParseError):
            parse_module(
                "define void @main () {\n  call @f0(%x) sideways\n}"
            )

    def test_comments_and_blank_lines_ignored(self):
        text = """

; a comment
; another

define void @main () {
  call @f0() pipe   ; trailing comment
}
define void @f0 () pipe {
  ui18 %1 = add ui18 1, 2
}
"""
        m = parse_module(text)
        assert m.entry.calls()[0].callee == "f0"


class TestRoundTrip:
    def test_roundtrip_parsed(self):
        m1 = parse_module(SOR_LIKE_TIRL)
        text = print_module(m1)
        m2 = parse_module(text)
        assert print_module(m2) == text
        assert set(m2.functions) == set(m1.functions)
        assert m2.constants == m1.constants
        f1, f2 = m1.get_function("f0"), m2.get_function("f0")
        assert [str(s) for s in f1.body] == [str(s) for s in f2.body]

    def test_roundtrip_built(self, stencil_module):
        text = print_module(stencil_module)
        m2 = parse_module(text)
        assert print_module(m2) == text
        validate_module(m2)

    def test_roundtrip_4lane(self, stencil_module_4lane):
        text = print_module(stencil_module_4lane)
        m2 = parse_module(text)
        f1 = m2.get_function("f1")
        assert len(f1.calls()) == 4
        assert print_module(m2) == text


# ---------------------------------------------------------------------------
# Property-based round trip over randomly generated straight-line pipelines
# ---------------------------------------------------------------------------

_opcodes = st.sampled_from(["add", "sub", "mul", "and", "or", "xor", "min", "max"])
_widths = st.sampled_from([8, 16, 18, 24, 32])


@st.composite
def random_pipeline_module(draw):
    width = draw(_widths)
    ty = ScalarType.uint(width)
    n_args = draw(st.integers(min_value=1, max_value=4))
    n_instrs = draw(st.integers(min_value=1, max_value=12))
    b = IRBuilder("random")
    args = [(ty, f"a{i}") for i in range(n_args)]
    f = b.function("f0", kind="pipe", args=args)
    available = [f"a{i}" for i in range(n_args)]
    for i in range(n_instrs):
        op = draw(_opcodes)
        lhs = draw(st.sampled_from(available))
        use_const = draw(st.booleans())
        rhs = draw(st.integers(min_value=0, max_value=255)) if use_const else draw(
            st.sampled_from(available)
        )
        name = f.instr(op, ty, lhs, rhs, result=f"v{i}")
        available.append(name)
    main = b.function("main", kind="none")
    main.call("f0", [a for _, a in args], kind="pipe")
    return b.build()


@given(random_pipeline_module())
@settings(max_examples=40, deadline=None)
def test_roundtrip_property(module):
    text = print_module(module)
    reparsed = parse_module(text)
    assert print_module(reparsed) == text
    validate_module(reparsed)
    f0a = module.get_function("f0")
    f0b = reparsed.get_function("f0")
    assert f0a.instruction_count() == f0b.instruction_count()
    assert [s.opcode for s in f0a.instructions()] == [s.opcode for s in f0b.instructions()]
