"""Shared fixtures for the test-suite."""

from __future__ import annotations

import pytest

from repro.ir import IRBuilder, ScalarType


@pytest.fixture(scope="session", autouse=True)
def _isolated_disk_cache(tmp_path_factory):
    """Point the persistent warm-start store at a per-session tmp dir."""
    from repro.cost.cache import redirected_cache_dir

    with redirected_cache_dir(tmp_path_factory.mktemp("tybec-cache")):
        yield


@pytest.fixture
def ui18():
    return ScalarType.uint(18)


@pytest.fixture
def ui32():
    return ScalarType.uint(32)


def build_stencil_module(lanes: int = 1, grid: tuple[int, int, int] = (8, 8, 8)):
    """Build a small SOR-like stencil module used across the tests.

    The kernel reads a pressure stream ``p`` and an ``rhs`` stream, forms
    two offset streams of ``p`` and computes a weighted update, reducing an
    error term into a global accumulator — structurally a miniature of the
    paper's Figure 12.
    """
    im, jm, km = grid
    n = im * jm * km
    ty = ScalarType.uint(18)

    b = IRBuilder(f"stencil_l{lanes}")
    b.constants(ND1=im, ND2=jm, ND3=km)

    mem_p = b.memory_object("mobj_p", ty, size=n, addr_space=1, label="p")
    mem_r = b.memory_object("mobj_rhs", ty, size=n, addr_space=1, label="rhs")
    mem_o = b.memory_object("mobj_pout", ty, size=n, addr_space=1, label="p_new")

    f = b.function("f0", kind="pipe", args=[(ty, "p"), (ty, "rhs")])
    pp1 = f.offset("p", +1, ty, result="pip1")
    pn1 = f.offset("p", "-ND1*ND2", ty, result="pkn1")
    t1 = f.mul(ty, pp1, 3)
    t2 = f.mul(ty, pn1, 5)
    t3 = f.add(ty, t1, t2)
    t4 = f.add(ty, t3, f.arg("rhs"))
    f.instr("sub", ty, t4, f.arg("p"), result="p_new")
    f.reduction("add", ty, "errAcc", "p_new")

    lane_ports = []
    for lane in range(lanes):
        sp = b.stream_object(f"strobj_p{lane}", mem_p, direction="istream")
        sr = b.stream_object(f"strobj_rhs{lane}", mem_r, direction="istream")
        so = b.stream_object(f"strobj_pout{lane}", mem_o, direction="ostream")
        lane_ports.append((sp, sr, so))

    if lanes == 1:
        b.port("f0", "p", ty, direction="istream", stream_object="strobj_p0")
        b.port("f0", "rhs", ty, direction="istream", stream_object="strobj_rhs0")
        b.port("f0", "p_new", ty, direction="ostream", stream_object="strobj_pout0")
        main = b.function("main", kind="none")
        main.call("f0", ["p", "rhs"], kind="pipe")
    else:
        top = b.function("f1", kind="par")
        for _ in range(lanes):
            top.call("f0", ["p", "rhs"], kind="pipe")
        b.port("f1", "p", ty, direction="istream", stream_object="strobj_p0")
        main = b.function("main", kind="none")
        main.call("f1", ["p", "rhs"], kind="par")
        # port declaration for f1 needs an argument of that name
        b.module.functions["f1"].args = [(ty, "p"), (ty, "rhs")]

    return b.build()


@pytest.fixture
def stencil_module():
    return build_stencil_module(lanes=1)


@pytest.fixture
def stencil_module_4lane():
    return build_stencil_module(lanes=4)
