"""Tests for the persistent warm-start store and the bounded LRU caches."""

from __future__ import annotations

import os
import pickle

from repro.cost.cache import (
    SCHEMA_VERSION,
    BoundedCache,
    DiskCache,
    cache_location,
    default_disk_cache,
)


class TestBoundedCache:
    def test_lru_eviction_with_counters(self):
        cache = BoundedCache(maxsize=2, name="t")
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1      # refresh "a" — "b" is now oldest
        cache.put("c", 3)               # evicts "b"
        assert cache.get("b") is None
        assert cache.get("a") == 1
        assert cache.get("c") == 3
        info = cache.info()
        assert info["evictions"] == 1
        assert info["hits"] == 3
        assert info["misses"] == 1
        assert info["size"] == info["capacity"] == 2

    def test_clear(self):
        cache = BoundedCache(maxsize=4)
        cache.put("a", 1)
        cache.clear()
        assert len(cache) == 0
        assert cache.get("a") is None


class TestDiskCache:
    def test_roundtrip(self, tmp_path):
        cache = DiskCache(tmp_path, capacity=8)
        token = ("calibration", "device-x", 0.025)
        cache.put("calibration", token, {"alut": [1.0, 2.0]})
        assert cache.get("calibration", token) == {"alut": [1.0, 2.0]}
        assert cache.hits == 1 and cache.misses == 0

    def test_miss_on_absent_and_corrupt_entries(self, tmp_path):
        cache = DiskCache(tmp_path, capacity=8)
        assert cache.get("ns", "missing") is None
        cache.put("ns", "key", 42)
        path = cache._entry_path("ns", "key")
        path.write_bytes(b"definitely not a pickle")
        assert cache.get("ns", "key") is None
        # one torn read could be a transient hiccup — the entry survives
        assert path.exists()

    def test_repeatedly_corrupt_entries_are_quarantined(self, tmp_path):
        cache = DiskCache(tmp_path, capacity=8)
        cache.put("ns", "key", 42)
        path = cache._entry_path("ns", "key")
        path.write_bytes(b"definitely not a pickle")
        for _ in range(DiskCache.QUARANTINE_AFTER):
            assert cache.get("ns", "key") is None
        assert not path.exists()
        quarantined = path.with_suffix(".quarantined")
        assert quarantined.exists()     # evidence kept, off the read path
        stats = cache.stats()
        assert stats["quarantined"] == 1
        assert stats["namespaces"]["ns"]["quarantined"] == 1
        # the slot is usable again: a fresh put resets the strikes
        cache.put("ns", "key", 43)
        assert cache.get("ns", "key") == 43
        assert cache.clear() == 1
        assert not quarantined.exists()  # clear leaves no debris behind

    def test_put_resets_decode_strikes(self, tmp_path):
        cache = DiskCache(tmp_path, capacity=8)
        cache.put("ns", "key", 1)
        path = cache._entry_path("ns", "key")
        for _ in range(DiskCache.QUARANTINE_AFTER - 1):
            path.write_bytes(b"garbage")
            assert cache.get("ns", "key") is None
            cache.put("ns", "key", 2)   # strike counter back to zero
        assert cache.get("ns", "key") == 2
        assert cache.quarantined == 0

    def test_orphan_tmp_sweep(self, tmp_path):
        cache = DiskCache(tmp_path, capacity=8)
        cache.EVICTION_STRIDE = 1
        cache.put("ns", "key", 1)
        ns_dir = cache.version_dir / "ns"
        fresh = ns_dir / "writer-alive.tmp"
        fresh.write_bytes(b"partial")
        stale = ns_dir / "writer-died.tmp"
        stale.write_bytes(b"partial")
        old = 12345.0
        os.utime(stale, (old, old))
        cache.put("ns", "key2", 2)      # stride-1 triggers the sweep
        assert not stale.exists()       # the corpse is reaped
        assert fresh.exists()           # a live writer's file is not
        assert cache.orphans_removed == 1
        assert cache.stats()["orphans_removed"] == 1

    def test_init_sweeps_orphans(self, tmp_path):
        first = DiskCache(tmp_path, capacity=8)
        first.put("ns", "key", 1)
        stale = first.version_dir / "ns" / "corpse.tmp"
        stale.write_bytes(b"partial")
        os.utime(stale, (1.0, 1.0))
        second = DiskCache(tmp_path, capacity=8)   # "new process"
        assert not stale.exists()
        assert second.orphans_removed == 1

    def test_token_mismatch_is_a_miss(self, tmp_path):
        """A hash collision (or tampered file) must never alias keys."""
        cache = DiskCache(tmp_path, capacity=8)
        cache.put("ns", "key", "value")
        path = cache._entry_path("ns", "key")
        path.write_bytes(pickle.dumps({"token": repr("other"), "value": "evil"}))
        assert cache.get("ns", "key") is None

    def test_lru_eviction_by_capacity(self, tmp_path):
        cache = DiskCache(tmp_path, capacity=3)
        cache.EVICTION_STRIDE = 1   # scan on every put for the test
        for i in range(6):
            cache.put("ns", f"k{i}", i)
            os.utime(cache._entry_path("ns", f"k{i}"), (i, i))
        files = list((cache.version_dir / "ns").glob("*.pkl"))
        assert len(files) <= 3
        assert cache.evictions >= 3

    def test_eviction_scan_is_amortized(self, tmp_path):
        """Occupancy may overshoot capacity by at most one stride."""
        cache = DiskCache(tmp_path, capacity=2)
        for i in range(cache.EVICTION_STRIDE):
            cache.put("ns", f"k{i}", i)
        files = list((cache.version_dir / "ns").glob("*.pkl"))
        assert len(files) <= 2 + cache.EVICTION_STRIDE
        assert cache.evictions > 0  # the stride boundary triggered a scan

    def test_clear_and_stats(self, tmp_path):
        cache = DiskCache(tmp_path, capacity=8)
        cache.put("a", "k", 1)
        cache.put("b", "k", 2)
        stats = cache.stats()
        assert stats["schema_version"] == SCHEMA_VERSION
        assert set(stats["namespaces"]) == {"a", "b"}
        assert all(ns["entries"] == 1 for ns in stats["namespaces"].values())
        assert cache.clear() == 2
        assert cache.stats()["namespaces"] == {}

    def test_concurrent_writer_safety_shape(self, tmp_path):
        """Writes go through a temp file + atomic rename in the same dir."""
        cache = DiskCache(tmp_path, capacity=8)
        cache.put("ns", "key", "v1")
        cache.put("ns", "key", "v2")    # overwrite races resolve to a winner
        assert cache.get("ns", "key") == "v2"
        leftovers = list((cache.version_dir / "ns").glob("*.tmp"))
        assert leftovers == []


class TestEnvironmentControl:
    def test_disabled_by_empty_dir(self, monkeypatch):
        monkeypatch.setenv("TYBEC_CACHE_DIR", "")
        assert cache_location() is None
        assert default_disk_cache() is None

    def test_disabled_by_off(self, monkeypatch):
        monkeypatch.setenv("TYBEC_CACHE_DIR", "off")
        assert default_disk_cache() is None

    def test_shared_instance_per_path(self, tmp_path, monkeypatch):
        monkeypatch.setenv("TYBEC_CACHE_DIR", str(tmp_path))
        assert default_disk_cache() is default_disk_cache()


class TestWarmStartIntegration:
    def test_new_process_simulation_loads_calibration_from_disk(
        self, tmp_path, monkeypatch
    ):
        """clear in-memory caches + warm disk == a fresh process starting warm."""
        from repro.compiler import CompilationOptions, EstimationPipeline
        from repro.compiler.pipeline import clear_calibration_cache
        from repro.substrate import SMALL_EDU_DEVICE

        monkeypatch.setenv("TYBEC_CACHE_DIR", str(tmp_path / "cache"))
        clear_calibration_cache()
        first = EstimationPipeline(CompilationOptions(device=SMALL_EDU_DEVICE))
        first.calibrate()
        assert first.stats.calibration_misses == 1

        clear_calibration_cache()   # "new process": memory cold, disk warm
        second = EstimationPipeline(CompilationOptions(device=SMALL_EDU_DEVICE))
        second.calibrate()
        assert second.stats.disk_hits == 3          # cost db + dram + host
        assert second.stats.calibration_misses == 0  # nothing recomputed
        assert second.cost_db.as_dict() == first.cost_db.as_dict()

        clear_calibration_cache()

    def test_pipeline_results_identical_with_and_without_persistence(
        self, tmp_path, monkeypatch
    ):
        from repro.compiler import CompilationOptions, EstimationPipeline
        from repro.compiler.pipeline import clear_calibration_cache
        from repro.explore import canonical_report_dict
        from repro.kernels import get_kernel

        kernel = get_kernel("sor")
        workload = kernel.workload((8, 8, 8), iterations=10)
        module = kernel.build_module(lanes=2, grid=(8, 8, 8))

        monkeypatch.setenv("TYBEC_CACHE_DIR", str(tmp_path / "cache"))
        clear_calibration_cache()
        with_disk = EstimationPipeline(CompilationOptions()).cost(module, workload)

        monkeypatch.setenv("TYBEC_CACHE_DIR", "off")
        clear_calibration_cache()
        without_disk = EstimationPipeline(CompilationOptions()).cost(module, workload)
        assert canonical_report_dict(with_disk) == canonical_report_dict(without_disk)

        clear_calibration_cache()
