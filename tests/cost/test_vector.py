"""Unit tests of the vectorized cost core (:mod:`repro.cost.vector`).

The differential contract with the scalar oracle is pinned end-to-end in
``tests/explore/test_dense.py``; here the individual array primitives and
the parameter fast-paths are exercised in isolation.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cost.throughput import EKITParameters, estimate_throughput
from repro.cost.vector import (
    LIMITING_ORDER,
    RESOURCE_ORDER,
    FamilyVector,
    evaluate_group,
    lane_axis,
    pareto_mask,
)
from repro.models.memory_execution import MemoryExecutionForm


def _params(**overrides) -> EKITParameters:
    base = dict(
        hpb_gbps=8.0, rho_h=0.7, gpb_gbps=25.0, rho_g=0.8,
        ngs=512, nwpt=4, nki=10, noff=17, kpd=120, fd_mhz=200.0,
        ni=12, knl=1, dv=1, word_bytes=4,
    )
    base.update(overrides)
    return EKITParameters.for_pipelined_design(**base)


class TestWithLanesFastCopy:
    def test_matches_dataclasses_replace(self):
        p = _params()
        fast = p.with_lanes(8)
        slow = dataclasses.replace(p, knl=8)
        assert fast == slow
        assert fast.knl == 8
        # nothing else drifted
        for field in dataclasses.fields(EKITParameters):
            if field.name != "knl":
                assert getattr(fast, field.name) == getattr(p, field.name)

    def test_same_lane_count_returns_self(self):
        p = _params()
        assert p.with_lanes(p.knl) is p

    def test_rejects_non_positive_lanes(self):
        p = _params()
        with pytest.raises(ValueError, match="knl must be positive"):
            p.with_lanes(0)
        with pytest.raises(ValueError, match="knl must be positive"):
            p.with_lanes(-4)

    def test_derived_bundle_is_shared_and_correct(self):
        p = _params()
        assert p.fd_hz == p.fd_mhz * 1e6  # computes (and caches) the bundle
        q = p.with_lanes(16)
        assert q._derived is p._derived  # knl-invariant, so shared
        assert q.sustained_host_gbps == p.hpb_gbps * p.rho_h
        assert q.sustained_dram_gbps == p.gpb_gbps * p.rho_g
        assert q.total_stream_bytes == float(p.ngs) * p.nwpt * p.word_bytes

    def test_throughput_identical_through_fast_copy(self):
        p = _params(knl=1)
        fast = p.with_lanes(4)
        slow = dataclasses.replace(p, knl=4)
        for form in MemoryExecutionForm:
            a = estimate_throughput(fast, form).as_dict()
            b = estimate_throughput(slow, form).as_dict()
            assert a == b


@pytest.fixture
def fv() -> FamilyVector:
    return FamilyVector(
        kernel="toy", device="toy-device", pe_name="toy_pe",
        pe_usage=(310.4, 451.9, 0.0, 3.0),
        buffer_usage=(64.2, 642.0, 1200.0, 0.0),
        balancing_bits=96,
        in_streams_per_lane=3, out_streams_per_lane=1,
        element_width=18, word_bytes=3,
        nwpt=4, noff=17, kpd=120, ni=12, dv=1,
    )


CAPS = {"alut": 200_000, "reg": 400_000, "bram_bits": 4_000_000, "dsp": 256}


class TestLaneAxis:
    def test_mirrors_scalar_accumulation(self, fv):
        lanes = (1, 2, 8)
        axis = lane_axis(fv, lanes, CAPS)
        for i, k in enumerate(lanes):
            streams = (fv.in_streams_per_lane + fv.out_streams_per_lane) * k
            expect = {}
            for j, name in enumerate(RESOURCE_ORDER):
                total = round(fv.pe_usage[j] * k + fv.buffer_usage[j] * k
                              + fv.stream_usage[j] * streams)
                if name == "reg":
                    total += fv.balancing_bits * k
                expect[name] = total / CAPS[name]
            assert axis.util_max[i] == max(expect.values())
            worst = max(expect, key=expect.get)  # first max, dict order
            assert RESOURCE_ORDER[axis.limiting_resource[i]] == worst
            assert bool(axis.fits_resources[i]) == all(u <= 1.0 for u in expect.values())

    def test_large_lane_counts_do_not_fit(self, fv):
        axis = lane_axis(fv, (1, 100_000), CAPS)
        assert bool(axis.fits_resources[0])
        assert not bool(axis.fits_resources[1])


class TestEvaluateGroup:
    @pytest.mark.parametrize("form", list(MemoryExecutionForm))
    def test_mirrors_scalar_breakdown(self, fv, form):
        lanes = np.array([1, 2, 8], dtype=np.int64)
        clocks = np.array([150.0, 250.0])
        fits = np.array([True, True, False])
        group = evaluate_group(
            fv, lanes, clocks, form=form, ngs=512, nki=10,
            hpb_gbps=8.0, rho_h=0.7, gpb_gbps=25.0, rho_g=0.8,
            fits_resources=fits,
        )
        assert group.ekit.shape == (3, 2)
        for li, k in enumerate(lanes):
            for ci, mhz in enumerate(clocks):
                params = EKITParameters.for_pipelined_design(
                    hpb_gbps=8.0, rho_h=0.7, gpb_gbps=25.0, rho_g=0.8,
                    ngs=512, nwpt=fv.nwpt, nki=10, noff=fv.noff, kpd=fv.kpd,
                    fd_mhz=float(mhz), ni=fv.ni, knl=int(k), dv=fv.dv,
                    word_bytes=fv.word_bytes,
                )
                est = estimate_throughput(params, form)
                assert group.ekit[li, ci] == est.ekit
                assert group.total_s[li, ci] == est.breakdown.total
                assert LIMITING_ORDER[group.limiting[li, ci]] is est.limiting_factor

    def test_feasibility_combines_resources_and_bandwidth(self, fv):
        lanes = np.array([1, 64], dtype=np.int64)
        clocks = np.array([250.0])
        group = evaluate_group(
            fv, lanes, clocks, form=MemoryExecutionForm.A, ngs=512, nki=10,
            hpb_gbps=8.0, rho_h=0.7, gpb_gbps=25.0, rho_g=0.8,
            fits_resources=np.array([True, True]),
        )
        # 64 lanes at 250 MHz demand more than the sustained host link
        assert bool(group.fits_bandwidth[0, 0])
        assert not bool(group.fits_bandwidth[1, 0])
        assert not bool(group.feasible[1, 0])
        # form C never constrains the sustained links
        group_c = evaluate_group(
            fv, lanes, clocks, form=MemoryExecutionForm.C, ngs=512, nki=10,
            hpb_gbps=8.0, rho_h=0.7, gpb_gbps=25.0, rho_g=0.8,
            fits_resources=np.array([True, False]),
        )
        assert group_c.fits_bandwidth.all()
        assert not bool(group_c.feasible[1, 0])


class TestParetoMask:
    def test_empty(self):
        assert pareto_mask(np.empty((0, 2))).shape == (0,)

    def test_single_point_survives(self):
        assert pareto_mask(np.array([[1.0, 2.0]])).tolist() == [True]

    def test_identical_scores_all_survive(self):
        scores = np.array([[1.0, 2.0]] * 5)
        assert pareto_mask(scores).all()

    def test_simple_dominance(self):
        scores = np.array([[1.0, 1.0], [2.0, 2.0], [0.5, 3.0]])
        assert pareto_mask(scores).tolist() == [False, True, True]

    def test_duplicates_of_dominated_point_all_die(self):
        scores = np.array([[1.0, 1.0], [1.0, 1.0], [2.0, 2.0]])
        assert pareto_mask(scores).tolist() == [False, False, True]

    def test_three_objectives_fallback(self):
        scores = np.array([
            [1.0, 1.0, 1.0],
            [2.0, 0.5, 1.0],
            [2.0, 1.0, 1.0],
            [2.0, 1.0, 1.0],
        ])
        assert pareto_mask(scores).tolist() == [False, False, True, True]

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError, match="2-D"):
            pareto_mask(np.zeros(4))

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.tuples(st.integers(-4, 4), st.integers(-4, 4)),
                    min_size=1, max_size=40))
    def test_matches_pairwise_definition(self, points):
        scores = np.array(points, dtype=np.float64)
        mask = pareto_mask(scores)
        rows = [tuple(r) for r in points]
        for i, row in enumerate(rows):
            dominated = any(
                other != row and all(o >= s for o, s in zip(other, row))
                for other in rows
            )
            assert mask[i] == (not dominated)
