"""Tests for the cost report and feasibility checks."""

import pytest

from repro.cost.report import CostReport, FeasibilityCheck
from repro.cost.resource_model import ModuleResourceEstimate
from repro.cost.throughput import EKITParameters, LimitingFactor, ekit_form_b
from repro.substrate import MAIA_STRATIX_V_GSD8, ResourceUsage


def make_feasibility(**overrides):
    defaults = dict(
        fits_resources=True,
        limiting_resource="alut",
        limiting_resource_utilization=0.4,
        required_dram_gbps=2.0,
        available_dram_gbps=10.0,
        required_host_gbps=0.5,
        available_host_gbps=3.0,
    )
    defaults.update(overrides)
    return FeasibilityCheck(**defaults)


def make_report(**feas_overrides):
    params = EKITParameters(
        hpb_gbps=4.0, rho_h=0.8, gpb_gbps=38.4, rho_g=0.6,
        ngs=13824, nwpt=3, nki=1000, noff=576, kpd=20, fd_mhz=200.0,
        nto=1 / (16 * 3), ni=16, knl=2, dv=1,
    )
    throughput = ekit_form_b(params)
    resources = ModuleResourceEstimate(
        design="sor_l2",
        total=ResourceUsage(alut=1200, reg=3600, bram_bits=41000, dsp=0),
    )
    return CostReport(
        design="sor_l2",
        device=MAIA_STRATIX_V_GSD8,
        resources=resources,
        throughput=throughput,
        feasibility=make_feasibility(**feas_overrides),
        estimation_seconds=0.002,
        notes=["memory-execution form B: fits in DRAM"],
    )


class TestFeasibilityCheck:
    def test_feasible_when_everything_fits(self):
        check = make_feasibility()
        assert check.fits_bandwidth
        assert check.feasible

    def test_infeasible_on_resources(self):
        check = make_feasibility(fits_resources=False, limiting_resource_utilization=1.4)
        assert not check.feasible
        assert check.fits_bandwidth

    def test_infeasible_on_dram_bandwidth(self):
        check = make_feasibility(required_dram_gbps=25.0)
        assert not check.fits_bandwidth
        assert not check.feasible

    def test_infeasible_on_host_bandwidth(self):
        check = make_feasibility(required_host_gbps=9.0)
        assert not check.feasible

    def test_as_dict(self):
        d = make_feasibility().as_dict()
        assert d["feasible"] is True
        assert d["limiting_resource"] == "alut"


class TestCostReport:
    def test_convenience_views(self):
        report = make_report()
        assert report.usage.alut == 1200
        assert 0 < report.utilization["alut"] < 0.01
        assert report.ekit == report.throughput.ekit
        assert isinstance(report.limiting_factor, LimitingFactor)
        assert report.feasible

    def test_to_text_contains_key_sections(self):
        text = make_report().to_text()
        for fragment in ("Cost report", "ALUTs", "DSP blocks", "kernel-instances/s",
                         "limiting factor", "time breakdown", "Feasibility", "Notes"):
            assert fragment in text

    def test_to_text_infeasible_variant(self):
        text = make_report(fits_resources=False).to_text()
        assert "feasible       : False" in text

    def test_as_dict_roundtrips_key_fields(self):
        d = make_report().as_dict()
        assert d["design"] == "sor_l2"
        assert d["device"] == MAIA_STRATIX_V_GSD8.name
        assert d["throughput"]["form"] == "B"
        assert d["estimation_seconds"] == pytest.approx(0.002)
        assert d["feasibility"]["feasible"] is True
        assert d["notes"]
