"""Tests for the EKIT throughput expressions (Equations 1-3)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cost import (
    EKITParameters,
    LimitingFactor,
    ekit_form_a,
    ekit_form_b,
    ekit_form_c,
    estimate_throughput,
)
from repro.models import MemoryExecutionForm


def make_params(**overrides):
    """SOR-like parameters on a Maia-class board: 24^3 grid, three streamed
    words per work-item (p and rhs in, p_new out), 4-byte words."""
    defaults = dict(
        hpb_gbps=4.0,
        rho_h=0.8,
        gpb_gbps=38.4,
        rho_g=0.65,
        ngs=24 ** 3,
        nwpt=3,
        nki=1000,
        noff=576,
        kpd=25,
        fd_mhz=200.0,
        nto=1.0 / (19 * 3),
        ni=19,
        knl=1,
        dv=1,
        word_bytes=4,
    )
    defaults.update(overrides)
    return EKITParameters(**defaults)


class TestParameters:
    def test_validation_positive(self):
        with pytest.raises(ValueError):
            make_params(ngs=0)
        with pytest.raises(ValueError):
            make_params(knl=0)
        with pytest.raises(ValueError):
            make_params(fd_mhz=0)

    def test_validation_rho_range(self):
        with pytest.raises(ValueError):
            make_params(rho_h=0.0)
        with pytest.raises(ValueError):
            make_params(rho_g=1.5)

    def test_derived(self):
        p = make_params()
        assert p.fd_hz == pytest.approx(200e6)
        assert p.sustained_host_gbps == pytest.approx(3.2)
        assert p.total_stream_bytes == pytest.approx(24 ** 3 * 3 * 4)

    def test_with_lanes(self):
        assert make_params().with_lanes(8).knl == 8

    def test_pipelined_extraction_rule(self):
        p = EKITParameters.for_pipelined_design(
            hpb_gbps=4.0, rho_h=0.8, gpb_gbps=9.6, rho_g=0.65,
            ngs=1000, nwpt=11, nki=10, noff=0, kpd=20, fd_mhz=200.0,
            ni=19, knl=2, initiation_interval=1.0,
        )
        # compute term must reduce to NGS * II / (FD * KNL * DV)
        est = ekit_form_c(p)
        expected_compute = 1000 * 1.0 / (200e6 * 2 * 1)
        assert est.breakdown.compute == pytest.approx(expected_compute)


class TestForms:
    def test_form_a_includes_full_host_transfer(self):
        p = make_params()
        a = ekit_form_a(p)
        b = ekit_form_b(p)
        assert a.breakdown.host_transfer == pytest.approx(
            b.breakdown.host_transfer * p.nki
        )
        assert a.ekit < b.ekit

    def test_form_b_faster_or_equal_to_form_a(self):
        for lanes in (1, 2, 4, 8, 16):
            p = make_params(knl=lanes)
            assert ekit_form_b(p).ekit >= ekit_form_a(p).ekit

    def test_form_c_always_compute_bound(self):
        # even with terrible DRAM bandwidth, form C ignores the streaming term
        p = make_params(gpb_gbps=0.5, rho_g=0.1)
        c = ekit_form_c(p)
        assert c.breakdown.dram_streaming == 0.0
        assert c.limiting_factor in (
            LimitingFactor.COMPUTE,
            LimitingFactor.PIPELINE_FILL,
            LimitingFactor.OFFSET_FILL,
            LimitingFactor.HOST_BANDWIDTH,
        )

    def test_form_c_fastest(self):
        p = make_params(gpb_gbps=2.0, rho_g=0.3)
        assert ekit_form_c(p).ekit >= ekit_form_b(p).ekit >= ekit_form_a(p).ekit

    def test_dispatch(self):
        p = make_params()
        assert estimate_throughput(p, "A").form is MemoryExecutionForm.A
        assert estimate_throughput(p, MemoryExecutionForm.B).form is MemoryExecutionForm.B
        assert estimate_throughput(p, "C").form is MemoryExecutionForm.C

    def test_breakdown_total_is_sum(self):
        p = make_params()
        b = ekit_form_b(p).breakdown
        assert b.total == pytest.approx(
            b.host_transfer + b.offset_fill + b.pipeline_fill + b.streaming_or_compute
        )
        assert b.streaming_or_compute == max(b.dram_streaming, b.compute)

    def test_ekit_is_reciprocal_of_time(self):
        p = make_params()
        est = ekit_form_b(p)
        assert est.ekit == pytest.approx(1.0 / est.breakdown.total)
        assert est.kernel_instance_time_s == pytest.approx(est.breakdown.total)
        assert est.application_time_s == pytest.approx(p.nki * est.breakdown.total)
        assert est.ewgt == est.ekit

    def test_cycles_per_kernel_instance(self):
        p = make_params()
        est = ekit_form_c(p)
        assert est.cycles_per_kernel_instance == pytest.approx(
            est.breakdown.total * 200e6
        )


class TestScalingBehaviour:
    def test_lanes_improve_compute_bound_designs(self):
        p1 = make_params(knl=1)
        p4 = make_params(knl=4)
        # with generous bandwidth the design is compute bound and scales
        e1 = ekit_form_c(p1)
        e4 = ekit_form_c(p4)
        assert e4.ekit > 2.5 * e1.ekit

    def test_communication_wall_form_a(self):
        """Beyond a few lanes a form-A design stops scaling: the host
        transfer dominates (the 'communication wall' of Figure 15)."""
        ekits = [ekit_form_a(make_params(knl=l, nki=1)).ekit for l in (1, 2, 4, 8, 16, 32)]
        assert ekits[1] > ekits[0]  # still scaling early on
        # saturation: the last doubling buys almost nothing
        assert ekits[-1] / ekits[-2] < 1.1
        assert ekit_form_a(make_params(knl=32, nki=1)).limiting_factor is LimitingFactor.HOST_BANDWIDTH

    def test_communication_wall_moves_out_for_form_b(self):
        """Form B amortises host transfers, so the wall moves to the DRAM
        streams at a higher lane count (Figure 15's observation)."""
        wall_a = None
        wall_b = None
        for lanes in (1, 2, 4, 8, 16, 32, 64):
            a = ekit_form_a(make_params(knl=lanes, nki=1000))
            b = ekit_form_b(make_params(knl=lanes, nki=1000))
            if wall_a is None and a.limiting_factor is not LimitingFactor.COMPUTE:
                wall_a = lanes
            if wall_b is None and b.limiting_factor is not LimitingFactor.COMPUTE:
                wall_b = lanes
        assert wall_a is not None and wall_b is not None
        assert wall_b > wall_a

    def test_bandwidth_scaling_hurts(self):
        good = ekit_form_b(make_params(rho_g=0.9))
        poor = ekit_form_b(make_params(rho_g=0.05))
        assert good.ekit > poor.ekit
        assert poor.limiting_factor is LimitingFactor.DRAM_BANDWIDTH

    def test_deeper_pipeline_only_matters_for_small_ndranges(self):
        small_shallow = ekit_form_c(make_params(ngs=128, kpd=5))
        small_deep = ekit_form_c(make_params(ngs=128, kpd=500))
        big_shallow = ekit_form_c(make_params(ngs=10 ** 6, kpd=5))
        big_deep = ekit_form_c(make_params(ngs=10 ** 6, kpd=500))
        assert small_shallow.ekit / small_deep.ekit > big_shallow.ekit / big_deep.ekit

    @given(
        lanes=st.integers(min_value=1, max_value=64),
        ngs=st.integers(min_value=100, max_value=10 ** 6),
        nwpt=st.integers(min_value=1, max_value=16),
    )
    @settings(max_examples=40, deadline=None)
    def test_ekit_positive_and_monotone_in_lanes(self, lanes, ngs, nwpt):
        p = make_params(knl=lanes, ngs=ngs, nwpt=nwpt, nto=1.0 / (19 * nwpt))
        p2 = p.with_lanes(lanes * 2)
        for form_fn in (ekit_form_a, ekit_form_b, ekit_form_c):
            e1, e2 = form_fn(p), form_fn(p2)
            assert e1.ekit > 0
            assert e2.ekit >= e1.ekit * 0.999  # more lanes never hurt

    def test_as_dict(self):
        est = ekit_form_b(make_params())
        d = est.as_dict()
        assert d["form"] == "B"
        assert "breakdown" in d and d["ekit_per_s"] > 0
