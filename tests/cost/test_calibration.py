"""Tests for cost expressions and device calibration (Figure 9)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cost import (
    DeviceCostDB,
    PiecewiseLinearCost,
    PolynomialCost,
    StepCost,
    calibrate_device,
    fit_piecewise_linear,
    fit_polynomial,
    fit_step,
)
from repro.cost.calibration import CostExpression, OperatorCostModel
from repro.ir import ScalarType
from repro.substrate import MAIA_STRATIX_V_GSD8, SyntheticSynthesizer


@pytest.fixture(scope="module")
def synth():
    return SyntheticSynthesizer(MAIA_STRATIX_V_GSD8)


@pytest.fixture(scope="module")
def cost_db(synth):
    return calibrate_device(synth.characterize())


class TestExpressions:
    def test_polynomial(self):
        p = PolynomialCost([-10.6, 3.7, 1.0])  # the paper's divider trend line
        assert p.evaluate(24) == pytest.approx(654.2, abs=0.5)
        assert p.degree == 2
        assert "x^2" in str(p)

    def test_polynomial_clamped_non_negative_via_call(self):
        p = PolynomialCost([-100.0])
        assert p(32) == 0.0

    def test_piecewise_linear_interpolates(self):
        pwl = PiecewiseLinearCost([18, 36, 54], [9, 36, 63])
        assert pwl.evaluate(27) == pytest.approx((9 + 36) / 2)
        # extrapolation uses the slope of the nearest segment
        assert pwl.evaluate(72) == pytest.approx(63 + (63 - 36) / 18 * 18)
        assert pwl.evaluate(9) == pytest.approx(9 - 27 / 18 * 9)

    def test_piecewise_requires_two_points(self):
        with pytest.raises(ValueError):
            PiecewiseLinearCost([1], [1])

    def test_step_cost(self):
        step = StepCost(unit_width=18)
        assert step.evaluate(18) == 1
        assert step.evaluate(19) == 2
        assert step.evaluate(36) == 2
        assert step.evaluate(64) == 8
        assert step.evaluate(0) == 0

    def test_serialization_roundtrip(self):
        for expr in [
            PolynomialCost([1.0, 2.0]),
            PiecewiseLinearCost([1, 2], [3, 4]),
            StepCost(18, 1.0),
        ]:
            back = CostExpression.from_dict(expr.as_dict())
            assert type(back) is type(expr)
            assert back.evaluate(20) == pytest.approx(expr.evaluate(20))

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            CostExpression.from_dict({"kind": "spline"})


class TestFitting:
    def test_quadratic_fit_from_three_points_matches_paper(self, synth):
        """Figure 9's experiment: fit the divider ALUT curve from the
        18/32/64-bit synthesis results and interpolate 24 bits."""
        points = []
        for width in (18, 32, 64):
            usage = synth.synthesize_operator("div", ScalarType.uint(width))
            points.append((width, usage.alut))
        poly = fit_polynomial(points, degree=2)
        predicted = poly(24)
        actual = synth.synthesize_operator("div", ScalarType.uint(24)).alut
        assert predicted == pytest.approx(actual, rel=0.05)
        assert predicted == pytest.approx(654, rel=0.08)

    def test_fit_polynomial_requires_enough_points(self):
        with pytest.raises(ValueError):
            fit_polynomial([(1, 1), (2, 2)], degree=2)

    def test_fit_piecewise_linear(self):
        pwl = fit_piecewise_linear([(18, 9), (36, 36)])
        assert pwl.evaluate(27) == pytest.approx(22.5)

    def test_fit_step_recovers_unit(self, synth):
        points = [
            (w, synth.synthesize_operator("mul", ScalarType.uint(w)).dsp)
            for w in (18, 32, 64)
        ]
        step = fit_step(points, unit_width=18)
        assert step.evaluate(18) == pytest.approx(1, abs=0.2)
        assert step.evaluate(64) == pytest.approx(8, abs=1)

    def test_fit_step_needs_points(self):
        with pytest.raises(ValueError):
            fit_step([])

    @given(
        coeffs=st.lists(st.floats(min_value=0.1, max_value=10), min_size=2, max_size=3),
    )
    @settings(max_examples=25, deadline=None)
    def test_polynomial_fit_recovers_exact_polynomials(self, coeffs):
        truth = PolynomialCost(list(coeffs))
        degree = len(coeffs) - 1
        points = [(w, truth.evaluate(w)) for w in (8, 16, 24, 32, 48, 64)]
        fitted = fit_polynomial(points, degree)
        for w in (12, 20, 40):
            assert fitted.evaluate(w) == pytest.approx(truth.evaluate(w), rel=1e-6)


class TestDeviceCostDB:
    def test_calibrated_db_has_expected_opcodes(self, cost_db):
        assert {"add", "mul", "div"} <= cost_db.opcodes()
        assert cost_db.has("mul", constant_operand=True)

    def test_lookup_interpolates_unseen_width(self, cost_db, synth):
        est = cost_db.lookup("div", 24)
        actual = synth.synthesize_operator("div", ScalarType.uint(24))
        assert est.alut == pytest.approx(actual.alut, rel=0.05)

    def test_lookup_falls_back_to_nonconstant(self, cost_db):
        # 'add' has no constant-operand calibration; the fallback must work
        usage = cost_db.lookup("add", 32, constant_operand=True)
        assert usage.alut > 0

    def test_lookup_falls_back_to_category(self, cost_db):
        # 'udiv' was not characterised but shares the 'div' category
        usage = cost_db.lookup("udiv", 32)
        ref = cost_db.lookup("div", 32)
        assert usage.alut == pytest.approx(ref.alut)

    def test_lookup_unknown_raises(self):
        db = DeviceCostDB("empty")
        with pytest.raises(KeyError):
            db.lookup("add", 32)

    def test_constant_mul_has_no_dsp(self, cost_db):
        assert cost_db.lookup("mul", 48, constant_operand=True).dsp == 0
        assert cost_db.lookup("mul", 48, constant_operand=False).dsp >= 2

    def test_serialization_roundtrip(self, cost_db):
        data = cost_db.as_dict()
        back = DeviceCostDB.from_dict(data)
        assert back.device_name == cost_db.device_name
        assert back.opcodes() == cost_db.opcodes()
        for opcode in ("add", "mul", "div"):
            for width in (18, 24, 32, 64):
                a = cost_db.lookup(opcode, width)
                b = back.lookup(opcode, width)
                assert a.alut == pytest.approx(b.alut)
                assert a.dsp == pytest.approx(b.dsp)

    def test_operator_model_roundtrip(self, cost_db):
        model = next(iter(cost_db.models.values()))
        back = OperatorCostModel.from_dict(model.as_dict())
        assert back.opcode == model.opcode
        assert back.estimate(32).alut == pytest.approx(model.estimate(32).alut)

    @given(width=st.integers(min_value=12, max_value=96))
    @settings(max_examples=30, deadline=None)
    def test_estimates_track_synthesis_within_ten_percent(self, width):
        """Core accuracy property: for integer arithmetic the fitted
        expressions stay close to what the synthesiser produces."""
        synth = SyntheticSynthesizer(MAIA_STRATIX_V_GSD8)
        db = calibrate_device(synth.characterize(widths=[8, 16, 18, 24, 32, 48, 64, 96]))
        for opcode in ("add", "div"):
            est = db.lookup(opcode, width).alut
            act = synth.synthesize_operator(opcode, ScalarType.uint(width)).alut
            if act > 10:
                assert est == pytest.approx(act, rel=0.12)
