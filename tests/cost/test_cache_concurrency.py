"""Concurrency stress tests for the cache layer.

The exploration service shares one :class:`BoundedCache` /
:class:`DiskCache` instance across every request thread, so the cache
layer must survive genuinely concurrent get/put/stats/clear traffic —
with eviction active — without raising and without losing counter
consistency.  These tests hammer both caches from many threads behind a
barrier (maximum contention) and then check the invariants the locked
counters promise.
"""

from __future__ import annotations

import threading

import pytest

from repro.cost.cache import BoundedCache, DiskCache, env_capacity

THREADS = 8
OPS = 150


def _run_threads(worker, count=THREADS):
    """Start ``count`` workers behind one barrier; re-raise any failure."""
    barrier = threading.Barrier(count)
    errors: list[BaseException] = []
    results: list = []

    def _wrapped(tid: int) -> None:
        try:
            barrier.wait()
            results.append(worker(tid))
        except BaseException as exc:  # noqa: BLE001 - surfaced to the test
            errors.append(exc)

    threads = [threading.Thread(target=_wrapped, args=(tid,))
               for tid in range(count)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    if errors:
        raise errors[0]
    return results


class TestBoundedCacheThreaded:
    def test_stress_with_eviction(self):
        cache = BoundedCache(maxsize=16, name="stress")

        def worker(tid: int) -> int:
            gets = 0
            for i in range(OPS):
                key = ("k", (tid * 7 + i) % 48)  # 48 keys >> 16 slots
                op = i % 5
                if op in (0, 1):
                    cache.put(key, i)
                elif op in (2, 3):
                    cache.get(key)
                    gets += 1
                else:
                    info = cache.info()
                    assert info["size"] <= info["capacity"]
                    assert len(cache) <= cache.maxsize
            return gets

        total_gets = sum(_run_threads(worker))
        info = cache.info()
        assert info["hits"] + info["misses"] == total_gets
        assert info["size"] <= info["capacity"]
        assert info["evictions"] > 0, "eviction never fired: stress too gentle"

    def test_concurrent_clear_is_safe(self):
        cache = BoundedCache(maxsize=8)

        def worker(tid: int) -> None:
            for i in range(OPS):
                if tid == 0 and i % 25 == 0:
                    cache.clear()
                else:
                    cache.put((tid, i % 12), i)
                    cache.get((tid, (i + 1) % 12))

        _run_threads(worker)
        assert len(cache) <= cache.maxsize


class TestDiskCacheThreaded:
    def test_stress_get_put_stats_clear(self, tmp_path):
        cache = DiskCache(tmp_path, capacity=8)

        def worker(tid: int) -> int:
            gets = 0
            for i in range(OPS):
                token = ("k", (tid * 5 + i) % 24)  # 24 keys >> capacity 8
                op = i % 7
                if op in (0, 1):
                    cache.put("stress", token, list(range(16)))
                elif op in (2, 3, 4):
                    cache.get("stress", token)
                    gets += 1
                elif op == 5:
                    stats = cache.stats()
                    assert stats["capacity_per_namespace"] == 8
                elif tid == 0 and i % 49 == 6:
                    cache.clear()
            return gets

        total_gets = sum(_run_threads(worker))
        stats = cache.stats()
        # every get() increments exactly one of hits/misses, under the lock
        assert stats["hits"] + stats["misses"] == total_gets
        for info in stats["namespaces"].values():
            assert info["entries"] >= 0
            assert info["bytes"] >= 0

    def test_stats_survives_concurrent_eviction(self, tmp_path):
        """The iterdir/stat race: stats() while eviction unlinks entries."""
        cache = DiskCache(tmp_path, capacity=4)
        stop = threading.Event()

        def churn() -> None:
            i = 0
            while not stop.is_set():
                cache.put("churn", ("t", i % 32), b"x" * 64)
                i += 1

        threads = [threading.Thread(target=churn) for _ in range(3)]
        for thread in threads:
            thread.start()
        try:
            for _ in range(200):
                stats = cache.stats()  # must never raise FileNotFoundError
                assert stats["schema_version"] >= 1
        finally:
            stop.set()
            for thread in threads:
                thread.join()
        assert cache.stats()["evictions"] > 0

    def test_occupancy_stays_bounded_under_threads(self, tmp_path):
        cache = DiskCache(tmp_path, capacity=6)

        def worker(tid: int) -> None:
            for i in range(OPS):
                cache.put("bound", ("t", tid, i), i)

        _run_threads(worker)
        entries = cache.stats()["namespaces"]["bound"]["entries"]
        # concurrent scans may interleave, but occupancy cannot run away:
        # every stride-th put per thread trims back toward capacity
        assert entries <= 6 + DiskCache.EVICTION_STRIDE * THREADS


class TestCapacityValidation:
    def test_env_capacity_rejects_zero(self, monkeypatch):
        monkeypatch.setenv("TYBEC_DISK_CACHE_CAPACITY", "0")
        with pytest.warns(RuntimeWarning, match="evict every cache entry"):
            assert env_capacity("TYBEC_DISK_CACHE_CAPACITY", 256) == 256

    def test_env_capacity_rejects_negative(self, monkeypatch):
        monkeypatch.setenv("TYBEC_DISK_CACHE_CAPACITY", "-3")
        with pytest.warns(RuntimeWarning):
            assert env_capacity("TYBEC_DISK_CACHE_CAPACITY", 256) == 256

    def test_env_capacity_accepts_positive(self, monkeypatch):
        monkeypatch.setenv("TYBEC_DISK_CACHE_CAPACITY", "17")
        assert env_capacity("TYBEC_DISK_CACHE_CAPACITY", 256) == 17

    def test_disk_cache_env_zero_falls_back(self, tmp_path, monkeypatch):
        monkeypatch.setenv("TYBEC_DISK_CACHE_CAPACITY", "0")
        with pytest.warns(RuntimeWarning):
            cache = DiskCache(tmp_path)
        assert cache.capacity == DiskCache.DEFAULT_CAPACITY
        # the fallback must actually protect the data: a put may not
        # evict the entry it just wrote
        cache.put("ns", ("a",), 1)
        assert cache.get("ns", ("a",)) == 1

    def test_disk_cache_explicit_zero_falls_back(self, tmp_path):
        with pytest.warns(RuntimeWarning):
            cache = DiskCache(tmp_path, capacity=0)
        assert cache.capacity == DiskCache.DEFAULT_CAPACITY

    def test_disk_cache_explicit_negative_falls_back(self, tmp_path):
        with pytest.warns(RuntimeWarning):
            cache = DiskCache(tmp_path, capacity=-1)
        assert cache.capacity == DiskCache.DEFAULT_CAPACITY


class TestFirstPutEvictionScan:
    def test_short_lived_workers_cannot_overshoot(self, tmp_path):
        """Fresh processes writing fewer than EVICTION_STRIDE entries each
        used to grow a namespace without bound (their per-process put
        counter never reached the stride); the first put of each process
        now scans on-disk occupancy instead."""
        capacity, per_worker = 4, 5
        assert per_worker < DiskCache.EVICTION_STRIDE
        for worker in range(6):
            cache = DiskCache(tmp_path, capacity=capacity)  # a "new process"
            for i in range(per_worker):
                cache.put("fleet", ("w", worker, i), b"payload")
        entries = DiskCache(tmp_path, capacity=capacity) \
            .stats()["namespaces"]["fleet"]["entries"]
        # each worker's first put trims accumulated excess, so occupancy
        # is bounded by capacity + one worker's writes — not 6 * 5 = 30
        assert entries <= capacity + per_worker

    def test_first_put_scan_trims_existing_excess(self, tmp_path):
        writer = DiskCache(tmp_path, capacity=100)
        for i in range(20):
            writer.put("ns", ("seed", i), i)
        fresh = DiskCache(tmp_path, capacity=4)
        fresh.put("ns", ("new",), 0)  # first put: scan fires immediately
        entries = fresh.stats()["namespaces"]["ns"]["entries"]
        assert entries <= 4
        assert fresh.stats()["evictions"] > 0
