"""Tests for the sustained-bandwidth empirical model."""

import pytest

from repro.cost import BandwidthTable, SustainedBandwidthModel
from repro.models.streaming import AccessPattern, PatternKind
from repro.substrate import MemorySystemSimulator


class TestBandwidthTable:
    def test_interpolation_and_clamping(self):
        t = BandwidthTable([1e3, 1e6, 1e9], [0.5, 3.0, 6.0])
        assert t.sustained(1e3) == pytest.approx(0.5)
        assert t.sustained(1e9) == pytest.approx(6.0)
        assert t.sustained(1e12) == pytest.approx(6.0)   # clamp above
        assert t.sustained(10) == pytest.approx(0.5)     # clamp below
        mid = t.sustained(10 ** 4.5)
        assert 0.5 < mid < 3.0

    def test_plateau(self):
        t = BandwidthTable([1, 10], [1.0, 2.0])
        assert t.plateau_gbps == 2.0

    def test_validation(self):
        with pytest.raises(ValueError):
            BandwidthTable([], [])
        with pytest.raises(ValueError):
            BandwidthTable([1, 2], [1])
        with pytest.raises(ValueError):
            BandwidthTable([0, 1], [1, 1])

    def test_roundtrip(self):
        t = BandwidthTable([1e3, 1e6], [0.5, 3.0])
        back = BandwidthTable.from_dict(t.as_dict())
        assert back.sustained(1e4) == pytest.approx(t.sustained(1e4))


class TestSustainedBandwidthModel:
    def test_paper_figure10_model(self):
        m = SustainedBandwidthModel.paper_figure10()
        # at 100x100 x 4 B the paper measures 0.3 GB/s contiguous
        assert m.sustained_gbps(100 * 100 * 4) == pytest.approx(0.3, abs=0.05)
        # plateau at ~6.3 GB/s
        assert m.sustained_gbps(6000 * 6000 * 4) == pytest.approx(6.3, abs=0.1)
        # strided stays around 0.07 regardless of size
        assert m.sustained_gbps(4000 * 4000 * 4, PatternKind.STRIDED) == pytest.approx(0.07, abs=0.02)

    def test_rho_factors(self):
        m = SustainedBandwidthModel.paper_figure10(peak_gbps=9.6)
        assert 0 < m.rho(100 * 100 * 4) < 0.1
        assert m.rho(6000 * 6000 * 4) == pytest.approx(6.3 / 9.6, rel=0.05)
        assert m.rho(1e12) <= 1.0

    def test_pattern_dispatch_with_access_pattern(self):
        m = SustainedBandwidthModel.paper_figure10()
        cont = m.sustained_gbps(1e7, AccessPattern.contiguous())
        strided = m.sustained_gbps(1e7, AccessPattern.strided(1000))
        rand = m.sustained_gbps(1e7, AccessPattern.random())
        assert cont / strided > 20
        assert strided == pytest.approx(rand)

    def test_from_simulator(self):
        sim = MemorySystemSimulator()
        m = SustainedBandwidthModel.from_simulator(sim, sides=(100, 1000, 3000, 6000))
        assert m.peak_gbps == pytest.approx(sim.dram.peak_gbps)
        assert m.contiguous.plateau_gbps == pytest.approx(6.3, rel=0.1)
        assert m.sustained_gbps(1e6, PatternKind.STRIDED) < 0.2
        assert len(m.measurements) == 8

    def test_from_measurements_requires_contiguous(self):
        with pytest.raises(ValueError):
            SustainedBandwidthModel.from_measurements([], peak_gbps=9.6)

    def test_from_measurements_fills_missing_strided(self):
        sim = MemorySystemSimulator()
        only_contiguous = [
            sim.stream_benchmark(s, 4, PatternKind.CONTIGUOUS) for s in (100, 1000, 4000)
        ]
        m = SustainedBandwidthModel.from_measurements(only_contiguous, peak_gbps=12.8)
        assert m.sustained_gbps(1e7, PatternKind.STRIDED) < m.sustained_gbps(1e7) / 10

    def test_flat_model_ignores_size_and_pattern(self):
        m = SustainedBandwidthModel.flat(peak_gbps=9.6, efficiency=0.8)
        assert m.sustained_gbps(100) == pytest.approx(9.6 * 0.8)
        assert m.sustained_gbps(1e10, PatternKind.STRIDED) == pytest.approx(9.6 * 0.8)

    def test_serialization_roundtrip(self):
        m = SustainedBandwidthModel.paper_figure10()
        back = SustainedBandwidthModel.from_dict(m.as_dict())
        assert back.sustained_gbps(1e6) == pytest.approx(m.sustained_gbps(1e6))
        assert back.peak_gbps == m.peak_gbps

    def test_invalid_peak(self):
        with pytest.raises(ValueError):
            SustainedBandwidthModel.flat(peak_gbps=0)
