"""Tests for the resource-utilisation cost model and module structure analysis."""

import pytest

from repro.cost import ResourceEstimator, calibrate_device
from repro.cost.resource_model import ModuleStructure
from repro.ir import IRBuilder, ScalarType
from repro.substrate import MAIA_STRATIX_V_GSD8, SyntheticSynthesizer

from tests.conftest import build_stencil_module

UI18 = ScalarType.uint(18)


@pytest.fixture(scope="module")
def estimator():
    synth = SyntheticSynthesizer(MAIA_STRATIX_V_GSD8)
    return ResourceEstimator(calibrate_device(synth.characterize()))


class TestModuleStructure:
    def test_single_lane_structure(self, stencil_module):
        s = ModuleStructure.from_module(stencil_module)
        assert s.kernel_function == "f0"
        assert s.lanes == 1
        assert s.instructions_per_pe == 6
        assert s.max_offset_span_words == 64  # ND1*ND2 = 8*8
        assert len(s.offset_buffers) == 2
        assert s.words_per_item == 3  # p, rhs, p_new ports
        assert s.element_width == 18

    def test_four_lane_structure(self, stencil_module_4lane):
        s = ModuleStructure.from_module(stencil_module_4lane)
        assert s.lanes == 4
        assert s.instance_counts["f0"] == 4
        assert s.input_streams == 8   # 2 input stream objects per lane
        assert s.output_streams == 4

    def test_coarse_grained_pipeline_counts_once(self):
        b = IRBuilder("coarse")
        fa = b.function("pipeA", kind="pipe", args=[(UI18, "x")])
        fa.add(UI18, fa.arg("x"), 1)
        fb = b.function("pipeB", kind="pipe", args=[(UI18, "x")])
        fb.mul(UI18, fb.arg("x"), 3)
        fb.mul(UI18, "1", "1")
        top = b.function("top", kind="pipe", args=[(UI18, "x")])
        top.call("pipeA", ["x"], kind="pipe")
        top.call("pipeB", ["x"], kind="pipe")
        main = b.function("main", kind="none")
        main.call("top", ["x"], kind="pipe")
        module = b.build()

        s = ModuleStructure.from_module(module)
        assert s.lanes == 1
        assert s.kernel_function == "pipeB"  # most instructions
        # instructions per PE include the whole chain
        assert s.instructions_per_pe == 3

    def test_netlist_reflects_structure(self, stencil_module_4lane):
        s = ModuleStructure.from_module(stencil_module_4lane)
        netlist = s.to_netlist()
        assert netlist.lanes == 4
        assert len(netlist.operators) == 6
        assert len(netlist.offset_buffer_bits) == 2
        assert netlist.input_streams == 2
        assert netlist.output_streams == 1

    def test_no_leaf_rejected(self):
        b = IRBuilder("empty")
        f = b.function("f0", kind="pipe", args=[(UI18, "x")])
        f.add(UI18, "x", 1)
        main = b.function("main", kind="none")
        main.call("f0", ["x"], kind="pipe")
        module = b.build()
        module.functions["f0"].body = [module.functions["main"].body[0]]  # make f0 call itself? no
        # instead: construct a module whose only reachable function has calls only
        b2 = IRBuilder("callsonly")
        mid = b2.function("mid", kind="par")
        mid.call("ghost", ["x"], kind="pipe")
        main2 = b2.function("main", kind="none")
        main2.call("mid", [], kind="par")
        m2 = b2.build(validate=False)
        with pytest.raises(Exception):
            ModuleStructure.from_module(m2)


class TestResourceEstimator:
    def test_instruction_estimate_uses_constant_variant(self, estimator, stencil_module):
        f0 = stencil_module.get_function("f0")
        const_mul = [i for i in f0.instructions() if i.opcode == "mul"][0]
        usage = estimator.estimate_instruction(const_mul)
        assert usage.dsp == 0  # constant multiply maps to LUTs

    def test_offset_buffer_small_vs_large(self, estimator, stencil_module):
        small = estimator._buffer_usage(18)
        large = estimator._buffer_usage(576 * 18)
        assert small.bram_bits == 0 and small.reg == 18
        assert large.bram_bits == 576 * 18

    def test_stream_control_zero(self, estimator):
        assert estimator.estimate_stream_control(0, 18).alut == 0

    def test_module_estimate_single_lane(self, estimator, stencil_module):
        est = estimator.estimate_module(stencil_module)
        assert est.total.alut > 0
        assert est.total.reg > 0
        assert est.structure.lanes == 1
        assert est.total.dsp == 0  # all multiplies are by constants
        # breakdown adds up (within rounding)
        parts = (
            sum((f.total for f in est.functions), start=est.offset_buffers)
            + est.stream_control
        )
        assert est.total.alut == pytest.approx(parts.alut, abs=2)

    def test_module_estimate_scales_with_lanes(self, estimator):
        one = estimator.estimate_module(build_stencil_module(lanes=1))
        four = estimator.estimate_module(build_stencil_module(lanes=4))
        assert four.total.alut == pytest.approx(4 * one.total.alut, rel=0.25)
        assert four.structure.lanes == 4

    def test_estimate_close_to_synthesis(self, estimator):
        """Table II property: the light-weight estimate lands within a few
        per cent of the synthetic synthesiser's 'actual' figures."""
        module = build_stencil_module(lanes=1, grid=(16, 16, 16))
        est = estimator.estimate_module(module)
        synth = SyntheticSynthesizer(MAIA_STRATIX_V_GSD8)
        actual = synth.synthesize_design(est.structure.to_netlist())
        for resource in ("alut", "reg", "bram_bits"):
            e, a = getattr(est.total, resource), getattr(actual, resource)
            if a > 50:
                assert abs(e - a) / a < 0.15, f"{resource}: est {e} vs actual {a}"

    def test_estimate_function_only_datapath(self, estimator, stencil_module):
        usage = estimator.estimate_function("f0", stencil_module)
        assert usage.bram_bits == 0  # buffers are not part of the datapath cost

    def test_as_dict(self, estimator, stencil_module):
        d = estimator.estimate_module(stencil_module).as_dict()
        assert d["design"] == stencil_module.name
        assert "total" in d and "functions" in d
