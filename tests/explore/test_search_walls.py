"""Edge-case tests for the guided search's wall detection.

The guided search stops expanding the lane axis on two conditions: the
variant no longer fits the device (computation wall) or throughput stops
improving while the design is bandwidth bound (communication wall).  These
tests drive the decision logic with crafted cost reports so each boundary
is exercised exactly.
"""

from dataclasses import dataclass

import pytest

from repro.cost.throughput import LimitingFactor
from repro.explore import VariantRecord, guided_search
from repro.explore.search import _select_best


@dataclass
class FakeFeasibility:
    fits_resources: bool = True
    fits_bandwidth: bool = True

    @property
    def feasible(self) -> bool:
        return self.fits_resources and self.fits_bandwidth


@dataclass
class FakeReport:
    ekit: float
    limiting_factor: LimitingFactor = LimitingFactor.COMPUTE
    fits_resources: bool = True
    estimation_seconds: float = 0.0

    @property
    def feasibility(self) -> FakeFeasibility:
        return FakeFeasibility(fits_resources=self.fits_resources)

    @property
    def feasible(self) -> bool:
        return self.fits_resources


class FakeCompiler:
    """Serves pre-scripted reports keyed by lane count."""

    def __init__(self, reports: dict[int, FakeReport]):
        self._reports = reports
        self.costed: list[int] = []

    def cost(self, module, workload, pattern=None):
        lanes = module  # the fake variants carry the lane count as module
        self.costed.append(lanes)
        return self._reports[lanes]


def make_variants(lanes: list[int]) -> list[VariantRecord]:
    return [
        VariantRecord(kernel="fake", lanes=l, module=l, workload=None) for l in lanes
    ]


class TestComputationWall:
    def test_stops_at_first_infeasible_variant(self):
        compiler = FakeCompiler({
            1: FakeReport(ekit=1.0),
            2: FakeReport(ekit=2.0),
            4: FakeReport(ekit=3.0, fits_resources=False),
            8: FakeReport(ekit=4.0),
        })
        result = guided_search(compiler, make_variants([1, 2, 4, 8]))
        # the infeasible variant is evaluated (that is how the wall is
        # found) but nothing beyond it
        assert compiler.costed == [1, 2, 4]
        assert result.evaluated == 3
        assert result.best_lanes == 2

    def test_computation_wall_wins_even_when_still_scaling(self):
        compiler = FakeCompiler({
            1: FakeReport(ekit=1.0),
            2: FakeReport(ekit=10.0, fits_resources=False),
            4: FakeReport(ekit=100.0),
        })
        result = guided_search(compiler, make_variants([1, 2, 4]))
        assert compiler.costed == [1, 2]
        assert result.best_lanes == 1

    def test_variants_walked_in_lane_order(self):
        compiler = FakeCompiler({l: FakeReport(ekit=float(l)) for l in (1, 2, 4)})
        guided_search(compiler, make_variants([4, 1, 2]))
        assert compiler.costed == [1, 2, 4]


class TestCommunicationWall:
    def test_stops_when_bandwidth_bound_and_gain_below_threshold(self):
        compiler = FakeCompiler({
            1: FakeReport(ekit=100.0),
            2: FakeReport(ekit=103.0, limiting_factor=LimitingFactor.HOST_BANDWIDTH),
            4: FakeReport(ekit=104.0, limiting_factor=LimitingFactor.HOST_BANDWIDTH),
        })
        result = guided_search(compiler, make_variants([1, 2, 4]), min_gain=1.05)
        # 103 < 100 * 1.05 while host-bandwidth bound: the wall
        assert compiler.costed == [1, 2]
        assert result.best_lanes == 2

    def test_dram_wall_detected_like_host_wall(self):
        compiler = FakeCompiler({
            1: FakeReport(ekit=100.0),
            2: FakeReport(ekit=101.0, limiting_factor=LimitingFactor.DRAM_BANDWIDTH),
            4: FakeReport(ekit=102.0),
        })
        result = guided_search(compiler, make_variants([1, 2, 4]), min_gain=1.05)
        assert compiler.costed == [1, 2]
        assert result.evaluated == 2

    def test_low_gain_while_compute_bound_keeps_going(self):
        # adding lanes to a compute-bound design can still pay off later,
        # so a small step is not a wall
        compiler = FakeCompiler({
            1: FakeReport(ekit=100.0),
            2: FakeReport(ekit=101.0, limiting_factor=LimitingFactor.COMPUTE),
            4: FakeReport(ekit=200.0),
        })
        result = guided_search(compiler, make_variants([1, 2, 4]), min_gain=1.05)
        assert compiler.costed == [1, 2, 4]
        assert result.best_lanes == 4


class TestMinGainBoundary:
    def test_gain_exactly_at_threshold_continues(self):
        # the wall condition is *strictly below* min_gain
        compiler = FakeCompiler({
            1: FakeReport(ekit=100.0),
            2: FakeReport(ekit=105.0, limiting_factor=LimitingFactor.HOST_BANDWIDTH),
            4: FakeReport(ekit=110.0, limiting_factor=LimitingFactor.HOST_BANDWIDTH),
        })
        result = guided_search(compiler, make_variants([1, 2, 4]), min_gain=1.05)
        # 105 == 100 * 1.05 -> not a wall; 110 < 105 * 1.05 -> wall
        assert compiler.costed == [1, 2, 4]
        assert result.evaluated == 3

    def test_min_gain_one_stops_only_on_regression(self):
        compiler = FakeCompiler({
            1: FakeReport(ekit=100.0),
            2: FakeReport(ekit=100.0, limiting_factor=LimitingFactor.HOST_BANDWIDTH),
            4: FakeReport(ekit=99.0, limiting_factor=LimitingFactor.HOST_BANDWIDTH),
        })
        result = guided_search(compiler, make_variants([1, 2, 4]), min_gain=1.0)
        # equal throughput is not below min_gain=1.0; the regression at 4 is
        assert compiler.costed == [1, 2, 4]
        assert result.evaluated == 3

    def test_requires_nonempty_variants(self):
        with pytest.raises(ValueError):
            guided_search(FakeCompiler({}), [])


class TestBestSelection:
    def test_best_ignores_infeasible(self):
        from repro.explore.search import ExplorationResult

        result = ExplorationResult(kernel="fake")
        result.reports = {
            1: FakeReport(ekit=1.0),
            2: FakeReport(ekit=50.0, fits_resources=False),
            4: FakeReport(ekit=10.0),
        }
        _select_best(result)
        assert result.best_lanes == 4

    def test_no_feasible_variant_leaves_best_none(self):
        from repro.explore.search import ExplorationResult

        result = ExplorationResult(kernel="fake")
        result.reports = {1: FakeReport(ekit=1.0, fits_resources=False)}
        _select_best(result)
        assert result.best_lanes is None
        assert result.best_report is None
