"""Differential suite: the dense broadcast path against the scalar oracle.

The contract mirrors the lane-scaling law's (see
``tests/compiler/test_lane_scaling.py``): a sweep evaluated through
``DenseBackend``'s struct-of-arrays pass, once materialized, must be
*byte-identical* — after the canonical 9-significant-digit rounding —
to the per-point reports the serial oracle produces for the same design
space, across every kernel, device, memory-execution form, lane/clock
subgrid and access pattern.  These tests pin that contract, the
array-level selection API, the edge axes (single point, infeasible
everywhere, empty space, empty frontier) and the automatic scalar
fallback for designs the dense path cannot represent.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cost.vector import DenseUnsupportedError
from repro.explore import DenseBackend, ExplorationEngine
from repro.explore.space import DesignSpace, linspace_clocks
from repro.kernels import REGISTRY, get_kernel
from repro.models.streaming import PatternKind
from repro.substrate import get_device
from repro.suite import SuiteConfig, WorkloadSuite, tiny_grid

KERNELS = tuple(REGISTRY.names())
DEVICES = ("stratix-v", "virtex-7", "small")

# one backend per module: the content-keyed caches are the feature under
# test as much as the math — every hit must still be byte-identical
DENSE = DenseBackend()


def _space(kernel: str, **overrides) -> DesignSpace:
    base = dict(
        kernel=get_kernel(kernel),
        grid=tiny_grid(get_kernel(kernel).default_grid),
        iterations=10,
        max_lanes=4,
    )
    base.update(overrides)
    return DesignSpace(**base)


def _assert_identical(space: DesignSpace) -> None:
    dense = ExplorationEngine(DENSE).explore(space)
    scalar = ExplorationEngine().explore(space)
    assert len(dense.entries) == len(space)
    assert dense.canonical_dicts() == scalar.canonical_dicts()


# ----------------------------------------------------------------------
# The differential contract
# ----------------------------------------------------------------------


@pytest.mark.parametrize("kernel", KERNELS)
def test_dense_matches_scalar_every_kernel(kernel):
    _assert_identical(_space(
        kernel,
        clocks_mhz=(None, 200.0),
        forms=("auto", "C"),
    ))


def test_dense_matches_scalar_across_devices_and_patterns():
    _assert_identical(_space(
        "sor",
        devices=tuple(get_device(d) for d in DEVICES),
        forms=("auto", "A", "B", "C"),
        patterns=(PatternKind.CONTIGUOUS, PatternKind.STRIDED, PatternKind.RANDOM),
    ))


def test_dense_matches_scalar_on_continuous_clock_axis():
    _assert_identical(_space(
        "hotspot",
        clocks_mhz=linspace_clocks(120.0, 280.0, 7),
        forms=("auto", "B"),
    ))


@settings(max_examples=30, deadline=None)
@given(
    kernel=st.sampled_from(KERNELS),
    device=st.sampled_from(DEVICES),
    lanes=st.lists(st.sampled_from([1, 2, 4, 8]), min_size=1, max_size=3,
                   unique=True),
    clocks=st.lists(st.sampled_from([None, 120.0, 175.0, 200.0, 266.0]),
                    min_size=1, max_size=2, unique=True),
    forms=st.lists(st.sampled_from(["auto", "A", "B", "C"]), min_size=1,
                   max_size=2, unique=True),
    pattern=st.sampled_from(list(PatternKind)),
)
def test_dense_matches_scalar_random_subgrids(kernel, device, lanes, clocks,
                                              forms, pattern):
    _assert_identical(_space(
        kernel,
        lanes=sorted(lanes),
        max_lanes=16,
        devices=(get_device(device),),
        clocks_mhz=tuple(clocks),
        forms=tuple(forms),
        patterns=(pattern,),
    ))


def test_suite_report_identical_dense_vs_scalar():
    config = SuiteConfig.tiny()
    dense = WorkloadSuite(config, backend=DenseBackend()).run()
    scalar = WorkloadSuite(config).run()
    assert dense.report.to_json() == scalar.report.to_json()


# ----------------------------------------------------------------------
# Edge axes
# ----------------------------------------------------------------------


def test_single_point_grid():
    space = _space("sor", lanes=[2], clocks_mhz=(200.0,), forms=("auto",))
    assert len(space) == 1
    _assert_identical(space)
    sweep = DENSE.explore_space(space)
    assert sweep.evaluated == 1
    best = sweep.best()
    assert best is not None
    assert best.point.lanes == 2


def test_infeasible_everywhere():
    space = _space("sor", grid=(16, 16, 16), lanes=[8, 16],
                   devices=(get_device("small"),), clocks_mhz=(200.0,))
    _assert_identical(space)
    sweep = DENSE.explore_space(space)
    assert sweep.feasible_count == 0
    assert sweep.best() is None
    # the empty frontier: nothing feasible, nothing recommended ...
    assert sweep.pareto_frontier() == []
    # ... unless infeasible points are explicitly requested
    assert len(sweep.pareto_frontier(include_infeasible=True)) >= 1
    # top-k falls back to all points when nothing fits, like the scalar path
    assert len(sweep.top(5)) == 2


def test_empty_space_no_valid_lanes():
    # 7 divides neither 8^3 nor anything on the axis: zero-point space
    space = _space("sor", lanes=[7])
    assert len(space) == 0
    sweep = DENSE.explore_space(space)
    assert sweep.evaluated == 0
    assert sweep.best() is None
    assert sweep.top(3) == []
    assert sweep.pareto_frontier() == []
    assert sweep.materialize_all().entries == []


# ----------------------------------------------------------------------
# Array-level selection vs materialized selection
# ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def rich_sweep():
    space = _space("sor", clocks_mhz=(150.0, 200.0, 250.0),
                   forms=("auto", "A", "C"))
    return DENSE.explore_space(space), space


def test_best_agrees_with_materialized_max(rich_sweep):
    sweep, _ = rich_sweep
    result = sweep.materialize_all()
    best = sweep.best()
    materialized_best = result.best()
    assert best is not None
    assert best.as_dict() == materialized_best.as_dict()


def test_top_k_agrees_with_materialized_sort(rich_sweep):
    sweep, _ = rich_sweep
    result = sweep.materialize_all()
    feasible = result.feasible()
    expect = sorted(feasible, key=lambda e: -e.report.ekit)[:5]
    got = sweep.top(5)
    assert [e.as_dict() for e in got] == [e.as_dict() for e in expect]


def test_frontier_agrees_with_materialized_frontier(rich_sweep):
    sweep, _ = rich_sweep
    result = sweep.materialize_all()
    array_frontier = sweep.pareto_frontier()
    entry_frontier = result.pareto_frontier()
    assert [e.as_dict() for e in array_frontier] == \
        [e.as_dict() for e in entry_frontier]


def test_custom_objectives_route_through_generic_frontier(rich_sweep):
    sweep, _ = rich_sweep
    objectives = (lambda e: e.report.ekit, lambda e: -e.point.lanes)
    got = sweep.pareto_frontier(objectives)
    expect = sweep.materialize_all().pareto_frontier(objectives)
    assert [e.as_dict() for e in got] == [e.as_dict() for e in expect]


def test_feasibility_mask_matches_reports(rich_sweep):
    sweep, _ = rich_sweep
    result = sweep.materialize_all()
    assert [bool(f) for f in sweep.feasible] == \
        [e.report.feasible for e in result.entries]
    assert sweep.feasible_count == len(result.feasible())


# ----------------------------------------------------------------------
# Fallback and backend protocol
# ----------------------------------------------------------------------


def test_non_separable_design_falls_back_to_scalar(monkeypatch):
    import repro.explore.dense as dense_mod

    def refuse(*args, **kwargs):
        raise DenseUnsupportedError("not lane-separable (test)")

    monkeypatch.setattr(dense_mod, "extract_family_vector", refuse)
    space = _space("sor", clocks_mhz=(200.0,))
    result = ExplorationEngine(DenseBackend()).explore(space)
    scalar = ExplorationEngine().explore(space)
    assert result.canonical_dicts() == scalar.canonical_dicts()


def test_explore_dense_requires_dense_backend():
    with pytest.raises(DenseUnsupportedError, match="no dense lowering"):
        ExplorationEngine().explore_dense(_space("sor"))


def test_backend_stats_expose_dense_counters():
    backend = DenseBackend()
    space = _space("sor", clocks_mhz=(200.0,))
    backend.explore_space(space)
    backend.explore_space(space)  # whole-sweep cache hit
    stats = backend.collect_stats()
    dense = stats["dense"]
    assert dense["sweeps"] == 2
    assert dense["points"] == 2 * len(space)
    assert dense["vector"][1] == 1  # one family extraction, then cache hits


# ----------------------------------------------------------------------
# CLI surface
# ----------------------------------------------------------------------


class TestDenseCli:
    def test_dense_explore_json(self, capsys):
        from repro.cli import main

        rc = main(["explore", "--kernel", "sor", "--grid", "8", "8", "8",
                   "--iterations", "10", "--max-lanes", "2", "--dense",
                   "--clocks", "150", "200", "--pareto", "--json"])
        assert rc == 0
        import json

        payload = json.loads(capsys.readouterr().out)
        assert payload["dense"] is True
        assert payload["evaluated"] == 4
        assert payload["points_per_second"] > 0
        assert payload["best"] is not None
        assert payload["pareto"]

    def test_dense_explore_prints_frontier(self, capsys):
        from repro.cli import main

        rc = main(["explore", "--kernel", "sor", "--grid", "8", "8", "8",
                   "--iterations", "10", "--max-lanes", "4", "--dense",
                   "--clock-range", "150:250:5", "--pareto"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Pareto frontier" in out
        assert "points/s" in out

    def test_dense_rejects_jobs(self, capsys):
        from repro.cli import main

        rc = main(["explore", "--kernel", "sor", "--grid", "8", "8", "8",
                   "--iterations", "10", "--dense", "--jobs", "2"])
        assert rc == 2
        assert "cannot be combined with --jobs" in capsys.readouterr().err

    def test_clock_range_conflicts_with_clocks(self, capsys):
        from repro.cli import main

        rc = main(["explore", "--kernel", "sor", "--grid", "8", "8", "8",
                   "--iterations", "10", "--clock-range", "150:250:4",
                   "--clocks", "100"])
        assert rc == 2
        assert "clock" in capsys.readouterr().err

    @pytest.mark.parametrize("spec", ["150:250", "abc:1:2", "250:150:4",
                                      "150:250:0", "-5:250:4"])
    def test_invalid_clock_range_specs(self, spec, capsys):
        from repro.cli import main

        rc = main(["explore", "--kernel", "sor", "--grid", "8", "8", "8",
                   "--iterations", "10", "--clock-range=" + spec])
        assert rc == 2
        assert capsys.readouterr().err

    def test_suite_run_dense_matches_scalar(self, capsys):
        import json

        from repro.cli import main

        assert main(["suite", "run", "--tiny", "--json", "--dense"]) == 0
        dense = json.loads(capsys.readouterr().out)
        assert main(["suite", "run", "--tiny", "--json"]) == 0
        scalar = json.loads(capsys.readouterr().out)
        assert dense == scalar
