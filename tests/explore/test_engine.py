"""Tests for the multi-axis design space and the exploration engine."""

import json

import pytest

from repro.explore import (
    DesignPoint,
    DesignSpace,
    ExplorationEngine,
    ProcessPoolBackend,
    SerialBackend,
    build_jobs,
    pareto_frontier,
)
from repro.kernels import SORKernel
from repro.models import MemoryExecutionForm, PatternKind
from repro.substrate import MAIA_STRATIX_V_GSD8, SMALL_EDU_DEVICE

GRID = (8, 8, 8)


def make_space(**overrides) -> DesignSpace:
    settings = dict(kernel=SORKernel(), grid=GRID, iterations=10, max_lanes=4)
    settings.update(overrides)
    return DesignSpace(**settings)


class TestDesignSpace:
    def test_single_axis_space_matches_lane_sweep(self):
        space = make_space()
        assert space.lane_counts() == [1, 2, 4]
        assert len(space) == 3
        assert space.active_axes == ["lanes"]

    def test_lanes_filtered_to_divisors(self):
        space = make_space(lanes=[1, 3, 4, 7, 16])
        assert space.lane_counts() == [1, 4, 16]

    def test_cartesian_product(self):
        space = make_space(
            clocks_mhz=(100.0, 200.0),
            forms=("A", "B"),
            patterns=(PatternKind.CONTIGUOUS, PatternKind.STRIDED),
        )
        assert len(space) == 3 * 2 * 2 * 2
        assert set(space.active_axes) == {"lanes", "clock_mhz", "form", "pattern"}
        points = space.points()
        assert len(points) == len(space)
        assert len(set(points)) == len(points)  # all distinct, hashable

    def test_kernel_by_name(self):
        space = DesignSpace(kernel="sor", grid=GRID, iterations=5)
        assert space.kernel.name == "sor"

    def test_points_are_picklable(self):
        import pickle

        point = make_space().points()[0]
        assert pickle.loads(pickle.dumps(point)) == point

    def test_build_jobs_shares_modules_across_axes(self):
        space = make_space(clocks_mhz=(100.0, 200.0))
        jobs = build_jobs(space)
        assert len(jobs) == 6
        by_lane = {}
        for job in jobs:
            by_lane.setdefault(job.point.lanes, set()).add(id(job.module))
        # one lowered module per lane count, shared by both clock points
        assert all(len(ids) == 1 for ids in by_lane.values())

    def test_point_options_roundtrip(self):
        point = DesignPoint(
            kernel="sor", lanes=2, grid=GRID, iterations=10,
            clock_mhz=123.0, form="B", device=SMALL_EDU_DEVICE,
        )
        options = point.compilation_options()
        assert options.device is SMALL_EDU_DEVICE
        assert options.resolved_clock_mhz() == 123.0
        assert MemoryExecutionForm(options.form) is MemoryExecutionForm.B


class TestEngineSerial:
    def test_cost_many_preserves_sweep_order(self):
        engine = ExplorationEngine()
        sweep = engine.explore(make_space())
        assert [e.point.lanes for e in sweep.entries] == [1, 2, 4]
        assert sweep.evaluated == 3
        assert sweep.wall_seconds > 0
        assert sweep.variants_per_second > 0

    def test_best_is_fastest_feasible(self):
        sweep = ExplorationEngine().explore(make_space())
        best = sweep.best()
        assert best is not None
        assert best.report.feasible
        assert best.report.ekit == max(e.report.ekit for e in sweep.feasible())

    def test_summary_rows_carry_all_axes(self):
        sweep = ExplorationEngine().explore(make_space(clocks_mhz=(100.0, 200.0)))
        rows = sweep.summary_rows()
        assert len(rows) == 6
        for row in rows:
            assert {"lanes", "clock_mhz", "form", "device", "pattern",
                    "ewgt_per_s", "limiting_factor", "feasible"} <= set(row)

    def test_sessions_share_one_pipeline(self):
        backend = SerialBackend()
        engine = ExplorationEngine(backend)
        engine.explore(make_space(clocks_mhz=(100.0, 200.0)))
        # two clock values -> exactly two estimation sessions
        assert len(backend._pipelines) == 2

    def test_clock_axis_changes_reports(self):
        sweep = ExplorationEngine().explore(make_space(clocks_mhz=(100.0, 200.0)))
        by_clock = {}
        for entry in sweep.entries:
            by_clock.setdefault(entry.point.clock_mhz, []).append(entry.report.ekit)
        assert by_clock[200.0] != by_clock[100.0]


class TestParallelBackend:
    def test_multi_axis_pool_sweep_matches_serial(self):
        """Acceptance: >=64 points over >=2 axes, pool identical to serial."""
        space = make_space(
            max_lanes=8,  # lanes 1, 2, 4, 8
            clocks_mhz=(100.0, 150.0, 200.0, 250.0),
            forms=("A", "B"),
            patterns=(PatternKind.CONTIGUOUS, PatternKind.STRIDED),
        )
        assert len(space) >= 64
        assert len(space.active_axes) >= 2

        jobs = build_jobs(space)
        serial = ExplorationEngine(SerialBackend()).cost_many(jobs)
        parallel = ExplorationEngine(ProcessPoolBackend(max_workers=2)).cost_many(jobs)

        assert serial.evaluated == parallel.evaluated == len(space)
        assert json.dumps(serial.canonical_dicts(), sort_keys=True) == (
            json.dumps(parallel.canonical_dicts(), sort_keys=True)
        )

    def test_pool_preserves_job_order(self):
        jobs = build_jobs(make_space())
        sweep = ExplorationEngine(ProcessPoolBackend(max_workers=2)).cost_many(jobs)
        assert [e.point.lanes for e in sweep.entries] == [j.point.lanes for j in jobs]

    def test_empty_batch(self):
        assert ProcessPoolBackend(max_workers=2).run([]) == []

    def test_workers_never_recalibrate(self):
        """Satellite fix: calibration artifacts ship inside the payload, so
        pool workers pay zero cold-start calibration for devices the
        parent already resolved."""
        backend = ProcessPoolBackend(max_workers=2)
        engine = ExplorationEngine(backend)
        engine.explore(make_space(max_lanes=4))
        stats = backend.collect_stats()
        hits, misses = stats["calibration"]
        assert misses == 0
        assert hits > 0

    def test_pool_sweep_reports_aggregated_stats(self):
        backend = ProcessPoolBackend(max_workers=2)
        sweep = ExplorationEngine(backend).cost_many(build_jobs(make_space()))
        assert sweep.stats  # shipped back across the pickle boundary
        assert "stage_seconds" in sweep.stats
        assert sum(sweep.stats["variant"]) == sweep.evaluated


class TestOptionsFidelity:
    def test_exhaustive_search_honours_compiler_options(self):
        """Regression: the shim must cost with the compiler's own options
        (synthesis noise, injected models), not point-derived defaults."""
        from repro.compiler import CompilationOptions, TybecCompiler
        from repro.explore import canonical_report_dict, exhaustive_search, generate_lane_variants

        compiler = TybecCompiler(
            CompilationOptions(device=SMALL_EDU_DEVICE, synthesis_noise=0.4)
        )
        variants = generate_lane_variants(SORKernel(), grid=GRID, iterations=10, max_lanes=2)
        result = exhaustive_search(compiler, variants)
        for variant in variants:
            direct = compiler.cost(variant.module, variant.workload)
            assert canonical_report_dict(result.reports[variant.lanes]) == (
                canonical_report_dict(direct)
            )

    def test_explicit_options_survive_the_pool_boundary(self):
        from repro.compiler import CompilationOptions, TybecCompiler
        from repro.explore import canonical_report_dict, exhaustive_search, generate_lane_variants

        compiler = TybecCompiler(
            CompilationOptions(device=SMALL_EDU_DEVICE, synthesis_noise=0.4)
        )
        variants = generate_lane_variants(SORKernel(), grid=GRID, iterations=10, max_lanes=2)
        serial = exhaustive_search(compiler, variants)
        pooled = exhaustive_search(
            compiler, variants, backend=ProcessPoolBackend(max_workers=2)
        )
        for lanes in serial.reports:
            assert canonical_report_dict(pooled.reports[lanes]) == (
                canonical_report_dict(serial.reports[lanes])
            )


class TestParetoFrontier:
    def test_non_dominated_selection(self):
        # score tuples (maximised): frontier is exactly the non-dominated set
        entries = [
            ("a", (1.0, -0.1)),   # dominated by c (slower, same area)
            ("b", (2.0, -0.5)),   # frontier: fastest
            ("c", (1.5, -0.1)),   # frontier: best speed at low area
            ("d", (1.4, -0.4)),   # dominated by b and c
        ]
        frontier = pareto_frontier(
            entries,
            objectives=(lambda e: e[1][0], lambda e: e[1][1]),
        )
        assert [name for name, _ in frontier] == ["b", "c"]

    def test_ties_are_kept(self):
        entries = [("a", (1.0, 1.0)), ("b", (1.0, 1.0))]
        frontier = pareto_frontier(
            entries, objectives=(lambda e: e[1][0], lambda e: e[1][1])
        )
        assert len(frontier) == 2

    def test_sweep_frontier_contains_best(self):
        sweep = ExplorationEngine().explore(
            make_space(devices=(SMALL_EDU_DEVICE,), max_lanes=8)
        )
        frontier = sweep.pareto_frontier()
        assert frontier
        assert all(any(f is e for e in sweep.entries) for f in frontier)

    def test_sweep_frontier_excludes_infeasible_points(self):
        # lanes 8/16 overflow the small device: they must not be
        # recommended, however fast the cost model says they would be
        sweep = ExplorationEngine().explore(
            make_space(devices=(SMALL_EDU_DEVICE,), max_lanes=16)
        )
        assert any(not e.report.feasible for e in sweep.entries)
        frontier = sweep.pareto_frontier()
        assert frontier
        assert all(e.report.feasible for e in frontier)
        # the escape hatch still exposes the raw frontier
        raw = sweep.pareto_frontier(include_infeasible=True)
        assert len(raw) >= 1
        # frontier trades throughput against area: sorted by utilisation,
        # throughput must rise
        ordered = sorted(
            frontier, key=lambda e: e.report.feasibility.limiting_resource_utilization
        )
        ekits = [e.report.ekit for e in ordered]
        assert ekits == sorted(ekits)
