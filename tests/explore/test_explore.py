"""Tests for variant generation, search strategies, roofline and the case study."""

import pytest

from repro.compiler import CompilationOptions, TybecCompiler
from repro.explore import (
    CaseStudyConfig,
    exhaustive_search,
    generate_lane_variants,
    guided_search,
    roofline_analysis,
    run_sor_case_study,
    sweep_lane_counts,
)
from repro.kernels import SORKernel, get_kernel
from repro.substrate import MAIA_STRATIX_V_GSD8, SMALL_EDU_DEVICE


GRID = (8, 8, 8)


@pytest.fixture(scope="module")
def compiler():
    return TybecCompiler(CompilationOptions(device=MAIA_STRATIX_V_GSD8))


@pytest.fixture(scope="module")
def variants():
    return generate_lane_variants(SORKernel(), grid=GRID, iterations=50, max_lanes=8)


class TestVariantGeneration:
    def test_sweep_lane_counts_divisors_only(self):
        counts = sweep_lane_counts(SORKernel(), grid=GRID, max_lanes=6)
        assert counts == [1, 2, 4]  # 512 is divisible by 1,2,4 but not 3,5,6... wait 512%4==0

    def test_sweep_with_explicit_counts(self):
        counts = sweep_lane_counts(SORKernel(), grid=GRID, lane_counts=[1, 3, 4, 16])
        assert counts == [1, 4, 16]

    def test_generate_variants(self, variants):
        assert [v.lanes for v in variants] == [1, 2, 4, 8]
        for v in variants:
            assert v.module.has_function("sor_pe")
            assert v.workload.repetitions == 50
            assert v.name.endswith(f"l{v.lanes}")


class TestSearch:
    def test_exhaustive_search_finds_best(self, compiler, variants):
        result = exhaustive_search(compiler, variants)
        assert result.evaluated == len(variants)
        assert result.best_lanes in {v.lanes for v in variants}
        assert result.best_report is not None
        assert result.best_report.feasible
        # on a large device with generous bandwidth, widening never hurts:
        # the best variant is at least as fast as the single-lane baseline
        assert result.reports[result.best_lanes].ekit >= result.reports[1].ekit
        assert result.best_lanes >= 1
        assert result.estimation_seconds < 5.0

    def test_summary_rows(self, compiler, variants):
        result = exhaustive_search(compiler, variants)
        rows = result.summary_rows()
        assert len(rows) == len(variants)
        assert rows[0]["lanes"] == 1
        assert all(row["ewgt_per_s"] > 0 for row in rows)
        # resource utilisation grows with lanes
        assert rows[-1]["alut_pct"] > rows[0]["alut_pct"]

    def test_exhaustive_requires_variants(self, compiler):
        with pytest.raises(ValueError):
            exhaustive_search(compiler, [])

    def test_guided_search_stops_at_computation_wall(self, variants):
        tiny = TybecCompiler(CompilationOptions(device=SMALL_EDU_DEVICE))
        result = guided_search(tiny, variants)
        # the small device cannot fit many lanes, so the search stops early
        assert result.evaluated <= len(variants)
        infeasible = [l for l, r in result.reports.items() if not r.feasibility.fits_resources]
        if infeasible:
            assert max(result.reports) == min(infeasible)

    def test_guided_search_matches_exhaustive_best_on_big_device(self, compiler, variants):
        guided = guided_search(compiler, variants)
        exhaustive = exhaustive_search(compiler, variants)
        assert guided.best_lanes == exhaustive.best_lanes


class TestRoofline:
    def test_roofline_points(self, compiler, variants):
        result = exhaustive_search(compiler, variants)
        points = roofline_analysis(result.reports, ops_per_item=SORKernel.ops_per_item)
        assert len(points) == len(variants)
        for point in points:
            assert point.operational_intensity > 0
            assert point.attainable_gops > 0
            assert point.attainable_gops <= max(point.compute_roof_gops,
                                                point.bandwidth_roof_gops) * 1.01
            assert point.bound in ("compute", "memory")
        # compute roof scales with lanes
        assert points[-1].compute_roof_gops > points[0].compute_roof_gops
        assert points[0].as_dict()["lanes"] == 1


class TestCaseStudy:
    @pytest.fixture(scope="class")
    def points(self):
        return run_sor_case_study(grid_sides=(24, 96, 192),
                                  config=CaseStudyConfig(iterations=100))

    def test_case_study_shape_runtime(self, points):
        by_side = {p.grid_side: p for p in points}
        # at the smallest grid the FPGA overheads dominate: tytra is not the winner
        assert by_side[24].tytra_speedup_vs_cpu < 1.5
        # at large grids tytra wins clearly over both cpu and maxJ
        assert by_side[192].tytra_speedup_vs_cpu > 1.5
        assert by_side[192].tytra_speedup_vs_maxj > 2.0
        # the straightforward HLS port stays slower than the CPU (the paper's
        # observation about unexplored parallelism)
        assert by_side[192].maxj_seconds > by_side[192].cpu_seconds

    def test_case_study_shape_energy(self, points):
        big = max(points, key=lambda p: p.grid_side)
        assert big.tytra_energy_gain_vs_cpu > 3.0
        assert big.tytra_energy_gain_vs_maxj > 1.5
        norm = big.energy_normalised
        assert norm["fpga-tytra"] < norm["fpga-maxJ"]
        assert norm["cpu"] == 1.0

    def test_runtime_scales_with_grid(self, points):
        ordered = sorted(points, key=lambda p: p.grid_side)
        assert ordered[-1].cpu_seconds > ordered[0].cpu_seconds
        assert ordered[-1].tytra_seconds > ordered[0].tytra_seconds

    def test_as_dict(self, points):
        d = points[0].as_dict()
        assert d["grid_side"] == 24
        assert "runtime_normalised" in d
