"""Tests for the incremental Optimizer loop and its four strategies.

The load-bearing property is the differential one: driving an
:class:`ExhaustiveOptimizer` through the engine must produce canonical
reports byte-identical to the eager path (build every job up front, run
the backend once) — on every kernel, on every backend, for any chunking
of the proposal stream.  Everything else (fmax brackets, halving
budgets, surrogate prunes) builds on that equivalence.
"""

from __future__ import annotations

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.explore import (
    DenseBackend,
    DenseUnsupportedError,
    DesignSpace,
    ExhaustiveOptimizer,
    ExplorationEngine,
    FmaxBinarySearchOptimizer,
    GuidedLaneOptimizer,
    Optimizer,
    ProcessPoolBackend,
    SerialBackend,
    SuccessiveHalvingOptimizer,
    SurrogatePrunedOptimizer,
    SweepResult,
    build_jobs,
    drive_optimizer,
    iter_jobs,
)
from repro.explore.engine import SweepEntry
from repro.kernels import ALL_KERNELS
from repro.models import PatternKind
from repro.resilience import Deadline, DeadlineExceededError

GRID = (8, 8, 8)
KERNELS = sorted(ALL_KERNELS)


def make_space(kernel: str = "sor", **overrides) -> DesignSpace:
    settings_ = dict(kernel=kernel, grid=GRID, iterations=10, max_lanes=4)
    settings_.update(overrides)
    return DesignSpace(**settings_)


def eager_sweep(space: DesignSpace, backend=None) -> SweepResult:
    """The pre-refactor eager path: materialize all jobs, one backend run."""
    backend = backend or SerialBackend()
    jobs = build_jobs(space)
    reports = backend.run(jobs)
    return SweepResult(
        entries=[SweepEntry(job.point, report)
                 for job, report in zip(jobs, reports)],
        stats=backend.collect_stats(),
    )


class TestProtocol:
    def test_all_strategies_satisfy_the_protocol(self):
        space = make_space()
        for optimizer in (
            ExhaustiveOptimizer(space),
            FmaxBinarySearchOptimizer([space]),
            SuccessiveHalvingOptimizer([space]),
            SurrogatePrunedOptimizer(space),
        ):
            assert isinstance(optimizer, Optimizer)

    def test_exhaustive_requires_exactly_one_source(self):
        with pytest.raises(ValueError, match="exactly one"):
            ExhaustiveOptimizer()
        with pytest.raises(ValueError, match="exactly one"):
            ExhaustiveOptimizer(make_space(), jobs=build_jobs(make_space()))


class TestExhaustiveDifferential:
    """ExhaustiveOptimizer == the eager path, byte for byte."""

    @pytest.mark.parametrize("kernel", KERNELS)
    def test_serial_matches_eager_for_every_kernel(self, kernel):
        space = make_space(kernel)
        eager = eager_sweep(space).canonical_dicts()
        run = ExplorationEngine(SerialBackend()).run_optimizer(
            ExhaustiveOptimizer(space))
        assert run.sweep().canonical_dicts() == eager

    def test_pool_matches_eager(self):
        space = make_space("matmul")
        eager = eager_sweep(space).canonical_dicts()
        run = ExplorationEngine(ProcessPoolBackend(max_workers=2)).run_optimizer(
            ExhaustiveOptimizer(space))
        assert run.sweep().canonical_dicts() == eager

    def test_dense_backend_matches_eager(self):
        space = make_space(clocks_mhz=(150.0, 200.0))
        eager = eager_sweep(space).canonical_dicts()
        run = ExplorationEngine(DenseBackend()).run_optimizer(
            ExhaustiveOptimizer(space))
        assert run.sweep().canonical_dicts() == eager

    def test_engine_explore_is_the_optimizer_loop(self):
        space = make_space(forms=("A", "B"))
        engine = ExplorationEngine(SerialBackend())
        assert engine.explore(space).canonical_dicts() == \
            eager_sweep(space).canonical_dicts()

    def test_prebuilt_jobs_round_trip(self):
        space = make_space("nw")
        jobs = build_jobs(space)
        run = ExplorationEngine(SerialBackend()).run_optimizer(
            ExhaustiveOptimizer(jobs=jobs))
        assert run.sweep().canonical_dicts() == \
            eager_sweep(space).canonical_dicts()

    @given(
        kernel=st.sampled_from(KERNELS),
        max_lanes=st.sampled_from([1, 2, 4, 8]),
        clocks=st.sampled_from([(None,), (150.0,), (150.0, 200.0)]),
        forms=st.sampled_from([("auto",), ("A",), ("A", "B")]),
        patterns=st.sampled_from(
            [(PatternKind.CONTIGUOUS,),
             (PatternKind.CONTIGUOUS, PatternKind.STRIDED)]),
        batch_points=st.sampled_from([None, 1, 2, 3, 7]),
    )
    @settings(max_examples=20, deadline=None)
    def test_any_space_any_chunking_matches_eager(
            self, kernel, max_lanes, clocks, forms, patterns, batch_points):
        space = make_space(kernel, max_lanes=max_lanes, clocks_mhz=clocks,
                           forms=forms, patterns=patterns)
        if len(space) == 0:
            return
        eager = eager_sweep(space).canonical_dicts()
        run = ExplorationEngine(SerialBackend()).run_optimizer(
            ExhaustiveOptimizer(space, batch_points=batch_points))
        assert run.sweep().canonical_dicts() == eager
        if batch_points is not None:
            assert all(r.points <= batch_points for r in run.rounds)

    def test_round_provenance_names_the_kernel(self):
        run = ExplorationEngine(SerialBackend()).run_optimizer(
            ExhaustiveOptimizer(make_space()))
        assert len(run.rounds) == 1
        assert "sor" in run.rounds[0].note
        payload = run.rounds_payload()
        assert payload[0]["round"] == 0
        assert payload[0]["points"] == run.evaluated


class TestFmaxBinarySearch:
    def test_bracket_invariant_on_the_golden_grid(self):
        """The acceptance property: for every design family, the returned
        fmax is feasible and the bracket's upper edge is infeasible."""
        engine = ExplorationEngine(SerialBackend())
        spaces = [DesignSpace(kernel=k, grid=(24, 24, 24), iterations=10,
                              lanes=[1, 2], forms=("A", "B"))
                  for k in KERNELS]
        run = engine.run_optimizer(
            FmaxBinarySearchOptimizer(spaces, resolution=2.0))
        families = run.result["families"]
        finite = [f for f in families if f["fmax_mhz"] is not None
                  and not f["capped"]]
        assert len(finite) == len(families), \
            "every kernel x form x lanes family must bracket on this grid"
        for fam in finite:
            lo, hi = fam["bracket_mhz"]
            assert hi - lo <= 2.0
            probe = DesignSpace(kernel=fam["kernel"], grid=(24, 24, 24),
                                iterations=10, lanes=[fam["lanes"]],
                                forms=(fam["form"],),
                                clocks_mhz=(lo, hi))
            sweep = engine.explore(probe)
            by_clock = {e.point.resolved_clock_mhz: e.report for e in sweep.entries}
            assert by_clock[lo].feasible, fam
            assert not by_clock[hi].feasible, fam

    def test_always_feasible_family_hits_the_cap(self):
        # form C ("auto" on this tiny footprint) needs no external
        # bandwidth: there is no infeasible clock to bracket against
        space = make_space(lanes=[1], forms=("auto",))
        run = ExplorationEngine(SerialBackend()).run_optimizer(
            FmaxBinarySearchOptimizer([space], max_mhz=800.0))
        (family,) = run.result["families"]
        assert family["capped"]
        assert family["fmax_mhz"] == 800.0

    def test_never_feasible_family_reports_none(self):
        # form A on the tiny grid is bandwidth-infeasible at any clock
        space = make_space(lanes=[1], forms=("A",))
        run = ExplorationEngine(SerialBackend()).run_optimizer(
            FmaxBinarySearchOptimizer([space]))
        (family,) = run.result["families"]
        assert family["fmax_mhz"] is None
        assert "floor" in family["note"]

    def test_probes_are_never_repeated_within_a_family(self):
        space = make_space(lanes=[1, 2], forms=("A", "B"))
        run = ExplorationEngine(SerialBackend()).run_optimizer(
            FmaxBinarySearchOptimizer([space], resolution=1.0))
        seen = {}
        for entry in run.entries:
            key = (entry.point.lanes, entry.point.form)
            clocks = seen.setdefault(key, [])
            assert entry.point.resolved_clock_mhz not in clocks
            clocks.append(entry.point.resolved_clock_mhz)


class TestSuccessiveHalving:
    def test_budget_is_respected_and_a_winner_emerges(self):
        arms = [(f"sor:{form}", make_space(forms=(form,)))
                for form in ("auto", "A", "B")]
        run = ExplorationEngine(SerialBackend()).run_optimizer(
            SuccessiveHalvingOptimizer(arms, budget=8, eta=2, rung_points=1))
        result = run.result
        assert result["spent"] <= result["budget"]
        assert run.evaluated == result["spent"]
        assert result["winner"] is not None
        labels = [a["arm"] for a in result["arms"]]
        assert labels == sorted(labels)
        eliminated = [a for a in result["arms"]
                      if a["eliminated_rung"] is not None]
        assert eliminated, "halving should cut at least one arm"

    def test_winner_holds_the_global_best(self):
        arms = [(f"sor:{form}", make_space(forms=(form,)))
                for form in ("auto", "B")]
        run = ExplorationEngine(SerialBackend()).run_optimizer(
            SuccessiveHalvingOptimizer(arms, budget=12))
        result = run.result
        best = result["best"]
        assert best is not None
        winner = next(a for a in result["arms"]
                      if a["arm"] == result["winner"])
        assert winner["best_ekit_per_s"] == pytest.approx(best["ekit_per_s"])


class TestSurrogatePruned:
    def test_same_best_point_as_exhaustive(self):
        space = make_space(clocks_mhz=(150.0, 200.0, 250.0), max_lanes=8)
        engine = ExplorationEngine(SerialBackend())
        exhaustive_best = engine.explore(space).best()
        run = engine.run_optimizer(
            SurrogatePrunedOptimizer(space, keep_fraction=0.1))
        assert run.result["best"] is not None
        assert run.best().point == exhaustive_best.point

    def test_prunes_most_of_the_space(self):
        space = make_space(clocks_mhz=(150.0, 200.0, 250.0), max_lanes=8)
        run = ExplorationEngine(SerialBackend()).run_optimizer(
            SurrogatePrunedOptimizer(space, keep_fraction=0.1))
        result = run.result
        assert result["dense_points"] == len(space)
        assert 0 < result["scalar_points"] < result["dense_points"]
        assert result["scalar_points"] == run.evaluated
        assert not result["fallback"]

    def test_validation_of_the_best_point(self):
        space = make_space(max_lanes=2)
        run = ExplorationEngine(SerialBackend()).run_optimizer(
            SurrogatePrunedOptimizer(space, keep_fraction=0.5,
                                     validate_best=True))
        validation = run.result["validation"]
        assert validation is not None
        assert validation["within_tolerance"]

    def test_dense_unsupported_space_falls_back_to_full_costing(self):
        class Unsupported:
            def explore_space(self, space):
                raise DenseUnsupportedError("stubbed out")

        space = make_space()
        run = ExplorationEngine(SerialBackend()).run_optimizer(
            SurrogatePrunedOptimizer(space, keep_fraction=0.1,
                                     dense_backend=Unsupported()))
        result = run.result
        assert result["fallback"]
        assert result["scalar_points"] == len(space)


class TestDenseSweepPrune:
    def _sweep(self, space):
        return DenseBackend().explore_space(space)

    def test_keep_fraction_keeps_the_ceiling(self):
        space = make_space(clocks_mhz=(150.0, 200.0, 250.0), max_lanes=8)
        sweep = self._sweep(space)
        n = len(space)
        kept = sweep.prune_indices(keep_fraction=0.25)
        assert len(kept) == -(-n // 4)  # ceil
        assert kept == sorted(kept)

    def test_keep_min_floors_the_selection(self):
        sweep = self._sweep(make_space())
        assert len(sweep.prune_indices(keep_fraction=0.01, keep_min=2)) == 2

    def test_survivors_are_the_top_ekit_feasible_points(self):
        space = make_space(clocks_mhz=(150.0, 200.0, 250.0), max_lanes=8)
        sweep = self._sweep(space)
        kept = sweep.prune_indices(keep_fraction=0.2)
        worst_kept = min(float(sweep.ekit[i]) for i in kept
                         if bool(sweep.feasible[i]))
        dropped = [i for i in range(len(space)) if i not in set(kept)
                   and bool(sweep.feasible[i])]
        assert all(float(sweep.ekit[i]) <= worst_kept for i in dropped)

    def test_invalid_fraction_rejected(self):
        sweep = self._sweep(make_space())
        with pytest.raises(ValueError):
            sweep.prune_indices(keep_fraction=0.0)
        with pytest.raises(ValueError):
            sweep.prune_indices(keep_fraction=1.5)


class TestDriverLoop:
    def test_deadline_stops_the_loop_between_rounds(self):
        import time

        optimizer = ExhaustiveOptimizer(make_space(), batch_points=1)
        deadline = Deadline(1e-4)
        time.sleep(0.01)  # already expired by the first round check
        with pytest.raises(DeadlineExceededError):
            ExplorationEngine(SerialBackend()).run_optimizer(
                optimizer, deadline=deadline)

    def test_on_round_hook_sees_every_round(self):
        rounds = []
        run = ExplorationEngine(SerialBackend()).run_optimizer(
            ExhaustiveOptimizer(make_space(), batch_points=1),
            on_round=lambda r, entries: rounds.append((r.index, len(entries))))
        assert rounds == [(i, 1) for i in range(run.evaluated)]

    def test_guided_optimizer_matches_guided_search(self):
        from repro.compiler import CompilationOptions, TybecCompiler
        from repro.explore import generate_lane_variants
        from repro.explore.search import guided_search
        from repro.kernels import get_kernel

        compiler = TybecCompiler(CompilationOptions())
        variants = generate_lane_variants(get_kernel("sor"), grid=GRID,
                                          iterations=10, max_lanes=4)
        result = guided_search(compiler, variants)

        optimizer = GuidedLaneOptimizer(variants,
                                        options=compiler.options)
        drive_optimizer(optimizer, lambda points: [
            SweepEntry(p, compiler.cost(
                optimizer.variant_for(p).module,
                optimizer.variant_for(p).workload)) for p in points])
        assert {e.point.lanes for e in optimizer.entries} == \
            set(result.reports)
        assert optimizer.result()["optimizer"] == "guided"
