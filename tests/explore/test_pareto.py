"""Property tests: the vectorized Pareto frontier is a drop-in replacement.

``repro.explore.engine.pareto_frontier`` used to be an O(n²) pairwise
scan; it now routes through :func:`repro.cost.vector.pareto_mask`.  These
tests pin the replacement against a verbatim copy of the old scan —
identical surviving entries, in identical (input) order, duplicates and
all — over hypothesis-generated score sets.  The frontier is run on
lightweight score-carrying stand-ins, not real cost reports: dominance
only ever sees the objective values.
"""

from __future__ import annotations

from dataclasses import dataclass

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.explore.engine import pareto_frontier


@dataclass(frozen=True)
class FakeEntry:
    """Stands in for a SweepEntry; carries only the objective values."""

    ident: int
    scores: tuple[float, ...]


def _objectives(dims: int):
    return tuple((lambda e, _i=i: e.scores[_i]) for i in range(dims))


def _reference_frontier(entries, objectives):
    """Verbatim copy of the old O(n²) pairwise ``pareto_frontier`` scan."""
    scored = [(tuple(obj(e) for obj in objectives), e) for e in entries]
    frontier = []
    for score, entry in scored:
        dominated = False
        for other, _ in scored:
            if other != score and all(o >= s for o, s in zip(other, score)):
                dominated = True
                break
        if not dominated:
            frontier.append(entry)
    return frontier


# small integer coordinates force heavy collisions: duplicated score
# vectors, shared first objectives, total ties — the cases where a
# sort-based rewrite is most likely to diverge from the pairwise scan
coords = st.integers(min_value=-5, max_value=5)


@settings(max_examples=200, deadline=None)
@given(st.lists(st.tuples(coords, coords), max_size=60))
def test_two_objective_frontier_matches_pairwise_scan(points):
    entries = [FakeEntry(i, tuple(map(float, p))) for i, p in enumerate(points)]
    objectives = _objectives(2)
    new = pareto_frontier(entries, objectives)
    old = _reference_frontier(entries, objectives)
    assert [e.ident for e in new] == [e.ident for e in old]


@settings(max_examples=100, deadline=None)
@given(st.lists(st.tuples(coords, coords, coords), max_size=40))
def test_three_objective_frontier_matches_pairwise_scan(points):
    entries = [FakeEntry(i, tuple(map(float, p))) for i, p in enumerate(points)]
    objectives = _objectives(3)
    new = pareto_frontier(entries, objectives)
    old = _reference_frontier(entries, objectives)
    assert [e.ident for e in new] == [e.ident for e in old]


@settings(max_examples=100, deadline=None)
@given(st.lists(st.tuples(st.floats(-10, 10, allow_nan=False),
                          st.floats(-10, 10, allow_nan=False)), max_size=40))
def test_float_scores_match_pairwise_scan(points):
    entries = [FakeEntry(i, p) for i, p in enumerate(points)]
    objectives = _objectives(2)
    new = pareto_frontier(entries, objectives)
    old = _reference_frontier(entries, objectives)
    assert [e.ident for e in new] == [e.ident for e in old]


def test_empty_input():
    assert pareto_frontier([], _objectives(2)) == []


def test_equal_score_duplicates_all_survive():
    entries = [FakeEntry(i, (1.0, 1.0)) for i in range(4)]
    kept = pareto_frontier(entries, _objectives(2))
    assert [e.ident for e in kept] == [0, 1, 2, 3]


def test_single_objective():
    entries = [FakeEntry(0, (1.0,)), FakeEntry(1, (3.0,)), FakeEntry(2, (3.0,))]
    kept = pareto_frontier(entries, _objectives(1))
    assert [e.ident for e in kept] == [1, 2]
