"""Tests for the kernel suite (SOR, Hotspot, LavaMD, conv2d, NW, matmul)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compiler import TybecCompiler
from repro.cost.resource_model import ModuleStructure
from repro.functional import verify_variant_equivalence
from repro.ir import validate_module
from repro.kernels import (
    ALL_KERNELS,
    Conv2DKernel,
    HotspotKernel,
    LavaMDKernel,
    MatMulKernel,
    NeedlemanWunschKernel,
    SORKernel,
    ScientificKernel,
    get_kernel,
    kernel_names,
    register_kernel,
)


@pytest.fixture(params=sorted(ALL_KERNELS))
def kernel(request):
    return get_kernel(request.param)


SMALL_GRIDS = {
    "sor": (8, 8, 8),
    "hotspot": (16, 16),
    "lavamd": (8, 8, 8),
    "conv2d": (16, 16),
    "nw": (16, 16),
    "matmul": (8, 8),
}

#: kernels whose primary output is iteration independent by construction
ITERATION_INDEPENDENT = {"lavamd", "matmul"}


class TestRegistry:
    def test_all_six_kernels_registered(self):
        assert kernel_names() == ["conv2d", "hotspot", "lavamd", "matmul", "nw", "sor"]

    def test_all_kernels_instantiable(self):
        for name in ALL_KERNELS:
            k = get_kernel(name)
            assert k.name == name

    def test_unknown_kernel(self):
        with pytest.raises(KeyError):
            get_kernel("nbody")

    def test_small_grids_cover_registry(self):
        # keep this table in sync with the registry so every kernel is tested
        assert set(SMALL_GRIDS) == set(ALL_KERNELS)

    def test_register_rejects_duplicate_name(self):
        with pytest.raises(ValueError, match="already registered"):
            @register_kernel
            class Impostor(ScientificKernel):
                name = "sor"

    def test_register_rejects_missing_name(self):
        with pytest.raises(ValueError, match="unique 'name'"):
            @register_kernel
            class Nameless(ScientificKernel):
                pass

    def test_register_rejects_bad_grid(self):
        with pytest.raises(ValueError, match="default_grid"):
            @register_kernel
            class BadGrid(ScientificKernel):
                name = "badgrid"
                default_grid = (0, 8)

    def test_register_rejects_non_kernel(self):
        with pytest.raises(TypeError):
            register_kernel(object)

    def test_registry_is_mapping(self):
        assert len(ALL_KERNELS) == 6
        assert ALL_KERNELS["sor"] is SORKernel
        assert "conv2d" in ALL_KERNELS


class TestGoldenSemantics:
    def test_gathered_matches_full_grid_reference(self, kernel):
        grid = SMALL_GRIDS[kernel.name]
        assert kernel.verify_against_reference(grid=grid, seed=3)

    def test_reference_iterations_change_result(self, kernel):
        grid = SMALL_GRIDS[kernel.name]
        arrays = kernel.generate_inputs(grid, seed=1)
        one = kernel.reference(arrays, iterations=1)
        many = kernel.reference(arrays, iterations=5)
        primary = kernel.spec().outputs[0]
        if kernel.name in ITERATION_INDEPENDENT:
            # per-item outputs (LavaMD pair potential, matmul k-tile product)
            # do not change across iterations by construction
            assert np.allclose(one[primary], many[primary])
        else:
            assert not np.allclose(one[primary], many[primary])

    def test_generate_inputs_reproducible(self, kernel):
        grid = SMALL_GRIDS[kernel.name]
        a = kernel.generate_inputs(grid, seed=7)
        b = kernel.generate_inputs(grid, seed=7)
        c = kernel.generate_inputs(grid, seed=8)
        for key in a:
            assert np.array_equal(a[key], b[key])
        assert any(not np.array_equal(a[key], c[key]) for key in a)

    def test_variant_equivalence(self, kernel):
        grid = SMALL_GRIDS[kernel.name]
        baseline = kernel.baseline_program(grid)
        variant = kernel.variant_program(4, grid)
        gathered = kernel.gather(kernel.generate_inputs(grid, seed=2))
        assert verify_variant_equivalence(baseline, variant, gathered)

    @given(lanes=st.sampled_from([1, 2, 4, 8]), seed=st.integers(0, 100))
    @settings(max_examples=12, deadline=None)
    def test_sor_variant_equivalence_property(self, lanes, seed):
        kernel = SORKernel()
        grid = (8, 8, 8)
        baseline = kernel.baseline_program(grid)
        variant = kernel.variant_program(lanes, grid)
        gathered = kernel.gather(kernel.generate_inputs(grid, seed=seed))
        assert verify_variant_equivalence(baseline, variant, gathered)


class TestIRConstruction:
    def test_modules_validate(self, kernel):
        grid = SMALL_GRIDS[kernel.name]
        for lanes in (1, 4):
            module = kernel.build_module(lanes=lanes, grid=grid)
            validate_module(module)
            assert ModuleStructure.from_module(module).lanes == lanes

    def test_sor_structure_matches_paper(self):
        kernel = SORKernel()
        module = kernel.build_module(lanes=1, grid=(24, 24, 24))
        s = ModuleStructure.from_module(module)
        # six neighbour offsets, the largest spanning a full i-j plane
        assert len(s.offset_buffers) == 6
        assert s.max_offset_span_words == 24 * 24
        # p and rhs in, p_new out
        assert s.words_per_item == 3
        assert s.instructions_per_pe >= 14

    def test_sor_uses_no_dsps(self):
        compiler = TybecCompiler()
        kernel = SORKernel()
        report = compiler.cost(kernel.build_module(1, (16, 16, 16)),
                               kernel.workload((16, 16, 16), 10))
        assert report.usage.dsp == 0
        assert report.usage.bram_bits > 0   # the k-plane offset buffers

    def test_lavamd_uses_dsps_but_no_bram(self):
        compiler = TybecCompiler()
        kernel = LavaMDKernel()
        report = compiler.cost(kernel.build_module(1, (8, 8, 8)),
                               kernel.workload((8, 8, 8), 10))
        assert report.usage.dsp >= 10
        assert report.usage.bram_bits == 0

    def test_hotspot_uses_some_dsps_and_bram(self):
        compiler = TybecCompiler()
        kernel = HotspotKernel()
        report = compiler.cost(kernel.build_module(1, (64, 64)),
                               kernel.workload((64, 64), 10))
        assert report.usage.dsp >= 2
        assert report.usage.bram_bits > 0

    def test_conv2d_constant_weights_no_dsps_but_bram(self):
        # all nine multiplies are by constants; the row buffers need BRAM
        compiler = TybecCompiler()
        kernel = Conv2DKernel()
        report = compiler.cost(kernel.build_module(1, (64, 64)),
                               kernel.workload((64, 64), 10))
        assert report.usage.dsp == 0
        assert report.usage.bram_bits > 0

    def test_nw_multiply_free_datapath(self):
        # the wavefront recurrence is adds/max only: zero DSP blocks, and
        # the north-west offset (a row plus one element) needs a line buffer
        compiler = TybecCompiler()
        kernel = NeedlemanWunschKernel()
        report = compiler.cost(kernel.build_module(1, (64, 64)),
                               kernel.workload((64, 64), 10))
        assert report.usage.dsp == 0
        assert report.usage.bram_bits > 0

    def test_matmul_is_dsp_dense_with_no_bram(self):
        compiler = TybecCompiler()
        kernel = MatMulKernel()
        report = compiler.cost(kernel.build_module(1, (16, 16)),
                               kernel.workload((16, 16), 10))
        assert report.usage.dsp >= 4     # four data-dependent multiplies
        assert report.usage.bram_bits == 0

    def test_conv2d_offset_span(self):
        module = Conv2DKernel().build_module(lanes=1, grid=(32, 32))
        s = ModuleStructure.from_module(module)
        assert len(s.offset_buffers) == 8
        assert s.max_offset_span_words == 32 + 1   # a full row plus one

    def test_nw_offset_span(self):
        module = NeedlemanWunschKernel().build_module(lanes=1, grid=(32, 32))
        s = ModuleStructure.from_module(module)
        assert len(s.offset_buffers) == 3
        assert s.max_offset_span_words == 32 + 1


class TestWorkloadsAndCharacteristics:
    def test_workload_defaults(self, kernel):
        wl = kernel.workload()
        assert wl.kernel == kernel.name
        assert wl.repetitions == kernel.default_iterations
        assert wl.global_size == np.prod(kernel.default_grid)
        assert wl.words_per_item == kernel.spec().words_per_item

    def test_hls_characteristics(self, kernel):
        chars = kernel.hls_characteristics()
        assert chars.operations_per_item == kernel.ops_per_item
        assert chars.input_words_per_item == len(kernel.spec().inputs)
        assert chars.element_bytes in (3, 4)

    def test_sor_offset_span_in_hls_characteristics(self):
        chars = SORKernel().hls_characteristics(grid=(24, 24, 24))
        assert chars.max_offset_span_words == 576
        assert LavaMDKernel().hls_characteristics().max_offset_span_words == 0

    def test_cpu_profile(self, kernel):
        profile = kernel.cpu_profile()
        assert profile["ops_per_item"] > 0
        assert profile["bytes_per_item"] > 0
