"""Input validation of :class:`KernelWorkload` and workload edge cases.

Regression tests for the bugfix that made ``KernelWorkload`` reject
non-positive grid dimensions and iteration counts eagerly (previously a
bad workload sailed into the cost model and surfaced as a confusing
downstream error), plus end-to-end checks that the *valid* extremes —
one-element grids and single-iteration workloads — cost cleanly.
"""

import pytest

from repro.compiler import TybecCompiler
from repro.kernels import ALL_KERNELS, KernelWorkload, get_kernel


class TestKernelWorkloadValidation:
    def test_valid_workload(self):
        wl = KernelWorkload("sor", (8, 8, 8), 100)
        assert wl.global_size == 512
        assert wl.ndrange.dims == (8, 8, 8)

    @pytest.mark.parametrize("grid", [(0, 8), (-1,), (8, -8, 8), (8, 0, 8)])
    def test_rejects_non_positive_grid(self, grid):
        with pytest.raises(ValueError, match="positive integers"):
            KernelWorkload("sor", grid, 10)

    def test_rejects_empty_grid(self):
        with pytest.raises(ValueError, match="at least one dimension"):
            KernelWorkload("sor", (), 10)

    @pytest.mark.parametrize("iterations", [0, -5])
    def test_rejects_non_positive_iterations(self, iterations):
        with pytest.raises(ValueError, match="iterations"):
            KernelWorkload("sor", (8, 8), iterations)

    @pytest.mark.parametrize("grid", [(2.5, 8), (8, True)])
    def test_rejects_non_integer_dimensions(self, grid):
        with pytest.raises(ValueError, match="positive integers"):
            KernelWorkload("sor", grid, 10)

    def test_rejects_non_integer_iterations(self):
        with pytest.raises(ValueError, match="iterations"):
            KernelWorkload("sor", (8, 8), 1.5)

    def test_rejects_empty_kernel_name(self):
        with pytest.raises(ValueError, match="kernel name"):
            KernelWorkload("", (8, 8), 10)

    def test_instance_view(self):
        inst = KernelWorkload("hotspot", (16, 16), 7).instance(words_per_item=4)
        assert inst.kernel == "hotspot"
        assert inst.repetitions == 7
        assert inst.words_per_item == 4
        assert inst.global_size == 256


class TestWorkloadEdgeCases:
    """1-element and single-iteration workloads are valid and cost cleanly."""

    def test_single_iteration_workload(self):
        kernel = get_kernel("sor")
        wl = kernel.workload((8, 8, 8), iterations=1)
        assert wl.repetitions == 1
        report = TybecCompiler().cost(kernel.build_module(1, (8, 8, 8)), wl)
        assert report.ekit > 0

    def test_one_element_grid_costs(self):
        # a 1-element NDRange is the degenerate-but-legal extreme: only one
        # lane divides it, and the cost model must not divide by zero
        kernel = get_kernel("lavamd")   # no stencil offsets -> 1 element is meaningful
        grid = (1, 1, 1)
        wl = kernel.workload(grid, iterations=1)
        assert wl.global_size == 1
        report = TybecCompiler().cost(kernel.build_module(1, grid), wl)
        assert report.ekit > 0
        assert report.estimation_seconds < 5.0

    @pytest.mark.parametrize("name", sorted(ALL_KERNELS))
    def test_workload_helper_validates_for_every_kernel(self, name):
        kernel = get_kernel(name)
        with pytest.raises(ValueError):
            kernel.workload(kernel.default_grid, iterations=0)
