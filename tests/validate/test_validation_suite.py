"""Suite-level cross-validation: determinism, goldens, differentials."""

import json

import pytest

from repro.compiler.pipeline import clear_calibration_cache
from repro.explore.engine import ProcessPoolBackend, SerialBackend
from repro.suite import SuiteConfig, diff_payloads, golden_config, load_report
from repro.validate import (
    VALIDATION_SCHEMA,
    check_validation_goldens,
    record_validation_goldens,
    run_golden_validation,
    validate_suite,
    validation_golden_dir,
)

KERNELS = ("conv2d", "sor")


def _config(kernels=KERNELS) -> SuiteConfig:
    return golden_config(kernels)


class TestValidateSuite:
    def test_golden_grid_agrees(self):
        run = validate_suite(_config())
        assert run.ok
        totals = run.report.totals
        assert totals["points"] == totals["agreeing"]
        assert totals["disagreeing"] == 0
        assert totals["max_seconds_relative_error"] <= 0.05
        # the acceptance gate: analytic and cycle-stepping agree within
        # one pipeline depth per kernel instance on every golden point
        for records in run.records.values():
            for record in records:
                assert record.cycle_gap is not None
                assert record.cycle_gap <= record.pipeline_depth

    def test_report_is_version_stamped(self):
        report = validate_suite(_config(("sor",))).report
        assert report.schema == VALIDATION_SCHEMA
        assert report.validation["tolerance"] == pytest.approx(0.05)
        assert report.validation["cycle_accurate"] is True

    def test_zero_tolerance_exits_disagreeing(self):
        run = validate_suite(_config(("conv2d",)), tolerance=0.0)
        assert not run.ok
        assert run.report.totals["disagreeing"] > 0
        assert run.disagreements

    def test_empty_grid_raises(self):
        with pytest.raises(ValueError, match="no design points"):
            validate_suite(SuiteConfig(kernels=("sor",), lanes=(7,),
                                       grids={"sor": (8, 8, 8)}))

    def test_pool_and_serial_reports_byte_identical(self):
        serial = validate_suite(_config(), SerialBackend())
        pool = validate_suite(_config(), ProcessPoolBackend(max_workers=2),
                              jobs=2)
        assert serial.report.to_json() == pool.report.to_json()

    def test_lane_scaled_points_validate_identically_to_full_path(
        self, tmp_path, monkeypatch
    ):
        """The PR-3 differential, extended to the validation records: a
        lane-derived design point must simulate exactly like one that took
        the full lowering/analysis path."""
        monkeypatch.setenv("TYBEC_CACHE_DIR", str(tmp_path / "scaled"))
        clear_calibration_cache()
        scaled = validate_suite(_config()).report.canonical_dict()

        monkeypatch.setenv("TYBEC_LANE_SCALING", "0")
        monkeypatch.setenv("TYBEC_CACHE_DIR", str(tmp_path / "full"))
        clear_calibration_cache()
        try:
            full = validate_suite(_config()).report.canonical_dict()
        finally:
            monkeypatch.delenv("TYBEC_LANE_SCALING")
            clear_calibration_cache()
        assert diff_payloads(scaled, full) == []


class TestValidationGoldens:
    def test_checked_in_goldens_reproduce(self):
        results = check_validation_goldens()
        failed = {name: [str(d) for d in diffs[:5]]
                  for name, diffs in results.items() if diffs}
        assert not failed, f"validation goldens drifted: {failed}"

    def test_goldens_cover_every_kernel(self):
        from repro.kernels import kernel_names

        recorded = {path.stem for path in validation_golden_dir().glob("*.json")}
        assert recorded == set(kernel_names())

    def test_golden_files_carry_validation_schema(self):
        for path in sorted(validation_golden_dir().glob("*.json")):
            payload = load_report(path, expected_schema=VALIDATION_SCHEMA)
            assert payload["schema"] == VALIDATION_SCHEMA
            assert "validation" in payload

    def test_missing_golden_is_reported(self, tmp_path):
        results = check_validation_goldens(tmp_path, kernels=("sor",))
        assert results["sor"][0].kind == "removed"

    def test_record_then_check_round_trips(self, tmp_path):
        record_validation_goldens(tmp_path, kernels=KERNELS)
        results = check_validation_goldens(tmp_path, kernels=KERNELS)
        assert all(not diffs for diffs in results.values())

    def test_recorded_subset_matches_full_run_payload(self, tmp_path):
        """Per-kernel validation goldens are independent of which other
        kernels were validated alongside them (same guarantee as the
        suite goldens)."""
        record_validation_goldens(tmp_path, kernels=("sor",))
        full = run_golden_validation()
        subset = json.loads((tmp_path / "sor.json").read_text())
        assert diff_payloads(subset, full.kernel_payload("sor")) == []
