"""Unit tests for the per-point cross-validator."""

import json
import math

import pytest

from repro.explore.engine import ExplorationEngine
from repro.explore.space import DesignSpace
from repro.kernels import get_kernel
from repro.suite import canonicalize, tiny_grid
from repro.validate import (
    DEFAULT_MEMORY_TOLERANCE,
    DEFAULT_TOLERANCE,
    CrossValidator,
)


@pytest.fixture(scope="module")
def sor_entries():
    """Costed sor design points (tiny grid, lanes 1/2/4) to validate."""
    kernel = get_kernel("sor")
    space = DesignSpace(kernel=kernel, grid=tiny_grid(kernel.default_grid),
                        iterations=10, lanes=[1, 2, 4])
    return ExplorationEngine().explore(space).entries


class TestCrossValidator:
    def test_tolerances_must_be_non_negative(self):
        with pytest.raises(ValueError):
            CrossValidator(tolerance=-0.1)
        with pytest.raises(ValueError):
            CrossValidator(memory_tolerance=-1.0)

    def test_validates_a_costed_point(self, sor_entries):
        validator = CrossValidator()
        record = validator.validate_entry(sor_entries[0])
        assert record.ok
        assert record.within_tolerance
        assert record.cycles_within_depth
        assert record.limiting_factor_match
        assert not record.diverged
        # the simulated and estimated device cycles are the same quantity
        assert record.analytic.cycles == pytest.approx(record.estimated_cycles,
                                                       rel=DEFAULT_TOLERANCE)
        # the cycle-stepping mode honoured its documented invariant
        assert record.cycle_gap is not None
        assert record.cycle_gap <= record.pipeline_depth

    def test_form_c_has_host_leg_only(self, sor_entries):
        record = CrossValidator().validate_entry(sor_entries[0])
        assert record.form == "C"
        assert [leg.name for leg in record.legs] == ["host"]
        host = record.legs[0]
        assert host.relative_error <= DEFAULT_MEMORY_TOLERANCE
        assert host.footprint_bytes > 0

    def test_estimate_reconstructs_identical_spec(self, sor_entries):
        """The validator's re-analysis hits the same family caches the
        sweep warmed, so the spec-derived fields are deterministic."""
        validator = CrossValidator()
        first = validator.validate_entry(sor_entries[1])
        second = validator.validate_entry(sor_entries[1])
        assert first.as_dict() == second.as_dict()

    def test_zero_tolerance_flags_rounding_residual(self, sor_entries):
        """tolerance=0 demands exactness; ceil rounding makes sor disagree."""
        record = CrossValidator(tolerance=0.0).validate_entry(sor_entries[0])
        assert record.seconds_relative_error > 0.0
        assert not record.within_tolerance
        assert not record.ok

    def test_huge_tolerance_always_agrees_on_seconds(self, sor_entries):
        record = CrossValidator(tolerance=math.inf,
                                memory_tolerance=math.inf).validate_entry(sor_entries[0])
        assert record.within_tolerance
        assert record.memory_within_tolerance
        assert record.ok

    def test_tolerance_boundary_is_inclusive(self, sor_entries):
        base = CrossValidator().validate_entry(sor_entries[0])
        exact = CrossValidator(
            tolerance=base.seconds_relative_error
        ).validate_entry(sor_entries[0])
        assert exact.within_tolerance
        just_below = CrossValidator(
            tolerance=base.seconds_relative_error * 0.999
        ).validate_entry(sor_entries[0])
        assert not just_below.within_tolerance

    def test_cycle_accurate_off_skips_stepping(self, sor_entries):
        record = CrossValidator(cycle_accurate=False).validate_entry(sor_entries[0])
        assert record.stepped is None
        assert record.cycle_gap is None
        assert record.cycles_within_depth  # not checked, not failed
        assert record.ok

    def test_record_dict_is_canonical_json(self, sor_entries):
        record = CrossValidator().validate_entry(sor_entries[2])
        payload = canonicalize(record.as_dict())
        round_tripped = json.loads(json.dumps(payload))
        assert round_tripped == payload
        assert payload["simulated"]["analytic"]["cycles"] == record.analytic.cycles
        assert payload["agreement"]["cycle_gap_limit"] == record.pipeline_depth

    def test_sessions_are_shared_per_option_set(self, sor_entries):
        validator = CrossValidator()
        for entry in sor_entries:
            validator.validate_entry(entry)
        # all three lane counts share one estimation session
        assert len(validator._pipelines) == 1
