"""Resilience tests for the exploration service.

Leader promotion (a dead leader must not strand its followers), request
deadlines, graceful drain on shutdown, and client connect retries — all
driven against a real :class:`ThreadingHTTPServer` on an ephemeral port,
with faults injected deterministically through :class:`FaultPlan`.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.resilience import COUNTERS, FaultPlan, RetryPolicy
from repro.service import (
    CoalescedTask,
    ExplorationService,
    RequestCoalescer,
    ServiceClient,
    ServiceError,
    ServiceServer,
    suite_config_from_spec,
)
from repro.suite import WorkloadSuite

TINY_SPEC = {"tiny": True, "kernels": ["sor"], "max_lanes": 2}


@pytest.fixture
def server():
    srv = ServiceServer(("127.0.0.1", 0), ExplorationService(max_concurrency=2))
    thread = threading.Thread(target=srv.serve_forever, daemon=True)
    thread.start()
    yield srv
    srv.shutdown()
    srv.server_close()


@pytest.fixture
def client(server):
    return ServiceClient(port=server.port)


def batch_report_json(spec: dict) -> str:
    config = suite_config_from_spec({k: v for k, v in spec.items()
                                     if k not in ("dense", "deadline_seconds")})
    return WorkloadSuite(config).run().report.to_json()


# ----------------------------------------------------------------------
# leadership promotion, deterministically (no sockets)
# ----------------------------------------------------------------------


class TestLeaderPromotion:
    def test_leader_failed_offers_leadership_then_exhausts(self):
        task = CoalescedTask("fp")
        for claim in range(task.MAX_LEADER_CLAIMS - 1):
            assert task.leader_failed(RuntimeError(f"death #{claim}"))
            assert not task.done
            assert task.claim_leadership()
        # the claim budget is now spent: the next failure is final
        assert not task.leader_failed(RuntimeError("last death"))
        assert task.done
        assert task.error_message == "last death"

    def test_publish_dedups_the_republished_prefix(self):
        task = CoalescedTask("fp")
        assert task.publish({"event": "entry", "index": 0})
        assert task.publish({"event": "entry", "index": 1})
        assert task.leader_failed(RuntimeError("died mid-sweep"))
        assert task.claim_leadership()
        # the promoted leader recomputes from scratch; the deterministic
        # prefix it regenerates is skipped, the rest appends
        assert not task.publish({"event": "entry", "index": 0})
        assert not task.publish({"event": "entry", "index": 1})
        assert task.publish({"event": "entry", "index": 2})
        batch, state = task.next_events(0)
        assert [e["index"] for e in batch] == [0, 1, 2]
        assert state == "running"

    def test_next_events_drains_before_reporting_leader_lost(self):
        task = CoalescedTask("fp")
        task.publish({"event": "entry", "index": 0})
        task.leader_failed(RuntimeError("boom"))
        batch, state = task.next_events(0)
        assert state == "running" and len(batch) == 1
        batch, state = task.next_events(1)
        assert state == "leader_lost" and batch == []

    def test_claim_is_exclusive(self):
        task = CoalescedTask("fp")
        task.leader_failed(RuntimeError("boom"))
        assert task.claim_leadership()
        assert not task.claim_leadership()   # nothing left to claim

    def test_abandon_with_promote_keeps_the_task_in_flight(self):
        coalescer = RequestCoalescer()
        task, role = coalescer.lease("fp")
        assert role == "leader"
        assert coalescer.abandon(task, RuntimeError("transient"), promote=True)
        assert coalescer.in_flight() == 1
        _, role = coalescer.lease("fp")
        assert role == "follower"   # joiners attach, nobody restarts
        assert coalescer.info()["leaders_lost"] == 1

    def test_abandon_without_promote_still_fails_hard(self):
        coalescer = RequestCoalescer()
        task, _ = coalescer.lease("fp")
        assert not coalescer.abandon(task, RuntimeError("fatal"))
        assert coalescer.in_flight() == 0
        assert task.done


# ----------------------------------------------------------------------
# over HTTP, with injected faults
# ----------------------------------------------------------------------


class TestServiceChaos:
    def test_injected_handler_fault_is_retried_transparently(self, client):
        """The leader dies at compute start; the same connection demotes
        itself, re-claims the leadership and recomputes — the client sees
        a complete, byte-identical report, not an error."""
        golden = batch_report_json(TINY_SPEC)
        plan = FaultPlan({"service.handler": {"indices": [0]}})
        with plan.active():
            response = client.suite(dict(TINY_SPEC))
        from repro.suite.report import canonical_json
        assert canonical_json(response.payload) == golden
        assert plan.stats()["sites"]["service.handler"]["injected"] == 1
        metrics = client.metrics()
        assert metrics["coalesce"]["leaders_lost"] >= 1
        resilience = metrics["resilience"]["counters"]
        assert resilience.get("service.leaders_lost", 0) >= 1
        assert resilience.get("service.leaders_promoted", 0) >= 1

    def test_follower_survives_leader_death(self, server):
        """A dying leader with an attached follower: someone gets promoted
        and *every* client still receives the full byte-identical report."""
        golden = batch_report_json(TINY_SPEC)
        plan = FaultPlan({"service.handler": {"indices": [0]}})
        barrier = threading.Barrier(2)
        results, errors = [], []
        lock = threading.Lock()

        def request() -> None:
            try:
                barrier.wait()
                response = ServiceClient(port=server.port).suite(dict(TINY_SPEC))
                with lock:
                    results.append(response)
            except Exception as exc:  # noqa: BLE001 - collected for assert
                with lock:
                    errors.append(exc)

        with plan.active():
            threads = [threading.Thread(target=request) for _ in range(2)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(120)
        from repro.suite.report import canonical_json
        assert not errors
        assert len(results) == 2
        for response in results:
            assert canonical_json(response.payload) == golden

    def test_exhausted_claim_budget_reports_an_error(self, client):
        """Every leadership claim dies: clients get the error, and the
        key is leasable again afterwards (the next request recovers)."""
        failures = list(range(CoalescedTask.MAX_LEADER_CLAIMS))
        plan = FaultPlan({"service.handler": {"indices": failures}})
        with plan.active():
            with pytest.raises(ServiceError, match="injected fault"):
                client.suite(dict(TINY_SPEC))
        # the poisoned key did not stick: a clean retry succeeds
        response = client.suite(dict(TINY_SPEC))
        assert response.payload["totals"]["points"] > 0

    def test_metrics_exposes_resilience_counters(self, client):
        payload = client.metrics()
        assert "resilience" in payload
        assert isinstance(payload["resilience"]["counters"], dict)
        assert payload["coalesce"]["leaders_lost"] >= 0


class TestRequestDeadlines:
    def test_microscopic_deadline_fails_cleanly(self, client):
        spec = dict(TINY_SPEC, deadline_seconds=1e-9)
        with pytest.raises(ServiceError, match="deadline exceeded"):
            client.suite(spec)

    def test_deadline_does_not_change_the_fingerprint(self, client):
        """Different budgets, same work: the requests must coalesce."""
        first = client.suite(dict(TINY_SPEC, deadline_seconds=3600))
        second = client.suite(dict(TINY_SPEC))
        assert first.fingerprint == second.fingerprint
        assert second.role == "replay"

    def test_generous_deadline_completes_normally(self, client):
        golden = batch_report_json(TINY_SPEC)
        from repro.suite.report import canonical_json
        response = client.suite(dict(TINY_SPEC, deadline_seconds=3600))
        assert canonical_json(response.payload) == golden


class TestGracefulDrain:
    def test_shutdown_drains_inflight_requests(self, server):
        """SIGTERM semantics: stop accepting, finish what's streaming.

        Deterministic setup: the test itself holds the leadership for the
        tiny sweep, so the client's request is pinned in flight (a
        follower blocked on the stream) for as long as the test wants —
        no racing against a millisecond-fast warm sweep.
        """
        service = server.service
        task, role, request = service.lease_suite(dict(TINY_SPEC))
        assert role == "leader"
        results = []

        def follow() -> None:
            results.append(ServiceClient(port=server.port).suite(dict(TINY_SPEC)))

        follower = threading.Thread(target=follow)
        follower.start()
        deadline = time.monotonic() + 30
        while server.inflight_requests() == 0 and time.monotonic() < deadline:
            time.sleep(0.005)
        assert server.inflight_requests() > 0

        drained = []
        drainer = threading.Thread(
            target=lambda: drained.append(server.shutdown_gracefully(120)))
        drainer.start()
        time.sleep(0.05)
        assert not drained, "drain must wait for the in-flight follower"

        # the "leader" finishes its sweep; the follower streams and exits
        result = service.run_suite(request, task.publish)
        service.coalescer.complete(task, result)
        drainer.join(120)
        follower.join(10)
        assert drained == [True]
        assert results and results[0].payload["totals"]["points"] > 0

    def test_drain_with_nothing_in_flight_returns_immediately(self, server):
        assert server.drain(timeout=1.0)

    def test_track_request_counts(self, server):
        assert server.inflight_requests() == 0
        with server.track_request():
            assert server.inflight_requests() == 1
        assert server.inflight_requests() == 0


class TestClientConnectRetry:
    def test_connect_errors_retry_then_reraise(self):
        """A refused port is retried with backoff, then the underlying
        ConnectionError (not a wrapper) surfaces for the CLI to catch."""
        COUNTERS.reset()
        # bind-and-close to get a port nothing listens on
        import socket

        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        dead_port = probe.getsockname()[1]
        probe.close()
        client = ServiceClient(
            port=dead_port,
            retry_policy=RetryPolicy(max_attempts=3, base_delay=0.01,
                                     max_delay=0.02))
        with pytest.raises(ConnectionError):
            client.health()
        assert COUNTERS.get("retries.client.connect") == 2

    def test_retry_recovers_once_the_daemon_is_up(self, server):
        """First attempt refused, daemon comes up, retry succeeds."""
        client = ServiceClient(
            port=server.port,
            retry_policy=RetryPolicy(max_attempts=3, base_delay=0.01))
        assert client.health()["ok"] is True
