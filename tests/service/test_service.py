"""Tests for the exploration service: coalescing, streaming, byte identity.

The acceptance bar: two concurrent identical grid requests produce
byte-identical canonical reports while ``/metrics`` shows exactly one
underlying sweep executed.  The coalescer's leader/follower handoff is
pinned deterministically with barriers; the HTTP layer is exercised
against a real :class:`ThreadingHTTPServer` on an ephemeral port.
"""

from __future__ import annotations

import threading

import pytest

from repro.service import (
    BadRequestError,
    CoalescedTask,
    ExplorationService,
    RequestCoalescer,
    ServiceClient,
    ServiceError,
    ServiceServer,
    TaskFailedError,
    suite_config_from_spec,
)
from repro.suite import SuiteConfig, WorkloadSuite
from repro.suite.report import canonical_json

TINY_SPEC = {"tiny": True, "kernels": ["sor"], "max_lanes": 2}


@pytest.fixture
def server():
    srv = ServiceServer(("127.0.0.1", 0), ExplorationService(max_concurrency=2))
    thread = threading.Thread(target=srv.serve_forever, daemon=True)
    thread.start()
    yield srv
    srv.shutdown()
    srv.server_close()


@pytest.fixture
def client(server):
    return ServiceClient(port=server.port)


def batch_report_json(spec: dict) -> str:
    """The canonical bytes a plain batch run writes for ``spec``."""
    config = suite_config_from_spec({k: v for k, v in spec.items()
                                     if k != "dense"})
    return WorkloadSuite(config).run().report.to_json()


# ----------------------------------------------------------------------
# the coalescer, deterministically
# ----------------------------------------------------------------------


class TestCoalescedTask:
    def test_follower_replays_and_then_streams_live(self):
        task = CoalescedTask("key")
        task.publish({"event": "entry", "index": 0})
        seen: list[dict] = []
        attached = threading.Event()

        def follow() -> None:
            for event in task.stream():
                seen.append(event)
                attached.set()

        thread = threading.Thread(target=follow)
        thread.start()
        assert attached.wait(5), "follower never saw the replayed event"
        task.publish({"event": "entry", "index": 1})
        task.finish({"event": "report"})
        thread.join(5)
        assert not thread.is_alive()
        assert [e["index"] for e in seen] == [0, 1]
        assert task.wait() == {"event": "report"}

    def test_failure_reaches_followers(self):
        task = CoalescedTask("key")
        task.publish({"event": "entry", "index": 0})
        task.fail(RuntimeError("sweep exploded"))
        events = []
        with pytest.raises(TaskFailedError, match="sweep exploded"):
            for event in task.stream():
                events.append(event)
        assert len(events) == 1
        with pytest.raises(TaskFailedError):
            task.wait()

    def test_replay_after_finish_is_complete(self):
        task = CoalescedTask("key")
        for index in range(3):
            task.publish({"index": index})
        task.finish({"event": "report"})
        assert [e["index"] for e in task.stream()] == [0, 1, 2]


class TestRequestCoalescer:
    def test_leader_follower_replay_roles(self):
        coalescer = RequestCoalescer()
        task, role = coalescer.lease("fp")
        assert role == "leader"
        same, role2 = coalescer.lease("fp")
        assert role2 == "follower"
        assert same is task
        assert coalescer.in_flight() == 1
        coalescer.complete(task, {"event": "report"})
        assert coalescer.in_flight() == 0
        cached, role3 = coalescer.lease("fp")
        assert role3 == "replay"
        assert cached.wait() == {"event": "report"}
        info = coalescer.info()
        assert info["joined"] == 1
        assert info["replayed"] == 1

    def test_distinct_keys_do_not_coalesce(self):
        coalescer = RequestCoalescer()
        _, role_a = coalescer.lease("a")
        _, role_b = coalescer.lease("b")
        assert (role_a, role_b) == ("leader", "leader")

    def test_abandoned_key_is_leasable_again(self):
        coalescer = RequestCoalescer()
        task, _ = coalescer.lease("fp")
        coalescer.abandon(task, RuntimeError("boom"))
        retry, role = coalescer.lease("fp")
        assert role == "leader"
        assert retry is not task

    def test_concurrent_leases_elect_exactly_one_leader(self):
        coalescer = RequestCoalescer()
        barrier = threading.Barrier(8)
        roles: list[str] = []
        lock = threading.Lock()

        def lease() -> None:
            barrier.wait()
            _, role = coalescer.lease("fp")
            with lock:
                roles.append(role)

        threads = [threading.Thread(target=lease) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert roles.count("leader") == 1
        assert roles.count("follower") == 7


# ----------------------------------------------------------------------
# request parsing
# ----------------------------------------------------------------------


class TestSuiteConfigSpec:
    def test_tiny_spec_matches_config(self):
        config = suite_config_from_spec(dict(TINY_SPEC))
        expected = SuiteConfig.tiny(kernels=("sor",), max_lanes=2)
        assert config == expected

    def test_unknown_field_rejected(self):
        with pytest.raises(BadRequestError, match="unknown suite field"):
            suite_config_from_spec({"kernles": ["sor"]})

    def test_unknown_kernel_rejected(self):
        with pytest.raises(BadRequestError, match="unknown kernels"):
            suite_config_from_spec({"kernels": ["definitely-not-a-kernel"]})

    def test_unknown_device_rejected(self):
        with pytest.raises(BadRequestError):
            suite_config_from_spec({"devices": ["not-an-fpga"]})

    def test_lists_become_tuples(self):
        config = suite_config_from_spec(
            {"kernels": ["sor"], "lanes": [1, 2], "grids": {"sor": [8, 8, 8]}})
        assert config.lanes == (1, 2)
        assert config.grids["sor"] == (8, 8, 8)


# ----------------------------------------------------------------------
# the service over HTTP
# ----------------------------------------------------------------------


class TestServiceHTTP:
    def test_health(self, client):
        assert client.health()["ok"] is True

    def test_suite_streams_entries_then_report(self, client):
        streamed: list[dict] = []
        response = client.suite(dict(TINY_SPEC), on_entry=streamed.append)
        assert response.role == "leader"
        totals = response.payload["totals"]
        assert totals["points"] == len(streamed) == len(response.entries)
        assert [e["index"] for e in streamed] == list(range(totals["points"]))
        # every streamed entry appears verbatim in the final report
        report_entries = response.payload["kernels"]["sor"]["entries"]
        assert [e["point"] for e in streamed] == \
            [e["point"] for e in report_entries]

    def test_concurrent_identical_requests_one_sweep(self, server, client):
        """The acceptance criterion: N identical concurrent requests →
        byte-identical reports, exactly one underlying sweep."""
        before = client.metrics()["sweeps"]["started"]
        barrier = threading.Barrier(3)
        results: list = []
        lock = threading.Lock()

        def request() -> None:
            barrier.wait()
            response = ServiceClient(port=server.port).suite(dict(TINY_SPEC))
            with lock:
                results.append(response)

        threads = [threading.Thread(target=request) for _ in range(3)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(120)
        assert len(results) == 3
        texts = {canonical_json(r.payload) for r in results}
        assert len(texts) == 1, "concurrent clients saw different reports"
        assert texts.pop() == batch_report_json(TINY_SPEC)
        metrics = client.metrics()
        assert metrics["sweeps"]["started"] - before == 1
        assert sum(1 for r in results if r.coalesced) == 2
        assert metrics["coalesce"]["joined"] + metrics["coalesce"]["replayed"] >= 2

    def test_dense_and_serial_reports_are_byte_identical(self, client):
        serial = client.suite(dict(TINY_SPEC))
        dense = client.suite({**TINY_SPEC, "dense": True})
        assert canonical_json(serial.payload) == canonical_json(dense.payload)

    def test_cost_roundtrip_and_coalescing(self, client):
        from repro.ir import print_module

        from tests.conftest import build_stencil_module

        text = print_module(build_stencil_module(lanes=1, grid=(8, 8, 8)))
        first = client.cost(text, grid=(8, 8, 8), iterations=10)
        second = client.cost(text, grid=(8, 8, 8), iterations=10)
        assert first.role == "leader"
        assert second.role == "replay"
        assert first.fingerprint == second.fingerprint
        assert first.payload == second.payload
        assert first.payload["feasibility"]["feasible"] is True
        # a different workload is different work: no coalescing
        other = client.cost(text, grid=(8, 8, 8), iterations=20)
        assert other.fingerprint != first.fingerprint

    def test_bad_requests_are_400(self, client):
        with pytest.raises(ServiceError, match="unknown kernels"):
            client.suite({"kernels": ["nope"]})
        with pytest.raises(ServiceError, match="design"):
            client._json("POST", "/cost", {"not-design": 1})
        with pytest.raises(ServiceError, match="no such endpoint"):
            client._json("POST", "/nowhere", {})

    def test_metrics_shape(self, client):
        client.suite(dict(TINY_SPEC))
        metrics = client.metrics()
        assert metrics["queue"]["capacity"] == 2
        assert metrics["queue"]["depth"] >= 0
        assert metrics["sweeps"]["completed"] >= 1
        assert "results_cache" in metrics["coalesce"]
        stats = metrics["pipeline"]
        assert "stage_seconds" in stats
        assert stats["variant"][0] + stats["variant"][1] > 0


class TestServiceDirect:
    """The service object without sockets: leader streaming semantics."""

    def test_run_suite_report_matches_batch(self):
        service = ExplorationService()
        task, role, request = service.lease_suite(dict(TINY_SPEC))
        assert role == "leader"
        events: list[dict] = []
        result = service.run_suite(request, events.append)
        service.coalescer.complete(task, result)
        assert canonical_json(result["payload"]) == batch_report_json(TINY_SPEC)
        assert len(events) == result["evaluated"]
        assert service.sweeps == {"started": 1, "completed": 1}

    def test_inflight_follower_streams_leader_progress(self):
        """A follower attached mid-sweep sees every entry the leader
        publishes — the live-coalescing path, pinned with an event."""
        service = ExplorationService()
        task, role, request = service.lease_suite(dict(TINY_SPEC))
        assert role == "leader"
        first_entry = threading.Event()
        follower_events: list[dict] = []
        follower_done = threading.Event()

        def follow() -> None:
            first_entry.wait(60)
            joined, follower_role = service.coalescer.lease(task.key)
            assert follower_role in ("follower", "replay")
            for event in joined.stream():
                follower_events.append(event)
            follower_done.set()

        thread = threading.Thread(target=follow)
        thread.start()

        def publish(event: dict) -> None:
            task.publish(event)
            first_entry.set()

        result = service.run_suite(request, publish)
        service.coalescer.complete(task, result)
        assert follower_done.wait(60)
        thread.join(5)
        assert len(follower_events) == result["evaluated"]
        assert service.sweeps["started"] == 1
