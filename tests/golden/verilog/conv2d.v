// golden Verilog snapshot for kernel 'conv2d' (lanes 2, grid (8, 8), 64 items)

// ==== file: conv2d_l2_config.vh ====
// configuration include for conv2d_l2
`define TYTRA_DESIGN "conv2d_l2"
`define TYTRA_LANES 2
`define TYTRA_KERNEL "conv2d_pe"
`define TYTRA_PIPELINE_DEPTH 13
`define TYTRA_WINDOW 9
`define TYTRA_RTL_LATENCY 20
`define TYTRA_NI 18
`define TYTRA_NOFF 9
`define TYTRA_NWPT 2
`define TYTRA_STREAMS 4

// ==== file: conv2d_l2_cu.v ====
// compute unit for design 'conv2d_l2': 2 lane(s) of @conv2d_pe
module conv2d_l2_cu (
  input  wire clk,
  input  wire rst,
  input  wire in_valid,
  output wire out_valid
);

  // ---- lane 0 ----
  wire lane0_out_valid;
  wire [23:0] src_lane0; // fed by stream control
  conv2d_pe_kernel lane0 (.clk(clk), .rst(rst), .in_valid(in_valid), .out_valid(lane0_out_valid), .s_src(src_lane0));

  // ---- lane 1 ----
  wire lane1_out_valid;
  wire [23:0] src_lane1; // fed by stream control
  conv2d_pe_kernel lane1 (.clk(clk), .rst(rst), .in_valid(in_valid), .out_valid(lane1_out_valid), .s_src(src_lane1));

  assign out_valid = lane0_out_valid & lane1_out_valid;
endmodule

// ==== file: conv2d_pe_kernel.v ====
// kernel pipeline for @conv2d_pe (depth 13, II 1, window 9, latency 20)
module conv2d_pe_kernel (
  input  wire clk,
  input  wire rst,
  input  wire in_valid,
  output wire out_valid,
  input  wire [23:0] s_src,
  output wire [23:0] s_dst,
  output reg  [23:0] g_pixAcc
);

  reg [19:0] valid_sr;
  always @(posedge clk) begin
    if (rst) valid_sr <= 0;
    else     valid_sr <= {valid_sr, in_valid};
  end
  assign out_valid = valid_sr[19];

  // input stream %src aligned by 9 cycle(s)
  reg [23:0] argbuf_src [0:8];
  integer i_argbuf_src;
  always @(posedge clk) begin
    argbuf_src[0] <= s_src;
    for (i_argbuf_src = 1; i_argbuf_src < 9; i_argbuf_src = i_argbuf_src + 1)
      argbuf_src[i_argbuf_src] <= argbuf_src[i_argbuf_src - 1];
  end
  wire [23:0] w_src = argbuf_src[8];

  // offset stream %src_p1 = %src offset +1 (delay 8)
  reg [23:0] offbuf_src_p1 [0:7];
  integer i_offbuf_src_p1;
  always @(posedge clk) begin
    offbuf_src_p1[0] <= s_src;
    for (i_offbuf_src_p1 = 1; i_offbuf_src_p1 < 8; i_offbuf_src_p1 = i_offbuf_src_p1 + 1)
      offbuf_src_p1[i_offbuf_src_p1] <= offbuf_src_p1[i_offbuf_src_p1 - 1];
  end
  wire [23:0] w_src_p1 = offbuf_src_p1[7];

  // offset stream %src_n1 = %src offset -1 (delay 10)
  reg [23:0] offbuf_src_n1 [0:9];
  integer i_offbuf_src_n1;
  always @(posedge clk) begin
    offbuf_src_n1[0] <= s_src;
    for (i_offbuf_src_n1 = 1; i_offbuf_src_n1 < 10; i_offbuf_src_n1 = i_offbuf_src_n1 + 1)
      offbuf_src_n1[i_offbuf_src_n1] <= offbuf_src_n1[i_offbuf_src_n1 - 1];
  end
  wire [23:0] w_src_n1 = offbuf_src_n1[9];

  // offset stream %src_pND1 = %src offset +ND1 (delay 1)
  reg [23:0] offbuf_src_pND1 [0:0];
  integer i_offbuf_src_pND1;
  always @(posedge clk) begin
    offbuf_src_pND1[0] <= s_src;
    for (i_offbuf_src_pND1 = 1; i_offbuf_src_pND1 < 1; i_offbuf_src_pND1 = i_offbuf_src_pND1 + 1)
      offbuf_src_pND1[i_offbuf_src_pND1] <= offbuf_src_pND1[i_offbuf_src_pND1 - 1];
  end
  wire [23:0] w_src_pND1 = offbuf_src_pND1[0];

  // offset stream %src_nND1 = %src offset -ND1 (delay 17)
  reg [23:0] offbuf_src_nND1 [0:16];
  integer i_offbuf_src_nND1;
  always @(posedge clk) begin
    offbuf_src_nND1[0] <= s_src;
    for (i_offbuf_src_nND1 = 1; i_offbuf_src_nND1 < 17; i_offbuf_src_nND1 = i_offbuf_src_nND1 + 1)
      offbuf_src_nND1[i_offbuf_src_nND1] <= offbuf_src_nND1[i_offbuf_src_nND1 - 1];
  end
  wire [23:0] w_src_nND1 = offbuf_src_nND1[16];

  // offset stream %src_pND1p1 = %src offset +ND1+1 (delay 0)
  wire [23:0] w_src_pND1p1 = s_src;

  // offset stream %src_pND1n1 = %src offset +ND1-1 (delay 2)
  reg [23:0] offbuf_src_pND1n1 [0:1];
  integer i_offbuf_src_pND1n1;
  always @(posedge clk) begin
    offbuf_src_pND1n1[0] <= s_src;
    for (i_offbuf_src_pND1n1 = 1; i_offbuf_src_pND1n1 < 2; i_offbuf_src_pND1n1 = i_offbuf_src_pND1n1 + 1)
      offbuf_src_pND1n1[i_offbuf_src_pND1n1] <= offbuf_src_pND1n1[i_offbuf_src_pND1n1 - 1];
  end
  wire [23:0] w_src_pND1n1 = offbuf_src_pND1n1[1];

  // offset stream %src_nND1p1 = %src offset -ND1+1 (delay 16)
  reg [23:0] offbuf_src_nND1p1 [0:15];
  integer i_offbuf_src_nND1p1;
  always @(posedge clk) begin
    offbuf_src_nND1p1[0] <= s_src;
    for (i_offbuf_src_nND1p1 = 1; i_offbuf_src_nND1p1 < 16; i_offbuf_src_nND1p1 = i_offbuf_src_nND1p1 + 1)
      offbuf_src_nND1p1[i_offbuf_src_nND1p1] <= offbuf_src_nND1p1[i_offbuf_src_nND1p1 - 1];
  end
  wire [23:0] w_src_nND1p1 = offbuf_src_nND1p1[15];

  // offset stream %src_nND1n1 = %src offset -ND1-1 (delay 18)
  reg [23:0] offbuf_src_nND1n1 [0:17];
  integer i_offbuf_src_nND1n1;
  always @(posedge clk) begin
    offbuf_src_nND1n1[0] <= s_src;
    for (i_offbuf_src_nND1n1 = 1; i_offbuf_src_nND1n1 < 18; i_offbuf_src_nND1n1 = i_offbuf_src_nND1n1 + 1)
      offbuf_src_nND1n1[i_offbuf_src_nND1n1] <= offbuf_src_nND1n1[i_offbuf_src_nND1n1 - 1];
  end
  wire [23:0] w_src_nND1n1 = offbuf_src_nND1n1[17];

  // %1 = mul (stage 0, 3 cycle(s))
  reg [23:0] r_v1;
  reg [23:0] r_v1_p1;
  reg [23:0] r_v1_p2;
  always @(posedge clk) begin
    r_v1 <= w_src * 24'd64;
    r_v1_p1 <= r_v1;
    r_v1_p2 <= r_v1_p1;
  end
  wire [23:0] w_v1 = r_v1_p2;

  // %2 = mul (stage 0, 3 cycle(s))
  reg [23:0] r_v2;
  reg [23:0] r_v2_p1;
  reg [23:0] r_v2_p2;
  always @(posedge clk) begin
    r_v2 <= w_src_p1 * 24'd32;
    r_v2_p1 <= r_v2;
    r_v2_p2 <= r_v2_p1;
  end
  wire [23:0] w_v2 = r_v2_p2;

  // %3 = mul (stage 0, 3 cycle(s))
  reg [23:0] r_v3;
  reg [23:0] r_v3_p1;
  reg [23:0] r_v3_p2;
  always @(posedge clk) begin
    r_v3 <= w_src_n1 * 24'd32;
    r_v3_p1 <= r_v3;
    r_v3_p2 <= r_v3_p1;
  end
  wire [23:0] w_v3 = r_v3_p2;

  // %4 = mul (stage 0, 3 cycle(s))
  reg [23:0] r_v4;
  reg [23:0] r_v4_p1;
  reg [23:0] r_v4_p2;
  always @(posedge clk) begin
    r_v4 <= w_src_pND1 * 24'd32;
    r_v4_p1 <= r_v4;
    r_v4_p2 <= r_v4_p1;
  end
  wire [23:0] w_v4 = r_v4_p2;

  // %5 = mul (stage 0, 3 cycle(s))
  reg [23:0] r_v5;
  reg [23:0] r_v5_p1;
  reg [23:0] r_v5_p2;
  always @(posedge clk) begin
    r_v5 <= w_src_nND1 * 24'd32;
    r_v5_p1 <= r_v5;
    r_v5_p2 <= r_v5_p1;
  end
  wire [23:0] w_v5 = r_v5_p2;

  // %6 = mul (stage 0, 3 cycle(s))
  reg [23:0] r_v6;
  reg [23:0] r_v6_p1;
  reg [23:0] r_v6_p2;
  always @(posedge clk) begin
    r_v6 <= w_src_pND1p1 * 24'd16;
    r_v6_p1 <= r_v6;
    r_v6_p2 <= r_v6_p1;
  end
  wire [23:0] w_v6 = r_v6_p2;

  // %7 = mul (stage 0, 3 cycle(s))
  reg [23:0] r_v7;
  reg [23:0] r_v7_p1;
  reg [23:0] r_v7_p2;
  always @(posedge clk) begin
    r_v7 <= w_src_pND1n1 * 24'd16;
    r_v7_p1 <= r_v7;
    r_v7_p2 <= r_v7_p1;
  end
  wire [23:0] w_v7 = r_v7_p2;

  // %8 = mul (stage 0, 3 cycle(s))
  reg [23:0] r_v8;
  reg [23:0] r_v8_p1;
  reg [23:0] r_v8_p2;
  always @(posedge clk) begin
    r_v8 <= w_src_nND1p1 * 24'd16;
    r_v8_p1 <= r_v8;
    r_v8_p2 <= r_v8_p1;
  end
  wire [23:0] w_v8 = r_v8_p2;

  // %9 = mul (stage 0, 3 cycle(s))
  reg [23:0] r_v9;
  reg [23:0] r_v9_p1;
  reg [23:0] r_v9_p2;
  always @(posedge clk) begin
    r_v9 <= w_src_nND1n1 * 24'd16;
    r_v9_p1 <= r_v9;
    r_v9_p2 <= r_v9_p1;
  end
  wire [23:0] w_v9 = r_v9_p2;

  // %10 = add (stage 3, 1 cycle(s))
  reg [23:0] r_v10;
  always @(posedge clk) begin
    r_v10 <= w_v1 + w_v2;
  end
  wire [23:0] w_v10 = r_v10;

  // balance %3 by 1 cycle(s)
  reg [23:0] balbuf_v3_d1 [0:0];
  integer i_balbuf_v3_d1;
  always @(posedge clk) begin
    balbuf_v3_d1[0] <= w_v3;
    for (i_balbuf_v3_d1 = 1; i_balbuf_v3_d1 < 1; i_balbuf_v3_d1 = i_balbuf_v3_d1 + 1)
      balbuf_v3_d1[i_balbuf_v3_d1] <= balbuf_v3_d1[i_balbuf_v3_d1 - 1];
  end
  wire [23:0] w_v3_d1 = balbuf_v3_d1[0];

  // %11 = add (stage 4, 1 cycle(s))
  reg [23:0] r_v11;
  always @(posedge clk) begin
    r_v11 <= w_v10 + w_v3_d1;
  end
  wire [23:0] w_v11 = r_v11;

  // balance %4 by 2 cycle(s)
  reg [23:0] balbuf_v4_d2 [0:1];
  integer i_balbuf_v4_d2;
  always @(posedge clk) begin
    balbuf_v4_d2[0] <= w_v4;
    for (i_balbuf_v4_d2 = 1; i_balbuf_v4_d2 < 2; i_balbuf_v4_d2 = i_balbuf_v4_d2 + 1)
      balbuf_v4_d2[i_balbuf_v4_d2] <= balbuf_v4_d2[i_balbuf_v4_d2 - 1];
  end
  wire [23:0] w_v4_d2 = balbuf_v4_d2[1];

  // %12 = add (stage 5, 1 cycle(s))
  reg [23:0] r_v12;
  always @(posedge clk) begin
    r_v12 <= w_v11 + w_v4_d2;
  end
  wire [23:0] w_v12 = r_v12;

  // balance %5 by 3 cycle(s)
  reg [23:0] balbuf_v5_d3 [0:2];
  integer i_balbuf_v5_d3;
  always @(posedge clk) begin
    balbuf_v5_d3[0] <= w_v5;
    for (i_balbuf_v5_d3 = 1; i_balbuf_v5_d3 < 3; i_balbuf_v5_d3 = i_balbuf_v5_d3 + 1)
      balbuf_v5_d3[i_balbuf_v5_d3] <= balbuf_v5_d3[i_balbuf_v5_d3 - 1];
  end
  wire [23:0] w_v5_d3 = balbuf_v5_d3[2];

  // %13 = add (stage 6, 1 cycle(s))
  reg [23:0] r_v13;
  always @(posedge clk) begin
    r_v13 <= w_v12 + w_v5_d3;
  end
  wire [23:0] w_v13 = r_v13;

  // balance %6 by 4 cycle(s)
  reg [23:0] balbuf_v6_d4 [0:3];
  integer i_balbuf_v6_d4;
  always @(posedge clk) begin
    balbuf_v6_d4[0] <= w_v6;
    for (i_balbuf_v6_d4 = 1; i_balbuf_v6_d4 < 4; i_balbuf_v6_d4 = i_balbuf_v6_d4 + 1)
      balbuf_v6_d4[i_balbuf_v6_d4] <= balbuf_v6_d4[i_balbuf_v6_d4 - 1];
  end
  wire [23:0] w_v6_d4 = balbuf_v6_d4[3];

  // %14 = add (stage 7, 1 cycle(s))
  reg [23:0] r_v14;
  always @(posedge clk) begin
    r_v14 <= w_v13 + w_v6_d4;
  end
  wire [23:0] w_v14 = r_v14;

  // balance %7 by 5 cycle(s)
  reg [23:0] balbuf_v7_d5 [0:4];
  integer i_balbuf_v7_d5;
  always @(posedge clk) begin
    balbuf_v7_d5[0] <= w_v7;
    for (i_balbuf_v7_d5 = 1; i_balbuf_v7_d5 < 5; i_balbuf_v7_d5 = i_balbuf_v7_d5 + 1)
      balbuf_v7_d5[i_balbuf_v7_d5] <= balbuf_v7_d5[i_balbuf_v7_d5 - 1];
  end
  wire [23:0] w_v7_d5 = balbuf_v7_d5[4];

  // %15 = add (stage 8, 1 cycle(s))
  reg [23:0] r_v15;
  always @(posedge clk) begin
    r_v15 <= w_v14 + w_v7_d5;
  end
  wire [23:0] w_v15 = r_v15;

  // balance %8 by 6 cycle(s)
  reg [23:0] balbuf_v8_d6 [0:5];
  integer i_balbuf_v8_d6;
  always @(posedge clk) begin
    balbuf_v8_d6[0] <= w_v8;
    for (i_balbuf_v8_d6 = 1; i_balbuf_v8_d6 < 6; i_balbuf_v8_d6 = i_balbuf_v8_d6 + 1)
      balbuf_v8_d6[i_balbuf_v8_d6] <= balbuf_v8_d6[i_balbuf_v8_d6 - 1];
  end
  wire [23:0] w_v8_d6 = balbuf_v8_d6[5];

  // %16 = add (stage 9, 1 cycle(s))
  reg [23:0] r_v16;
  always @(posedge clk) begin
    r_v16 <= w_v15 + w_v8_d6;
  end
  wire [23:0] w_v16 = r_v16;

  // balance %9 by 7 cycle(s)
  reg [23:0] balbuf_v9_d7 [0:6];
  integer i_balbuf_v9_d7;
  always @(posedge clk) begin
    balbuf_v9_d7[0] <= w_v9;
    for (i_balbuf_v9_d7 = 1; i_balbuf_v9_d7 < 7; i_balbuf_v9_d7 = i_balbuf_v9_d7 + 1)
      balbuf_v9_d7[i_balbuf_v9_d7] <= balbuf_v9_d7[i_balbuf_v9_d7 - 1];
  end
  wire [23:0] w_v9_d7 = balbuf_v9_d7[6];

  // %dst = add (stage 10, 1 cycle(s))
  reg [23:0] r_dst;
  always @(posedge clk) begin
    r_dst <= w_v16 + w_v9_d7;
  end
  wire [23:0] w_dst = r_dst;

  // reduction @pixAcc (stage 11)
  always @(posedge clk) begin
    if (rst) g_pixAcc <= 0;
    else if (valid_sr[19]) g_pixAcc <= w_dst + g_pixAcc;
  end

  assign s_dst = w_dst;
endmodule

// ==== file: testbench.v ====
// Auto-generated testbench for @conv2d_pe (RTL latency 20, 64 work-items, stimulus seed 0x7c0ffee)
`timescale 1ns/1ps
module tb_conv2d_pe;

  reg clk = 1'b0;
  reg rst = 1'b1;
  reg in_valid = 1'b0;
  wire out_valid;
  integer cycle = 0;
  integer out_index = 0;

  always #2.5 clk = ~clk;

  reg [23:0] s_src;
  reg [31:0] lcg_src;  // stream 0 LCG state

  wire [23:0] s_dst;
  wire [23:0] g_pixAcc;

  conv2d_pe_kernel dut (
    .clk(clk),
    .rst(rst),
    .in_valid(in_valid),
    .out_valid(out_valid),
    .s_src(s_src),
    .s_dst(s_dst),
    .g_pixAcc(g_pixAcc)
  );

  initial begin
    $dumpfile("tb_conv2d_pe.vcd");
    $dumpvars(0, tb_conv2d_pe);
    repeat (35) @(posedge clk);  // flush un-reset delay lines with zeros
    rst = 1'b0;
  end

  always @(posedge clk) begin
    if (rst) begin
      cycle <= 0;
      in_valid <= 1'b0;
      s_src <= 0;
      lcg_src <= 32'ha5f879a7;
    end else begin
      cycle <= cycle + 1;
      in_valid <= (cycle < 64);
      if (cycle < 64) begin
        s_src <= lcg_src[23:0];
        lcg_src <= lcg_src * 32'd1664525 + 32'd1013904223;
      end else begin
        s_src <= 0;
      end
    end
  end

  always @(posedge clk) begin
    if (!rst && out_valid) begin
      $display("RESULT dst %0d %h", out_index, s_dst);
      out_index <= out_index + 1;
    end
    if (cycle == 102) begin
      $display("REDUCTION pixAcc %h", g_pixAcc);
      $display("DONE %0d", cycle);
      $finish;
    end
  end

endmodule
