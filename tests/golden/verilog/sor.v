// golden Verilog snapshot for kernel 'sor' (lanes 2, grid (8, 8, 8), 64 items)

// ==== file: sor_l2_config.vh ====
// configuration include for sor_l2
`define TYTRA_DESIGN "sor_l2"
`define TYTRA_LANES 2
`define TYTRA_KERNEL "sor_pe"
`define TYTRA_PIPELINE_DEPTH 16
`define TYTRA_WINDOW 64
`define TYTRA_RTL_LATENCY 77
`define TYTRA_NI 16
`define TYTRA_NOFF 64
`define TYTRA_NWPT 3
`define TYTRA_STREAMS 6

// ==== file: sor_l2_cu.v ====
// compute unit for design 'sor_l2': 2 lane(s) of @sor_pe
module sor_l2_cu (
  input  wire clk,
  input  wire rst,
  input  wire in_valid,
  output wire out_valid
);

  // ---- lane 0 ----
  wire lane0_out_valid;
  wire [17:0] p_lane0; // fed by stream control
  wire [17:0] rhs_lane0; // fed by stream control
  sor_pe_kernel lane0 (.clk(clk), .rst(rst), .in_valid(in_valid), .out_valid(lane0_out_valid), .s_p(p_lane0), .s_rhs(rhs_lane0));

  // ---- lane 1 ----
  wire lane1_out_valid;
  wire [17:0] p_lane1; // fed by stream control
  wire [17:0] rhs_lane1; // fed by stream control
  sor_pe_kernel lane1 (.clk(clk), .rst(rst), .in_valid(in_valid), .out_valid(lane1_out_valid), .s_p(p_lane1), .s_rhs(rhs_lane1));

  assign out_valid = lane0_out_valid & lane1_out_valid;
endmodule

// ==== file: sor_pe_kernel.v ====
// kernel pipeline for @sor_pe (depth 16, II 1, window 64, latency 77)
module sor_pe_kernel (
  input  wire clk,
  input  wire rst,
  input  wire in_valid,
  output wire out_valid,
  input  wire [17:0] s_p,
  input  wire [17:0] s_rhs,
  output wire [17:0] s_p_new,
  output reg  [17:0] g_sorErrAcc
);

  reg [77:0] valid_sr;
  always @(posedge clk) begin
    if (rst) valid_sr <= 0;
    else     valid_sr <= {valid_sr, in_valid};
  end
  assign out_valid = valid_sr[76];

  // input stream %p aligned by 64 cycle(s)
  reg [17:0] argbuf_p [0:63];
  integer i_argbuf_p;
  always @(posedge clk) begin
    argbuf_p[0] <= s_p;
    for (i_argbuf_p = 1; i_argbuf_p < 64; i_argbuf_p = i_argbuf_p + 1)
      argbuf_p[i_argbuf_p] <= argbuf_p[i_argbuf_p - 1];
  end
  wire [17:0] w_p = argbuf_p[63];

  // input stream %rhs aligned by 64 cycle(s)
  reg [17:0] argbuf_rhs [0:63];
  integer i_argbuf_rhs;
  always @(posedge clk) begin
    argbuf_rhs[0] <= s_rhs;
    for (i_argbuf_rhs = 1; i_argbuf_rhs < 64; i_argbuf_rhs = i_argbuf_rhs + 1)
      argbuf_rhs[i_argbuf_rhs] <= argbuf_rhs[i_argbuf_rhs - 1];
  end
  wire [17:0] w_rhs = argbuf_rhs[63];

  // offset stream %p_1 = %p offset 1 (delay 63)
  reg [17:0] offbuf_p_1 [0:62];
  integer i_offbuf_p_1;
  always @(posedge clk) begin
    offbuf_p_1[0] <= s_p;
    for (i_offbuf_p_1 = 1; i_offbuf_p_1 < 63; i_offbuf_p_1 = i_offbuf_p_1 + 1)
      offbuf_p_1[i_offbuf_p_1] <= offbuf_p_1[i_offbuf_p_1 - 1];
  end
  wire [17:0] w_p_1 = offbuf_p_1[62];

  // offset stream %p_n1 = %p offset -1 (delay 65)
  reg [17:0] offbuf_p_n1 [0:64];
  integer i_offbuf_p_n1;
  always @(posedge clk) begin
    offbuf_p_n1[0] <= s_p;
    for (i_offbuf_p_n1 = 1; i_offbuf_p_n1 < 65; i_offbuf_p_n1 = i_offbuf_p_n1 + 1)
      offbuf_p_n1[i_offbuf_p_n1] <= offbuf_p_n1[i_offbuf_p_n1 - 1];
  end
  wire [17:0] w_p_n1 = offbuf_p_n1[64];

  // offset stream %p_pND1 = %p offset +ND1 (delay 56)
  reg [17:0] offbuf_p_pND1 [0:55];
  integer i_offbuf_p_pND1;
  always @(posedge clk) begin
    offbuf_p_pND1[0] <= s_p;
    for (i_offbuf_p_pND1 = 1; i_offbuf_p_pND1 < 56; i_offbuf_p_pND1 = i_offbuf_p_pND1 + 1)
      offbuf_p_pND1[i_offbuf_p_pND1] <= offbuf_p_pND1[i_offbuf_p_pND1 - 1];
  end
  wire [17:0] w_p_pND1 = offbuf_p_pND1[55];

  // offset stream %p_nND1 = %p offset -ND1 (delay 72)
  reg [17:0] offbuf_p_nND1 [0:71];
  integer i_offbuf_p_nND1;
  always @(posedge clk) begin
    offbuf_p_nND1[0] <= s_p;
    for (i_offbuf_p_nND1 = 1; i_offbuf_p_nND1 < 72; i_offbuf_p_nND1 = i_offbuf_p_nND1 + 1)
      offbuf_p_nND1[i_offbuf_p_nND1] <= offbuf_p_nND1[i_offbuf_p_nND1 - 1];
  end
  wire [17:0] w_p_nND1 = offbuf_p_nND1[71];

  // offset stream %p_pND1xND2 = %p offset +ND1*ND2 (delay 0)
  wire [17:0] w_p_pND1xND2 = s_p;

  // offset stream %p_nND1xND2 = %p offset -ND1*ND2 (delay 128)
  reg [17:0] offbuf_p_nND1xND2 [0:127];
  integer i_offbuf_p_nND1xND2;
  always @(posedge clk) begin
    offbuf_p_nND1xND2[0] <= s_p;
    for (i_offbuf_p_nND1xND2 = 1; i_offbuf_p_nND1xND2 < 128; i_offbuf_p_nND1xND2 = i_offbuf_p_nND1xND2 + 1)
      offbuf_p_nND1xND2[i_offbuf_p_nND1xND2] <= offbuf_p_nND1xND2[i_offbuf_p_nND1xND2 - 1];
  end
  wire [17:0] w_p_nND1xND2 = offbuf_p_nND1xND2[127];

  // %1 = mul (stage 0, 3 cycle(s))
  reg [17:0] r_v1;
  reg [17:0] r_v1_p1;
  reg [17:0] r_v1_p2;
  always @(posedge clk) begin
    r_v1 <= w_p_1 * 18'd1024;
    r_v1_p1 <= r_v1;
    r_v1_p2 <= r_v1_p1;
  end
  wire [17:0] w_v1 = r_v1_p2;

  // %2 = mul (stage 0, 3 cycle(s))
  reg [17:0] r_v2;
  reg [17:0] r_v2_p1;
  reg [17:0] r_v2_p2;
  always @(posedge clk) begin
    r_v2 <= w_p_n1 * 18'd1024;
    r_v2_p1 <= r_v2;
    r_v2_p2 <= r_v2_p1;
  end
  wire [17:0] w_v2 = r_v2_p2;

  // %3 = mul (stage 0, 3 cycle(s))
  reg [17:0] r_v3;
  reg [17:0] r_v3_p1;
  reg [17:0] r_v3_p2;
  always @(posedge clk) begin
    r_v3 <= w_p_pND1 * 18'd1024;
    r_v3_p1 <= r_v3;
    r_v3_p2 <= r_v3_p1;
  end
  wire [17:0] w_v3 = r_v3_p2;

  // %4 = mul (stage 0, 3 cycle(s))
  reg [17:0] r_v4;
  reg [17:0] r_v4_p1;
  reg [17:0] r_v4_p2;
  always @(posedge clk) begin
    r_v4 <= w_p_nND1 * 18'd1024;
    r_v4_p1 <= r_v4;
    r_v4_p2 <= r_v4_p1;
  end
  wire [17:0] w_v4 = r_v4_p2;

  // %5 = mul (stage 0, 3 cycle(s))
  reg [17:0] r_v5;
  reg [17:0] r_v5_p1;
  reg [17:0] r_v5_p2;
  always @(posedge clk) begin
    r_v5 <= w_p_pND1xND2 * 18'd1024;
    r_v5_p1 <= r_v5;
    r_v5_p2 <= r_v5_p1;
  end
  wire [17:0] w_v5 = r_v5_p2;

  // %6 = mul (stage 0, 3 cycle(s))
  reg [17:0] r_v6;
  reg [17:0] r_v6_p1;
  reg [17:0] r_v6_p2;
  always @(posedge clk) begin
    r_v6 <= w_p_nND1xND2 * 18'd1024;
    r_v6_p1 <= r_v6;
    r_v6_p2 <= r_v6_p1;
  end
  wire [17:0] w_v6 = r_v6_p2;

  // %7 = add (stage 3, 1 cycle(s))
  reg [17:0] r_v7;
  always @(posedge clk) begin
    r_v7 <= w_v1 + w_v2;
  end
  wire [17:0] w_v7 = r_v7;

  // %8 = add (stage 3, 1 cycle(s))
  reg [17:0] r_v8;
  always @(posedge clk) begin
    r_v8 <= w_v3 + w_v4;
  end
  wire [17:0] w_v8 = r_v8;

  // %9 = add (stage 3, 1 cycle(s))
  reg [17:0] r_v9;
  always @(posedge clk) begin
    r_v9 <= w_v5 + w_v6;
  end
  wire [17:0] w_v9 = r_v9;

  // %10 = add (stage 4, 1 cycle(s))
  reg [17:0] r_v10;
  always @(posedge clk) begin
    r_v10 <= w_v7 + w_v8;
  end
  wire [17:0] w_v10 = r_v10;

  // balance %9 by 1 cycle(s)
  reg [17:0] balbuf_v9_d1 [0:0];
  integer i_balbuf_v9_d1;
  always @(posedge clk) begin
    balbuf_v9_d1[0] <= w_v9;
    for (i_balbuf_v9_d1 = 1; i_balbuf_v9_d1 < 1; i_balbuf_v9_d1 = i_balbuf_v9_d1 + 1)
      balbuf_v9_d1[i_balbuf_v9_d1] <= balbuf_v9_d1[i_balbuf_v9_d1 - 1];
  end
  wire [17:0] w_v9_d1 = balbuf_v9_d1[0];

  // %11 = add (stage 5, 1 cycle(s))
  reg [17:0] r_v11;
  always @(posedge clk) begin
    r_v11 <= w_v10 + w_v9_d1;
  end
  wire [17:0] w_v11 = r_v11;

  // %12 = mul (stage 6, 3 cycle(s))
  reg [17:0] r_v12;
  reg [17:0] r_v12_p1;
  reg [17:0] r_v12_p2;
  always @(posedge clk) begin
    r_v12 <= w_v11 * 18'd171;
    r_v12_p1 <= r_v12;
    r_v12_p2 <= r_v12_p1;
  end
  wire [17:0] w_v12 = r_v12_p2;

  // balance %rhs by 9 cycle(s)
  reg [17:0] balbuf_rhs_d9 [0:8];
  integer i_balbuf_rhs_d9;
  always @(posedge clk) begin
    balbuf_rhs_d9[0] <= w_rhs;
    for (i_balbuf_rhs_d9 = 1; i_balbuf_rhs_d9 < 9; i_balbuf_rhs_d9 = i_balbuf_rhs_d9 + 1)
      balbuf_rhs_d9[i_balbuf_rhs_d9] <= balbuf_rhs_d9[i_balbuf_rhs_d9 - 1];
  end
  wire [17:0] w_rhs_d9 = balbuf_rhs_d9[8];

  // %13 = sub (stage 9, 1 cycle(s))
  reg [17:0] r_v13;
  always @(posedge clk) begin
    r_v13 <= w_v12 - w_rhs_d9;
  end
  wire [17:0] w_v13 = r_v13;

  // %p_new = mul (stage 10, 3 cycle(s))
  reg [17:0] r_p_new;
  reg [17:0] r_p_new_p1;
  reg [17:0] r_p_new_p2;
  always @(posedge clk) begin
    r_p_new <= w_v13 * 18'd1024;
    r_p_new_p1 <= r_p_new;
    r_p_new_p2 <= r_p_new_p1;
  end
  wire [17:0] w_p_new = r_p_new_p2;

  // balance %p by 13 cycle(s)
  reg [17:0] balbuf_p_d13 [0:12];
  integer i_balbuf_p_d13;
  always @(posedge clk) begin
    balbuf_p_d13[0] <= w_p;
    for (i_balbuf_p_d13 = 1; i_balbuf_p_d13 < 13; i_balbuf_p_d13 = i_balbuf_p_d13 + 1)
      balbuf_p_d13[i_balbuf_p_d13] <= balbuf_p_d13[i_balbuf_p_d13 - 1];
  end
  wire [17:0] w_p_d13 = balbuf_p_d13[12];

  // %14 = sub (stage 13, 1 cycle(s))
  reg [17:0] r_v14;
  always @(posedge clk) begin
    r_v14 <= w_p_new - w_p_d13;
  end
  wire [17:0] w_v14 = r_v14;

  // reduction @sorErrAcc (stage 14)
  always @(posedge clk) begin
    if (rst) g_sorErrAcc <= 0;
    else if (valid_sr[77]) g_sorErrAcc <= w_v14 + g_sorErrAcc;
  end

  assign s_p_new = w_p_new;
endmodule

// ==== file: testbench.v ====
// Auto-generated testbench for @sor_pe (RTL latency 77, 64 work-items, stimulus seed 0x7c0ffee)
`timescale 1ns/1ps
module tb_sor_pe;

  reg clk = 1'b0;
  reg rst = 1'b1;
  reg in_valid = 1'b0;
  wire out_valid;
  integer cycle = 0;
  integer out_index = 0;

  always #2.5 clk = ~clk;

  reg [17:0] s_p;
  reg [31:0] lcg_p;  // stream 0 LCG state
  reg [17:0] s_rhs;
  reg [31:0] lcg_rhs;  // stream 1 LCG state

  wire [17:0] s_p_new;
  wire [17:0] g_sorErrAcc;

  sor_pe_kernel dut (
    .clk(clk),
    .rst(rst),
    .in_valid(in_valid),
    .out_valid(out_valid),
    .s_p(s_p),
    .s_rhs(s_rhs),
    .s_p_new(s_p_new),
    .g_sorErrAcc(g_sorErrAcc)
  );

  initial begin
    $dumpfile("tb_sor_pe.vcd");
    $dumpvars(0, tb_sor_pe);
    repeat (148) @(posedge clk);  // flush un-reset delay lines with zeros
    rst = 1'b0;
  end

  always @(posedge clk) begin
    if (rst) begin
      cycle <= 0;
      in_valid <= 1'b0;
      s_p <= 0;
      lcg_p <= 32'ha5f879a7;
      s_rhs <= 0;
      lcg_rhs <= 32'h442ff360;
    end else begin
      cycle <= cycle + 1;
      in_valid <= (cycle < 64);
      if (cycle < 64) begin
        s_p <= lcg_p[17:0];
        lcg_p <= lcg_p * 32'd1664525 + 32'd1013904223;
        s_rhs <= lcg_rhs[17:0];
        lcg_rhs <= lcg_rhs * 32'd1664525 + 32'd1013904223;
      end else begin
        s_p <= 0;
        s_rhs <= 0;
      end
    end
  end

  always @(posedge clk) begin
    if (!rst && out_valid) begin
      $display("RESULT p_new %0d %h", out_index, s_p_new);
      out_index <= out_index + 1;
    end
    if (cycle == 160) begin
      $display("REDUCTION sorErrAcc %h", g_sorErrAcc);
      $display("DONE %0d", cycle);
      $finish;
    end
  end

endmodule
