// golden Verilog snapshot for kernel 'lavamd' (lanes 2, grid (8, 8, 8), 64 items)

// ==== file: lavamd_l2_config.vh ====
// configuration include for lavamd_l2
`define TYTRA_DESIGN "lavamd_l2"
`define TYTRA_LANES 2
`define TYTRA_KERNEL "lavamd_pe"
`define TYTRA_PIPELINE_DEPTH 23
`define TYTRA_WINDOW 0
`define TYTRA_RTL_LATENCY 21
`define TYTRA_NI 15
`define TYTRA_NOFF 0
`define TYTRA_NWPT 5
`define TYTRA_STREAMS 10

// ==== file: lavamd_l2_cu.v ====
// compute unit for design 'lavamd_l2': 2 lane(s) of @lavamd_pe
module lavamd_l2_cu (
  input  wire clk,
  input  wire rst,
  input  wire in_valid,
  output wire out_valid
);

  // ---- lane 0 ----
  wire lane0_out_valid;
  wire [31:0] rx_lane0; // fed by stream control
  wire [31:0] ry_lane0; // fed by stream control
  wire [31:0] rz_lane0; // fed by stream control
  wire [31:0] qv_lane0; // fed by stream control
  lavamd_pe_kernel lane0 (.clk(clk), .rst(rst), .in_valid(in_valid), .out_valid(lane0_out_valid), .s_rx(rx_lane0), .s_ry(ry_lane0), .s_rz(rz_lane0), .s_qv(qv_lane0));

  // ---- lane 1 ----
  wire lane1_out_valid;
  wire [31:0] rx_lane1; // fed by stream control
  wire [31:0] ry_lane1; // fed by stream control
  wire [31:0] rz_lane1; // fed by stream control
  wire [31:0] qv_lane1; // fed by stream control
  lavamd_pe_kernel lane1 (.clk(clk), .rst(rst), .in_valid(in_valid), .out_valid(lane1_out_valid), .s_rx(rx_lane1), .s_ry(ry_lane1), .s_rz(rz_lane1), .s_qv(qv_lane1));

  assign out_valid = lane0_out_valid & lane1_out_valid;
endmodule

// ==== file: lavamd_pe_kernel.v ====
// kernel pipeline for @lavamd_pe (depth 23, II 1, window 0, latency 21)
module lavamd_pe_kernel (
  input  wire clk,
  input  wire rst,
  input  wire in_valid,
  output wire out_valid,
  input  wire [31:0] s_rx,
  input  wire [31:0] s_ry,
  input  wire [31:0] s_rz,
  input  wire [31:0] s_qv,
  output wire [31:0] s_pot,
  output reg  [31:0] g_potAcc
);

  reg [20:0] valid_sr;
  always @(posedge clk) begin
    if (rst) valid_sr <= 0;
    else     valid_sr <= {valid_sr, in_valid};
  end
  assign out_valid = valid_sr[20];

  // input stream %rx aligned by 0 cycle(s)
  wire [31:0] w_rx = s_rx;

  // input stream %ry aligned by 0 cycle(s)
  wire [31:0] w_ry = s_ry;

  // input stream %rz aligned by 0 cycle(s)
  wire [31:0] w_rz = s_rz;

  // input stream %qv aligned by 0 cycle(s)
  wire [31:0] w_qv = s_qv;

  // %1 = mul (stage 0, 3 cycle(s))
  reg [31:0] r_v1;
  reg [31:0] r_v1_p1;
  reg [31:0] r_v1_p2;
  always @(posedge clk) begin
    r_v1 <= w_rx * w_rx;
    r_v1_p1 <= r_v1;
    r_v1_p2 <= r_v1_p1;
  end
  wire [31:0] w_v1 = r_v1_p2;

  // %2 = mul (stage 0, 3 cycle(s))
  reg [31:0] r_v2;
  reg [31:0] r_v2_p1;
  reg [31:0] r_v2_p2;
  always @(posedge clk) begin
    r_v2 <= w_ry * w_ry;
    r_v2_p1 <= r_v2;
    r_v2_p2 <= r_v2_p1;
  end
  wire [31:0] w_v2 = r_v2_p2;

  // %3 = mul (stage 0, 3 cycle(s))
  reg [31:0] r_v3;
  reg [31:0] r_v3_p1;
  reg [31:0] r_v3_p2;
  always @(posedge clk) begin
    r_v3 <= w_rz * w_rz;
    r_v3_p1 <= r_v3;
    r_v3_p2 <= r_v3_p1;
  end
  wire [31:0] w_v3 = r_v3_p2;

  // %4 = add (stage 3, 1 cycle(s))
  reg [31:0] r_v4;
  always @(posedge clk) begin
    r_v4 <= w_v1 + w_v2;
  end
  wire [31:0] w_v4 = r_v4;

  // balance %3 by 1 cycle(s)
  reg [31:0] balbuf_v3_d1 [0:0];
  integer i_balbuf_v3_d1;
  always @(posedge clk) begin
    balbuf_v3_d1[0] <= w_v3;
    for (i_balbuf_v3_d1 = 1; i_balbuf_v3_d1 < 1; i_balbuf_v3_d1 = i_balbuf_v3_d1 + 1)
      balbuf_v3_d1[i_balbuf_v3_d1] <= balbuf_v3_d1[i_balbuf_v3_d1 - 1];
  end
  wire [31:0] w_v3_d1 = balbuf_v3_d1[0];

  // %5 = add (stage 4, 1 cycle(s))
  reg [31:0] r_v5;
  always @(posedge clk) begin
    r_v5 <= w_v4 + w_v3_d1;
  end
  wire [31:0] w_v5 = r_v5;

  // %6 = mul (stage 5, 3 cycle(s))
  reg [31:0] r_v6;
  reg [31:0] r_v6_p1;
  reg [31:0] r_v6_p2;
  always @(posedge clk) begin
    r_v6 <= w_v5 * 32'd128;
    r_v6_p1 <= r_v6;
    r_v6_p2 <= r_v6_p1;
  end
  wire [31:0] w_v6 = r_v6_p2;

  // %7 = mul (stage 8, 3 cycle(s))
  reg [31:0] r_v7;
  reg [31:0] r_v7_p1;
  reg [31:0] r_v7_p2;
  always @(posedge clk) begin
    r_v7 <= w_v6 * w_v6;
    r_v7_p1 <= r_v7;
    r_v7_p2 <= r_v7_p1;
  end
  wire [31:0] w_v7 = r_v7_p2;

  // balance %6 by 3 cycle(s)
  reg [31:0] balbuf_v6_d3 [0:2];
  integer i_balbuf_v6_d3;
  always @(posedge clk) begin
    balbuf_v6_d3[0] <= w_v6;
    for (i_balbuf_v6_d3 = 1; i_balbuf_v6_d3 < 3; i_balbuf_v6_d3 = i_balbuf_v6_d3 + 1)
      balbuf_v6_d3[i_balbuf_v6_d3] <= balbuf_v6_d3[i_balbuf_v6_d3 - 1];
  end
  wire [31:0] w_v6_d3 = balbuf_v6_d3[2];

  // %8 = mul (stage 11, 3 cycle(s))
  reg [31:0] r_v8;
  reg [31:0] r_v8_p1;
  reg [31:0] r_v8_p2;
  always @(posedge clk) begin
    r_v8 <= w_v7 * w_v6_d3;
    r_v8_p1 <= r_v8;
    r_v8_p2 <= r_v8_p1;
  end
  wire [31:0] w_v8 = r_v8_p2;

  // %9 = mul (stage 11, 3 cycle(s))
  reg [31:0] r_v9;
  reg [31:0] r_v9_p1;
  reg [31:0] r_v9_p2;
  always @(posedge clk) begin
    r_v9 <= w_v7 * 32'd128;
    r_v9_p1 <= r_v9;
    r_v9_p2 <= r_v9_p1;
  end
  wire [31:0] w_v9 = r_v9_p2;

  // %10 = mul (stage 14, 3 cycle(s))
  reg [31:0] r_v10;
  reg [31:0] r_v10_p1;
  reg [31:0] r_v10_p2;
  always @(posedge clk) begin
    r_v10 <= w_v8 * 32'd43;
    r_v10_p1 <= r_v10;
    r_v10_p2 <= r_v10_p1;
  end
  wire [31:0] w_v10 = r_v10_p2;

  // %11 = sub (stage 8, 1 cycle(s))
  reg [31:0] r_v11;
  always @(posedge clk) begin
    r_v11 <= 32'd256 - w_v6;
  end
  wire [31:0] w_v11 = r_v11;

  // balance %11 by 5 cycle(s)
  reg [31:0] balbuf_v11_d5 [0:4];
  integer i_balbuf_v11_d5;
  always @(posedge clk) begin
    balbuf_v11_d5[0] <= w_v11;
    for (i_balbuf_v11_d5 = 1; i_balbuf_v11_d5 < 5; i_balbuf_v11_d5 = i_balbuf_v11_d5 + 1)
      balbuf_v11_d5[i_balbuf_v11_d5] <= balbuf_v11_d5[i_balbuf_v11_d5 - 1];
  end
  wire [31:0] w_v11_d5 = balbuf_v11_d5[4];

  // %12 = add (stage 14, 1 cycle(s))
  reg [31:0] r_v12;
  always @(posedge clk) begin
    r_v12 <= w_v11_d5 + w_v9;
  end
  wire [31:0] w_v12 = r_v12;

  // balance %12 by 2 cycle(s)
  reg [31:0] balbuf_v12_d2 [0:1];
  integer i_balbuf_v12_d2;
  always @(posedge clk) begin
    balbuf_v12_d2[0] <= w_v12;
    for (i_balbuf_v12_d2 = 1; i_balbuf_v12_d2 < 2; i_balbuf_v12_d2 = i_balbuf_v12_d2 + 1)
      balbuf_v12_d2[i_balbuf_v12_d2] <= balbuf_v12_d2[i_balbuf_v12_d2 - 1];
  end
  wire [31:0] w_v12_d2 = balbuf_v12_d2[1];

  // %13 = sub (stage 17, 1 cycle(s))
  reg [31:0] r_v13;
  always @(posedge clk) begin
    r_v13 <= w_v12_d2 - w_v10;
  end
  wire [31:0] w_v13 = r_v13;

  // balance %qv by 18 cycle(s)
  reg [31:0] balbuf_qv_d18 [0:17];
  integer i_balbuf_qv_d18;
  always @(posedge clk) begin
    balbuf_qv_d18[0] <= w_qv;
    for (i_balbuf_qv_d18 = 1; i_balbuf_qv_d18 < 18; i_balbuf_qv_d18 = i_balbuf_qv_d18 + 1)
      balbuf_qv_d18[i_balbuf_qv_d18] <= balbuf_qv_d18[i_balbuf_qv_d18 - 1];
  end
  wire [31:0] w_qv_d18 = balbuf_qv_d18[17];

  // %pot = mul (stage 18, 3 cycle(s))
  reg [31:0] r_pot;
  reg [31:0] r_pot_p1;
  reg [31:0] r_pot_p2;
  always @(posedge clk) begin
    r_pot <= w_qv_d18 * w_v13;
    r_pot_p1 <= r_pot;
    r_pot_p2 <= r_pot_p1;
  end
  wire [31:0] w_pot = r_pot_p2;

  // reduction @potAcc (stage 21)
  always @(posedge clk) begin
    if (rst) g_potAcc <= 0;
    else if (valid_sr[20]) g_potAcc <= w_pot + g_potAcc;
  end

  assign s_pot = w_pot;
endmodule

// ==== file: testbench.v ====
// Auto-generated testbench for @lavamd_pe (RTL latency 21, 64 work-items, stimulus seed 0x7c0ffee)
`timescale 1ns/1ps
module tb_lavamd_pe;

  reg clk = 1'b0;
  reg rst = 1'b1;
  reg in_valid = 1'b0;
  wire out_valid;
  integer cycle = 0;
  integer out_index = 0;

  always #2.5 clk = ~clk;

  reg [31:0] s_rx;
  reg [31:0] lcg_rx;  // stream 0 LCG state
  reg [31:0] s_ry;
  reg [31:0] lcg_ry;  // stream 1 LCG state
  reg [31:0] s_rz;
  reg [31:0] lcg_rz;  // stream 2 LCG state
  reg [31:0] s_qv;
  reg [31:0] lcg_qv;  // stream 3 LCG state

  wire [31:0] s_pot;
  wire [31:0] g_potAcc;

  lavamd_pe_kernel dut (
    .clk(clk),
    .rst(rst),
    .in_valid(in_valid),
    .out_valid(out_valid),
    .s_rx(s_rx),
    .s_ry(s_ry),
    .s_rz(s_rz),
    .s_qv(s_qv),
    .s_pot(s_pot),
    .g_potAcc(g_potAcc)
  );

  initial begin
    $dumpfile("tb_lavamd_pe.vcd");
    $dumpvars(0, tb_lavamd_pe);
    repeat (27) @(posedge clk);  // flush un-reset delay lines with zeros
    rst = 1'b0;
  end

  always @(posedge clk) begin
    if (rst) begin
      cycle <= 0;
      in_valid <= 1'b0;
      s_rx <= 0;
      lcg_rx <= 32'ha5f879a7;
      s_ry <= 0;
      lcg_ry <= 32'h442ff360;
      s_rz <= 0;
      lcg_rz <= 32'he2676d19;
      s_qv <= 0;
      lcg_qv <= 32'h809ee6d2;
    end else begin
      cycle <= cycle + 1;
      in_valid <= (cycle < 64);
      if (cycle < 64) begin
        s_rx <= lcg_rx[31:0];
        lcg_rx <= lcg_rx * 32'd1664525 + 32'd1013904223;
        s_ry <= lcg_ry[31:0];
        lcg_ry <= lcg_ry * 32'd1664525 + 32'd1013904223;
        s_rz <= lcg_rz[31:0];
        lcg_rz <= lcg_rz * 32'd1664525 + 32'd1013904223;
        s_qv <= lcg_qv[31:0];
        lcg_qv <= lcg_qv * 32'd1664525 + 32'd1013904223;
      end else begin
        s_rx <= 0;
        s_ry <= 0;
        s_rz <= 0;
        s_qv <= 0;
      end
    end
  end

  always @(posedge clk) begin
    if (!rst && out_valid) begin
      $display("RESULT pot %0d %h", out_index, s_pot);
      out_index <= out_index + 1;
    end
    if (cycle == 103) begin
      $display("REDUCTION potAcc %h", g_potAcc);
      $display("DONE %0d", cycle);
      $finish;
    end
  end

endmodule
