// golden Verilog snapshot for kernel 'nw' (lanes 2, grid (8, 8), 64 items)

// ==== file: nw_l2_config.vh ====
// configuration include for nw_l2
`define TYTRA_DESIGN "nw_l2"
`define TYTRA_LANES 2
`define TYTRA_KERNEL "nw_pe"
`define TYTRA_PIPELINE_DEPTH 5
`define TYTRA_WINDOW 0
`define TYTRA_RTL_LATENCY 3
`define TYTRA_NI 6
`define TYTRA_NOFF 9
`define TYTRA_NWPT 3
`define TYTRA_STREAMS 6

// ==== file: nw_l2_cu.v ====
// compute unit for design 'nw_l2': 2 lane(s) of @nw_pe
module nw_l2_cu (
  input  wire clk,
  input  wire rst,
  input  wire in_valid,
  output wire out_valid
);

  // ---- lane 0 ----
  wire lane0_out_valid;
  wire [19:0] h_lane0; // fed by stream control
  wire [19:0] sub_lane0; // fed by stream control
  nw_pe_kernel lane0 (.clk(clk), .rst(rst), .in_valid(in_valid), .out_valid(lane0_out_valid), .s_h(h_lane0), .s_sub(sub_lane0));

  // ---- lane 1 ----
  wire lane1_out_valid;
  wire [19:0] h_lane1; // fed by stream control
  wire [19:0] sub_lane1; // fed by stream control
  nw_pe_kernel lane1 (.clk(clk), .rst(rst), .in_valid(in_valid), .out_valid(lane1_out_valid), .s_h(h_lane1), .s_sub(sub_lane1));

  assign out_valid = lane0_out_valid & lane1_out_valid;
endmodule

// ==== file: nw_pe_kernel.v ====
// kernel pipeline for @nw_pe (depth 5, II 1, window 0, latency 3)
module nw_pe_kernel (
  input  wire clk,
  input  wire rst,
  input  wire in_valid,
  output wire out_valid,
  input  wire [19:0] s_h,
  input  wire [19:0] s_sub,
  output wire [19:0] s_h_new,
  output reg  [19:0] g_bestScore
);

  reg [2:0] valid_sr;
  always @(posedge clk) begin
    if (rst) valid_sr <= 0;
    else     valid_sr <= {valid_sr, in_valid};
  end
  assign out_valid = valid_sr[2];

  // input stream %h aligned by 0 cycle(s)
  wire [19:0] w_h = s_h;

  // input stream %sub aligned by 0 cycle(s)
  wire [19:0] w_sub = s_sub;

  // offset stream %h_n1 = %h offset -1 (delay 1)
  reg [19:0] offbuf_h_n1 [0:0];
  integer i_offbuf_h_n1;
  always @(posedge clk) begin
    offbuf_h_n1[0] <= s_h;
    for (i_offbuf_h_n1 = 1; i_offbuf_h_n1 < 1; i_offbuf_h_n1 = i_offbuf_h_n1 + 1)
      offbuf_h_n1[i_offbuf_h_n1] <= offbuf_h_n1[i_offbuf_h_n1 - 1];
  end
  wire [19:0] w_h_n1 = offbuf_h_n1[0];

  // offset stream %h_nND1 = %h offset -ND1 (delay 8)
  reg [19:0] offbuf_h_nND1 [0:7];
  integer i_offbuf_h_nND1;
  always @(posedge clk) begin
    offbuf_h_nND1[0] <= s_h;
    for (i_offbuf_h_nND1 = 1; i_offbuf_h_nND1 < 8; i_offbuf_h_nND1 = i_offbuf_h_nND1 + 1)
      offbuf_h_nND1[i_offbuf_h_nND1] <= offbuf_h_nND1[i_offbuf_h_nND1 - 1];
  end
  wire [19:0] w_h_nND1 = offbuf_h_nND1[7];

  // offset stream %h_nND1n1 = %h offset -ND1-1 (delay 9)
  reg [19:0] offbuf_h_nND1n1 [0:8];
  integer i_offbuf_h_nND1n1;
  always @(posedge clk) begin
    offbuf_h_nND1n1[0] <= s_h;
    for (i_offbuf_h_nND1n1 = 1; i_offbuf_h_nND1n1 < 9; i_offbuf_h_nND1n1 = i_offbuf_h_nND1n1 + 1)
      offbuf_h_nND1n1[i_offbuf_h_nND1n1] <= offbuf_h_nND1n1[i_offbuf_h_nND1n1 - 1];
  end
  wire [19:0] w_h_nND1n1 = offbuf_h_nND1n1[8];

  // %1 = sub (stage 0, 1 cycle(s))
  reg [19:0] r_v1;
  always @(posedge clk) begin
    r_v1 <= w_h_n1 - 20'd64;
  end
  wire [19:0] w_v1 = r_v1;

  // %2 = sub (stage 0, 1 cycle(s))
  reg [19:0] r_v2;
  always @(posedge clk) begin
    r_v2 <= w_h_nND1 - 20'd64;
  end
  wire [19:0] w_v2 = r_v2;

  // %3 = add (stage 0, 1 cycle(s))
  reg [19:0] r_v3;
  always @(posedge clk) begin
    r_v3 <= w_h_nND1n1 + w_sub;
  end
  wire [19:0] w_v3 = r_v3;

  // %4 = max (stage 1, 1 cycle(s))
  reg [19:0] r_v4;
  always @(posedge clk) begin
    r_v4 <= (w_v1 > w_v2) ? w_v1 : w_v2;
  end
  wire [19:0] w_v4 = r_v4;

  // balance %3 by 1 cycle(s)
  reg [19:0] balbuf_v3_d1 [0:0];
  integer i_balbuf_v3_d1;
  always @(posedge clk) begin
    balbuf_v3_d1[0] <= w_v3;
    for (i_balbuf_v3_d1 = 1; i_balbuf_v3_d1 < 1; i_balbuf_v3_d1 = i_balbuf_v3_d1 + 1)
      balbuf_v3_d1[i_balbuf_v3_d1] <= balbuf_v3_d1[i_balbuf_v3_d1 - 1];
  end
  wire [19:0] w_v3_d1 = balbuf_v3_d1[0];

  // %h_new = max (stage 2, 1 cycle(s))
  reg [19:0] r_h_new;
  always @(posedge clk) begin
    r_h_new <= (w_v3_d1 > w_v4) ? w_v3_d1 : w_v4;
  end
  wire [19:0] w_h_new = r_h_new;

  // reduction @bestScore (stage 3)
  always @(posedge clk) begin
    if (rst) g_bestScore <= 0;
    else if (valid_sr[2]) g_bestScore <= (w_h_new > g_bestScore) ? w_h_new : g_bestScore;
  end

  assign s_h_new = w_h_new;
endmodule

// ==== file: testbench.v ====
// Auto-generated testbench for @nw_pe (RTL latency 3, 64 work-items, stimulus seed 0x7c0ffee)
`timescale 1ns/1ps
module tb_nw_pe;

  reg clk = 1'b0;
  reg rst = 1'b1;
  reg in_valid = 1'b0;
  wire out_valid;
  integer cycle = 0;
  integer out_index = 0;

  always #2.5 clk = ~clk;

  reg [19:0] s_h;
  reg [31:0] lcg_h;  // stream 0 LCG state
  reg [19:0] s_sub;
  reg [31:0] lcg_sub;  // stream 1 LCG state

  wire [19:0] s_h_new;
  wire [19:0] g_bestScore;

  nw_pe_kernel dut (
    .clk(clk),
    .rst(rst),
    .in_valid(in_valid),
    .out_valid(out_valid),
    .s_h(s_h),
    .s_sub(s_sub),
    .s_h_new(s_h_new),
    .g_bestScore(g_bestScore)
  );

  initial begin
    $dumpfile("tb_nw_pe.vcd");
    $dumpvars(0, tb_nw_pe);
    repeat (18) @(posedge clk);  // flush un-reset delay lines with zeros
    rst = 1'b0;
  end

  always @(posedge clk) begin
    if (rst) begin
      cycle <= 0;
      in_valid <= 1'b0;
      s_h <= 0;
      lcg_h <= 32'ha5f879a7;
      s_sub <= 0;
      lcg_sub <= 32'h442ff360;
    end else begin
      cycle <= cycle + 1;
      in_valid <= (cycle < 64);
      if (cycle < 64) begin
        s_h <= lcg_h[19:0];
        lcg_h <= lcg_h * 32'd1664525 + 32'd1013904223;
        s_sub <= lcg_sub[19:0];
        lcg_sub <= lcg_sub * 32'd1664525 + 32'd1013904223;
      end else begin
        s_h <= 0;
        s_sub <= 0;
      end
    end
  end

  always @(posedge clk) begin
    if (!rst && out_valid) begin
      $display("RESULT h_new %0d %h", out_index, s_h_new);
      out_index <= out_index + 1;
    end
    if (cycle == 85) begin
      $display("REDUCTION bestScore %h", g_bestScore);
      $display("DONE %0d", cycle);
      $finish;
    end
  end

endmodule
