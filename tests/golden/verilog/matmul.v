// golden Verilog snapshot for kernel 'matmul' (lanes 2, grid (8, 8), 64 items)

// ==== file: matmul_l2_config.vh ====
// configuration include for matmul_l2
`define TYTRA_DESIGN "matmul_l2"
`define TYTRA_LANES 2
`define TYTRA_KERNEL "matmul_pe"
`define TYTRA_PIPELINE_DEPTH 8
`define TYTRA_WINDOW 0
`define TYTRA_RTL_LATENCY 6
`define TYTRA_NI 8
`define TYTRA_NOFF 0
`define TYTRA_NWPT 9
`define TYTRA_STREAMS 18

// ==== file: matmul_l2_cu.v ====
// compute unit for design 'matmul_l2': 2 lane(s) of @matmul_pe
module matmul_l2_cu (
  input  wire clk,
  input  wire rst,
  input  wire in_valid,
  output wire out_valid
);

  // ---- lane 0 ----
  wire lane0_out_valid;
  wire [31:0] a0_lane0; // fed by stream control
  wire [31:0] a1_lane0; // fed by stream control
  wire [31:0] a2_lane0; // fed by stream control
  wire [31:0] a3_lane0; // fed by stream control
  wire [31:0] b0_lane0; // fed by stream control
  wire [31:0] b1_lane0; // fed by stream control
  wire [31:0] b2_lane0; // fed by stream control
  wire [31:0] b3_lane0; // fed by stream control
  matmul_pe_kernel lane0 (.clk(clk), .rst(rst), .in_valid(in_valid), .out_valid(lane0_out_valid), .s_a0(a0_lane0), .s_a1(a1_lane0), .s_a2(a2_lane0), .s_a3(a3_lane0), .s_b0(b0_lane0), .s_b1(b1_lane0), .s_b2(b2_lane0), .s_b3(b3_lane0));

  // ---- lane 1 ----
  wire lane1_out_valid;
  wire [31:0] a0_lane1; // fed by stream control
  wire [31:0] a1_lane1; // fed by stream control
  wire [31:0] a2_lane1; // fed by stream control
  wire [31:0] a3_lane1; // fed by stream control
  wire [31:0] b0_lane1; // fed by stream control
  wire [31:0] b1_lane1; // fed by stream control
  wire [31:0] b2_lane1; // fed by stream control
  wire [31:0] b3_lane1; // fed by stream control
  matmul_pe_kernel lane1 (.clk(clk), .rst(rst), .in_valid(in_valid), .out_valid(lane1_out_valid), .s_a0(a0_lane1), .s_a1(a1_lane1), .s_a2(a2_lane1), .s_a3(a3_lane1), .s_b0(b0_lane1), .s_b1(b1_lane1), .s_b2(b2_lane1), .s_b3(b3_lane1));

  assign out_valid = lane0_out_valid & lane1_out_valid;
endmodule

// ==== file: matmul_pe_kernel.v ====
// kernel pipeline for @matmul_pe (depth 8, II 1, window 0, latency 6)
module matmul_pe_kernel (
  input  wire clk,
  input  wire rst,
  input  wire in_valid,
  output wire out_valid,
  input  wire [31:0] s_a0,
  input  wire [31:0] s_a1,
  input  wire [31:0] s_a2,
  input  wire [31:0] s_a3,
  input  wire [31:0] s_b0,
  input  wire [31:0] s_b1,
  input  wire [31:0] s_b2,
  input  wire [31:0] s_b3,
  output wire [31:0] s_c,
  output reg  [31:0] g_cAcc
);

  reg [5:0] valid_sr;
  always @(posedge clk) begin
    if (rst) valid_sr <= 0;
    else     valid_sr <= {valid_sr, in_valid};
  end
  assign out_valid = valid_sr[5];

  // input stream %a0 aligned by 0 cycle(s)
  wire [31:0] w_a0 = s_a0;

  // input stream %a1 aligned by 0 cycle(s)
  wire [31:0] w_a1 = s_a1;

  // input stream %a2 aligned by 0 cycle(s)
  wire [31:0] w_a2 = s_a2;

  // input stream %a3 aligned by 0 cycle(s)
  wire [31:0] w_a3 = s_a3;

  // input stream %b0 aligned by 0 cycle(s)
  wire [31:0] w_b0 = s_b0;

  // input stream %b1 aligned by 0 cycle(s)
  wire [31:0] w_b1 = s_b1;

  // input stream %b2 aligned by 0 cycle(s)
  wire [31:0] w_b2 = s_b2;

  // input stream %b3 aligned by 0 cycle(s)
  wire [31:0] w_b3 = s_b3;

  // %1 = mul (stage 0, 3 cycle(s))
  reg [31:0] r_v1;
  reg [31:0] r_v1_p1;
  reg [31:0] r_v1_p2;
  always @(posedge clk) begin
    r_v1 <= w_a0 * w_b0;
    r_v1_p1 <= r_v1;
    r_v1_p2 <= r_v1_p1;
  end
  wire [31:0] w_v1 = r_v1_p2;

  // %2 = mul (stage 0, 3 cycle(s))
  reg [31:0] r_v2;
  reg [31:0] r_v2_p1;
  reg [31:0] r_v2_p2;
  always @(posedge clk) begin
    r_v2 <= w_a1 * w_b1;
    r_v2_p1 <= r_v2;
    r_v2_p2 <= r_v2_p1;
  end
  wire [31:0] w_v2 = r_v2_p2;

  // %3 = mul (stage 0, 3 cycle(s))
  reg [31:0] r_v3;
  reg [31:0] r_v3_p1;
  reg [31:0] r_v3_p2;
  always @(posedge clk) begin
    r_v3 <= w_a2 * w_b2;
    r_v3_p1 <= r_v3;
    r_v3_p2 <= r_v3_p1;
  end
  wire [31:0] w_v3 = r_v3_p2;

  // %4 = mul (stage 0, 3 cycle(s))
  reg [31:0] r_v4;
  reg [31:0] r_v4_p1;
  reg [31:0] r_v4_p2;
  always @(posedge clk) begin
    r_v4 <= w_a3 * w_b3;
    r_v4_p1 <= r_v4;
    r_v4_p2 <= r_v4_p1;
  end
  wire [31:0] w_v4 = r_v4_p2;

  // %5 = add (stage 3, 1 cycle(s))
  reg [31:0] r_v5;
  always @(posedge clk) begin
    r_v5 <= w_v1 + w_v2;
  end
  wire [31:0] w_v5 = r_v5;

  // balance %3 by 1 cycle(s)
  reg [31:0] balbuf_v3_d1 [0:0];
  integer i_balbuf_v3_d1;
  always @(posedge clk) begin
    balbuf_v3_d1[0] <= w_v3;
    for (i_balbuf_v3_d1 = 1; i_balbuf_v3_d1 < 1; i_balbuf_v3_d1 = i_balbuf_v3_d1 + 1)
      balbuf_v3_d1[i_balbuf_v3_d1] <= balbuf_v3_d1[i_balbuf_v3_d1 - 1];
  end
  wire [31:0] w_v3_d1 = balbuf_v3_d1[0];

  // %6 = add (stage 4, 1 cycle(s))
  reg [31:0] r_v6;
  always @(posedge clk) begin
    r_v6 <= w_v5 + w_v3_d1;
  end
  wire [31:0] w_v6 = r_v6;

  // balance %4 by 2 cycle(s)
  reg [31:0] balbuf_v4_d2 [0:1];
  integer i_balbuf_v4_d2;
  always @(posedge clk) begin
    balbuf_v4_d2[0] <= w_v4;
    for (i_balbuf_v4_d2 = 1; i_balbuf_v4_d2 < 2; i_balbuf_v4_d2 = i_balbuf_v4_d2 + 1)
      balbuf_v4_d2[i_balbuf_v4_d2] <= balbuf_v4_d2[i_balbuf_v4_d2 - 1];
  end
  wire [31:0] w_v4_d2 = balbuf_v4_d2[1];

  // %c = add (stage 5, 1 cycle(s))
  reg [31:0] r_c;
  always @(posedge clk) begin
    r_c <= w_v6 + w_v4_d2;
  end
  wire [31:0] w_c = r_c;

  // reduction @cAcc (stage 6)
  always @(posedge clk) begin
    if (rst) g_cAcc <= 0;
    else if (valid_sr[5]) g_cAcc <= w_c + g_cAcc;
  end

  assign s_c = w_c;
endmodule

// ==== file: testbench.v ====
// Auto-generated testbench for @matmul_pe (RTL latency 6, 64 work-items, stimulus seed 0x7c0ffee)
`timescale 1ns/1ps
module tb_matmul_pe;

  reg clk = 1'b0;
  reg rst = 1'b1;
  reg in_valid = 1'b0;
  wire out_valid;
  integer cycle = 0;
  integer out_index = 0;

  always #2.5 clk = ~clk;

  reg [31:0] s_a0;
  reg [31:0] lcg_a0;  // stream 0 LCG state
  reg [31:0] s_a1;
  reg [31:0] lcg_a1;  // stream 1 LCG state
  reg [31:0] s_a2;
  reg [31:0] lcg_a2;  // stream 2 LCG state
  reg [31:0] s_a3;
  reg [31:0] lcg_a3;  // stream 3 LCG state
  reg [31:0] s_b0;
  reg [31:0] lcg_b0;  // stream 4 LCG state
  reg [31:0] s_b1;
  reg [31:0] lcg_b1;  // stream 5 LCG state
  reg [31:0] s_b2;
  reg [31:0] lcg_b2;  // stream 6 LCG state
  reg [31:0] s_b3;
  reg [31:0] lcg_b3;  // stream 7 LCG state

  wire [31:0] s_c;
  wire [31:0] g_cAcc;

  matmul_pe_kernel dut (
    .clk(clk),
    .rst(rst),
    .in_valid(in_valid),
    .out_valid(out_valid),
    .s_a0(s_a0),
    .s_a1(s_a1),
    .s_a2(s_a2),
    .s_a3(s_a3),
    .s_b0(s_b0),
    .s_b1(s_b1),
    .s_b2(s_b2),
    .s_b3(s_b3),
    .s_c(s_c),
    .g_cAcc(g_cAcc)
  );

  initial begin
    $dumpfile("tb_matmul_pe.vcd");
    $dumpvars(0, tb_matmul_pe);
    repeat (12) @(posedge clk);  // flush un-reset delay lines with zeros
    rst = 1'b0;
  end

  always @(posedge clk) begin
    if (rst) begin
      cycle <= 0;
      in_valid <= 1'b0;
      s_a0 <= 0;
      lcg_a0 <= 32'ha5f879a7;
      s_a1 <= 0;
      lcg_a1 <= 32'h442ff360;
      s_a2 <= 0;
      lcg_a2 <= 32'he2676d19;
      s_a3 <= 0;
      lcg_a3 <= 32'h809ee6d2;
      s_b0 <= 0;
      lcg_b0 <= 32'h1ed6608b;
      s_b1 <= 0;
      lcg_b1 <= 32'hbd0dda44;
      s_b2 <= 0;
      lcg_b2 <= 32'h5b4553fd;
      s_b3 <= 0;
      lcg_b3 <= 32'hf97ccdb6;
    end else begin
      cycle <= cycle + 1;
      in_valid <= (cycle < 64);
      if (cycle < 64) begin
        s_a0 <= lcg_a0[31:0];
        lcg_a0 <= lcg_a0 * 32'd1664525 + 32'd1013904223;
        s_a1 <= lcg_a1[31:0];
        lcg_a1 <= lcg_a1 * 32'd1664525 + 32'd1013904223;
        s_a2 <= lcg_a2[31:0];
        lcg_a2 <= lcg_a2 * 32'd1664525 + 32'd1013904223;
        s_a3 <= lcg_a3[31:0];
        lcg_a3 <= lcg_a3 * 32'd1664525 + 32'd1013904223;
        s_b0 <= lcg_b0[31:0];
        lcg_b0 <= lcg_b0 * 32'd1664525 + 32'd1013904223;
        s_b1 <= lcg_b1[31:0];
        lcg_b1 <= lcg_b1 * 32'd1664525 + 32'd1013904223;
        s_b2 <= lcg_b2[31:0];
        lcg_b2 <= lcg_b2 * 32'd1664525 + 32'd1013904223;
        s_b3 <= lcg_b3[31:0];
        lcg_b3 <= lcg_b3 * 32'd1664525 + 32'd1013904223;
      end else begin
        s_a0 <= 0;
        s_a1 <= 0;
        s_a2 <= 0;
        s_a3 <= 0;
        s_b0 <= 0;
        s_b1 <= 0;
        s_b2 <= 0;
        s_b3 <= 0;
      end
    end
  end

  always @(posedge clk) begin
    if (!rst && out_valid) begin
      $display("RESULT c %0d %h", out_index, s_c);
      out_index <= out_index + 1;
    end
    if (cycle == 88) begin
      $display("REDUCTION cAcc %h", g_cAcc);
      $display("DONE %0d", cycle);
      $finish;
    end
  end

endmodule
