// golden Verilog snapshot for kernel 'hotspot' (lanes 2, grid (8, 8), 64 items)

// ==== file: hotspot_l2_config.vh ====
// configuration include for hotspot_l2
`define TYTRA_DESIGN "hotspot_l2"
`define TYTRA_LANES 2
`define TYTRA_KERNEL "hotspot_pe"
`define TYTRA_PIPELINE_DEPTH 14
`define TYTRA_WINDOW 8
`define TYTRA_RTL_LATENCY 21
`define TYTRA_NI 14
`define TYTRA_NOFF 8
`define TYTRA_NWPT 4
`define TYTRA_STREAMS 8

// ==== file: hotspot_l2_cu.v ====
// compute unit for design 'hotspot_l2': 2 lane(s) of @hotspot_pe
module hotspot_l2_cu (
  input  wire clk,
  input  wire rst,
  input  wire in_valid,
  output wire out_valid
);

  // ---- lane 0 ----
  wire lane0_out_valid;
  wire [31:0] temp_lane0; // fed by stream control
  wire [31:0] power_lane0; // fed by stream control
  wire [31:0] cap_inv_lane0; // fed by stream control
  hotspot_pe_kernel lane0 (.clk(clk), .rst(rst), .in_valid(in_valid), .out_valid(lane0_out_valid), .s_temp(temp_lane0), .s_power(power_lane0), .s_cap_inv(cap_inv_lane0));

  // ---- lane 1 ----
  wire lane1_out_valid;
  wire [31:0] temp_lane1; // fed by stream control
  wire [31:0] power_lane1; // fed by stream control
  wire [31:0] cap_inv_lane1; // fed by stream control
  hotspot_pe_kernel lane1 (.clk(clk), .rst(rst), .in_valid(in_valid), .out_valid(lane1_out_valid), .s_temp(temp_lane1), .s_power(power_lane1), .s_cap_inv(cap_inv_lane1));

  assign out_valid = lane0_out_valid & lane1_out_valid;
endmodule

// ==== file: hotspot_pe_kernel.v ====
// kernel pipeline for @hotspot_pe (depth 14, II 1, window 8, latency 21)
module hotspot_pe_kernel (
  input  wire clk,
  input  wire rst,
  input  wire in_valid,
  output wire out_valid,
  input  wire [31:0] s_temp,
  input  wire [31:0] s_power,
  input  wire [31:0] s_cap_inv,
  output wire [31:0] s_t_new,
  output reg  [31:0] g_maxDelta
);

  reg [20:0] valid_sr;
  always @(posedge clk) begin
    if (rst) valid_sr <= 0;
    else     valid_sr <= {valid_sr, in_valid};
  end
  assign out_valid = valid_sr[20];

  // input stream %temp aligned by 8 cycle(s)
  reg [31:0] argbuf_temp [0:7];
  integer i_argbuf_temp;
  always @(posedge clk) begin
    argbuf_temp[0] <= s_temp;
    for (i_argbuf_temp = 1; i_argbuf_temp < 8; i_argbuf_temp = i_argbuf_temp + 1)
      argbuf_temp[i_argbuf_temp] <= argbuf_temp[i_argbuf_temp - 1];
  end
  wire [31:0] w_temp = argbuf_temp[7];

  // input stream %power aligned by 8 cycle(s)
  reg [31:0] argbuf_power [0:7];
  integer i_argbuf_power;
  always @(posedge clk) begin
    argbuf_power[0] <= s_power;
    for (i_argbuf_power = 1; i_argbuf_power < 8; i_argbuf_power = i_argbuf_power + 1)
      argbuf_power[i_argbuf_power] <= argbuf_power[i_argbuf_power - 1];
  end
  wire [31:0] w_power = argbuf_power[7];

  // input stream %cap_inv aligned by 8 cycle(s)
  reg [31:0] argbuf_cap_inv [0:7];
  integer i_argbuf_cap_inv;
  always @(posedge clk) begin
    argbuf_cap_inv[0] <= s_cap_inv;
    for (i_argbuf_cap_inv = 1; i_argbuf_cap_inv < 8; i_argbuf_cap_inv = i_argbuf_cap_inv + 1)
      argbuf_cap_inv[i_argbuf_cap_inv] <= argbuf_cap_inv[i_argbuf_cap_inv - 1];
  end
  wire [31:0] w_cap_inv = argbuf_cap_inv[7];

  // offset stream %temp_1 = %temp offset 1 (delay 7)
  reg [31:0] offbuf_temp_1 [0:6];
  integer i_offbuf_temp_1;
  always @(posedge clk) begin
    offbuf_temp_1[0] <= s_temp;
    for (i_offbuf_temp_1 = 1; i_offbuf_temp_1 < 7; i_offbuf_temp_1 = i_offbuf_temp_1 + 1)
      offbuf_temp_1[i_offbuf_temp_1] <= offbuf_temp_1[i_offbuf_temp_1 - 1];
  end
  wire [31:0] w_temp_1 = offbuf_temp_1[6];

  // offset stream %temp_n1 = %temp offset -1 (delay 9)
  reg [31:0] offbuf_temp_n1 [0:8];
  integer i_offbuf_temp_n1;
  always @(posedge clk) begin
    offbuf_temp_n1[0] <= s_temp;
    for (i_offbuf_temp_n1 = 1; i_offbuf_temp_n1 < 9; i_offbuf_temp_n1 = i_offbuf_temp_n1 + 1)
      offbuf_temp_n1[i_offbuf_temp_n1] <= offbuf_temp_n1[i_offbuf_temp_n1 - 1];
  end
  wire [31:0] w_temp_n1 = offbuf_temp_n1[8];

  // offset stream %temp_pND1 = %temp offset +ND1 (delay 0)
  wire [31:0] w_temp_pND1 = s_temp;

  // offset stream %temp_nND1 = %temp offset -ND1 (delay 16)
  reg [31:0] offbuf_temp_nND1 [0:15];
  integer i_offbuf_temp_nND1;
  always @(posedge clk) begin
    offbuf_temp_nND1[0] <= s_temp;
    for (i_offbuf_temp_nND1 = 1; i_offbuf_temp_nND1 < 16; i_offbuf_temp_nND1 = i_offbuf_temp_nND1 + 1)
      offbuf_temp_nND1[i_offbuf_temp_nND1] <= offbuf_temp_nND1[i_offbuf_temp_nND1 - 1];
  end
  wire [31:0] w_temp_nND1 = offbuf_temp_nND1[15];

  // %1 = add (stage 0, 1 cycle(s))
  reg [31:0] r_v1;
  always @(posedge clk) begin
    r_v1 <= w_temp_pND1 + w_temp_nND1;
  end
  wire [31:0] w_v1 = r_v1;

  // %2 = add (stage 0, 1 cycle(s))
  reg [31:0] r_v2;
  always @(posedge clk) begin
    r_v2 <= w_temp_1 + w_temp_n1;
  end
  wire [31:0] w_v2 = r_v2;

  // %3 = add (stage 1, 1 cycle(s))
  reg [31:0] r_v3;
  always @(posedge clk) begin
    r_v3 <= w_v1 + w_v2;
  end
  wire [31:0] w_v3 = r_v3;

  // %4 = mul (stage 0, 3 cycle(s))
  reg [31:0] r_v4;
  reg [31:0] r_v4_p1;
  reg [31:0] r_v4_p2;
  always @(posedge clk) begin
    r_v4 <= w_temp * 32'd4;
    r_v4_p1 <= r_v4;
    r_v4_p2 <= r_v4_p1;
  end
  wire [31:0] w_v4 = r_v4_p2;

  // balance %3 by 1 cycle(s)
  reg [31:0] balbuf_v3_d1 [0:0];
  integer i_balbuf_v3_d1;
  always @(posedge clk) begin
    balbuf_v3_d1[0] <= w_v3;
    for (i_balbuf_v3_d1 = 1; i_balbuf_v3_d1 < 1; i_balbuf_v3_d1 = i_balbuf_v3_d1 + 1)
      balbuf_v3_d1[i_balbuf_v3_d1] <= balbuf_v3_d1[i_balbuf_v3_d1 - 1];
  end
  wire [31:0] w_v3_d1 = balbuf_v3_d1[0];

  // %5 = sub (stage 3, 1 cycle(s))
  reg [31:0] r_v5;
  always @(posedge clk) begin
    r_v5 <= w_v3_d1 - w_v4;
  end
  wire [31:0] w_v5 = r_v5;

  // %6 = mul (stage 4, 3 cycle(s))
  reg [31:0] r_v6;
  reg [31:0] r_v6_p1;
  reg [31:0] r_v6_p2;
  always @(posedge clk) begin
    r_v6 <= w_v5 * 32'd26;
    r_v6_p1 <= r_v6;
    r_v6_p2 <= r_v6_p1;
  end
  wire [31:0] w_v6 = r_v6_p2;

  // %7 = sub (stage 0, 1 cycle(s))
  reg [31:0] r_v7;
  always @(posedge clk) begin
    r_v7 <= 32'd20480 - w_temp;
  end
  wire [31:0] w_v7 = r_v7;

  // %8 = mul (stage 1, 3 cycle(s))
  reg [31:0] r_v8;
  reg [31:0] r_v8_p1;
  reg [31:0] r_v8_p2;
  always @(posedge clk) begin
    r_v8 <= w_v7 * 32'd13;
    r_v8_p1 <= r_v8;
    r_v8_p2 <= r_v8_p1;
  end
  wire [31:0] w_v8 = r_v8_p2;

  // %9 = mul (stage 0, 3 cycle(s))
  reg [31:0] r_v9;
  reg [31:0] r_v9_p1;
  reg [31:0] r_v9_p2;
  always @(posedge clk) begin
    r_v9 <= w_power * w_cap_inv;
    r_v9_p1 <= r_v9;
    r_v9_p2 <= r_v9_p1;
  end
  wire [31:0] w_v9 = r_v9_p2;

  // balance %8 by 3 cycle(s)
  reg [31:0] balbuf_v8_d3 [0:2];
  integer i_balbuf_v8_d3;
  always @(posedge clk) begin
    balbuf_v8_d3[0] <= w_v8;
    for (i_balbuf_v8_d3 = 1; i_balbuf_v8_d3 < 3; i_balbuf_v8_d3 = i_balbuf_v8_d3 + 1)
      balbuf_v8_d3[i_balbuf_v8_d3] <= balbuf_v8_d3[i_balbuf_v8_d3 - 1];
  end
  wire [31:0] w_v8_d3 = balbuf_v8_d3[2];

  // %10 = add (stage 7, 1 cycle(s))
  reg [31:0] r_v10;
  always @(posedge clk) begin
    r_v10 <= w_v6 + w_v8_d3;
  end
  wire [31:0] w_v10 = r_v10;

  // balance %9 by 5 cycle(s)
  reg [31:0] balbuf_v9_d5 [0:4];
  integer i_balbuf_v9_d5;
  always @(posedge clk) begin
    balbuf_v9_d5[0] <= w_v9;
    for (i_balbuf_v9_d5 = 1; i_balbuf_v9_d5 < 5; i_balbuf_v9_d5 = i_balbuf_v9_d5 + 1)
      balbuf_v9_d5[i_balbuf_v9_d5] <= balbuf_v9_d5[i_balbuf_v9_d5 - 1];
  end
  wire [31:0] w_v9_d5 = balbuf_v9_d5[4];

  // %11 = add (stage 8, 1 cycle(s))
  reg [31:0] r_v11;
  always @(posedge clk) begin
    r_v11 <= w_v10 + w_v9_d5;
  end
  wire [31:0] w_v11 = r_v11;

  // balance %cap_inv by 9 cycle(s)
  reg [31:0] balbuf_cap_inv_d9 [0:8];
  integer i_balbuf_cap_inv_d9;
  always @(posedge clk) begin
    balbuf_cap_inv_d9[0] <= w_cap_inv;
    for (i_balbuf_cap_inv_d9 = 1; i_balbuf_cap_inv_d9 < 9; i_balbuf_cap_inv_d9 = i_balbuf_cap_inv_d9 + 1)
      balbuf_cap_inv_d9[i_balbuf_cap_inv_d9] <= balbuf_cap_inv_d9[i_balbuf_cap_inv_d9 - 1];
  end
  wire [31:0] w_cap_inv_d9 = balbuf_cap_inv_d9[8];

  // %12 = mul (stage 9, 3 cycle(s))
  reg [31:0] r_v12;
  reg [31:0] r_v12_p1;
  reg [31:0] r_v12_p2;
  always @(posedge clk) begin
    r_v12 <= w_v11 * w_cap_inv_d9;
    r_v12_p1 <= r_v12;
    r_v12_p2 <= r_v12_p1;
  end
  wire [31:0] w_v12 = r_v12_p2;

  // balance %temp by 12 cycle(s)
  reg [31:0] balbuf_temp_d12 [0:11];
  integer i_balbuf_temp_d12;
  always @(posedge clk) begin
    balbuf_temp_d12[0] <= w_temp;
    for (i_balbuf_temp_d12 = 1; i_balbuf_temp_d12 < 12; i_balbuf_temp_d12 = i_balbuf_temp_d12 + 1)
      balbuf_temp_d12[i_balbuf_temp_d12] <= balbuf_temp_d12[i_balbuf_temp_d12 - 1];
  end
  wire [31:0] w_temp_d12 = balbuf_temp_d12[11];

  // %t_new = add (stage 12, 1 cycle(s))
  reg [31:0] r_t_new;
  always @(posedge clk) begin
    r_t_new <= w_temp_d12 + w_v12;
  end
  wire [31:0] w_t_new = r_t_new;

  // reduction @maxDelta (stage 12)
  always @(posedge clk) begin
    if (rst) g_maxDelta <= 0;
    else if (valid_sr[19]) g_maxDelta <= (w_v12 > g_maxDelta) ? w_v12 : g_maxDelta;
  end

  assign s_t_new = w_t_new;
endmodule

// ==== file: testbench.v ====
// Auto-generated testbench for @hotspot_pe (RTL latency 21, 64 work-items, stimulus seed 0x7c0ffee)
`timescale 1ns/1ps
module tb_hotspot_pe;

  reg clk = 1'b0;
  reg rst = 1'b1;
  reg in_valid = 1'b0;
  wire out_valid;
  integer cycle = 0;
  integer out_index = 0;

  always #2.5 clk = ~clk;

  reg [31:0] s_temp;
  reg [31:0] lcg_temp;  // stream 0 LCG state
  reg [31:0] s_power;
  reg [31:0] lcg_power;  // stream 1 LCG state
  reg [31:0] s_cap_inv;
  reg [31:0] lcg_cap_inv;  // stream 2 LCG state

  wire [31:0] s_t_new;
  wire [31:0] g_maxDelta;

  hotspot_pe_kernel dut (
    .clk(clk),
    .rst(rst),
    .in_valid(in_valid),
    .out_valid(out_valid),
    .s_temp(s_temp),
    .s_power(s_power),
    .s_cap_inv(s_cap_inv),
    .s_t_new(s_t_new),
    .g_maxDelta(g_maxDelta)
  );

  initial begin
    $dumpfile("tb_hotspot_pe.vcd");
    $dumpvars(0, tb_hotspot_pe);
    repeat (34) @(posedge clk);  // flush un-reset delay lines with zeros
    rst = 1'b0;
  end

  always @(posedge clk) begin
    if (rst) begin
      cycle <= 0;
      in_valid <= 1'b0;
      s_temp <= 0;
      lcg_temp <= 32'ha5f879a7;
      s_power <= 0;
      lcg_power <= 32'h442ff360;
      s_cap_inv <= 0;
      lcg_cap_inv <= 32'he2676d19;
    end else begin
      cycle <= cycle + 1;
      in_valid <= (cycle < 64);
      if (cycle < 64) begin
        s_temp <= lcg_temp[31:0];
        lcg_temp <= lcg_temp * 32'd1664525 + 32'd1013904223;
        s_power <= lcg_power[31:0];
        lcg_power <= lcg_power * 32'd1664525 + 32'd1013904223;
        s_cap_inv <= lcg_cap_inv[31:0];
        lcg_cap_inv <= lcg_cap_inv * 32'd1664525 + 32'd1013904223;
      end else begin
        s_temp <= 0;
        s_power <= 0;
        s_cap_inv <= 0;
      end
    end
  end

  always @(posedge clk) begin
    if (!rst && out_valid) begin
      $display("RESULT t_new %0d %h", out_index, s_t_new);
      out_index <= out_index + 1;
    end
    if (cycle == 102) begin
      $display("REDUCTION maxDelta %h", g_maxDelta);
      $display("DONE %0d", cycle);
      $finish;
    end
  end

endmodule
