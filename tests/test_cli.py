"""Tests for the tybec command-line interface."""

import json

import pytest

from repro.cli import build_parser, main
from repro.ir import print_module

from tests.conftest import build_stencil_module


@pytest.fixture
def design_file(tmp_path):
    module = build_stencil_module(lanes=1, grid=(8, 8, 8))
    path = tmp_path / "stencil.tirl"
    path.write_text(print_module(module))
    return path


class TestParser:
    def test_commands_registered(self):
        parser = build_parser()
        for command in ("cost", "emit", "explore", "calibrate", "stream-bench"):
            args = parser.parse_args([command] + (["x.tirl"] if command in ("cost", "emit") else []))
            assert args.command == command

    def test_suite_subcommands_registered(self):
        parser = build_parser()
        assert parser.parse_args(["suite", "run"]).suite_command == "run"
        assert parser.parse_args(["suite", "validate"]).suite_command == "validate"
        assert parser.parse_args(["suite", "diff", "a.json", "b.json"]).suite_command == "diff"
        assert parser.parse_args(["suite", "record-golden"]).suite_command == "record-golden"

    def test_flow_subcommands_registered(self):
        parser = build_parser()
        assert parser.parse_args(["flow", "run", "x.tirl"]).flow_command == "run"
        assert parser.parse_args(["flow", "sim"]).flow_command == "sim"
        assert parser.parse_args(["flow", "report", "r"]).flow_command == "report"
        assert parser.parse_args(["suite", "flow"]).suite_command == "flow"

    def test_suite_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["suite"])

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestCostCommand:
    def test_cost_text_output(self, design_file, capsys):
        rc = main(["cost", str(design_file), "--grid", "8", "8", "8", "--iterations", "10"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Cost report" in out
        assert "limiting factor" in out

    def test_cost_json_output(self, design_file, capsys):
        rc = main(["cost", str(design_file), "--grid", "8", "8", "8", "--json"])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["design"] == "stencil_l1"
        assert payload["throughput"]["ekit_per_s"] > 0


class TestEmitCommand:
    def test_emit_writes_files(self, design_file, tmp_path, capsys):
        outdir = tmp_path / "hdl"
        rc = main(["emit", str(design_file), "-o", str(outdir)])
        assert rc == 0
        names = {p.name for p in outdir.iterdir()}
        assert any(n.endswith("_kernel.v") for n in names)
        assert any(n.endswith(".maxj") for n in names)

    def test_emit_without_wrapper(self, design_file, tmp_path):
        outdir = tmp_path / "hdl2"
        rc = main(["emit", str(design_file), "-o", str(outdir), "--no-wrapper"])
        assert rc == 0
        assert not any(p.name.endswith(".maxj") for p in outdir.iterdir())


class TestExploreCommand:
    def test_explore_table(self, capsys):
        rc = main(["explore", "--kernel", "sor", "--grid", "8", "8", "8",
                   "--iterations", "10", "--max-lanes", "4"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "best feasible variant" in out
        assert "lanes" in out

    def test_explore_json(self, capsys):
        rc = main(["explore", "--kernel", "lavamd", "--grid", "8", "8", "8",
                   "--iterations", "10", "--max-lanes", "2", "--json"])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["best_lanes"] in (1, 2)
        assert len(payload["rows"]) == 2

    def test_explore_multi_axis_json(self, capsys):
        rc = main(["explore", "--kernel", "sor", "--grid", "8", "8", "8",
                   "--iterations", "10", "--max-lanes", "2",
                   "--clocks", "100", "200", "--json"])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["axes"]["clock_mhz"] == 2
        assert len(payload["rows"]) == 4  # 2 lanes x 2 clocks
        assert payload["evaluated"] == 4
        assert payload["variants_per_second"] > 0
        assert {row["clock_mhz"] for row in payload["rows"]} == {100.0, 200.0}

    def test_explore_pareto_text(self, capsys):
        rc = main(["explore", "--kernel", "sor", "--grid", "8", "8", "8",
                   "--iterations", "10", "--max-lanes", "2", "--pareto"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Pareto frontier" in out
        assert "variants/s" in out

    def test_explore_explicit_lane_list(self, capsys):
        rc = main(["explore", "--kernel", "sor", "--grid", "8", "8", "8",
                   "--iterations", "10", "--lanes", "1", "4", "--json"])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert [row["lanes"] for row in payload["rows"]] == [1, 4]

    def test_explore_no_valid_lanes_fails_on_both_paths(self, capsys):
        # 7 does not divide 8^3: single-axis and multi-axis paths agree
        rc = main(["explore", "--kernel", "sor", "--grid", "8", "8", "8",
                   "--iterations", "10", "--lanes", "7"])
        assert rc == 2
        rc = main(["explore", "--kernel", "sor", "--grid", "8", "8", "8",
                   "--iterations", "10", "--lanes", "7", "--clocks", "100", "200"])
        assert rc == 2
        assert "no valid lane counts" in capsys.readouterr().err


class TestSuiteCommand:
    def test_suite_run_costs_all_six_kernels(self, capsys):
        rc = main(["suite", "run", "--tiny"])
        assert rc == 0
        out = capsys.readouterr().out
        for name in ("sor", "hotspot", "lavamd", "conv2d", "nw", "matmul"):
            assert name in out
        assert "costed" in out and "6 kernels" in out

    def test_suite_run_json_report(self, tmp_path, capsys):
        out_path = tmp_path / "suite.json"
        rc = main(["suite", "run", "--tiny", "--kernels", "sor", "matmul",
                   "-o", str(out_path), "--json"])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema"].startswith("repro-suite-report/")
        assert sorted(payload["kernels"]) == ["matmul", "sor"]
        assert payload == json.loads(out_path.read_text())

    def test_suite_run_unknown_kernel(self, capsys):
        rc = main(["suite", "run", "--kernels", "nbody"])
        assert rc == 2
        assert "unknown kernels" in capsys.readouterr().err

    def test_suite_run_tiny_unknown_kernel(self, capsys):
        # regression: the --tiny path must fail as cleanly as the default path
        rc = main(["suite", "run", "--tiny", "--kernels", "nbody"])
        assert rc == 2
        assert "unknown kernels" in capsys.readouterr().err

    def test_suite_run_tiny_uppercase_kernel(self, capsys):
        rc = main(["suite", "run", "--tiny", "--kernels", "SOR", "--json"])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert sorted(payload["kernels"]) == ["sor"]

    def test_suite_record_golden_unknown_kernel(self, tmp_path, capsys):
        rc = main(["suite", "record-golden", "--dir", str(tmp_path),
                   "--kernels", "nbody"])
        assert rc == 2
        assert "unknown kernels" in capsys.readouterr().err

    def test_suite_run_invalid_iterations(self, capsys):
        rc = main(["suite", "run", "--tiny", "--kernels", "sor",
                   "--iterations", "0"])
        assert rc == 2
        assert "iterations" in capsys.readouterr().err

    def test_suite_run_no_valid_lanes(self, capsys):
        rc = main(["suite", "run", "--tiny", "--kernels", "sor", "--lanes", "7"])
        assert rc == 2
        assert "no design points" in capsys.readouterr().err

    def test_suite_diff_identical_and_perturbed(self, tmp_path, capsys):
        a = tmp_path / "a.json"
        b = tmp_path / "b.json"
        assert main(["suite", "run", "--tiny", "--kernels", "sor", "-o", str(a)]) == 0
        assert main(["suite", "run", "--tiny", "--kernels", "sor", "-o", str(b)]) == 0
        assert main(["suite", "diff", str(a), str(b)]) == 0
        assert "identical" in capsys.readouterr().out

        payload = json.loads(b.read_text())
        entry = payload["kernels"]["sor"]["entries"][0]
        entry["report"]["throughput"]["ekit_per_s"] *= 1.5
        b.write_text(json.dumps(payload))
        assert main(["suite", "diff", str(a), str(b)]) == 1
        assert "ekit_per_s" in capsys.readouterr().out

    def test_suite_diff_bad_file(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{}")
        good = tmp_path / "good.json"
        assert main(["suite", "run", "--tiny", "--kernels", "sor", "-o", str(good)]) == 0
        assert main(["suite", "diff", str(bad), str(good)]) == 2
        assert "schema" in capsys.readouterr().err

    def test_suite_record_golden_to_directory(self, tmp_path, capsys):
        rc = main(["suite", "record-golden", "--dir", str(tmp_path),
                   "--kernels", "sor", "lavamd"])
        assert rc == 0
        assert {p.name for p in tmp_path.iterdir()} == {"sor.json", "lavamd.json"}
        assert "2 golden report(s)" in capsys.readouterr().out

    def test_suite_validate_golden_grid_passes(self, capsys):
        rc = main(["suite", "validate", "--tiny", "--kernels", "sor", "conv2d"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "6 agree, 0 disagree" in out

    def test_suite_validate_zero_tolerance_fails(self, capsys):
        rc = main(["suite", "validate", "--tiny", "--kernels", "conv2d",
                   "--tolerance", "0"])
        captured = capsys.readouterr()
        assert rc == 1
        assert "DISAGREEMENT" in captured.err

    def test_suite_validate_writes_report(self, tmp_path, capsys):
        out_path = tmp_path / "validation.json"
        rc = main(["suite", "validate", "--tiny", "--kernels", "sor",
                   "--no-cycle-accurate", "-o", str(out_path), "--json"])
        assert rc == 0
        payload = json.loads(out_path.read_text())
        assert payload["schema"].startswith("repro-validation-report/")
        assert payload["validation"]["cycle_accurate"] is False
        record = payload["kernels"]["sor"]["records"][0]
        assert record["simulated"]["cycle_accurate"] is None
        assert payload == json.loads(capsys.readouterr().out)
        # the canonical validation report diffs against itself cleanly
        assert main(["suite", "diff", str(out_path), str(out_path)]) == 0

    def test_suite_diff_refuses_mixed_layouts(self, tmp_path, capsys):
        suite_path = tmp_path / "suite.json"
        validation_path = tmp_path / "validation.json"
        assert main(["suite", "run", "--tiny", "--kernels", "sor",
                     "-o", str(suite_path)]) == 0
        assert main(["suite", "validate", "--tiny", "--kernels", "sor",
                     "-o", str(validation_path)]) == 0
        capsys.readouterr()
        assert main(["suite", "diff", str(suite_path), str(validation_path)]) == 2
        assert "different report layouts" in capsys.readouterr().err

    def test_suite_validate_unknown_kernel(self, capsys):
        rc = main(["suite", "validate", "--kernels", "nbody"])
        assert rc == 2
        assert "unknown kernels" in capsys.readouterr().err

    def test_suite_record_golden_validation(self, tmp_path, capsys):
        rc = main(["suite", "record-golden", "--validation",
                   "--dir", str(tmp_path), "--kernels", "sor"])
        assert rc == 0
        assert {p.name for p in tmp_path.iterdir()} == {"sor.json"}
        payload = json.loads((tmp_path / "sor.json").read_text())
        assert payload["schema"].startswith("repro-validation-report/")


class TestFlowCommand:
    def test_flow_run_verifies_design(self, design_file, capsys):
        rc = main(["flow", "run", str(design_file), "--items", "32", "--no-cache"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "OK" in out
        assert "0 mismatches" in out

    def test_flow_sim_kernel_with_run_dir(self, tmp_path, capsys):
        rc = main(["flow", "sim", "--kernel", "nw", "--grid", "8", "8",
                   "--items", "32", "-o", str(tmp_path), "--no-cache"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "reductions match" in out
        run_dirs = [p for p in tmp_path.iterdir() if p.is_dir()]
        assert len(run_dirs) == 1
        assert (run_dirs[0] / "result.json").exists()
        assert (run_dirs[0] / "manifest.json").exists()

    def test_flow_sim_json_payload(self, capsys):
        rc = main(["flow", "sim", "--kernel", "matmul", "--grid", "8", "8",
                   "--items", "16", "--json", "--no-cache"])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True
        assert payload["functional"]["output_mismatches"] == 0

    def test_flow_report_reads_run_dir(self, tmp_path, capsys):
        assert main(["flow", "sim", "--kernel", "nw", "--grid", "8", "8",
                     "--items", "16", "-o", str(tmp_path), "--no-cache"]) == 0
        capsys.readouterr()
        run_dir = next(p for p in tmp_path.iterdir() if p.is_dir())
        rc = main(["flow", "report", str(run_dir)])
        assert rc == 0
        assert "backend: pyrtl" in capsys.readouterr().out

    def test_flow_sim_invalid_lanes(self, capsys):
        rc = main(["flow", "sim", "--kernel", "nw", "--grid", "8", "8",
                   "--lanes", "7"])
        assert rc == 2

    def test_suite_flow_tiny_grid_passes(self, capsys):
        rc = main(["suite", "flow", "--tiny", "--kernels", "nw", "matmul",
                   "--max-lanes", "2"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "verified" in out and "0 failing" in out

    def test_suite_flow_writes_canonical_report(self, tmp_path, capsys):
        path = tmp_path / "flow.json"
        rc = main(["suite", "flow", "--tiny", "--kernels", "nw",
                   "--max-lanes", "2", "-o", str(path), "--json"])
        assert rc == 0
        payload = json.loads(path.read_text())
        assert payload["schema"] == "repro-flow-report/1"
        assert capsys.readouterr().out == path.read_text()

    def test_suite_record_golden_flows(self, tmp_path, capsys):
        rc = main(["suite", "record-golden", "--flows",
                   "--dir", str(tmp_path), "--kernels", "nw"])
        assert rc == 0
        payload = json.loads((tmp_path / "nw.json").read_text())
        assert payload["schema"] == "repro-flow-report/1"

    def test_record_golden_flag_conflict(self, capsys):
        rc = main(["suite", "record-golden", "--flows", "--validation"])
        assert rc == 2


class TestCalibrateAndStream:
    def test_calibrate_to_file(self, tmp_path, capsys):
        out = tmp_path / "db.json"
        rc = main(["calibrate", "--device", "small", "-o", str(out)])
        assert rc == 0
        payload = json.loads(out.read_text())
        assert payload["device_name"] == "small-edu-device"
        assert payload["models"]

    def test_calibrate_stdout(self, capsys):
        rc = main(["calibrate", "--device", "small"])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["models"]

    def test_stream_bench(self, capsys):
        rc = main(["stream-bench", "--device", "virtex-7", "--sides", "100", "1000"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "sustained bandwidth" in out
        assert "100" in out
