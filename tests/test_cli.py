"""Tests for the tybec command-line interface."""

import json

import pytest

from repro.cli import build_parser, main
from repro.ir import print_module

from tests.conftest import build_stencil_module


@pytest.fixture
def design_file(tmp_path):
    module = build_stencil_module(lanes=1, grid=(8, 8, 8))
    path = tmp_path / "stencil.tirl"
    path.write_text(print_module(module))
    return path


class TestParser:
    def test_commands_registered(self):
        parser = build_parser()
        for command in ("cost", "emit", "explore", "calibrate", "stream-bench"):
            args = parser.parse_args([command] + (["x.tirl"] if command in ("cost", "emit") else []))
            assert args.command == command

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestCostCommand:
    def test_cost_text_output(self, design_file, capsys):
        rc = main(["cost", str(design_file), "--grid", "8", "8", "8", "--iterations", "10"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Cost report" in out
        assert "limiting factor" in out

    def test_cost_json_output(self, design_file, capsys):
        rc = main(["cost", str(design_file), "--grid", "8", "8", "8", "--json"])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["design"] == "stencil_l1"
        assert payload["throughput"]["ekit_per_s"] > 0


class TestEmitCommand:
    def test_emit_writes_files(self, design_file, tmp_path, capsys):
        outdir = tmp_path / "hdl"
        rc = main(["emit", str(design_file), "-o", str(outdir)])
        assert rc == 0
        names = {p.name for p in outdir.iterdir()}
        assert any(n.endswith("_kernel.v") for n in names)
        assert any(n.endswith(".maxj") for n in names)

    def test_emit_without_wrapper(self, design_file, tmp_path):
        outdir = tmp_path / "hdl2"
        rc = main(["emit", str(design_file), "-o", str(outdir), "--no-wrapper"])
        assert rc == 0
        assert not any(p.name.endswith(".maxj") for p in outdir.iterdir())


class TestExploreCommand:
    def test_explore_table(self, capsys):
        rc = main(["explore", "--kernel", "sor", "--grid", "8", "8", "8",
                   "--iterations", "10", "--max-lanes", "4"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "best feasible variant" in out
        assert "lanes" in out

    def test_explore_json(self, capsys):
        rc = main(["explore", "--kernel", "lavamd", "--grid", "8", "8", "8",
                   "--iterations", "10", "--max-lanes", "2", "--json"])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["best_lanes"] in (1, 2)
        assert len(payload["rows"]) == 2

    def test_explore_multi_axis_json(self, capsys):
        rc = main(["explore", "--kernel", "sor", "--grid", "8", "8", "8",
                   "--iterations", "10", "--max-lanes", "2",
                   "--clocks", "100", "200", "--json"])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["axes"]["clock_mhz"] == 2
        assert len(payload["rows"]) == 4  # 2 lanes x 2 clocks
        assert payload["evaluated"] == 4
        assert payload["variants_per_second"] > 0
        assert {row["clock_mhz"] for row in payload["rows"]} == {100.0, 200.0}

    def test_explore_pareto_text(self, capsys):
        rc = main(["explore", "--kernel", "sor", "--grid", "8", "8", "8",
                   "--iterations", "10", "--max-lanes", "2", "--pareto"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Pareto frontier" in out
        assert "variants/s" in out

    def test_explore_explicit_lane_list(self, capsys):
        rc = main(["explore", "--kernel", "sor", "--grid", "8", "8", "8",
                   "--iterations", "10", "--lanes", "1", "4", "--json"])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert [row["lanes"] for row in payload["rows"]] == [1, 4]

    def test_explore_no_valid_lanes_fails_on_both_paths(self, capsys):
        # 7 does not divide 8^3: single-axis and multi-axis paths agree
        rc = main(["explore", "--kernel", "sor", "--grid", "8", "8", "8",
                   "--iterations", "10", "--lanes", "7"])
        assert rc == 2
        rc = main(["explore", "--kernel", "sor", "--grid", "8", "8", "8",
                   "--iterations", "10", "--lanes", "7", "--clocks", "100", "200"])
        assert rc == 2
        assert "no valid lane counts" in capsys.readouterr().err


class TestCalibrateAndStream:
    def test_calibrate_to_file(self, tmp_path, capsys):
        out = tmp_path / "db.json"
        rc = main(["calibrate", "--device", "small", "-o", str(out)])
        assert rc == 0
        payload = json.loads(out.read_text())
        assert payload["device_name"] == "small-edu-device"
        assert payload["models"]

    def test_calibrate_stdout(self, capsys):
        rc = main(["calibrate", "--device", "small"])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["models"]

    def test_stream_bench(self, capsys):
        rc = main(["stream-bench", "--device", "virtex-7", "--sides", "100", "1000"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "sustained bandwidth" in out
        assert "100" in out
