"""Tests for configuration analysis and pipeline scheduling."""

import pytest

from repro.compiler import (
    DataflowGraph,
    OperatorLatencyModel,
    build_configuration_tree,
    classify_module,
    schedule_function,
)
from repro.compiler.scheduling import pipeline_spec_from_schedule, schedule_module
from repro.cost.resource_model import ModuleStructure
from repro.ir import IRBuilder, ScalarType
from repro.ir.functions import FunctionKind
from repro.models import ConfigurationClass

from tests.conftest import build_stencil_module

UI18 = ScalarType.uint(18)
UI32 = ScalarType.uint(32)


def build_coarse_grained_with_comb():
    """The Figure-8 style design: a coarse-grained pipeline whose second
    peer kernel uses a custom combinatorial block."""
    b = IRBuilder("coarse_comb")
    combf = b.function("combA", kind="comb", args=[(UI18, "x")])
    combf.instr("xor", UI18, combf.arg("x"), 255)
    pa = b.function("pipeA", kind="pipe", args=[(UI18, "x")])
    pa.add(UI18, pa.arg("x"), 1)
    pb = b.function("pipeB", kind="pipe", args=[(UI18, "x")])
    pb.mul(UI18, pb.arg("x"), 3)
    pb.call("combA", ["x"], kind="comb")
    top = b.function("top", kind="pipe", args=[(UI18, "x")])
    top.call("pipeA", ["x"], kind="pipe")
    top.call("pipeB", ["x"], kind="pipe")
    main = b.function("main", kind="none")
    main.call("top", ["x"], kind="pipe")
    return b.build()


class TestConfigurationTree:
    def test_single_pipeline_tree(self, stencil_module):
        tree = build_configuration_tree(stencil_module)
        assert tree.root.function == "main"
        assert tree.depth() == 2
        assert tree.lanes() == 1
        assert len(tree.leaves()) == 1
        assert tree.leaves()[0].function == "f0"

    def test_par_tree_has_lanes(self, stencil_module_4lane):
        tree = build_configuration_tree(stencil_module_4lane)
        assert tree.lanes() == 4
        assert tree.count("pipe") == 4
        assert tree.count("par") == 1
        # instance indices distinguish the four lanes
        assert sorted(n.instance for n in tree.leaves()) == [0, 1, 2, 3]

    def test_coarse_grained_tree_figure8(self):
        module = build_coarse_grained_with_comb()
        tree = build_configuration_tree(module)
        text = tree.to_text()
        assert "@top [pipe]" in text
        assert "@pipeA [pipe]" in text
        assert "@combA [comb]" in text
        assert tree.count(FunctionKind.COMB) == 1
        assert tree.depth() == 4  # main -> top -> pipeB -> combA
        assert tree.lanes() == 1

    def test_classification(self, stencil_module, stencil_module_4lane):
        single = classify_module(stencil_module)
        multi = classify_module(stencil_module_4lane)
        assert single.configuration_class is ConfigurationClass.C2
        assert multi.configuration_class is ConfigurationClass.C1
        assert multi.lanes == 4
        assert single.pipelined and multi.pipelined


class TestDataflowGraph:
    def test_graph_structure(self, stencil_module):
        f0 = stencil_module.get_function("f0")
        g = DataflowGraph.from_function(f0)
        assert len(g.nodes) == 6
        assert "pip1" in g.sources and "p" in g.sources
        # the two constant multiplies are roots (they read only offset streams)
        assert len(g.roots()) >= 2
        muls = [i for i in g.nodes.values() if i.opcode == "mul"]
        assert all(not g.producers(m) for m in muls)

    def test_critical_path(self, stencil_module):
        f0 = stencil_module.get_function("f0")
        g = DataflowGraph.from_function(f0)
        lm = OperatorLatencyModel()
        # path: mul(const->LUT, 3cy) -> add -> add -> sub -> reduction add
        assert g.critical_path_length(lm) == 3 + 1 + 1 + 1 + 1


class TestScheduling:
    def test_schedule_depth_and_ii(self, stencil_module):
        f0 = stencil_module.get_function("f0")
        sched = schedule_function(f0)
        assert sched.initiation_interval == 1
        # depth = critical path (7) + input registering stage (1)
        assert sched.pipeline_depth == 8
        assert sched.stage_of("p_new") > 0

    def test_balancing_registers_for_unbalanced_paths(self):
        b = IRBuilder("unbalanced")
        f = b.function("f0", kind="pipe", args=[(UI32, "a"), (UI32, "b")])
        slow = f.instr("div", UI32, f.arg("a"), f.arg("b"))     # long latency
        fast = f.instr("add", UI32, f.arg("a"), 1)              # 1 cycle
        f.instr("add", UI32, slow, fast, result="out")
        main = b.function("main", kind="none")
        main.call("f0", ["a", "b"], kind="pipe")
        module = b.build()
        sched = schedule_function(module.get_function("f0"))
        # 'fast' finishes at cycle 1+1=2 but is consumed at div's end (32)
        assert sched.balancing_register_bits >= (32 - 2) * 32
        assert sched.pipeline_depth >= 33

    def test_width_dependent_divider_latency(self):
        lm = OperatorLatencyModel()
        assert lm.latency("div", 64) == 64
        assert lm.latency("div", 18) == 18
        assert lm.latency("add", 64) == 1
        assert lm.latency("fdiv", 32) == 28  # float divider latency is fixed

    def test_comb_function_single_cycle(self):
        module = build_coarse_grained_with_comb()
        sched = schedule_function(module.get_function("combA"))
        assert sched.pipeline_depth == 1
        assert sched.balancing_register_bits == 0

    def test_schedule_module_covers_leaves(self, stencil_module_4lane):
        schedules = schedule_module(stencil_module_4lane)
        assert set(schedules) == {"f0"}

    def test_input_delay_bits_counted(self, stencil_module):
        sched = schedule_function(stencil_module.get_function("f0"))
        # 'rhs' and 'p' are consumed deep in the pipeline and need delay lines
        assert sched.input_delay_bits > 0

    def test_pipeline_spec_from_schedule(self, stencil_module_4lane):
        structure = ModuleStructure.from_module(stencil_module_4lane)
        schedules = schedule_module(stencil_module_4lane)
        spec = pipeline_spec_from_schedule(
            stencil_module_4lane, structure, schedules, clock_mhz=200.0
        )
        assert spec.lanes == 4
        assert spec.pipeline_depth == schedules["f0"].pipeline_depth
        assert spec.offset_fill_words == 64
        assert spec.element_bytes == 3  # ui18 -> 3 bytes
        assert spec.input_words_per_item == 2
        assert spec.output_words_per_item == 1

    def test_coarse_grained_depth_accumulates(self):
        module = build_coarse_grained_with_comb()
        structure = ModuleStructure.from_module(module)
        schedules = schedule_module(module)
        spec = pipeline_spec_from_schedule(module, structure, schedules, clock_mhz=150.0)
        individual = sum(s.pipeline_depth for s in schedules.values())
        assert spec.pipeline_depth == individual
        assert spec.lanes == 1

    def test_as_dict(self, stencil_module):
        sched = schedule_function(stencil_module.get_function("f0"))
        d = sched.as_dict()
        assert d["function"] == "f0"
        assert d["pipeline_depth"] == sched.pipeline_depth
