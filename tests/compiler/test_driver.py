"""Tests for the TyBEC compiler driver (costing + emission)."""

import pytest

from repro.compiler import CompilationOptions, TybecCompiler
from repro.cost import SustainedBandwidthModel
from repro.ir import print_module
from repro.models import KernelInstance, MemoryExecutionForm, NDRange
from repro.substrate import MAIA_STRATIX_V_GSD8, SMALL_EDU_DEVICE

from tests.conftest import build_stencil_module


@pytest.fixture(scope="module")
def compiler():
    return TybecCompiler(CompilationOptions(device=MAIA_STRATIX_V_GSD8))


@pytest.fixture(scope="module")
def workload():
    return KernelInstance("stencil", NDRange.cube(8), repetitions=100, words_per_item=3)


class TestAnalyze:
    def test_analyze_single_lane(self, compiler):
        variant = compiler.analyze(build_stencil_module(lanes=1))
        assert variant.lanes == 1
        assert variant.pipeline_depth > 1
        assert variant.classification.configuration_class.value == "C2"
        assert variant.pipeline_spec.clock_mhz == MAIA_STRATIX_V_GSD8.fmax_mhz
        assert variant.balancing_register_bits >= 0

    def test_analyze_four_lane(self, compiler):
        variant = compiler.analyze(build_stencil_module(lanes=4))
        assert variant.lanes == 4
        assert variant.classification.configuration_class.value == "C1"

    def test_parse_roundtrip_then_analyze(self, compiler):
        module = build_stencil_module(lanes=1)
        reparsed = compiler.parse(print_module(module), name=module.name)
        variant = compiler.analyze(reparsed)
        assert variant.lanes == 1


class TestCost:
    def test_cost_report_complete(self, compiler, workload):
        report = compiler.cost(build_stencil_module(lanes=1), workload)
        assert report.usage.alut > 0
        assert report.ekit > 0
        assert report.feasible
        assert report.estimation_seconds < 1.0  # the estimator is fast
        assert "form" in report.notes[0] or "form" in report.notes[0].lower()
        text = report.to_text()
        assert "Cost report" in text and "limiting factor" in text

    def test_cost_accepts_ir_text(self, compiler, workload):
        text = print_module(build_stencil_module(lanes=1))
        report = compiler.cost(text, workload)
        assert report.ekit > 0

    def test_more_lanes_more_resources_more_throughput(self, compiler, workload):
        one = compiler.cost(build_stencil_module(lanes=1), workload)
        four = compiler.cost(build_stencil_module(lanes=4), workload)
        assert four.usage.alut > 2 * one.usage.alut
        assert four.ekit > one.ekit

    def test_form_forced(self, workload):
        forced = TybecCompiler(
            CompilationOptions(device=MAIA_STRATIX_V_GSD8, form=MemoryExecutionForm.A)
        )
        report = forced.cost(build_stencil_module(lanes=1), workload)
        assert report.throughput.form is MemoryExecutionForm.A

    def test_form_auto_selects_by_footprint(self, compiler):
        # an 8^3 grid of 3-byte words trivially fits in BRAM -> form C
        small = compiler.cost(
            build_stencil_module(lanes=1, grid=(8, 8, 8)),
            KernelInstance("s", NDRange.cube(8), repetitions=10),
        )
        assert small.throughput.form is MemoryExecutionForm.C
        # a 192^3 grid does not fit in BRAM but fits in DRAM -> form B
        big = compiler.cost(
            build_stencil_module(lanes=1, grid=(192, 192, 192)),
            KernelInstance("s", NDRange.cube(192), repetitions=10),
        )
        assert big.throughput.form is MemoryExecutionForm.B

    def test_infeasible_on_small_device(self, workload):
        tiny = TybecCompiler(CompilationOptions(device=SMALL_EDU_DEVICE))
        report = tiny.cost(build_stencil_module(lanes=16, grid=(32, 32, 32)),
                           KernelInstance("s", NDRange.cube(32), repetitions=10))
        assert not report.feasibility.fits_resources
        assert not report.feasible

    def test_injected_bandwidth_model(self, workload):
        options = CompilationOptions(
            device=MAIA_STRATIX_V_GSD8,
            dram_bandwidth=SustainedBandwidthModel.paper_figure10(),
        )
        compiler = TybecCompiler(options)
        report = compiler.cost(build_stencil_module(lanes=1), workload)
        assert report.ekit > 0

    def test_compile_convenience(self, compiler, workload):
        report, files = compiler.compile(build_stencil_module(lanes=1), workload, emit=True)
        assert report.ekit > 0
        assert any(name.endswith(".v") for name in files)
        assert any(name.endswith(".maxj") for name in files)
        report2, files2 = compiler.compile(build_stencil_module(lanes=2), workload, emit=False)
        assert files2 == {}


class TestGroundTruth:
    def test_synthesize_actual_close_to_estimate(self, compiler, workload):
        module = build_stencil_module(lanes=1, grid=(16, 16, 16))
        report = compiler.cost(module, KernelInstance("s", NDRange.cube(16), repetitions=10))
        variant = compiler.analyze(module)
        actual = compiler.synthesize_actual(variant)
        # Table II behaviour: estimates land within ~10% of "actual"
        for resource in ("alut", "bram_bits"):
            est = getattr(report.usage, resource)
            act = getattr(actual, resource)
            if act > 100:
                assert abs(est - act) / act < 0.15

    def test_simulate_actual_cpki_close_to_estimate(self, compiler):
        module = build_stencil_module(lanes=1, grid=(16, 16, 16))
        wl = KernelInstance("s", NDRange.cube(16), repetitions=10)
        report = compiler.cost(module, wl)
        variant = compiler.analyze(module)
        sim = compiler.simulate_actual(variant, wl)
        est_cpki = report.throughput.cycles_per_kernel_instance
        act_cpki = sim.cycles_per_kernel_instance
        assert act_cpki > 0
        assert abs(est_cpki - act_cpki) / act_cpki < 0.35

    def test_emit_hdl_without_wrapper(self, compiler):
        files = compiler.emit_hdl(build_stencil_module(lanes=1), include_wrapper=False)
        assert not any(name.endswith(".maxj") for name in files)
        assert any(name.endswith(".v") for name in files)
