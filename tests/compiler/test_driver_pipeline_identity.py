"""Differential tests: the driver shim is byte-identical to the pipeline.

``TybecCompiler.cost()`` is a facade over ``EstimationPipeline.cost()``;
nothing in the shim may perturb a report.  These tests pin that identity
across the *full kernel registry* (the PR-1 test covered only the SOR
family) and extend the pool-vs-serial identity check to every kernel —
the two invariants the golden-report harness silently assumes.
"""

import json

import pytest

from repro.compiler import CompilationOptions, EstimationPipeline, TybecCompiler
from repro.explore import ExplorationEngine, ProcessPoolBackend, SerialBackend, canonical_report_dict
from repro.kernels import ALL_KERNELS, get_kernel
from repro.substrate import MAIA_STRATIX_V_GSD8
from repro.suite import SuiteConfig, WorkloadSuite, tiny_grid


def _canonical_json(report) -> str:
    return json.dumps(canonical_report_dict(report), sort_keys=True)


class TestDriverMatchesPipeline:
    @pytest.mark.parametrize("name", sorted(ALL_KERNELS))
    def test_shim_byte_identical_per_kernel(self, name):
        kernel = get_kernel(name)
        grid = tiny_grid(kernel.default_grid)
        module = kernel.build_module(lanes=2, grid=grid)
        workload = kernel.workload(grid, iterations=10)

        driver = TybecCompiler(CompilationOptions(device=MAIA_STRATIX_V_GSD8))
        pipeline = EstimationPipeline(CompilationOptions(device=MAIA_STRATIX_V_GSD8))
        via_driver = driver.cost(module, workload)
        via_pipeline = pipeline.cost(module, workload)
        assert _canonical_json(via_driver) == _canonical_json(via_pipeline)

    @pytest.mark.parametrize("name", sorted(ALL_KERNELS))
    def test_shim_identical_from_ir_text(self, name):
        """The text entry point (parse stage) changes nothing either."""
        from repro.ir import print_module

        kernel = get_kernel(name)
        grid = tiny_grid(kernel.default_grid)
        module = kernel.build_module(lanes=1, grid=grid)
        workload = kernel.workload(grid, iterations=10)
        text = print_module(module)

        compiler = TybecCompiler(CompilationOptions(device=MAIA_STRATIX_V_GSD8))
        assert _canonical_json(compiler.cost(text, workload)) == (
            _canonical_json(compiler.cost(module, workload))
        )


class TestPoolSerialIdentityAllKernels:
    def test_pool_matches_serial_across_full_registry(self):
        """Every registered kernel costs identically on both backends."""
        suite = WorkloadSuite(SuiteConfig.tiny())
        jobs = suite.jobs()
        kernels_in_batch = {job.point.kernel for job in jobs}
        assert kernels_in_batch == set(ALL_KERNELS)

        serial = ExplorationEngine(SerialBackend()).cost_many(jobs)
        pooled = ExplorationEngine(ProcessPoolBackend(max_workers=2)).cost_many(jobs)
        assert serial.evaluated == pooled.evaluated == len(jobs)
        assert json.dumps(serial.canonical_dicts(), sort_keys=True) == (
            json.dumps(pooled.canonical_dicts(), sort_keys=True)
        )
