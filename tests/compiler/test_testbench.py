"""Tests for the Verilog testbench generator."""

import pytest

from repro.compiler.codegen.testbench import generate_testbench
from repro.kernels import SORKernel

from tests.conftest import build_stencil_module


class TestTestbenchGeneration:
    def test_basic_structure(self, stencil_module):
        tb = generate_testbench(stencil_module, n_items=128)
        assert "`timescale" in tb
        assert "module tb_f0;" in tb
        assert "f0_kernel dut (" in tb
        assert ".s_p(s_p)" in tb and ".s_rhs(s_rhs)" in tb
        assert ".g_errAcc(g_errAcc)" in tb
        assert "$finish;" in tb
        assert tb.count("endmodule") == 1

    def test_run_length_includes_pipeline_drain(self, stencil_module):
        tb = generate_testbench(stencil_module, n_items=100)
        # the termination count must exceed the number of items (drain margin)
        assert "cycle == 1" not in tb.split("$finish")[0].splitlines()[-1]
        assert "if (cycle == " in tb
        count = int(tb.split("if (cycle == ")[1].split(")")[0])
        assert count > 100

    def test_memh_stimulus_mode(self, stencil_module):
        tb = generate_testbench(stencil_module, n_items=64, use_memh=True)
        assert '$readmemh("p.memh", mem_p);' in tb
        assert "mem_rhs[cycle % 64]" in tb

    def test_explicit_function_selection(self):
        module = SORKernel().build_module(lanes=4, grid=(16, 16, 16))
        tb = generate_testbench(module, function_name="sor_pe", n_items=32)
        assert "module tb_sor_pe;" in tb
        assert ".s_p_new(s_p_new)" in tb

    def test_default_picks_largest_leaf(self):
        module = SORKernel().build_module(lanes=2, grid=(8, 8, 8))
        tb = generate_testbench(module)
        assert "sor_pe_kernel dut" in tb

    def test_invalid_items(self, stencil_module):
        with pytest.raises(ValueError):
            generate_testbench(stencil_module, n_items=0)

    def test_output_logging_present(self, stencil_module):
        tb = generate_testbench(stencil_module)
        assert "$display(\"cycle %0d: p_new=%0d\"" in tb
        assert 'reduction errAcc' in tb
