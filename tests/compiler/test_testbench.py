"""Tests for the Verilog testbench generator."""

import pytest

from repro.compiler.codegen.testbench import (
    DEFAULT_STIMULUS_SEED,
    generate_testbench,
    parse_result_lines,
    stimulus_words,
    stream_seed,
)
from repro.kernels import SORKernel

from tests.conftest import build_stencil_module


class TestTestbenchGeneration:
    def test_basic_structure(self, stencil_module):
        tb = generate_testbench(stencil_module, n_items=128)
        assert "`timescale" in tb
        assert "module tb_f0;" in tb
        assert "f0_kernel dut (" in tb
        assert ".s_p(s_p)" in tb and ".s_rhs(s_rhs)" in tb
        assert ".g_errAcc(g_errAcc)" in tb
        assert "$finish;" in tb
        assert tb.count("endmodule") == 1

    def test_run_length_includes_pipeline_drain(self, stencil_module):
        tb = generate_testbench(stencil_module, n_items=100)
        assert "if (cycle == " in tb
        count = int(tb.split("if (cycle == ")[1].split(")")[0])
        assert count > 100

    def test_memh_stimulus_mode(self, stencil_module):
        tb = generate_testbench(stencil_module, n_items=64, use_memh=True)
        assert '$readmemh("p.memh", mem_p);' in tb
        assert "mem_rhs[cycle % 64]" in tb

    def test_explicit_function_selection(self):
        module = SORKernel().build_module(lanes=4, grid=(16, 16, 16))
        tb = generate_testbench(module, function_name="sor_pe", n_items=32)
        assert "module tb_sor_pe;" in tb
        assert ".s_p_new(s_p_new)" in tb

    def test_default_picks_largest_leaf(self):
        module = SORKernel().build_module(lanes=2, grid=(8, 8, 8))
        tb = generate_testbench(module)
        assert "sor_pe_kernel dut" in tb

    def test_invalid_items(self, stencil_module):
        with pytest.raises(ValueError):
            generate_testbench(stencil_module, n_items=0)

    def test_machine_parsable_result_lines(self, stencil_module):
        tb = generate_testbench(stencil_module)
        assert '$display("RESULT p_new %0d %h", out_index, s_p_new);' in tb
        assert '$display("REDUCTION errAcc %h", g_errAcc);' in tb
        assert '$display("DONE %0d", cycle);' in tb

    def test_output_port_width_follows_port_declaration(self, stencil_module):
        tb = generate_testbench(stencil_module)
        assert "wire [17:0] s_p_new;" in tb


class TestSeededStimulus:
    def test_seed_is_baked_into_the_source(self, stencil_module):
        tb = generate_testbench(stencil_module, seed=0xBEEF)
        assert f"32'h{stream_seed(0xBEEF, 0):08x}" in tb
        assert f"32'h{stream_seed(0xBEEF, 1):08x}" in tb
        assert "lcg_p * 32'd1664525 + 32'd1013904223" in tb

    def test_different_seeds_differ(self, stencil_module):
        left = generate_testbench(stencil_module, seed=1)
        right = generate_testbench(stencil_module, seed=2)
        assert left != right

    def test_same_seed_is_deterministic(self, stencil_module):
        assert generate_testbench(stencil_module) == generate_testbench(
            stencil_module, seed=DEFAULT_STIMULUS_SEED)

    def test_stimulus_words_masked_to_width(self):
        words = stimulus_words(0, 0, 100, 18)
        assert all(0 <= w < (1 << 18) for w in words)
        # different streams decorrelate
        assert stimulus_words(0, 0, 10, 18) != stimulus_words(0, 1, 10, 18)

    def test_tail_drives_zero(self, stencil_module):
        tb = generate_testbench(stencil_module, n_items=16)
        # after the last item the streams are zeroed, making boundary
        # windows deterministic for any simulator
        tail = tb.split("end else begin", 2)[2]
        assert "s_p <= 0;" in tail


class TestResultParsing:
    def test_round_trip(self):
        text = "\n".join([
            "noise",
            "RESULT p_new 0 3f",
            "RESULT p_new 1 0a",
            "REDUCTION errAcc 1f4",
            "DONE 123",
        ])
        outputs, reductions, cycles = parse_result_lines(text)
        assert outputs == {"p_new": {0: 0x3F, 1: 0x0A}}
        assert reductions == {"errAcc": 0x1F4}
        assert cycles == 123

    def test_x_values_parse_to_none(self):
        outputs, reductions, _ = parse_result_lines(
            "RESULT p_new 0 xxxx\nREDUCTION acc xz")
        assert outputs["p_new"][0] is None
        assert reductions["acc"] is None
