"""Tests for the Verilog and HLS-wrapper code generators."""

import re

import pytest

from repro.compiler.codegen import VerilogGenerator, generate_host_stub, generate_maxj_wrapper
from repro.ir import IRBuilder, ScalarType

from tests.conftest import build_stencil_module

UI18 = ScalarType.uint(18)


@pytest.fixture
def generator(stencil_module):
    return VerilogGenerator(stencil_module)


class TestVerilogKernel:
    def test_kernel_module_structure(self, generator, stencil_module):
        text = generator.generate_kernel(stencil_module.get_function("f0"))
        assert "module f0_kernel (" in text
        assert "endmodule" in text
        assert text.count("module ") == 1
        # ports for both input streams
        assert "input  wire [17:0] s_p" in text
        assert "input  wire [17:0] s_rhs" in text
        # output stream port (declared via an ostream port declaration)
        assert "output wire [17:0] s_p_new" in text
        # reduction register output
        assert "output reg  [17:0] g_errAcc" in text

    def test_offset_buffers_emitted(self, generator, stencil_module):
        text = generator.generate_kernel(stencil_module.get_function("f0"))
        # the ND1*ND2 = 64-deep offset buffer becomes a delay line
        assert "offbuf_pkn1 [0:63]" in text
        assert "offbuf_pip1 [0:0]" in text

    def test_datapath_expressions(self, generator, stencil_module):
        text = generator.generate_kernel(stencil_module.get_function("f0"))
        assert re.search(r"r_v1 <= w_pip1 \* 18'd3", text)
        assert re.search(r"r_p_new <= w_\w+ - w_p", text)

    def test_valid_shift_register_matches_depth(self, generator, stencil_module):
        depth = generator.schedules["f0"].pipeline_depth
        text = generator.generate_kernel(stencil_module.get_function("f0"))
        assert f"assign out_valid = valid_sr[{depth}];" in text

    def test_unscheduled_function_rejected(self, generator, stencil_module):
        with pytest.raises(ValueError):
            generator.generate_kernel(stencil_module.get_function("main"))

    def test_balanced_identifier_sanitisation(self):
        b = IRBuilder("weird.name")
        f = b.function("f0", kind="pipe", args=[(UI18, "x")])
        f.add(UI18, f.arg("x"), 1, result="1")
        main = b.function("main", kind="none")
        main.call("f0", ["x"], kind="pipe")
        module = b.build()
        gen = VerilogGenerator(module)
        text = gen.generate_kernel(module.get_function("f0"))
        assert "r_v1" in text  # numeric SSA names get a 'v' prefix


class TestComputeUnitAndConfig:
    def test_compute_unit_replicates_lanes(self):
        module = build_stencil_module(lanes=4)
        gen = VerilogGenerator(module)
        text = gen.generate_compute_unit()
        assert text.count("f0_kernel lane") == 4
        assert "lane3_out_valid" in text

    def test_config_include(self, generator):
        text = generator.generate_config_include()
        assert "`define TYTRA_LANES 1" in text
        assert "`define TYTRA_NOFF 64" in text
        assert "`define TYTRA_NI 6" in text

    def test_generate_all_files(self):
        module = build_stencil_module(lanes=2)
        files = VerilogGenerator(module).generate_all()
        assert any(name.endswith("_kernel.v") for name in files)
        assert any(name.endswith("_cu.v") for name in files)
        assert any(name.endswith("_config.vh") for name in files)
        assert all(isinstance(body, str) and body for body in files.values())


class TestWrappers:
    def test_maxj_wrapper(self, stencil_module):
        text = generate_maxj_wrapper(stencil_module)
        assert "extends Kernel" in text
        assert 'io.input("p", elementType)' in text
        assert 'io.input("rhs", elementType)' in text
        assert "dfeUInt(18)" in text
        assert "CustomHDLBlock" in text

    def test_host_stub(self, stencil_module):
        text = generate_host_stub(stencil_module)
        assert "max_run(engine, actions);" in text
        assert "run_f0(" in text
        assert 'max_queue_input(actions, "p"' in text

    def test_wrapper_for_multilane(self):
        module = build_stencil_module(lanes=4)
        text = generate_maxj_wrapper(module)
        assert "4 lane(s)" in text
