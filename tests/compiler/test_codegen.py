"""Tests for the Verilog and HLS-wrapper code generators."""

import re

import pytest

from repro.compiler.codegen import VerilogGenerator, generate_host_stub, generate_maxj_wrapper
from repro.ir import IRBuilder, ScalarType

from tests.conftest import build_stencil_module

UI18 = ScalarType.uint(18)


@pytest.fixture
def generator(stencil_module):
    return VerilogGenerator(stencil_module)


class TestVerilogKernel:
    def test_kernel_module_structure(self, generator, stencil_module):
        text = generator.generate_kernel(stencil_module.get_function("f0"))
        assert "module f0_kernel (" in text
        assert "endmodule" in text
        assert text.count("module ") == 1
        # ports for both input streams
        assert "input  wire [17:0] s_p" in text
        assert "input  wire [17:0] s_rhs" in text
        # output stream port (declared via an ostream port declaration)
        assert "output wire [17:0] s_p_new" in text
        # reduction register output
        assert "output reg  [17:0] g_errAcc" in text

    def test_offset_buffers_aligned_to_window(self, generator, stencil_module):
        text = generator.generate_kernel(stencil_module.get_function("f0"))
        geometry = generator.geometry("f0")
        assert geometry.window == 1  # the +1 offset sets the window
        # the +1 offset aligns to a plain wire (delay window - 1 = 0)
        assert "wire [17:0] w_pip1 = s_p;" in text
        # the -ND1*ND2 = -64 offset needs a window+64 = 65 deep delay line
        assert "offbuf_pkn1 [0:64]" in text
        # base streams are delayed by the window so all operands align
        assert "argbuf_p [0:0]" in text

    def test_datapath_expressions(self, generator, stencil_module):
        text = generator.generate_kernel(stencil_module.get_function("f0"))
        assert re.search(r"r_v1 <= w_pip1 \* 18'd3", text)
        # the subtrahend %p is balanced through a delay line to the
        # consumer's schedule stage
        assert re.search(r"r_p_new <= w_\w+ - w_p_d\d+", text)

    def test_instruction_latency_becomes_register_stages(self, generator, stencil_module):
        text = generator.generate_kernel(stencil_module.get_function("f0"))
        # mul has latency 3: two extra pipeline stages follow the result reg
        assert "reg [17:0] r_v1_p1;" in text
        assert "reg [17:0] r_v1_p2;" in text
        assert "wire [17:0] w_v1 = r_v1_p2;" in text

    def test_out_valid_tracks_rtl_latency(self, generator, stencil_module):
        geometry = generator.geometry("f0")
        text = generator.generate_kernel(stencil_module.get_function("f0"))
        assert f"assign out_valid = valid_sr[{geometry.out_valid_index}];" in text
        assert geometry.latency == geometry.window + geometry.datapath_depth

    def test_unscheduled_function_rejected(self, generator, stencil_module):
        with pytest.raises(ValueError):
            generator.generate_kernel(stencil_module.get_function("main"))

    def test_balanced_identifier_sanitisation(self):
        b = IRBuilder("weird.name")
        f = b.function("f0", kind="pipe", args=[(UI18, "x")])
        f.add(UI18, f.arg("x"), 1, result="1")
        main = b.function("main", kind="none")
        main.call("f0", ["x"], kind="pipe")
        module = b.build()
        gen = VerilogGenerator(module)
        text = gen.generate_kernel(module.get_function("f0"))
        assert "r_v1" in text  # numeric SSA names get a 'v' prefix


def _compare_module(predicate, type_=UI18):
    b = IRBuilder("cmp")
    f = b.function("f0", kind="pipe", args=[(type_, "a"), (type_, "b")])
    f.instr("icmp", type_, f.arg("a"), f.arg("b"), result="c", predicate=predicate)
    f.add(type_, "c", 1, result="out")
    b.port("f0", "out", type_, direction="ostream")
    main = b.function("main", kind="none")
    main.call("f0", ["a", "b"], kind="pipe")
    return b.build()


class TestComparePredicates:
    """Regression for the `_COMPARE_OPERATORS` bug: icmp/fcmp always
    emitted `<` regardless of the comparison predicate."""

    @pytest.mark.parametrize("predicate, operator", [
        ("eq", "=="), ("ne", "!="), ("lt", "<"), ("le", "<="),
        ("gt", ">"), ("ge", ">="),
    ])
    def test_predicate_selects_operator(self, predicate, operator):
        module = _compare_module(predicate)
        text = VerilogGenerator(module).generate_kernel(module.get_function("f0"))
        assert f"(w_a {operator} w_b) ? 1'b1 : 1'b0" in text

    def test_default_predicate_stays_less_than(self):
        module = _compare_module(None)
        text = VerilogGenerator(module).generate_kernel(module.get_function("f0"))
        assert "(w_a < w_b) ? 1'b1 : 1'b0" in text

    @pytest.mark.parametrize("predicate", ["slt", "sge"])
    def test_explicit_signed_predicates_wrap_operands(self, predicate):
        module = _compare_module(predicate)
        text = VerilogGenerator(module).generate_kernel(module.get_function("f0"))
        assert "$signed(w_a)" in text and "$signed(w_b)" in text

    @pytest.mark.parametrize("predicate", ["ult", "uge"])
    def test_explicit_unsigned_predicates_stay_plain(self, predicate):
        module = _compare_module(predicate)
        text = VerilogGenerator(module).generate_kernel(module.get_function("f0"))
        assert "$signed" not in text

    def test_signed_type_implies_signed_compare(self):
        module = _compare_module("lt", type_=ScalarType.int_(18))
        text = VerilogGenerator(module).generate_kernel(module.get_function("f0"))
        assert "($signed(w_a) < $signed(w_b)) ? 1'b1 : 1'b0" in text

    def test_predicate_semantics_through_rtl_simulation(self):
        # the generated comparison must *behave* per predicate, not just
        # print the right operator
        from repro.flows import elaborate, parse_module_text, NetlistSimulator

        for predicate, fn in [("eq", lambda a, b: a == b),
                              ("ne", lambda a, b: a != b),
                              ("ge", lambda a, b: a >= b)]:
            module = _compare_module(predicate)
            text = VerilogGenerator(module).generate_kernel(module.get_function("f0"))
            sim = NetlistSimulator(elaborate(parse_module_text(text)))
            for a, b in [(3, 3), (2, 5), (7, 1)]:
                # hold the inputs until the two-stage pipeline settles
                for _ in range(4):
                    out = sim.step({"s_a": a, "s_b": b, "in_valid": 1, "rst": 0})
                assert out["s_out"] == int(fn(a, b)) + 1, (predicate, a, b)


class TestComputeUnitAndConfig:
    def test_compute_unit_replicates_lanes(self):
        module = build_stencil_module(lanes=4)
        gen = VerilogGenerator(module)
        text = gen.generate_compute_unit()
        assert text.count("f0_kernel lane") == 4
        assert "lane3_out_valid" in text

    def test_config_include(self, generator):
        text = generator.generate_config_include()
        assert "`define TYTRA_LANES 1" in text
        assert "`define TYTRA_NOFF 64" in text
        assert "`define TYTRA_NI 6" in text
        assert "`define TYTRA_WINDOW 1" in text
        assert "`define TYTRA_RTL_LATENCY 7" in text

    def test_generate_all_files(self):
        module = build_stencil_module(lanes=2)
        files = VerilogGenerator(module).generate_all()
        assert any(name.endswith("_kernel.v") for name in files)
        assert any(name.endswith("_cu.v") for name in files)
        assert any(name.endswith("_config.vh") for name in files)
        assert all(isinstance(body, str) and body for body in files.values())


class TestWrappers:
    def test_maxj_wrapper(self, stencil_module):
        text = generate_maxj_wrapper(stencil_module)
        assert "extends Kernel" in text
        assert 'io.input("p", elementType)' in text
        assert 'io.input("rhs", elementType)' in text
        assert "dfeUInt(18)" in text
        assert "CustomHDLBlock" in text

    def test_host_stub(self, stencil_module):
        text = generate_host_stub(stencil_module)
        assert "max_run(engine, actions);" in text
        assert "run_f0(" in text
        assert 'max_queue_input(actions, "p"' in text

    def test_wrapper_for_multilane(self):
        module = build_stencil_module(lanes=4)
        text = generate_maxj_wrapper(module)
        assert "4 lane(s)" in text
