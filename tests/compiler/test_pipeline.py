"""Tests for the staged, memoizing estimation pipeline."""

import time

import pytest

from repro.compiler import CompilationOptions, EstimationPipeline, module_content_key
from repro.ir import print_module
from repro.kernels import SORKernel
from repro.substrate import MAIA_STRATIX_V_GSD8, SMALL_EDU_DEVICE

GRID = (8, 8, 8)


@pytest.fixture
def kernel():
    return SORKernel()


@pytest.fixture
def pipeline():
    return EstimationPipeline(CompilationOptions(device=MAIA_STRATIX_V_GSD8))


@pytest.fixture
def variant_inputs(kernel):
    module = kernel.build_module(lanes=4, grid=GRID)
    workload = kernel.workload(GRID, iterations=10)
    return module, workload


class TestContentKeys:
    def test_identical_modules_share_a_key(self, kernel):
        a = kernel.build_module(lanes=2, grid=GRID)
        b = kernel.build_module(lanes=2, grid=GRID)
        assert a is not b
        assert module_content_key(a) == module_content_key(b)

    def test_different_lanes_differ(self, kernel):
        a = kernel.build_module(lanes=2, grid=GRID)
        b = kernel.build_module(lanes=4, grid=GRID)
        assert module_content_key(a) != module_content_key(b)


class TestStageMemoization:
    def test_analysis_is_memoized_on_content(self, pipeline, kernel):
        a = kernel.build_module(lanes=2, grid=GRID)
        b = kernel.build_module(lanes=2, grid=GRID)  # separate but identical build
        first = pipeline.analyze(a)
        second = pipeline.analyze(b)
        assert second is first
        assert pipeline.stats.variant_hits == 1
        assert pipeline.stats.variant_misses == 1

    def test_parse_is_memoized_on_text(self, pipeline, kernel):
        text = print_module(kernel.build_module(lanes=1, grid=GRID))
        first = pipeline.parse(text, name="x")
        second = pipeline.parse(text, name="x")
        assert second is first
        assert pipeline.stats.parse_hits == 1

    def test_repeated_cost_hits_resource_cache(self, pipeline, variant_inputs):
        from repro.compiler.pipeline import clear_calibration_cache

        clear_calibration_cache()  # start from cold process-wide caches
        module, workload = variant_inputs
        pipeline.cost(module, workload)
        assert pipeline.stats.resource_misses == 1
        pipeline.cost(module, workload)
        assert pipeline.stats.resource_hits == 1
        assert pipeline.stats.resource_misses == 1

    def test_cached_reports_are_equivalent(self, pipeline, variant_inputs):
        from repro.explore import canonical_report_dict

        module, workload = variant_inputs
        first = pipeline.cost(module, workload)
        second = pipeline.cost(module, workload)
        assert canonical_report_dict(first) == canonical_report_dict(second)

    def test_latency_model_change_invalidates_variant(self, kernel):
        """Regression: mutating the latency model must not serve stale
        schedules from the variant cache."""
        from repro.compiler import OperatorLatencyModel

        module = kernel.build_module(lanes=2, grid=GRID)
        pipeline = EstimationPipeline(CompilationOptions(device=MAIA_STRATIX_V_GSD8))
        before = pipeline.analyze(module).pipeline_depth
        pipeline.options.latency_model = OperatorLatencyModel(input_stage_cycles=5)
        after = pipeline.analyze(module).pipeline_depth
        assert after > before

    def test_cached_resources_are_isolated_per_report(self, pipeline, variant_inputs):
        """Regression: mutating one report's resources must not leak into
        other reports of the same variant."""
        module, workload = variant_inputs
        first = pipeline.cost(module, workload)
        from repro.substrate.synthesis import ResourceUsage

        first.resources.total += ResourceUsage(alut=1e9)
        second = pipeline.cost(module, workload)
        assert second.usage.alut < 1e9

    def test_clock_change_invalidates_variant(self, kernel):
        module = kernel.build_module(lanes=2, grid=GRID)
        at_fmax = EstimationPipeline(CompilationOptions(device=MAIA_STRATIX_V_GSD8))
        slow = EstimationPipeline(
            CompilationOptions(device=MAIA_STRATIX_V_GSD8, clock_mhz=100.0)
        )
        assert at_fmax.analyze(module).pipeline_spec.clock_mhz != (
            slow.analyze(module).pipeline_spec.clock_mhz
        )


class TestCalibrationSharing:
    def test_calibration_is_shared_across_pipelines(self):
        a = EstimationPipeline(CompilationOptions(device=SMALL_EDU_DEVICE))
        b = EstimationPipeline(CompilationOptions(device=SMALL_EDU_DEVICE))
        assert a.cost_db is b.cost_db
        assert a.dram_bandwidth is b.dram_bandwidth
        assert a.host_bandwidth is b.host_bandwidth
        # the second pipeline never pays for calibration
        assert b.stats.calibration_misses == 0

    def test_injected_models_win(self):
        warm = EstimationPipeline(CompilationOptions(device=SMALL_EDU_DEVICE))
        db = warm.cost_db
        injected = EstimationPipeline(
            CompilationOptions(device=SMALL_EDU_DEVICE, cost_db=db)
        )
        assert injected.cost_db is db

    def test_options_lazily_filled_like_the_old_driver(self):
        options = CompilationOptions(device=SMALL_EDU_DEVICE)
        pipeline = EstimationPipeline(options)
        assert options.cost_db is None
        pipeline.calibrate()
        assert options.cost_db is not None
        assert options.dram_bandwidth is not None
        assert options.host_bandwidth is not None


class TestSessionKey:
    def test_equal_options_share_a_key(self):
        a = CompilationOptions(device=MAIA_STRATIX_V_GSD8)
        b = CompilationOptions(device=MAIA_STRATIX_V_GSD8)
        assert a.session_key() == b.session_key()

    def test_clock_and_form_change_the_key(self):
        base = CompilationOptions(device=MAIA_STRATIX_V_GSD8)
        assert base.session_key() != CompilationOptions(
            device=MAIA_STRATIX_V_GSD8, clock_mhz=100.0
        ).session_key()
        assert base.session_key() != CompilationOptions(
            device=MAIA_STRATIX_V_GSD8, form="B"
        ).session_key()


class TestCostManyBatch:
    def test_cost_many_preserves_order(self, pipeline, kernel):
        workload = kernel.workload(GRID, 10)
        jobs = [
            (kernel.build_module(lanes=lanes, grid=GRID), workload)
            for lanes in (4, 1, 2)
        ]
        reports = pipeline.cost_many(jobs)
        assert [r.design for r in reports] == ["sor_l4", "sor_l1", "sor_l2"]

    def test_repeat_family_is_at_least_2x_faster(self, kernel):
        """The acceptance criterion: memoization pays on repeated families."""
        from repro.compiler.pipeline import clear_calibration_cache

        clear_calibration_cache()  # cold first pass, warm repeat pass
        pipeline = EstimationPipeline(CompilationOptions(device=MAIA_STRATIX_V_GSD8))
        pipeline.calibrate()  # one-time per-device inputs out of the timing
        workload = kernel.workload(GRID, 10)
        jobs = [
            (kernel.build_module(lanes=lanes, grid=GRID), workload)
            for lanes in (1, 2, 4, 8, 16, 32)
        ]

        started = time.perf_counter()
        first = pipeline.cost_many(jobs)
        first_pass = time.perf_counter() - started

        started = time.perf_counter()
        second = pipeline.cost_many(jobs)
        second_pass = time.perf_counter() - started

        assert len(first) == len(second) == len(jobs)
        assert pipeline.stats.variant_hits >= len(jobs)
        assert first_pass >= 2 * second_pass
