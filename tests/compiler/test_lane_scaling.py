"""Differential and property tests for the analytic lane-scaling law.

The law's contract is absolute: a report derived from a design family's
canonical analysis must be *bit-identical* to the report the full
analysis path produces for the same design point — across every
registered kernel, lane count, memory-execution form and evaluation
backend.  These tests pin that contract, the automatic fallback for
non-separable designs, and the cache bookkeeping around it.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compiler import (
    CompilationOptions,
    EstimationPipeline,
    LaneFamilyHandle,
    check_lane_separable,
    family_fingerprint,
)
from repro.compiler.pipeline import clear_calibration_cache
from repro.cost.calibration import DeviceCostDB
from repro.explore import ExplorationEngine, canonical_report_dict
from repro.explore.space import DesignSpace, build_jobs
from repro.kernels import REGISTRY, get_kernel
from repro.substrate import MAIA_STRATIX_V_GSD8
from repro.suite import tiny_grid

LANES = (1, 2, 4, 8)
FORMS = ("auto", "A", "B", "C")


@pytest.fixture
def cold_caches(tmp_path, monkeypatch):
    """Fresh in-process caches *and* a fresh persistent store.

    Tests that assert miss counters need both layers cold — the session
    cache dir would otherwise warm-start families registered by earlier
    tests (which is the feature, not a bug).
    """
    monkeypatch.setenv("TYBEC_CACHE_DIR", str(tmp_path / "cache"))
    clear_calibration_cache()
    yield
    clear_calibration_cache()


def _grid(kernel) -> tuple[int, ...]:
    return tiny_grid(kernel.default_grid)


def _full_path_options(form: str = "auto") -> CompilationOptions:
    """Options that force the full analysis path end to end.

    ``lane_scaling=False`` disables the law; the cost database is a
    serialisation round-trip of the shared calibration, so the resource
    stage bypasses the process-wide estimate cache (it only trusts the
    shared default calibration) and recomputes every estimate from the
    IR — without changing a single fitted coefficient.
    """
    shared = EstimationPipeline(
        CompilationOptions(device=MAIA_STRATIX_V_GSD8)
    ).cost_db
    rebuilt = DeviceCostDB.from_dict(shared.as_dict())
    return CompilationOptions(
        device=MAIA_STRATIX_V_GSD8, form=form, cost_db=rebuilt, lane_scaling=False
    )


def _cost_pair(kernel_name: str, lanes: int, form: str):
    """(lane-scaled report, full-path report) for one design point."""
    kernel = get_kernel(kernel_name)
    grid = _grid(kernel)
    module = kernel.build_module(lanes=lanes, grid=grid)
    workload = kernel.workload(grid, iterations=10)

    scaled = EstimationPipeline(
        CompilationOptions(device=MAIA_STRATIX_V_GSD8, form=form)
    )
    full = EstimationPipeline(_full_path_options(form))
    return scaled.cost(module, workload), full.cost(module, workload)


class TestDifferentialIdentity:
    @pytest.mark.parametrize("kernel_name", sorted(REGISTRY.names()))
    def test_all_lanes_and_kernels_bit_identical(self, kernel_name, cold_caches):
        """Acceptance: derived == full for every kernel x lanes {1,2,4,8}."""
        kernel = get_kernel(kernel_name)
        grid = _grid(kernel)
        size = 1
        for dim in grid:
            size *= dim
        scaled = EstimationPipeline(CompilationOptions(device=MAIA_STRATIX_V_GSD8))
        full = EstimationPipeline(_full_path_options())
        workload = kernel.workload(grid, iterations=10)
        for lanes in [l for l in LANES if size % l == 0]:
            module = kernel.build_module(lanes=lanes, grid=grid)
            assert canonical_report_dict(scaled.cost(module, workload)) == (
                canonical_report_dict(full.cost(module, workload))
            )
        # the law actually fired: one canonical analysis, the rest derived
        assert scaled.stats.family_misses == 1
        assert scaled.stats.family_hits >= 1
        assert full.stats.family_hits == full.stats.family_misses == 0

    def test_canonical_member_can_be_any_lane_count(self, cold_caches):
        """Deriving downwards (family registered at 4 lanes, member at 1)."""
        kernel = get_kernel("sor")
        grid = _grid(kernel)
        workload = kernel.workload(grid, iterations=10)
        scaled = EstimationPipeline(CompilationOptions(device=MAIA_STRATIX_V_GSD8))
        full = EstimationPipeline(_full_path_options())
        for lanes in (4, 1, 8, 2):  # canonical is the 4-lane member
            module = kernel.build_module(lanes=lanes, grid=grid)
            assert canonical_report_dict(scaled.cost(module, workload)) == (
                canonical_report_dict(full.cost(module, workload))
            )
        assert scaled.stats.family_misses == 1
        assert scaled.stats.family_hits == 3

    def test_lazy_handles_match_eager_modules(self, cold_caches):
        """The sweep layer's recipes cost identically to lowered IR."""
        space = DesignSpace(kernel=get_kernel("conv2d"),
                            grid=_grid(get_kernel("conv2d")),
                            iterations=10, max_lanes=8,
                            clocks_mhz=(150.0, 200.0))
        lazy = ExplorationEngine().cost_many(build_jobs(space, lazy=True))
        eager = ExplorationEngine().cost_many(build_jobs(space, lazy=False))
        assert lazy.canonical_dicts() == eager.canonical_dicts()
        assert lazy.stats["family"][0] > 0  # derived members exist

    def test_warm_recipe_never_lowers_the_module(self):
        """A warm family costs a recipe without materializing its IR."""
        kernel = get_kernel("sor")
        grid = _grid(kernel)
        workload = kernel.workload(grid, iterations=10)
        pipeline = EstimationPipeline(CompilationOptions(device=MAIA_STRATIX_V_GSD8))
        # canonical member warms the family (and the recipe index)
        pipeline.cost(LaneFamilyHandle(kernel=kernel, lanes=1, grid=grid), workload)
        handle = LaneFamilyHandle(kernel=kernel, lanes=4, grid=grid)
        report = pipeline.cost(handle, workload)
        assert handle._module is None  # never lowered
        assert report.design == "sor_l4"
        direct = EstimationPipeline(_full_path_options()).cost(
            kernel.build_module(lanes=4, grid=grid), workload
        )
        assert canonical_report_dict(report) == canonical_report_dict(direct)


@settings(max_examples=30, deadline=None)
@given(
    kernel_name=st.sampled_from(sorted(REGISTRY.names())),
    lanes=st.sampled_from(LANES),
    form=st.sampled_from(FORMS),
)
def test_lane_scaled_reports_equal_full_analysis(kernel_name, lanes, form):
    """Property: derived == full across kernels x lanes x forms."""
    kernel = get_kernel(kernel_name)
    size = 1
    for dim in _grid(kernel):
        size *= dim
    if size % lanes != 0:
        lanes = 1
    scaled, full = _cost_pair(kernel_name, lanes, form)
    assert canonical_report_dict(scaled) == canonical_report_dict(full)


class TestSeparabilityAndFallback:
    def test_registered_kernels_are_separable(self):
        for name in REGISTRY.names():
            kernel = get_kernel(name)
            for lanes in (1, 2):
                module = kernel.build_module(lanes=lanes, grid=_grid(kernel))
                sep = check_lane_separable(module)
                assert sep is not None
                assert sep.lanes == lanes

    def test_family_fingerprint_is_lane_invariant(self):
        kernel = get_kernel("sor")
        grid = _grid(kernel)
        prints = set()
        for lanes in (1, 2, 4):
            module = kernel.build_module(lanes=lanes, grid=grid)
            prints.add(family_fingerprint(module, check_lane_separable(module)))
        assert len(prints) == 1

    def test_family_fingerprint_distinguishes_kernels_and_grids(self):
        sor = get_kernel("sor")
        nw = get_kernel("nw")
        fps = set()
        for kernel, grid in ((sor, _grid(sor)), (nw, _grid(nw)),
                             (sor, tuple(d * 2 for d in _grid(sor)))):
            module = kernel.build_module(lanes=2, grid=grid)
            fps.add(family_fingerprint(module, check_lane_separable(module)))
        assert len(fps) == 3

    def test_non_separable_module_falls_back(self, stencil_module):
        """A hand-built two-leaf design takes the full path, correctly."""
        from repro.ir.builder import IRBuilder
        from repro.ir import ScalarType

        # graft a second (unreachable) leaf onto the stencil: the strict
        # shape check must reject it even though the cost flow would not
        # notice the extra function
        ty = ScalarType.uint(18)
        extra = IRBuilder("scratch").function("g0", kind="pipe", args=[(ty, "x")])
        extra.add(ty, "x", 1)
        stencil_module.add_function(extra.function)
        assert check_lane_separable(stencil_module) is None

        from repro.models import KernelInstance, NDRange

        workload = KernelInstance(kernel="stencil", ndrange=NDRange((8, 8, 8)),
                                  repetitions=10)
        scaled = EstimationPipeline(CompilationOptions(device=MAIA_STRATIX_V_GSD8))
        full = EstimationPipeline(_full_path_options())
        assert canonical_report_dict(scaled.cost(stencil_module, workload)) == (
            canonical_report_dict(full.cost(stencil_module, workload))
        )
        assert scaled.stats.family_fallbacks == 1
        assert scaled.stats.family_hits == scaled.stats.family_misses == 0

    def test_separable_stencil_joins_a_family(self, stencil_module):
        """The conftest one-lane stencil is canonical-shaped and registers."""
        assert check_lane_separable(stencil_module) is not None

    def test_recipe_token_tracks_kernel_code(self):
        """Regression: the persisted recipe alias keys on kernel *content*
        (class source hash + instance state), so editing a kernel's
        lowering invalidates warm recipes without a schema bump."""
        from repro.compiler.lanescale import _kernel_code_token

        kernel = get_kernel("sor")
        token = LaneFamilyHandle(kernel=kernel, lanes=1, grid=(8, 8, 8)).family_token()
        assert _kernel_code_token(kernel) in token
        other = LaneFamilyHandle(kernel=get_kernel("nw"), lanes=1, grid=(8, 8, 8))
        assert other.family_token() != token


class TestGoldensUnchanged:
    def test_golden_reports_are_bit_for_bit_unchanged(self):
        """Lane scaling + lazy recipes leave tests/golden/*.json untouched."""
        from repro.suite import check_goldens

        results = check_goldens()
        assert results
        for kernel, diffs in results.items():
            assert diffs == [], f"{kernel}: {[str(d) for d in diffs]}"
