"""End-to-end integration tests across the whole stack.

These exercise the complete TyTra flow the paper describes in Figure 1:
functional program → type-transformed variant → TyTra-IR (text round-trip)
→ configuration analysis → cost model → HDL generation → ground-truth
simulation, and check that the pieces agree with each other.
"""

import subprocess
import sys
from pathlib import Path

import pytest

from repro.compiler import CompilationOptions, TybecCompiler, build_configuration_tree
from repro.cost.resource_model import ModuleStructure
from repro.functional import verify_variant_equivalence
from repro.ir import parse_module, print_module, validate_module
from repro.kernels import get_kernel
from repro.models import MemoryExecutionForm
from repro.substrate import MAIA_STRATIX_V_GSD8

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


@pytest.fixture(scope="module")
def compiler():
    return TybecCompiler(CompilationOptions(device=MAIA_STRATIX_V_GSD8))


class TestEndToEndFlow:
    @pytest.mark.parametrize("kernel_name,lanes", [("sor", 2), ("hotspot", 4), ("lavamd", 1)])
    def test_full_flow(self, compiler, kernel_name, lanes):
        kernel = get_kernel(kernel_name)
        grid = {"sor": (16, 16, 16), "hotspot": (64, 64), "lavamd": (8, 8, 8)}[kernel_name]

        # 1. variant generation is semantics preserving
        baseline = kernel.baseline_program(grid)
        variant_program = kernel.variant_program(lanes, grid)
        gathered = kernel.gather(kernel.generate_inputs(grid, seed=11))
        assert verify_variant_equivalence(baseline, variant_program, gathered)

        # 2. lowering produces valid IR that round-trips through the text form
        module = kernel.build_module(lanes=lanes, grid=grid)
        text = print_module(module)
        reparsed = parse_module(text)
        validate_module(reparsed)
        assert print_module(reparsed) == text

        # 3. both forms of the module agree structurally
        s1 = ModuleStructure.from_module(module)
        s2 = ModuleStructure.from_module(reparsed)
        assert (s1.lanes, s1.instructions_per_pe, s1.max_offset_span_words) == (
            s2.lanes, s2.instructions_per_pe, s2.max_offset_span_words)
        assert build_configuration_tree(reparsed).lanes() == lanes if lanes > 1 else True

        # 4. the cost model and the ground-truth substrates roughly agree
        workload = kernel.workload(grid, iterations=500)
        report = compiler.cost(reparsed, workload)
        variant = compiler.analyze(reparsed)
        actual = compiler.synthesize_actual(variant)
        assert report.usage.alut == pytest.approx(actual.alut, rel=0.12)
        sim = compiler.simulate_actual(variant, workload)
        assert report.throughput.cycles_per_kernel_instance == pytest.approx(
            sim.cycles_per_kernel_instance, rel=0.25
        )

        # 5. HDL generation covers every leaf pipeline and the wrapper
        files = compiler.emit_hdl(reparsed)
        kernel_files = [n for n in files if n.endswith("_kernel.v")]
        assert kernel_files
        assert any(n.endswith(".maxj") for n in files)
        assert any(n.endswith("_config.vh") for n in files)
        config = files[[n for n in files if n.endswith("_config.vh")][0]]
        assert f"`define TYTRA_LANES {lanes}" in config

    def test_form_selection_tracks_footprint(self, compiler):
        kernel = get_kernel("sor")
        small = compiler.cost(kernel.build_module(1, (8, 8, 8)), kernel.workload((8, 8, 8), 10))
        large = compiler.cost(kernel.build_module(1, (128, 128, 128)),
                              kernel.workload((128, 128, 128), 10))
        assert small.throughput.form is MemoryExecutionForm.C
        assert large.throughput.form is MemoryExecutionForm.B
        # the large problem needs more of the DRAM bandwidth
        assert (large.feasibility.required_dram_gbps
                >= small.feasibility.required_dram_gbps)


@pytest.mark.parametrize(
    "script,args",
    [
        ("quickstart.py", []),
        ("sor_design_space.py", ["--grid", "8", "--iterations", "5", "--max-lanes", "4"]),
        ("custom_kernel_ir.py", []),
    ],
)
def test_examples_run(script, args):
    """The shipped examples run to completion as standalone scripts."""
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script), *args],
        capture_output=True,
        text=True,
        timeout=180,
    )
    assert result.returncode == 0, result.stderr
    assert result.stdout.strip()
