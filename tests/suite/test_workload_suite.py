"""Tests for the workload-suite subsystem (runner, report, diff)."""

import json

import pytest

from repro.explore import ProcessPoolBackend
from repro.kernels import kernel_names
from repro.suite import (
    SCHEMA,
    SuiteConfig,
    WorkloadSuite,
    canonical_json,
    canonicalize,
    diff_payloads,
    format_diffs,
    load_report,
    tiny_grid,
)


@pytest.fixture(scope="module")
def tiny_run():
    return WorkloadSuite(SuiteConfig.tiny()).run()


class TestSuiteConfig:
    def test_defaults_cover_registry(self):
        assert SuiteConfig().resolved_kernels() == kernel_names()

    def test_tiny_caps_every_dimension(self):
        config = SuiteConfig.tiny()
        for name in kernel_names():
            assert all(d <= 8 for d in config.grids[name])

    def test_tiny_grid_helper(self):
        assert tiny_grid((64, 64)) == (8, 8)
        assert tiny_grid((4, 24, 24)) == (4, 8, 8)

    def test_unknown_kernel_rejected(self):
        with pytest.raises(KeyError, match="unknown kernels"):
            SuiteConfig(kernels=("sor", "nbody")).resolved_kernels()

    def test_workload_validated(self):
        config = SuiteConfig(grids={"sor": (0, 8, 8)})
        with pytest.raises(ValueError, match="positive integers"):
            config.workload_for("sor")

    def test_mixed_case_grid_override_applies(self):
        # regression: a 'SOR' grids key must not be silently ignored
        config = SuiteConfig(kernels=("SOR",), grids={"SOR": (4, 4, 4)})
        assert config.workload_for("sor").grid == (4, 4, 4)
        assert config.as_dict()["grids"] == {"sor": [4, 4, 4]}

    def test_tiny_normalises_kernel_case(self):
        config = SuiteConfig.tiny(kernels=("SOR",))
        assert config.resolved_kernels() == ["sor"]
        assert "sor" in config.grids

    def test_tiny_rejects_unknown_kernel(self):
        with pytest.raises(KeyError, match="unknown kernels"):
            SuiteConfig.tiny(kernels=("nbody",))

    def test_as_dict_is_json_safe(self):
        payload = SuiteConfig.tiny().as_dict()
        assert json.loads(json.dumps(payload)) == payload


class TestWorkloadSuiteRun:
    def test_costs_all_registered_kernels(self, tiny_run):
        assert sorted(tiny_run.report.kernels) == kernel_names()
        assert tiny_run.report.totals["kernels"] == len(kernel_names())
        assert tiny_run.report.totals["points"] == tiny_run.evaluated > 0
        for info in tiny_run.report.kernels.values():
            assert info["points"] == len(info["entries"]) > 0
            assert info["best"] is not None   # tiny grids are always feasible

    def test_schema_stamp(self, tiny_run):
        assert tiny_run.report.payload["schema"] == SCHEMA

    def test_report_deterministic_across_two_runs(self, tiny_run):
        again = WorkloadSuite(SuiteConfig.tiny()).run()
        assert tiny_run.report.to_json() == again.report.to_json()

    def test_no_wall_clock_fields_in_report(self, tiny_run):
        assert "estimation_seconds" not in tiny_run.report.to_json()

    def test_timing_lives_outside_the_report(self, tiny_run):
        assert tiny_run.wall_seconds > 0
        assert tiny_run.variants_per_second > 0

    def test_pool_backend_matches_serial(self):
        config = SuiteConfig.tiny(kernels=("sor", "matmul"))
        serial = WorkloadSuite(config).run()
        pooled = WorkloadSuite(config, backend=ProcessPoolBackend(max_workers=2)).run()
        assert serial.report.to_json() == pooled.report.to_json()

    def test_summary_rows(self, tiny_run):
        rows = WorkloadSuite(SuiteConfig.tiny()).summary_rows(tiny_run)
        assert len(rows) == tiny_run.evaluated
        assert {"kernel", "lanes", "device", "form", "ekit_per_s", "feasible"} <= set(rows[0])

    def test_empty_suite_raises(self):
        config = SuiteConfig(kernels=("sor",), lanes=(7,), grids={"sor": (8, 8, 8)})
        with pytest.raises(ValueError, match="no design points"):
            WorkloadSuite(config).run()

    def test_kernel_payload_roundtrip(self, tiny_run, tmp_path):
        path = tmp_path / "sor.json"
        path.write_text(canonical_json(tiny_run.report.kernel_payload("sor")))
        loaded = load_report(path)
        assert loaded["kernels"].keys() == {"sor"}
        assert diff_payloads(loaded, tiny_run.report.kernel_payload("sor")) == []

    def test_kernel_payload_unknown_kernel(self, tiny_run):
        with pytest.raises(KeyError):
            tiny_run.report.kernel_payload("nbody")


class TestCanonicalisation:
    def test_sorted_keys_and_rounded_floats(self):
        text = canonical_json({"b": 1.23456789012345, "a": [1, 2.0]})
        assert text.index('"a"') < text.index('"b"')
        assert "1.23456789\n" in text

    def test_rejects_non_json_values(self):
        with pytest.raises(TypeError):
            canonicalize({"x": object()})

    def test_tuples_become_lists(self):
        assert canonicalize({"grid": (8, 8)}) == {"grid": [8, 8]}


class TestDiff:
    def test_identical_payloads(self):
        payload = {"a": 1, "b": [1.0, {"c": "x"}]}
        assert diff_payloads(payload, payload) == []

    def test_changed_added_removed(self):
        left = {"a": 1, "b": {"c": 2.0}, "gone": True}
        right = {"a": 2, "b": {"c": 2.0, "new": 3}}
        diffs = {d.path: d.kind for d in diff_payloads(left, right)}
        assert diffs == {"a": "changed", "b.new": "added", "gone": "removed"}

    def test_list_length_mismatch(self):
        diffs = diff_payloads({"xs": [1, 2]}, {"xs": [1, 2, 3]})
        assert [d.kind for d in diffs] == ["added"]
        assert diffs[0].path == "xs[2]"

    def test_rtol_accepts_bounded_drift(self):
        left, right = {"x": 100.0}, {"x": 100.0 * (1 + 1e-7)}
        assert diff_payloads(left, right) != []
        assert diff_payloads(left, right, rtol=1e-6) == []

    def test_type_flip_is_reported(self):
        diffs = diff_payloads({"x": True}, {"x": 1})
        assert diffs and diffs[0].kind == "type"

    def test_int_float_flip_is_reported(self):
        # 9 vs 9.0 compare equal in Python but serialise differently — the
        # diff must catch the flip before record-golden surprises someone
        diffs = diff_payloads({"x": 9}, {"x": 9.0})
        assert diffs and diffs[0].kind == "type"

    def test_format_diffs_truncates(self):
        diffs = diff_payloads({"a": list(range(50))}, {"a": list(range(50, 100))})
        text = format_diffs(diffs, limit=5)
        assert "more" in text
        assert text.count("!=") == 5

    def test_format_no_diffs(self):
        assert format_diffs([]) == "reports are identical"


class TestLoadReport:
    def test_rejects_missing_schema(self, tmp_path):
        path = tmp_path / "x.json"
        path.write_text("{}")
        with pytest.raises(ValueError, match="schema"):
            load_report(path)

    def test_rejects_wrong_schema(self, tmp_path):
        path = tmp_path / "x.json"
        path.write_text(json.dumps({"schema": "repro-suite-report/999"}))
        with pytest.raises(ValueError, match="not one of the supported"):
            load_report(path)
