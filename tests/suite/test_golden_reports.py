"""Golden-report regression tests.

``tests/golden/<kernel>.json`` pins the cost model's canonical output for
every registered kernel on the default device (the fixed
:func:`repro.suite.golden_config` configuration).  These tests re-run the
estimation pipeline and diff field by field: any refactor that shifts a
resource count, throughput figure or feasibility verdict fails here with
the exact path of the field that moved.

When a change is *intentional*, regenerate the goldens and commit the
diff::

    PYTHONPATH=src python -m repro.cli suite record-golden
"""

import json
from pathlib import Path

import pytest

from repro.kernels import kernel_names
from repro.suite import (
    SCHEMA,
    check_goldens,
    diff_payloads,
    format_diffs,
    golden_dir,
    load_report,
    record_goldens,
    run_golden_suite,
)

GOLDEN_DIR = Path(__file__).resolve().parents[1] / "golden"


@pytest.fixture(scope="module")
def fresh_report():
    """One golden-configuration run shared by every test in the module."""
    return run_golden_suite()


class TestGoldenFiles:
    def test_every_kernel_has_a_golden(self):
        recorded = sorted(p.stem for p in GOLDEN_DIR.glob("*.json"))
        assert recorded == kernel_names(), (
            "tests/golden is out of sync with the kernel registry — run "
            "`PYTHONPATH=src python -m repro.cli suite record-golden`"
        )

    def test_golden_dir_resolution(self):
        assert golden_dir() == GOLDEN_DIR
        assert golden_dir("/tmp/elsewhere") == Path("/tmp/elsewhere")

    @pytest.mark.parametrize("name", sorted(kernel_names()))
    def test_goldens_are_canonical_json(self, name):
        path = GOLDEN_DIR / f"{name}.json"
        payload = load_report(path)
        assert payload["schema"] == SCHEMA
        # the file is byte-for-byte the canonical serialisation of itself
        from repro.suite import canonical_json

        assert path.read_text() == canonical_json(payload)


class TestGoldenRegression:
    @pytest.mark.parametrize("name", sorted(kernel_names()))
    def test_pipeline_reproduces_golden(self, fresh_report, name):
        golden = load_report(GOLDEN_DIR / f"{name}.json")
        diffs = diff_payloads(golden, fresh_report.kernel_payload(name))
        assert not diffs, (
            f"cost model drifted from tests/golden/{name}.json:\n"
            f"{format_diffs(diffs)}\n"
            "If this change is intentional, regenerate with "
            "`PYTHONPATH=src python -m repro.cli suite record-golden` and "
            "commit the diff."
        )

    def test_two_consecutive_runs_identical(self, fresh_report):
        again = run_golden_suite()
        assert fresh_report.to_json() == again.to_json()

    def test_check_goldens_clean(self):
        results = check_goldens(GOLDEN_DIR)
        assert sorted(results) == kernel_names()
        assert all(diffs == [] for diffs in results.values()), {
            name: format_diffs(diffs) for name, diffs in results.items() if diffs
        }

    def test_check_goldens_flags_missing_file(self, tmp_path):
        results = check_goldens(tmp_path, kernels=("sor",))
        assert len(results["sor"]) == 1
        assert results["sor"][0].kind == "removed"

    def test_check_goldens_detects_perturbation(self, tmp_path):
        record_goldens(tmp_path, kernels=("sor",))
        path = tmp_path / "sor.json"
        payload = json.loads(path.read_text())
        payload["kernels"]["sor"]["entries"][0]["report"]["utilization"]["alut"] *= 2
        path.write_text(json.dumps(payload))
        results = check_goldens(tmp_path, kernels=("sor",))
        assert results["sor"]
        assert any("utilization.alut" in d.path for d in results["sor"])


class TestRecordGoldenWorkflow:
    def test_record_matches_checked_in_goldens(self, tmp_path):
        """The documented regeneration path reproduces the committed files."""
        written = record_goldens(tmp_path)
        assert sorted(p.stem for p in written) == kernel_names()
        for path in written:
            committed = (GOLDEN_DIR / path.name).read_text()
            assert path.read_text() == committed, (
                f"record-golden produced a different {path.name} than the "
                "checked-in golden — the environment is non-deterministic "
                "or tests/golden is stale"
            )

    def test_subset_record_matches_full_record(self, tmp_path):
        """Regression: a per-kernel golden must not depend on which other
        kernels were in the recording run (the config is sliced per kernel),
        so `record-golden --kernels sor` and a full record agree byte for
        byte."""
        record_goldens(tmp_path / "sub", kernels=("sor",))
        assert (tmp_path / "sub" / "sor.json").read_text() == (
            (GOLDEN_DIR / "sor.json").read_text()
        )
