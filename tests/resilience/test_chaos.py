"""Chaos tests: injected faults must never change a report byte.

Each test computes a fault-free golden first, then repeats the identical
computation under a seeded :class:`FaultPlan` — crashed pool workers,
failing disk-cache reads, dying leaders — and asserts the recovered
output is byte-identical.  Determinism is what makes these tests exact
rather than probabilistic: the same seed injects the same faults in
every run.
"""

from __future__ import annotations

import json

import pytest

from repro.compiler.pipeline import clear_calibration_cache
from repro.cost.cache import redirected_cache_dir
from repro.explore.engine import ProcessPoolBackend, SerialBackend
from repro.resilience import FAULT_PLAN_ENV, FaultPlan, RetryPolicy
from repro.suite import SuiteConfig, WorkloadSuite


def _tiny_config() -> SuiteConfig:
    return SuiteConfig.tiny(kernels=("sor", "matmul"))


@pytest.fixture
def golden_report() -> str:
    """The fault-free report bytes for the tiny two-kernel suite."""
    return WorkloadSuite(_tiny_config()).run().report.to_json()


class TestSerialChaos:
    def test_injected_worker_faults_do_not_change_report_bytes(
            self, golden_report):
        plan = FaultPlan({"worker": {"rate": 0.3}}, seed=3)
        with plan.active():
            chaotic = WorkloadSuite(
                _tiny_config(), backend=SerialBackend()).run()
        stats = plan.stats()
        assert stats["sites"]["worker"]["injected"] > 0, \
            "seed produced no faults; the test would be vacuous"
        assert chaotic.report.to_json() == golden_report

    def test_cache_read_faults_become_recomputed_misses(
            self, golden_report, tmp_path):
        plan = FaultPlan({"cache.read": {"rate": 0.5}}, seed=5)
        with redirected_cache_dir(tmp_path / "chaos-cache"):
            clear_calibration_cache()
            try:
                with plan.active():
                    chaotic = WorkloadSuite(
                        _tiny_config(), backend=SerialBackend()).run()
            finally:
                clear_calibration_cache()
        assert plan.stats()["sites"]["cache.read"]["injected"] > 0
        assert chaotic.report.to_json() == golden_report

    def test_cache_write_faults_leave_orphans_not_corruption(
            self, golden_report, tmp_path):
        """A writer dying pre-rename costs persistence, never correctness."""
        from repro.cost.cache import default_disk_cache

        plan = FaultPlan({"cache.write": {"rate": 0.5}}, seed=9)
        with redirected_cache_dir(tmp_path / "chaos-cache"):
            clear_calibration_cache()
            try:
                with plan.active():
                    chaotic = WorkloadSuite(
                        _tiny_config(), backend=SerialBackend()).run()
                cache = default_disk_cache()
                orphans = (list(cache.version_dir.rglob("*.tmp"))
                           if cache is not None else [])
            finally:
                clear_calibration_cache()
        assert plan.stats()["sites"]["cache.write"]["injected"] > 0
        assert orphans, "injected write faults should leave .tmp corpses"
        assert chaotic.report.to_json() == golden_report


class TestPoolChaos:
    def test_worker_crashes_requeue_to_byte_identical_report(
            self, golden_report, monkeypatch):
        """The acceptance scenario: ~20% of pool workers die mid-sweep.

        ``crash`` mode calls ``os._exit`` inside the worker — a genuine
        ``BrokenProcessPool``, not a simulated exception — and the plan
        travels to the (forked/spawned) workers via the environment.
        """
        plan = FaultPlan({"worker": {"rate": 0.2, "mode": "crash"}}, seed=2)
        monkeypatch.setenv(FAULT_PLAN_ENV, plan.as_json())
        backend = ProcessPoolBackend(
            max_workers=2,
            retry_policy=RetryPolicy(max_attempts=8, base_delay=0.01,
                                     max_delay=0.1))
        chaotic = WorkloadSuite(_tiny_config(), backend=backend).run()
        monkeypatch.delenv(FAULT_PLAN_ENV)

        resilience = backend.collect_stats().get("resilience", {})
        assert resilience.get("requeued_batches", 0) > 0, \
            "seed crashed no workers; the test would be vacuous"
        assert resilience.get("pool_respawns", 0) > 0
        assert chaotic.report.to_json() == golden_report

    def test_injected_raise_faults_requeue_without_respawn_side_effects(
            self, golden_report, monkeypatch):
        """``raise``-mode worker faults travel the same requeue path."""
        plan = FaultPlan({"worker": {"rate": 0.4, "mode": "raise"}}, seed=4)
        monkeypatch.setenv(FAULT_PLAN_ENV, plan.as_json())
        backend = ProcessPoolBackend(max_workers=2)
        chaotic = WorkloadSuite(_tiny_config(), backend=backend).run()
        monkeypatch.delenv(FAULT_PLAN_ENV)
        assert backend.collect_stats()["resilience"]["requeued_batches"] > 0
        assert chaotic.report.to_json() == golden_report

    def test_unrecoverable_crash_rate_exhausts_the_budget(self, monkeypatch):
        """A plan that kills every worker forever must fail loudly."""
        from repro.resilience import RetryBudgetExceededError

        plan = FaultPlan({"worker": {"rate": 1.0, "mode": "raise"}})
        monkeypatch.setenv(FAULT_PLAN_ENV, plan.as_json())
        backend = ProcessPoolBackend(
            max_workers=2,
            retry_policy=RetryPolicy(max_attempts=2, base_delay=0.0))
        with pytest.raises(RetryBudgetExceededError):
            WorkloadSuite(_tiny_config(), backend=backend).run()
        monkeypatch.delenv(FAULT_PLAN_ENV)


class TestOptimizerChaos:
    def test_worker_crashes_converge_to_the_fault_free_answer(
            self, monkeypatch):
        """The optimizer driver loop rides the pool's requeue machinery:
        ~20% of workers dying mid-round must not change a byte of the
        run's entries or the optimizer's conclusion."""
        from repro.explore import (
            DesignSpace,
            ExhaustiveOptimizer,
            ExplorationEngine,
        )

        def spaces():
            return [DesignSpace(kernel=k, grid=(8, 8, 8), iterations=10,
                                max_lanes=4) for k in ("sor", "matmul")]

        golden = ExplorationEngine(SerialBackend()).run_optimizer(
            ExhaustiveOptimizer(spaces()))
        golden_dicts = golden.sweep().canonical_dicts()

        plan = FaultPlan({"worker": {"rate": 0.2, "mode": "crash"}}, seed=2)
        monkeypatch.setenv(FAULT_PLAN_ENV, plan.as_json())
        backend = ProcessPoolBackend(
            max_workers=2,
            retry_policy=RetryPolicy(max_attempts=8, base_delay=0.01,
                                     max_delay=0.1))
        chaotic = ExplorationEngine(backend).run_optimizer(
            ExhaustiveOptimizer(spaces()))
        monkeypatch.delenv(FAULT_PLAN_ENV)

        resilience = backend.collect_stats().get("resilience", {})
        assert resilience.get("requeued_batches", 0) > 0, \
            "seed crashed no workers; the test would be vacuous"
        assert chaotic.sweep().canonical_dicts() == golden_dicts
        assert chaotic.result == golden.result


class TestCombinedChaos:
    def test_cache_and_worker_faults_together(self, golden_report, tmp_path):
        """The full acceptance plan: dying workers *and* a flaky cache."""
        plan = FaultPlan({"worker": {"rate": 0.2},
                          "cache.read": {"rate": 0.1}}, seed=7)
        with redirected_cache_dir(tmp_path / "chaos-cache"):
            clear_calibration_cache()
            try:
                with plan.active():
                    chaotic = WorkloadSuite(
                        _tiny_config(), backend=SerialBackend()).run()
            finally:
                clear_calibration_cache()
        stats = plan.stats()["sites"]
        assert stats["worker"]["injected"] > 0
        assert chaotic.report.to_json() == golden_report

    def test_plan_stats_roundtrip_through_json(self):
        plan = FaultPlan({"worker": {"rate": 0.2, "mode": "crash"},
                          "cache.read": 0.1}, seed=7)
        payload = json.loads(plan.as_json())
        assert payload["seed"] == 7
        assert set(payload["sites"]) == {"worker", "cache.read"}
