"""Shared fixtures for the resilience-layer tests."""

from __future__ import annotations

import pytest

from repro.resilience import COUNTERS


@pytest.fixture(autouse=True)
def _fresh_counters():
    """Isolate the process-wide resilience counters per test."""
    COUNTERS.reset()
    yield
    COUNTERS.reset()
