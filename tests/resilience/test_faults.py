"""Tests for the deterministic fault-injection harness."""

from __future__ import annotations

import json

import pytest

from repro.resilience import (
    COUNTERS,
    FAULT_PLAN_ENV,
    FaultPlan,
    FaultSpec,
    InjectedFault,
    current_fault_plan,
    maybe_fail,
)


class TestFaultSpec:
    def test_from_scalar_and_dict(self):
        assert FaultSpec.from_spec(0.25).rate == 0.25
        spec = FaultSpec.from_spec({"indices": [0, 3], "mode": "crash",
                                    "max_failures": 2})
        assert spec.indices == (0, 3)
        assert spec.mode == "crash"
        assert spec.max_failures == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            FaultSpec(rate=1.5)
        with pytest.raises(ValueError):
            FaultSpec(mode="explode")


class TestFaultPlan:
    def test_schedule_is_deterministic(self):
        decide = lambda plan: [plan.should_fail("s") for _ in range(100)]
        first = decide(FaultPlan({"s": 0.3}, seed=11))
        assert first == decide(FaultPlan({"s": 0.3}, seed=11))
        assert any(first) and not all(first)
        assert first != decide(FaultPlan({"s": 0.3}, seed=12))

    def test_salt_shifts_the_schedule(self):
        plan_a = FaultPlan({"s": 0.3}, seed=5)
        plan_b = FaultPlan({"s": 0.3}, seed=5)
        a = [plan_a.should_fail("s", salt=0) for _ in range(50)]
        b = [plan_b.should_fail("s", salt=1) for _ in range(50)]
        assert a != b   # a respawned epoch draws a fresh schedule

    def test_explicit_indices_and_max_failures(self):
        plan = FaultPlan({"s": {"indices": [1, 2, 3], "max_failures": 2}})
        decisions = [plan.should_fail("s") for _ in range(5)]
        assert decisions == [False, True, True, False, False]

    def test_unknown_site_never_fails(self):
        plan = FaultPlan({"s": 1.0})
        assert not plan.should_fail("other")

    def test_fire_raises_and_counts(self):
        plan = FaultPlan({"s": {"indices": [0]}})
        with pytest.raises(InjectedFault) as excinfo:
            plan.fire("s")
        assert excinfo.value.site == "s"
        assert plan.stats()["sites"]["s"] == {"calls": 1, "injected": 1}
        assert COUNTERS.get("faults.injected") == 1
        assert COUNTERS.get("faults.s") == 1
        plan.fire("s")  # second call is scheduled clean

    def test_json_roundtrip(self):
        plan = FaultPlan({"worker": {"rate": 0.2, "mode": "crash"},
                          "cache.read": 0.1}, seed=7)
        clone = FaultPlan.from_json(plan.as_json())
        assert clone.seed == 7
        assert clone.sites == plan.sites

    def test_from_json_rejects_garbage(self):
        with pytest.raises(ValueError):
            FaultPlan.from_json(json.dumps({"seed": 1}))


class TestActivation:
    def test_no_plan_means_noop(self, monkeypatch):
        monkeypatch.delenv(FAULT_PLAN_ENV, raising=False)
        assert current_fault_plan() is None
        maybe_fail("anything")  # must be a no-op, not an error

    def test_lexical_activation_nests_and_restores(self):
        plan = FaultPlan({"s": {"indices": [0]}})
        assert current_fault_plan() is None
        with plan.active():
            assert current_fault_plan() is plan
            with pytest.raises(InjectedFault):
                maybe_fail("s")
        assert current_fault_plan() is None

    def test_env_activation_memoizes_counters(self, monkeypatch):
        raw = json.dumps({"seed": 1, "sites": {"s": {"indices": [0, 1]}}})
        monkeypatch.setenv(FAULT_PLAN_ENV, raw)
        plan = current_fault_plan()
        assert plan is not None
        with pytest.raises(InjectedFault):
            maybe_fail("s")
        # the counter advanced on the memoized instance, so the second
        # scheduled failure (index 1) fires on the *next* call
        assert current_fault_plan() is plan
        with pytest.raises(InjectedFault):
            maybe_fail("s")
        maybe_fail("s")  # index 2: clean

    def test_env_activation_from_file(self, tmp_path, monkeypatch):
        path = tmp_path / "plan.json"
        path.write_text(json.dumps(
            {"sites": {"s": {"indices": [0]}}}))
        monkeypatch.setenv(FAULT_PLAN_ENV, str(path))
        with pytest.raises(InjectedFault):
            maybe_fail("s")

    def test_env_garbage_is_ignored(self, monkeypatch):
        monkeypatch.setenv(FAULT_PLAN_ENV, "/nonexistent/plan.json")
        assert current_fault_plan() is None
        monkeypatch.setenv(FAULT_PLAN_ENV, "{not json")
        assert current_fault_plan() is None
