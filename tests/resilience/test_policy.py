"""Tests for retry policies, deadlines and error classification."""

from __future__ import annotations

import pickle

import pytest

from repro.resilience import (
    COUNTERS,
    Deadline,
    DeadlineExceededError,
    InjectedFault,
    PermanentError,
    RetryBudgetExceededError,
    RetryPolicy,
    TransientError,
    is_transient,
    register_transient,
    seeded_unit,
)


class TestClassification:
    def test_transient_base_types(self):
        assert is_transient(TransientError("substrate died"))
        assert is_transient(ConnectionError("refused"))
        assert is_transient(TimeoutError("hung"))
        assert is_transient(InjectedFault("worker"))

    def test_permanent_and_unknown(self):
        assert not is_transient(PermanentError("bad request"))
        assert not is_transient(ValueError("model bug"))

    def test_deadline_exceeded_is_permanent(self):
        """Retrying an expired budget cannot un-expire it."""
        assert not is_transient(DeadlineExceededError("sweep", 1.0))

    def test_register_transient_extends_the_classifier(self):
        class FlakySubstrateError(Exception):
            pass

        assert not is_transient(FlakySubstrateError())
        register_transient(FlakySubstrateError)
        assert is_transient(FlakySubstrateError())


class TestSeededUnit:
    def test_deterministic_and_uniform_range(self):
        draws = [seeded_unit("site", i) for i in range(200)]
        assert draws == [seeded_unit("site", i) for i in range(200)]
        assert all(0.0 <= d < 1.0 for d in draws)
        # not all equal; roughly spread over the unit interval
        assert len({round(d, 2) for d in draws}) > 50

    def test_token_sensitivity(self):
        assert seeded_unit("a", 0) != seeded_unit("a", 1)
        assert seeded_unit("a", 0) != seeded_unit("b", 0)


class TestDeadline:
    def test_infinite_deadline_never_expires(self):
        deadline = Deadline.none()
        assert deadline.remaining() == float("inf")
        assert not deadline.expired
        deadline.check("anything")  # does not raise

    def test_expiry_with_fake_clock(self):
        now = [0.0]
        deadline = Deadline(2.0, clock=lambda: now[0])
        assert deadline.remaining() == pytest.approx(2.0)
        now[0] = 1.5
        deadline.check("half way")
        now[0] = 2.5
        assert deadline.expired
        with pytest.raises(DeadlineExceededError, match="half-done sweep"):
            deadline.check("half-done sweep")

    def test_clip_bounds_subprocess_timeouts(self):
        now = [0.0]
        deadline = Deadline(10.0, clock=lambda: now[0])
        assert deadline.clip(300.0) == pytest.approx(10.0)
        assert deadline.clip(5.0) == pytest.approx(5.0)
        now[0] = 11.0
        assert deadline.clip(300.0) == 0.0

    def test_budget_must_be_positive(self):
        with pytest.raises(ValueError):
            Deadline(0.0)
        with pytest.raises(ValueError):
            Deadline(-1.0)


class TestRetryPolicy:
    def test_delay_is_deterministic_and_bounded(self):
        policy = RetryPolicy(max_attempts=6, base_delay=0.1, max_delay=1.0,
                             jitter=0.25, seed=3)
        delays = [policy.delay(a, key="k") for a in range(6)]
        assert delays == [policy.delay(a, key="k") for a in range(6)]
        for attempt, delay in enumerate(delays):
            raw = min(1.0, 0.1 * 2.0 ** attempt)
            assert 0.0 <= delay <= raw * 1.25
        # different keys draw different jitter streams
        assert delays != [policy.delay(a, key="other") for a in range(6)]

    def test_call_retries_transient_until_success(self):
        sleeps: list[float] = []
        attempts: list[int] = []

        def flaky(attempt: int):
            attempts.append(attempt)
            if attempt < 2:
                raise TransientError("substrate hiccup")
            return "ok"

        policy = RetryPolicy(max_attempts=4, base_delay=0.01)
        result = policy.call(flaky, key="t", sleep=sleeps.append)
        assert result == "ok"
        assert attempts == [0, 1, 2]
        assert len(sleeps) == 2
        assert COUNTERS.get("retries") == 2

    def test_call_propagates_permanent_immediately(self):
        calls = []

        def broken(attempt: int):
            calls.append(attempt)
            raise ValueError("deterministic model bug")

        policy = RetryPolicy(max_attempts=5)
        with pytest.raises(ValueError):
            policy.call(broken, sleep=lambda _: None)
        assert calls == [0]
        assert COUNTERS.get("retries") == 0

    def test_exhausted_budget_wraps_last_error(self):
        def always_down(attempt: int):
            raise TransientError(f"still down (attempt {attempt})")

        policy = RetryPolicy(max_attempts=3, base_delay=0.0)
        with pytest.raises(RetryBudgetExceededError) as excinfo:
            policy.call(always_down, what="probe", sleep=lambda _: None)
        assert excinfo.value.attempts == 3
        assert "attempt 2" in str(excinfo.value.last)

    def test_call_respects_deadline(self):
        now = [0.0]
        deadline = Deadline(1.0, clock=lambda: now[0])

        def down_forever(attempt: int):
            now[0] += 0.6    # each attempt burns over half the budget
            raise TransientError("down")

        policy = RetryPolicy(max_attempts=10, base_delay=0.0)
        with pytest.raises(DeadlineExceededError):
            policy.call(down_forever, deadline=deadline, sleep=lambda _: None)

    def test_single_attempt_policy(self):
        policy = RetryPolicy.none()
        with pytest.raises(RetryBudgetExceededError):
            policy.call(lambda a: (_ for _ in ()).throw(TransientError("x")),
                        sleep=lambda _: None)

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.5)


class TestInjectedFaultPickling:
    def test_roundtrip_keeps_fields(self):
        fault = InjectedFault("worker", 7)
        clone = pickle.loads(pickle.dumps(fault))
        assert isinstance(clone, InjectedFault)
        assert clone.site == "worker"
        assert clone.count == 7
        assert is_transient(clone)
