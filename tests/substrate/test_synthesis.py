"""Tests for the synthetic synthesiser."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ir import ScalarType
from repro.substrate import (
    CalibrationDataset,
    DesignNetlist,
    MAIA_STRATIX_V_GSD8,
    NetlistOperator,
    ResourceUsage,
    SMALL_EDU_DEVICE,
    SyntheticSynthesizer,
)


@pytest.fixture
def synth():
    return SyntheticSynthesizer(MAIA_STRATIX_V_GSD8)


class TestResourceUsage:
    def test_add(self):
        a = ResourceUsage(alut=10, reg=20, bram_bits=100, dsp=1)
        b = ResourceUsage(alut=5, reg=5, bram_bits=50, dsp=2)
        c = a + b
        assert (c.alut, c.reg, c.bram_bits, c.dsp) == (15, 25, 150, 3)

    def test_iadd_and_scale(self):
        a = ResourceUsage(alut=10)
        a += ResourceUsage(alut=3, dsp=1)
        assert a.alut == 13 and a.dsp == 1
        assert a.scaled(4).alut == 52

    def test_utilization_and_fits(self):
        usage = ResourceUsage(alut=2000, reg=4000, bram_bits=500_000, dsp=16)
        util = usage.utilization(SMALL_EDU_DEVICE)
        assert util["alut"] == pytest.approx(0.5)
        assert usage.fits(SMALL_EDU_DEVICE)
        big = usage.scaled(3)
        assert not big.fits(SMALL_EDU_DEVICE)
        name, frac = big.limiting_resource(SMALL_EDU_DEVICE)
        assert name in ("alut", "bram_bits", "dsp", "reg")
        assert frac > 1.0

    def test_as_dict_and_str(self):
        usage = ResourceUsage(alut=1, reg=2, bram_bits=3, dsp=4)
        assert usage.as_dict() == {"alut": 1, "reg": 2, "bram_bits": 3, "dsp": 4}
        assert "ALUT=1" in str(usage)


class TestOperatorMapping:
    def test_divider_follows_paper_trendline(self, synth):
        # Figure 9: ALUTs for unsigned integer division follow x^2 + 3.7x - 10.6;
        # at 24 bits the paper interpolates 654 and measures 652.
        usage = synth.synthesize_operator("div", ScalarType.uint(24), perturb=False)
        expected = 24 * 24 + 3.7 * 24 - 10.6
        assert usage.alut == pytest.approx(expected, abs=1)
        assert usage.dsp == 0

    def test_divider_perturbed_close_to_trendline(self, synth):
        usage = synth.synthesize_operator("div", ScalarType.uint(24))
        assert usage.alut == pytest.approx(654, rel=0.05)

    def test_divider_grows_quadratically(self, synth):
        a = synth.synthesize_operator("div", ScalarType.uint(18), perturb=False).alut
        b = synth.synthesize_operator("div", ScalarType.uint(64), perturb=False).alut
        assert b / a > 8  # quadratic, not linear

    def test_multiplier_uses_dsp_steps(self, synth):
        u18 = synth.synthesize_operator("mul", ScalarType.uint(18), perturb=False)
        u32 = synth.synthesize_operator("mul", ScalarType.uint(32), perturb=False)
        u64 = synth.synthesize_operator("mul", ScalarType.uint(64), perturb=False)
        assert u18.dsp == 1
        assert u32.dsp == 2
        assert u64.dsp == 8
        # ALUT glue is piecewise linear and modest (order of the width)
        assert u64.alut < 100

    def test_narrow_multiplier_avoids_dsp(self, synth):
        u8 = synth.synthesize_operator("mul", ScalarType.uint(8), perturb=False)
        assert u8.dsp == 0
        assert u8.alut > 0

    def test_constant_multiplier_avoids_dsp(self, synth):
        u18 = synth.synthesize_operator("mul", ScalarType.uint(18), constant_operand=True,
                                        perturb=False)
        assert u18.dsp == 0
        assert u18.alut == pytest.approx(27, abs=1)

    def test_adder_linear_in_width(self, synth):
        a16 = synth.synthesize_operator("add", ScalarType.uint(16), perturb=False)
        a32 = synth.synthesize_operator("add", ScalarType.uint(32), perturb=False)
        assert a32.alut == 2 * a16.alut
        assert a16.dsp == 0

    def test_logic_and_shift(self, synth):
        logic = synth.synthesize_operator("and", ScalarType.uint(32), perturb=False)
        assert logic.alut == 16
        shl_const = synth.synthesize_operator("shl", ScalarType.uint(32), constant_operand=True,
                                              perturb=False)
        assert shl_const.alut == 0
        shl_var = synth.synthesize_operator("shl", ScalarType.uint(32), perturb=False)
        assert shl_var.alut > 0

    def test_float_ops(self, synth):
        fadd = synth.synthesize_operator("fadd", ScalarType.float_(32), perturb=False)
        fmul = synth.synthesize_operator("fmul", ScalarType.float_(32), perturb=False)
        assert fadd.alut > 500
        assert fmul.dsp >= 1
        fexp = synth.synthesize_operator("fexp", ScalarType.float_(32), perturb=False)
        assert fexp.bram_bits > 0

    def test_unknown_opcode_rejected(self, synth):
        with pytest.raises(ValueError):
            synth.synthesize_operator("bogus", ScalarType.uint(32))

    def test_determinism(self, synth):
        a = synth.synthesize_operator("mul", ScalarType.uint(24))
        b = SyntheticSynthesizer(MAIA_STRATIX_V_GSD8).synthesize_operator(
            "mul", ScalarType.uint(24)
        )
        assert a == b

    def test_device_specific_noise(self):
        a = SyntheticSynthesizer(MAIA_STRATIX_V_GSD8).synthesize_operator(
            "div", ScalarType.uint(32)
        )
        b = SyntheticSynthesizer(SMALL_EDU_DEVICE).synthesize_operator(
            "div", ScalarType.uint(32)
        )
        # same functional form, slightly different tool outcomes
        assert a.alut != b.alut
        assert abs(a.alut - b.alut) / a.alut < 0.2

    @given(width=st.integers(min_value=2, max_value=128))
    @settings(max_examples=30, deadline=None)
    def test_all_resources_nonnegative(self, width):
        synth = SyntheticSynthesizer(MAIA_STRATIX_V_GSD8)
        for opcode in ("add", "mul", "div", "and", "icmp", "select", "shl"):
            usage = synth.synthesize_operator(opcode, ScalarType.uint(width))
            assert usage.alut >= 0
            assert usage.reg >= 0
            assert usage.dsp >= 0
            assert usage.bram_bits >= 0


class TestBuffersAndStreams:
    def test_small_buffer_in_registers(self, synth):
        usage = synth.synthesize_offset_buffer(18)
        assert usage.bram_bits == 0
        assert usage.reg == 18

    def test_large_buffer_in_bram(self, synth):
        usage = synth.synthesize_offset_buffer(10_368)  # 576 x ui18
        assert usage.bram_bits == 10_368
        assert usage.reg < 100

    def test_zero_buffer(self, synth):
        assert synth.synthesize_offset_buffer(0) == ResourceUsage()

    def test_stream_control_scales_with_streams(self, synth):
        one = synth.synthesize_stream_control(1, element_width=18)
        four = synth.synthesize_stream_control(4, element_width=18)
        assert four.alut == pytest.approx(4 * one.alut)
        assert synth.synthesize_stream_control(0) == ResourceUsage()


class TestDesignSynthesis:
    def _netlist(self, lanes=1):
        ui18 = ScalarType.uint(18)
        ops = [
            NetlistOperator("mul", ui18, constant_operand=True),
            NetlistOperator("mul", ui18, constant_operand=True),
            NetlistOperator("add", ui18),
            NetlistOperator("add", ui18),
            NetlistOperator("sub", ui18),
        ]
        return DesignNetlist(
            operators=ops,
            offset_buffer_bits=[18, 10_368],
            input_streams=3,
            output_streams=1,
            lanes=lanes,
            name="test-design",
        )

    def test_design_totals_scale_with_lanes(self, synth):
        one = synth.synthesize_design(self._netlist(lanes=1))
        four = synth.synthesize_design(self._netlist(lanes=4))
        assert four.alut == pytest.approx(4 * one.alut, rel=0.05)
        assert four.bram_bits == pytest.approx(4 * one.bram_bits, rel=0.05)

    def test_design_is_deterministic(self, synth):
        a = synth.synthesize_design(self._netlist())
        b = SyntheticSynthesizer(MAIA_STRATIX_V_GSD8).synthesize_design(self._netlist())
        assert a == b

    def test_balancing_registers_counted(self, synth):
        base = self._netlist()
        with_regs = self._netlist()
        with_regs.balancing_register_bits = 500
        a = synth.synthesize_design(base)
        b = synth.synthesize_design(with_regs)
        assert b.reg > a.reg

    def test_dsp_remap_possible(self):
        """Across many distinct designs with DSP multiplies, the tool
        occasionally re-maps some to LUTs (as real tools do)."""
        ui32 = ScalarType.uint(32)
        synth = SyntheticSynthesizer(MAIA_STRATIX_V_GSD8)
        dsp_counts = []
        for i in range(40):
            netlist = DesignNetlist(
                operators=[NetlistOperator("mul", ui32) for _ in range(5)],
                input_streams=2,
                output_streams=1,
                name=f"design-{i}",
            )
            dsp_counts.append(synth.synthesize_design(netlist).dsp)
        assert max(dsp_counts) == 10
        assert min(dsp_counts) < 10  # at least one design saw a remap


class TestCharacterization:
    def test_characterize_default(self, synth):
        ds = synth.characterize()
        assert ds.device_name == MAIA_STRATIX_V_GSD8.name
        assert len(ds) > 20
        assert "div" in ds.opcodes()
        div_points = ds.for_opcode("div")
        assert sorted(p.width for p in div_points) == [18, 32, 64]

    def test_characterize_constant_variants(self, synth):
        ds = synth.characterize(opcodes=["mul"], widths=[18, 32])
        assert len(ds.for_opcode("mul", constant_operand=False)) == 2
        assert len(ds.for_opcode("mul", constant_operand=True)) == 2

    def test_dataset_serialization_roundtrip(self, synth):
        ds = synth.characterize(opcodes=["div", "mul"], widths=[18, 32, 64])
        data = ds.as_dict()
        back = CalibrationDataset.from_dict(data)
        assert back.device_name == ds.device_name
        assert len(back) == len(ds)
        assert back.for_opcode("div")[0].usage.alut == ds.for_opcode("div")[0].usage.alut
