"""Tests for the pipeline simulator, power model and baselines."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.substrate import (
    BaselineHLSFlow,
    CPUModel,
    HLSKernelCharacteristics,
    MAIA_STRATIX_V_GSD8,
    MemorySystemSimulator,
    NodePowerModel,
    PipelineSimulator,
    PipelineSpec,
    ResourceUsage,
)


def make_spec(**kwargs):
    defaults = dict(
        name="sor",
        lanes=1,
        vectorization=1,
        pipeline_depth=25,
        instructions=19,
        cycles_per_instruction=1,
        offset_fill_words=576,
        input_words_per_item=9,
        output_words_per_item=2,
        element_bytes=4,
        clock_mhz=200.0,
    )
    defaults.update(kwargs)
    return PipelineSpec(**defaults)


class TestPipelineSpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            make_spec(lanes=0)
        with pytest.raises(ValueError):
            make_spec(pipeline_depth=0)
        with pytest.raises(ValueError):
            make_spec(clock_mhz=0)

    def test_ideal_rate(self):
        assert make_spec(lanes=4).ideal_items_per_cycle == 4.0
        folded = make_spec(cycles_per_instruction=4, instructions=10)
        assert folded.ideal_items_per_cycle == pytest.approx(1 / 40)

    def test_words_per_item(self):
        assert make_spec().words_per_item == 11


class TestPipelineSimulator:
    def test_compute_bound_cycles(self):
        sim = PipelineSimulator()
        spec = make_spec(offset_fill_words=0)
        res = sim.run_kernel_instance(spec, 10_000)
        # unconstrained memory: one item per cycle plus pipeline fill
        assert res.cycles == 10_000 + spec.pipeline_depth
        assert res.limited_by == "compute"
        assert res.stall_cycles == 0
        assert res.cycles_per_kernel_instance == res.cycles

    def test_lanes_divide_cycles(self):
        sim = PipelineSimulator()
        one = sim.run_kernel_instance(make_spec(offset_fill_words=0), 40_000)
        four = sim.run_kernel_instance(make_spec(offset_fill_words=0, lanes=4), 40_000)
        assert one.cycles / four.cycles == pytest.approx(4.0, rel=0.01)

    def test_offset_fill_adds_cycles(self):
        sim = PipelineSimulator()
        without = sim.run_kernel_instance(make_spec(offset_fill_words=0), 1000)
        with_off = sim.run_kernel_instance(make_spec(offset_fill_words=576), 1000)
        assert with_off.cycles - without.cycles == pytest.approx(576, abs=2)

    def test_memory_bound_when_bandwidth_low(self):
        sim = PipelineSimulator()
        spec = make_spec(offset_fill_words=0)
        # 11 words * 4 B per item at 200 MHz needs 8.8 GB/s; give it far less
        res = sim.run_kernel_instance(spec, 10_000, memory_gbps=1.0)
        assert res.limited_by == "memory"
        assert res.stall_cycles > 0
        assert res.cycles > 10_000 + spec.pipeline_depth

    def test_memory_bandwidth_from_simulator_default(self):
        sim = PipelineSimulator(MemorySystemSimulator(MAIA_STRATIX_V_GSD8))
        res = sim.run_kernel_instance(make_spec(offset_fill_words=0), 10_000)
        assert res.cycles >= 10_000

    def test_invalid_items(self):
        with pytest.raises(ValueError):
            PipelineSimulator().run_kernel_instance(make_spec(), 0)

    def test_cycle_accurate_agrees_with_analytic(self):
        sim = PipelineSimulator()
        spec = make_spec(offset_fill_words=64, lanes=2)
        analytic = sim.run_kernel_instance(spec, 2000)
        stepped = sim.run_kernel_instance(spec, 2000, cycle_accurate=True)
        assert stepped.cycles == pytest.approx(analytic.cycles, abs=spec.pipeline_depth + 4)

    def test_cycle_accurate_memory_bound_agrees(self):
        sim = PipelineSimulator()
        spec = make_spec(offset_fill_words=0)
        analytic = sim.run_kernel_instance(spec, 1500, memory_gbps=2.0)
        stepped = sim.run_kernel_instance(spec, 1500, memory_gbps=2.0, cycle_accurate=True)
        assert stepped.cycles == pytest.approx(analytic.cycles, rel=0.05)

    def test_run_application_scales_with_repetitions(self):
        sim = PipelineSimulator()
        total, one = sim.run_application(make_spec(), 10_000, repetitions=10,
                                         per_instance_overhead_s=1e-4)
        assert total == pytest.approx(10 * (one.seconds + 1e-4))

    @given(
        items=st.integers(min_value=1, max_value=100_000),
        lanes=st.integers(min_value=1, max_value=16),
        depth=st.integers(min_value=1, max_value=100),
    )
    @settings(max_examples=40, deadline=None)
    def test_cycles_at_least_items_over_lanes(self, items, lanes, depth):
        sim = PipelineSimulator()
        spec = make_spec(lanes=lanes, pipeline_depth=depth, offset_fill_words=0)
        res = sim.run_kernel_instance(spec, items)
        assert res.cycles >= items / lanes
        assert res.cycles >= depth
        assert res.seconds == pytest.approx(res.cycles / spec.clock_hz)


class TestPowerModel:
    def test_cpu_energy(self):
        pm = NodePowerModel()
        rep = pm.cpu_energy("cpu", runtime_s=10.0)
        assert rep.delta_power_w == pytest.approx(pm.cpu_active_w - pm.cpu_idle_w)
        assert rep.delta_energy_j == pytest.approx(rep.delta_power_w * 10.0)

    def test_fpga_energy_lower_power_than_cpu(self):
        pm = NodePowerModel()
        usage = ResourceUsage(alut=50_000, reg=80_000, bram_bits=2_000_000, dsp=100)
        fpga = pm.fpga_energy("fpga", 10.0, usage, MAIA_STRATIX_V_GSD8)
        cpu = pm.cpu_energy("cpu", 10.0)
        assert fpga.delta_power_w < cpu.delta_power_w

    def test_dynamic_power_scales_with_resources(self):
        pm = NodePowerModel()
        small = pm.fpga_dynamic_power(ResourceUsage(alut=1000))
        big = pm.fpga_dynamic_power(ResourceUsage(alut=100_000))
        assert big > small

    def test_report_dict(self):
        rep = NodePowerModel().cpu_energy("x", 1.0)
        d = rep.as_dict()
        assert d["label"] == "x"
        assert d["delta_energy_j"] > 0


class TestCPUModel:
    def test_compute_bound_small_grid(self):
        cpu = CPUModel()
        est = cpu.estimate_iteration(n_items=24**3, ops_per_item=20, bytes_per_item=44)
        assert est.bound == "compute"
        assert est.seconds > 0

    def test_memory_bound_large_grid(self):
        cpu = CPUModel(ops_per_cycle=8.0)  # very fast core -> memory bound
        est = cpu.estimate_iteration(n_items=192**3, ops_per_item=5, bytes_per_item=44)
        assert est.bound == "memory"

    def test_cache_resident_faster(self):
        cpu = CPUModel()
        n = 10_000
        in_cache = cpu.estimate_iteration(n, 2, 44, working_set_bytes=1 << 20)
        out_cache = cpu.estimate_iteration(n, 2, 44, working_set_bytes=1 << 30)
        assert in_cache.memory_seconds < out_cache.memory_seconds

    def test_application_scales_with_iterations(self):
        cpu = CPUModel()
        one = cpu.estimate_application(1000, 20, 44, iterations=1)
        thousand = cpu.estimate_application(1000, 20, 44, iterations=1000)
        assert thousand == pytest.approx(1000 * one)

    def test_validation(self):
        with pytest.raises(ValueError):
            CPUModel().estimate_iteration(0, 1, 1)
        with pytest.raises(ValueError):
            CPUModel().estimate_application(10, 1, 1, iterations=0)


class TestBaselineHLS:
    def _kernel(self):
        return HLSKernelCharacteristics(
            name="sor",
            operations_per_item=19,
            input_words_per_item=9,
            output_words_per_item=2,
            element_bytes=4,
            dataflow_depth=20,
            max_offset_span_words=576,
        )

    def test_pipeline_is_single_lane_and_deeper(self):
        flow = BaselineHLSFlow(MAIA_STRATIX_V_GSD8)
        spec = flow.build_pipeline_spec(self._kernel())
        assert spec.lanes == 1
        assert spec.pipeline_depth > 20
        assert spec.clock_mhz < MAIA_STRATIX_V_GSD8.fmax_mhz

    def test_runtime_scales_with_iterations(self):
        flow = BaselineHLSFlow(MAIA_STRATIX_V_GSD8)
        t10, _ = flow.estimate_runtime(self._kernel(), 24**3, iterations=10)
        t1000, _ = flow.estimate_runtime(self._kernel(), 24**3, iterations=1000)
        assert t1000 > 50 * t10

    def test_call_overhead_grows_with_streams(self):
        flow = BaselineHLSFlow(MAIA_STRATIX_V_GSD8)
        assert flow.call_overhead(self._kernel(), streams=22) > flow.call_overhead(
            self._kernel(), streams=11
        )

    def test_estimate_report_time_order_of_a_minute(self):
        flow = BaselineHLSFlow(MAIA_STRATIX_V_GSD8)
        t = flow.estimate_report_time(19)
        assert 55 <= t <= 90
