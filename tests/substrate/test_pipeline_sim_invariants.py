"""Invariants of the pipeline simulator's two execution modes.

These tests pin the reconciled fill/stall accounting and the documented
agreement invariant — analytic and cycle-stepping mode agree within one
pipeline depth (plus a few cycles of phase-boundary rounding) across
lanes x offsets x memory rates — together with the divergence guard, the
``cycle_accurate`` threading through ``run_application`` and the
separate offset-priming rate used by the cross-validation subsystem.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.substrate import (
    CYCLE_AGREEMENT_SLACK,
    PipelineSimulator,
    PipelineSpec,
    SimulationDivergedError,
)


def make_spec(**kwargs):
    defaults = dict(
        name="spec",
        lanes=1,
        vectorization=1,
        pipeline_depth=25,
        instructions=19,
        cycles_per_instruction=1,
        offset_fill_words=576,
        input_words_per_item=9,
        output_words_per_item=2,
        element_bytes=4,
        clock_mhz=200.0,
    )
    defaults.update(kwargs)
    return PipelineSpec(**defaults)


class TestDivergenceGuard:
    def test_truncation_raises_instead_of_returning_wrong_cycles(self):
        sim = PipelineSimulator()
        with pytest.raises(SimulationDivergedError) as exc:
            sim.run_kernel_instance(make_spec(), 5000, cycle_accurate=True,
                                    max_cycles=10)
        assert exc.value.cycles == 10
        assert exc.value.retired == 0
        assert exc.value.n_items == 5000
        assert "diverged" in str(exc.value)

    def test_default_bound_never_trips_on_slow_memory(self):
        # a very slow but well-formed stream: the bound scales with the
        # analytic expectation, so it must not trip
        sim = PipelineSimulator()
        res = sim.run_kernel_instance(make_spec(offset_fill_words=64), 200,
                                      memory_gbps=0.05, cycle_accurate=True)
        assert res.cycles > 200

    def test_memory_gbps_must_be_positive(self):
        sim = PipelineSimulator()
        with pytest.raises(ValueError, match="memory_gbps"):
            sim.run_kernel_instance(make_spec(), 100, memory_gbps=0.0)
        with pytest.raises(ValueError, match="fill_memory_gbps"):
            sim.run_kernel_instance(make_spec(), 100, fill_memory_gbps=-1.0)


class TestRunApplication:
    def test_threads_cycle_accurate_through(self):
        sim = PipelineSimulator()
        spec = make_spec(offset_fill_words=64, lanes=2)
        _, analytic = sim.run_application(spec, 1000, repetitions=3)
        _, stepped = sim.run_application(spec, 1000, repetitions=3,
                                         cycle_accurate=True)
        # the stepping mode quantises phase boundaries, so the counts are
        # close but (in general) not equal: proof the flag took effect is
        # that both satisfy the agreement invariant and the totals scale
        assert abs(stepped.cycles - analytic.cycles) <= spec.pipeline_depth
        total, one = sim.run_application(spec, 1000, repetitions=7,
                                         per_instance_overhead_s=1e-4,
                                         cycle_accurate=True)
        assert total == pytest.approx(7 * (one.seconds + 1e-4))

    def test_threads_fill_rate_through(self):
        sim = PipelineSimulator()
        spec = make_spec(offset_fill_words=512)
        _, fast_fill = sim.run_application(spec, 1000, repetitions=1)
        _, slow_fill = sim.run_application(spec, 1000, repetitions=1,
                                           fill_memory_gbps=0.1)
        assert slow_fill.fill_cycles > fast_fill.fill_cycles


class TestFillRate:
    def test_separate_fill_rate_slows_priming_only(self):
        sim = PipelineSimulator()
        spec = make_spec(offset_fill_words=512, lanes=4)
        base = sim.run_kernel_instance(spec, 4000)
        slow = sim.run_kernel_instance(spec, 4000, fill_memory_gbps=0.2)
        # 0.2 GB/s at 200 MHz and 4-byte words is 0.25 words/cycle
        assert slow.fill_cycles - spec.pipeline_depth == math.ceil(512 / 0.25)
        # the steady state is untouched
        assert (slow.cycles - slow.fill_cycles) == (base.cycles - base.fill_cycles)

    def test_fill_rate_applies_to_both_modes(self):
        sim = PipelineSimulator()
        spec = make_spec(offset_fill_words=256, lanes=2)
        analytic = sim.run_kernel_instance(spec, 500, memory_gbps=4.0,
                                           fill_memory_gbps=0.5)
        stepped = sim.run_kernel_instance(spec, 500, memory_gbps=4.0,
                                          fill_memory_gbps=0.5,
                                          cycle_accurate=True)
        assert abs(analytic.fill_cycles - stepped.fill_cycles) <= 2
        assert abs(analytic.cycles - stepped.cycles) <= spec.pipeline_depth


class TestReconciledAccounting:
    def test_fill_cycles_include_depth_in_both_modes(self):
        sim = PipelineSimulator()
        spec = make_spec(offset_fill_words=128, lanes=2)
        analytic = sim.run_kernel_instance(spec, 1000)
        stepped = sim.run_kernel_instance(spec, 1000, cycle_accurate=True)
        expected_fill = math.ceil(128 / 2) + spec.pipeline_depth
        assert analytic.fill_cycles == expected_fill
        assert stepped.fill_cycles == expected_fill

    def test_stall_definition_shared(self):
        """stalls = cycles - fill_cycles - ceil(items / ideal rate)."""
        sim = PipelineSimulator()
        spec = make_spec(offset_fill_words=0)
        for cycle_accurate in (False, True):
            res = sim.run_kernel_instance(spec, 1500, memory_gbps=2.0,
                                          cycle_accurate=cycle_accurate)
            ideal = math.ceil(1500 / spec.ideal_items_per_cycle)
            assert res.stall_cycles == res.cycles - res.fill_cycles - ideal

    def test_compute_bound_has_no_stalls_in_either_mode(self):
        sim = PipelineSimulator()
        spec = make_spec(offset_fill_words=0, lanes=4)
        for cycle_accurate in (False, True):
            res = sim.run_kernel_instance(spec, 2000, cycle_accurate=cycle_accurate)
            assert res.stall_cycles <= CYCLE_AGREEMENT_SLACK
            assert res.limited_by == "compute"


class TestModeAgreement:
    @given(
        items=st.integers(min_value=1, max_value=2000),
        lanes=st.integers(min_value=1, max_value=8),
        depth=st.integers(min_value=1, max_value=64),
        offset=st.integers(min_value=0, max_value=300),
        in_words=st.integers(min_value=1, max_value=8),
        out_words=st.integers(min_value=1, max_value=4),
        cpi=st.integers(min_value=1, max_value=3),
        instructions=st.integers(min_value=1, max_value=16),
        memory_gbps=st.one_of(st.none(), st.floats(min_value=1.0, max_value=64.0)),
        fill_gbps=st.one_of(st.none(), st.floats(min_value=1.0, max_value=64.0)),
    )
    @settings(max_examples=80, deadline=None)
    def test_modes_agree_within_depth_plus_issue_interval(
        self, items, lanes, depth, offset, in_words, out_words, cpi,
        instructions, memory_gbps, fill_gbps
    ):
        """The documented invariant, across lanes x offsets x memory rates
        x issue intervals.  For the fully pipelined specs the compiler
        schedules (``cycles_per_instruction == 1``) the issue-interval
        term is a single cycle, i.e. agreement within one pipeline depth;
        a time-multiplexed spec issues in bursts, which quantises the
        drain by up to one issue interval."""
        spec = make_spec(
            lanes=lanes,
            pipeline_depth=depth,
            offset_fill_words=offset,
            input_words_per_item=in_words,
            output_words_per_item=out_words,
            cycles_per_instruction=cpi,
            instructions=instructions,
        )
        sim = PipelineSimulator()
        analytic = sim.run_kernel_instance(spec, items, memory_gbps,
                                           fill_memory_gbps=fill_gbps)
        stepped = sim.run_kernel_instance(spec, items, memory_gbps,
                                          fill_memory_gbps=fill_gbps,
                                          cycle_accurate=True)
        gap = abs(analytic.cycles - stepped.cycles)
        assert gap <= depth + spec.issue_interval_cycles - 1 + CYCLE_AGREEMENT_SLACK
        assert analytic.limited_by == stepped.limited_by
        assert abs(analytic.fill_cycles - stepped.fill_cycles) <= 2
