"""Tests for the DRAM + PCIe memory-system simulator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.models.streaming import AccessPattern, PatternKind
from repro.substrate import (
    DRAMConfig,
    MemorySystemSimulator,
    PCIeConfig,
    VIRTEX7_ADM_PCIE_7V3,
)


@pytest.fixture
def sim():
    # default configs: the "baseline figures without vendor-recommended
    # optimisations" setup of Figure 10
    return MemorySystemSimulator()


class TestConfigs:
    def test_dram_peak(self):
        cfg = DRAMConfig()
        assert cfg.peak_gbps == pytest.approx(12.8)
        assert cfg.effective_peak_gbps == pytest.approx(6.4)
        assert cfg.row_miss_penalty_ns > 0

    def test_pcie_rates(self):
        gen2x8 = PCIeConfig(gen=2, lanes=8)
        gen3x8 = PCIeConfig(gen=3, lanes=8)
        assert gen2x8.raw_gbps == pytest.approx(4.0)
        assert gen3x8.raw_gbps == pytest.approx(7.88)
        assert gen2x8.effective_gbps < gen2x8.raw_gbps

    def test_pcie_for_device(self):
        cfg = PCIeConfig.for_device(VIRTEX7_ADM_PCIE_7V3)
        assert cfg.gen == 3 and cfg.lanes == 8

    def test_pcie_rejects_unknown_generation(self):
        # a bare KeyError out of raw_gbps used to be the only diagnostic
        with pytest.raises(ValueError, match=r"unsupported PCIe generation 5.*\[1, 2, 3, 4\]"):
            PCIeConfig(gen=5)
        with pytest.raises(ValueError, match="unsupported PCIe generation 0"):
            PCIeConfig(gen=0)

    def test_pcie_rejects_non_positive_lanes(self):
        with pytest.raises(ValueError, match="lanes"):
            PCIeConfig(gen=2, lanes=0)


class TestDRAMStreams:
    def test_zero_elements(self, sim):
        assert sim.dram_stream_time(0) == 0.0

    def test_contiguous_large_approaches_plateau(self, sim):
        gbps = sim.dram_sustained_gbps(36_000_000, 4)  # 144 MB
        assert gbps == pytest.approx(sim.dram.effective_peak_gbps, rel=0.05)

    def test_contiguous_small_dominated_by_setup(self, sim):
        gbps = sim.dram_sustained_gbps(10_000, 4)  # 40 KB
        assert gbps < 0.5

    def test_strided_two_orders_of_magnitude_lower(self, sim):
        contiguous = sim.dram_sustained_gbps(4_000_000, 4)
        strided = sim.dram_sustained_gbps(
            4_000_000, 4, AccessPattern.strided(2000, 4)
        )
        assert contiguous / strided > 50

    def test_strided_roughly_independent_of_stride(self, sim):
        small = sim.dram_sustained_gbps(1_000_000, 4, AccessPattern.strided(500, 4))
        large = sim.dram_sustained_gbps(1_000_000, 4, AccessPattern.strided(50_000, 4))
        assert 0.02 < small < 0.12
        assert 0.02 < large < 0.12

    def test_random_costed_like_large_stride(self, sim):
        rnd = sim.dram_sustained_gbps(1_000_000, 4, AccessPattern.random(4))
        strided = sim.dram_sustained_gbps(1_000_000, 4, AccessPattern.strided(100_000, 4))
        assert rnd == pytest.approx(strided, rel=0.3)

    @given(n=st.integers(min_value=1, max_value=10_000_000))
    @settings(max_examples=25, deadline=None)
    def test_time_is_monotone_in_size(self, n):
        sim = MemorySystemSimulator()
        t1 = sim.dram_stream_time(n, 4)
        t2 = sim.dram_stream_time(n + 1000, 4)
        assert t2 >= t1 > 0


class TestHostTransfers:
    def test_zero_bytes(self, sim):
        assert sim.host_transfer_time(0) == 0.0

    def test_large_transfer_near_effective_peak(self, sim):
        gbps = sim.host_sustained_gbps(1 << 30)
        assert gbps == pytest.approx(sim.pcie.effective_gbps, rel=0.05)

    def test_small_transfer_dominated_by_setup(self, sim):
        gbps = sim.host_sustained_gbps(4096)
        assert gbps < 0.5

    def test_setup_can_be_excluded(self, sim):
        with_setup = sim.host_transfer_time(1 << 20)
        without = sim.host_transfer_time(1 << 20, include_setup=False)
        assert with_setup > without


class TestStreamBenchmark:
    def test_figure10_contiguous_shape(self, sim):
        """Contiguous sustained bandwidth rises with size and plateaus."""
        sides = [100, 500, 1000, 2000, 4000, 6000]
        values = [
            sim.stream_benchmark(s, 4, PatternKind.CONTIGUOUS).sustained_gbps for s in sides
        ]
        assert all(b > a * 0.99 for a, b in zip(values, values[1:]))  # non-decreasing
        assert values[0] < 0.5                      # ~0.3 GB/s at 100x100
        assert values[-1] == pytest.approx(6.3, rel=0.1)  # ~6.3 GB/s plateau
        # plateau: beyond 1000x1000 the gain is small
        assert values[-1] / values[3] < 1.25

    def test_figure10_strided_flat_and_low(self, sim):
        sides = [100, 1000, 3000, 6000]
        values = [
            sim.stream_benchmark(s, 4, PatternKind.STRIDED).sustained_gbps for s in sides
        ]
        assert all(0.02 < v < 0.12 for v in values)

    def test_contiguity_impact_two_orders_of_magnitude(self, sim):
        cont = sim.stream_benchmark(4000, 4, PatternKind.CONTIGUOUS).sustained_gbps
        strided = sim.stream_benchmark(4000, 4, PatternKind.STRIDED).sustained_gbps
        assert cont / strided > 60

    def test_suite_covers_both_patterns(self, sim):
        suite = sim.run_stream_suite(sides=(100, 1000))
        assert len(suite) == 4
        kinds = {(m.pattern, m.elements) for m in suite}
        assert (PatternKind.CONTIGUOUS, 10_000) in kinds
        assert (PatternKind.STRIDED, 1_000_000) in kinds

    def test_measurement_asdict(self, sim):
        m = sim.stream_benchmark(100, 4, PatternKind.CONTIGUOUS)
        d = m.as_dict()
        assert d["elements"] == 10_000
        assert d["pattern"] == "contiguous"
        assert d["sustained_gbps"] > 0

    def test_invalid_side(self, sim):
        with pytest.raises(ValueError):
            sim.stream_benchmark(0)

    def test_device_scaled_simulator(self):
        sim = MemorySystemSimulator(VIRTEX7_ADM_PCIE_7V3)
        assert sim.dram.effective_peak_gbps == pytest.approx(
            VIRTEX7_ADM_PCIE_7V3.dram_peak_gbps * sim.dram.interface_efficiency, rel=0.01
        )
