"""Tests for the FPGA device catalogue."""

import pytest

from repro.models import AddressSpace
from repro.substrate import (
    DEVICES,
    MAIA_STRATIX_V_GSD8,
    SMALL_EDU_DEVICE,
    VIRTEX7_ADM_PCIE_7V3,
    FPGADevice,
    get_device,
)


class TestCatalogue:
    def test_known_devices_present(self):
        assert "maia-stratix-v-gsd8" in DEVICES
        assert "adm-pcie-7v3-virtex7" in DEVICES
        assert "small-edu-device" in DEVICES

    def test_aliases(self):
        assert get_device("stratix-v") is MAIA_STRATIX_V_GSD8
        assert get_device("virtex-7") is VIRTEX7_ADM_PCIE_7V3
        assert get_device("small") is SMALL_EDU_DEVICE

    def test_unknown_device(self):
        with pytest.raises(KeyError, match="unknown device"):
            get_device("ghost-device")

    def test_maia_is_case_study_board(self):
        d = MAIA_STRATIX_V_GSD8
        assert d.vendor == "altera"
        assert d.family == "stratix-v"
        assert d.info["logic_elements"] == 695_000
        assert d.pcie_gen == 2 and d.pcie_lanes == 8
        assert d.dram_bytes == 48 << 30

    def test_virtex_is_bandwidth_board(self):
        d = VIRTEX7_ADM_PCIE_7V3
        assert d.vendor == "xilinx"
        assert d.pcie_gen == 3

    def test_small_device_is_small(self):
        assert SMALL_EDU_DEVICE.aluts < MAIA_STRATIX_V_GSD8.aluts / 10


class TestFPGADevice:
    def test_validation(self):
        with pytest.raises(ValueError):
            FPGADevice(
                name="bad", family="x", vendor="y",
                aluts=0, registers=1, bram_bits=1, dsps=1,
            )

    def test_resource_capacities_keys(self):
        caps = MAIA_STRATIX_V_GSD8.resource_capacities()
        assert set(caps) == {"alut", "reg", "bram_bits", "dsp"}
        assert all(v > 0 for v in caps.values())

    def test_memory_hierarchy(self):
        h = MAIA_STRATIX_V_GSD8.memory_hierarchy()
        assert h.global_memory.capacity_bytes == 48 << 30
        assert h.local_memory.capacity_bytes == MAIA_STRATIX_V_GSD8.bram_bits // 8
        assert h.host_link_peak_gbps == MAIA_STRATIX_V_GSD8.host_peak_gbps
        assert AddressSpace.CONSTANT in h

    def test_clock_hz(self):
        assert MAIA_STRATIX_V_GSD8.clock_hz == pytest.approx(200e6)
