"""Golden Verilog snapshots + structural lint for every kernel.

The snapshot pins the full emitted surface (kernel pipelines, compute
unit, configuration include, seeded testbench) so any codegen change
shows up as a reviewable text diff; the structural lint holds every
generated file to legal identifiers, balanced ``begin``/``end`` and
declared-before-use wires.  Re-record after an intentional change with::

    PYTHONPATH=src python -c \\
        "from repro.flows import record_verilog_snapshots; record_verilog_snapshots()"
"""

import re

import pytest

from repro.compiler.codegen.testbench import generate_testbench
from repro.compiler.codegen.verilog import VerilogGenerator
from repro.flows import kernel_verilog_bundle, lint_source, verilog_snapshot_dir
from repro.kernels import REGISTRY, get_kernel
from repro.suite.runner import tiny_grid

ALL_KERNELS = REGISTRY.names()

_IDENTIFIER = re.compile(r"^[A-Za-z_][A-Za-z_0-9$]*$")


def _generated_files(kernel_name: str, lanes: int = 2) -> dict[str, str]:
    kernel = get_kernel(kernel_name)
    module = kernel.build_module(lanes=lanes, grid=tiny_grid(kernel.default_grid))
    return VerilogGenerator(module).generate_all()


@pytest.mark.parametrize("kernel_name", ALL_KERNELS)
class TestGoldenSnapshots:
    def test_snapshot_matches_golden(self, kernel_name):
        golden = verilog_snapshot_dir() / f"{kernel_name}.v"
        assert golden.exists(), (
            f"missing Verilog snapshot for {kernel_name}; record with "
            "repro.flows.record_verilog_snapshots()")
        fresh = kernel_verilog_bundle(kernel_name)
        assert fresh == golden.read_text(), (
            f"generated Verilog for {kernel_name} drifted from the snapshot "
            "— if intentional, re-record the snapshots")


@pytest.mark.parametrize("kernel_name", ALL_KERNELS)
class TestStructuralLint:
    def test_all_generated_files_lint_clean(self, kernel_name):
        for name, text in _generated_files(kernel_name).items():
            if not name.endswith(".v"):
                continue
            problems = lint_source(text)
            assert problems == [], f"{name}: {problems}"

    def test_identifiers_are_legal(self, kernel_name):
        # every declared reg/wire identifier must be a legal Verilog name
        decl = re.compile(r"^\s*(?:reg|wire)\s+(?:\[[^\]]+\]\s+)?(\S+?)\s*[;\[=]")
        for name, text in _generated_files(kernel_name).items():
            if not name.endswith(".v"):
                continue
            for line in text.splitlines():
                m = decl.match(line)
                if m:
                    assert _IDENTIFIER.match(m.group(1)), (name, line)

    def test_begin_end_balanced(self, kernel_name):
        for name, text in _generated_files(kernel_name).items():
            if not name.endswith(".v"):
                continue
            begins = len(re.findall(r"\bbegin\b", text))
            ends = len(re.findall(r"\bend\b(?!module)", text))
            assert begins == ends, f"{name}: {begins} begin vs {ends} end"


class TestTestbenchContract:
    """The machine-parsable testbench surface external simulators rely on."""

    def test_result_lines_and_seeded_stimulus(self):
        kernel = get_kernel("sor")
        module = kernel.build_module(lanes=1, grid=tiny_grid(kernel.default_grid))
        tb = generate_testbench(module, n_items=32, seed=0x1234)
        assert '$display("RESULT p_new %0d %h", out_index, s_p_new);' in tb
        assert '$display("REDUCTION sorErrAcc %h", g_sorErrAcc);' in tb
        assert '$display("DONE %0d", cycle);' in tb
        # the per-stream LCG seeds are pure functions of (seed, index)
        from repro.compiler.codegen.testbench import stream_seed

        assert f"32'h{stream_seed(0x1234, 0):08x}" in tb
        assert f"32'h{stream_seed(0x1234, 1):08x}" in tb

    def test_stimulus_words_mirror_verilog_lcg(self):
        # the Python mirror reproduces the LCG recurrence exactly
        from repro.compiler.codegen.testbench import (
            LCG_INCREMENT,
            LCG_MULTIPLIER,
            stimulus_words,
            stream_seed,
        )

        words = stimulus_words(7, 2, 4, 18)
        state = stream_seed(7, 2)
        expected = []
        for _ in range(4):
            expected.append(state & ((1 << 18) - 1))
            state = (state * LCG_MULTIPLIER + LCG_INCREMENT) & 0xFFFFFFFF
        assert words == expected
