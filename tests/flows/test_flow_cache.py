"""Flow-result caching: content-keyed hits, misses and invalidation."""

from repro.cost.cache import redirected_cache_dir
from repro.flows import FlowSettings, RTLSimFlow
from repro.kernels import get_kernel
from repro.suite.runner import tiny_grid


def _module(lanes: int = 1):
    kernel = get_kernel("nw")
    return kernel.build_module(lanes=lanes, grid=tiny_grid(kernel.default_grid))


def _flow(module, tmp_root=None, **settings):
    return RTLSimFlow(module, FlowSettings(run_root=tmp_root, n_items=32, **settings))


class TestFlowCache:
    def test_first_run_misses_second_hits(self, tmp_path):
        with redirected_cache_dir(tmp_path / "cache"):
            first = _flow(_module()).run()
            second = _flow(_module()).run()
        assert first.cached is False
        assert second.cached is True
        assert second.payload == first.payload
        # a cache hit must be dramatically cheaper than the simulation
        assert second.wall_seconds < first.wall_seconds

    def test_design_change_invalidates(self, tmp_path):
        with redirected_cache_dir(tmp_path / "cache"):
            _flow(_module()).run()
            other = _flow(_module(lanes=2)).run()
        assert other.cached is False

    def test_codegen_change_invalidates(self, tmp_path, monkeypatch):
        # a codegen edit changes the generated text but not the design's
        # IR fingerprint — the cached verdict must NOT be served
        from repro.compiler.codegen.verilog import VerilogGenerator

        with redirected_cache_dir(tmp_path / "cache"):
            _flow(_module()).run()

            original = VerilogGenerator.generate_kernel

            def patched(self, func):
                return original(self, func).replace("// kernel pipeline",
                                                    "// EDITED pipeline")

            monkeypatch.setattr(VerilogGenerator, "generate_kernel", patched)
            edited = _flow(_module()).run()
        assert edited.cached is False

    def test_settings_change_invalidates(self, tmp_path):
        with redirected_cache_dir(tmp_path / "cache"):
            _flow(_module()).run()
            reseeded = RTLSimFlow(_module(), FlowSettings(n_items=32, seed=99)).run()
        assert reseeded.cached is False

    def test_use_cache_false_bypasses(self, tmp_path):
        with redirected_cache_dir(tmp_path / "cache"):
            _flow(_module()).run()
            bypassed = _flow(_module(), use_cache=False).run()
        assert bypassed.cached is False

    def test_disabled_store_still_runs(self, tmp_path):
        with redirected_cache_dir("off"):
            result = _flow(_module()).run()
        assert result.cached is False
        assert result.ok

    def test_run_directory_artifacts_and_manifest(self, tmp_path):
        with redirected_cache_dir(tmp_path / "cache"):
            result = _flow(_module(), tmp_root=tmp_path / "runs").run()
        assert result.run_dir is not None
        names = {p.name for p in result.run_dir.iterdir()}
        assert "manifest.json" in names and "result.json" in names
        assert any(name.endswith("_kernel.v") for name in names)
        # the manifest hashes exactly the artifacts on disk
        import hashlib
        import json

        manifest = json.loads((result.run_dir / "manifest.json").read_text())
        for name, digest in manifest.items():
            on_disk = hashlib.sha256(
                (result.run_dir / name).read_text().encode()).hexdigest()
            assert on_disk == digest

    def test_cached_rerun_still_writes_artifacts(self, tmp_path):
        with redirected_cache_dir(tmp_path / "cache"):
            _flow(_module()).run()
            rerun = _flow(_module(), tmp_root=tmp_path / "runs").run()
        assert rerun.cached is True
        assert (rerun.run_dir / "result.json").exists()
