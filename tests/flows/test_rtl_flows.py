"""The core tentpole guarantee: RTL simulation of every kernel's generated
Verilog matches the kernel Python reference bit for bit, and the cycle
counts agree with the pipeline simulator within one pipeline depth plus
one issue interval."""

import pytest

from repro.compiler.codegen.verilog import VerilogGenerator
from repro.flows import (
    ElaborateFlow,
    FlowSettings,
    IcarusSimFlow,
    RTLSimFlow,
    compare_outcome,
    elaborate,
    kernel_stimulus,
    parse_module_text,
    reference_outputs,
    simulate_stream,
)
from repro.kernels import REGISTRY, get_kernel
from repro.suite.runner import tiny_grid

ALL_KERNELS = REGISTRY.names()


def _tiny_module(name: str, lanes: int = 1):
    kernel = get_kernel(name)
    return kernel.build_module(lanes=lanes, grid=tiny_grid(kernel.default_grid))


@pytest.mark.parametrize("kernel_name", ALL_KERNELS)
class TestRTLSimFlowPerKernel:
    def test_outputs_and_reductions_match_reference_exactly(self, kernel_name):
        flow = RTLSimFlow(_tiny_module(kernel_name),
                          FlowSettings(n_items=64, use_cache=False))
        payload = flow.run().payload
        functional = payload["functional"]
        assert functional["outputs_checked"] >= 64
        assert functional["output_mismatches"] == 0
        assert functional["reductions_match"] is True
        assert payload["lint"] == []
        assert payload["ok"] is True

    def test_cycles_within_depth_plus_issue_interval(self, kernel_name):
        flow = RTLSimFlow(_tiny_module(kernel_name),
                          FlowSettings(n_items=64, use_cache=False))
        cycles = flow.run().payload["cycles"]
        assert cycles["gap_analytic"] <= cycles["bound"]
        assert cycles["gap_stepped"] <= cycles["bound"]
        assert cycles["ok"] is True

    def test_elaborate_flow_clean(self, kernel_name):
        flow = ElaborateFlow(_tiny_module(kernel_name, lanes=2),
                             FlowSettings(use_cache=False))
        payload = flow.run().payload
        assert payload["ok"] is True
        kernel_files = [name for name, report in payload["files"].items()
                        if report["modules"]]
        assert kernel_files  # at least the kernel pipeline elaborated


class TestLaneFamilies:
    @pytest.mark.parametrize("lanes", [1, 2, 4])
    def test_lane_replication_keeps_functional_identity(self, lanes):
        # the kernel pipeline is lane-invariant: every lane count must
        # verify against the same per-lane stream semantics
        module = _tiny_module("nw", lanes=lanes)
        flow = RTLSimFlow(module, FlowSettings(n_items=32, use_cache=False))
        payload = flow.run().payload
        assert payload["ok"] is True


class TestFaultDetection:
    """The whole point of the subsystem: injected codegen bugs are caught."""

    def _verify(self, source: str, module, func):
        netlist = elaborate(parse_module_text(source))
        n = 48
        stimulus = kernel_stimulus(func, n)
        reference = reference_outputs(module, func, n)
        outcome = simulate_stream(
            netlist, stimulus, n, ["t_new"], ["maxDelta"],
            max_extra_cycles=256, drain_cycles=32)
        return compare_outcome(outcome, reference)

    def test_wrong_operator_detected(self):
        module = _tiny_module("hotspot")
        func = module.get_function("hotspot_pe")
        source = VerilogGenerator(module).generate_kernel(func)
        assert self._verify(source, module, func)["ok"] is True
        # flip the final add of t_new into a subtract, as a codegen bug would
        broken = source.replace(" + w_v12;", " - w_v12;", 1)
        assert broken != source
        verdict = self._verify(broken, module, func)
        assert verdict["output_mismatches"] > 0
        assert verdict["ok"] is False

    def test_missing_balancing_stage_detected(self):
        module = _tiny_module("hotspot")
        func = module.get_function("hotspot_pe")
        source = VerilogGenerator(module).generate_kernel(func)
        # shorten a balancing delay line by one stage: operands desynchronise
        assert "w_temp_d" in source
        import re

        match = re.search(r"w_temp_d(\d+)", source)
        depth = int(match.group(1))
        broken = source.replace(
            f"balbuf_temp_d{depth}[{depth - 1}]",
            f"balbuf_temp_d{depth}[{depth - 2}]")
        assert broken != source
        verdict = self._verify(broken, module, func)
        assert verdict["output_mismatches"] > 0


class TestSignedAndDivisionSemantics:
    """Signed opcodes emit $signed RTL and the reference mirrors true
    two's-complement semantics — not an enshrined unsigned bug — and
    division is zero-guarded identically everywhere."""

    def _build(self, body):
        from repro.ir import IRBuilder, ScalarType

        ty = ScalarType.int_(16)
        b = IRBuilder("signed_dp")
        f = b.function("f0", kind="pipe", args=[(ty, "a"), (ty, "b")])
        body(f, ty)
        b.port("f0", "out", ty, direction="ostream")
        main = b.function("main", kind="none")
        main.call("f0", ["a", "b"], kind="pipe")
        return b.build()

    def _eval_rtl(self, module, a_vals, b_vals):
        from repro.compiler.codegen.verilog import VerilogGenerator
        from repro.flows import elaborate, parse_module_text, simulate_stream

        func = module.get_function("f0")
        source = VerilogGenerator(module).generate_kernel(func)
        netlist = elaborate(parse_module_text(source))
        n = len(a_vals)
        outcome = simulate_stream(
            netlist, {"a": a_vals, "b": b_vals}, n, ["out"], [],
            max_extra_cycles=128, drain_cycles=8)
        return outcome.outputs["out"]

    def _eval_reference(self, module, a_vals, b_vals):
        from repro.flows.refmodel import evaluate_items

        func = module.get_function("f0")
        outputs, _, _ = evaluate_items(
            module, func, {"a": a_vals, "b": b_vals}, len(a_vals))
        return outputs["out"]

    @pytest.mark.parametrize("opcode, py", [
        # hand-computed 16-bit two's-complement expectations
        ("ashr", lambda a, b: (a >> 1)),
        ("max", lambda a, b: max(a, b)),
        ("min", lambda a, b: min(a, b)),
        ("abs", lambda a, b: abs(a)),
        ("div", lambda a, b: 0 if b == 0 else int(a / b)),
    ])
    def test_signed_opcode_rtl_matches_true_semantics(self, opcode, py):
        mask = (1 << 16) - 1

        def body(f, ty):
            if opcode == "ashr":
                f.instr("ashr", ty, f.arg("a"), 1, result="out")
            elif opcode == "abs":
                f.instr("abs", ty, f.arg("a"), result="out")
            else:
                f.instr(opcode, ty, f.arg("a"), f.arg("b"), result="out")

        module = self._build(body)
        signed_pairs = [(-2, 3), (-32768, -1), (5, -7), (100, 0), (-1, -1)]
        a_vals = [a & mask for a, _ in signed_pairs]
        b_vals = [b & mask for _, b in signed_pairs]
        expected = [py(a, b) & mask for a, b in signed_pairs]
        assert self._eval_reference(module, a_vals, b_vals) == expected
        assert self._eval_rtl(module, a_vals, b_vals) == expected

    def test_unsigned_division_zero_guarded(self):
        from repro.ir import IRBuilder, ScalarType

        ty = ScalarType.uint(16)
        b = IRBuilder("udiv_dp")
        f = b.function("f0", kind="pipe", args=[(ty, "a"), (ty, "b")])
        f.instr("udiv", ty, f.arg("a"), f.arg("b"), result="out")
        b.port("f0", "out", ty, direction="ostream")
        main = b.function("main", kind="none")
        main.call("f0", ["a", "b"], kind="pipe")
        module = b.build()
        a_vals, b_vals = [100, 7, 9], [3, 0, 2]
        expected = [33, 0, 4]
        assert self._eval_reference(module, a_vals, b_vals) == expected
        assert self._eval_rtl(module, a_vals, b_vals) == expected


class TestExternalAdapters:
    def test_unavailable_tools_reported_not_raised(self):
        # availability checks are pure PATH queries; they never raise
        assert isinstance(IcarusSimFlow.available(), bool)

    @pytest.mark.skipif(not IcarusSimFlow.available(),
                        reason="iverilog not on PATH")
    def test_iverilog_agrees_with_reference(self):
        flow = IcarusSimFlow(_tiny_module("nw"),
                             FlowSettings(n_items=32, use_cache=False))
        payload = flow.run().payload
        assert payload["ok"] is True
        assert payload["functional"]["output_mismatches"] == 0
