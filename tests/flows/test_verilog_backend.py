"""Unit tests for the pure-Python RTL backend: parser, netlist, lint."""

import pytest

from repro.flows.netlist import (
    ElaborationError,
    NetlistSimulator,
    elaborate,
    lint_source,
)
from repro.flows.verilog import VerilogParseError, parse_module_text, parse_modules

COUNTER = """
module counter (
  input  wire clk,
  input  wire rst,
  output wire [7:0] value
);
  reg [7:0] count;
  always @(posedge clk) begin
    if (rst) count <= 0;
    else     count <= count + 8'd1;
  end
  assign value = count;
endmodule
"""

SHIFTER = """
module shifter (
  input  wire clk,
  input  wire [3:0] din,
  output wire [3:0] dout
);
  reg [3:0] line [0:2];
  integer i;
  always @(posedge clk) begin
    line[0] <= din;
    for (i = 1; i < 3; i = i + 1)
      line[i] <= line[i - 1];
  end
  wire [3:0] dout_w = line[2];
  assign dout = dout_w;
endmodule
"""


class TestParser:
    def test_module_ports_and_items(self):
        module = parse_module_text(COUNTER)
        assert module.name == "counter"
        assert [p.name for p in module.inputs()] == ["clk", "rst"]
        assert module.port("value").width == 8
        assert len(module.always_blocks) == 1
        assert len(module.assigns) == 1

    def test_expressions_round_trip_through_eval(self):
        source = """
        module expr (input wire clk, input wire [7:0] a, output wire [7:0] y);
          wire [7:0] t = (a > 8'd3) ? a - 8'd1 : {a[3:0], 4'd2};
          assign y = ~t ^ (a << 1);
        endmodule
        """
        module = parse_module_text(source)
        sim = NetlistSimulator(elaborate(module))
        out = sim.step({"a": 10})
        t = 10 - 1  # a > 3
        assert out["y"] == ((~t) ^ (10 << 1)) & 0xFF

    def test_signed_compare(self):
        source = """
        module s (input wire clk, input wire [7:0] a, output wire y);
          assign y = ($signed(a) < $signed(8'd0)) ? 1'b1 : 1'b0;
        endmodule
        """
        sim = NetlistSimulator(elaborate(parse_module_text(source)))
        assert sim.step({"a": 0xFF})["y"] == 1  # -1 < 0 signed
        assert sim.step({"a": 0x01})["y"] == 0

    def test_unbalanced_begin_end_rejected(self):
        bad = COUNTER.replace("  end\n  assign", "  assign")
        with pytest.raises(VerilogParseError):
            parse_modules(bad)

    def test_x_literals_rejected(self):
        with pytest.raises(VerilogParseError):
            parse_modules("module m (input wire clk); wire a = 1'bx; endmodule")

    def test_multiple_modules(self):
        both = COUNTER + SHIFTER
        assert [m.name for m in parse_modules(both)] == ["counter", "shifter"]


class TestSimulation:
    def test_counter_counts(self):
        sim = NetlistSimulator(elaborate(parse_module_text(COUNTER)))
        sim.step({"rst": 1})
        values = [sim.step({"rst": 0})["value"] for _ in range(5)]
        assert values == [0, 1, 2, 3, 4]

    def test_shift_register_delays_by_depth(self):
        sim = NetlistSimulator(elaborate(parse_module_text(SHIFTER)))
        seen = []
        for i in range(8):
            seen.append(sim.step({"din": i + 1})["dout"])
        # three-deep line: input at cycle i appears at cycle i + 3
        assert seen[:3] == [0, 0, 0]
        assert seen[3:] == [1, 2, 3, 4, 5]

    def test_nonblocking_semantics_read_pre_edge_state(self):
        source = """
        module swap (input wire clk, output wire [3:0] xa, output wire [3:0] xb);
          reg [3:0] a;
          reg [3:0] b;
          always @(posedge clk) begin
            a <= b + 4'd1;
            b <= a;
          end
          assign xa = a;
          assign xb = b;
        endmodule
        """
        sim = NetlistSimulator(elaborate(parse_module_text(source)))
        sim.step({})  # a=1, b=0
        out = sim.step({})
        assert (out["xa"], out["xb"]) == (1, 0)

    def test_combinational_loop_detected(self):
        source = """
        module loop (input wire clk, output wire y);
          wire a = b;
          wire b = a;
          assign y = a;
        endmodule
        """
        with pytest.raises(ElaborationError):
            elaborate(parse_module_text(source))

    def test_hierarchical_simulation_rejected(self):
        source = """
        module top (input wire clk, output wire y);
          wire t;
          counter c0 (.clk(clk), .rst(t), .value(t));
          assign y = t;
        endmodule
        """
        netlist = elaborate(parse_module_text(source))
        with pytest.raises(ElaborationError):
            NetlistSimulator(netlist)


class TestLint:
    def test_clean_module(self):
        assert lint_source(COUNTER) == []
        assert lint_source(SHIFTER) == []

    def test_undeclared_wire_reported(self):
        source = COUNTER.replace("assign value = count;", "assign value = missing;")
        problems = lint_source(source)
        assert any("missing" in p for p in problems)

    def test_use_before_declaration_reported(self):
        source = """
        module late (input wire clk, output wire y);
          assign y = t;
          wire t = 1'b1;
        endmodule
        """
        problems = lint_source(source)
        assert any("'t'" in p for p in problems)

    def test_multiple_drivers_reported(self):
        source = """
        module dd (input wire clk, input wire a, output wire y);
          wire t = a;
          assign t = ~a;
          assign y = t;
        endmodule
        """
        problems = lint_source(source)
        assert any("multiple drivers" in p for p in problems)

    def test_parse_error_becomes_violation(self):
        assert lint_source("module broken (") != []

    def test_reg_driven_from_two_processes_reported(self):
        source = """
        module race (input wire clk, output wire [3:0] y);
          reg [3:0] r;
          always @(posedge clk) r <= r + 4'd1;
          always @(posedge clk) r <= r - 4'd1;
          assign y = r;
        endmodule
        """
        problems = lint_source(source)
        assert any("multiple drivers" in p for p in problems)

    def test_reset_and_else_branch_is_one_driver(self):
        # reset/else assignments inside ONE process are not a race
        assert lint_source(COUNTER) == []
