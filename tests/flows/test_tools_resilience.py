"""Tests for the hardened external-tool runner.

``run_tool`` must never let ``subprocess`` trouble escape: a hung tool
becomes a typed timeout result carrying its partial output, a launch
failure becomes a typed error, and crash-shaped transient failures are
retried under the policy.
"""

from __future__ import annotations

import sys

import pytest

from repro.flows.tools import ToolResult, run_tool
from repro.resilience import Deadline, FaultPlan, RetryPolicy


def _py(code: str) -> list[str]:
    return [sys.executable, "-c", code]


class TestRunToolHappyPath:
    def test_success_shape(self):
        result = run_tool(_py("print('hello')"))
        assert result.ok
        assert result.returncode == 0
        assert result.stdout.strip() == "hello"
        assert result.attempts == 1
        assert not result.timed_out
        assert result.error == ""
        assert result.elapsed_seconds > 0
        assert result.failure_summary == ""

    def test_nonzero_exit_is_not_retried(self):
        result = run_tool(_py("import sys; sys.exit(3)"))
        assert not result.ok
        assert result.returncode == 3
        assert result.attempts == 1
        assert "status 3" in result.failure_summary


class TestRunToolTimeouts:
    def test_timeout_becomes_typed_failure_with_partial_output(self):
        """The satellite fix: TimeoutExpired must not propagate."""
        result = run_tool(
            _py("import sys, time; print('partial-progress', flush=True); "
                "print('some-diagnostic', file=sys.stderr, flush=True); "
                "time.sleep(60)"),
            timeout=1.0)
        assert not result.ok
        assert result.timed_out
        assert result.returncode == -1
        assert "partial-progress" in result.stdout   # captured, not lost
        assert "some-diagnostic" in result.stderr
        assert "timed out" in result.error
        assert result.elapsed_seconds >= 1.0
        assert "timed out" in result.failure_summary

    def test_deadline_clips_the_timeout(self):
        now = [0.0]
        deadline = Deadline(0.5, clock=lambda: now[0])
        result = run_tool(_py("import time; time.sleep(60)"),
                          timeout=300.0, deadline=deadline)
        assert result.timed_out
        assert "0.5s" in result.error

    def test_expired_deadline_never_launches(self):
        now = [0.0]
        deadline = Deadline(1.0, clock=lambda: now[0])
        now[0] = 2.0
        result = run_tool(_py("print('nope')"), deadline=deadline)
        assert not result.ok
        assert result.attempts == 0
        assert "deadline expired" in result.error


class TestRunToolFaults:
    def test_injected_fault_is_retried(self):
        plan = FaultPlan({"tool": {"indices": [0]}})
        with plan.active():
            result = run_tool(
                _py("print('recovered')"),
                retry_policy=RetryPolicy(max_attempts=2, base_delay=0.0))
        assert result.ok
        assert result.attempts == 2
        assert result.stdout.strip() == "recovered"

    def test_exhausted_retries_return_typed_failure(self):
        plan = FaultPlan({"tool": {"rate": 1.0}})
        with plan.active():
            result = run_tool(
                _py("print('never runs')"),
                retry_policy=RetryPolicy(max_attempts=3, base_delay=0.0))
        assert not result.ok
        assert result.attempts == 3
        assert "InjectedFault" in result.error
        assert "failed to run" in result.failure_summary

    def test_launch_failure_is_typed_not_raised(self):
        result = run_tool(["/definitely/not/a/real/tool"],
                          retry_policy=RetryPolicy(max_attempts=2,
                                                   base_delay=0.0))
        assert not result.ok
        assert result.returncode == -1
        assert "FileNotFoundError" in result.error


class TestToolResultDataclass:
    def test_defaults_stay_backward_compatible(self):
        result = ToolResult(("yosys",), 0, "out", "err")
        assert result.ok
        assert result.attempts == 1
        assert not result.timed_out
