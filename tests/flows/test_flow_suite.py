"""Suite-scale flow runs: canonical reports, goldens, engine batching."""

import pytest

from repro.explore.engine import ProcessPoolBackend
from repro.flows import check_flow_goldens, run_flow_suite
from repro.suite.report import FLOW_SCHEMA, load_report
from repro.suite.runner import SuiteConfig


def _small_config(kernels=("nw", "matmul")) -> SuiteConfig:
    return SuiteConfig.tiny(kernels=kernels, max_lanes=2)


class TestFlowSuiteRun:
    def test_report_shape_and_totals(self):
        run = run_flow_suite(_small_config())
        payload = run.report.payload
        assert payload["schema"] == FLOW_SCHEMA
        assert sorted(payload["kernels"]) == ["matmul", "nw"]
        totals = payload["totals"]
        assert totals["families"] == run.families
        assert totals["failing"] == 0
        assert run.ok

    def test_reports_are_deterministic(self):
        left = run_flow_suite(_small_config()).report.to_json()
        right = run_flow_suite(_small_config()).report.to_json()
        assert left == right

    def test_parallel_flow_jobs_byte_identical(self):
        serial = run_flow_suite(_small_config()).report.to_json()
        parallel = run_flow_suite(_small_config(), jobs=2).report.to_json()
        assert parallel == serial

    def test_pool_costing_backend_byte_identical(self):
        serial = run_flow_suite(_small_config()).report.to_json()
        pooled = run_flow_suite(
            _small_config(), backend=ProcessPoolBackend(max_workers=2)
        ).report.to_json()
        assert pooled == serial

    def test_max_items_caps_streams(self):
        run = run_flow_suite(_small_config(), max_items=16)
        for families in run.records.values():
            for payload in families.values():
                assert payload["items"] <= 16

    def test_written_report_loads_with_schema(self, tmp_path):
        run = run_flow_suite(_small_config())
        path = run.report.write(tmp_path / "flow.json")
        payload = load_report(path, expected_schema=FLOW_SCHEMA)
        assert payload["schema"] == FLOW_SCHEMA

    def test_kernel_payload_carries_flow_settings(self):
        run = run_flow_suite(_small_config())
        payload = run.report.kernel_payload("nw")
        assert payload["flow"]["backend"] == "pyrtl"
        assert "nw" in payload["kernels"]
        with pytest.raises(KeyError):
            run.report.kernel_payload("sor")


class TestFlowGoldens:
    def test_all_kernels_match_recorded_goldens(self):
        results = check_flow_goldens()
        assert sorted(results) == sorted(
            ["conv2d", "hotspot", "lavamd", "matmul", "nw", "sor"])
        for kernel, diffs in results.items():
            assert diffs == [], (
                f"flow golden drift for {kernel}: "
                + "; ".join(str(d) for d in diffs[:5])
                + " — if intentional, re-record with "
                  "`tybec suite record-golden --flows`"
            )
