"""Tests for the platform and execution models."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.models import (
    ComputeUnit,
    KernelInstance,
    NDRange,
    PlatformModel,
    ProcessingElement,
    StreamControl,
    WorkGroup,
)


class TestNDRange:
    def test_global_size(self):
        assert NDRange((24, 24, 24)).global_size == 13824
        assert NDRange((100,)).global_size == 100

    def test_cube(self):
        r = NDRange.cube(96)
        assert r.dims == (96, 96, 96)
        assert r.ndim == 3

    def test_reshape_preserves_size(self):
        r = NDRange((4, 4, 8))
        r2 = r.reshape((128,))
        assert r2.global_size == r.global_size

    def test_reshape_rejects_size_change(self):
        with pytest.raises(ValueError):
            NDRange((4, 4)).reshape((5, 5))

    @pytest.mark.parametrize("dims", [(), (1, 2, 3, 4), (0,), (-1, 2)])
    def test_invalid_dims(self, dims):
        with pytest.raises(ValueError):
            NDRange(dims)

    def test_str(self):
        assert str(NDRange((2, 3))) == "2x3"

    @given(st.lists(st.integers(min_value=1, max_value=64), min_size=1, max_size=3))
    def test_reshape_to_flat_property(self, dims):
        r = NDRange(tuple(dims))
        flat = r.reshape((r.global_size,))
        assert flat.global_size == r.global_size


class TestKernelInstance:
    def test_totals(self):
        ki = KernelInstance("sor", NDRange.cube(24), repetitions=1000, words_per_item=11)
        assert ki.global_size == 13824
        assert ki.total_work_items == 13_824_000
        assert ki.total_words() == 13824 * 11

    def test_validation(self):
        with pytest.raises(ValueError):
            KernelInstance("k", NDRange((4,)), repetitions=0)
        with pytest.raises(ValueError):
            KernelInstance("k", NDRange((4,)), words_per_item=0)

    def test_workgroup(self):
        assert WorkGroup((8, 8)).items == 64


class TestPlatform:
    def test_compute_unit_lanes(self):
        cu = ComputeUnit("cu0")
        for _ in range(4):
            cu.add_lane(ProcessingElement("f0", instructions=19, pipeline_depth=25))
        assert cu.lanes == 4
        assert cu.pipeline_depth == 25

    def test_platform_total_lanes(self):
        p = PlatformModel(device_name="test", clock_mhz=175.0)
        cu = p.add_compute_unit(ComputeUnit("cu0"))
        cu.add_lane(ProcessingElement("f0"))
        cu.add_lane(ProcessingElement("f0"))
        assert p.total_lanes == 2
        assert p.clock_hz == pytest.approx(175e6)

    def test_stream_control_totals(self):
        sc = StreamControl(input_streams=9, output_streams=2, max_offset_span=576)
        assert sc.total_streams == 11

    def test_pe_steady_state_rate(self):
        pe = ProcessingElement("f0", instructions=10, pipeline_depth=12, vectorization=2)
        assert pe.steady_state_items_per_cycle() == 2.0
        seq_pe = ProcessingElement(
            "f0", instructions=10, pipeline_depth=1, cycles_per_instruction=4
        )
        assert seq_pe.steady_state_items_per_cycle() == pytest.approx(1 / 40)
