"""Tests for the memory-hierarchy model."""

import pytest

from repro.models import AddressSpace, MemoryHierarchy, MemoryLevel


class TestAddressSpace:
    def test_numbering_matches_paper(self):
        # Figure 4: private(0), global(1), local(2), constant(3)
        assert AddressSpace.PRIVATE == 0
        assert AddressSpace.GLOBAL == 1
        assert AddressSpace.LOCAL == 2
        assert AddressSpace.CONSTANT == 3

    def test_on_chip_classification(self):
        assert AddressSpace.PRIVATE.is_on_chip
        assert AddressSpace.LOCAL.is_on_chip
        assert AddressSpace.GLOBAL.is_off_chip
        assert AddressSpace.CONSTANT.is_off_chip


class TestMemoryLevel:
    def test_fits(self):
        level = MemoryLevel(AddressSpace.LOCAL, capacity_bytes=1024, peak_bandwidth_gbps=100)
        assert level.fits(1024)
        assert level.fits(0)
        assert not level.fits(1025)


class TestMemoryHierarchy:
    def test_generic_has_all_levels(self):
        h = MemoryHierarchy.generic()
        for space in AddressSpace:
            assert space in h
        assert h.global_memory.capacity_bytes > h.local_memory.capacity_bytes
        assert h.local_memory.peak_bandwidth_gbps > h.global_memory.peak_bandwidth_gbps

    def test_indexing_by_int(self):
        h = MemoryHierarchy.generic()
        assert h[1] is h.global_memory
        assert h[2] is h.local_memory
        assert h[0] is h.private_memory

    def test_deepest_fitting_prefers_on_chip(self):
        h = MemoryHierarchy.generic(dram_bytes=1 << 30, bram_bytes=1 << 20, register_bytes=1 << 10)
        assert h.deepest_fitting(512).space is AddressSpace.PRIVATE
        assert h.deepest_fitting(1 << 18).space is AddressSpace.LOCAL
        assert h.deepest_fitting(1 << 25).space is AddressSpace.GLOBAL

    def test_deepest_fitting_raises_when_too_big(self):
        h = MemoryHierarchy.generic(dram_bytes=1 << 20)
        with pytest.raises(ValueError, match="host"):
            h.deepest_fitting(1 << 30)

    def test_add_returns_self_for_chaining(self):
        h = MemoryHierarchy()
        out = h.add(MemoryLevel(AddressSpace.GLOBAL, 1 << 30, 10.0))
        assert out is h
        assert AddressSpace.GLOBAL in h
