"""Tests for the design-space, memory-execution and streaming models."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.models import (
    AccessPattern,
    ConfigurationClass,
    DesignPoint,
    MemoryExecutionForm,
    MemoryHierarchy,
    PatternKind,
    classify_design_point,
    select_memory_execution_form,
)


class TestDesignPoint:
    def test_defaults_are_single_pipeline(self):
        p = DesignPoint()
        assert classify_design_point(p) is ConfigurationClass.C2

    def test_replicated_lanes_is_c1(self):
        p = DesignPoint(pipelined=True, lanes=4)
        assert classify_design_point(p) is ConfigurationClass.C1

    def test_vectorised_pipeline_is_c1(self):
        p = DesignPoint(pipelined=True, lanes=1, vectorization=4)
        assert classify_design_point(p) is ConfigurationClass.C1

    def test_unpipelined_threads_is_c3(self):
        p = DesignPoint(pipelined=False, lanes=8)
        assert classify_design_point(p) is ConfigurationClass.C3

    def test_scalar_processor_is_c4(self):
        p = DesignPoint(pipelined=False, lanes=1, reuse_factor=64)
        assert classify_design_point(p) is ConfigurationClass.C4

    def test_vector_processor_is_c5(self):
        p = DesignPoint(pipelined=False, lanes=4, reuse_factor=128)
        assert classify_design_point(p) is ConfigurationClass.C5

    def test_reconfiguration_is_c6(self):
        p = DesignPoint(reconfigurations=2)
        assert classify_design_point(p) is ConfigurationClass.C6

    def test_moderate_reuse_unpipelined_is_c4(self):
        p = DesignPoint(pipelined=False, lanes=1, reuse_factor=4)
        assert classify_design_point(p) is ConfigurationClass.C4

    def test_validation(self):
        with pytest.raises(ValueError):
            DesignPoint(lanes=0)
        with pytest.raises(ValueError):
            DesignPoint(vectorization=0)
        with pytest.raises(ValueError):
            DesignPoint(reuse_factor=0)
        with pytest.raises(ValueError):
            DesignPoint(reconfigurations=-1)

    def test_parallel_items_per_cycle(self):
        assert DesignPoint(lanes=4, vectorization=2).parallel_work_items_per_cycle == 8
        slow = DesignPoint(pipelined=False, lanes=1, reuse_factor=4)
        assert slow.parallel_work_items_per_cycle == pytest.approx(0.25)

    def test_descriptions_exist(self):
        for c in ConfigurationClass:
            assert c.description

    @given(
        lanes=st.integers(min_value=1, max_value=64),
        vec=st.integers(min_value=1, max_value=16),
    )
    def test_pipelined_designs_never_classify_as_processor(self, lanes, vec):
        p = DesignPoint(pipelined=True, lanes=lanes, vectorization=vec)
        assert classify_design_point(p) in (ConfigurationClass.C1, ConfigurationClass.C2)


class TestMemoryExecutionForm:
    def setup_method(self):
        # 1 MiB of usable local memory (2 MiB * 0.5 reserve), 1 GiB DRAM
        self.mem = MemoryHierarchy.generic(dram_bytes=1 << 30, bram_bytes=2 << 20)

    def test_small_footprint_is_form_c(self):
        sel = select_memory_execution_form(512 << 10, self.mem)
        assert sel.form is MemoryExecutionForm.C

    def test_medium_footprint_is_form_b(self):
        sel = select_memory_execution_form(64 << 20, self.mem)
        assert sel.form is MemoryExecutionForm.B

    def test_huge_footprint_is_form_a(self):
        sel = select_memory_execution_form(4 << 30, self.mem)
        assert sel.form is MemoryExecutionForm.A

    def test_host_resident_forces_form_a(self):
        sel = select_memory_execution_form(512 << 10, self.mem, host_resident=True)
        assert sel.form is MemoryExecutionForm.A

    def test_invalid_footprint(self):
        with pytest.raises(ValueError):
            select_memory_execution_form(0, self.mem)

    def test_descriptions(self):
        for form in MemoryExecutionForm:
            assert form.description
            assert form.host_transfer_repetitions


class TestAccessPattern:
    def test_contiguous(self):
        p = AccessPattern.contiguous(element_bytes=4)
        assert p.is_contiguous
        assert p.stride_bytes == 4

    def test_strided(self):
        p = AccessPattern.strided(1000, element_bytes=4)
        assert p.kind is PatternKind.STRIDED
        assert p.stride_bytes == 4000

    def test_stride_one_collapses_to_contiguous(self):
        assert AccessPattern.strided(1).is_contiguous

    def test_random(self):
        p = AccessPattern.random()
        assert p.kind is PatternKind.RANDOM
        assert p.stride_elements > 1

    def test_from_ir(self):
        assert AccessPattern.from_ir("CONT", 1, 4).is_contiguous
        assert AccessPattern.from_ir("STRIDED", 100, 2).stride_elements == 100
        assert AccessPattern.from_ir("RANDOM", 1, 4).kind is PatternKind.RANDOM
        with pytest.raises(ValueError):
            AccessPattern.from_ir("DIAGONAL", 1, 4)

    def test_validation(self):
        with pytest.raises(ValueError):
            AccessPattern(PatternKind.STRIDED, 0, 4)
        with pytest.raises(ValueError):
            AccessPattern(PatternKind.CONTIGUOUS, 2, 4)
        with pytest.raises(ValueError):
            AccessPattern(PatternKind.CONTIGUOUS, 1, 0)
