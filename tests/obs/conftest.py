"""Shared tracer hygiene for the observability tests."""

from __future__ import annotations

import pytest

from repro.obs.trace import uninstall_tracer


@pytest.fixture(autouse=True)
def _no_leaked_tracer():
    """Every test starts and ends with no ambient tracer installed."""
    uninstall_tracer()
    yield
    uninstall_tracer()
