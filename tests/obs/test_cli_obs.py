"""CLI seams of the observability layer: --trace activation, trace
summarize, and bench report."""

from __future__ import annotations

import json
import os

import pytest

from repro.cli import main
from repro.obs.trace import TRACE_ENV, current_tracer, load_trace


class TestTraceFlag:
    def test_traced_suite_run_writes_valid_trace(self, tmp_path, capsys):
        path = tmp_path / "run.ndjson"
        rc = main(["--trace", str(path), "suite", "run", "--tiny",
                   "--kernels", "sor", "--max-lanes", "2"])
        assert rc == 0
        header, records = load_trace(path)  # validates the file
        sites = {r["site"] for r in records}
        assert "suite.sweep" in sites
        assert "pipeline.cost" in sites
        assert {r["trace"] for r in records} == {header["trace_id"]}

    def test_trace_flag_restores_process_state(self, tmp_path):
        prior = os.environ.get(TRACE_ENV)
        rc = main(["--trace", str(tmp_path / "t.ndjson"), "suite", "run",
                   "--tiny", "--kernels", "sor", "--max-lanes", "2"])
        assert rc == 0
        assert os.environ.get(TRACE_ENV) == prior
        assert current_tracer() is None


class TestTraceSummarize:
    @pytest.fixture
    def trace_file(self, tmp_path):
        path = tmp_path / "run.ndjson"
        main(["--trace", str(path), "suite", "run", "--tiny",
              "--kernels", "sor", "--max-lanes", "2"])
        return path

    def test_summarize_prints_sites_and_critical_path(self, trace_file,
                                                      capsys):
        rc = main(["trace", "summarize", str(trace_file)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "trace " in out
        assert "suite.sweep" in out
        assert "pipeline.cost" in out

    def test_summarize_json(self, trace_file, capsys):
        rc = main(["trace", "summarize", str(trace_file), "--json"])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["span_count"] > 0
        assert payload["header"]["schema"] == "repro-trace/1"
        assert payload["critical_path"][0]["site"] == "suite.sweep"

    def test_summarize_missing_file_is_exit_2(self, tmp_path, capsys):
        rc = main(["trace", "summarize", str(tmp_path / "nope.ndjson")])
        assert rc == 2
        assert "cannot read trace" in capsys.readouterr().err


class TestBenchReport:
    @pytest.fixture
    def results_dir(self, tmp_path):
        results = tmp_path / "results"
        results.mkdir()
        # a curated benchmark with one deliberately failing gate
        (results / "BENCH_obs.json").write_text(json.dumps({
            "overhead_ratio": 1.2,
            "max_overhead_ratio": 1.05,
            "clean_wall_seconds": 1.0,
            "traced_wall_seconds": 1.2,
            "spans": 64,
        }))
        # an uncurated benchmark exercises the generic numeric fallback
        (results / "BENCH_custom.json").write_text(json.dumps({
            "nested": {"wall_seconds": 0.5}, "points": 10}))
        return results

    def test_report_renders_gates_and_fallback(self, results_dir, capsys):
        rc = main(["bench", "report", "--dir", str(results_dir)])
        assert rc == 0  # non-strict never fails the invocation
        out = capsys.readouterr().out
        assert "obs" in out and "custom" in out
        assert "overhead_ratio" in out
        assert "gate(s) passing" in out

    def test_strict_fails_on_failing_gate(self, results_dir, capsys):
        rc = main(["bench", "report", "--dir", str(results_dir), "--strict"])
        assert rc == 1

    def test_json_rows_carry_verdicts(self, results_dir, capsys):
        rc = main(["bench", "report", "--dir", str(results_dir), "--json"])
        assert rc == 0
        rows = json.loads(capsys.readouterr().out)
        by_metric = {(r["benchmark"], r["metric"]): r for r in rows}
        assert by_metric[("obs", "overhead_ratio")]["ok"] is False
        assert by_metric[("obs", "spans")]["ok"] is True
        assert by_metric[("custom", "points")]["ok"] is None

    def test_missing_dir_is_exit_2(self, tmp_path, capsys):
        rc = main(["bench", "report", "--dir", str(tmp_path / "absent")])
        assert rc == 2
        assert "no benchmark results" in capsys.readouterr().err

    def test_real_results_dir_if_present(self, capsys):
        from repro.obs.bench import DEFAULT_RESULTS_DIR

        if not DEFAULT_RESULTS_DIR.is_dir():
            pytest.skip("no committed benchmark results")
        assert main(["bench", "report"]) == 0
