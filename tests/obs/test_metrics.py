"""MetricsRegistry semantics and Prometheus text-exposition validity."""

from __future__ import annotations

import re
import threading

import pytest

from repro.obs.metrics import (
    MetricSample,
    MetricsRegistry,
    render_prometheus,
    samples_from_counter_snapshot,
    samples_from_disk_cache_stats,
    samples_from_pipeline_stats,
    samples_from_service_metrics,
)

# One exposition line: comment, blank, or `name{labels} value` where the
# value is a prometheus float (including +Inf/-Inf/NaN).
_METRIC_LINE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*"
    r"(\{[a-zA-Z_][a-zA-Z0-9_]*=\"(?:[^\"\\]|\\.)*\""
    r"(,[a-zA-Z_][a-zA-Z0-9_]*=\"(?:[^\"\\]|\\.)*\")*\})?"
    r" (?:[+-]?(?:\d+(?:\.\d+)?(?:[eE][+-]?\d+)?|Inf)|NaN)$"
)
_COMMENT_LINE = re.compile(r"^# (?:HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]*( .*)?$")


def assert_valid_exposition(text: str) -> None:
    assert text.endswith("\n"), "exposition must end with a newline"
    for line in text.splitlines():
        if not line or line.startswith("#"):
            assert not line or _COMMENT_LINE.match(line), line
        else:
            assert _METRIC_LINE.match(line), f"malformed sample line: {line!r}"


class TestInstruments:
    def test_counter_and_gauge(self):
        reg = MetricsRegistry()
        hits = reg.counter("hits_total", "Hits.")
        hits.inc()
        hits.inc(2)
        depth = reg.gauge("queue_depth", "Depth.")
        depth.set(4)
        depth.dec()
        snap = reg.as_dict()
        assert snap["hits_total"]["_"] == 3
        assert snap["queue_depth"]["_"] == 3

    def test_labeled_children_are_independent_and_cached(self):
        reg = MetricsRegistry()
        req = reg.counter("req_total", "Requests.", labelnames=("code",))
        req.labels(code=200).inc(5)
        req.labels(code=500).inc()
        assert req.labels(code=200) is req.labels(code=200)
        assert reg.as_dict()["req_total"] == {"200": 5, "500": 1}

    def test_wrong_labels_rejected(self):
        reg = MetricsRegistry()
        req = reg.counter("req_total", labelnames=("code",))
        with pytest.raises(ValueError, match="expected labels"):
            req.labels(status=200)

    def test_reregistration_returns_same_metric(self):
        reg = MetricsRegistry()
        assert reg.counter("x_total") is reg.counter("x_total")
        with pytest.raises(ValueError, match="conflicting"):
            reg.gauge("x_total")

    def test_histogram_buckets_are_cumulative(self):
        reg = MetricsRegistry()
        lat = reg.histogram("lat_seconds", "Latency.", buckets=(0.1, 1.0))
        for value in (0.05, 0.5, 0.5, 5.0):
            lat.observe(value)
        text = reg.render_prometheus()
        assert 'lat_seconds_bucket{le="0.1"} 1' in text
        assert 'lat_seconds_bucket{le="1"} 3' in text
        assert 'lat_seconds_bucket{le="+Inf"} 4' in text
        assert "lat_seconds_count 4" in text
        assert "lat_seconds_sum 6.05" in text

    def test_thread_safety_under_contention(self):
        reg = MetricsRegistry()
        total = reg.counter("spins_total", labelnames=("worker",))
        lat = reg.histogram("spin_seconds")

        def spin(worker: int) -> None:
            child = total.labels(worker=worker)
            for _ in range(1000):
                child.inc()
                lat.observe(0.01)

        threads = [threading.Thread(target=spin, args=(i,)) for i in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        snap = reg.as_dict()
        assert sum(snap["spins_total"].values()) == 8000
        assert snap["spin_seconds"]["_"]["count"] == 8000


class TestExposition:
    def test_registry_exposition_is_valid(self):
        reg = MetricsRegistry()
        reg.counter("a_total", "With help.", labelnames=("k",)).labels(
            k='tri"cky\\path\n').inc()
        reg.gauge("b").set(2.5)
        reg.histogram("c_seconds").observe(0.2)
        reg.register_collector(lambda: [
            MetricSample("d_total", {"site": "x"}, 7, "counter", "Coll."),
        ])
        text = reg.render_prometheus()
        assert_valid_exposition(text)
        assert "# TYPE a_total counter" in text
        assert "# TYPE c_seconds histogram" in text
        assert 'd_total{site="x"} 7' in text

    def test_collector_duplicate_label_sets_are_deduped(self):
        samples = [
            MetricSample("dup_total", {"k": "v"}, 1, "counter"),
            MetricSample("dup_total", {"k": "v"}, 9, "counter"),
        ]
        text = render_prometheus(samples)
        assert text.count("dup_total{") == 1
        assert 'dup_total{k="v"} 1' in text

    def test_empty_registry_renders_empty(self):
        assert MetricsRegistry().render_prometheus() == ""
        reg = MetricsRegistry()
        reg.counter("never_touched_total")
        assert "never_touched" not in reg.render_prometheus()


class TestBridges:
    def test_counter_snapshot_bridge(self):
        samples = samples_from_counter_snapshot(
            {"retries": 3, "retries.tool": 1})
        assert [(s.labels["counter"], s.value) for s in samples] == [
            ("retries", 3.0), ("retries.tool", 1.0)]
        assert all(s.name == "tybec_resilience_events_total" for s in samples)

    def test_pipeline_stats_bridge(self):
        samples = samples_from_pipeline_stats({
            "family": [10, 2],
            "stage_seconds": {"analyze": 0.5},
            "family_fallbacks": 1,
        })
        by = {(s.name, tuple(sorted(s.labels.items()))): s.value
              for s in samples}
        assert by[("tybec_pipeline_cache_requests_total",
                   (("layer", "family"), ("result", "hit")))] == 10.0
        assert by[("tybec_pipeline_cache_requests_total",
                   (("layer", "family"), ("result", "miss")))] == 2.0
        assert by[("tybec_pipeline_stage_seconds_total",
                   (("stage", "analyze"),))] == 0.5
        assert by[("tybec_pipeline_family_fallbacks_total", ())] == 1.0

    def test_disk_cache_bridge_skips_non_numeric(self):
        samples = samples_from_disk_cache_stats(
            {"entries": 4, "root": "/tmp/x", "bytes": 123, "enabled": True})
        assert {s.name for s in samples} == {
            "tybec_disk_cache_entries", "tybec_disk_cache_bytes"}

    def test_service_metrics_bridge_covers_scattered_surfaces(self):
        payload = {
            "uptime_seconds": 12.5,
            "requests": {"suite": 4, "errors": 1},
            "sweeps": {"started": 2, "completed": 2},
            "coalesce": {"joined": 1},
            "queue": {"depth": 0},
            "resilience": {"counters": {"retries": 2}},
            "pipeline": {"family": [1, 1]},
            "disk_cache": {"entries": 3},
        }
        samples = samples_from_service_metrics(payload)
        names = {s.name for s in samples}
        assert names >= {
            "tybec_service_uptime_seconds",
            "tybec_service_requests_total",
            "tybec_service_sweeps_total",
            "tybec_service_coalesce_total",
            "tybec_service_queue",
            "tybec_resilience_events_total",
            "tybec_pipeline_cache_requests_total",
            "tybec_disk_cache_entries",
        }
        assert_valid_exposition(render_prometheus(samples))
