"""Tracing must never change a canonical byte.

The hard rule of the observability layer: spans, metrics, profiles and
logs are side channels.  A traced run of any canonical producer (suite
report, flow payload, DSE report) must emit byte-identical output to an
untraced run — timings and span ids live in the trace file, never in the
payload.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.trace import Tracer, install_tracer, uninstall_tracer
from repro.suite import SuiteConfig, WorkloadSuite, run_dse


def _traced(fn, path):
    install_tracer(Tracer(path))
    try:
        return fn()
    finally:
        uninstall_tracer()


class TestSuiteReportPurity:
    @given(
        kernels=st.sets(
            st.sampled_from(["sor", "matmul", "conv2d"]), min_size=1, max_size=2
        ),
        max_lanes=st.sampled_from([1, 2, 4]),
    )
    @settings(max_examples=6, deadline=None)
    def test_traced_suite_report_bytes_identical(
        self, tmp_path_factory, kernels, max_lanes
    ):
        config = SuiteConfig.tiny(kernels=tuple(sorted(kernels)),
                                  max_lanes=max_lanes)
        clean = WorkloadSuite(config).run().report.to_json()
        path = tmp_path_factory.mktemp("trace") / "suite.ndjson"
        traced = _traced(lambda: WorkloadSuite(config).run(), path)
        assert traced.report.to_json() == clean
        # the run was actually traced (the identity check is non-vacuous)
        assert path.exists()

    def test_traced_dse_report_bytes_identical(self, tmp_path):
        config = SuiteConfig.tiny(kernels=("sor",))
        clean = run_dse(config, "fmax").report.to_json()
        traced = _traced(lambda: run_dse(config, "fmax"),
                         tmp_path / "dse.ndjson")
        assert traced.report.to_json() == clean


class TestFlowPayloadPurity:
    def test_traced_flow_payload_identical(self, tmp_path):
        from repro.flows import FlowSettings, RTLSimFlow
        from repro.kernels import get_kernel

        module = get_kernel("sor").build_module(lanes=1, grid=(4, 4, 4))
        settings_ = FlowSettings(n_items=16, use_cache=False)
        clean = RTLSimFlow(module, settings_).run()
        traced = _traced(
            lambda: RTLSimFlow(module, settings_).run(),
            tmp_path / "flow.ndjson")
        assert traced.payload == clean.payload
