"""Tracer invariants: nesting, NDJSON round-trip, validation, summaries."""

from __future__ import annotations

import json
import threading

import pytest

from repro.obs.trace import (
    NULL_SPAN,
    TRACE_SCHEMA,
    Tracer,
    activate_from_env,
    current_trace_id,
    current_tracer,
    install_tracer,
    load_trace,
    span,
    summarize_trace,
    uninstall_tracer,
    validate_trace,
    worker_trace_context,
)


class TestAmbientSpan:
    def test_disabled_tracing_yields_shared_null_span(self):
        ctx = span("pipeline.cost")
        assert ctx is NULL_SPAN
        with ctx as sp:
            assert sp is None

    def test_install_makes_span_live(self, tmp_path):
        install_tracer(Tracer(tmp_path / "t.ndjson"))
        with span("suite.sweep") as sp:
            assert sp is not None
            assert sp.site == "suite.sweep"
        assert current_tracer().spans_emitted == 1

    def test_uninstall_closes_and_clears(self, tmp_path):
        tracer = install_tracer(Tracer(tmp_path / "t.ndjson"))
        assert uninstall_tracer() is tracer
        assert current_tracer() is None
        assert span("anything") is NULL_SPAN

    def test_activate_from_env_is_idempotent(self, tmp_path):
        env = {"TYBEC_TRACE": str(tmp_path / "t.ndjson")}
        first = activate_from_env(env)
        second = activate_from_env({"TYBEC_TRACE": str(tmp_path / "u.ndjson")})
        assert first is second

    def test_activate_from_env_without_path_is_noop(self):
        assert activate_from_env({}) is None
        assert current_tracer() is None


class TestNesting:
    def test_children_point_at_innermost_open_span(self, tmp_path):
        tracer = install_tracer(Tracer(tmp_path / "t.ndjson", collect=True))
        with span("outer") as outer:
            with span("middle") as middle:
                with span("inner") as inner:
                    pass
        records = {r["site"]: r for r in tracer.drain()}
        assert "parent" not in records["outer"]
        assert records["middle"]["parent"] == outer.span_id
        assert records["inner"]["parent"] == middle.span_id
        assert inner.parent_id == middle.span_id
        assert {r["trace"] for r in records.values()} == {tracer.trace_id}

    def test_sibling_spans_share_a_parent(self, tmp_path):
        tracer = install_tracer(Tracer(tmp_path / "t.ndjson", collect=True))
        with span("outer") as outer:
            with span("first"):
                pass
            with span("second"):
                pass
        records = {r["site"]: r for r in tracer.drain()}
        assert records["first"]["parent"] == outer.span_id
        assert records["second"]["parent"] == outer.span_id

    def test_current_trace_id_follows_open_span(self, tmp_path):
        assert current_trace_id() is None
        tracer = install_tracer(Tracer(tmp_path / "t.ndjson"))
        assert current_trace_id() == tracer.trace_id
        with span("outer", _trace_id="deadbeef"):
            assert current_trace_id() == "deadbeef"
        assert current_trace_id() == tracer.trace_id

    def test_explicit_trace_id_starts_a_fresh_root(self, tmp_path):
        tracer = install_tracer(Tracer(tmp_path / "t.ndjson", collect=True))
        with span("service.request", _trace_id="cafe"):
            with span("suite.sweep"):
                pass
        records = {r["site"]: r for r in tracer.drain()}
        assert records["service.request"]["trace"] == "cafe"
        assert "parent" not in records["service.request"]
        assert records["suite.sweep"]["trace"] == "cafe"
        assert (records["suite.sweep"]["parent"]
                == records["service.request"]["span"])

    def test_new_threads_start_unparented(self, tmp_path):
        tracer = install_tracer(Tracer(tmp_path / "t.ndjson", collect=True))
        seen: list[str | None] = []

        def worker() -> None:
            with span("thread.child") as sp:
                seen.append(sp.parent_id)

        with span("outer"):
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        assert seen == [None]
        assert tracer.spans_emitted == 2

    def test_exception_sets_error_attr_and_propagates(self, tmp_path):
        tracer = install_tracer(Tracer(tmp_path / "t.ndjson", collect=True))
        with pytest.raises(ValueError):
            with span("failing"):
                raise ValueError("boom")
        (record,) = tracer.drain()
        assert record["attrs"]["error"] == "ValueError"
        assert record["duration"] >= 0


class TestRoundTrip:
    def test_file_round_trip_validates_and_orders(self, tmp_path):
        path = tmp_path / "t.ndjson"
        install_tracer(Tracer(path))
        with span("outer", kernel="sor"):
            with span("inner"):
                pass
        uninstall_tracer()

        header, records = load_trace(path)
        assert header["schema"] == TRACE_SCHEMA
        assert len(records) == 2
        # spans are emitted on exit, so inner precedes outer on disk and
        # validation must tolerate forward parent references
        assert records[0]["site"] == "inner"
        assert records[1]["attrs"] == {"kernel": "sor"}

    def test_spans_buffer_until_flush(self, tmp_path):
        path = tmp_path / "t.ndjson"
        tracer = install_tracer(Tracer(path))
        with span("buffered"):
            pass
        # span exit only buffers; nothing but (at most) the header has
        # reached the file yet
        assert len(path.read_text().splitlines()) <= 1
        tracer.flush()
        assert len(path.read_text().splitlines()) == 2

    def test_load_rejects_truncated_json(self, tmp_path):
        path = tmp_path / "t.ndjson"
        path.write_text('{"schema": "repro-trace/1", "trace_id": "x"}\n{"tr')
        with pytest.raises(ValueError, match="invalid JSON"):
            load_trace(path)

    def test_validate_rejects_bad_traces(self):
        header = {"schema": TRACE_SCHEMA, "trace_id": "t"}
        good = {"trace": "t", "span": "a", "site": "s", "start": 0.0,
                "duration": 0.1, "pid": 1}
        with pytest.raises(ValueError, match="schema"):
            validate_trace({"schema": "nope", "trace_id": "t"}, [])
        with pytest.raises(ValueError, match="missing 'duration'"):
            validate_trace(header, [{k: v for k, v in good.items()
                                     if k != "duration"}])
        with pytest.raises(ValueError, match="duplicate span id"):
            validate_trace(header, [good, dict(good)])
        with pytest.raises(ValueError, match="unknown parent"):
            validate_trace(header, [{**good, "parent": "ghost"}])
        with pytest.raises(ValueError, match="negative"):
            validate_trace(header, [{**good, "duration": -1.0}])


class TestWorkerContext:
    def test_context_round_trips_through_a_collecting_tracer(self, tmp_path):
        parent = install_tracer(Tracer(tmp_path / "t.ndjson", collect=True))
        with span("backend.pool.batch") as pool_span:
            ctx = worker_trace_context(pool_span)
        assert ctx == (parent.trace_id, pool_span.span_id)

        # what _evaluate_batch does on the worker side
        worker = Tracer(trace_id=ctx[0], collect=True, root_parent=ctx[1])
        with worker.span("worker.batch", {"points": 3}):
            with worker.span("pipeline.cost", {}):
                pass
        shipped = worker.drain()

        assert parent.emit_foreign(shipped) == 2
        records = {r["site"]: r for r in parent.drain()}
        assert records["worker.batch"]["trace"] == parent.trace_id
        assert records["worker.batch"]["parent"] == pool_span.span_id
        assert (records["pipeline.cost"]["parent"]
                == records["worker.batch"]["span"])

    def test_none_parent_means_no_context(self):
        assert worker_trace_context(None) is None

    def test_emit_foreign_skips_junk(self, tmp_path):
        tracer = Tracer(tmp_path / "t.ndjson")
        assert tracer.emit_foreign(["nope", {"no_span_key": 1}, None]) == 0
        tracer.close()


class TestSummarize:
    def _records(self):
        mk = lambda span_id, site, dur, parent=None: {  # noqa: E731
            "trace": "t", "span": span_id, "site": site, "start": 0.0,
            "duration": dur, "pid": 1,
            **({"parent": parent} if parent else {}),
        }
        return [
            mk("r", "suite.sweep", 1.0),
            mk("a", "optimizer.round", 0.7, "r"),
            mk("b", "optimizer.round", 0.2, "r"),
            mk("c", "pipeline.cost", 0.6, "a"),
        ]

    def test_aggregates_per_site(self):
        summary = summarize_trace(self._records())
        assert summary["span_count"] == 4
        assert summary["wall_seconds"] == 1.0
        rounds = summary["sites"]["optimizer.round"]
        assert rounds["count"] == 2
        assert rounds["total_seconds"] == pytest.approx(0.9)
        assert rounds["max_seconds"] == 0.7

    def test_critical_path_descends_by_duration(self):
        summary = summarize_trace(self._records())
        assert [hop["site"] for hop in summary["critical_path"]] == [
            "suite.sweep", "optimizer.round", "pipeline.cost"]

    def test_slowest_is_sorted_and_capped(self):
        summary = summarize_trace(self._records(), top=2)
        assert [r["span"] for r in summary["slowest"]] == ["r", "a"]

    def test_summary_is_json_serializable(self):
        json.dumps(summarize_trace(self._records()))
