"""Service-side observability: Prometheus endpoint, access logs, trace
propagation through the HTTP seam."""

from __future__ import annotations

import http.client
import json
import logging
import threading
import time

import pytest

from repro.obs.trace import Tracer, install_tracer, uninstall_tracer
from repro.service import ExplorationService, ServiceClient, ServiceServer
from repro.service.server import TRACE_HEADER

from tests.obs.test_metrics import assert_valid_exposition

TINY_SPEC = {"tiny": True, "kernels": ["sor"], "max_lanes": 2}


@pytest.fixture
def server():
    srv = ServiceServer(("127.0.0.1", 0),
                        ExplorationService(max_concurrency=2))
    thread = threading.Thread(target=srv.serve_forever, daemon=True)
    thread.start()
    yield srv
    srv.shutdown()
    srv.server_close()


@pytest.fixture
def client(server):
    return ServiceClient(port=server.port)


def _get(server, path, headers=None):
    conn = http.client.HTTPConnection("127.0.0.1", server.port, timeout=30)
    try:
        conn.request("GET", path, headers=headers or {})
        response = conn.getresponse()
        return response.status, dict(response.getheaders()), response.read()
    finally:
        conn.close()


class TestPrometheusEndpoint:
    def test_prometheus_format_is_valid_exposition(self, server, client):
        from repro.resilience import COUNTERS

        COUNTERS.bump("obs.test_probe")  # counters render once non-zero
        client.suite(dict(TINY_SPEC))
        # the client returns once it reads the final chunk, which can beat
        # the handler thread's finally-block observation — poll briefly
        deadline = time.monotonic() + 5.0
        while True:
            status, headers, body = _get(server, "/metrics?format=prometheus")
            if (b"tybec_request_seconds_bucket" in body
                    or time.monotonic() > deadline):
                break
            time.sleep(0.02)
        assert status == 200
        assert headers["Content-Type"].startswith("text/plain; version=0.0.4")
        text = body.decode()
        assert_valid_exposition(text)
        # the previously-scattered surfaces all show up in one exposition
        assert "tybec_service_requests_total" in text
        assert "tybec_service_sweeps_total" in text
        assert "tybec_service_coalesce_total" in text
        assert "tybec_resilience_events_total" in text
        assert "tybec_pipeline_cache_requests_total" in text
        assert "tybec_service_uptime_seconds" in text
        # the native request-latency histogram recorded the suite POST
        assert "tybec_request_seconds_bucket" in text
        assert 'endpoint="/suite"' in text

    def test_json_metrics_shape_is_unchanged(self, server, client):
        client.suite(dict(TINY_SPEC))
        payload = client.metrics()
        # the PR-4/PR-6 metrics contract every existing dashboard reads
        assert set(payload) >= {"uptime_seconds", "requests", "sweeps",
                                "coalesce", "queue", "resilience"}
        assert payload["sweeps"]["completed"] == 1

    def test_unknown_format_is_a_400(self, server):
        status, _, body = _get(server, "/metrics?format=xml")
        assert status == 400
        assert b"unknown metrics format" in body

    def test_endpoint_label_cardinality_is_clamped(self, server):
        for path in ("/nope", "/attack-1", "/attack-2"):
            status, _, _ = _get(server, path)
            assert status == 404
        deadline = time.monotonic() + 5.0
        while True:
            _, _, body = _get(server, "/metrics?format=prometheus")
            if (b'endpoint="other"' in body
                    or time.monotonic() > deadline):
                break
            time.sleep(0.02)
        text = body.decode()
        assert 'endpoint="other"' in text
        assert "attack" not in text


class TestAccessLogs:
    def test_requests_are_logged_with_status_and_duration(self, server,
                                                          caplog):
        with caplog.at_level(logging.DEBUG, logger="tybec.service.access"):
            _get(server, "/healthz")
            # the access event is emitted after the response is written;
            # wait for the handler thread's finally block to land
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline:
                events = [r.getMessage() for r in caplog.records
                          if r.getMessage().startswith("request ")]
                if events:
                    break
                time.sleep(0.02)
        assert events, caplog.records
        line = events[0]
        assert "method=GET" in line
        assert "path=/healthz" in line
        assert "status=200" in line
        assert "duration_ms=" in line

    def test_stdlib_log_message_is_structured_not_dropped(self, server,
                                                          caplog):
        handler = ServiceServer.RequestHandlerClass = server.RequestHandlerClass
        with caplog.at_level(logging.DEBUG, logger="tybec.service.access"):
            _get(server, "/healthz")
        http_lines = [r for r in caplog.records
                      if r.getMessage().startswith("http ")]
        assert http_lines, "BaseHTTPRequestHandler logs were swallowed"
        assert handler.log_message is not None


class TestTracePropagation:
    def test_trace_header_stamps_response_and_events(self, server):
        conn = http.client.HTTPConnection("127.0.0.1", server.port,
                                          timeout=60)
        try:
            conn.request("POST", "/suite", body=json.dumps(TINY_SPEC),
                         headers={"Content-Type": "application/json",
                                  TRACE_HEADER: "cafebabe"})
            response = conn.getresponse()
            assert response.status == 200
            assert response.getheader(TRACE_HEADER) == "cafebabe"
            events = [json.loads(line) for line in response.read().splitlines()
                      if line.strip()]
        finally:
            conn.close()
        assert events, "no NDJSON events streamed"
        assert all(event["trace"] == "cafebabe" for event in events)
        report = next(e for e in events if e["event"] == "report")
        # the trace id rides BESIDE the canonical payload, never inside it
        assert "trace" not in report["payload"]

    def test_untraced_request_streams_unstamped_events(self, server, client):
        response = client.suite(dict(TINY_SPEC))
        assert all("trace" not in entry for entry in response.entries)

    def test_client_propagates_active_trace(self, server, tmp_path):
        tracer = install_tracer(Tracer(tmp_path / "client.ndjson"))
        try:
            client = ServiceClient(port=server.port)
            response = client.suite(dict(TINY_SPEC))
        finally:
            uninstall_tracer()
        assert response.entries
        assert all(entry["trace"] == tracer.trace_id
                   for entry in response.entries)

    def test_traced_service_payload_matches_untraced_batch_run(self, server):
        from repro.service import suite_config_from_spec
        from repro.suite import WorkloadSuite
        from repro.suite.report import canonical_json

        conn = http.client.HTTPConnection("127.0.0.1", server.port,
                                          timeout=60)
        try:
            conn.request("POST", "/suite", body=json.dumps(TINY_SPEC),
                         headers={"Content-Type": "application/json",
                                  TRACE_HEADER: "feedface"})
            response = conn.getresponse()
            events = [json.loads(line) for line in response.read().splitlines()
                      if line.strip()]
        finally:
            conn.close()
        payload = next(e for e in events if e["event"] == "report")["payload"]
        spec = {k: v for k, v in TINY_SPEC.items()}
        expected = WorkloadSuite(
            suite_config_from_spec(spec)).run().report.to_json()
        assert canonical_json(payload) == expected
