"""Pool-worker spans ride home with the worker stats and re-parent.

The acceptance bar of the tentpole: a traced multiprocess sweep produces
ONE valid trace in which every worker's span tree hangs off the parent's
``backend.pool.batch`` span, under one trace id — and the span transport
never contaminates the merged worker cache stats.
"""

from __future__ import annotations

import pytest

from repro.explore import (
    DesignSpace,
    ExplorationEngine,
    ProcessPoolBackend,
    SerialBackend,
)
from repro.kernels import get_kernel
from repro.obs.trace import (
    Tracer,
    install_tracer,
    load_trace,
    uninstall_tracer,
)


def _space(lanes=(1, 2, 4, 8)) -> DesignSpace:
    return DesignSpace(kernel=get_kernel("sor"), grid=(8, 8, 8),
                       iterations=10, lanes=list(lanes))


def _traced_sweep(path, backend):
    install_tracer(Tracer(path))
    try:
        return ExplorationEngine(backend).explore(_space())
    finally:
        uninstall_tracer()


class TestPoolRoundTrip:
    def test_worker_spans_join_the_parent_trace(self, tmp_path):
        path = tmp_path / "pool.ndjson"
        sweep = _traced_sweep(path, ProcessPoolBackend(max_workers=2))
        assert sweep.evaluated == 4

        header, records = load_trace(path)  # load_trace validates
        sites = {}
        for record in records:
            sites.setdefault(record["site"], []).append(record)

        assert {r["trace"] for r in records} == {header["trace_id"]}
        (pool_batch,) = sites["backend.pool.batch"]
        assert pool_batch["attrs"]["workers"] == 2
        # every worker batch re-parented under the pool batch span, from
        # a different pid than the parent's
        assert sites["worker.batch"], "no worker spans came home"
        for batch in sites["worker.batch"]:
            assert batch["parent"] == pool_batch["span"]
        worker_pids = {r["pid"] for r in sites["worker.batch"]}
        assert pool_batch["pid"] not in worker_pids
        # the per-point pipeline spans nest under their worker batch
        batch_ids = {r["span"] for r in sites["worker.batch"]}
        assert sites["pipeline.cost"]
        for cost in sites["pipeline.cost"]:
            assert cost["parent"] in batch_ids

    def test_span_transport_leaves_merged_stats_clean(self, tmp_path):
        from repro.obs.trace import WORKER_SPANS_KEY

        path = tmp_path / "pool.ndjson"
        sweep = _traced_sweep(path, ProcessPoolBackend(max_workers=2))
        assert WORKER_SPANS_KEY not in sweep.stats
        # merge_stats still produced its usual numeric payload
        assert sweep.stats.get("family") is not None

    def test_untraced_pool_run_ships_no_spans(self, tmp_path):
        sweep = ExplorationEngine(ProcessPoolBackend(max_workers=2)).explore(
            _space())
        assert sweep.evaluated == 4

    def test_serial_backend_traces_without_worker_spans(self, tmp_path):
        path = tmp_path / "serial.ndjson"
        _traced_sweep(path, SerialBackend())
        _, records = load_trace(path)
        sites = {r["site"] for r in records}
        assert "backend.serial.batch" in sites
        assert "worker.batch" not in sites
        assert len({r["pid"] for r in records}) == 1

    def test_traced_and_untraced_pool_reports_identical(self, tmp_path):
        def model_fields(sweep):
            # estimation_seconds is wall clock — nondeterministic between
            # ANY two runs; every model-derived field must be identical
            reports = [e.report.as_dict() for e in sweep.entries]
            for report in reports:
                report.pop("estimation_seconds", None)
            return reports

        clean = ExplorationEngine(ProcessPoolBackend(max_workers=2)).explore(
            _space())
        traced = _traced_sweep(tmp_path / "p.ndjson",
                               ProcessPoolBackend(max_workers=2))
        assert model_fields(traced) == model_fields(clean)


class TestOptimizerSpans:
    def test_optimizer_rounds_nest_under_dse(self, tmp_path):
        from repro.suite import SuiteConfig, run_dse

        path = tmp_path / "dse.ndjson"
        install_tracer(Tracer(path))
        try:
            run_dse(SuiteConfig.tiny(kernels=("sor",)), "fmax")
        finally:
            uninstall_tracer()
        _, records = load_trace(path)
        sites = {}
        for record in records:
            sites.setdefault(record["site"], []).append(record)
        assert sites.get("dse.run")
        dse_ids = {r["span"] for r in sites["dse.run"]}
        assert sites.get("optimizer.round")
        for rnd in sites["optimizer.round"]:
            assert rnd["parent"] in dse_ids
        assert all("note" not in r.get("attrs", {}) or r["attrs"]["note"]
                   for r in sites["optimizer.round"])
