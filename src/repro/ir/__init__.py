"""TyTra Intermediate Representation (TyTra-IR).

The TyTra-IR is the language in which design variants are expressed and
costed (paper, Section IV).  It is strongly and statically typed, uses
Static Single Assignment (SSA) form for all computation, and is split into
two components:

* **Manage-IR** — declares *memory objects* (anything that can source or
  sink a stream: in software terms an array in main memory) and *stream
  objects* that connect a streaming port of a processing element to a
  memory object, together with the access pattern of the stream.

* **Compute-IR** — describes the processing element(s): a hierarchy of IR
  functions, each annotated with a parallelism keyword (``pipe``, ``par``,
  ``seq`` or ``comb``), whose bodies are SSA instructions, stream-offset
  declarations and calls to child functions.

The public surface of this package:

``ScalarType``, ``parse_type``
    The scalar type system (``ui18``, ``i32``, ``float32``, ...).

``Instruction``, ``OffsetInstruction``, ``CallInstruction``, ``Operand``
    SSA statements appearing inside Compute-IR functions.

``IRFunction``, ``MemoryObject``, ``StreamObject``, ``PortDeclaration``,
``Module``
    Structural containers.

``IRBuilder``
    A programmatic, type-checked way of constructing modules.

``parse_module`` / ``print_module``
    Text round-trip for ``.tirl`` files (the concrete syntax used in the
    paper's Figures 12 and 14).

``validate_module``
    Structural / SSA / type validation.
"""

from repro.ir.errors import IRError, IRParseError, IRTypeError, IRValidationError
from repro.ir.types import ScalarType, TypeKind, parse_type
from repro.ir.instructions import (
    OPCODES,
    CallInstruction,
    Instruction,
    OffsetInstruction,
    OpcodeInfo,
    Operand,
    opcode_info,
)
from repro.ir.functions import (
    FunctionKind,
    IRFunction,
    MemoryObject,
    Module,
    PortDeclaration,
    StreamDirection,
    StreamObject,
)
from repro.ir.builder import IRBuilder, FunctionBuilder
from repro.ir.parser import parse_module
from repro.ir.printer import print_module
from repro.ir.validator import validate_module

__all__ = [
    "IRError",
    "IRParseError",
    "IRTypeError",
    "IRValidationError",
    "ScalarType",
    "TypeKind",
    "parse_type",
    "OPCODES",
    "OpcodeInfo",
    "opcode_info",
    "Operand",
    "Instruction",
    "OffsetInstruction",
    "CallInstruction",
    "FunctionKind",
    "StreamDirection",
    "IRFunction",
    "MemoryObject",
    "StreamObject",
    "PortDeclaration",
    "Module",
    "IRBuilder",
    "FunctionBuilder",
    "parse_module",
    "print_module",
    "validate_module",
]
