"""SSA statements of the Compute-IR.

Three statement species appear in the body of a TyTra-IR function (see
Figure 12 of the paper):

* *stream offsets* — ``ui18 %pip1 = ui18 %p, !offset, !+1`` — declare a new
  stream that is a (positive or negative) offset of an existing input
  stream.  On hardware these become offset/delay buffers in the stream
  controller and they drive the ``Noff`` term of the throughput model.

* *datapath instructions* — ``ui18 %1 = mul ui18 %p_i_p1, %cn2l`` — LLVM
  style SSA arithmetic.  Each opcode has an entry in :data:`OPCODES`
  describing its category, default pipeline latency and whether it can be
  mapped onto DSP blocks; those attributes feed both the scheduler and the
  resource cost model.

* *calls* — ``call @f0(...) pipe`` — instantiate a child function with a
  parallelism keyword, used to build the configuration hierarchy.

Global accumulations (``ui18 @sorErrAcc = add ui18 %sorErr, %sorErrAcc``)
are ordinary :class:`Instruction` objects whose result name starts with
``@``; they model reductions onto a global variable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Iterable, Union

from repro.ir.errors import IRTypeError
from repro.ir.types import ScalarType

__all__ = [
    "OperandKind",
    "Operand",
    "OpcodeInfo",
    "OPCODES",
    "COMPARE_PREDICATES",
    "decode_predicate",
    "opcode_info",
    "Instruction",
    "OffsetInstruction",
    "CallInstruction",
    "Statement",
]


class OperandKind(str, Enum):
    """How an operand is referenced."""

    SSA = "ssa"          # %name — a local SSA value or function argument
    GLOBAL = "global"    # @name — a module level (accumulator) variable
    CONST = "const"      # an immediate literal


@dataclass(frozen=True)
class Operand:
    """A single operand of an instruction."""

    kind: OperandKind
    name: str | None = None
    value: float | int | None = None

    def __post_init__(self) -> None:
        if self.kind in (OperandKind.SSA, OperandKind.GLOBAL) and not self.name:
            raise IRTypeError("named operand requires a name")
        if self.kind is OperandKind.CONST and self.value is None:
            raise IRTypeError("constant operand requires a value")

    # -- constructors ---------------------------------------------------
    @staticmethod
    def ssa(name: str) -> "Operand":
        return Operand(OperandKind.SSA, name=name.lstrip("%"))

    @staticmethod
    def global_(name: str) -> "Operand":
        return Operand(OperandKind.GLOBAL, name=name.lstrip("@"))

    @staticmethod
    def const(value: float | int) -> "Operand":
        return Operand(OperandKind.CONST, value=value)

    # -- predicates -----------------------------------------------------
    @property
    def is_const(self) -> bool:
        return self.kind is OperandKind.CONST

    @property
    def is_ssa(self) -> bool:
        return self.kind is OperandKind.SSA

    @property
    def is_global(self) -> bool:
        return self.kind is OperandKind.GLOBAL

    def __str__(self) -> str:
        if self.kind is OperandKind.SSA:
            return f"%{self.name}"
        if self.kind is OperandKind.GLOBAL:
            return f"@{self.name}"
        return repr(self.value)


@dataclass(frozen=True)
class OpcodeInfo:
    """Static description of an IR opcode.

    Attributes
    ----------
    name:
        Mnemonic as it appears in the IR text.
    category:
        Coarse family used by the resource model: ``add``, ``mul``, ``div``,
        ``logic``, ``shift``, ``cmp``, ``select``, ``special`` or ``mem``.
    latency:
        Default pipeline latency in cycles for a 32-bit operand; the
        scheduler scales some categories with operand width.
    dsp_eligible:
        Whether the operation can be mapped to hard DSP blocks (only
        relevant to multiply-like operations).
    commutative:
        Whether operand order is irrelevant (used by CSE-style helpers).
    float_only / int_only:
        Constrain the operand type family.
    """

    name: str
    category: str
    latency: int = 1
    dsp_eligible: bool = False
    commutative: bool = False
    float_only: bool = False
    int_only: bool = False
    arity: int = 2


def _mk(name, category, latency=1, dsp=False, comm=False, f=False, i=False, arity=2):
    return OpcodeInfo(
        name=name,
        category=category,
        latency=latency,
        dsp_eligible=dsp,
        commutative=comm,
        float_only=f,
        int_only=i,
        arity=arity,
    )


#: Registry of the opcodes understood by the compiler and the cost model.
OPCODES: dict[str, OpcodeInfo] = {
    op.name: op
    for op in [
        # integer / fixed point arithmetic
        _mk("add", "add", latency=1, comm=True),
        _mk("sub", "add", latency=1),
        _mk("mul", "mul", latency=3, dsp=True, comm=True),
        _mk("div", "div", latency=18, i=True),
        _mk("udiv", "div", latency=18, i=True),
        _mk("sdiv", "div", latency=20, i=True),
        _mk("rem", "div", latency=18, i=True),
        _mk("urem", "div", latency=18, i=True),
        # bitwise / logic
        _mk("and", "logic", latency=1, comm=True, i=True),
        _mk("or", "logic", latency=1, comm=True, i=True),
        _mk("xor", "logic", latency=1, comm=True, i=True),
        _mk("not", "logic", latency=1, i=True, arity=1),
        _mk("shl", "shift", latency=1, i=True),
        _mk("lshr", "shift", latency=1, i=True),
        _mk("ashr", "shift", latency=1, i=True),
        # comparison / selection
        _mk("icmp", "cmp", latency=1, i=True),
        _mk("fcmp", "cmp", latency=2, f=True),
        _mk("select", "select", latency=1, arity=3),
        _mk("min", "cmp", latency=1, comm=True),
        _mk("max", "cmp", latency=1, comm=True),
        _mk("abs", "cmp", latency=1, arity=1),
        # floating point
        _mk("fadd", "add", latency=7, f=True, comm=True),
        _mk("fsub", "add", latency=7, f=True),
        _mk("fmul", "mul", latency=5, dsp=True, f=True, comm=True),
        _mk("fdiv", "div", latency=28, f=True),
        _mk("fsqrt", "special", latency=28, f=True, arity=1),
        _mk("fexp", "special", latency=17, f=True, arity=1),
        _mk("flog", "special", latency=21, f=True, arity=1),
        # fused / misc
        _mk("mac", "mul", latency=4, dsp=True, arity=3),
        _mk("sqrt", "special", latency=16, i=True, arity=1),
        _mk("mov", "logic", latency=0, arity=1),
        _mk("trunc", "logic", latency=0, arity=1),
        _mk("zext", "logic", latency=0, arity=1),
        _mk("sext", "logic", latency=0, arity=1),
    ]
}


def opcode_info(name: str) -> OpcodeInfo:
    """Look up an opcode, raising :class:`IRTypeError` for unknown names."""
    try:
        return OPCODES[name]
    except KeyError as exc:
        raise IRTypeError(f"unknown opcode {name!r}") from exc


#: comparison predicates accepted by ``icmp``/``fcmp``.  The bare forms take
#: their signedness from the operand type; the ``u``/``s`` prefixed forms pin
#: it explicitly (LLVM style).  ``lt`` is the historical default: an ``icmp``
#: without a predicate compares with ``<``.
COMPARE_PREDICATES = frozenset(
    ["eq", "ne", "lt", "le", "gt", "ge",
     "ult", "ule", "ugt", "uge", "slt", "sle", "sgt", "sge"]
)

#: opcodes that may carry a comparison predicate
_PREDICATED_OPCODES = ("icmp", "fcmp")


def decode_predicate(predicate: str | None, signed_default: bool) -> tuple[bool, str]:
    """Resolve a comparison predicate to ``(signed, base relation)``.

    ``base`` is one of eq/ne/lt/le/gt/ge; bare predicates take their
    signedness from ``signed_default`` (the operand type), the ``u``/``s``
    prefixed forms pin it.  One decoder shared by the Verilog generator
    and the Python reference model — the two must agree bit for bit.
    """
    pred = predicate or "lt"
    if pred in ("eq", "ne", "lt", "le", "gt", "ge"):
        return signed_default, pred
    if pred[0] == "u":
        return False, pred[1:]
    return True, pred[1:]  # s-prefixed


@dataclass
class Instruction:
    """A datapath SSA instruction (``%res = opcode type %a, %b``).

    Comparison instructions (``icmp``/``fcmp``) may carry a ``predicate``
    naming the comparison relation (``icmp.eq``, ``icmp.sge`` ... in the
    concrete syntax); without one they compare with the historical ``lt``.
    """

    result: str
    result_type: ScalarType
    opcode: str
    operands: list[Operand] = field(default_factory=list)
    #: True if the result is a module-level global (reduction accumulator)
    result_is_global: bool = False
    #: comparison predicate for icmp/fcmp (None = default ``lt``)
    predicate: str | None = None

    def __post_init__(self) -> None:
        self.result = self.result.lstrip("%@")
        opcode_info(self.opcode)  # raises for unknown opcodes
        if self.predicate is not None:
            if self.opcode not in _PREDICATED_OPCODES:
                raise IRTypeError(
                    f"opcode {self.opcode!r} cannot carry a comparison predicate"
                )
            if self.predicate not in COMPARE_PREDICATES:
                raise IRTypeError(
                    f"unknown comparison predicate {self.predicate!r}; "
                    f"expected one of {sorted(COMPARE_PREDICATES)}"
                )

    @property
    def info(self) -> OpcodeInfo:
        return OPCODES[self.opcode]

    @property
    def is_reduction(self) -> bool:
        """A global accumulation, e.g. ``@acc = add %x, %acc``."""
        return self.result_is_global

    @property
    def input_names(self) -> list[str]:
        """Names of non-constant operands (SSA and global reads)."""
        return [op.name for op in self.operands if not op.is_const]

    @property
    def constant_operands(self) -> list[Operand]:
        return [op for op in self.operands if op.is_const]

    def uses(self, name: str) -> bool:
        return name in self.input_names

    @property
    def qualified_opcode(self) -> str:
        """The opcode with its predicate suffix (``icmp.eq``), if any."""
        return f"{self.opcode}.{self.predicate}" if self.predicate else self.opcode

    def __str__(self) -> str:
        sigil = "@" if self.result_is_global else "%"
        ops = ", ".join(str(o) for o in self.operands)
        return (
            f"{self.result_type} {sigil}{self.result} = "
            f"{self.qualified_opcode} {self.result_type} {ops}"
        )


@dataclass
class OffsetInstruction:
    """A stream-offset declaration (``%pip1 = %p, !offset, !+1``).

    ``offset`` may be a resolved integer or a symbolic expression string
    such as ``"-ND1*ND2"`` referring to module constants; symbolic offsets
    are resolved by :meth:`repro.ir.functions.Module.resolve_offset`.
    """

    result: str
    result_type: ScalarType
    source: str
    offset: int | str

    def __post_init__(self) -> None:
        self.result = self.result.lstrip("%")
        self.source = self.source.lstrip("%")

    @property
    def is_symbolic(self) -> bool:
        return isinstance(self.offset, str)

    def resolved(self, constants: dict[str, int]) -> int:
        """Return the integer offset, resolving symbols against ``constants``."""
        if isinstance(self.offset, int):
            return self.offset
        return _eval_offset_expression(self.offset, constants)

    def __str__(self) -> str:
        off = self.offset if isinstance(self.offset, str) else f"{self.offset:+d}"
        return (
            f"{self.result_type} %{self.result} = "
            f"{self.result_type} %{self.source}, !offset, !{off}"
        )


@dataclass
class CallInstruction:
    """A call to a child IR function with a parallelism keyword."""

    callee: str
    args: list[str] = field(default_factory=list)
    kind: str | None = None  # 'pipe' | 'par' | 'seq' | 'comb' | None

    def __post_init__(self) -> None:
        self.callee = self.callee.lstrip("@")
        self.args = [a.lstrip("%") for a in self.args]

    def __str__(self) -> str:
        args = ", ".join(f"%{a}" for a in self.args)
        suffix = f" {self.kind}" if self.kind else ""
        return f"call @{self.callee}({args}){suffix}"


Statement = Union[Instruction, OffsetInstruction, CallInstruction]


# ----------------------------------------------------------------------
# Symbolic offset expressions
# ----------------------------------------------------------------------

_ALLOWED_OFFSET_CHARS = set("+-*() _0123456789")


def _eval_offset_expression(expr: str, constants: dict[str, int]) -> int:
    """Safely evaluate a symbolic offset expression like ``-ND1*ND2``.

    Only identifiers found in ``constants``, integer literals and the
    operators ``+ - * ( )`` are permitted.
    """
    import re as _re

    names = set(_re.findall(r"[A-Za-z_][A-Za-z_0-9]*", expr))
    unknown = names - set(constants)
    if unknown:
        raise IRTypeError(
            f"offset expression {expr!r} references unknown constants {sorted(unknown)}"
        )
    stripped = _re.sub(r"[A-Za-z_][A-Za-z_0-9]*", "", expr)
    bad = set(stripped) - _ALLOWED_OFFSET_CHARS
    if bad:
        raise IRTypeError(f"offset expression {expr!r} contains invalid characters {bad}")
    value = eval(expr, {"__builtins__": {}}, dict(constants))  # noqa: S307 - sanitised above
    if not isinstance(value, int):
        raise IRTypeError(f"offset expression {expr!r} did not evaluate to an integer")
    return value


def iter_ssa_uses(statements: Iterable[Statement]):
    """Yield ``(statement, operand_name)`` pairs for every SSA use."""
    for stmt in statements:
        if isinstance(stmt, Instruction):
            for name in stmt.input_names:
                yield stmt, name
        elif isinstance(stmt, OffsetInstruction):
            yield stmt, stmt.source
        elif isinstance(stmt, CallInstruction):
            for name in stmt.args:
                yield stmt, name
