"""Structural, SSA and type validation of TyTra-IR modules.

The validator enforces the rules the paper's compiler assumes when costing
a design:

* a ``main`` entry exists and only instantiates the hierarchy (calls);
* every called function is defined and the call graph is acyclic;
* ``comb`` functions are pure single-cycle datapaths (no calls, no offsets);
* ``par`` and ``seq`` functions only compose children (no datapath
  instructions) — they express the design-space axes, not computation;
* SSA discipline: every value is defined exactly once, every non-constant
  operand refers to an argument, an earlier definition in the same
  function, or a global accumulator;
* stream offsets only apply to function arguments (input streams);
* symbolic offsets only reference declared module constants;
* Manage-IR cross references (ports -> stream objects -> memory objects)
  resolve.
"""

from __future__ import annotations

from repro.ir.errors import IRValidationError
from repro.ir.functions import FunctionKind, IRFunction, Module, StreamDirection
from repro.ir.instructions import CallInstruction, Instruction, OffsetInstruction

__all__ = ["validate_module", "validate_function"]


def validate_function(func: IRFunction, module: Module | None = None) -> None:
    """Validate a single function; ``module`` enables cross-references."""
    name = func.name

    if func.kind is FunctionKind.COMB:
        if func.calls():
            raise IRValidationError("comb functions may not contain calls", function=name)
        if func.offsets():
            raise IRValidationError(
                "comb functions may not declare stream offsets", function=name
            )

    if func.kind in (FunctionKind.PAR, FunctionKind.SEQ):
        if func.instructions():
            raise IRValidationError(
                f"{func.kind} functions may only compose child functions "
                "(no datapath instructions)",
                function=name,
            )
        if not func.calls():
            raise IRValidationError(
                f"{func.kind} functions must call at least one child", function=name
            )

    # ---- SSA discipline -------------------------------------------------
    defined: set[str] = set(func.arg_names)
    globals_written: set[str] = set()
    for stmt in func.body:
        if isinstance(stmt, OffsetInstruction):
            if stmt.source not in func.arg_names:
                raise IRValidationError(
                    f"offset source %{stmt.source} must be a function argument (an "
                    "input stream)",
                    function=name,
                )
            if stmt.result in defined:
                raise IRValidationError(
                    f"%{stmt.result} defined more than once", function=name
                )
            src_type = func.arg_types[stmt.source]
            if src_type != stmt.result_type:
                raise IRValidationError(
                    f"offset %{stmt.result}: type {stmt.result_type} does not match "
                    f"source stream type {src_type}",
                    function=name,
                )
            if isinstance(stmt.offset, str) and module is not None:
                # will raise IRTypeError for unresolvable symbols
                module.resolve_offset(stmt.offset)
            defined.add(stmt.result)
        elif isinstance(stmt, Instruction):
            arity = stmt.info.arity
            if len(stmt.operands) != arity:
                raise IRValidationError(
                    f"opcode {stmt.opcode!r} expects {arity} operands, got "
                    f"{len(stmt.operands)}",
                    function=name,
                )
            for op in stmt.operands:
                if op.is_ssa and op.name not in defined:
                    raise IRValidationError(
                        f"use of undefined value %{op.name} in {stmt!s}", function=name
                    )
            if stmt.result_is_global:
                globals_written.add(stmt.result)
            else:
                if stmt.result in defined:
                    raise IRValidationError(
                        f"%{stmt.result} defined more than once", function=name
                    )
                defined.add(stmt.result)
        elif isinstance(stmt, CallInstruction):
            if module is not None and not module.has_function(stmt.callee):
                raise IRValidationError(
                    f"call to undefined function @{stmt.callee}", function=name
                )
        else:  # pragma: no cover - defensive
            raise IRValidationError(f"unknown statement {stmt!r}", function=name)


def _check_call_graph_acyclic(module: Module) -> None:
    graph = module.call_graph()
    WHITE, GREY, BLACK = 0, 1, 2
    colour = {n: WHITE for n in graph}

    def visit(node: str, stack: list[str]) -> None:
        colour[node] = GREY
        for child in graph.get(node, []):
            if child not in colour:
                continue  # undefined callee reported elsewhere
            if colour[child] == GREY:
                cycle = " -> ".join(stack + [node, child])
                raise IRValidationError(f"recursive call cycle detected: {cycle}")
            if colour[child] == WHITE:
                visit(child, stack + [node])
        colour[node] = BLACK

    for node in graph:
        if colour[node] == WHITE:
            visit(node, [])


def validate_module(module: Module) -> None:
    """Validate a complete module, raising :class:`IRValidationError` on failure."""
    if not module.functions:
        raise IRValidationError("module contains no functions")
    if module.main not in module.functions:
        raise IRValidationError(f"module has no @{module.main} entry function")

    entry = module.entry
    if entry.instructions():
        raise IRValidationError(
            "the entry function may only instantiate the hierarchy (calls only)",
            function=entry.name,
        )
    if not entry.calls():
        raise IRValidationError("the entry function must call at least one function",
                                function=entry.name)

    for func in module.functions.values():
        validate_function(func, module)

    _check_call_graph_acyclic(module)

    # ---- Manage-IR cross references -------------------------------------
    for stream in module.stream_objects.values():
        if stream.memory not in module.memory_objects:
            raise IRValidationError(
                f"stream object %{stream.name} references unknown memory object "
                f"%{stream.memory}"
            )
    for port in module.port_declarations:
        if not module.has_function(port.function):
            raise IRValidationError(
                f"port declaration @{port.qualified_name} references unknown function"
            )
        func = module.get_function(port.function)
        if port.direction is StreamDirection.INPUT:
            if port.port not in func.arg_names:
                raise IRValidationError(
                    f"port declaration @{port.qualified_name}: function has no argument "
                    f"%{port.port}"
                )
        else:
            # output ports may be bound to an argument or to a value produced
            # by the function's datapath (e.g. the new pressure stream of SOR)
            if port.port not in func.defined_names():
                raise IRValidationError(
                    f"port declaration @{port.qualified_name}: function defines no value "
                    f"%{port.port} to stream out"
                )
        if port.stream_object and port.stream_object not in module.stream_objects:
            raise IRValidationError(
                f"port declaration @{port.qualified_name} references unknown stream "
                f"object %{port.stream_object}"
            )
