"""Exception hierarchy for the TyTra-IR package."""


class IRError(Exception):
    """Base class for all TyTra-IR related errors."""


class IRParseError(IRError):
    """Raised when ``.tirl`` text cannot be parsed.

    Carries the line number (1-based) where the problem was detected so the
    compiler driver can point the user at the offending IR line.
    """

    def __init__(self, message: str, line: int | None = None):
        self.line = line
        if line is not None:
            message = f"line {line}: {message}"
        super().__init__(message)


class IRTypeError(IRError):
    """Raised when a type string or a type combination is invalid."""


class IRValidationError(IRError):
    """Raised by the validator for structural or SSA violations."""

    def __init__(self, message: str, *, function: str | None = None):
        self.function = function
        if function is not None:
            message = f"in function @{function}: {message}"
        super().__init__(message)
