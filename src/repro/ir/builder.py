"""Programmatic construction of TyTra-IR modules.

The :class:`IRBuilder` is the API used by the functional front end
(:mod:`repro.functional.lower`) and the kernel library (:mod:`repro.kernels`)
to build design variants without going through the textual ``.tirl`` form.

Example
-------
>>> from repro.ir import IRBuilder, ScalarType
>>> b = IRBuilder("saxpy")
>>> ui32 = ScalarType.uint(32)
>>> mem = b.memory_object("mobj_x", ui32, size=1024)
>>> stream = b.stream_object("strobj_x", mem, direction="istream")
>>> f = b.function("f0", kind="pipe", args=[(ui32, "x"), (ui32, "a")])
>>> t = f.instr("mul", ui32, f.arg("x"), f.arg("a"))
>>> _ = f.instr("add", ui32, t, 3, result="y")
>>> b.port("f0", "x", ui32, direction="istream", stream_object="strobj_x")
>>> main = b.function("main", kind="none")
>>> main.call("f0", ["x", "a"], kind="pipe")
>>> module = b.build()
>>> module.get_function("f0").instruction_count()
2
"""

from __future__ import annotations

from typing import Sequence

from repro.ir.errors import IRValidationError
from repro.ir.functions import (
    AccessPatternKind,
    FunctionKind,
    IRFunction,
    MemoryObject,
    Module,
    PortDeclaration,
    StreamDirection,
    StreamObject,
)
from repro.ir.instructions import (
    CallInstruction,
    Instruction,
    OffsetInstruction,
    Operand,
)
from repro.ir.types import ScalarType

__all__ = ["IRBuilder", "FunctionBuilder"]


class FunctionBuilder:
    """Builds the body of a single IR function.

    SSA result names can be given explicitly or are auto-generated
    (``%1``, ``%2``, ...).  Operands may be given as strings (``"x"`` or
    ``"%x"``), :class:`Operand` objects, previously returned result names,
    or Python numbers (becoming constant operands).
    """

    def __init__(self, builder: "IRBuilder", function: IRFunction):
        self._builder = builder
        self.function = function
        self._counter = 0

    # -- naming helpers -------------------------------------------------
    def _next_name(self) -> str:
        self._counter += 1
        return str(self._counter)

    def arg(self, name: str) -> str:
        """Reference an argument by name (checked)."""
        name = name.lstrip("%")
        if name not in self.function.arg_names:
            raise IRValidationError(
                f"{name!r} is not an argument of @{self.function.name}",
                function=self.function.name,
            )
        return name

    @staticmethod
    def _as_operand(value) -> Operand:
        if isinstance(value, Operand):
            return value
        if isinstance(value, (int, float)):
            return Operand.const(value)
        if isinstance(value, str):
            if value.startswith("@"):
                return Operand.global_(value)
            return Operand.ssa(value)
        raise IRValidationError(f"cannot interpret operand {value!r}")

    # -- statement constructors ------------------------------------------
    def instr(
        self,
        opcode: str,
        result_type: ScalarType,
        *operands,
        result: str | None = None,
        predicate: str | None = None,
    ) -> str:
        """Append a datapath instruction and return the result name."""
        name = (result or self._next_name()).lstrip("%@")
        is_global = bool(result) and result.startswith("@")
        inst = Instruction(
            result=name,
            result_type=result_type,
            opcode=opcode,
            operands=[self._as_operand(o) for o in operands],
            result_is_global=is_global,
            predicate=predicate,
        )
        self.function.body.append(inst)
        return name

    def reduction(self, opcode: str, result_type: ScalarType, global_name: str, value) -> str:
        """Append a reduction onto a global accumulator.

        ``@g = opcode value, @g`` — the canonical pattern for the SOR error
        accumulator in Figure 12, line 15.
        """
        global_name = global_name.lstrip("@")
        inst = Instruction(
            result=global_name,
            result_type=result_type,
            opcode=opcode,
            operands=[self._as_operand(value), Operand.global_(global_name)],
            result_is_global=True,
        )
        self.function.body.append(inst)
        return global_name

    def offset(
        self,
        source: str,
        offset: int | str,
        result_type: ScalarType,
        result: str | None = None,
    ) -> str:
        """Append a stream-offset declaration and return the new stream name."""
        name = (result or f"{source.lstrip('%')}_off{self._next_name()}").lstrip("%")
        self.function.body.append(
            OffsetInstruction(
                result=name,
                result_type=result_type,
                source=source,
                offset=offset,
            )
        )
        return name

    def call(self, callee: str, args: Sequence[str] = (), kind: str | None = None) -> None:
        """Append a call to a child function."""
        self.function.body.append(
            CallInstruction(callee=callee, args=list(args), kind=kind)
        )

    # -- conveniences -----------------------------------------------------
    def mul(self, result_type: ScalarType, a, b, result: str | None = None) -> str:
        return self.instr("mul", result_type, a, b, result=result)

    def add(self, result_type: ScalarType, a, b, result: str | None = None) -> str:
        return self.instr("add", result_type, a, b, result=result)

    def sub(self, result_type: ScalarType, a, b, result: str | None = None) -> str:
        return self.instr("sub", result_type, a, b, result=result)

    def div(self, result_type: ScalarType, a, b, result: str | None = None) -> str:
        return self.instr("div", result_type, a, b, result=result)

    def icmp(self, result_type: ScalarType, a, b, predicate: str = "lt",
             result: str | None = None) -> str:
        return self.instr("icmp", result_type, a, b, result=result,
                          predicate=predicate)


class IRBuilder:
    """Top-level builder producing a :class:`repro.ir.Module`."""

    def __init__(self, name: str = "design"):
        self.module = Module(name=name)

    # -- constants --------------------------------------------------------
    def constant(self, name: str, value: int) -> None:
        """Define a named module constant (used in symbolic stream offsets)."""
        self.module.set_constant(name, value)

    def constants(self, **kwargs: int) -> None:
        for name, value in kwargs.items():
            self.constant(name, value)

    # -- Manage-IR ---------------------------------------------------------
    def memory_object(
        self,
        name: str,
        element_type: ScalarType,
        size: int,
        addr_space: int = 1,
        label: str | None = None,
    ) -> MemoryObject:
        return self.module.add_memory_object(
            MemoryObject(
                name=name,
                element_type=element_type,
                size=size,
                addr_space=addr_space,
                label=label,
            )
        )

    def stream_object(
        self,
        name: str,
        memory: MemoryObject | str,
        direction: str | StreamDirection = StreamDirection.INPUT,
        pattern: str | AccessPatternKind = AccessPatternKind.CONTIGUOUS,
        stride: int = 1,
    ) -> StreamObject:
        mem_name = memory.name if isinstance(memory, MemoryObject) else memory
        return self.module.add_stream_object(
            StreamObject(
                name=name,
                memory=mem_name,
                direction=direction,
                pattern=pattern,
                stride=stride,
            )
        )

    def port(
        self,
        function: str,
        port: str,
        element_type: ScalarType,
        direction: str | StreamDirection = StreamDirection.INPUT,
        pattern: str | AccessPatternKind = AccessPatternKind.CONTIGUOUS,
        base_offset: int = 0,
        stream_object: str | None = None,
        addr_space: int = 1,
    ) -> PortDeclaration:
        return self.module.add_port_declaration(
            PortDeclaration(
                function=function,
                port=port,
                element_type=element_type,
                direction=direction,
                pattern=pattern,
                base_offset=base_offset,
                stream_object=stream_object,
                addr_space=addr_space,
            )
        )

    # -- Compute-IR ---------------------------------------------------------
    def function(
        self,
        name: str,
        kind: str | FunctionKind = FunctionKind.PIPE,
        args: Sequence[tuple[ScalarType, str]] = (),
    ) -> FunctionBuilder:
        func = IRFunction(name=name, kind=kind, args=list(args))
        self.module.add_function(func)
        return FunctionBuilder(self, func)

    # -- finalisation --------------------------------------------------------
    def build(self, validate: bool = True) -> Module:
        """Return the constructed module, optionally validating it."""
        if validate:
            from repro.ir.validator import validate_module

            validate_module(self.module)
        return self.module
