"""IR-level optimisation passes.

The TyTra-IR is deliberately LLVM-like so that standard scalar
optimisations can be applied before costing and code generation (the paper
notes this as a motivation for basing the IR on LLVM, as e.g. LegUp does).
Three simple, cost-relevant passes are provided; all operate on leaf
datapath functions only and preserve the streaming semantics:

* **constant folding** — instructions whose operands are all literals are
  evaluated at compile time and propagated, removing functional units from
  the datapath (and therefore from the resource estimate);
* **common sub-expression elimination (CSE)** — syntactically identical
  pure instructions are computed once (commutative opcodes are matched up
  to operand order);
* **dead-code elimination (DCE)** — instructions whose results are never
  used by another instruction, an output port, a call argument or a global
  reduction are removed.

``optimize_module`` runs the pipeline to a fixed point and returns a
report of what was removed, so the effect on the cost estimates can be
inspected (and is exercised in the test-suite).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ir.errors import IRValidationError
from repro.ir.functions import FunctionKind, IRFunction, Module
from repro.ir.instructions import Instruction, OffsetInstruction, Operand
from repro.ir.types import TypeKind

__all__ = ["OptimizationReport", "constant_fold", "eliminate_common_subexpressions",
           "eliminate_dead_code", "optimize_function", "optimize_module"]


@dataclass
class OptimizationReport:
    """What the optimisation pipeline changed."""

    folded: int = 0
    cse_removed: int = 0
    dead_removed: int = 0
    iterations: int = 0
    per_function: dict[str, dict[str, int]] = field(default_factory=dict)

    @property
    def total_removed(self) -> int:
        return self.folded + self.cse_removed + self.dead_removed

    def merge(self, function: str, folded: int, cse: int, dead: int) -> None:
        self.folded += folded
        self.cse_removed += cse
        self.dead_removed += dead
        entry = self.per_function.setdefault(
            function, {"folded": 0, "cse_removed": 0, "dead_removed": 0}
        )
        entry["folded"] += folded
        entry["cse_removed"] += cse
        entry["dead_removed"] += dead


# ----------------------------------------------------------------------
# Constant folding
# ----------------------------------------------------------------------

_FOLDABLE = {
    "add": lambda a, b: a + b,
    "sub": lambda a, b: a - b,
    "mul": lambda a, b: a * b,
    "div": lambda a, b: a // b if b else 0,
    "udiv": lambda a, b: a // b if b else 0,
    "and": lambda a, b: int(a) & int(b),
    "or": lambda a, b: int(a) | int(b),
    "xor": lambda a, b: int(a) ^ int(b),
    "shl": lambda a, b: int(a) << int(b),
    "lshr": lambda a, b: int(a) >> int(b),
    "min": min,
    "max": max,
}


def _mask_to_type(value, ty):
    if ty.kind is TypeKind.UINT:
        return int(value) & ((1 << ty.width) - 1)
    return value


def constant_fold(func: IRFunction) -> int:
    """Fold instructions with all-constant operands; returns the fold count."""
    constants: dict[str, float | int] = {}
    new_body = []
    folded = 0
    for stmt in func.body:
        if isinstance(stmt, Instruction) and not stmt.is_reduction:
            operands = []
            for op in stmt.operands:
                if op.is_const:
                    operands.append(op.value)
                elif op.is_ssa and op.name in constants:
                    operands.append(constants[op.name])
                else:
                    operands.append(None)
            fn = _FOLDABLE.get(stmt.opcode)
            if fn is not None and all(v is not None for v in operands) and len(operands) == 2:
                constants[stmt.result] = _mask_to_type(fn(*operands), stmt.result_type)
                folded += 1
                continue
            # propagate known constants into remaining instructions
            if any(op.is_ssa and op.name in constants for op in stmt.operands):
                stmt.operands = [
                    Operand.const(constants[op.name])
                    if (op.is_ssa and op.name in constants) else op
                    for op in stmt.operands
                ]
        new_body.append(stmt)
    func.body = new_body
    return folded


# ----------------------------------------------------------------------
# Common sub-expression elimination
# ----------------------------------------------------------------------


def _expression_key(instr: Instruction):
    ops = [str(o) for o in instr.operands]
    if instr.info.commutative:
        ops = sorted(ops)
    return (instr.opcode, str(instr.result_type), tuple(ops))


def eliminate_common_subexpressions(func: IRFunction) -> int:
    """Replace repeated pure expressions with the first occurrence's result."""
    seen: dict[tuple, str] = {}
    replacements: dict[str, str] = {}
    new_body = []
    removed = 0
    for stmt in func.body:
        if isinstance(stmt, Instruction) and not stmt.is_reduction:
            # apply earlier replacements to the operand list first
            stmt.operands = [
                Operand.ssa(replacements[op.name])
                if (op.is_ssa and op.name in replacements) else op
                for op in stmt.operands
            ]
            key = _expression_key(stmt)
            if key in seen:
                replacements[stmt.result] = seen[key]
                removed += 1
                continue
            seen[key] = stmt.result
        elif isinstance(stmt, Instruction) and stmt.is_reduction:
            stmt.operands = [
                Operand.ssa(replacements[op.name])
                if (op.is_ssa and op.name in replacements) else op
                for op in stmt.operands
            ]
        new_body.append(stmt)
    func.body = new_body
    return removed


# ----------------------------------------------------------------------
# Dead code elimination
# ----------------------------------------------------------------------


def _live_roots(func: IRFunction, module: Module | None) -> set[str]:
    roots: set[str] = set()
    for stmt in func.body:
        if isinstance(stmt, Instruction) and stmt.is_reduction:
            roots.update(name for name in stmt.input_names)
        if hasattr(stmt, "args"):
            roots.update(stmt.args)
    if module is not None:
        for port in module.port_declarations:
            if port.function == func.name:
                roots.add(port.port)
    return roots


def eliminate_dead_code(func: IRFunction, module: Module | None = None) -> int:
    """Remove instructions whose results are never observed."""
    live = _live_roots(func, module)
    # iterate to a fixed point: anything used by a live instruction is live
    changed = True
    instructions = {s.result: s for s in func.instructions() if not s.is_reduction}
    while changed:
        changed = False
        for name, instr in instructions.items():
            if name in live:
                for used in instr.input_names:
                    if used not in live:
                        live.add(used)
                        changed = True

    removed = 0
    new_body = []
    for stmt in func.body:
        if (
            isinstance(stmt, Instruction)
            and not stmt.is_reduction
            and stmt.result not in live
        ):
            removed += 1
            continue
        if isinstance(stmt, OffsetInstruction) and stmt.result not in live:
            # unused offset streams also disappear (saving their buffers)
            used_elsewhere = any(
                isinstance(s, Instruction) and stmt.result in s.input_names
                for s in func.body
            )
            if not used_elsewhere:
                removed += 1
                continue
        new_body.append(stmt)
    func.body = new_body
    return removed


# ----------------------------------------------------------------------
# Pipeline
# ----------------------------------------------------------------------


def optimize_function(func: IRFunction, module: Module | None = None,
                      report: OptimizationReport | None = None) -> OptimizationReport:
    """Run fold → CSE → DCE on one leaf datapath function to a fixed point."""
    report = report or OptimizationReport()
    if func.kind not in (FunctionKind.PIPE, FunctionKind.COMB) or not func.is_leaf:
        return report
    while True:
        folded = constant_fold(func)
        cse = eliminate_common_subexpressions(func)
        dead = eliminate_dead_code(func, module)
        report.merge(func.name, folded, cse, dead)
        report.iterations += 1
        if folded + cse + dead == 0:
            break
        if report.iterations > 50:  # pragma: no cover - safety net
            raise IRValidationError(f"optimiser failed to converge on @{func.name}")
    return report


def optimize_module(module: Module) -> OptimizationReport:
    """Optimise every leaf datapath function of a module in place."""
    report = OptimizationReport()
    for func in module.functions.values():
        if func.name == module.main:
            continue
        optimize_function(func, module, report)
    return report
