"""Structural content fingerprints for modules.

The estimation pipeline memoizes every expensive stage on the *content*
of a module.  The original key was ``sha256(print_module(module))`` —
correct, but it forced a full pretty-print (string formatting of every
statement) on every single cost call, which at exploration scale is pure
overhead: the printer exists to produce human-readable ``.tirl`` text,
not hash input.

:func:`structural_fingerprint` hashes the same information the printer
serialises — constants, Manage-IR objects, port declarations and every
function body — but feeds the hasher compact structural tokens directly,
with none of the concrete-syntax formatting.  The result is cached on the
module instance (see :meth:`repro.ir.functions.Module.content_fingerprint`)
and invalidated by the module's own mutation methods, so in the common
case a content key is a single attribute read.

Two modules have equal fingerprints iff the printer would serialise them
identically (up to cosmetic whitespace): the fingerprint covers the module
name, so — like the old key — structurally identical designs with
different names stay distinct.
"""

from __future__ import annotations

import hashlib
from typing import TYPE_CHECKING

from repro.ir.instructions import CallInstruction, Instruction, OffsetInstruction

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.ir.functions import IRFunction, Module

__all__ = ["structural_fingerprint", "fingerprint_function"]

#: bump when the token layout changes (fingerprints key on-disk caches)
_FINGERPRINT_VERSION = b"tirl-fp/1"
_SEP = b"\x1f"


def _token(*parts) -> bytes:
    return _SEP.join(str(p).encode() for p in parts) + b"\x1e"


def _statement_tokens(stmt) -> bytes:
    if isinstance(stmt, OffsetInstruction):
        return _token("off", stmt.result, stmt.result_type, stmt.source, stmt.offset)
    if isinstance(stmt, Instruction):
        ops = ",".join(str(o) for o in stmt.operands)
        # qualified_opcode keeps predicate-free instructions hashing exactly
        # as before, so existing persisted cache entries stay valid
        return _token(
            "ins", stmt.result, int(stmt.result_is_global), stmt.result_type,
            stmt.qualified_opcode, ops,
        )
    if isinstance(stmt, CallInstruction):
        return _token("call", stmt.callee, ",".join(stmt.args), stmt.kind or "")
    raise TypeError(f"unknown statement type {type(stmt)!r}")


def fingerprint_function(hasher, func: "IRFunction") -> None:
    """Feed one function's structural content into ``hasher``."""
    args = ",".join(f"{t}:{n}" for t, n in func.args)
    hasher.update(_token("fn", func.name, func.kind.value, args))
    for stmt in func.body:
        hasher.update(_statement_tokens(stmt))


def structural_fingerprint(module: "Module") -> str:
    """A stable content hash of a module, without pretty-printing it.

    Covers exactly what :func:`repro.ir.printer.print_module` serialises:
    the name, constants, memory/stream objects, port declarations and
    every function (kind, arguments, body statements in order).
    """
    hasher = hashlib.sha256(_FINGERPRINT_VERSION)
    hasher.update(_token("mod", module.name, module.main))
    for cname in sorted(module.constants):
        hasher.update(_token("const", cname, module.constants[cname]))
    for obj in module.memory_objects.values():
        hasher.update(
            _token("mem", obj.name, obj.element_type, obj.size, obj.addr_space,
                   obj.label or "")
        )
    for obj in module.stream_objects.values():
        hasher.update(
            _token("stream", obj.name, obj.memory, obj.direction.value,
                   obj.pattern.value, obj.stride)
        )
    for port in module.port_declarations:
        hasher.update(
            _token("port", port.function, port.port, port.element_type,
                   port.direction.value, port.pattern.value, port.base_offset,
                   port.stream_object or "", port.addr_space)
        )
    for func in module.functions.values():
        fingerprint_function(hasher, func)
    return hasher.hexdigest()
