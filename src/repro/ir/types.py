"""Scalar type system of the TyTra-IR.

The TyTra-IR is strongly and statically typed.  Every SSA value, stream
port and memory object has a scalar element type.  The concrete syntax
follows the paper's examples (``ui18`` in Figure 12) and the LLVM-IR
heritage of the language:

``ui<N>``
    Unsigned integer of ``N`` bits (``ui18``, ``ui32`` ...).

``i<N>``
    Signed (two's complement) integer of ``N`` bits.

``fix<I>.<F>``
    Signed fixed point with ``I`` integer bits and ``F`` fraction bits
    (total width ``I + F``).

``float16`` / ``float32`` / ``float64``
    IEEE-754 binary floating point.

``bool``
    Single-bit predicate (the result of ``icmp``); an alias for ``ui1``.

The type object is deliberately small and hashable so it can be used as a
dictionary key throughout the cost model (resource cost expressions are
keyed on ``(opcode, type kind, width)``).
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from enum import Enum

from repro.ir.errors import IRTypeError

__all__ = ["TypeKind", "ScalarType", "parse_type"]


class TypeKind(str, Enum):
    """The families of scalar types supported by the IR."""

    UINT = "ui"
    INT = "i"
    FIXED = "fix"
    FLOAT = "float"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


_FLOAT_WIDTHS = (16, 32, 64)

_TYPE_RE = re.compile(
    r"""^(?:
        (?P<uint>ui(?P<uwidth>\d+)) |
        (?P<fix>fix(?P<ibits>\d+)\.(?P<fbits>\d+)) |
        (?P<float>float(?P<fwidth>\d+)) |
        (?P<bool>bool) |
        (?P<int>i(?P<iwidth>\d+))
    )$""",
    re.VERBOSE,
)


@dataclass(frozen=True, order=True)
class ScalarType:
    """A scalar TyTra-IR type.

    Parameters
    ----------
    kind:
        The type family (unsigned, signed, fixed point or float).
    width:
        Total width in bits.
    fraction_bits:
        Number of fraction bits; only meaningful for ``TypeKind.FIXED``.
    """

    kind: TypeKind
    width: int
    fraction_bits: int = 0

    def __post_init__(self) -> None:
        if self.width <= 0:
            raise IRTypeError(f"type width must be positive, got {self.width}")
        if self.kind is TypeKind.FLOAT and self.width not in _FLOAT_WIDTHS:
            raise IRTypeError(
                f"float width must be one of {_FLOAT_WIDTHS}, got {self.width}"
            )
        if self.kind is not TypeKind.FIXED and self.fraction_bits:
            raise IRTypeError("fraction_bits only valid for fixed-point types")
        if self.kind is TypeKind.FIXED and not (0 < self.fraction_bits < self.width):
            raise IRTypeError(
                "fixed-point fraction bits must be in (0, width) "
                f"got {self.fraction_bits} for width {self.width}"
            )

    # -- predicates ---------------------------------------------------
    @property
    def is_integer(self) -> bool:
        """True for (un)signed integer types."""
        return self.kind in (TypeKind.UINT, TypeKind.INT)

    @property
    def is_signed(self) -> bool:
        """True if the type can represent negative values."""
        return self.kind in (TypeKind.INT, TypeKind.FIXED, TypeKind.FLOAT)

    @property
    def is_float(self) -> bool:
        return self.kind is TypeKind.FLOAT

    @property
    def is_fixed(self) -> bool:
        return self.kind is TypeKind.FIXED

    @property
    def is_bool(self) -> bool:
        return self.kind is TypeKind.UINT and self.width == 1

    # -- numeric helpers ----------------------------------------------
    @property
    def integer_bits(self) -> int:
        """Integer (non-fraction) bits of the representation."""
        return self.width - self.fraction_bits

    @property
    def bytes(self) -> int:
        """Width rounded up to whole bytes (used for stream word sizing)."""
        return (self.width + 7) // 8

    def min_value(self) -> float:
        if self.kind is TypeKind.UINT:
            return 0
        if self.kind is TypeKind.INT:
            return -(1 << (self.width - 1))
        if self.kind is TypeKind.FIXED:
            return -(1 << (self.integer_bits - 1))
        return float("-inf")

    def max_value(self) -> float:
        if self.kind is TypeKind.UINT:
            return (1 << self.width) - 1
        if self.kind is TypeKind.INT:
            return (1 << (self.width - 1)) - 1
        if self.kind is TypeKind.FIXED:
            return (1 << (self.integer_bits - 1)) - 2.0 ** (-self.fraction_bits)
        return float("inf")

    # -- presentation ---------------------------------------------------
    def __str__(self) -> str:
        if self.kind is TypeKind.FIXED:
            return f"fix{self.integer_bits}.{self.fraction_bits}"
        if self.kind is TypeKind.FLOAT:
            return f"float{self.width}"
        return f"{self.kind.value}{self.width}"

    # -- constructors ---------------------------------------------------
    @staticmethod
    def uint(width: int) -> "ScalarType":
        return ScalarType(TypeKind.UINT, width)

    @staticmethod
    def int_(width: int) -> "ScalarType":
        return ScalarType(TypeKind.INT, width)

    @staticmethod
    def fixed(integer_bits: int, fraction_bits: int) -> "ScalarType":
        return ScalarType(TypeKind.FIXED, integer_bits + fraction_bits, fraction_bits)

    @staticmethod
    def float_(width: int = 32) -> "ScalarType":
        return ScalarType(TypeKind.FLOAT, width)

    @staticmethod
    def bool_() -> "ScalarType":
        return ScalarType(TypeKind.UINT, 1)


def parse_type(text: str) -> ScalarType:
    """Parse the concrete syntax of a scalar type.

    >>> parse_type("ui18")
    ScalarType(kind=<TypeKind.UINT: 'ui'>, width=18, fraction_bits=0)
    >>> str(parse_type("fix8.10"))
    'fix8.10'
    """
    text = text.strip()
    m = _TYPE_RE.match(text)
    if m is None:
        raise IRTypeError(f"cannot parse type {text!r}")
    if m.group("uint"):
        return ScalarType.uint(int(m.group("uwidth")))
    if m.group("int"):
        return ScalarType.int_(int(m.group("iwidth")))
    if m.group("fix"):
        return ScalarType.fixed(int(m.group("ibits")), int(m.group("fbits")))
    if m.group("float"):
        return ScalarType.float_(int(m.group("fwidth")))
    if m.group("bool"):
        return ScalarType.bool_()
    raise IRTypeError(f"cannot parse type {text!r}")  # pragma: no cover
