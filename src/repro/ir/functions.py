"""Structural containers of the TyTra-IR: functions, objects and modules.

A *design variant* is captured by a :class:`Module`:

* Manage-IR: :class:`MemoryObject` and :class:`StreamObject` declarations,
  plus :class:`PortDeclaration` entries binding the streaming ports of the
  top-level function to stream objects (Figure 12, lines 2-4).

* Compute-IR: a set of :class:`IRFunction` definitions, each with a
  :class:`FunctionKind` parallelism keyword, and a distinguished ``main``
  that instantiates the top of the configuration hierarchy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Iterator

from repro.ir.errors import IRValidationError
from repro.ir.instructions import (
    CallInstruction,
    Instruction,
    OffsetInstruction,
    Statement,
)
from repro.ir.types import ScalarType

__all__ = [
    "FunctionKind",
    "StreamDirection",
    "AccessPatternKind",
    "MemoryObject",
    "StreamObject",
    "PortDeclaration",
    "IRFunction",
    "Module",
]


class FunctionKind(str, Enum):
    """Parallelism keyword attached to an IR function (paper §IV).

    * ``pipe`` — pipeline parallelism: the function body is a streaming
      datapath; one work-item enters per cycle in steady state.
    * ``par``  — thread parallelism: the children of the function execute
      concurrently as replicated lanes.
    * ``seq``  — sequential execution of the children (degree of re-use
      axis of the design space).
    * ``comb`` — a custom single-cycle combinatorial block.
    * ``none`` — the ``main`` entry, which merely instantiates the top of
      the hierarchy.
    """

    PIPE = "pipe"
    PAR = "par"
    SEQ = "seq"
    COMB = "comb"
    NONE = "none"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


class StreamDirection(str, Enum):
    """Direction of a stream object with respect to the processing element."""

    INPUT = "istream"
    OUTPUT = "ostream"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


class AccessPatternKind(str, Enum):
    """Streaming data-pattern model (paper §III-6)."""

    CONTIGUOUS = "CONT"
    STRIDED = "STRIDED"
    RANDOM = "RANDOM"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass
class MemoryObject:
    """Manage-IR memory object: a source or sink for streams.

    In a software description this corresponds to an array in (host or
    device) memory.  ``addr_space`` follows the memory-hierarchy model:
    0 = private (registers), 1 = global (device DRAM), 2 = local
    (on-chip block RAM), 3 = constant.
    """

    name: str
    element_type: ScalarType
    size: int
    addr_space: int = 1
    label: str | None = None

    def __post_init__(self) -> None:
        self.name = self.name.lstrip("%@")
        if self.size <= 0:
            raise IRValidationError(f"memory object {self.name!r} must have positive size")
        if self.addr_space not in (0, 1, 2, 3):
            raise IRValidationError(
                f"memory object {self.name!r}: address space must be 0..3, got {self.addr_space}"
            )

    @property
    def size_bits(self) -> int:
        return self.size * self.element_type.width

    @property
    def size_bytes(self) -> int:
        return self.size * self.element_type.bytes


@dataclass
class StreamObject:
    """Manage-IR stream object connecting a PE port to a memory object."""

    name: str
    memory: str
    direction: StreamDirection = StreamDirection.INPUT
    pattern: AccessPatternKind = AccessPatternKind.CONTIGUOUS
    stride: int = 1

    def __post_init__(self) -> None:
        self.name = self.name.lstrip("%@")
        self.memory = self.memory.lstrip("%@")
        if isinstance(self.direction, str):
            self.direction = StreamDirection(self.direction)
        if isinstance(self.pattern, str):
            self.pattern = AccessPatternKind(self.pattern)
        if self.stride < 1:
            raise IRValidationError(f"stream {self.name!r}: stride must be >= 1")

    @property
    def is_contiguous(self) -> bool:
        return self.pattern is AccessPatternKind.CONTIGUOUS and self.stride == 1


@dataclass
class PortDeclaration:
    """Binding of a top-level function port to a stream object.

    Mirrors lines such as::

        @main.p = addrSpace(1) ui18, !"istream", !"CONT", !0, !"strobj_p"
    """

    function: str
    port: str
    element_type: ScalarType
    direction: StreamDirection = StreamDirection.INPUT
    pattern: AccessPatternKind = AccessPatternKind.CONTIGUOUS
    base_offset: int = 0
    stream_object: str | None = None
    addr_space: int = 1

    def __post_init__(self) -> None:
        self.function = self.function.lstrip("@")
        if isinstance(self.direction, str):
            self.direction = StreamDirection(self.direction)
        if isinstance(self.pattern, str):
            self.pattern = AccessPatternKind(self.pattern)

    @property
    def qualified_name(self) -> str:
        return f"{self.function}.{self.port}"


@dataclass
class IRFunction:
    """A Compute-IR function: a node of the configuration hierarchy."""

    name: str
    kind: FunctionKind = FunctionKind.PIPE
    args: list[tuple[ScalarType, str]] = field(default_factory=list)
    body: list[Statement] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.name = self.name.lstrip("@")
        if isinstance(self.kind, str):
            self.kind = FunctionKind(self.kind)
        self.args = [(t, n.lstrip("%")) for (t, n) in self.args]

    # -- queries --------------------------------------------------------
    @property
    def arg_names(self) -> list[str]:
        return [n for _, n in self.args]

    @property
    def arg_types(self) -> dict[str, ScalarType]:
        return {n: t for t, n in self.args}

    def instructions(self) -> list[Instruction]:
        """Datapath SSA instructions (excluding offsets and calls)."""
        return [s for s in self.body if isinstance(s, Instruction)]

    def offsets(self) -> list[OffsetInstruction]:
        return [s for s in self.body if isinstance(s, OffsetInstruction)]

    def calls(self) -> list[CallInstruction]:
        return [s for s in self.body if isinstance(s, CallInstruction)]

    def reductions(self) -> list[Instruction]:
        return [s for s in self.instructions() if s.is_reduction]

    @property
    def is_leaf(self) -> bool:
        """True if the function contains no calls (a pure datapath)."""
        return not self.calls()

    def defined_names(self) -> set[str]:
        names = set(self.arg_names)
        for stmt in self.body:
            if isinstance(stmt, (Instruction, OffsetInstruction)):
                names.add(stmt.result)
        return names

    def instruction_count(self) -> int:
        """Number of datapath instructions — the ``NI`` of the cost model."""
        return len(self.instructions())

    def __str__(self) -> str:
        return f"@{self.name} [{self.kind}] ({len(self.body)} statements)"


@dataclass
class Module:
    """A complete TyTra-IR design variant (Manage-IR + Compute-IR)."""

    name: str = "design"
    constants: dict[str, int] = field(default_factory=dict)
    memory_objects: dict[str, MemoryObject] = field(default_factory=dict)
    stream_objects: dict[str, StreamObject] = field(default_factory=dict)
    port_declarations: list[PortDeclaration] = field(default_factory=list)
    functions: dict[str, IRFunction] = field(default_factory=dict)
    main: str = "main"

    # -- construction ---------------------------------------------------
    def set_constant(self, name: str, value: int) -> None:
        """Define (or redefine) a named module constant."""
        self.constants[name] = int(value)
        self.invalidate_fingerprint()

    def add_memory_object(self, obj: MemoryObject) -> MemoryObject:
        if obj.name in self.memory_objects:
            raise IRValidationError(f"duplicate memory object {obj.name!r}")
        self.memory_objects[obj.name] = obj
        self.invalidate_fingerprint()
        return obj

    def add_stream_object(self, obj: StreamObject) -> StreamObject:
        if obj.name in self.stream_objects:
            raise IRValidationError(f"duplicate stream object {obj.name!r}")
        self.stream_objects[obj.name] = obj
        self.invalidate_fingerprint()
        return obj

    def add_port_declaration(self, decl: PortDeclaration) -> PortDeclaration:
        self.port_declarations.append(decl)
        self.invalidate_fingerprint()
        return decl

    def add_function(self, func: IRFunction) -> IRFunction:
        if func.name in self.functions:
            raise IRValidationError(f"duplicate function @{func.name}")
        self.functions[func.name] = func
        self.invalidate_fingerprint()
        return func

    # -- content identity ------------------------------------------------
    def content_fingerprint(self) -> str:
        """The structural content hash of this module, computed lazily.

        The hash is cached on the instance so repeated memoization lookups
        cost one attribute read instead of a pretty-print.  The module's
        own mutation methods invalidate the cache; code that mutates the
        module *directly* (e.g. replacing a function's body in place) must
        call :meth:`invalidate_fingerprint` afterwards.
        """
        cached = self.__dict__.get("_content_fingerprint")
        if cached is None:
            from repro.ir.fingerprint import structural_fingerprint

            cached = structural_fingerprint(self)
            self.__dict__["_content_fingerprint"] = cached
        return cached

    def invalidate_fingerprint(self) -> None:
        """Drop the cached content fingerprint after a mutation."""
        self.__dict__.pop("_content_fingerprint", None)

    # -- queries --------------------------------------------------------
    def get_function(self, name: str) -> IRFunction:
        name = name.lstrip("@")
        try:
            return self.functions[name]
        except KeyError as exc:
            raise IRValidationError(f"no function named @{name}") from exc

    @property
    def entry(self) -> IRFunction:
        """The ``main`` function."""
        return self.get_function(self.main)

    def has_function(self, name: str) -> bool:
        return name.lstrip("@") in self.functions

    def leaf_functions(self) -> list[IRFunction]:
        return [f for f in self.functions.values() if f.is_leaf and f.name != self.main]

    def iter_functions(self) -> Iterator[IRFunction]:
        return iter(self.functions.values())

    def resolve_offset(self, offset: int | str) -> int:
        """Resolve a (possibly symbolic) stream offset to an integer."""
        if isinstance(offset, int):
            return offset
        from repro.ir.instructions import _eval_offset_expression

        return _eval_offset_expression(offset, self.constants)

    def input_streams(self) -> list[StreamObject]:
        return [s for s in self.stream_objects.values() if s.direction is StreamDirection.INPUT]

    def output_streams(self) -> list[StreamObject]:
        return [s for s in self.stream_objects.values() if s.direction is StreamDirection.OUTPUT]

    def input_ports(self) -> list[PortDeclaration]:
        return [p for p in self.port_declarations if p.direction is StreamDirection.INPUT]

    def output_ports(self) -> list[PortDeclaration]:
        return [p for p in self.port_declarations if p.direction is StreamDirection.OUTPUT]

    def total_stream_words_per_item(self) -> int:
        """Words moved per work item over all declared ports (``NWPT``)."""
        return len(self.port_declarations)

    def callees_of(self, func_name: str) -> list[tuple[str, FunctionKind | None]]:
        """Return ``(callee, call kind)`` pairs for a function's calls."""
        func = self.get_function(func_name)
        out = []
        for call in func.calls():
            kind = FunctionKind(call.kind) if call.kind else None
            out.append((call.callee, kind))
        return out

    def call_graph(self) -> dict[str, list[str]]:
        """Adjacency list of the static call graph."""
        return {
            name: [c.callee for c in func.calls()]
            for name, func in self.functions.items()
        }

    def __str__(self) -> str:
        return (
            f"Module {self.name!r}: {len(self.functions)} functions, "
            f"{len(self.memory_objects)} memory objects, "
            f"{len(self.stream_objects)} stream objects"
        )
