"""Pretty-printer emitting the canonical ``.tirl`` concrete syntax.

``parse_module(print_module(m))`` reproduces an equivalent module; this
round-trip property is exercised by the test-suite (including
property-based tests over randomly generated modules).
"""

from __future__ import annotations

from repro.ir.functions import FunctionKind, Module
from repro.ir.instructions import CallInstruction, Instruction, OffsetInstruction

__all__ = ["print_module", "format_statement"]


def format_statement(stmt) -> str:
    """Render a single body statement in concrete syntax."""
    if isinstance(stmt, OffsetInstruction):
        if isinstance(stmt.offset, int):
            off = f"{stmt.offset:+d}"
        else:
            off = str(stmt.offset)
        return (
            f"{stmt.result_type} %{stmt.result} = "
            f"{stmt.result_type} %{stmt.source}, !offset, !{off}"
        )
    if isinstance(stmt, Instruction):
        sigil = "@" if stmt.result_is_global else "%"
        ops = ", ".join(str(o) for o in stmt.operands)
        return (
            f"{stmt.result_type} {sigil}{stmt.result} = "
            f"{stmt.qualified_opcode} {stmt.result_type} {ops}"
        )
    if isinstance(stmt, CallInstruction):
        args = ", ".join(f"%{a}" for a in stmt.args)
        kind = f" {stmt.kind}" if stmt.kind else ""
        return f"call @{stmt.callee}({args}){kind}"
    raise TypeError(f"unknown statement type {type(stmt)!r}")


def print_module(module: Module) -> str:
    """Serialise a module to ``.tirl`` text."""
    lines: list[str] = [f'module "{module.name}"']

    for name, value in sorted(module.constants.items()):
        lines.append(f"const {name} = {value}")

    if module.memory_objects or module.stream_objects:
        lines.append("")
        lines.append("; **** MANAGE-IR ****")
    for obj in module.memory_objects.values():
        label = f', !"{obj.label}"' if obj.label else ""
        lines.append(
            f"%{obj.name} = memobj addrSpace({obj.addr_space}) {obj.element_type}, "
            f"!size, !{obj.size}{label}"
        )
    for obj in module.stream_objects.values():
        lines.append(
            f"%{obj.name} = streamobj %{obj.memory}, "
            f'!"{obj.direction}", !"{obj.pattern}", !stride, !{obj.stride}'
        )

    lines.append("")
    lines.append("; **** COMPUTE-IR ****")
    for port in module.port_declarations:
        strobj = port.stream_object or ""
        lines.append(
            f"@{port.function}.{port.port} = addrSpace({port.addr_space}) "
            f'{port.element_type}, !"{port.direction}", !"{port.pattern}", '
            f'!{port.base_offset}, !"{strobj}"'
        )

    for func in module.functions.values():
        lines.append("")
        args = ", ".join(f"{t} %{n}" for t, n in func.args)
        kind = "" if func.kind is FunctionKind.NONE else f" {func.kind}"
        lines.append(f"define void @{func.name} ({args}){kind} {{")
        for stmt in func.body:
            lines.append(f"  {format_statement(stmt)}")
        lines.append("}")

    return "\n".join(lines) + "\n"
