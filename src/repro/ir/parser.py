"""Parser for the textual TyTra-IR (``.tirl``) concrete syntax.

The grammar is line-oriented; every statement fits on one line.  It follows
the examples of the paper (Figures 12 and 14) with a small amount of
regularisation so the format round-trips exactly through
:func:`repro.ir.printer.print_module`:

.. code-block:: text

    ; comments run to end of line
    module "sor_c2"
    const ND1 = 24

    ; **** MANAGE-IR ****
    %mobj_p = memobj addrSpace(1) ui18, !size, !13824, !"p"
    %strobj_p = streamobj %mobj_p, !"istream", !"CONT", !stride, !1

    ; **** COMPUTE-IR ****
    @f0.p = addrSpace(1) ui18, !"istream", !"CONT", !0, !"strobj_p"

    define void @f0 (ui18 %p, ui18 %rhs) pipe {
      ui18 %pip1 = ui18 %p, !offset, !+1
      ui18 %1 = mul ui18 %pip1, %rhs
      ui18 @acc = add ui18 %1, @acc
      call @f1(%a, %b) pipe
    }

    define void @main () {
      call @f0(%p, %rhs) pipe }

A closing ``}`` may appear on its own line or at the end of the last body
statement (as in the paper's listings).
"""

from __future__ import annotations

import re

from repro.ir.errors import IRParseError
from repro.ir.functions import (
    FunctionKind,
    IRFunction,
    MemoryObject,
    Module,
    PortDeclaration,
    StreamObject,
)
from repro.ir.instructions import (
    CallInstruction,
    Instruction,
    OffsetInstruction,
    Operand,
)
from repro.ir.types import parse_type

__all__ = ["parse_module"]


_KINDS = {k.value for k in FunctionKind if k is not FunctionKind.NONE}

_RE_MODULE = re.compile(r'^module\s+"(?P<name>[^"]+)"$')
_RE_CONST = re.compile(r"^const\s+(?P<name>[A-Za-z_]\w*)\s*=\s*(?P<value>-?\d+)$")
_RE_MEMOBJ = re.compile(
    r"^%(?P<name>[\w.]+)\s*=\s*memobj\s+addrSpace\((?P<aspace>\d+)\)\s+(?P<type>[\w.]+)\s*,"
    r"\s*!size\s*,\s*!(?P<size>\d+)(?:\s*,\s*!\"(?P<label>[^\"]*)\")?$"
)
_RE_STREAMOBJ = re.compile(
    r"^%(?P<name>[\w.]+)\s*=\s*streamobj\s+%(?P<mem>[\w.]+)\s*,"
    r"\s*!\"(?P<dir>istream|ostream)\"\s*,\s*!\"(?P<pattern>\w+)\"\s*,"
    r"\s*!stride\s*,\s*!(?P<stride>\d+)$"
)
_RE_PORT = re.compile(
    r"^@(?P<func>[\w]+)\.(?P<port>[\w]+)\s*=\s*addrSpace\((?P<aspace>\d+)\)\s+(?P<type>[\w.]+)\s*,"
    r"\s*!\"(?P<dir>istream|ostream)\"\s*,\s*!\"(?P<pattern>\w+)\"\s*,"
    r"\s*!(?P<offset>-?\d+)\s*,\s*!\"(?P<strobj>[^\"]*)\"$"
)
_RE_DEFINE = re.compile(
    r"^define\s+void\s+@(?P<name>[\w]+)\s*\((?P<args>[^)]*)\)\s*(?P<kind>\w+)?\s*\{$"
)
_RE_OFFSET = re.compile(
    r"^(?P<rtype>[\w.]+)\s+%(?P<res>[\w.]+)\s*=\s*(?P<stype>[\w.]+)\s+%(?P<src>[\w.]+)\s*,"
    r"\s*!offset\s*,\s*!(?P<off>[^\s].*)$"
)
_RE_INSTR = re.compile(
    r"^(?P<rtype>[\w.]+)\s+(?P<sigil>[%@])(?P<res>[\w.]+)\s*=\s*"
    r"(?P<opcode>[a-z_]+)(?:\.(?P<pred>[a-z]+))?\s+"
    r"(?P<otype>[\w.]+)\s+(?P<operands>.+)$"
)
_RE_CALL = re.compile(
    r"^call\s+@(?P<callee>[\w]+)\s*\((?P<args>[^)]*)\)\s*(?P<kind>\w+)?$"
)


def _strip_comment(line: str) -> str:
    """Remove a ``;`` comment, respecting nothing fancier (no strings contain ';')."""
    idx = line.find(";")
    if idx >= 0:
        line = line[:idx]
    return line.strip()


def _parse_args(text: str, lineno: int) -> list:
    """Parse a ``ui18 %p, ui18 %rhs`` argument list."""
    text = text.strip()
    if not text:
        return []
    args = []
    for piece in text.split(","):
        piece = piece.strip()
        if not piece:
            continue
        parts = piece.split()
        if len(parts) != 2 or not parts[1].startswith("%"):
            raise IRParseError(f"malformed argument {piece!r}", lineno)
        args.append((parse_type(parts[0]), parts[1].lstrip("%")))
    return args


def _parse_operand(text: str, lineno: int) -> Operand:
    text = text.strip()
    if text.startswith("%"):
        return Operand.ssa(text)
    if text.startswith("@"):
        return Operand.global_(text)
    try:
        if any(c in text for c in ".eE") and not text.lstrip("+-").isdigit():
            return Operand.const(float(text))
        return Operand.const(int(text, 0))
    except ValueError as exc:
        raise IRParseError(f"malformed operand {text!r}", lineno) from exc


def _parse_call_args(text: str) -> list[str]:
    text = text.strip()
    if not text or text in ("...", "...args..."):
        return []
    return [a.strip().lstrip("%") for a in text.split(",") if a.strip()]


def _parse_offset_value(text: str, lineno: int) -> int | str:
    text = text.strip()
    try:
        return int(text.replace("+", ""), 10) if text.lstrip("+-").isdigit() else _symbolic(text)
    except ValueError as exc:  # pragma: no cover - defensive
        raise IRParseError(f"malformed offset {text!r}", lineno) from exc


def _symbolic(text: str) -> str:
    return text


def _parse_body_line(line: str, lineno: int):
    """Parse a single statement inside a function body."""
    m = _RE_OFFSET.match(line)
    if m and "!offset" in line:
        return OffsetInstruction(
            result=m.group("res"),
            result_type=parse_type(m.group("rtype")),
            source=m.group("src"),
            offset=_parse_offset_value(m.group("off"), lineno),
        )
    m = _RE_CALL.match(line)
    if m:
        kind = m.group("kind")
        if kind is not None and kind not in _KINDS:
            raise IRParseError(f"unknown call kind {kind!r}", lineno)
        return CallInstruction(
            callee=m.group("callee"),
            args=_parse_call_args(m.group("args")),
            kind=kind,
        )
    m = _RE_INSTR.match(line)
    if m:
        operands = [
            _parse_operand(tok, lineno)
            for tok in m.group("operands").split(",")
            if tok.strip()
        ]
        return Instruction(
            result=m.group("res"),
            result_type=parse_type(m.group("rtype")),
            opcode=m.group("opcode"),
            operands=operands,
            result_is_global=m.group("sigil") == "@",
            predicate=m.group("pred"),
        )
    raise IRParseError(f"cannot parse statement {line!r}", lineno)


def parse_module(text: str, name: str = "design") -> Module:
    """Parse ``.tirl`` text into a :class:`repro.ir.Module`.

    Parameters
    ----------
    text:
        The IR source.
    name:
        Fallback module name when the source has no ``module`` directive.
    """
    module = Module(name=name)
    current: IRFunction | None = None

    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = _strip_comment(raw)
        if not line:
            continue

        # A body may end with '}' on the same line as its last statement.
        closes = False
        if current is not None and line.endswith("}") and not line.endswith("{"):
            line = line[:-1].rstrip()
            closes = True
            if not line:
                current = None
                continue

        if current is not None:
            current.body.append(_parse_body_line(line, lineno))
            if closes:
                current = None
            continue

        if closes:
            raise IRParseError("unexpected '}' outside of a function body", lineno)

        m = _RE_MODULE.match(line)
        if m:
            module.name = m.group("name")
            continue
        m = _RE_CONST.match(line)
        if m:
            module.set_constant(m.group("name"), int(m.group("value")))
            continue
        m = _RE_MEMOBJ.match(line)
        if m:
            module.add_memory_object(
                MemoryObject(
                    name=m.group("name"),
                    element_type=parse_type(m.group("type")),
                    size=int(m.group("size")),
                    addr_space=int(m.group("aspace")),
                    label=m.group("label"),
                )
            )
            continue
        m = _RE_STREAMOBJ.match(line)
        if m:
            module.add_stream_object(
                StreamObject(
                    name=m.group("name"),
                    memory=m.group("mem"),
                    direction=m.group("dir"),
                    pattern=m.group("pattern"),
                    stride=int(m.group("stride")),
                )
            )
            continue
        m = _RE_PORT.match(line)
        if m:
            module.add_port_declaration(
                PortDeclaration(
                    function=m.group("func"),
                    port=m.group("port"),
                    element_type=parse_type(m.group("type")),
                    direction=m.group("dir"),
                    pattern=m.group("pattern"),
                    base_offset=int(m.group("offset")),
                    stream_object=m.group("strobj") or None,
                    addr_space=int(m.group("aspace")),
                )
            )
            continue
        m = _RE_DEFINE.match(line)
        if m:
            kind = m.group("kind")
            if kind is not None and kind not in _KINDS:
                raise IRParseError(f"unknown function kind {kind!r}", lineno)
            func = IRFunction(
                name=m.group("name"),
                kind=FunctionKind(kind) if kind else FunctionKind.NONE,
                args=_parse_args(m.group("args"), lineno),
            )
            module.add_function(func)
            current = func
            continue

        raise IRParseError(f"cannot parse line {line!r}", lineno)

    if current is not None:
        raise IRParseError(f"function @{current.name} is missing a closing '}}'")
    return module
