"""Structured tracing with a context-manager API and NDJSON export.

A trace is a tree of *spans*.  Every span carries a trace id, its own span
id, an optional parent span id, a dotted *site* name (``pipeline.parse``,
``backend.pool.batch``, ``service.request`` ...), free-form attributes, a
monotonic start stamp, and a duration.  Spans are emitted on exit as
``repro-trace/1`` NDJSON lines: the first line of a trace file is a header
record carrying the schema and the default trace id; each following line
is one span.

Activation is ambient: ``install_tracer`` (or ``activate_from_env`` keyed
on ``TYBEC_TRACE=/path``) installs a process-wide tracer, and the
module-level :func:`span` helper becomes live.  When no tracer is
installed, :func:`span` returns a shared null context whose cost is a
single global read, so instrumented hot paths stay effectively free.

Pool workers never write the trace file.  They run a *collecting* tracer
seeded from a ``(trace_id, parent_span_id)`` context shipped inside the
job payload, and their serialized spans ride back to the parent alongside
the worker cache stats (the same channel PR-3 built), where the parent
tracer re-emits them verbatim.
"""

from __future__ import annotations

import itertools
import json
import os
import threading
import time
import uuid
from contextvars import ContextVar
from typing import Any, Iterable, Sequence

TRACE_SCHEMA = "repro-trace/1"
TRACE_ENV = "TYBEC_TRACE"

#: Reserved key under which worker spans piggyback on the worker-stats
#: dict returned by ``_evaluate_batch``.  Must be stripped before the
#: stats payloads reach ``merge_stats``.
WORKER_SPANS_KEY = "_spans"

#: Required keys for every span record in a ``repro-trace/1`` file.
_SPAN_KEYS = ("trace", "span", "site", "start", "duration", "pid")

# Ambient (trace_id, span_id) of the innermost open span.  ContextVars are
# per-thread (new threads start from an empty context), which is exactly
# the scoping span nesting needs.
_CURRENT: ContextVar[tuple[str, str] | None] = ContextVar(
    "tybec_current_span", default=None
)

_IDS = itertools.count(1)


def new_trace_id() -> str:
    return uuid.uuid4().hex


def _new_span_id() -> str:
    # pid prefix keeps ids unique across pool workers; the counter `next`
    # is atomic under the GIL.
    return f"{os.getpid():x}-{next(_IDS):x}"


class _NullSpanContext:
    """Shared no-op context returned while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc: object) -> bool:
        return False


NULL_SPAN = _NullSpanContext()


class Span:
    __slots__ = ("trace_id", "span_id", "parent_id", "site", "attrs", "start", "duration", "pid")

    def __init__(
        self,
        trace_id: str,
        span_id: str,
        parent_id: str | None,
        site: str,
        attrs: dict[str, Any],
    ) -> None:
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.site = site
        self.attrs = attrs
        self.start = time.perf_counter()
        self.duration: float | None = None
        self.pid = os.getpid()

    def as_dict(self) -> dict[str, Any]:
        record: dict[str, Any] = {
            "trace": self.trace_id,
            "span": self.span_id,
            "site": self.site,
            "start": round(self.start, 9),
            "duration": round(self.duration or 0.0, 9),
            "pid": self.pid,
        }
        if self.parent_id is not None:
            record["parent"] = self.parent_id
        if self.attrs:
            record["attrs"] = self.attrs
        return record


class _SpanContext:
    __slots__ = ("_tracer", "_site", "_attrs", "_trace_id", "_token", "span")

    def __init__(
        self,
        tracer: "Tracer",
        site: str,
        attrs: dict[str, Any],
        trace_id: str | None,
    ) -> None:
        self._tracer = tracer
        self._site = site
        self._attrs = attrs
        self._trace_id = trace_id
        self._token = None
        self.span: Span | None = None

    def __enter__(self) -> Span:
        parent = _CURRENT.get()
        if self._trace_id is not None:
            # Explicit trace id (e.g. adopted from an X-Tybec-Trace
            # header) starts a fresh root within that trace.
            trace_id, parent_id = self._trace_id, None
        elif parent is not None:
            trace_id, parent_id = parent
        else:
            trace_id, parent_id = self._tracer.trace_id, self._tracer.root_parent
        sp = Span(trace_id, _new_span_id(), parent_id, self._site, self._attrs)
        self.span = sp
        self._token = _CURRENT.set((trace_id, sp.span_id))
        return sp

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> bool:
        sp = self.span
        assert sp is not None and self._token is not None
        sp.duration = time.perf_counter() - sp.start
        if exc_type is not None:
            sp.attrs.setdefault("error", getattr(exc_type, "__name__", str(exc_type)))
        _CURRENT.reset(self._token)
        self._tracer.emit(sp.as_dict())
        return False


class Tracer:
    """Span factory plus sink (NDJSON file, in-memory collection, or both).

    ``path`` opens (truncates) an NDJSON file and writes the header line.
    ``collect=True`` (the pool-worker mode) buffers span records in memory
    for :meth:`drain`.  ``root_parent`` re-parents this tracer's root
    spans under a span owned by another process — used by workers so their
    span trees hang off the pool's batch span.
    """

    def __init__(
        self,
        path: str | os.PathLike[str] | None = None,
        *,
        trace_id: str | None = None,
        collect: bool = False,
        root_parent: str | None = None,
    ) -> None:
        self.trace_id = trace_id or new_trace_id()
        self.root_parent = root_parent
        self.path = os.fspath(path) if path is not None else None
        self._lock = threading.Lock()
        self._fh = None
        self._pending: list[dict[str, Any]] = []
        self._collected: list[dict[str, Any]] | None = None
        self.spans_emitted = 0
        if self.path is not None:
            self._fh = open(self.path, "w", encoding="utf-8")
            self._write_line({"schema": TRACE_SCHEMA, "trace_id": self.trace_id})
        if collect or self.path is None:
            self._collected = []

    def span(
        self,
        site: str,
        attrs: dict[str, Any] | None = None,
        *,
        trace_id: str | None = None,
    ) -> _SpanContext:
        return _SpanContext(self, site, attrs if attrs is not None else {}, trace_id)

    def _write_line(self, record: dict[str, Any]) -> None:
        assert self._fh is not None
        self._fh.write(json.dumps(record, sort_keys=True, separators=(",", ":")) + "\n")

    def emit(self, record: dict[str, Any]) -> None:
        # Hot path: serialization is deferred to flush()/close() so a span
        # exit costs one lock and one list append.
        with self._lock:
            self.spans_emitted += 1
            if self._collected is not None:
                self._collected.append(record)
            if self._fh is not None:
                self._pending.append(record)

    def emit_foreign(self, records: Iterable[dict[str, Any]]) -> int:
        """Re-emit serialized spans from another process (pool workers)."""
        count = 0
        for record in records:
            if not isinstance(record, dict) or "span" not in record:
                continue
            self.emit(record)
            count += 1
        return count

    def drain(self) -> list[dict[str, Any]]:
        with self._lock:
            collected, self._collected = (self._collected or []), []
            return collected

    def _flush_locked(self) -> None:
        if self._fh is None:
            return
        for record in self._pending:
            self._write_line(record)
        self._pending.clear()
        self._fh.flush()

    def flush(self) -> None:
        with self._lock:
            self._flush_locked()

    def close(self) -> None:
        with self._lock:
            if self._fh is not None:
                self._flush_locked()
                self._fh.close()
                self._fh = None


_ACTIVE: Tracer | None = None
_ACTIVE_LOCK = threading.Lock()


def current_tracer() -> Tracer | None:
    return _ACTIVE


def current_trace_id() -> str | None:
    """Trace id of the innermost open span, else the installed tracer's."""
    ctx = _CURRENT.get()
    if ctx is not None:
        return ctx[0]
    tracer = _ACTIVE
    return tracer.trace_id if tracer is not None else None


def install_tracer(tracer: Tracer) -> Tracer:
    global _ACTIVE
    with _ACTIVE_LOCK:
        _ACTIVE = tracer
    return tracer


def uninstall_tracer() -> Tracer | None:
    global _ACTIVE
    with _ACTIVE_LOCK:
        tracer, _ACTIVE = _ACTIVE, None
    if tracer is not None:
        tracer.close()
    return tracer


def activate_from_env(environ: dict[str, str] | None = None) -> Tracer | None:
    """Install a file-writing tracer if ``TYBEC_TRACE`` names a path.

    Idempotent: an already-installed tracer wins.  Worker processes must
    NOT call this — they inherit the env var but would race on the file;
    they get a collecting tracer via :func:`worker_trace_context` instead.
    """
    if _ACTIVE is not None:
        return _ACTIVE
    env = environ if environ is not None else os.environ
    path = env.get(TRACE_ENV)
    if not path:
        return None
    return install_tracer(Tracer(path))


def span(site: str, _trace_id: str | None = None, **attrs: Any) -> Any:
    """Ambient span context: no-op (yields ``None``) when tracing is off."""
    tracer = _ACTIVE
    if tracer is None:
        return NULL_SPAN
    return tracer.span(site, attrs, trace_id=_trace_id)


def worker_trace_context(parent: Span | None) -> tuple[str, str] | None:
    """Picklable ``(trace_id, parent_span_id)`` to ship into pool workers."""
    if parent is None:
        return None
    return (parent.trace_id, parent.span_id)


# ---------------------------------------------------------------------------
# Reading, validation, and summarization


def load_trace(path: str | os.PathLike[str]) -> tuple[dict[str, Any], list[dict[str, Any]]]:
    """Parse a ``repro-trace/1`` NDJSON file into (header, span records)."""
    header: dict[str, Any] | None = None
    records: list[dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}:{lineno}: invalid JSON: {exc}") from exc
            if header is None:
                header = record
            else:
                records.append(record)
    if header is None:
        raise ValueError(f"{path}: empty trace file")
    validate_trace(header, records)
    return header, records


def validate_trace(header: dict[str, Any], records: Sequence[dict[str, Any]]) -> None:
    """Raise ``ValueError`` unless (header, records) is a valid trace."""
    if header.get("schema") != TRACE_SCHEMA:
        raise ValueError(f"unexpected trace schema: {header.get('schema')!r}")
    if not header.get("trace_id"):
        raise ValueError("trace header missing trace_id")
    span_ids = set()
    for record in records:
        for key in _SPAN_KEYS:
            if key not in record:
                raise ValueError(f"span record missing {key!r}: {record!r}")
        if record["duration"] < 0:
            raise ValueError(f"negative span duration: {record!r}")
        if record["span"] in span_ids:
            raise ValueError(f"duplicate span id: {record['span']!r}")
        span_ids.add(record["span"])
    for record in records:
        parent = record.get("parent")
        if parent is not None and parent not in span_ids:
            raise ValueError(
                f"span {record['span']!r} references unknown parent {parent!r}"
            )


def summarize_trace(
    records: Sequence[dict[str, Any]], *, top: int = 10
) -> dict[str, Any]:
    """Aggregate per-site totals, top-k slow spans, and the critical path."""
    sites: dict[str, dict[str, Any]] = {}
    for record in records:
        entry = sites.setdefault(
            record["site"], {"count": 0, "total_seconds": 0.0, "max_seconds": 0.0}
        )
        entry["count"] += 1
        entry["total_seconds"] += record["duration"]
        entry["max_seconds"] = max(entry["max_seconds"], record["duration"])

    slowest = sorted(records, key=lambda r: r["duration"], reverse=True)[:top]

    by_id = {r["span"]: r for r in records}
    children: dict[str | None, list[dict[str, Any]]] = {}
    for record in records:
        parent = record.get("parent")
        children.setdefault(parent if parent in by_id else None, []).append(record)

    critical: list[dict[str, Any]] = []
    roots = children.get(None, [])
    if roots:
        node = max(roots, key=lambda r: r["duration"])
        while node is not None:
            critical.append(
                {"site": node["site"], "span": node["span"], "duration": node["duration"]}
            )
            kids = children.get(node["span"])
            node = max(kids, key=lambda r: r["duration"]) if kids else None

    return {
        "span_count": len(records),
        "trace_ids": sorted({r["trace"] for r in records}),
        "wall_seconds": round(sum(r["duration"] for r in roots), 9),
        "sites": {
            site: {
                "count": entry["count"],
                "total_seconds": round(entry["total_seconds"], 9),
                "max_seconds": round(entry["max_seconds"], 9),
            }
            for site, entry in sorted(sites.items())
        },
        "slowest": [
            {"site": r["site"], "span": r["span"], "duration": r["duration"]}
            for r in slowest
        ],
        "critical_path": critical,
    }


def format_trace_summary(summary: dict[str, Any]) -> str:
    """Render a :func:`summarize_trace` result as fixed-width text."""
    lines = [
        f"spans: {summary['span_count']}  traces: {len(summary['trace_ids'])}"
        f"  root wall: {summary['wall_seconds'] * 1e3:.3f} ms",
        "",
        f"{'site':<28} {'count':>7} {'total ms':>12} {'max ms':>12}",
    ]
    for site, entry in summary["sites"].items():
        lines.append(
            f"{site:<28} {entry['count']:>7}"
            f" {entry['total_seconds'] * 1e3:>12.3f}"
            f" {entry['max_seconds'] * 1e3:>12.3f}"
        )
    if summary["critical_path"]:
        lines.append("")
        lines.append("critical path:")
        for depth, hop in enumerate(summary["critical_path"]):
            lines.append(
                f"  {'  ' * depth}{hop['site']}  {hop['duration'] * 1e3:.3f} ms"
            )
    if summary["slowest"]:
        lines.append("")
        lines.append("slowest spans:")
        for record in summary["slowest"]:
            lines.append(
                f"  {record['site']:<28} {record['duration'] * 1e3:>12.3f} ms"
                f"  ({record['span']})"
            )
    return "\n".join(lines)
