"""Benchmark trend reporting: one table over every ``BENCH_*.json``.

Each benchmark module under ``benchmarks/`` writes its measurements to
``benchmarks/results/BENCH_<name>.json`` with its own payload layout —
useful individually, invisible collectively.  This module merges them
into one trend table (``tybec bench report``): per benchmark, the
headline metrics, the gate each one is held to, and whether the stored
measurement passes it.

The headline map is curated, not schema-driven: every benchmark file
keeps its natural shape and this module knows where its load-bearing
numbers live.  Unknown ``BENCH_*`` files (a new benchmark that has not
been curated yet) still show up via a generic numeric-leaf fallback, so
the report never silently omits an artifact.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterable

__all__ = [
    "BenchMetric",
    "DEFAULT_RESULTS_DIR",
    "collect_bench_metrics",
    "format_bench_table",
    "load_bench_file",
]

#: where the benchmark suite writes its artifacts (repo-relative)
DEFAULT_RESULTS_DIR = Path("benchmarks") / "results"

#: generic-fallback cap on leaves shown for an uncurated benchmark file
_FALLBACK_LEAVES = 8

#: benchmark name -> [(dotted metric path, gate expression | None)].
#: A gate is ``"<op> <operand>"`` where the operand is a literal number
#: or ``@dotted.path`` resolved against the same payload (so a file that
#: records its own threshold — e.g. ``max_overhead_ratio`` — is gated
#: against exactly what its benchmark asserted).
_HEADLINES: dict[str, list[tuple[str, str | None]]] = {
    "chaos": [
        ("overhead_ratio", "<= @max_overhead_ratio"),
        ("clean_wall_seconds", None),
        ("armed_wall_seconds", None),
    ],
    "obs": [
        ("overhead_ratio", "<= @max_overhead_ratio"),
        ("clean_wall_seconds", None),
        ("traced_wall_seconds", None),
        ("spans", "> 0"),
    ],
    "dense": [
        ("suite_grid.speedup", ">= 1"),
        ("suite_grid.dense_points_per_second", None),
        ("million_point_grid.points_per_second", None),
    ],
    "dse": [
        ("surrogate.scalar_fraction", "<= @surrogate.max_scalar_fraction"),
        ("fmax.probe_reduction", ">= 1"),
        ("fmax.probes_per_family", None),
    ],
    "explore": [
        ("memoization_speedup", ">= 1"),
        ("first_pass.variants_per_second", None),
        ("memoized_pass.variants_per_second", None),
    ],
    "flows": [
        ("totals.failing", "== 0"),
        ("throughput.families_per_second", None),
        ("throughput.items_per_second", None),
    ],
    "service": [
        ("warm.speedup_vs_cold", ">= 1"),
        ("sustained.requests_per_second", None),
        ("sustained.p99_seconds", None),
    ],
    "suite": [
        ("full_grid.warm_speedup", ">= 1"),
        ("full_grid.lane_scaling_warm.variants_per_second", None),
        ("full_grid.lane_scaling_warm.wall_seconds", None),
    ],
    "validate": [
        ("totals.disagreeing", "== 0"),
        ("totals.max_seconds_relative_error", "<= @validation.tolerance"),
        ("points_per_second", None),
    ],
}


@dataclass(frozen=True)
class BenchMetric:
    """One row of the trend table."""

    benchmark: str
    metric: str
    value: float
    #: human-readable gate with the operand resolved ("" when ungated)
    gate: str
    #: None when ungated, else whether the measurement passes the gate
    ok: bool | None

    def as_dict(self) -> dict[str, Any]:
        return {
            "benchmark": self.benchmark,
            "metric": self.metric,
            "value": self.value,
            "gate": self.gate,
            "ok": self.ok,
        }


def _resolve(payload: dict, dotted: str):
    node: Any = payload
    for part in dotted.split("."):
        if not isinstance(node, dict) or part not in node:
            return None
        node = node[part]
    return node


def _numeric_leaves(payload, prefix: str = "") -> Iterable[tuple[str, float]]:
    if isinstance(payload, dict):
        for key, value in payload.items():
            yield from _numeric_leaves(
                value, f"{prefix}.{key}" if prefix else key)
    elif isinstance(payload, (int, float)) and not isinstance(payload, bool):
        yield prefix, float(payload)


_GATE_OPS = {
    "<=": lambda a, b: a <= b,
    ">=": lambda a, b: a >= b,
    "<": lambda a, b: a < b,
    ">": lambda a, b: a > b,
    "==": lambda a, b: a == b,
}


def _evaluate_gate(gate: str, value: float,
                   payload: dict) -> tuple[str, bool | None]:
    """Resolve a gate expression to (rendered gate, verdict)."""
    op, operand = gate.split(None, 1)
    if operand.startswith("@"):
        threshold = _resolve(payload, operand[1:])
        if not isinstance(threshold, (int, float)):
            return f"{op} {operand}?", None
        threshold = float(threshold)
    else:
        threshold = float(operand)
    return f"{op} {threshold:g}", _GATE_OPS[op](value, threshold)


def load_bench_file(path: Path) -> list[BenchMetric]:
    """The trend-table rows of one ``BENCH_<name>.json`` artifact."""
    name = path.stem
    if name.startswith("BENCH_"):
        name = name[len("BENCH_"):]
    payload = json.loads(path.read_text())
    rows: list[BenchMetric] = []
    headlines = _HEADLINES.get(name)
    if headlines is None:
        # uncurated benchmark: surface its first few numeric leaves ungated
        for metric, value in list(_numeric_leaves(payload))[:_FALLBACK_LEAVES]:
            rows.append(BenchMetric(name, metric, value, "", None))
        return rows
    for metric, gate in headlines:
        value = _resolve(payload, metric)
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            continue
        value = float(value)
        if gate is None:
            rows.append(BenchMetric(name, metric, value, "", None))
        else:
            rendered, ok = _evaluate_gate(gate, value, payload)
            rows.append(BenchMetric(name, metric, value, rendered, ok))
    return rows


def collect_bench_metrics(results_dir: Path) -> list[BenchMetric]:
    """Every trend-table row across every artifact in ``results_dir``."""
    rows: list[BenchMetric] = []
    for path in sorted(results_dir.glob("BENCH_*.json")):
        rows.extend(load_bench_file(path))
    return rows


def _format_value(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    if abs(value) >= 1000:
        return f"{value:,.1f}"
    return f"{value:.6g}"


def format_bench_table(rows: list[BenchMetric]) -> str:
    """Render the trend table as fixed-width text."""
    if not rows:
        return "no BENCH_*.json artifacts found"
    header = (f"{'benchmark':<10} {'metric':<48} {'value':>14} "
              f"{'gate':<14} {'ok':>3}")
    lines = [header, "-" * len(header)]
    for row in rows:
        verdict = "-" if row.ok is None else ("y" if row.ok else "N")
        lines.append(
            f"{row.benchmark:<10} {row.metric:<48}"
            f" {_format_value(row.value):>14} {row.gate:<14} {verdict:>3}")
    gated = [row for row in rows if row.ok is not None]
    failing = [row for row in rows if row.ok is False]
    lines.append(
        f"{len(rows)} metric(s) from "
        f"{len({row.benchmark for row in rows})} benchmark(s); "
        f"{len(gated) - len(failing)}/{len(gated)} gate(s) passing")
    return "\n".join(lines)
