"""Opt-in per-stage cProfile dumps, gated by ``TYBEC_PROFILE_DIR``.

Set ``TYBEC_PROFILE_DIR=/some/dir`` and the coarse stage sites (suite
sweep, DSE run, flow run) each dump a ``.prof`` file
named ``<site>-<pid>-<n>.prof`` into that directory; inspect with
``python -m pstats`` or snakeviz.  With the variable unset, the hook is
a no-yield passthrough costing one environment lookup.
"""

from __future__ import annotations

import itertools
import os
from contextlib import contextmanager
from pathlib import Path
from typing import Iterator

PROFILE_ENV = "TYBEC_PROFILE_DIR"

_COUNTER = itertools.count(1)


def _profile_path(directory: str, site: str) -> Path:
    safe = site.replace(os.sep, "_").replace(".", "-")
    root = Path(directory)
    root.mkdir(parents=True, exist_ok=True)
    return root / f"{safe}-{os.getpid()}-{next(_COUNTER)}.prof"


@contextmanager
def maybe_profile(site: str) -> Iterator[object | None]:
    """Profile the enclosed block when ``TYBEC_PROFILE_DIR`` is set."""
    directory = os.environ.get(PROFILE_ENV)
    if not directory:
        yield None
        return
    import cProfile

    profiler = cProfile.Profile()
    profiler.enable()
    try:
        yield profiler
    finally:
        profiler.disable()
        profiler.dump_stats(str(_profile_path(directory, site)))
