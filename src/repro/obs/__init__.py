"""Unified observability: tracing, metrics, structured logging, profiling.

This package is deliberately stdlib-only and imports nothing from the rest
of ``repro`` so every layer (compiler, cost, explore, flows, service) can
instrument itself without creating import cycles.

Three pillars:

- ``repro.obs.trace`` — structured spans with a context-manager API,
  exported as ``repro-trace/1`` NDJSON (``TYBEC_TRACE=/path`` or
  ``tybec --trace``).
- ``repro.obs.metrics`` — a single thread-safe :class:`MetricsRegistry`
  (labeled counters / gauges / histograms) with Prometheus text
  exposition, plus bridges for the pre-existing ad-hoc stat surfaces.
- ``repro.obs.logs`` — run-id and trace-id correlated stdlib logging.
- ``repro.obs.profile`` — opt-in per-stage cProfile dumps
  (``TYBEC_PROFILE_DIR=/path``).

The cardinal invariant: nothing in this package ever writes into a
canonical report payload.  Spans, metrics, and logs ride on side
channels only, so golden reports stay byte-identical whether or not
telemetry is enabled.
"""

from .logs import get_logger, log_event, setup_logging
from .metrics import (
    MetricSample,
    MetricsRegistry,
    render_prometheus,
    samples_from_counter_snapshot,
    samples_from_disk_cache_stats,
    samples_from_pipeline_stats,
    samples_from_service_metrics,
)
from .profile import PROFILE_ENV, maybe_profile
from .trace import (
    TRACE_ENV,
    TRACE_SCHEMA,
    WORKER_SPANS_KEY,
    Tracer,
    activate_from_env,
    current_trace_id,
    current_tracer,
    format_trace_summary,
    install_tracer,
    load_trace,
    new_trace_id,
    span,
    summarize_trace,
    uninstall_tracer,
    validate_trace,
    worker_trace_context,
)

__all__ = [
    "MetricSample",
    "MetricsRegistry",
    "PROFILE_ENV",
    "TRACE_ENV",
    "TRACE_SCHEMA",
    "WORKER_SPANS_KEY",
    "Tracer",
    "activate_from_env",
    "current_trace_id",
    "current_tracer",
    "format_trace_summary",
    "get_logger",
    "install_tracer",
    "load_trace",
    "log_event",
    "maybe_profile",
    "new_trace_id",
    "render_prometheus",
    "samples_from_counter_snapshot",
    "samples_from_disk_cache_stats",
    "samples_from_pipeline_stats",
    "samples_from_service_metrics",
    "setup_logging",
    "span",
    "summarize_trace",
    "uninstall_tracer",
    "validate_trace",
    "worker_trace_context",
]
