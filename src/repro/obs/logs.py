"""Run-id and trace-id correlated structured logging on stdlib logging.

Every logger lives under the ``tybec`` namespace.  :func:`setup_logging`
(wired to ``tybec --log-level`` and service startup) attaches a single
stderr handler whose formatter stamps each record with a per-process run
id and, when tracing is active, the current trace id — so a log line, a
span, and a service request can all be joined on one identifier.

:func:`log_event` renders structured events as ``event key=value ...``
with sorted keys, which keeps grep/awk pipelines and log-indexing both
trivial and deterministic.
"""

from __future__ import annotations

import logging
import sys
import uuid
from typing import Any, TextIO

from .trace import current_trace_id

#: One id per process; correlates every log line of a run.
RUN_ID = uuid.uuid4().hex[:12]

ROOT_LOGGER_NAME = "tybec"

LOG_FORMAT = (
    "%(asctime)s %(levelname).1s %(name)s run=%(run_id)s trace=%(trace_id)s %(message)s"
)

_LEVELS = {
    "debug": logging.DEBUG,
    "info": logging.INFO,
    "warning": logging.WARNING,
    "error": logging.ERROR,
    "critical": logging.CRITICAL,
}


class _ContextFilter(logging.Filter):
    """Injects run_id / trace_id fields into every record."""

    def filter(self, record: logging.LogRecord) -> bool:
        record.run_id = RUN_ID
        record.trace_id = current_trace_id() or "-"
        return True


def get_logger(name: str) -> logging.Logger:
    return logging.getLogger(f"{ROOT_LOGGER_NAME}.{name}")


def parse_level(level: str | int) -> int:
    if isinstance(level, int):
        return level
    try:
        return _LEVELS[level.strip().lower()]
    except KeyError:
        raise ValueError(
            f"unknown log level {level!r}; choose from {sorted(_LEVELS)}"
        ) from None


def setup_logging(level: str | int = "warning", stream: TextIO | None = None) -> logging.Logger:
    """Configure the ``tybec`` logger tree; idempotent per stream."""
    root = logging.getLogger(ROOT_LOGGER_NAME)
    root.setLevel(parse_level(level))
    root.propagate = False
    target = stream if stream is not None else sys.stderr
    for handler in root.handlers:
        if getattr(handler, "_tybec_handler", False) and getattr(
            handler, "stream", None
        ) is target:
            return root
    handler = logging.StreamHandler(target)
    handler.setFormatter(logging.Formatter(LOG_FORMAT))
    handler.addFilter(_ContextFilter())
    handler._tybec_handler = True  # type: ignore[attr-defined]
    root.addHandler(handler)
    return root


def log_event(
    logger: logging.Logger,
    event: str,
    *,
    level: int = logging.INFO,
    **fields: Any,
) -> None:
    """Emit ``event key=value ...`` with deterministically sorted keys."""
    if not logger.isEnabledFor(level):
        return
    if fields:
        rendered = " ".join(f"{key}={fields[key]}" for key in sorted(fields))
        logger.log(level, "%s %s", event, rendered)
    else:
        logger.log(level, "%s", event)
