"""One metrics registry for the previously-scattered stat surfaces.

:class:`MetricsRegistry` holds labeled counters, gauges, and histograms
behind one lock, renders them as Prometheus text exposition (version
0.0.4), and additionally accepts *collector* callables that adapt the
pre-existing ad-hoc surfaces — ``PipelineCacheStats`` dicts, resilience
``COUNTERS`` snapshots, ``DiskCache.stats()``, ``SweepResult.stats``, and
the service's JSON ``/metrics`` payload — into metric samples at scrape
time without forcing those surfaces to change shape.
"""

from __future__ import annotations

import math
import threading
from typing import Any, Callable, Iterable, Mapping, NamedTuple, Sequence

DEFAULT_BUCKETS = (0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0)

_VALID_KINDS = ("counter", "gauge", "histogram", "untyped")


class MetricSample(NamedTuple):
    """A single exposition sample produced by a collector."""

    name: str
    labels: Mapping[str, Any]
    value: float
    kind: str = "gauge"
    help: str = ""


def _labels_key(labelnames: Sequence[str], labels: Mapping[str, Any]) -> tuple[str, ...]:
    if set(labels) != set(labelnames):
        raise ValueError(f"expected labels {tuple(labelnames)}, got {tuple(labels)}")
    return tuple(str(labels[name]) for name in labelnames)


def _escape_label_value(value: str) -> str:
    return value.replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")


def _format_value(value: float) -> str:
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(float(value))


def _format_labels(labelnames: Sequence[str], values: Sequence[str]) -> str:
    if not labelnames:
        return ""
    body = ",".join(
        f'{name}="{_escape_label_value(value)}"'
        for name, value in zip(labelnames, values)
    )
    return "{" + body + "}"


class _Child:
    """Per-label-set state of a counter or gauge."""

    __slots__ = ("_lock", "value")

    def __init__(self, lock: threading.Lock) -> None:
        self._lock = lock
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value -= amount

    def set(self, value: float) -> None:
        with self._lock:
            self.value = float(value)


class _HistogramChild:
    __slots__ = ("_lock", "buckets", "counts", "total", "count")

    def __init__(self, lock: threading.Lock, buckets: Sequence[float]) -> None:
        self._lock = lock
        self.buckets = tuple(buckets)
        self.counts = [0] * (len(self.buckets) + 1)  # last slot is +Inf
        self.total = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        with self._lock:
            self.total += value
            self.count += 1
            for i, bound in enumerate(self.buckets):
                if value <= bound:
                    self.counts[i] += 1
                    return
            self.counts[-1] += 1


class Metric:
    """A named family of children keyed by label values."""

    def __init__(
        self,
        name: str,
        kind: str,
        help: str,
        labelnames: Sequence[str],
        buckets: Sequence[float] | None = None,
    ) -> None:
        if kind not in _VALID_KINDS:
            raise ValueError(f"unknown metric kind {kind!r}")
        self.name = name
        self.kind = kind
        self.help = help
        self.labelnames = tuple(labelnames)
        self.buckets = tuple(buckets) if buckets is not None else None
        self._lock = threading.Lock()
        self._children: dict[tuple[str, ...], _Child | _HistogramChild] = {}

    def labels(self, **labels: Any) -> _Child | _HistogramChild:
        key = _labels_key(self.labelnames, labels)
        with self._lock:
            child = self._children.get(key)
            if child is None:
                if self.kind == "histogram":
                    child = _HistogramChild(self._lock, self.buckets or DEFAULT_BUCKETS)
                else:
                    child = _Child(self._lock)
                self._children[key] = child
            return child

    # Label-less convenience: metric acts as its own sole child.
    def inc(self, amount: float = 1.0) -> None:
        self.labels().inc(amount)  # type: ignore[union-attr]

    def dec(self, amount: float = 1.0) -> None:
        self.labels().dec(amount)  # type: ignore[union-attr]

    def set(self, value: float) -> None:
        self.labels().set(value)  # type: ignore[union-attr]

    def observe(self, value: float) -> None:
        self.labels().observe(value)  # type: ignore[union-attr]

    def snapshot(self) -> list[tuple[tuple[str, ...], _Child | _HistogramChild]]:
        with self._lock:
            return list(self._children.items())


Collector = Callable[[], Iterable[MetricSample]]


class MetricsRegistry:
    """Thread-safe home for every metric the system exposes."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: dict[str, Metric] = {}
        self._collectors: list[Collector] = []

    def _instrument(
        self,
        name: str,
        kind: str,
        help: str,
        labelnames: Sequence[str],
        buckets: Sequence[float] | None = None,
    ) -> Metric:
        with self._lock:
            metric = self._metrics.get(name)
            if metric is not None:
                if metric.kind != kind or metric.labelnames != tuple(labelnames):
                    raise ValueError(
                        f"metric {name!r} re-registered with conflicting signature"
                    )
                return metric
            metric = Metric(name, kind, help, labelnames, buckets)
            self._metrics[name] = metric
            return metric

    def counter(self, name: str, help: str = "", labelnames: Sequence[str] = ()) -> Metric:
        return self._instrument(name, "counter", help, labelnames)

    def gauge(self, name: str, help: str = "", labelnames: Sequence[str] = ()) -> Metric:
        return self._instrument(name, "gauge", help, labelnames)

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> Metric:
        return self._instrument(name, "histogram", help, labelnames, buckets)

    def register_collector(self, collector: Collector) -> Collector:
        with self._lock:
            self._collectors.append(collector)
        return collector

    def as_dict(self) -> dict[str, Any]:
        """Debug/JSON view: metric name -> {label tuple repr: value}."""
        out: dict[str, Any] = {}
        with self._lock:
            metrics = list(self._metrics.values())
        for metric in metrics:
            family: dict[str, Any] = {}
            for key, child in metric.snapshot():
                label = ",".join(key) or "_"
                if isinstance(child, _HistogramChild):
                    family[label] = {"count": child.count, "sum": child.total}
                else:
                    family[label] = child.value
            out[metric.name] = family
        return out

    def render_prometheus(self) -> str:
        """Prometheus text exposition covering instruments and collectors."""
        lines: list[str] = []
        with self._lock:
            metrics = sorted(self._metrics.values(), key=lambda m: m.name)
            collectors = list(self._collectors)

        for metric in metrics:
            children = metric.snapshot()
            if not children:
                continue
            if metric.help:
                lines.append(f"# HELP {metric.name} {metric.help}")
            lines.append(f"# TYPE {metric.name} {metric.kind}")
            for key, child in children:
                labels = _format_labels(metric.labelnames, key)
                if isinstance(child, _HistogramChild):
                    cumulative = 0
                    for bound, count in zip(child.buckets, child.counts):
                        cumulative += count
                        le = _format_labels(
                            (*metric.labelnames, "le"), (*key, _format_value(bound))
                        )
                        lines.append(f"{metric.name}_bucket{le} {cumulative}")
                    le = _format_labels((*metric.labelnames, "le"), (*key, "+Inf"))
                    lines.append(f"{metric.name}_bucket{le} {child.count}")
                    lines.append(f"{metric.name}_sum{labels} {_format_value(child.total)}")
                    lines.append(f"{metric.name}_count{labels} {child.count}")
                else:
                    lines.append(f"{metric.name}{labels} {_format_value(child.value)}")

        collected: list[MetricSample] = []
        for collector in collectors:
            collected.extend(collector())
        lines.extend(_render_samples(collected))
        return "\n".join(lines) + "\n" if lines else ""


def _render_samples(samples: Sequence[MetricSample]) -> list[str]:
    lines: list[str] = []
    by_name: dict[str, list[MetricSample]] = {}
    for sample in samples:
        by_name.setdefault(sample.name, []).append(sample)
    for name in sorted(by_name):
        group = by_name[name]
        if group[0].help:
            lines.append(f"# HELP {name} {group[0].help}")
        kind = group[0].kind if group[0].kind in _VALID_KINDS else "untyped"
        lines.append(f"# TYPE {name} {kind}")
        seen: set[str] = set()
        for sample in group:
            labelnames = tuple(sorted(sample.labels))
            labels = _format_labels(
                labelnames, tuple(str(sample.labels[k]) for k in labelnames)
            )
            if labels in seen:
                continue
            seen.add(labels)
            lines.append(f"{name}{labels} {_format_value(float(sample.value))}")
    return lines


def render_prometheus(samples: Sequence[MetricSample]) -> str:
    """Render bare collector samples (no registry) as exposition text."""
    lines = _render_samples(samples)
    return "\n".join(lines) + "\n" if lines else ""


# ---------------------------------------------------------------------------
# Bridges from the five pre-existing stat surfaces


def samples_from_counter_snapshot(
    snapshot: Mapping[str, Any],
    *,
    name: str = "tybec_resilience_events_total",
    help: str = "Resilience counter events (retries, faults, cache hygiene).",
) -> list[MetricSample]:
    """Adapt a resilience ``COUNTERS.snapshot()`` flat dict."""
    return [
        MetricSample(name, {"counter": key}, float(value), "counter", help)
        for key, value in sorted(snapshot.items())
        if isinstance(value, (int, float))
    ]


def samples_from_pipeline_stats(stats: Mapping[str, Any]) -> list[MetricSample]:
    """Adapt a ``PipelineCacheStats.as_dict()`` (or ``merge_stats``) payload."""
    samples: list[MetricSample] = []
    for key, value in stats.items():
        if (
            isinstance(value, (list, tuple))
            and len(value) == 2
            and all(isinstance(v, (int, float)) for v in value)
        ):
            hits, misses = value
            samples.append(
                MetricSample(
                    "tybec_pipeline_cache_requests_total",
                    {"layer": key, "result": "hit"},
                    float(hits),
                    "counter",
                    "Pipeline memoization lookups by layer and outcome.",
                )
            )
            samples.append(
                MetricSample(
                    "tybec_pipeline_cache_requests_total",
                    {"layer": key, "result": "miss"},
                    float(misses),
                    "counter",
                )
            )
        elif key == "stage_seconds" and isinstance(value, Mapping):
            for stage, seconds in sorted(value.items()):
                if isinstance(seconds, (int, float)):
                    samples.append(
                        MetricSample(
                            "tybec_pipeline_stage_seconds_total",
                            {"stage": stage},
                            float(seconds),
                            "counter",
                            "Cumulative wall seconds per pipeline stage.",
                        )
                    )
        elif isinstance(value, Mapping):
            # Nested payloads (e.g. a merged "resilience" block) flatten to
            # one labeled family per block.
            for sub_key, sub_value in sorted(value.items()):
                if isinstance(sub_value, (int, float)):
                    samples.append(
                        MetricSample(
                            f"tybec_pipeline_{key}_total",
                            {"key": sub_key},
                            float(sub_value),
                            "counter",
                        )
                    )
        elif isinstance(value, (int, float)):
            samples.append(
                MetricSample(f"tybec_pipeline_{key}_total", {}, float(value), "counter")
            )
    return samples


def samples_from_disk_cache_stats(stats: Mapping[str, Any]) -> list[MetricSample]:
    """Adapt a ``DiskCache.stats()`` payload (numeric leaves only)."""
    samples: list[MetricSample] = []
    for key, value in sorted(stats.items()):
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            continue
        samples.append(
            MetricSample(
                f"tybec_disk_cache_{key}",
                {},
                float(value),
                "gauge",
                "Disk cache state." if key == "entries" else "",
            )
        )
    return samples


def samples_from_service_metrics(payload: Mapping[str, Any]) -> list[MetricSample]:
    """Adapt the service JSON ``/metrics`` payload into exposition samples.

    This is the glue that lets ``GET /metrics?format=prometheus`` cover
    every previously-scattered counter without changing the JSON shape.
    """
    samples: list[MetricSample] = []
    uptime = payload.get("uptime_seconds")
    if isinstance(uptime, (int, float)):
        samples.append(
            MetricSample(
                "tybec_service_uptime_seconds",
                {},
                float(uptime),
                "gauge",
                "Seconds since service start.",
            )
        )
    for block, name, kind in (
        ("requests", "tybec_service_requests_total", "counter"),
        ("sweeps", "tybec_service_sweeps_total", "counter"),
        ("coalesce", "tybec_service_coalesce_total", "counter"),
        ("queue", "tybec_service_queue", "gauge"),
    ):
        value = payload.get(block)
        if isinstance(value, Mapping):
            for key, count in sorted(value.items()):
                if isinstance(count, (int, float)):
                    samples.append(
                        MetricSample(name, {"key": key}, float(count), kind)
                    )
    resilience = payload.get("resilience")
    if isinstance(resilience, Mapping) and isinstance(
        resilience.get("counters"), Mapping
    ):
        samples.extend(samples_from_counter_snapshot(resilience["counters"]))
    pipeline = payload.get("pipeline")
    if isinstance(pipeline, Mapping):
        samples.extend(samples_from_pipeline_stats(pipeline))
    disk_cache = payload.get("disk_cache")
    if isinstance(disk_cache, Mapping):
        samples.extend(samples_from_disk_cache_stats(disk_cache))
    return samples
