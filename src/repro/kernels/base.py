"""Common interface of the scientific kernels."""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.functional.program import KernelSpec, Program
from repro.functional.typetrans import reshape_transform
from repro.functional.lower import lower_program
from repro.ir.functions import Module
from repro.models.execution import KernelInstance, NDRange
from repro.substrate.hls_baseline import HLSKernelCharacteristics

__all__ = ["KernelWorkload", "ScientificKernel", "fixed_point_constant"]


def fixed_point_constant(value: float, scale: int) -> int:
    """Round a real coefficient to a positive fixed-point integer constant.

    The integer datapaths embed their real-valued coefficients as
    fixed-point constants; the clamp to 1 keeps a tiny coefficient from
    degenerating to a multiply-by-zero that the resource model would
    optimise away.  One shared rounding rule keeps every kernel's
    datapath constants consistent.
    """
    return max(1, int(round(value * scale)))


@dataclass(frozen=True)
class KernelWorkload:
    """A concrete problem instance of a kernel.

    Inputs are validated eagerly: a workload with an empty grid, a
    non-positive dimension or fewer than one iteration is a configuration
    error, and catching it here gives a clear message instead of a
    division-by-zero (or a silently empty sweep) deep inside the cost
    model.  One-element grids and single-iteration workloads are valid
    edge cases and are exercised by the test-suite.
    """

    kernel: str
    grid: tuple[int, ...]
    iterations: int

    def __post_init__(self) -> None:
        if not self.kernel:
            raise ValueError("workload kernel name must be non-empty")
        if not self.grid:
            raise ValueError(f"workload {self.kernel!r}: grid must have at least one dimension")
        bad = [d for d in self.grid if not isinstance(d, int) or isinstance(d, bool) or d <= 0]
        if bad:
            raise ValueError(
                f"workload {self.kernel!r}: grid dimensions must be positive integers, "
                f"got {self.grid!r}"
            )
        if not isinstance(self.iterations, int) or isinstance(self.iterations, bool) \
                or self.iterations < 1:
            raise ValueError(
                f"workload {self.kernel!r}: iterations must be a positive integer, "
                f"got {self.iterations!r}"
            )

    @property
    def ndrange(self) -> NDRange:
        return NDRange(self.grid)

    @property
    def global_size(self) -> int:
        return math.prod(self.grid)

    def instance(self, words_per_item: int = 1) -> KernelInstance:
        """The execution-model view of this workload."""
        return KernelInstance(
            kernel=self.kernel,
            ndrange=self.ndrange,
            repetitions=self.iterations,
            words_per_item=words_per_item,
        )


class ScientificKernel:
    """Base class for the paper's evaluation kernels.

    Sub-classes define the class attributes ``name``, ``element_type``,
    ``default_grid`` and ``ops_per_item`` and implement :meth:`spec`,
    :meth:`reference` and :meth:`gather`.
    """

    name: str = "kernel"
    default_grid: tuple[int, ...] = (24, 24, 24)
    default_iterations: int = 1000
    ops_per_item: int = 1
    #: bytes touched per grid point per iteration by the CPU implementation
    cpu_bytes_per_item: int = 16

    # -- to be provided by sub-classes --------------------------------------
    def spec(self) -> KernelSpec:  # pragma: no cover - interface
        raise NotImplementedError

    def reference(self, arrays: dict[str, np.ndarray], iterations: int = 1) -> dict[str, np.ndarray]:
        """Full-grid NumPy reference implementation."""  # pragma: no cover
        raise NotImplementedError

    def gather(self, arrays: dict[str, np.ndarray]) -> dict[str, np.ndarray]:
        """Flatten the grid arrays into the gathered per-item tuple components."""
        raise NotImplementedError  # pragma: no cover

    def generate_inputs(self, grid: tuple[int, ...] | None = None, seed: int = 0) -> dict[str, np.ndarray]:
        """Generate a reproducible synthetic problem instance."""
        raise NotImplementedError  # pragma: no cover

    # -- derived functionality ----------------------------------------------
    def baseline_program(self, grid: tuple[int, ...] | None = None) -> Program:
        grid = grid or self.default_grid
        return Program.baseline(self.spec(), size=math.prod(grid), name=f"{self.name}_baseline")

    def variant_program(self, lanes: int, grid: tuple[int, ...] | None = None) -> Program:
        return reshape_transform(self.baseline_program(grid), lanes)

    def build_module(self, lanes: int = 1, grid: tuple[int, ...] | None = None) -> Module:
        """Build the TyTra-IR design variant with ``lanes`` kernel pipelines."""
        grid = grid or self.default_grid
        program = self.variant_program(lanes, grid)
        return lower_program(program, grid=grid, name=f"{self.name}_l{lanes}")

    def workload(
        self, grid: tuple[int, ...] | None = None, iterations: int | None = None
    ) -> KernelInstance:
        grid = tuple(grid) if grid is not None else self.default_grid
        iterations = iterations if iterations is not None else self.default_iterations
        validated = KernelWorkload(kernel=self.name, grid=grid, iterations=iterations)
        return validated.instance(words_per_item=self.spec().words_per_item)

    def hls_characteristics(self, grid: tuple[int, ...] | None = None) -> HLSKernelCharacteristics:
        grid = grid or self.default_grid
        spec = self.spec()
        max_offset = 0
        for offsets in spec.offsets.values():
            for off in offsets:
                resolved = off if isinstance(off, int) else self._resolve_offset(off, grid)
                max_offset = max(max_offset, abs(resolved))
        return HLSKernelCharacteristics(
            name=self.name,
            operations_per_item=self.ops_per_item,
            input_words_per_item=len(spec.inputs),
            output_words_per_item=len(spec.outputs),
            element_bytes=max(1, (spec.element_type.width + 7) // 8),
            dataflow_depth=max(8, self.ops_per_item),
            max_offset_span_words=max_offset,
        )

    def _resolve_offset(self, expr: str, grid: tuple[int, ...]) -> int:
        constants = dict(self.spec().constants)
        for i, dim in enumerate(grid, start=1):
            constants[f"ND{i}"] = dim
        from repro.ir.instructions import _eval_offset_expression

        return _eval_offset_expression(expr, constants)

    def cpu_profile(self) -> dict[str, float]:
        """Operations and bytes per grid point for the CPU baseline model."""
        return {
            "ops_per_item": float(self.ops_per_item),
            "bytes_per_item": float(self.cpu_bytes_per_item),
        }

    def verify_against_reference(
        self,
        grid: tuple[int, ...] | None = None,
        seed: int = 0,
        rtol: float = 1e-6,
    ) -> bool:
        """Check the gathered/elementwise golden against the full-grid reference."""
        grid = grid or self.default_grid
        arrays = self.generate_inputs(grid, seed)
        gathered = self.gather(arrays)
        elementwise = self.spec().apply_golden(gathered)
        full = self.reference(arrays, iterations=1)
        for key, value in elementwise.items():
            ref = np.asarray(full[key]).reshape(-1)
            if not np.allclose(np.asarray(value).reshape(-1), ref, rtol=rtol, atol=1e-9):
                return False
        return True
