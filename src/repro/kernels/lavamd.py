"""LavaMD molecular-dynamics kernel (Rodinia benchmark suite).

LavaMD calculates particle potential and relocation due to mutual forces
between particles within a large 3-D space partitioned into boxes.  The
inner kernel evaluates, for every particle pair within a neighbourhood,
a potential contribution

    u2  = alpha^2 * (dx^2 + dy^2 + dz^2)
    vij = exp(-u2)
    pot = qv * vij

The streamed work-item here is one pre-gathered particle pair: the three
coordinate differences and the neighbour's charge.  The exponential is
realised as a truncated series (the integer datapath cannot host ``exp``
directly), which keeps the operation mix representative: six of the
multiplies are data-dependent, so the kernel maps a significant number of
DSP blocks (Table II reports 26), and — with no stencil offsets — it uses
no block RAM at all.
"""

from __future__ import annotations

import numpy as np

from repro.functional.program import KernelSpec
from repro.ir.types import ScalarType
from repro.kernels.base import ScientificKernel, fixed_point_constant
from repro.kernels.registry import register_kernel

__all__ = ["LavaMDKernel"]

ALPHA2 = 0.5

#: fixed-point scale for the integer datapath constants
FIXED_POINT_SCALE = 256


def _fx(value: float) -> int:
    return fixed_point_constant(value, FIXED_POINT_SCALE)


@register_kernel
class LavaMDKernel(ScientificKernel):
    """The Rodinia LavaMD particle-potential kernel."""

    name = "lavamd"
    default_grid = (16, 16, 16)   # particle pairs arranged as boxes
    default_iterations = 100
    ops_per_item = 15
    cpu_bytes_per_item = 20

    ELEMENT_TYPE = ScalarType.uint(32)

    # ------------------------------------------------------------------
    def spec(self) -> KernelSpec:
        ty = self.ELEMENT_TYPE

        def golden(c: dict[str, np.ndarray]) -> dict[str, np.ndarray]:
            r2 = c["rx"] ** 2 + c["ry"] ** 2 + c["rz"] ** 2
            u2 = ALPHA2 * r2
            vij = 1.0 - u2 + u2 ** 2 / 2.0 - u2 ** 3 / 6.0
            return {"pot": c["qv"] * vij}

        def build(fb, streams: dict[str, str]) -> None:
            dx2 = fb.mul(ty, streams["rx"], streams["rx"])
            dy2 = fb.mul(ty, streams["ry"], streams["ry"])
            dz2 = fb.mul(ty, streams["rz"], streams["rz"])
            r2a = fb.add(ty, dx2, dy2)
            r2 = fb.add(ty, r2a, dz2)
            u2 = fb.mul(ty, r2, _fx(ALPHA2))
            u2sq = fb.mul(ty, u2, u2)
            u2cu = fb.mul(ty, u2sq, u2)
            half = fb.mul(ty, u2sq, _fx(0.5))
            sixth = fb.mul(ty, u2cu, _fx(1.0 / 6.0))
            e1 = fb.instr("sub", ty, _fx(1.0), u2)
            e2 = fb.add(ty, e1, half)
            vij = fb.sub(ty, e2, sixth)
            fb.mul(ty, streams["qv"], vij, result="pot")
            fb.reduction("add", ty, "potAcc", "pot")

        return KernelSpec(
            name=self.name,
            element_type=ty,
            inputs=["rx", "ry", "rz", "qv"],
            outputs=["pot"],
            golden=golden,
            build_datapath=build,
            offsets={},
            constants={},
            ops_per_item=self.ops_per_item,
            bytes_per_item=self.cpu_bytes_per_item,
        )

    # ------------------------------------------------------------------
    def generate_inputs(self, grid: tuple[int, ...] | None = None, seed: int = 0) -> dict[str, np.ndarray]:
        grid = grid or self.default_grid
        rng = np.random.default_rng(seed)
        return {
            "rx": rng.random(grid) - 0.5,
            "ry": rng.random(grid) - 0.5,
            "rz": rng.random(grid) - 0.5,
            "qv": rng.random(grid),
        }

    def gather(self, arrays: dict[str, np.ndarray]) -> dict[str, np.ndarray]:
        return {key: np.asarray(value).reshape(-1) for key, value in arrays.items()}

    def reference(self, arrays: dict[str, np.ndarray], iterations: int = 1) -> dict[str, np.ndarray]:
        rx = np.asarray(arrays["rx"], dtype=np.float64)
        ry = np.asarray(arrays["ry"], dtype=np.float64)
        rz = np.asarray(arrays["rz"], dtype=np.float64)
        qv = np.asarray(arrays["qv"], dtype=np.float64)
        r2 = rx ** 2 + ry ** 2 + rz ** 2
        u2 = ALPHA2 * r2
        vij = 1.0 - u2 + u2 ** 2 / 2.0 - u2 ** 3 / 6.0
        pot = qv * vij
        # the potential accumulates over iterations; the per-pair value is
        # iteration independent, which is what the elementwise check uses
        return {"pot": pot, "potAcc": np.asarray(float(np.sum(pot)) * max(1, iterations))}
