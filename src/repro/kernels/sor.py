"""Successive over-relaxation (SOR) kernel from the LES weather simulator.

The kernel iteratively solves the Poisson equation for the pressure field
of the Large Eddy Simulator (Moeng's planetary-boundary-layer model).  The
main computation is a 7-point stencil over the 3-D pressure grid — each
point is updated from its six cardinal neighbours, the weight coefficients
``cn*`` and the right-hand-side term — plus a global reduction of the
relaxation residual (``sorErrAcc`` in the paper's Figure 12).

The elemental function follows the paper's ``p_sor``::

    reltmp = omega * (cn1 * (cn2l*p_i+ + cn2s*p_i- + cn3l*p_j+ + cn3s*p_j-
                              + cn4l*p_k+ + cn4s*p_k-) - rhs) - p
    p_new  = reltmp + p

Two views are provided, consistent with the paper's methodology:

* the **golden semantics** use floating point and periodic boundaries
  (a Jacobi-style sweep, so that the gathered elementwise form and the
  full-grid reference agree exactly);
* the **IR datapath** is the integer (``ui18``) version that the paper
  costs, with the coefficients embedded as fixed-point constants — all
  multiplies are by constants, which is why the SOR pipeline uses no DSP
  blocks in Table II.
"""

from __future__ import annotations

import numpy as np

from repro.functional.program import KernelSpec
from repro.ir.types import ScalarType
from repro.kernels.base import ScientificKernel, fixed_point_constant
from repro.kernels.registry import register_kernel

__all__ = ["SORKernel"]

#: relaxation factor and stencil coefficients (LES defaults)
OMEGA = 1.0
CN1 = 1.0 / 6.0
CN2L = CN2S = CN3L = CN3S = CN4L = CN4S = 1.0

#: fixed-point scale used for the integer datapath constants
FIXED_POINT_SCALE = 1024


def _fx(value: float) -> int:
    return fixed_point_constant(value, FIXED_POINT_SCALE)


@register_kernel
class SORKernel(ScientificKernel):
    """The SOR pressure-solver kernel (paper §II and §VI)."""

    name = "sor"
    default_grid = (24, 24, 24)
    default_iterations = 1000
    ops_per_item = 16
    cpu_bytes_per_item = 36  # seven pressure reads, rhs read, p_new write (4 B words)

    ELEMENT_TYPE = ScalarType.uint(18)

    # ------------------------------------------------------------------
    def spec(self) -> KernelSpec:
        ty = self.ELEMENT_TYPE

        def golden(c: dict[str, np.ndarray]) -> dict[str, np.ndarray]:
            total = (
                CN2L * c["p@+1"] + CN2S * c["p@-1"]
                + CN3L * c["p@+ND1"] + CN3S * c["p@-ND1"]
                + CN4L * c["p@+ND1*ND2"] + CN4S * c["p@-ND1*ND2"]
            )
            p_new = OMEGA * (CN1 * total - c["rhs"])
            return {"p_new": p_new}

        def build(fb, streams: dict[str, str]) -> None:
            pairs = [
                ("p@+1", CN2L), ("p@-1", CN2S),
                ("p@+ND1", CN3L), ("p@-ND1", CN3S),
                ("p@+ND1*ND2", CN4L), ("p@-ND1*ND2", CN4S),
            ]
            products = [fb.mul(ty, streams[name], _fx(coef)) for name, coef in pairs]
            s01 = fb.add(ty, products[0], products[1])
            s23 = fb.add(ty, products[2], products[3])
            s45 = fb.add(ty, products[4], products[5])
            s0123 = fb.add(ty, s01, s23)
            total = fb.add(ty, s0123, s45)
            weighted = fb.mul(ty, total, _fx(CN1))
            num = fb.sub(ty, weighted, streams["rhs"])
            fb.mul(ty, num, _fx(OMEGA), result="p_new")
            reltmp = fb.sub(ty, "p_new", streams["p"])
            fb.reduction("add", ty, "sorErrAcc", reltmp)

        return KernelSpec(
            name=self.name,
            element_type=ty,
            inputs=["p", "rhs"],
            outputs=["p_new"],
            golden=golden,
            build_datapath=build,
            offsets={"p": [+1, -1, "+ND1", "-ND1", "+ND1*ND2", "-ND1*ND2"]},
            constants={},
            ops_per_item=self.ops_per_item,
            bytes_per_item=self.cpu_bytes_per_item,
        )

    # ------------------------------------------------------------------
    def generate_inputs(self, grid: tuple[int, ...] | None = None, seed: int = 0) -> dict[str, np.ndarray]:
        grid = grid or self.default_grid
        rng = np.random.default_rng(seed)
        return {
            "p": rng.random(grid, dtype=np.float64),
            "rhs": rng.random(grid, dtype=np.float64) * 0.1,
        }

    def gather(self, arrays: dict[str, np.ndarray]) -> dict[str, np.ndarray]:
        """Gather the per-point tuple components (flattened, periodic)."""
        p = np.asarray(arrays["p"])
        rhs = np.asarray(arrays["rhs"])
        if p.ndim != 3:
            raise ValueError("SOR expects a 3-D pressure grid")
        # the flattened index moves fastest along the last axis, so an offset
        # of +1 is a shift along axis 2, +ND1 along axis 1, +ND1*ND2 along axis 0
        def shift(axis_offset: tuple[int, int, int]) -> np.ndarray:
            return np.roll(p, shift=[-s for s in axis_offset], axis=(0, 1, 2)).reshape(-1)

        return {
            "p": p.reshape(-1),
            "rhs": rhs.reshape(-1),
            "p@+1": shift((0, 0, 1)),
            "p@-1": shift((0, 0, -1)),
            "p@+ND1": shift((0, 1, 0)),
            "p@-ND1": shift((0, -1, 0)),
            "p@+ND1*ND2": shift((1, 0, 0)),
            "p@-ND1*ND2": shift((-1, 0, 0)),
        }

    def reference(self, arrays: dict[str, np.ndarray], iterations: int = 1) -> dict[str, np.ndarray]:
        """Full-grid Jacobi-style SOR sweep with periodic boundaries."""
        p = np.asarray(arrays["p"], dtype=np.float64).copy()
        rhs = np.asarray(arrays["rhs"], dtype=np.float64)
        residual = 0.0
        for _ in range(max(1, iterations)):
            total = (
                CN2L * np.roll(p, -1, axis=2) + CN2S * np.roll(p, 1, axis=2)
                + CN3L * np.roll(p, -1, axis=1) + CN3S * np.roll(p, 1, axis=1)
                + CN4L * np.roll(p, -1, axis=0) + CN4S * np.roll(p, 1, axis=0)
            )
            p_new = OMEGA * (CN1 * total - rhs)
            residual = float(np.sum(p_new - p))
            p = p_new
        return {"p_new": p, "sorErrAcc": np.asarray(residual)}
