"""Hotspot thermal-simulation kernel (Rodinia benchmark suite).

Hotspot estimates processor temperature from an architectural floorplan
and simulated power measurements.  Each cell of a 2-D grid is updated from
its four neighbours, its own power dissipation and the ambient
temperature::

    delta = cap_inv * ( power * cap_inv
                        + (t_n + t_s + t_e + t_w - 4*t) * rx_inv
                        + (amb - t) * rz_inv )
    t_new = t + delta

The per-cell thermal coefficient ``cap_inv`` is streamed (heterogeneous
floorplans have per-block capacitance), which is what makes two of the
multiplies data-dependent — the integer version of the kernel therefore
maps a handful of DSP blocks (Table II reports 12 for the authors' wider
formulation), unlike SOR whose multiplies are all by constants.
"""

from __future__ import annotations

import numpy as np

from repro.functional.program import KernelSpec
from repro.ir.types import ScalarType
from repro.kernels.base import ScientificKernel, fixed_point_constant
from repro.kernels.registry import register_kernel

__all__ = ["HotspotKernel"]

AMBIENT = 80.0
RX_INV = 0.1
RZ_INV = 0.05

#: fixed-point scale for the integer datapath constants
FIXED_POINT_SCALE = 256


def _fx(value: float) -> int:
    return fixed_point_constant(value, FIXED_POINT_SCALE)


@register_kernel
class HotspotKernel(ScientificKernel):
    """The Rodinia Hotspot kernel (2-D five-point thermal stencil)."""

    name = "hotspot"
    default_grid = (64, 64)
    default_iterations = 360
    ops_per_item = 14
    cpu_bytes_per_item = 32

    ELEMENT_TYPE = ScalarType.uint(32)

    # ------------------------------------------------------------------
    def spec(self) -> KernelSpec:
        ty = self.ELEMENT_TYPE

        def golden(c: dict[str, np.ndarray]) -> dict[str, np.ndarray]:
            temp = c["temp"]
            lap = c["temp@+1"] + c["temp@-1"] + c["temp@+ND1"] + c["temp@-ND1"] - 4.0 * temp
            delta = c["cap_inv"] * (
                c["power"] * c["cap_inv"] + lap * RX_INV + (AMBIENT - temp) * RZ_INV
            )
            return {"t_new": temp + delta}

        def build(fb, streams: dict[str, str]) -> None:
            t = streams["temp"]
            dn = fb.add(ty, streams["temp@+ND1"], streams["temp@-ND1"])
            de = fb.add(ty, streams["temp@+1"], streams["temp@-1"])
            nsum = fb.add(ty, dn, de)
            c4 = fb.mul(ty, t, 4)
            lap = fb.sub(ty, nsum, c4)
            lap_w = fb.mul(ty, lap, _fx(RX_INV))
            amb = fb.instr("sub", ty, _fx(AMBIENT), t)
            amb_w = fb.mul(ty, amb, _fx(RZ_INV))
            pw = fb.mul(ty, streams["power"], streams["cap_inv"])   # data-dependent -> DSP
            acc1 = fb.add(ty, lap_w, amb_w)
            acc2 = fb.add(ty, acc1, pw)
            delta = fb.mul(ty, acc2, streams["cap_inv"])            # data-dependent -> DSP
            fb.add(ty, t, delta, result="t_new")
            fb.reduction("max", ty, "maxDelta", delta)

        return KernelSpec(
            name=self.name,
            element_type=ty,
            inputs=["temp", "power", "cap_inv"],
            outputs=["t_new"],
            golden=golden,
            build_datapath=build,
            offsets={"temp": [+1, -1, "+ND1", "-ND1"]},
            constants={},
            ops_per_item=self.ops_per_item,
            bytes_per_item=self.cpu_bytes_per_item,
        )

    # ------------------------------------------------------------------
    def generate_inputs(self, grid: tuple[int, ...] | None = None, seed: int = 0) -> dict[str, np.ndarray]:
        grid = grid or self.default_grid
        rng = np.random.default_rng(seed)
        return {
            "temp": 45.0 + 10.0 * rng.random(grid),
            "power": rng.random(grid) * 0.5,
            "cap_inv": 0.01 + 0.02 * rng.random(grid),
        }

    def gather(self, arrays: dict[str, np.ndarray]) -> dict[str, np.ndarray]:
        temp = np.asarray(arrays["temp"])
        if temp.ndim != 2:
            raise ValueError("Hotspot expects a 2-D temperature grid")

        def shift(drow: int, dcol: int) -> np.ndarray:
            return np.roll(temp, shift=(-drow, -dcol), axis=(0, 1)).reshape(-1)

        return {
            "temp": temp.reshape(-1),
            "power": np.asarray(arrays["power"]).reshape(-1),
            "cap_inv": np.asarray(arrays["cap_inv"]).reshape(-1),
            "temp@+1": shift(0, 1),
            "temp@-1": shift(0, -1),
            "temp@+ND1": shift(1, 0),
            "temp@-ND1": shift(-1, 0),
        }

    def reference(self, arrays: dict[str, np.ndarray], iterations: int = 1) -> dict[str, np.ndarray]:
        temp = np.asarray(arrays["temp"], dtype=np.float64).copy()
        power = np.asarray(arrays["power"], dtype=np.float64)
        cap_inv = np.asarray(arrays["cap_inv"], dtype=np.float64)
        for _ in range(max(1, iterations)):
            lap = (
                np.roll(temp, -1, axis=1) + np.roll(temp, 1, axis=1)
                + np.roll(temp, -1, axis=0) + np.roll(temp, 1, axis=0)
                - 4.0 * temp
            )
            delta = cap_inv * (power * cap_inv + lap * RX_INV + (AMBIENT - temp) * RZ_INV)
            temp = temp + delta
        return {"t_new": temp}
