"""Needleman-Wunsch sequence-alignment kernel (wavefront dependencies).

Needleman-Wunsch (Rodinia's ``nw``) fills a 2-D dynamic-programming score
matrix in which every cell depends on its west, north and north-west
neighbours — the classic *wavefront* pattern::

    h_new = max( h_nw + sub,          ; diagonal match/mismatch
                 h_w  - GAP,          ; gap in the first sequence
                 h_n  - GAP )         ; gap in the second sequence

Consistent with how the suite treats the SOR recurrence, the golden
semantics are a Jacobi-style sweep over the whole matrix (one relaxation
of the recurrence per iteration, periodic boundaries), so the gathered
elementwise form and the full-grid reference agree exactly; the actual
wavefront schedule is a property of the *execution order*, which the
streaming pipeline realises through its stream offsets.

The datapath is all adds, subtracts and ``max`` selections — no multiplies
at all — so the kernel maps zero DSP blocks while its north-west offset
(one full row plus one element) still demands a block-RAM line buffer:
a useful corner of the operation-mix space that none of the other kernels
covers (SOR/conv2d: constant multiplies; hotspot/lavamd/matmul:
data-dependent multiplies).
"""

from __future__ import annotations

import numpy as np

from repro.functional.program import KernelSpec
from repro.ir.types import ScalarType
from repro.kernels.base import ScientificKernel, fixed_point_constant
from repro.kernels.registry import register_kernel

__all__ = ["NeedlemanWunschKernel"]

#: linear gap penalty of the scoring scheme
GAP = 0.25

#: fixed-point scale for the integer datapath constants
FIXED_POINT_SCALE = 256


def _fx(value: float) -> int:
    return fixed_point_constant(value, FIXED_POINT_SCALE)


@register_kernel
class NeedlemanWunschKernel(ScientificKernel):
    """The Needleman-Wunsch DP-matrix kernel (wavefront dependency pattern)."""

    name = "nw"
    default_grid = (64, 64)
    default_iterations = 128     # one relaxation sweep per anti-diagonal band
    ops_per_item = 5             # 2 sub, 1 add, 2 max
    cpu_bytes_per_item = 24      # centre + three neighbour reads, sub read, write (4 B words)

    ELEMENT_TYPE = ScalarType.uint(20)

    # ------------------------------------------------------------------
    def spec(self) -> KernelSpec:
        ty = self.ELEMENT_TYPE

        def golden(c: dict[str, np.ndarray]) -> dict[str, np.ndarray]:
            west = c["h@-1"] - GAP
            north = c["h@-ND1"] - GAP
            diag = c["h@-ND1-1"] + c["sub"]
            return {"h_new": np.maximum(diag, np.maximum(west, north))}

        def build(fb, streams: dict[str, str]) -> None:
            west = fb.sub(ty, streams["h@-1"], _fx(GAP))
            north = fb.sub(ty, streams["h@-ND1"], _fx(GAP))
            diag = fb.add(ty, streams["h@-ND1-1"], streams["sub"])
            gaps = fb.instr("max", ty, west, north)
            fb.instr("max", ty, diag, gaps, result="h_new")
            fb.reduction("max", ty, "bestScore", "h_new")

        return KernelSpec(
            name=self.name,
            element_type=ty,
            inputs=["h", "sub"],
            outputs=["h_new"],
            golden=golden,
            build_datapath=build,
            offsets={"h": ["-1", "-ND1", "-ND1-1"]},
            constants={},
            ops_per_item=self.ops_per_item,
            bytes_per_item=self.cpu_bytes_per_item,
        )

    # ------------------------------------------------------------------
    def generate_inputs(self, grid: tuple[int, ...] | None = None, seed: int = 0) -> dict[str, np.ndarray]:
        grid = grid or self.default_grid
        rng = np.random.default_rng(seed)
        # synthetic substitution scores: mostly mismatches, some matches
        sub = np.where(rng.random(grid) > 0.75, 1.0, -0.33)
        return {
            "h": rng.random(grid, dtype=np.float64),
            "sub": sub.astype(np.float64),
        }

    def gather(self, arrays: dict[str, np.ndarray]) -> dict[str, np.ndarray]:
        h = np.asarray(arrays["h"])
        if h.ndim != 2:
            raise ValueError("nw expects a 2-D score matrix")

        def shift(drow: int, dcol: int) -> np.ndarray:
            return np.roll(h, shift=(-drow, -dcol), axis=(0, 1)).reshape(-1)

        return {
            "h": h.reshape(-1),
            "sub": np.asarray(arrays["sub"]).reshape(-1),
            "h@-1": shift(0, -1),
            "h@-ND1": shift(-1, 0),
            "h@-ND1-1": shift(-1, -1),
        }

    def reference(self, arrays: dict[str, np.ndarray], iterations: int = 1) -> dict[str, np.ndarray]:
        """Jacobi-style relaxation of the NW recurrence, periodic boundaries."""
        h = np.asarray(arrays["h"], dtype=np.float64).copy()
        sub = np.asarray(arrays["sub"], dtype=np.float64)
        for _ in range(max(1, iterations)):
            west = np.roll(h, 1, axis=1) - GAP
            north = np.roll(h, 1, axis=0) - GAP
            diag = np.roll(h, (1, 1), axis=(0, 1)) + sub
            h = np.maximum(diag, np.maximum(west, north))
        return {"h_new": h, "bestScore": np.asarray(float(h.max()))}
