"""Scientific kernels used in the paper's evaluation — and beyond it.

Six HPC kernels exercise the cost model (Table II), the case study
(Figures 15, 17 and 18) and the workload suite:

* :mod:`repro.kernels.sor` — the successive over-relaxation kernel from
  the Large Eddy Simulator weather model, an iterative Poisson solver
  whose main computation is a 7-point stencil plus a global reduction;
* :mod:`repro.kernels.hotspot` — the Hotspot benchmark from the Rodinia
  suite, a 2-D thermal simulation of a processor floorplan;
* :mod:`repro.kernels.lavamd` — the LavaMD molecular-dynamics kernel from
  Rodinia, computing particle potentials from pairwise interactions;
* :mod:`repro.kernels.conv2d` — a 3x3 constant-weight image convolution
  (9-point stencil, the BRAM-heaviest datapath of the suite);
* :mod:`repro.kernels.nw` — Needleman-Wunsch sequence alignment, the
  wavefront dependency pattern with a multiply-free datapath;
* :mod:`repro.kernels.matmul` — dense matrix multiplication streamed as
  K=4 dot-product tuples, the DSP-density extreme.

Each kernel provides a NumPy reference implementation, the gathered-tuple
view used by the functional front end, a :class:`KernelSpec` describing
its streaming datapath, constructors for TyTra-IR design variants, and the
workload/characterisation records the baselines and cost model need.

Kernels self-register through the declarative registry
(:mod:`repro.kernels.registry`): decorate a :class:`ScientificKernel`
subclass with ``@register_kernel`` and it becomes available to
:func:`get_kernel`, the CLI and the workload suite.  See the README's
"Adding a kernel" section for the full workflow (registry -> suite ->
golden reports).
"""

from repro.kernels.base import KernelWorkload, ScientificKernel
from repro.kernels.registry import REGISTRY, KernelRegistry, register_kernel
from repro.kernels.sor import SORKernel
from repro.kernels.hotspot import HotspotKernel
from repro.kernels.lavamd import LavaMDKernel
from repro.kernels.conv2d import Conv2DKernel
from repro.kernels.nw import NeedlemanWunschKernel
from repro.kernels.matmul import MatMulKernel

#: the live name -> class mapping (a Mapping view over the registry)
ALL_KERNELS = REGISTRY


def get_kernel(name: str) -> ScientificKernel:
    """Instantiate a registered kernel by name (case-insensitive)."""
    return REGISTRY.create(name)


def kernel_names() -> list[str]:
    """All registered kernel names, sorted."""
    return REGISTRY.names()


__all__ = [
    "ScientificKernel",
    "KernelWorkload",
    "KernelRegistry",
    "register_kernel",
    "REGISTRY",
    "SORKernel",
    "HotspotKernel",
    "LavaMDKernel",
    "Conv2DKernel",
    "NeedlemanWunschKernel",
    "MatMulKernel",
    "ALL_KERNELS",
    "get_kernel",
    "kernel_names",
]
