"""Scientific kernels used in the paper's evaluation.

Three HPC kernels exercise the cost model (Table II) and the case study
(Figures 15, 17 and 18):

* :mod:`repro.kernels.sor` — the successive over-relaxation kernel from
  the Large Eddy Simulator weather model, an iterative Poisson solver
  whose main computation is a 7-point stencil plus a global reduction;
* :mod:`repro.kernels.hotspot` — the Hotspot benchmark from the Rodinia
  suite, a 2-D thermal simulation of a processor floorplan;
* :mod:`repro.kernels.lavamd` — the LavaMD molecular-dynamics kernel from
  Rodinia, computing particle potentials from pairwise interactions.

Each kernel provides a NumPy reference implementation, the gathered-tuple
view used by the functional front end, a :class:`KernelSpec` describing
its streaming datapath, constructors for TyTra-IR design variants, and the
workload/characterisation records the baselines and cost model need.
"""

from repro.kernels.base import KernelWorkload, ScientificKernel
from repro.kernels.sor import SORKernel
from repro.kernels.hotspot import HotspotKernel
from repro.kernels.lavamd import LavaMDKernel

ALL_KERNELS = {
    "sor": SORKernel,
    "hotspot": HotspotKernel,
    "lavamd": LavaMDKernel,
}


def get_kernel(name: str) -> ScientificKernel:
    """Instantiate a kernel by name (``sor``, ``hotspot`` or ``lavamd``)."""
    try:
        return ALL_KERNELS[name.lower()]()
    except KeyError as exc:
        raise KeyError(f"unknown kernel {name!r}; available: {sorted(ALL_KERNELS)}") from exc


__all__ = [
    "ScientificKernel",
    "KernelWorkload",
    "SORKernel",
    "HotspotKernel",
    "LavaMDKernel",
    "ALL_KERNELS",
    "get_kernel",
]
