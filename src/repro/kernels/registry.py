"""Declarative kernel registry.

The paper's evaluation sweeps a handful of scientific kernels; the
ROADMAP's north star asks for "as many scenarios as you can imagine".
This registry makes adding a scenario first-class: a kernel module
declares itself with

    @register_kernel
    class MyKernel(ScientificKernel):
        name = "mykernel"
        ...

and the kernel immediately appears in :data:`ALL_KERNELS`, the CLI's
``--kernel`` choices, the workload suite's default grid and the golden
regression harness — no central list to edit.

Registration validates the declarative contract up front (unique name,
positive default grid/iterations, positive per-item work figures), so a
malformed kernel fails at import time rather than deep inside a sweep.
"""

from __future__ import annotations

from typing import Iterator, Mapping, Type

from repro.kernels.base import ScientificKernel

__all__ = ["KernelRegistry", "register_kernel", "REGISTRY"]


class KernelRegistry(Mapping[str, Type[ScientificKernel]]):
    """Name → kernel-class mapping with a validating ``register`` decorator.

    The registry is a :class:`Mapping`, so existing call-sites that treat
    ``ALL_KERNELS`` as a plain dict (``sorted(ALL_KERNELS)``,
    ``ALL_KERNELS[name]()``) keep working unchanged.
    """

    def __init__(self) -> None:
        self._kernels: dict[str, Type[ScientificKernel]] = {}

    # -- registration ------------------------------------------------------
    def register(self, cls: Type[ScientificKernel]) -> Type[ScientificKernel]:
        """Class decorator: validate the declarative contract and register."""
        if not (isinstance(cls, type) and issubclass(cls, ScientificKernel)):
            raise TypeError(f"@register_kernel expects a ScientificKernel subclass, got {cls!r}")
        name = getattr(cls, "name", None)
        if not name or name == ScientificKernel.name:
            raise ValueError(f"kernel class {cls.__name__} must declare a unique 'name'")
        if name != name.lower():
            raise ValueError(f"kernel name {name!r} must be lowercase")
        if name in self._kernels and self._kernels[name] is not cls:
            raise ValueError(f"kernel name {name!r} already registered to "
                             f"{self._kernels[name].__name__}")
        grid = cls.default_grid
        if not grid or any(int(d) <= 0 for d in grid):
            raise ValueError(f"kernel {name!r}: default_grid {grid!r} must be positive")
        if cls.default_iterations < 1:
            raise ValueError(f"kernel {name!r}: default_iterations must be >= 1")
        if cls.ops_per_item < 1 or cls.cpu_bytes_per_item < 1:
            raise ValueError(f"kernel {name!r}: per-item work figures must be positive")
        self._kernels[name] = cls
        return cls

    # -- lookup ------------------------------------------------------------
    def create(self, name: str) -> ScientificKernel:
        """Instantiate a registered kernel by (case-insensitive) name."""
        try:
            return self._kernels[name.lower()]()
        except KeyError as exc:
            raise KeyError(
                f"unknown kernel {name!r}; available: {sorted(self._kernels)}"
            ) from exc

    def names(self) -> list[str]:
        """All registered kernel names, sorted."""
        return sorted(self._kernels)

    # -- Mapping protocol ----------------------------------------------------
    def __getitem__(self, name: str) -> Type[ScientificKernel]:
        return self._kernels[name]

    def __iter__(self) -> Iterator[str]:
        return iter(self._kernels)

    def __len__(self) -> int:
        return len(self._kernels)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"KernelRegistry({sorted(self._kernels)})"


#: the process-wide registry backing ``repro.kernels.ALL_KERNELS``
REGISTRY = KernelRegistry()

#: class decorator registering a kernel into :data:`REGISTRY`
register_kernel = REGISTRY.register
