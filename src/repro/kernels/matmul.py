"""Dense matrix-multiplication kernel (streamed dot-product tuples).

Matrix multiplication is the throughput workhorse of every DSE study; the
streaming formulation here follows the gathered-tuple methodology of the
other kernels.  The inner dimension is fixed at ``K = 4`` (think of it as
one fully-unrolled k-tile of a blocked GEMM): the work-item for output
element ``C[i, j]`` carries the four ``A[i, k]`` and four ``B[k, j]``
values of its dot product, and the elemental function computes

    c = a0*b0 + a1*b1 + a2*b2 + a3*b3

All four multiplies are data-dependent, so the kernel is the suite's
DSP-density extreme — more DSP blocks per ALUT than LavaMD — and with no
stencil offsets it uses no block RAM at all.  The ``NKI`` repetitions model
the sweep over k-tiles (plus output reuse across a batched workload).
"""

from __future__ import annotations

import numpy as np

from repro.functional.program import KernelSpec
from repro.ir.types import ScalarType
from repro.kernels.base import ScientificKernel
from repro.kernels.registry import register_kernel

__all__ = ["MatMulKernel"]

#: the fixed (fully unrolled) inner dimension of the streamed dot product
TILE_K = 4


@register_kernel
class MatMulKernel(ScientificKernel):
    """Dense matmul with a fully-unrolled K=4 inner tile per work-item."""

    name = "matmul"
    default_grid = (32, 32)      # the output matrix C is the NDRange
    default_iterations = 256     # k-tile sweeps / batched instances
    ops_per_item = 7             # 4 data-dependent multiplies + 3 adds
    cpu_bytes_per_item = 36      # 2*K operand reads + one C write (4-byte words)

    ELEMENT_TYPE = ScalarType.uint(32)

    # ------------------------------------------------------------------
    def spec(self) -> KernelSpec:
        ty = self.ELEMENT_TYPE
        a_names = [f"a{k}" for k in range(TILE_K)]
        b_names = [f"b{k}" for k in range(TILE_K)]

        def golden(c: dict[str, np.ndarray]) -> dict[str, np.ndarray]:
            acc = c["a0"] * c["b0"]
            for k in range(1, TILE_K):
                acc = acc + c[f"a{k}"] * c[f"b{k}"]
            return {"c": acc}

        def build(fb, streams: dict[str, str]) -> None:
            products = [
                fb.mul(ty, streams[f"a{k}"], streams[f"b{k}"]) for k in range(TILE_K)
            ]
            acc = fb.add(ty, products[0], products[1])
            acc = fb.add(ty, acc, products[2])
            fb.add(ty, acc, products[3], result="c")
            fb.reduction("add", ty, "cAcc", "c")

        return KernelSpec(
            name=self.name,
            element_type=ty,
            inputs=a_names + b_names,
            outputs=["c"],
            golden=golden,
            build_datapath=build,
            offsets={},
            constants={},
            ops_per_item=self.ops_per_item,
            bytes_per_item=self.cpu_bytes_per_item,
        )

    # ------------------------------------------------------------------
    def generate_inputs(self, grid: tuple[int, ...] | None = None, seed: int = 0) -> dict[str, np.ndarray]:
        grid = grid or self.default_grid
        if len(grid) != 2:
            raise ValueError("matmul expects a 2-D output grid (rows, cols)")
        rows, cols = grid
        rng = np.random.default_rng(seed)
        return {
            "a": rng.random((rows, TILE_K), dtype=np.float64),
            "b": rng.random((TILE_K, cols), dtype=np.float64),
        }

    def gather(self, arrays: dict[str, np.ndarray]) -> dict[str, np.ndarray]:
        a = np.asarray(arrays["a"])
        b = np.asarray(arrays["b"])
        if a.ndim != 2 or b.ndim != 2 or a.shape[1] != TILE_K or b.shape[0] != TILE_K:
            raise ValueError(f"matmul expects a ({{N}}, {TILE_K}) A and ({TILE_K}, {{M}}) B")
        rows, cols = a.shape[0], b.shape[1]
        gathered: dict[str, np.ndarray] = {}
        for k in range(TILE_K):
            # broadcast A's column k down the output rows, B's row k across
            # the output columns, then flatten in C's row-major item order
            gathered[f"a{k}"] = np.repeat(a[:, k], cols)
            gathered[f"b{k}"] = np.tile(b[k, :], rows)
        return gathered

    def reference(self, arrays: dict[str, np.ndarray], iterations: int = 1) -> dict[str, np.ndarray]:
        a = np.asarray(arrays["a"], dtype=np.float64)
        b = np.asarray(arrays["b"], dtype=np.float64)
        c = a @ b
        # one k-tile product is iteration independent (like LavaMD's per-pair
        # potential); the accumulator models the batched-instance total
        return {"c": c, "cAcc": np.asarray(float(c.sum()) * max(1, iterations))}
