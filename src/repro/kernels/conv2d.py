"""2-D convolution kernel (9-point Gaussian-style stencil).

Image convolution is the canonical streaming-stencil workload of the
FPGA-roofline literature the paper builds on: each output pixel is a
weighted sum of the 3x3 neighbourhood of the input pixel, with periodic
boundaries::

    dst = wc*src + we*(E + W + N + S) + wd*(NE + NW + SE + SW)

All nine multiplies are by *constant* weights, so — like the SOR datapath
— the integer version of the kernel maps no DSP blocks; the eight
neighbour offsets (the widest spanning a full row plus one) turn into
block-RAM line buffers, making conv2d the most BRAM-hungry kernel of the
suite relative to its compute.
"""

from __future__ import annotations

import numpy as np

from repro.functional.program import KernelSpec
from repro.ir.types import ScalarType
from repro.kernels.base import ScientificKernel, fixed_point_constant
from repro.kernels.registry import register_kernel

__all__ = ["Conv2DKernel"]

#: separable Gaussian-like weights: centre, edge (4x), diagonal (4x)
W_CENTRE = 0.25
W_EDGE = 0.125
W_DIAG = 0.0625

#: fixed-point scale for the integer datapath constants
FIXED_POINT_SCALE = 256


def _fx(value: float) -> int:
    return fixed_point_constant(value, FIXED_POINT_SCALE)


@register_kernel
class Conv2DKernel(ScientificKernel):
    """A 3x3 constant-weight image convolution (periodic boundaries)."""

    name = "conv2d"
    default_grid = (64, 64)
    default_iterations = 500
    ops_per_item = 17            # 9 constant multiplies + 8 adds
    cpu_bytes_per_item = 40      # nine reads + one write of 4-byte words

    ELEMENT_TYPE = ScalarType.uint(24)

    #: (logical offset, weight) of the eight neighbour taps, row-major flat
    TAPS = [
        ("+1", W_EDGE), ("-1", W_EDGE),
        ("+ND1", W_EDGE), ("-ND1", W_EDGE),
        ("+ND1+1", W_DIAG), ("+ND1-1", W_DIAG),
        ("-ND1+1", W_DIAG), ("-ND1-1", W_DIAG),
    ]

    # ------------------------------------------------------------------
    def spec(self) -> KernelSpec:
        ty = self.ELEMENT_TYPE

        def golden(c: dict[str, np.ndarray]) -> dict[str, np.ndarray]:
            acc = W_CENTRE * c["src"]
            for offset, weight in self.TAPS:
                acc = acc + weight * c[f"src@{offset}"]
            return {"dst": acc}

        def build(fb, streams: dict[str, str]) -> None:
            centre = fb.mul(ty, streams["src"], _fx(W_CENTRE))
            products = [
                fb.mul(ty, streams[f"src@{offset}"], _fx(weight))
                for offset, weight in self.TAPS
            ]
            acc = centre
            for index, product in enumerate(products):
                is_last = index == len(products) - 1
                acc = fb.add(ty, acc, product, result="dst" if is_last else None)
            fb.reduction("add", ty, "pixAcc", "dst")

        return KernelSpec(
            name=self.name,
            element_type=ty,
            inputs=["src"],
            outputs=["dst"],
            golden=golden,
            build_datapath=build,
            offsets={"src": [offset for offset, _ in self.TAPS]},
            constants={},
            ops_per_item=self.ops_per_item,
            bytes_per_item=self.cpu_bytes_per_item,
        )

    # ------------------------------------------------------------------
    def generate_inputs(self, grid: tuple[int, ...] | None = None, seed: int = 0) -> dict[str, np.ndarray]:
        grid = grid or self.default_grid
        rng = np.random.default_rng(seed)
        return {"src": rng.random(grid, dtype=np.float64)}

    def gather(self, arrays: dict[str, np.ndarray]) -> dict[str, np.ndarray]:
        src = np.asarray(arrays["src"])
        if src.ndim != 2:
            raise ValueError("conv2d expects a 2-D image")

        # flat index moves fastest along the last axis: +1 is a column shift,
        # +ND1 a row shift (matching the symbolic offsets over the constants)
        def shift(drow: int, dcol: int) -> np.ndarray:
            return np.roll(src, shift=(-drow, -dcol), axis=(0, 1)).reshape(-1)

        shifts = {
            "+1": (0, 1), "-1": (0, -1),
            "+ND1": (1, 0), "-ND1": (-1, 0),
            "+ND1+1": (1, 1), "+ND1-1": (1, -1),
            "-ND1+1": (-1, 1), "-ND1-1": (-1, -1),
        }
        gathered = {"src": src.reshape(-1)}
        for offset, (drow, dcol) in shifts.items():
            gathered[f"src@{offset}"] = shift(drow, dcol)
        return gathered

    def reference(self, arrays: dict[str, np.ndarray], iterations: int = 1) -> dict[str, np.ndarray]:
        """Repeatedly convolve the full image (periodic boundaries)."""
        src = np.asarray(arrays["src"], dtype=np.float64).copy()
        for _ in range(max(1, iterations)):
            edge = (
                np.roll(src, -1, axis=1) + np.roll(src, 1, axis=1)
                + np.roll(src, -1, axis=0) + np.roll(src, 1, axis=0)
            )
            diag = (
                np.roll(src, (-1, -1), axis=(0, 1)) + np.roll(src, (-1, 1), axis=(0, 1))
                + np.roll(src, (1, -1), axis=(0, 1)) + np.roll(src, (1, 1), axis=(0, 1))
            )
            src = W_CENTRE * src + W_EDGE * edge + W_DIAG * diag
        return {"dst": src}
