"""The staged estimation pipeline with content-keyed memoization.

The paper's value proposition is estimator *speed*: ~0.3 s per variant
against ~70 s for an HLS tool's preliminary estimate, which is what makes
design-space exploration practical at all.  The original driver exposed the
estimation flow of Figure 11 as one monolithic ``cost()`` call that redid
every step for every variant.  This module decomposes the flow into
explicit, individually cacheable stages — the composable-flow architecture
of modern EDA runners:

``ParseStage``
    TyTra-IR text → validated :class:`~repro.ir.functions.Module`
    (memoized on the source text).
``AnalysisStage``
    Module → :class:`CompiledVariant` (structure, configuration tree,
    classification, schedules, pipeline spec), memoized on the module's
    *content fingerprint* so structurally identical variants are analysed
    once — and, through the lane-scaling law of
    :mod:`repro.compiler.lanescale`, analysed once per *design family*:
    every lane count of a replicated-lane design derives its analysis from
    the family's canonical member instead of re-running it.
``ResourceStage``
    Module → :class:`~repro.cost.resource_model.ModuleResourceEstimate`
    including the scheduler-implied pipeline-balancing registers, memoized
    on the same content key (and derived per lane for family members).
``ThroughputStage``
    Variant + workload → Table-I parameters, memory-execution form and the
    EKIT estimate (cheap, computed per workload).
``FeasibilityStage``
    Resources + parameters → the Figure-2 validity verdict.

The expensive one-time per-device inputs (synthetic-synthesis
characterisation, DRAM/host sustained-bandwidth fits) are shared across
*all* pipelines in the process through a module-level calibration cache
— and, underneath it, through the persistent warm-start store of
:mod:`repro.cost.cache`, so a *new* process (a pool worker, the next CLI
invocation, a CI rerun) inherits calibration and family analyses from
disk instead of recomputing them.  Every stage keeps hit/miss counters
and wall-time accumulators (:class:`PipelineCacheStats`) so sweeps can
report where their time actually went.
"""

from __future__ import annotations

import hashlib
import os
import threading
import time
from dataclasses import dataclass, field
from typing import Iterable

from repro.compiler.analysis import (
    ConfigurationTree,
    ModuleClassification,
    build_configuration_tree,
    classify_from_parts,
)
from repro.compiler.lanescale import (
    FamilyAnalysis,
    LaneFamilyHandle,
    build_family,
    check_lane_separable,
    clear_family_caches,
    derive_classification,
    derive_structure,
    derive_tree,
    family_cache_info,
    family_fingerprint,
    latency_key,
    lookup_family,
    lookup_family_for_recipe,
    register_family,
    register_recipe_alias,
)
from repro.compiler.scheduling import (
    OperatorLatencyModel,
    ScheduledPipeline,
    pipeline_spec_from_schedule,
    schedule_module,
)
from repro.cost.bandwidth import SustainedBandwidthModel
from repro.cost.cache import BoundedCache, default_disk_cache, env_int
from repro.cost.calibration import DeviceCostDB, calibrate_device
from repro.cost.report import CostReport, FeasibilityCheck
from repro.cost.resource_model import ModuleResourceEstimate, ModuleStructure, ResourceEstimator
from repro.cost.throughput import EKITParameters, estimate_throughput
from repro.ir import parse_module
from repro.ir.functions import Module
from repro.obs.trace import span as trace_span
from repro.ir.validator import validate_module
from repro.models.execution import KernelInstance
from repro.models.memory_execution import (
    FormSelection,
    MemoryExecutionForm,
    select_memory_execution_form,
)
from repro.models.streaming import AccessPattern, PatternKind
from repro.substrate.fpga_device import FPGADevice, MAIA_STRATIX_V_GSD8
from repro.substrate.memory_sim import MemorySystemSimulator
from repro.substrate.pipeline_sim import PipelineSpec
from repro.substrate.synthesis import ResourceUsage, SyntheticSynthesizer

__all__ = [
    "CompilationOptions",
    "CompiledVariant",
    "CalibrationArtifacts",
    "PipelineCacheStats",
    "EstimationPipeline",
    "module_content_key",
    "adopt_shared_calibration",
    "clear_calibration_cache",
    "pipeline_cache_info",
]

# backward-compatible alias: the bounded LRU now lives with the caches
_BoundedCache = BoundedCache


def _lane_scaling_default() -> bool:
    """Lane scaling is on unless ``TYBEC_LANE_SCALING`` disables it."""
    return os.environ.get("TYBEC_LANE_SCALING", "1").strip().lower() not in (
        "0", "off", "false",
    )


@dataclass
class CompilationOptions:
    """Configuration of a TyBEC compilation session.

    All empirically-derived inputs (the cost database and the bandwidth
    models) are built automatically from the substrate the first time they
    are needed and cached — mirroring the one-time per-device calibration
    of Figure 2 — but can be injected explicitly (e.g. the paper's own
    Figure-10 table).  Instances are pickle-safe, so an option set can be
    shipped to :mod:`concurrent.futures` worker processes together with the
    design variants to cost.

    ``lane_scaling`` selects whether the analytic lane-scaling law may
    derive family members from one canonical analysis (the default) or
    every variant must run the full path — the differential tests prove
    the two produce bit-identical reports, so disabling it is only useful
    for benchmarking and debugging.
    """

    device: FPGADevice = MAIA_STRATIX_V_GSD8
    clock_mhz: float | None = None
    cost_db: DeviceCostDB | None = None
    dram_bandwidth: SustainedBandwidthModel | None = None
    host_bandwidth: SustainedBandwidthModel | None = None
    latency_model: OperatorLatencyModel = field(default_factory=OperatorLatencyModel)
    form: str | MemoryExecutionForm = "auto"
    synthesis_noise: float = 0.025
    lane_scaling: bool = field(default_factory=_lane_scaling_default)

    def resolved_clock_mhz(self) -> float:
        return self.clock_mhz if self.clock_mhz is not None else self.device.fmax_mhz

    def session_key(self) -> tuple:
        """Hashable identity of the estimation session these options define.

        Two option sets with the same key produce identical cost reports,
        so a pipeline (and its caches) can be shared among them.  Injected
        models are distinguished by object identity — the key is only
        meaningful within one process, and only *before* calibration
        lazily fills the model fields in.
        """
        lat = self.latency_model
        return (
            self.device,
            self.resolved_clock_mhz(),
            str(self.form.value if isinstance(self.form, MemoryExecutionForm) else self.form),
            self.synthesis_noise,
            (lat.div_cycles_per_bit, lat.sqrt_cycles_per_bit, lat.input_stage_cycles),
            self.lane_scaling,
            id(self.cost_db) if self.cost_db is not None else None,
            id(self.dram_bandwidth) if self.dram_bandwidth is not None else None,
            id(self.host_bandwidth) if self.host_bandwidth is not None else None,
        )


@dataclass
class CompiledVariant:
    """Everything the compiler derives from one design variant's IR.

    Variants derived by the lane-scaling law from a warm family recipe
    carry ``module=None`` (their IR was never lowered) together with the
    ``design_name`` the lowering would have produced and a reference to
    the :class:`~repro.compiler.lanescale.FamilyAnalysis` they derive
    from.
    """

    module: Module | None
    structure: ModuleStructure
    configuration: ConfigurationTree
    classification: ModuleClassification
    schedules: dict[str, ScheduledPipeline]
    pipeline_spec: PipelineSpec
    #: content hash of the module (the memoization key of the variant)
    content_key: str = ""
    #: design name when no module is attached (lane-derived variants)
    design_name: str = ""
    #: the design family this variant was derived from (None = full path)
    family: FamilyAnalysis | None = None

    @property
    def name(self) -> str:
        return self.module.name if self.module is not None else self.design_name

    @property
    def lanes(self) -> int:
        return self.structure.lanes

    @property
    def pipeline_depth(self) -> int:
        return self.pipeline_spec.pipeline_depth

    @property
    def balancing_register_bits(self) -> int:
        return sum(s.balancing_register_bits + s.input_delay_bits for s in self.schedules.values())


def module_content_key(module: Module) -> str:
    """A stable content hash of a module's structural content.

    Computed once per module instance and cached on it (see
    :meth:`repro.ir.functions.Module.content_fingerprint`) — repeated
    memoization lookups no longer pretty-print the IR.
    """
    return module.content_fingerprint()


@dataclass
class PipelineCacheStats:
    """Hit/miss counters and stage timings of the pipeline's layers.

    ``stage_seconds`` accumulates the wall time spent *computing* in each
    stage (parse, analyze, resource, throughput, feasibility, calibrate)
    so a sweep can name the guilty stage when throughput regresses;
    ``family_*`` counts the lane-scaling law's work (``hits`` = members
    derived analytically, ``misses`` = canonical members fully analysed,
    ``fallbacks`` = designs that were not lane-separable); ``disk_*``
    counts warm-start loads from the persistent store.

    A pipeline shared by concurrent request threads (the exploration
    service) bumps these counters from many threads at once; ``bump`` and
    ``add_time`` serialise the read-modify-write under a lock so no
    increment is ever lost, and ``as_dict`` snapshots all counters under
    the same lock so a metrics scrape is internally consistent.
    """

    parse_hits: int = 0
    parse_misses: int = 0
    variant_hits: int = 0
    variant_misses: int = 0
    resource_hits: int = 0
    resource_misses: int = 0
    calibration_hits: int = 0
    calibration_misses: int = 0
    family_hits: int = 0
    family_misses: int = 0
    family_fallbacks: int = 0
    disk_hits: int = 0
    disk_misses: int = 0
    stage_seconds: dict = field(default_factory=dict)
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def __getstate__(self):
        state = self.__dict__.copy()
        state.pop("_lock", None)
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._lock = threading.Lock()

    @property
    def hits(self) -> int:
        return self.parse_hits + self.variant_hits + self.resource_hits + self.calibration_hits

    @property
    def misses(self) -> int:
        return (
            self.parse_misses + self.variant_misses + self.resource_misses
            + self.calibration_misses
        )

    def bump(self, counter: str, n: int = 1) -> None:
        """Atomically increment one of the hit/miss counters by ``n``."""
        with self._lock:
            setattr(self, counter, getattr(self, counter) + n)

    def add_time(self, stage: str, seconds: float) -> None:
        with self._lock:
            self.stage_seconds[stage] = self.stage_seconds.get(stage, 0.0) + seconds

    def as_dict(self) -> dict:
        with self._lock:
            return {
                "parse": [self.parse_hits, self.parse_misses],
                "variant": [self.variant_hits, self.variant_misses],
                "resource": [self.resource_hits, self.resource_misses],
                "calibration": [self.calibration_hits, self.calibration_misses],
                "family": [self.family_hits, self.family_misses],
                "family_fallbacks": self.family_fallbacks,
                "disk": [self.disk_hits, self.disk_misses],
                "stage_seconds": dict(self.stage_seconds),
            }


# ----------------------------------------------------------------------
# Per-device calibration artifacts (process-wide, built once per device,
# persisted to the warm-start store for the next process)
# ----------------------------------------------------------------------


@dataclass
class CalibrationArtifacts:
    """The one-time per-device inputs of Figure 2."""

    memory_simulator: MemorySystemSimulator
    cost_db: DeviceCostDB
    dram_bandwidth: SustainedBandwidthModel
    host_bandwidth: SustainedBandwidthModel
    #: True when ``cost_db`` is the process-wide default calibration for
    #: the device (safe to share derived results across pipelines), False
    #: when the caller injected its own database
    shared_cost_db: bool = True


_CALIBRATION_LOCK = threading.Lock()
_MEMSIM_CACHE: dict = {}
_COSTDB_CACHE: dict = {}
_DRAM_CACHE: dict = {}
_HOST_CACHE: dict = {}


def clear_calibration_cache() -> None:
    """Drop every process-wide cache (calibration, structural analysis,
    shared resource estimates, lane-scaling families) — for tests.  The
    persistent disk store is untouched; redirect ``TYBEC_CACHE_DIR`` (or
    run ``tybec cache clear``) to control that layer."""
    with _CALIBRATION_LOCK:
        _MEMSIM_CACHE.clear()
        _COSTDB_CACHE.clear()
        _DRAM_CACHE.clear()
        _HOST_CACHE.clear()
    _STRUCTURAL_CACHE.clear()
    _DERIVED_CACHE.clear()
    _RESOURCE_CACHE.clear()
    clear_family_caches()


def pipeline_cache_info() -> list[dict]:
    """Occupancy and hit/miss/eviction counters of every process-wide cache."""
    return (
        [_STRUCTURAL_CACHE.info(), _DERIVED_CACHE.info(), _RESOURCE_CACHE.info()]
        + family_cache_info()
    )


def adopt_shared_calibration(options: CompilationOptions) -> None:
    """Seed this process's calibration caches from pre-resolved options.

    A pool parent resolves calibration once and ships it inside the
    pickled options; without adoption the worker would treat those models
    as caller-injected (they are not in its own caches), disabling the
    shared resource/family caches.  Only call this for options whose
    models came from the shared default calibration — the caller (the
    pool backend) tracks that bit.  ``setdefault`` keeps the first winner
    so concurrent batches converge on one object identity per device.
    """
    device = options.device
    with _CALIBRATION_LOCK:
        if options.cost_db is not None:
            key = (device, options.synthesis_noise)
            _COSTDB_CACHE.setdefault(key, options.cost_db)
            options.cost_db = _COSTDB_CACHE[key]
        if options.dram_bandwidth is not None:
            _DRAM_CACHE.setdefault(device, options.dram_bandwidth)
            options.dram_bandwidth = _DRAM_CACHE[device]
        if options.host_bandwidth is not None:
            _HOST_CACHE.setdefault(device, options.host_bandwidth)
            options.host_bandwidth = _HOST_CACHE[device]


def _shared_memory_simulator(device: FPGADevice) -> MemorySystemSimulator:
    with _CALIBRATION_LOCK:
        sim = _MEMSIM_CACHE.get(device)
        if sim is None:
            sim = _MEMSIM_CACHE[device] = MemorySystemSimulator(device)
        return sim


class CalibrationStage:
    """Resolve the per-device calibration artifacts for an option set.

    Injected models (``options.cost_db`` etc.) win; everything else comes
    from the process-wide cache, warm-started from the persistent store
    and calibrated from scratch only when both layers miss.  Resolved
    models are written back into the options — preserving the original
    driver's lazy-fill behaviour, and making a later pickle of the options
    carry the calibration to worker processes for free.
    """

    def _resolve(self, memory_cache: dict, memory_key, disk_token,
                 compute, stats: PipelineCacheStats):
        """Memory → disk → compute, publishing upwards on the way out."""
        with _CALIBRATION_LOCK:
            value = memory_cache.get(memory_key)
        if value is not None:
            return value, False
        disk = default_disk_cache()
        if disk is not None:
            value = disk.get("calibration", disk_token)
            if value is not None:
                stats.bump("disk_hits")
                with _CALIBRATION_LOCK:
                    memory_cache.setdefault(memory_key, value)
                    value = memory_cache[memory_key]
                return value, False
            stats.bump("disk_misses")
        with trace_span("pipeline.calibrate", token=disk_token[0]):
            value = compute()
        with _CALIBRATION_LOCK:
            memory_cache.setdefault(memory_key, value)
            value = memory_cache[memory_key]
        if disk is not None:
            disk.put("calibration", disk_token, value)
        return value, True

    def run(self, options: CompilationOptions, stats: PipelineCacheStats) -> CalibrationArtifacts:
        started = time.perf_counter()
        device = options.device
        sim = _shared_memory_simulator(device)
        missed = False

        if options.cost_db is None:
            def _calibrate():
                synthesizer = SyntheticSynthesizer(device, options.synthesis_noise)
                return calibrate_device(
                    synthesizer.characterize(), dsp_input_width=device.dsp_input_width
                )

            options.cost_db, computed = self._resolve(
                _COSTDB_CACHE, (device, options.synthesis_noise),
                ("costdb", repr(device), options.synthesis_noise),
                _calibrate, stats,
            )
            missed |= computed

        if options.dram_bandwidth is None:
            options.dram_bandwidth, computed = self._resolve(
                _DRAM_CACHE, device, ("dram", repr(device)),
                lambda: SustainedBandwidthModel.from_simulator(
                    sim, name=f"{device.name}-dram"
                ),
                stats,
            )
            missed |= computed

        if options.host_bandwidth is None:
            options.host_bandwidth, computed = self._resolve(
                _HOST_CACHE, device, ("host", repr(device)),
                lambda: SustainedBandwidthModel.host_from_simulator(
                    sim, name=f"{device.name}-host"
                ),
                stats,
            )
            missed |= computed

        if missed:
            stats.bump("calibration_misses")
        else:
            stats.bump("calibration_hits")
        with _CALIBRATION_LOCK:
            shared = options.cost_db is _COSTDB_CACHE.get((device, options.synthesis_noise))
        stats.add_time("calibrate", time.perf_counter() - started)
        return CalibrationArtifacts(
            memory_simulator=sim,
            cost_db=options.cost_db,
            dram_bandwidth=options.dram_bandwidth,
            host_bandwidth=options.host_bandwidth,
            shared_cost_db=shared,
        )


# ----------------------------------------------------------------------
# The structural stages
# ----------------------------------------------------------------------


class ParseStage:
    """TyTra-IR text → validated module (memoized on the source text)."""

    def __init__(self, maxsize: int = 128):
        self._cache = BoundedCache(maxsize, name="parse")

    def run(self, text: str, name: str, stats: PipelineCacheStats) -> Module:
        key = (hashlib.sha256(text.encode()).hexdigest(), name)
        module = self._cache.get(key)
        if module is not None:
            stats.bump("parse_hits")
            return module
        stats.bump("parse_misses")
        started = time.perf_counter()
        with trace_span("pipeline.parse", design=name):
            module = parse_module(text, name=name)
            validate_module(module)
        self._cache.put(key, module)
        stats.add_time("parse", time.perf_counter() - started)
        return module


def _latency_key(options: CompilationOptions) -> tuple:
    return latency_key(options.latency_model)


#: process-wide cache of the clock-independent structural analysis
#: (structure, configuration tree, classification, schedules, family),
#: keyed on (content hash, latency model) — shared by every pipeline so a
#: clock axis in a sweep does not re-analyse identical modules per clock
_STRUCTURAL_CACHE = BoundedCache(
    env_int("TYBEC_STRUCT_CACHE_SIZE", 512), name="structural"
)

#: process-wide cache of lane-derived structural bundles for *lazy*
#: recipes, keyed on (family, latency, lanes, design name) — the clock
#: axis of a sweep re-derives nothing
_DERIVED_CACHE = BoundedCache(
    env_int("TYBEC_STRUCT_CACHE_SIZE", 512), name="derived"
)


class AnalysisStage:
    """Module → :class:`CompiledVariant`, memoized on content fingerprint.

    Only the pipeline spec depends on the clock; the structural bundle is
    memoized process-wide on (content, latency model) and reused across
    pipelines — e.g. across the clock axis of a multi-axis sweep.  For
    lane-separable designs the bundle is *derived* from the design
    family's canonical analysis (one full analysis per family, however
    many lane counts the sweep visits); anything that fails the
    separability check takes the full path automatically.
    """

    def __init__(self, maxsize: int = 256):
        self._cache = BoundedCache(maxsize, name="variant")

    # -- real modules ---------------------------------------------------
    def run(
        self,
        module: Module,
        options: CompilationOptions,
        stats: PipelineCacheStats,
        recipe_token: tuple | None = None,
    ) -> CompiledVariant:
        content = module_content_key(module)
        lat_key = _latency_key(options)
        key = (content, options.resolved_clock_mhz(), lat_key)
        variant = self._cache.get(key)
        if variant is not None:
            stats.bump("variant_hits")
            return variant
        stats.bump("variant_misses")
        started = time.perf_counter()

        bundle = _STRUCTURAL_CACHE.get((content, lat_key))
        if bundle is None:
            with trace_span("pipeline.analyze", design=module.name):
                bundle = self._structural_bundle(module, content, lat_key, options, stats)
            _STRUCTURAL_CACHE.put((content, lat_key), bundle)
        structure, tree, classification, schedules, family = bundle
        if family is not None and recipe_token is not None:
            # teach the sweep layer's recipe index about this family so
            # later lane counts of the same recipe skip lowering entirely
            register_recipe_alias(recipe_token, family)
        spec = pipeline_spec_from_schedule(
            module, structure, schedules, clock_mhz=options.resolved_clock_mhz()
        )
        variant = CompiledVariant(
            module=module,
            structure=structure,
            configuration=tree,
            classification=classification,
            schedules=schedules,
            pipeline_spec=spec,
            content_key=content,
            family=family,
        )
        self._cache.put(key, variant)
        stats.add_time("analyze", time.perf_counter() - started)
        return variant

    def _structural_bundle(
        self,
        module: Module,
        content: str,
        lat_key: tuple,
        options: CompilationOptions,
        stats: PipelineCacheStats,
    ) -> tuple:
        sep = check_lane_separable(module) if options.lane_scaling else None
        fingerprint = None
        if sep is not None:
            fingerprint = family_fingerprint(module, sep)
            family = lookup_family(fingerprint, lat_key)
            if family is not None:
                # the lane-scaling law: derive this member from the family
                stats.bump("family_hits")
                return self._derived_bundle(family, sep.lanes, module.name, module)

        # the full path: validate, analyse, schedule — once per family
        # (separable designs) or once per content (everything else)
        disk = default_disk_cache() if sep is None else None
        if disk is not None:
            loaded = disk.get("analysis", (content, lat_key))
            if loaded is not None:
                stats.bump("disk_hits")
                return loaded
            stats.bump("disk_misses")

        validate_module(module)
        structure = ModuleStructure.from_module(module)
        tree = build_configuration_tree(module)
        classification = classify_from_parts(module, tree, structure)
        schedules = schedule_module(module, options.latency_model)

        family = None
        if sep is not None:
            family = build_family(module, sep, fingerprint, lat_key,
                                  structure, schedules, classification)
            if family is not None:
                stats.bump("family_misses")
                register_family(family)
            else:
                stats.bump("family_fallbacks")
        elif options.lane_scaling:
            stats.bump("family_fallbacks")

        bundle = (structure, tree, classification, schedules, family)
        if disk is not None:
            disk.put("analysis", (content, lat_key), bundle)
        return bundle

    @staticmethod
    def _derived_bundle(
        family: FamilyAnalysis, lanes: int, design_name: str, module: Module | None
    ) -> tuple:
        structure = derive_structure(family, lanes, module=module)
        tree = derive_tree(family, lanes, design_name, module=module)
        classification = derive_classification(family, lanes)
        return (structure, tree, classification, family.schedules, family)

    # -- lazy recipes ---------------------------------------------------
    def run_handle(
        self,
        handle: LaneFamilyHandle,
        options: CompilationOptions,
        stats: PipelineCacheStats,
    ) -> CompiledVariant:
        """Analyse a sweep recipe, lowering its module only when needed.

        A warm family turns the whole analysis into O(lanes) dataclass
        assembly; a cold (or non-separable) recipe materializes the module
        and takes the normal path, registering the family for every
        member that follows.
        """
        lat_key = _latency_key(options)
        clock = options.resolved_clock_mhz()
        key = ("recipe", handle.point_token(), clock, lat_key)
        variant = self._cache.get(key)
        if variant is not None:
            stats.bump("variant_hits")
            return variant

        if options.lane_scaling and handle._module is None:
            family = lookup_family_for_recipe(handle.family_token(), lat_key)
            if family is not None:
                stats.bump("variant_misses")
                stats.bump("family_hits")
                started = time.perf_counter()
                bundle_key = (family.fingerprint, family.latency, handle.lanes,
                              handle.design_name)
                bundle = _DERIVED_CACHE.get(bundle_key)
                if bundle is None:
                    bundle = self._derived_bundle(
                        family, handle.lanes, handle.design_name, None
                    )
                    _DERIVED_CACHE.put(bundle_key, bundle)
                structure, tree, classification, schedules, family = bundle
                spec = pipeline_spec_from_schedule(
                    None, structure, schedules, clock_mhz=clock,
                    name=handle.design_name,
                )
                variant = CompiledVariant(
                    module=None,
                    structure=structure,
                    configuration=tree,
                    classification=classification,
                    schedules=schedules,
                    pipeline_spec=spec,
                    content_key=f"recipe:{handle.point_token()!r}",
                    design_name=handle.design_name,
                    family=family,
                )
                self._cache.put(key, variant)
                stats.add_time("analyze", time.perf_counter() - started)
                return variant

        variant = self.run(handle.materialize(), options, stats,
                           recipe_token=handle.family_token())
        self._cache.put(key, variant)
        return variant


#: process-wide resource-estimate cache for default-calibrated devices,
#: keyed on (content, latency model, device, noise) — the estimate does
#: not depend on the clock, so the clock axis of a sweep shares it
_RESOURCE_CACHE = BoundedCache(
    env_int("TYBEC_RESOURCE_CACHE_SIZE", 512), name="resource"
)


class ResourceStage:
    """Variant → resource estimate (balancing registers included).

    The estimate depends on the module content, the latency model (via
    the scheduler's balancing registers) and the cost database — not the
    clock — and is memoized accordingly: per-pipeline always, and
    process-wide when the cost database is the shared default calibration
    for the device.  Lane-derived variants reuse the family's per-device
    PE datapath usage and fold it through the same
    ``estimate_from_structure`` arithmetic as the full path, which keeps
    their estimates bit-identical.  Every call returns a fresh shell
    around the cached breakdown (own ``total``, own ``functions`` list),
    so a caller adjusting a report's resources — as the pre-pipeline
    driver itself did with balancing registers — cannot corrupt other
    reports or future cache hits.
    """

    def __init__(self, maxsize: int = 256):
        self._cache = BoundedCache(maxsize, name="resource-session")

    @staticmethod
    def _fresh_view(estimate: ModuleResourceEstimate) -> ModuleResourceEstimate:
        return ModuleResourceEstimate(
            design=estimate.design,
            total=ResourceUsage(**estimate.total.as_dict()),
            functions=list(estimate.functions),
            offset_buffers=estimate.offset_buffers,
            stream_control=estimate.stream_control,
            structure=estimate.structure,
        )

    def _family_pe_usage(
        self,
        family: FamilyAnalysis,
        estimator: ResourceEstimator,
        options: CompilationOptions,
        calibration: CalibrationArtifacts,
    ) -> ResourceUsage:
        """The family's per-instance PE datapath usage for this device."""
        if not calibration.shared_cost_db:
            # injected cost database: compute fresh for this session only
            return estimator.estimate_function_body(family.pe)
        key = (options.device, options.synthesis_noise)
        with family.usage_lock:
            usage = family.leaf_usage.get(key)
        if usage is None:
            usage = estimator.estimate_function_body(family.pe)
            with family.usage_lock:
                family.leaf_usage.setdefault(key, usage)
                usage = family.leaf_usage[key]
            # re-publish so the persisted family carries this device's
            # usage into the next process's warm start
            register_family(family)
        return usage

    def _compute(
        self,
        variant: CompiledVariant,
        estimator: ResourceEstimator,
        options: CompilationOptions,
        calibration: CalibrationArtifacts,
    ) -> ModuleResourceEstimate:
        if variant.family is not None:
            usage = self._family_pe_usage(variant.family, estimator, options, calibration)
            leaf_usages = {variant.family.pe_name: usage}
        else:
            leaf_usages = estimator.leaf_usages(variant.module, variant.structure)
        return estimator.estimate_from_structure(
            variant.structure, leaf_usages, design=variant.name
        )

    def run(
        self,
        variant: CompiledVariant,
        calibration: CalibrationArtifacts,
        options: CompilationOptions,
        stats: PipelineCacheStats,
    ) -> ModuleResourceEstimate:
        content = variant.content_key or module_content_key(variant.module)
        key = (content, _latency_key(options))
        estimate = self._cache.get(key)
        if estimate is not None:
            stats.bump("resource_hits")
            return self._fresh_view(estimate)

        shared_key = None
        if calibration.shared_cost_db:
            shared_key = key + (options.device, options.synthesis_noise)
            estimate = _RESOURCE_CACHE.get(shared_key)
            if estimate is not None:
                stats.bump("resource_hits")
                self._cache.put(key, estimate)
                return self._fresh_view(estimate)

        stats.bump("resource_misses")
        started = time.perf_counter()
        with trace_span("pipeline.resource", design=variant.name):
            estimator = ResourceEstimator(calibration.cost_db)
            estimate = self._compute(variant, estimator, options, calibration)
        # the estimation flow of Figure 11 also accounts for the data/control
        # delay lines the scheduler implies (pipeline balancing registers),
        # replicated once per lane
        estimate.total += ResourceUsage(
            reg=variant.balancing_register_bits * variant.structure.lanes
        )
        self._cache.put(key, estimate)
        if shared_key is not None:
            _RESOURCE_CACHE.put(shared_key, estimate)
        stats.add_time("resource", time.perf_counter() - started)
        return self._fresh_view(estimate)


class ThroughputStage:
    """Variant + workload → Table-I parameters, form and EKIT estimate."""

    def select_form(self, footprint_bytes: int, options: CompilationOptions) -> FormSelection:
        if options.form != "auto":
            form = MemoryExecutionForm(options.form)
            return FormSelection(form, footprint_bytes, "forced by compilation options")
        return select_memory_execution_form(footprint_bytes, options.device.memory_hierarchy())

    def extract_parameters(
        self,
        variant: CompiledVariant,
        workload: KernelInstance,
        pattern: AccessPattern | PatternKind,
        options: CompilationOptions,
        calibration: CalibrationArtifacts,
    ) -> tuple[EKITParameters, FormSelection]:
        """Derive the Table-I parameters for a variant and a workload."""
        structure = variant.structure
        word_bytes = max(1, (structure.element_width + 7) // 8)
        nwpt = structure.words_per_item
        footprint = workload.global_size * nwpt * word_bytes
        selection = self.select_form(footprint, options)

        dram = calibration.dram_bandwidth
        host = calibration.host_bandwidth
        params = EKITParameters.for_pipelined_design(
            hpb_gbps=host.peak_gbps,
            rho_h=host.rho(footprint),
            gpb_gbps=dram.peak_gbps,
            rho_g=dram.rho(footprint, pattern),
            ngs=workload.global_size,
            nwpt=nwpt,
            nki=workload.repetitions,
            noff=structure.max_offset_span_words,
            kpd=variant.pipeline_spec.pipeline_depth,
            fd_mhz=options.resolved_clock_mhz(),
            ni=structure.instructions_per_pe,
            knl=structure.lanes,
            dv=variant.pipeline_spec.vectorization,
            initiation_interval=1.0,
            word_bytes=word_bytes,
        )
        return params, selection


class FeasibilityStage:
    """Resources + parameters → the Figure-2 validity verdict."""

    def run(
        self,
        estimate: ModuleResourceEstimate,
        params: EKITParameters,
        form: MemoryExecutionForm,
        options: CompilationOptions,
    ) -> FeasibilityCheck:
        usage = estimate.total
        device = options.device
        limiting, util = usage.limiting_resource(device)

        # bandwidth demanded when the pipelines run at full rate
        words_per_second = params.knl * params.dv * params.fd_hz
        full_rate = words_per_second * params.nwpt * params.word_bytes / 1e9
        if form is MemoryExecutionForm.C:
            # data resident in on-chip local memory: both the DRAM and the
            # host link only see the one-off staging transfer, which
            # stretches the fill time (already in the throughput model) but
            # is never a sustained-rate constraint
            required_dram = 0.0
            required_host = 0.0
        elif form is MemoryExecutionForm.B:
            required_dram = full_rate
            required_host = full_rate / params.nki
        else:
            required_dram = full_rate
            required_host = full_rate
        return FeasibilityCheck(
            fits_resources=usage.fits(device),
            limiting_resource=limiting,
            limiting_resource_utilization=util,
            required_dram_gbps=required_dram,
            available_dram_gbps=params.sustained_dram_gbps,
            required_host_gbps=required_host,
            available_host_gbps=params.sustained_host_gbps,
        )


# ----------------------------------------------------------------------
# The pipeline
# ----------------------------------------------------------------------


class EstimationPipeline:
    """Composable, memoizing implementation of the Figure-11 estimation flow.

    One pipeline corresponds to one estimation session (one option set).
    Repeated costings of the same or related variants reuse the cached
    stage products; the per-device calibration artifacts are shared across
    every pipeline in the process (and across processes through the
    persistent warm-start store).
    """

    def __init__(self, options: CompilationOptions | None = None):
        self.options = options or CompilationOptions()
        self.stats = PipelineCacheStats()
        self._calibration = CalibrationStage()
        self._parse = ParseStage()
        self._analysis = AnalysisStage()
        self._resource = ResourceStage()
        self._throughput = ThroughputStage()
        self._feasibility = FeasibilityStage()

    # -- calibration artifacts (one-time per device) -----------------------
    def calibrate(self) -> CalibrationArtifacts:
        return self._calibration.run(self.options, self.stats)

    @property
    def memory_simulator(self) -> MemorySystemSimulator:
        return _shared_memory_simulator(self.options.device)

    @property
    def cost_db(self) -> DeviceCostDB:
        return self.calibrate().cost_db

    @property
    def dram_bandwidth(self) -> SustainedBandwidthModel:
        return self.calibrate().dram_bandwidth

    @property
    def host_bandwidth(self) -> SustainedBandwidthModel:
        return self.calibrate().host_bandwidth

    # -- individual stages -------------------------------------------------
    def parse(self, text: str, name: str = "design") -> Module:
        return self._parse.run(text, name, self.stats)

    def analyze(self, module: Module | LaneFamilyHandle) -> CompiledVariant:
        """Run the structural part of the estimation flow."""
        if isinstance(module, LaneFamilyHandle):
            return self._analysis.run_handle(module, self.options, self.stats)
        return self._analysis.run(module, self.options, self.stats)

    def resources(self, variant: CompiledVariant) -> ModuleResourceEstimate:
        return self._resource.run(variant, self.calibrate(), self.options, self.stats)

    def select_form(self, footprint_bytes: int) -> FormSelection:
        return self._throughput.select_form(footprint_bytes, self.options)

    def extract_parameters(
        self,
        variant: CompiledVariant,
        workload: KernelInstance,
        pattern: AccessPattern | PatternKind = PatternKind.CONTIGUOUS,
    ) -> tuple[EKITParameters, FormSelection]:
        return self._throughput.extract_parameters(
            variant, workload, pattern, self.options, self.calibrate()
        )

    # -- the full flow -----------------------------------------------------
    def cost(
        self,
        module: Module | str | LaneFamilyHandle,
        workload: KernelInstance,
        pattern: AccessPattern | PatternKind = PatternKind.CONTIGUOUS,
    ) -> CostReport:
        """Cost one design variant for one workload (the Figure-2 use-case)."""
        # make sure the one-time inputs are ready so they are not billed to
        # the per-variant estimation time (the paper's 0.3 s figure is per
        # variant, with calibration done once per device)
        calibration = self.calibrate()
        stats = self.stats

        with trace_span("pipeline.cost") as _sp:
            started = time.perf_counter()
            if isinstance(module, str):
                module = self.parse(module)
            variant = self.analyze(module)
            estimate = self._resource.run(variant, calibration, self.options, stats)
            mark = time.perf_counter()
            params, selection = self._throughput.extract_parameters(
                variant, workload, pattern, self.options, calibration
            )
            throughput = estimate_throughput(params, selection.form)
            stats.add_time("throughput", time.perf_counter() - mark)
            mark = time.perf_counter()
            feasibility = self._feasibility.run(estimate, params, selection.form, self.options)
            stats.add_time("feasibility", time.perf_counter() - mark)
            elapsed = time.perf_counter() - started
            if _sp is not None:
                _sp.attrs["design"] = variant.name

        return CostReport(
            design=variant.name,
            device=self.options.device,
            resources=estimate,
            throughput=throughput,
            feasibility=feasibility,
            estimation_seconds=elapsed,
            notes=[f"memory-execution form {selection.form.value}: {selection.reason}"],
        )

    def cost_many(
        self,
        jobs: Iterable[
            tuple[Module | str | LaneFamilyHandle, KernelInstance]
            | tuple[Module | str | LaneFamilyHandle, KernelInstance, AccessPattern | PatternKind]
        ],
    ) -> list[CostReport]:
        """Cost a batch of (module, workload[, pattern]) jobs in order."""
        reports = []
        for job in jobs:
            module, workload = job[0], job[1]
            pattern = job[2] if len(job) > 2 else PatternKind.CONTIGUOUS
            reports.append(self.cost(module, workload, pattern))
        return reports
