"""The staged estimation pipeline with content-keyed memoization.

The paper's value proposition is estimator *speed*: ~0.3 s per variant
against ~70 s for an HLS tool's preliminary estimate, which is what makes
design-space exploration practical at all.  The original driver exposed the
estimation flow of Figure 11 as one monolithic ``cost()`` call that redid
every step for every variant.  This module decomposes the flow into
explicit, individually cacheable stages — the composable-flow architecture
of modern EDA runners:

``ParseStage``
    TyTra-IR text → validated :class:`~repro.ir.functions.Module`
    (memoized on the source text).
``AnalysisStage``
    Module → :class:`CompiledVariant` (structure, configuration tree,
    classification, schedules, pipeline spec), memoized on the module's
    *content hash* so structurally identical variants are analysed once.
``ResourceStage``
    Module → :class:`~repro.cost.resource_model.ModuleResourceEstimate`
    including the scheduler-implied pipeline-balancing registers, memoized
    on the same content hash.
``ThroughputStage``
    Variant + workload → Table-I parameters, memory-execution form and the
    EKIT estimate (cheap, computed per workload).
``FeasibilityStage``
    Resources + parameters → the Figure-2 validity verdict.

The expensive one-time per-device inputs (synthetic-synthesis
characterisation, DRAM/host sustained-bandwidth fits) are shared across
*all* pipelines in the process through a module-level calibration cache, so
an exploration engine costing thousands of design points across several
option sets pays for each device exactly once.
"""

from __future__ import annotations

import hashlib
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Iterable

from repro.compiler.analysis import (
    ConfigurationTree,
    ModuleClassification,
    build_configuration_tree,
    classify_module,
)
from repro.compiler.scheduling import (
    OperatorLatencyModel,
    ScheduledPipeline,
    pipeline_spec_from_schedule,
    schedule_module,
)
from repro.cost.bandwidth import SustainedBandwidthModel
from repro.cost.calibration import DeviceCostDB, calibrate_device
from repro.cost.report import CostReport, FeasibilityCheck
from repro.cost.resource_model import ModuleResourceEstimate, ModuleStructure, ResourceEstimator
from repro.cost.throughput import EKITParameters, estimate_throughput
from repro.ir import parse_module
from repro.ir.functions import Module
from repro.ir.printer import print_module
from repro.ir.validator import validate_module
from repro.models.execution import KernelInstance
from repro.models.memory_execution import (
    FormSelection,
    MemoryExecutionForm,
    select_memory_execution_form,
)
from repro.models.streaming import AccessPattern, PatternKind
from repro.substrate.fpga_device import FPGADevice, MAIA_STRATIX_V_GSD8
from repro.substrate.memory_sim import MemorySystemSimulator
from repro.substrate.pipeline_sim import PipelineSpec
from repro.substrate.synthesis import ResourceUsage, SyntheticSynthesizer

__all__ = [
    "CompilationOptions",
    "CompiledVariant",
    "CalibrationArtifacts",
    "PipelineCacheStats",
    "EstimationPipeline",
    "module_content_key",
    "clear_calibration_cache",
]


@dataclass
class CompilationOptions:
    """Configuration of a TyBEC compilation session.

    All empirically-derived inputs (the cost database and the bandwidth
    models) are built automatically from the substrate the first time they
    are needed and cached — mirroring the one-time per-device calibration
    of Figure 2 — but can be injected explicitly (e.g. the paper's own
    Figure-10 table).  Instances are pickle-safe, so an option set can be
    shipped to :mod:`concurrent.futures` worker processes together with the
    design variants to cost.
    """

    device: FPGADevice = MAIA_STRATIX_V_GSD8
    clock_mhz: float | None = None
    cost_db: DeviceCostDB | None = None
    dram_bandwidth: SustainedBandwidthModel | None = None
    host_bandwidth: SustainedBandwidthModel | None = None
    latency_model: OperatorLatencyModel = field(default_factory=OperatorLatencyModel)
    form: str | MemoryExecutionForm = "auto"
    synthesis_noise: float = 0.025

    def resolved_clock_mhz(self) -> float:
        return self.clock_mhz if self.clock_mhz is not None else self.device.fmax_mhz

    def session_key(self) -> tuple:
        """Hashable identity of the estimation session these options define.

        Two option sets with the same key produce identical cost reports,
        so a pipeline (and its caches) can be shared among them.  Injected
        models are distinguished by object identity — the key is only
        meaningful within one process, and only *before* calibration
        lazily fills the model fields in.
        """
        lat = self.latency_model
        return (
            self.device,
            self.resolved_clock_mhz(),
            str(self.form.value if isinstance(self.form, MemoryExecutionForm) else self.form),
            self.synthesis_noise,
            (lat.div_cycles_per_bit, lat.sqrt_cycles_per_bit, lat.input_stage_cycles),
            id(self.cost_db) if self.cost_db is not None else None,
            id(self.dram_bandwidth) if self.dram_bandwidth is not None else None,
            id(self.host_bandwidth) if self.host_bandwidth is not None else None,
        )


@dataclass
class CompiledVariant:
    """Everything the compiler derives from one design variant's IR."""

    module: Module
    structure: ModuleStructure
    configuration: ConfigurationTree
    classification: ModuleClassification
    schedules: dict[str, ScheduledPipeline]
    pipeline_spec: PipelineSpec
    #: content hash of the module (the memoization key of the variant)
    content_key: str = ""

    @property
    def name(self) -> str:
        return self.module.name

    @property
    def lanes(self) -> int:
        return self.structure.lanes

    @property
    def pipeline_depth(self) -> int:
        return self.pipeline_spec.pipeline_depth

    @property
    def balancing_register_bits(self) -> int:
        return sum(s.balancing_register_bits + s.input_delay_bits for s in self.schedules.values())


def module_content_key(module: Module) -> str:
    """A stable content hash of a module's canonical IR text."""
    return hashlib.sha256(print_module(module).encode()).hexdigest()


class _BoundedCache:
    """A small LRU cache (plain dict + recency eviction, thread-safe)."""

    def __init__(self, maxsize: int = 256):
        self.maxsize = maxsize
        self._data: OrderedDict = OrderedDict()
        self._lock = threading.Lock()

    def get(self, key):
        with self._lock:
            if key not in self._data:
                return None
            self._data.move_to_end(key)
            return self._data[key]

    def put(self, key, value) -> None:
        with self._lock:
            self._data[key] = value
            self._data.move_to_end(key)
            while len(self._data) > self.maxsize:
                self._data.popitem(last=False)

    def __len__(self) -> int:
        return len(self._data)

    def clear(self) -> None:
        with self._lock:
            self._data.clear()


@dataclass
class PipelineCacheStats:
    """Hit/miss counters of the pipeline's memoization layers."""

    parse_hits: int = 0
    parse_misses: int = 0
    variant_hits: int = 0
    variant_misses: int = 0
    resource_hits: int = 0
    resource_misses: int = 0
    calibration_hits: int = 0
    calibration_misses: int = 0

    @property
    def hits(self) -> int:
        return self.parse_hits + self.variant_hits + self.resource_hits + self.calibration_hits

    @property
    def misses(self) -> int:
        return (
            self.parse_misses + self.variant_misses + self.resource_misses
            + self.calibration_misses
        )

    def as_dict(self) -> dict:
        return {
            "parse": [self.parse_hits, self.parse_misses],
            "variant": [self.variant_hits, self.variant_misses],
            "resource": [self.resource_hits, self.resource_misses],
            "calibration": [self.calibration_hits, self.calibration_misses],
        }


# ----------------------------------------------------------------------
# Per-device calibration artifacts (process-wide, built once per device)
# ----------------------------------------------------------------------


@dataclass
class CalibrationArtifacts:
    """The one-time per-device inputs of Figure 2."""

    memory_simulator: MemorySystemSimulator
    cost_db: DeviceCostDB
    dram_bandwidth: SustainedBandwidthModel
    host_bandwidth: SustainedBandwidthModel
    #: True when ``cost_db`` is the process-wide default calibration for
    #: the device (safe to share derived results across pipelines), False
    #: when the caller injected its own database
    shared_cost_db: bool = True


_CALIBRATION_LOCK = threading.Lock()
_MEMSIM_CACHE: dict = {}
_COSTDB_CACHE: dict = {}
_DRAM_CACHE: dict = {}
_HOST_CACHE: dict = {}


def clear_calibration_cache() -> None:
    """Drop every process-wide cache (calibration, structural analysis,
    shared resource estimates) — for tests."""
    with _CALIBRATION_LOCK:
        _MEMSIM_CACHE.clear()
        _COSTDB_CACHE.clear()
        _DRAM_CACHE.clear()
        _HOST_CACHE.clear()
    _STRUCTURAL_CACHE.clear()
    _RESOURCE_CACHE.clear()


def _shared_memory_simulator(device: FPGADevice) -> MemorySystemSimulator:
    with _CALIBRATION_LOCK:
        sim = _MEMSIM_CACHE.get(device)
        if sim is None:
            sim = _MEMSIM_CACHE[device] = MemorySystemSimulator(device)
        return sim


class CalibrationStage:
    """Resolve the per-device calibration artifacts for an option set.

    Injected models (``options.cost_db`` etc.) win; everything else comes
    from the process-wide cache, calibrated on first use.  Resolved models
    are written back into the options — preserving the original driver's
    lazy-fill behaviour, and making a later pickle of the options carry the
    calibration to worker processes for free.
    """

    def run(self, options: CompilationOptions, stats: PipelineCacheStats) -> CalibrationArtifacts:
        device = options.device
        sim = _shared_memory_simulator(device)
        missed = False

        if options.cost_db is None:
            key = (device, options.synthesis_noise)
            with _CALIBRATION_LOCK:
                db = _COSTDB_CACHE.get(key)
            if db is None:
                missed = True
                synthesizer = SyntheticSynthesizer(device, options.synthesis_noise)
                db = calibrate_device(
                    synthesizer.characterize(), dsp_input_width=device.dsp_input_width
                )
                with _CALIBRATION_LOCK:
                    _COSTDB_CACHE[key] = db
            options.cost_db = db

        if options.dram_bandwidth is None:
            with _CALIBRATION_LOCK:
                dram = _DRAM_CACHE.get(device)
            if dram is None:
                missed = True
                dram = SustainedBandwidthModel.from_simulator(sim, name=f"{device.name}-dram")
                with _CALIBRATION_LOCK:
                    _DRAM_CACHE[device] = dram
            options.dram_bandwidth = dram

        if options.host_bandwidth is None:
            with _CALIBRATION_LOCK:
                host = _HOST_CACHE.get(device)
            if host is None:
                missed = True
                host = SustainedBandwidthModel.host_from_simulator(
                    sim, name=f"{device.name}-host"
                )
                with _CALIBRATION_LOCK:
                    _HOST_CACHE[device] = host
            options.host_bandwidth = host

        if missed:
            stats.calibration_misses += 1
        else:
            stats.calibration_hits += 1
        with _CALIBRATION_LOCK:
            shared = options.cost_db is _COSTDB_CACHE.get((device, options.synthesis_noise))
        return CalibrationArtifacts(
            memory_simulator=sim,
            cost_db=options.cost_db,
            dram_bandwidth=options.dram_bandwidth,
            host_bandwidth=options.host_bandwidth,
            shared_cost_db=shared,
        )


# ----------------------------------------------------------------------
# The structural stages
# ----------------------------------------------------------------------


class ParseStage:
    """TyTra-IR text → validated module (memoized on the source text)."""

    def __init__(self, maxsize: int = 128):
        self._cache = _BoundedCache(maxsize)

    def run(self, text: str, name: str, stats: PipelineCacheStats) -> Module:
        key = (hashlib.sha256(text.encode()).hexdigest(), name)
        module = self._cache.get(key)
        if module is not None:
            stats.parse_hits += 1
            return module
        stats.parse_misses += 1
        module = parse_module(text, name=name)
        validate_module(module)
        self._cache.put(key, module)
        return module


def _latency_key(options: CompilationOptions) -> tuple:
    lat = options.latency_model
    return (lat.div_cycles_per_bit, lat.sqrt_cycles_per_bit, lat.input_stage_cycles)


#: process-wide cache of the clock-independent structural analysis
#: (structure, configuration tree, classification, schedules), keyed on
#: (content hash, latency model) — shared by every pipeline so a clock
#: axis in a sweep does not re-analyse identical modules per clock value
_STRUCTURAL_CACHE = _BoundedCache(512)


class AnalysisStage:
    """Module → :class:`CompiledVariant`, memoized on content hash.

    Only the pipeline spec depends on the clock; the structural bundle is
    memoized process-wide on (content, latency model) and reused across
    pipelines — e.g. across the clock axis of a multi-axis sweep.
    """

    def __init__(self, maxsize: int = 256):
        self._cache = _BoundedCache(maxsize)

    def run(
        self, module: Module, options: CompilationOptions, stats: PipelineCacheStats
    ) -> CompiledVariant:
        content = module_content_key(module)
        lat_key = _latency_key(options)
        key = (content, options.resolved_clock_mhz(), lat_key)
        variant = self._cache.get(key)
        if variant is not None:
            stats.variant_hits += 1
            return variant
        stats.variant_misses += 1

        bundle = _STRUCTURAL_CACHE.get((content, lat_key))
        if bundle is None:
            validate_module(module)
            structure = ModuleStructure.from_module(module)
            tree = build_configuration_tree(module)
            classification = classify_module(module)
            schedules = schedule_module(module, options.latency_model)
            bundle = (structure, tree, classification, schedules)
            _STRUCTURAL_CACHE.put((content, lat_key), bundle)
        structure, tree, classification, schedules = bundle
        spec = pipeline_spec_from_schedule(
            module, structure, schedules, clock_mhz=options.resolved_clock_mhz()
        )
        variant = CompiledVariant(
            module=module,
            structure=structure,
            configuration=tree,
            classification=classification,
            schedules=schedules,
            pipeline_spec=spec,
            content_key=content,
        )
        self._cache.put(key, variant)
        return variant


#: process-wide resource-estimate cache for default-calibrated devices,
#: keyed on (content, latency model, device, noise) — the estimate does
#: not depend on the clock, so the clock axis of a sweep shares it
_RESOURCE_CACHE = _BoundedCache(512)


class ResourceStage:
    """Variant → resource estimate (balancing registers included).

    The estimate depends on the module content, the latency model (via
    the scheduler's balancing registers) and the cost database — not the
    clock — and is memoized accordingly: per-pipeline always, and
    process-wide when the cost database is the shared default calibration
    for the device.  Every call returns a fresh shell around the cached
    breakdown (own ``total``, own ``functions`` list), so a caller
    adjusting a report's resources — as the pre-pipeline driver itself
    did with balancing registers — cannot corrupt other reports or future
    cache hits.
    """

    def __init__(self, maxsize: int = 256):
        self._cache = _BoundedCache(maxsize)

    @staticmethod
    def _fresh_view(estimate: ModuleResourceEstimate) -> ModuleResourceEstimate:
        return ModuleResourceEstimate(
            design=estimate.design,
            total=ResourceUsage(**estimate.total.as_dict()),
            functions=list(estimate.functions),
            offset_buffers=estimate.offset_buffers,
            stream_control=estimate.stream_control,
            structure=estimate.structure,
        )

    def run(
        self,
        variant: CompiledVariant,
        calibration: CalibrationArtifacts,
        options: CompilationOptions,
        stats: PipelineCacheStats,
    ) -> ModuleResourceEstimate:
        content = variant.content_key or module_content_key(variant.module)
        key = (content, _latency_key(options))
        estimate = self._cache.get(key)
        if estimate is not None:
            stats.resource_hits += 1
            return self._fresh_view(estimate)

        shared_key = None
        if calibration.shared_cost_db:
            shared_key = key + (options.device, options.synthesis_noise)
            estimate = _RESOURCE_CACHE.get(shared_key)
            if estimate is not None:
                stats.resource_hits += 1
                self._cache.put(key, estimate)
                return self._fresh_view(estimate)

        stats.resource_misses += 1
        estimator = ResourceEstimator(calibration.cost_db)
        estimate = estimator.estimate_module(variant.module)
        # the estimation flow of Figure 11 also accounts for the data/control
        # delay lines the scheduler implies (pipeline balancing registers),
        # replicated once per lane
        estimate.total += ResourceUsage(
            reg=variant.balancing_register_bits * variant.structure.lanes
        )
        self._cache.put(key, estimate)
        if shared_key is not None:
            _RESOURCE_CACHE.put(shared_key, estimate)
        return self._fresh_view(estimate)


class ThroughputStage:
    """Variant + workload → Table-I parameters, form and EKIT estimate."""

    def select_form(self, footprint_bytes: int, options: CompilationOptions) -> FormSelection:
        if options.form != "auto":
            form = MemoryExecutionForm(options.form)
            return FormSelection(form, footprint_bytes, "forced by compilation options")
        return select_memory_execution_form(footprint_bytes, options.device.memory_hierarchy())

    def extract_parameters(
        self,
        variant: CompiledVariant,
        workload: KernelInstance,
        pattern: AccessPattern | PatternKind,
        options: CompilationOptions,
        calibration: CalibrationArtifacts,
    ) -> tuple[EKITParameters, FormSelection]:
        """Derive the Table-I parameters for a variant and a workload."""
        structure = variant.structure
        word_bytes = max(1, (structure.element_width + 7) // 8)
        nwpt = structure.words_per_item
        footprint = workload.global_size * nwpt * word_bytes
        selection = self.select_form(footprint, options)

        dram = calibration.dram_bandwidth
        host = calibration.host_bandwidth
        params = EKITParameters.for_pipelined_design(
            hpb_gbps=host.peak_gbps,
            rho_h=host.rho(footprint),
            gpb_gbps=dram.peak_gbps,
            rho_g=dram.rho(footprint, pattern),
            ngs=workload.global_size,
            nwpt=nwpt,
            nki=workload.repetitions,
            noff=structure.max_offset_span_words,
            kpd=variant.pipeline_spec.pipeline_depth,
            fd_mhz=options.resolved_clock_mhz(),
            ni=structure.instructions_per_pe,
            knl=structure.lanes,
            dv=variant.pipeline_spec.vectorization,
            initiation_interval=1.0,
            word_bytes=word_bytes,
        )
        return params, selection


class FeasibilityStage:
    """Resources + parameters → the Figure-2 validity verdict."""

    def run(
        self,
        estimate: ModuleResourceEstimate,
        params: EKITParameters,
        form: MemoryExecutionForm,
        options: CompilationOptions,
    ) -> FeasibilityCheck:
        usage = estimate.total
        device = options.device
        limiting, util = usage.limiting_resource(device)

        # bandwidth demanded when the pipelines run at full rate
        words_per_second = params.knl * params.dv * params.fd_hz
        full_rate = words_per_second * params.nwpt * params.word_bytes / 1e9
        if form is MemoryExecutionForm.C:
            # data resident in on-chip local memory: both the DRAM and the
            # host link only see the one-off staging transfer, which
            # stretches the fill time (already in the throughput model) but
            # is never a sustained-rate constraint
            required_dram = 0.0
            required_host = 0.0
        elif form is MemoryExecutionForm.B:
            required_dram = full_rate
            required_host = full_rate / params.nki
        else:
            required_dram = full_rate
            required_host = full_rate
        return FeasibilityCheck(
            fits_resources=usage.fits(device),
            limiting_resource=limiting,
            limiting_resource_utilization=util,
            required_dram_gbps=required_dram,
            available_dram_gbps=params.sustained_dram_gbps,
            required_host_gbps=required_host,
            available_host_gbps=params.sustained_host_gbps,
        )


# ----------------------------------------------------------------------
# The pipeline
# ----------------------------------------------------------------------


class EstimationPipeline:
    """Composable, memoizing implementation of the Figure-11 estimation flow.

    One pipeline corresponds to one estimation session (one option set).
    Repeated costings of the same or related variants reuse the cached
    stage products; the per-device calibration artifacts are shared across
    every pipeline in the process.
    """

    def __init__(self, options: CompilationOptions | None = None):
        self.options = options or CompilationOptions()
        self.stats = PipelineCacheStats()
        self._calibration = CalibrationStage()
        self._parse = ParseStage()
        self._analysis = AnalysisStage()
        self._resource = ResourceStage()
        self._throughput = ThroughputStage()
        self._feasibility = FeasibilityStage()

    # -- calibration artifacts (one-time per device) -----------------------
    def calibrate(self) -> CalibrationArtifacts:
        return self._calibration.run(self.options, self.stats)

    @property
    def memory_simulator(self) -> MemorySystemSimulator:
        return _shared_memory_simulator(self.options.device)

    @property
    def cost_db(self) -> DeviceCostDB:
        return self.calibrate().cost_db

    @property
    def dram_bandwidth(self) -> SustainedBandwidthModel:
        return self.calibrate().dram_bandwidth

    @property
    def host_bandwidth(self) -> SustainedBandwidthModel:
        return self.calibrate().host_bandwidth

    # -- individual stages -------------------------------------------------
    def parse(self, text: str, name: str = "design") -> Module:
        return self._parse.run(text, name, self.stats)

    def analyze(self, module: Module) -> CompiledVariant:
        """Run the structural part of the estimation flow."""
        return self._analysis.run(module, self.options, self.stats)

    def resources(self, variant: CompiledVariant) -> ModuleResourceEstimate:
        return self._resource.run(variant, self.calibrate(), self.options, self.stats)

    def select_form(self, footprint_bytes: int) -> FormSelection:
        return self._throughput.select_form(footprint_bytes, self.options)

    def extract_parameters(
        self,
        variant: CompiledVariant,
        workload: KernelInstance,
        pattern: AccessPattern | PatternKind = PatternKind.CONTIGUOUS,
    ) -> tuple[EKITParameters, FormSelection]:
        return self._throughput.extract_parameters(
            variant, workload, pattern, self.options, self.calibrate()
        )

    # -- the full flow -----------------------------------------------------
    def cost(
        self,
        module: Module | str,
        workload: KernelInstance,
        pattern: AccessPattern | PatternKind = PatternKind.CONTIGUOUS,
    ) -> CostReport:
        """Cost one design variant for one workload (the Figure-2 use-case)."""
        # make sure the one-time inputs are ready so they are not billed to
        # the per-variant estimation time (the paper's 0.3 s figure is per
        # variant, with calibration done once per device)
        calibration = self.calibrate()

        started = time.perf_counter()
        if isinstance(module, str):
            module = self.parse(module)
        variant = self.analyze(module)
        estimate = self._resource.run(variant, calibration, self.options, self.stats)
        params, selection = self._throughput.extract_parameters(
            variant, workload, pattern, self.options, calibration
        )
        throughput = estimate_throughput(params, selection.form)
        feasibility = self._feasibility.run(estimate, params, selection.form, self.options)
        elapsed = time.perf_counter() - started

        return CostReport(
            design=module.name,
            device=self.options.device,
            resources=estimate,
            throughput=throughput,
            feasibility=feasibility,
            estimation_seconds=elapsed,
            notes=[f"memory-execution form {selection.form.value}: {selection.reason}"],
        )

    def cost_many(
        self,
        jobs: Iterable[
            tuple[Module | str, KernelInstance]
            | tuple[Module | str, KernelInstance, AccessPattern | PatternKind]
        ],
    ) -> list[CostReport]:
        """Cost a batch of (module, workload[, pattern]) jobs in order."""
        reports = []
        for job in jobs:
            module, workload = job[0], job[1]
            pattern = job[2] if len(job) > 2 else PatternKind.CONTIGUOUS
            reports.append(self.cost(module, workload, pattern))
        return reports
