"""Dataflow-graph construction and pipeline scheduling.

The code-generation flow of Figure 11 schedules the SSA instructions of a
``pipe`` function, creates data and control delay lines, and connects the
functional units into a pipeline.  The estimation flow needs two outputs
of the same analysis:

* the **kernel pipeline depth** ``KPD`` — the critical-path latency of the
  scheduled datapath (plus the stream-control input stage), and
* the **pipeline balancing registers** — the delay lines that equalise
  path lengths (Figure 13 shows them as the pass-through buffers), which
  contribute to the register utilisation of the design.

Scheduling is plain ASAP (as-soon-as-possible): every operand edge imposes
``start[consumer] >= start[producer] + latency[producer]``, streams and
constants are available at cycle 0, and the initiation interval of a
``pipe`` function is 1 (one work-item accepted per cycle), which is what a
spatial datapath with per-instruction functional units achieves.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ir.functions import FunctionKind, IRFunction, Module
from repro.ir.instructions import Instruction, OffsetInstruction, OPCODES
from repro.substrate.pipeline_sim import PipelineSpec

__all__ = [
    "OperatorLatencyModel",
    "DataflowGraph",
    "ScheduledPipeline",
    "schedule_function",
    "schedule_module",
]


@dataclass
class OperatorLatencyModel:
    """Pipeline latency of each operator in cycles.

    Base latencies come from the opcode registry; width-dependent operators
    (dividers, integer square roots) scale with operand width, which is the
    dominant effect on real fabric.
    """

    #: latency per additional bit for iterative operators
    div_cycles_per_bit: float = 1.0
    sqrt_cycles_per_bit: float = 0.5
    #: extra input registering stage applied to every leaf pipeline
    input_stage_cycles: int = 1

    def latency(self, opcode: str, width: int) -> int:
        info = OPCODES[opcode]
        if info.category == "div" and not info.float_only:
            return max(info.latency, int(round(width * self.div_cycles_per_bit)))
        if opcode == "sqrt":
            return max(info.latency, int(round(width * self.sqrt_cycles_per_bit)))
        return info.latency


@dataclass
class DataflowGraph:
    """Def-use graph of a function's datapath."""

    function: str
    #: producer result name -> consumer result names
    edges: dict[str, list[str]] = field(default_factory=dict)
    #: instruction result name -> instruction
    nodes: dict[str, Instruction] = field(default_factory=dict)
    #: names available at cycle 0 (arguments, offset streams, globals)
    sources: set[str] = field(default_factory=set)

    @classmethod
    def from_function(cls, func: IRFunction) -> "DataflowGraph":
        graph = cls(function=func.name)
        graph.sources.update(func.arg_names)
        for off in func.offsets():
            graph.sources.add(off.result)
        for instr in func.instructions():
            graph.nodes[instr.result] = instr
        for instr in func.instructions():
            # only SSA operands create dataflow edges; a global accumulator
            # read (e.g. the reduction's own accumulator) is a register that
            # is always available, not a pipeline dependency
            for op in instr.operands:
                if op.is_ssa and op.name in graph.nodes and op.name != instr.result:
                    graph.edges.setdefault(op.name, []).append(instr.result)
        return graph

    def consumers(self, name: str) -> list[str]:
        return self.edges.get(name, [])

    def producers(self, instr: Instruction) -> list[str]:
        return [
            op.name
            for op in instr.operands
            if op.is_ssa and op.name in self.nodes and op.name != instr.result
        ]

    def roots(self) -> list[Instruction]:
        """Instructions that depend only on sources/constants."""
        return [i for i in self.nodes.values() if not self.producers(i)]

    def critical_path_length(self, latency_model: OperatorLatencyModel) -> int:
        schedule = _asap(self, latency_model)
        if not schedule:
            return 0
        return max(
            start + latency_model.latency(self.nodes[name].opcode, self.nodes[name].result_type.width)
            for name, start in schedule.items()
        )


def _asap(graph: DataflowGraph, latency_model: OperatorLatencyModel) -> dict[str, int]:
    """ASAP start cycles for every instruction in the graph."""
    schedule: dict[str, int] = {}

    def start_of(name: str) -> int:
        if name in schedule:
            return schedule[name]
        instr = graph.nodes[name]
        ready = 0
        for producer in graph.producers(instr):
            p_instr = graph.nodes[producer]
            p_latency = latency_model.latency(p_instr.opcode, p_instr.result_type.width)
            ready = max(ready, start_of(producer) + p_latency)
        schedule[name] = ready
        return ready

    for name in graph.nodes:
        start_of(name)
    return schedule


@dataclass
class ScheduledPipeline:
    """The scheduled datapath of one ``pipe`` (or ``comb``) function."""

    function: str
    start_cycles: dict[str, int]
    latencies: dict[str, int]
    pipeline_depth: int
    initiation_interval: int
    balancing_register_bits: int
    input_delay_bits: int

    @property
    def stages(self) -> int:
        return self.pipeline_depth

    def stage_of(self, result_name: str) -> int:
        return self.start_cycles[result_name]

    def as_dict(self) -> dict:
        return {
            "function": self.function,
            "pipeline_depth": self.pipeline_depth,
            "initiation_interval": self.initiation_interval,
            "balancing_register_bits": self.balancing_register_bits,
            "input_delay_bits": self.input_delay_bits,
            "start_cycles": dict(self.start_cycles),
        }


def schedule_function(
    func: IRFunction,
    latency_model: OperatorLatencyModel | None = None,
) -> ScheduledPipeline:
    """ASAP-schedule a leaf datapath function."""
    latency_model = latency_model or OperatorLatencyModel()
    if func.kind is FunctionKind.COMB:
        # single-cycle custom combinatorial block
        starts = {i.result: 0 for i in func.instructions()}
        return ScheduledPipeline(
            function=func.name,
            start_cycles=starts,
            latencies={name: 1 for name in starts},
            pipeline_depth=1,
            initiation_interval=1,
            balancing_register_bits=0,
            input_delay_bits=0,
        )

    graph = DataflowGraph.from_function(func)
    starts = _asap(graph, latency_model)
    latencies = {
        name: latency_model.latency(instr.opcode, instr.result_type.width)
        for name, instr in graph.nodes.items()
    }
    depth = latency_model.input_stage_cycles
    if starts:
        depth += max(starts[name] + latencies[name] for name in starts)

    # balancing registers: every def-use edge whose consumer starts later
    # than the producer finishes needs a delay line of the slack length
    balancing_bits = 0
    for producer, consumers in graph.edges.items():
        p_end = starts[producer] + latencies[producer]
        width = graph.nodes[producer].result_type.width
        for consumer in consumers:
            slack = starts[consumer] - p_end
            if slack > 0:
                balancing_bits += slack * width

    # input delay lines: arguments and offset streams consumed at a later
    # stage must be carried forward from cycle 0
    input_delay_bits = 0
    source_widths = dict(func.arg_types)
    for off in func.offsets():
        source_widths[off.result] = off.result_type
    for instr in func.instructions():
        for name in instr.input_names:
            if name in source_widths and name not in graph.nodes:
                slack = starts.get(instr.result, 0)
                if slack > 0:
                    input_delay_bits += slack * source_widths[name].width

    return ScheduledPipeline(
        function=func.name,
        start_cycles=starts,
        latencies=latencies,
        pipeline_depth=depth,
        initiation_interval=1,
        balancing_register_bits=balancing_bits,
        input_delay_bits=input_delay_bits,
    )


def schedule_module(
    module: Module,
    latency_model: OperatorLatencyModel | None = None,
) -> dict[str, ScheduledPipeline]:
    """Schedule every leaf datapath function of a module."""
    latency_model = latency_model or OperatorLatencyModel()
    schedules: dict[str, ScheduledPipeline] = {}
    for func in module.functions.values():
        if func.name == module.main or not func.is_leaf:
            continue
        if func.kind in (FunctionKind.PIPE, FunctionKind.COMB, FunctionKind.SEQ):
            schedules[func.name] = schedule_function(func, latency_model)
    return schedules


def pipeline_spec_from_schedule(
    module: Module | None,
    structure,
    schedules: dict[str, ScheduledPipeline],
    clock_mhz: float,
    element_bytes: int | None = None,
    name: str | None = None,
) -> PipelineSpec:
    """Assemble the simulator's :class:`PipelineSpec` for a compiled design.

    The kernel pipeline depth of a coarse-grained pipeline is the sum of
    the depths of the chained stages; lanes replicate the whole chain.
    Only scheduled functions contribute depth, and only leaf datapaths are
    ever scheduled, so the instantiated functions with a schedule *are*
    the leaf pipelines — which lets a structure derived by the
    lane-scaling law (whose module was never lowered: ``module is None``)
    assemble the identical spec.
    """
    per_lane_depth = 0
    for fname, count in structure.instance_counts.items():
        if fname not in schedules:
            continue
        per_lane_count = max(1, round(count / max(structure.lanes, 1)))
        per_lane_depth += schedules[fname].pipeline_depth * per_lane_count
    element_bytes = element_bytes or max(1, (structure.element_width + 7) // 8)
    in_per_lane = max(1, structure.input_streams // max(structure.lanes, 1))
    out_per_lane = max(1, structure.output_streams // max(structure.lanes, 1))
    if name is None:
        name = module.name
    return PipelineSpec(
        name=name,
        lanes=structure.lanes,
        vectorization=1,
        pipeline_depth=max(1, per_lane_depth),
        instructions=structure.instructions_per_pe,
        cycles_per_instruction=1,
        offset_fill_words=structure.max_offset_span_words,
        input_words_per_item=in_per_lane,
        output_words_per_item=out_per_lane,
        element_bytes=element_bytes,
        clock_mhz=clock_mhz,
    )
