"""HLS-framework integration glue (paper §VII, Figure 16).

The TyTra flow inserts the generated HDL kernel into a commercial HLS
framework — Maxeler in the paper's case study — which provides the base
platform (memory controllers, PCIe, drivers) and the host API.  Integrating
custom HDL with Maxeler requires a wrapper kernel written in its MaxJ
language; the paper writes these by hand and notes that generating them is
a trivial engineering task, which is what this module does.

Two artefacts are produced as text:

* a MaxJ-style wrapper kernel declaring the streams and instantiating the
  custom HDL block;
* a host-side C stub using a Maxeler-like API (load, queue streams, run).
"""

from __future__ import annotations

from repro.cost.resource_model import ModuleStructure
from repro.ir.functions import Module, StreamDirection

__all__ = ["generate_maxj_wrapper", "generate_host_stub"]


def _camel(name: str) -> str:
    return "".join(part.capitalize() for part in name.replace("-", "_").split("_"))


def generate_maxj_wrapper(module: Module, structure: ModuleStructure | None = None) -> str:
    """Generate the MaxJ wrapper kernel for the design's HDL block."""
    structure = structure or ModuleStructure.from_module(module)
    kernel = structure.kernel_function
    func = module.get_function(kernel)
    class_name = f"{_camel(module.name)}Kernel"

    in_ports = [p for p in module.port_declarations
                if p.function == kernel and p.direction is StreamDirection.INPUT]
    out_ports = [p for p in module.port_declarations
                 if p.function == kernel and p.direction is StreamDirection.OUTPUT]
    if not in_ports:
        in_ports_names = [name for _, name in func.args]
    else:
        in_ports_names = [p.port for p in in_ports]
    out_port_names = [p.port for p in out_ports] or ["result"]
    width = structure.element_width

    lines = [
        "// Auto-generated MaxJ wrapper for the TyTra HDL kernel.",
        "// The custom HDL block is attached through Maxeler's custom-HDL node;",
        "// this wrapper only declares the streams and wires them through.",
        "package tytra.generated;",
        "",
        "import com.maxeler.maxcompiler.v2.kernelcompiler.Kernel;",
        "import com.maxeler.maxcompiler.v2.kernelcompiler.KernelParameters;",
        "import com.maxeler.maxcompiler.v2.kernelcompiler.types.base.DFEType;",
        "import com.maxeler.maxcompiler.v2.kernelcompiler.types.base.DFEVar;",
        "",
        f"public class {class_name} extends Kernel {{",
        "",
        f"    private static final DFEType elementType = dfeUInt({width});",
        "",
        f"    public {class_name}(KernelParameters parameters) {{",
        "        super(parameters);",
        "",
    ]
    for name in in_ports_names:
        lines.append(f'        DFEVar {name} = io.input("{name}", elementType);')
    lines.append("")
    lines.append(f"        // custom HDL block: {structure.lanes} lane(s) of @{kernel}")
    lines.append(
        f'        CustomHDLBlock tytra = new CustomHDLBlock(this, "{module.name}_cu");'
    )
    for name in in_ports_names:
        lines.append(f'        tytra.connectInput("s_{name}", {name});')
    for name in out_port_names:
        lines.append(
            f'        DFEVar {name} = tytra.getOutput("s_{name}", elementType);'
        )
        lines.append(f'        io.output("{name}", {name}, elementType);')
    lines.append("    }")
    lines.append("}")
    return "\n".join(lines) + "\n"


def generate_host_stub(module: Module, structure: ModuleStructure | None = None) -> str:
    """Generate the host-side C stub that drives the accelerated kernel."""
    structure = structure or ModuleStructure.from_module(module)
    kernel = structure.kernel_function
    func = module.get_function(kernel)
    in_names = [name for _, name in func.args]
    lines = [
        "/* Auto-generated host stub for the TyTra-generated accelerator. */",
        "#include <stdint.h>",
        "#include <stdlib.h>",
        '#include "MaxSLiCInterface.h"',
        "",
        f"/* design: {module.name}; kernel: @{kernel}; lanes: {structure.lanes} */",
        f"void run_{kernel}(",
        "    size_t n_items,",
    ]
    lines.extend(f"    const uint32_t *{name}," for name in in_names)
    lines.append("    uint32_t *result)")
    lines.append("{")
    lines.append(f"    max_file_t *maxfile = {module.name.replace('-', '_')}_init();")
    lines.append("    max_engine_t *engine = max_load(maxfile, \"*\");")
    lines.append("    max_actions_t *actions = max_actions_init(maxfile, NULL);")
    lines.append("")
    lines.append('    max_set_ticks(actions, "TytraKernel", n_items);')
    for name in in_names:
        lines.append(
            f'    max_queue_input(actions, "{name}", {name}, '
            "n_items * sizeof(uint32_t));"
        )
    lines.append(
        '    max_queue_output(actions, "result", result, n_items * sizeof(uint32_t));'
    )
    lines.append("")
    lines.append("    max_run(engine, actions);")
    lines.append("    max_actions_free(actions);")
    lines.append("    max_unload(engine);")
    lines.append("}")
    return "\n".join(lines) + "\n"
