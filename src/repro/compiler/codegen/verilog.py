"""Verilog code generation for scheduled TyTra pipelines.

The generator follows the structure of Figure 11's code-generation flow
and Figure 13's datapath illustration:

* one Verilog module per leaf ``pipe``/``comb`` function: a streaming
  datapath with one pipeline register stage per schedule cycle, valid
  hand-shaking, offset buffers realised as shift registers, and a
  reduction register for global accumulators;
* a *compute unit* module instantiating ``KNL`` lanes of the kernel
  pipeline plus the stream-control address generators;
* a configuration include file recording the design parameters.

The output is text; it is not synthesised in this reproduction (the
synthetic synthesiser provides resource ground truth instead), but it is
structurally complete — every SSA value becomes a wire/register, every
operator an expression or functional-unit instantiation, every offset a
delay line of the resolved span.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.compiler.scheduling import (
    OperatorLatencyModel,
    ScheduledPipeline,
    schedule_module,
)
from repro.cost.resource_model import ModuleStructure
from repro.ir.functions import FunctionKind, IRFunction, Module
from repro.ir.instructions import Instruction, OperandKind

__all__ = ["VerilogGenerator"]


_BINARY_OPERATORS = {
    "add": "+", "sub": "-", "mul": "*", "div": "/", "udiv": "/", "sdiv": "/",
    "rem": "%", "urem": "%", "and": "&", "or": "|", "xor": "^",
    "shl": "<<", "lshr": ">>", "ashr": ">>>",
    "fadd": "+", "fsub": "-", "fmul": "*", "fdiv": "/",
}

_COMPARE_OPERATORS = {"icmp": "<", "fcmp": "<"}


def _sanitize(name: str) -> str:
    """Make an SSA name a legal Verilog identifier."""
    out = name.replace(".", "_")
    if out and out[0].isdigit():
        out = "v" + out
    return out


@dataclass
class VerilogGenerator:
    """Generate Verilog for a TyTra-IR module."""

    module: Module
    latency_model: OperatorLatencyModel = field(default_factory=OperatorLatencyModel)
    schedules: dict[str, ScheduledPipeline] = field(default_factory=dict)
    structure: ModuleStructure | None = None

    def __post_init__(self) -> None:
        if not self.schedules:
            self.schedules = schedule_module(self.module, self.latency_model)
        if self.structure is None:
            self.structure = ModuleStructure.from_module(self.module)

    # ------------------------------------------------------------------
    # Expression rendering
    # ------------------------------------------------------------------
    def _operand_text(self, instr: Instruction, index: int) -> str:
        op = instr.operands[index]
        width = instr.result_type.width
        if op.kind is OperandKind.CONST:
            value = op.value
            if isinstance(value, float) and not value.is_integer():
                return f"{width}'d{int(round(value))} /* {value} */"
            return f"{width}'d{int(value)}"
        if op.kind is OperandKind.GLOBAL:
            return f"r_{_sanitize(op.name)}"
        return f"w_{_sanitize(op.name)}"

    def _instruction_expression(self, instr: Instruction) -> str:
        opcode = instr.opcode
        ops = [self._operand_text(instr, i) for i in range(len(instr.operands))]
        if opcode in _BINARY_OPERATORS:
            return f"{ops[0]} {_BINARY_OPERATORS[opcode]} {ops[1]}"
        if opcode in _COMPARE_OPERATORS:
            return f"({ops[0]} {_COMPARE_OPERATORS[opcode]} {ops[1]}) ? 1'b1 : 1'b0"
        if opcode == "select":
            return f"{ops[0]} ? {ops[1]} : {ops[2]}"
        if opcode == "min":
            return f"({ops[0]} < {ops[1]}) ? {ops[0]} : {ops[1]}"
        if opcode == "max":
            return f"({ops[0]} > {ops[1]}) ? {ops[0]} : {ops[1]}"
        if opcode == "abs":
            return f"({ops[0]} < 0) ? -{ops[0]} : {ops[0]}"
        if opcode == "not":
            return f"~{ops[0]}"
        if opcode in ("mov", "trunc", "zext", "sext"):
            return ops[0]
        if opcode in ("sqrt", "fsqrt", "fexp", "flog"):
            return f"fu_{opcode}({ops[0]})  /* functional-unit core */"
        if opcode == "mac":
            return f"{ops[0]} * {ops[1]} + {ops[2]}"
        return " /* unsupported */ " + " , ".join(ops)  # pragma: no cover - defensive

    # ------------------------------------------------------------------
    # Kernel pipeline module
    # ------------------------------------------------------------------
    def generate_kernel(self, func: IRFunction) -> str:
        """Emit the Verilog module for one leaf datapath function."""
        schedule = self.schedules.get(func.name)
        if schedule is None:
            raise ValueError(f"function @{func.name} has no schedule (is it a leaf datapath?)")

        lines: list[str] = []
        ports = ["input  wire clk", "input  wire rst", "input  wire in_valid",
                 "output wire out_valid"]
        for ty, name in func.args:
            ports.append(f"input  wire [{ty.width - 1}:0] s_{_sanitize(name)}")
        out_ports: list[str] = []
        for port in self.module.port_declarations:
            if port.function == func.name and port.direction.value == "ostream":
                out_ports.append(port.port)
                ports.append(f"output wire [{port.element_type.width - 1}:0] s_{_sanitize(port.port)}")
        for red in func.reductions():
            ports.append(f"output reg  [{red.result_type.width - 1}:0] g_{_sanitize(red.result)}")

        lines.append(f"// kernel pipeline for @{func.name} "
                     f"(depth {schedule.pipeline_depth}, II {schedule.initiation_interval})")
        lines.append(f"module {_sanitize(func.name)}_kernel (")
        lines.append("  " + ",\n  ".join(ports))
        lines.append(");")
        lines.append("")

        # valid pipeline
        lines.append(f"  reg [{schedule.pipeline_depth}:0] valid_sr;")
        lines.append("  always @(posedge clk) begin")
        lines.append("    if (rst) valid_sr <= 0;")
        lines.append("    else     valid_sr <= {valid_sr, in_valid};")
        lines.append("  end")
        lines.append(f"  assign out_valid = valid_sr[{schedule.pipeline_depth}];")
        lines.append("")

        # offset buffers (delay lines on the input streams)
        for off in func.offsets():
            span = abs(self.module.resolve_offset(off.offset))
            width = off.result_type.width
            src = _sanitize(off.source)
            dst = _sanitize(off.result)
            lines.append(f"  // offset stream %{off.result} = %{off.source} offset {off.offset}")
            if span == 0:
                lines.append(f"  wire [{width - 1}:0] w_{dst} = s_{src};")
            else:
                lines.append(f"  reg [{width - 1}:0] offbuf_{dst} [0:{span - 1}];")
                lines.append("  integer i_" + dst + ";")
                lines.append("  always @(posedge clk) begin")
                lines.append(f"    offbuf_{dst}[0] <= s_{src};")
                lines.append(f"    for (i_{dst} = 1; i_{dst} < {span}; i_{dst} = i_{dst} + 1)")
                lines.append(f"      offbuf_{dst}[i_{dst}] <= offbuf_{dst}[i_{dst} - 1];")
                lines.append("  end")
                lines.append(f"  wire [{width - 1}:0] w_{dst} = offbuf_{dst}[{span - 1}];")
            lines.append("")

        # argument streams available as wires
        for ty, name in func.args:
            lines.append(f"  wire [{ty.width - 1}:0] w_{_sanitize(name)} = s_{_sanitize(name)};")
        lines.append("")

        # datapath, one register per instruction result
        for instr in func.instructions():
            width = instr.result_type.width
            name = _sanitize(instr.result)
            expr = self._instruction_expression(instr)
            stage = schedule.start_cycles.get(instr.result, 0)
            if instr.is_reduction:
                lines.append(f"  // reduction @{instr.result} (stage {stage})")
                lines.append("  always @(posedge clk) begin")
                lines.append(f"    if (rst) g_{name} <= 0;")
                lines.append(f"    else if (valid_sr[{min(stage, schedule.pipeline_depth)}]) "
                             f"g_{name} <= {expr.replace(f'r_{name}', f'g_{name}')};")
                lines.append("  end")
            else:
                lines.append(f"  // %{instr.result} = {instr.opcode} (stage {stage})")
                lines.append(f"  reg [{width - 1}:0] r_{name};")
                lines.append(f"  always @(posedge clk) r_{name} <= {expr};")
                lines.append(f"  wire [{width - 1}:0] w_{name} = r_{name};")
            lines.append("")

        # output streams
        for port_name in out_ports:
            lines.append(f"  assign s_{_sanitize(port_name)} = w_{_sanitize(port_name)};")
        lines.append("endmodule")
        return "\n".join(lines) + "\n"

    # ------------------------------------------------------------------
    # Compute unit and configuration include
    # ------------------------------------------------------------------
    def generate_compute_unit(self) -> str:
        """Emit the lane-replicated compute unit with stream control."""
        structure = self.structure
        kernel = structure.kernel_function
        func = self.module.get_function(kernel)
        lanes = structure.lanes
        lines = [
            f"// compute unit for design {self.module.name!r}: {lanes} lane(s) of @{kernel}",
            f"module {_sanitize(self.module.name)}_cu (",
            "  input  wire clk,",
            "  input  wire rst,",
            "  input  wire in_valid,",
            "  output wire out_valid",
            ");",
            "",
        ]
        for lane in range(lanes):
            lines.append(f"  // ---- lane {lane} ----")
            lines.append(f"  wire lane{lane}_out_valid;")
            args = ", ".join(
                f".s_{_sanitize(name)}({_sanitize(name)}_lane{lane})" for _, name in func.args
            )
            for ty, name in func.args:
                lines.append(
                    f"  wire [{ty.width - 1}:0] {_sanitize(name)}_lane{lane}; "
                    f"// fed by stream control"
                )
            lines.append(
                f"  {_sanitize(kernel)}_kernel lane{lane} (.clk(clk), .rst(rst), "
                f".in_valid(in_valid), .out_valid(lane{lane}_out_valid)"
                + (", " + args if args else "")
                + ");"
            )
            lines.append("")
        valid_terms = " & ".join(f"lane{lane}_out_valid" for lane in range(lanes)) or "in_valid"
        lines.append(f"  assign out_valid = {valid_terms};")
        lines.append("endmodule")
        return "\n".join(lines) + "\n"

    def generate_config_include(self) -> str:
        """The configuration include file of Figure 11's final stage."""
        s = self.structure
        kernel_schedule = self.schedules.get(s.kernel_function)
        depth = kernel_schedule.pipeline_depth if kernel_schedule else 0
        lines = [
            f"// configuration include for {self.module.name}",
            f"`define TYTRA_DESIGN \"{self.module.name}\"",
            f"`define TYTRA_LANES {s.lanes}",
            f"`define TYTRA_KERNEL \"{s.kernel_function}\"",
            f"`define TYTRA_PIPELINE_DEPTH {depth}",
            f"`define TYTRA_NI {s.instructions_per_pe}",
            f"`define TYTRA_NOFF {s.max_offset_span_words}",
            f"`define TYTRA_NWPT {s.words_per_item}",
            f"`define TYTRA_STREAMS {s.total_streams}",
        ]
        return "\n".join(lines) + "\n"

    # ------------------------------------------------------------------
    def generate_all(self) -> dict[str, str]:
        """Emit every output file as a name -> text mapping."""
        files: dict[str, str] = {}
        for name, func in self.module.functions.items():
            if name == self.module.main or not func.is_leaf:
                continue
            if func.kind in (FunctionKind.PIPE, FunctionKind.COMB):
                files[f"{_sanitize(name)}_kernel.v"] = self.generate_kernel(func)
        files[f"{_sanitize(self.module.name)}_cu.v"] = self.generate_compute_unit()
        files[f"{_sanitize(self.module.name)}_config.vh"] = self.generate_config_include()
        return files
