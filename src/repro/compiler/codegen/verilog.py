"""Verilog code generation for scheduled TyTra pipelines.

The generator follows the structure of Figure 11's code-generation flow
and Figure 13's datapath illustration:

* one Verilog module per leaf ``pipe``/``comb`` function: a streaming
  datapath with one pipeline register stage per schedule latency cycle,
  valid hand-shaking, offset buffers realised as shift registers, operand
  balancing delay lines (Figure 13's pass-through buffers) and a reduction
  register for every global accumulator;
* a *compute unit* module instantiating ``KNL`` lanes of the kernel
  pipeline plus the stream-control address generators;
* a configuration include file recording the design parameters.

The emitted RTL is *cycle- and bit-faithful* to the scheduled datapath:

* every stream offset ``o`` is aligned to the same work item — with
  ``window`` the largest positive resolved offset, the base streams are
  delayed by ``window`` cycles and an offset-``o`` stream by
  ``window - o`` cycles, so at any cycle every operand wire carries data
  of one and the same item (the delay lines double as Figure 13's offset
  buffers);
* every instruction occupies exactly its scheduled latency in register
  stages, and operands consumed later than they are produced pass through
  balancing delay lines of the slack length;
* ``out_valid`` tracks the true input-to-output register count, and each
  reduction register updates exactly once per valid item, at the cycle
  its operand carries that item.

The closed loop back from this text is the flow-orchestration subsystem
(:mod:`repro.flows`), which elaborates the emitted subset into a
structural netlist, cycle-simulates it against the kernel's Python
reference semantics and checks the cycle counts against the
:class:`~repro.substrate.pipeline_sim.PipelineSimulator`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.compiler.scheduling import (
    OperatorLatencyModel,
    ScheduledPipeline,
    schedule_module,
)
from repro.cost.resource_model import ModuleStructure
from repro.ir.functions import FunctionKind, IRFunction, Module
from repro.ir.instructions import Instruction, OperandKind, decode_predicate

__all__ = ["VerilogGenerator", "RTLGeometry"]


_BINARY_OPERATORS = {
    "add": "+", "sub": "-", "mul": "*",
    "and": "&", "or": "|", "xor": "^",
    "shl": "<<", "lshr": ">>",
    "fadd": "+", "fsub": "-", "fmul": "*",
}

#: division-family opcodes and whether they are inherently signed
#: (None = follow the operand type's signedness)
_DIVISION_OPERATORS = {
    "div": ("/", None), "udiv": ("/", False), "sdiv": ("/", True),
    "fdiv": ("/", None), "rem": ("%", None), "urem": ("%", False),
}

#: comparison predicate -> Verilog relational operator.  ``icmp``/``fcmp``
#: without a predicate default to ``lt`` (the historical behaviour); the
#: ``u*``/``s*`` forms pin the signedness, the bare forms take it from the
#: operand type.
_PREDICATE_OPERATORS = {
    "eq": "==", "ne": "!=", "lt": "<", "le": "<=", "gt": ">", "ge": ">=",
}


def _sanitize(name: str) -> str:
    """Make an SSA name a legal Verilog identifier."""
    out = name.replace(".", "_")
    if out and out[0].isdigit():
        out = "v" + out
    return out


@dataclass(frozen=True)
class RTLGeometry:
    """Timing geometry of one generated kernel pipeline module.

    ``window`` is the largest positive resolved stream offset — the input
    delay that aligns every offset stream onto the same work item.
    ``datapath_depth`` is the register count of the deepest input-to-output
    path *after* the alignment stage; ``latency`` is their sum: the cycle
    at which item ``i``'s output emerges is ``i + latency`` (with inputs
    issued one per cycle from cycle 0).  Shared by the testbench generator
    (run length) and the RTL flows (cycle-agreement gates).
    """

    function: str
    window: int
    datapath_depth: int
    schedule_depth: int

    @property
    def latency(self) -> int:
        return self.window + self.datapath_depth

    @property
    def out_valid_index(self) -> int:
        """Bit of the valid shift register that gates the outputs
        (negative = outputs are combinational on ``in_valid``)."""
        return self.latency - 1


@dataclass
class VerilogGenerator:
    """Generate Verilog for a TyTra-IR module."""

    module: Module
    latency_model: OperatorLatencyModel = field(default_factory=OperatorLatencyModel)
    schedules: dict[str, ScheduledPipeline] = field(default_factory=dict)
    structure: ModuleStructure | None = None

    def __post_init__(self) -> None:
        if not self.schedules:
            self.schedules = schedule_module(self.module, self.latency_model)
        if self.structure is None:
            self.structure = ModuleStructure.from_module(self.module)

    # ------------------------------------------------------------------
    # Timing geometry
    # ------------------------------------------------------------------
    def _timing(self, func: IRFunction, schedule: ScheduledPipeline):
        """Per-value availability times and latencies of one datapath.

        Returns ``(avail, lats, window)`` where ``avail[name]`` is the
        cycle (relative to the aligned input stage) at which ``w_<name>``
        carries a given item's value, and ``lats[name]`` the register
        stages instruction ``name`` occupies (0 = combinational).
        """
        resolved = {off.result: self.module.resolve_offset(off.offset)
                    for off in func.offsets()}
        window = max([0] + [o for o in resolved.values() if o > 0])

        avail: dict[str, int] = {name: 0 for _, name in func.args}
        avail.update({name: 0 for name in resolved})
        lats: dict[str, int] = {}
        comb = func.kind is FunctionKind.COMB
        for instr in func.instructions():
            if comb:
                start, lat = 0, 0
            else:
                start = schedule.start_cycles.get(instr.result, 0)
                lat = schedule.latencies.get(
                    instr.result,
                    self.latency_model.latency(instr.opcode, instr.result_type.width),
                )
            lats[instr.result] = lat
            avail[instr.result] = start + lat
        return avail, lats, window

    def _geometry_from(self, func: IRFunction, schedule: ScheduledPipeline,
                       avail: dict[str, int], window: int) -> RTLGeometry:
        """Assemble the geometry from precomputed timing — the one owner
        of the output-depth definition, shared by :meth:`geometry` and
        :meth:`generate_kernel`."""
        out_names = self._output_ports(func)
        depth = max([0] + [avail[name] for name in out_names if name in avail])
        return RTLGeometry(
            function=func.name,
            window=window,
            datapath_depth=depth,
            schedule_depth=schedule.pipeline_depth,
        )

    def geometry(self, func: IRFunction | str) -> RTLGeometry:
        """The timing geometry of one leaf function's generated module."""
        if isinstance(func, str):
            func = self.module.get_function(func)
        schedule = self.schedules.get(func.name)
        if schedule is None:
            raise ValueError(
                f"function @{func.name} has no schedule (is it a leaf datapath?)")
        avail, _, window = self._timing(func, schedule)
        return self._geometry_from(func, schedule, avail, window)

    def _output_ports(self, func: IRFunction) -> list[str]:
        return [p.port for p in self.module.port_declarations
                if p.function == func.name and p.direction.value == "ostream"]

    # ------------------------------------------------------------------
    # Expression rendering
    # ------------------------------------------------------------------
    def _compare_expression(self, instr: Instruction, ops: list[str]) -> str:
        signed, base = decode_predicate(instr.predicate, instr.result_type.is_signed)
        op = _PREDICATE_OPERATORS[base]
        a, b = ops
        if signed:
            a, b = f"$signed({a})", f"$signed({b})"
        return f"({a} {op} {b}) ? 1'b1 : 1'b0"

    def _instruction_expression(self, instr: Instruction, ops: list[str]) -> str:
        opcode = instr.opcode
        signed = instr.result_type.is_signed
        width = instr.result_type.width

        def s(text: str) -> str:
            return f"$signed({text})" if signed else text

        if opcode in _BINARY_OPERATORS:
            return f"{ops[0]} {_BINARY_OPERATORS[opcode]} {ops[1]}"
        if opcode in _DIVISION_OPERATORS:
            # zero-guarded divider: deterministic across every simulator
            # (real Verilog yields x on division by zero)
            operator, force_signed = _DIVISION_OPERATORS[opcode]
            wrap = (lambda t: f"$signed({t})") if (
                force_signed if force_signed is not None else signed) else (lambda t: t)
            return (f"({ops[1]} == 0) ? {width}'d0 : "
                    f"{wrap(ops[0])} {operator} {wrap(ops[1])}")
        if opcode == "ashr":
            # '>>>' only shifts arithmetically when its operand is signed
            return f"{s(ops[0])} >>> {ops[1]}"
        if opcode in ("icmp", "fcmp"):
            return self._compare_expression(instr, ops)
        if opcode == "select":
            return f"{ops[0]} ? {ops[1]} : {ops[2]}"
        if opcode == "min":
            return f"({s(ops[0])} < {s(ops[1])}) ? {ops[0]} : {ops[1]}"
        if opcode == "max":
            return f"({s(ops[0])} > {s(ops[1])}) ? {ops[0]} : {ops[1]}"
        if opcode == "abs":
            if signed:
                return (f"($signed({ops[0]}) < $signed({width}'d0)) ? "
                        f"-{ops[0]} : {ops[0]}")
            return ops[0]  # |x| of an unsigned value is x
        if opcode == "not":
            return f"~{ops[0]}"
        if opcode in ("mov", "trunc", "zext", "sext"):
            return ops[0]
        if opcode in ("sqrt", "fsqrt", "fexp", "flog"):
            return f"fu_{opcode}({ops[0]})"
        if opcode == "mac":
            return f"{ops[0]} * {ops[1]} + {ops[2]}"
        return " /* unsupported */ " + " , ".join(ops)  # pragma: no cover - defensive

    # ------------------------------------------------------------------
    # Kernel pipeline module
    # ------------------------------------------------------------------
    def generate_kernel(self, func: IRFunction) -> str:
        """Emit the Verilog module for one leaf datapath function."""
        schedule = self.schedules.get(func.name)
        if schedule is None:
            raise ValueError(f"function @{func.name} has no schedule (is it a leaf datapath?)")

        avail, lats, window = self._timing(func, schedule)
        comb = func.kind is FunctionKind.COMB
        widths: dict[str, int] = {name: ty.width for ty, name in func.args}
        for off in func.offsets():
            widths[off.result] = off.result_type.width
        for instr in func.instructions():
            widths[instr.result] = instr.result_type.width

        out_ports = self._output_ports(func)
        geometry = self._geometry_from(func, schedule, avail, window)
        out_depth = geometry.datapath_depth

        lines: list[str] = []
        ports = ["input  wire clk", "input  wire rst", "input  wire in_valid",
                 "output wire out_valid"]
        for ty, name in func.args:
            ports.append(f"input  wire [{ty.width - 1}:0] s_{_sanitize(name)}")
        for port in self.module.port_declarations:
            if port.function == func.name and port.direction.value == "ostream":
                ports.append(f"output wire [{port.element_type.width - 1}:0] s_{_sanitize(port.port)}")
        for red in func.reductions():
            ports.append(f"output reg  [{red.result_type.width - 1}:0] g_{_sanitize(red.result)}")

        lines.append(f"// kernel pipeline for @{func.name} "
                     f"(depth {schedule.pipeline_depth}, II {schedule.initiation_interval}, "
                     f"window {window}, latency {geometry.latency})")
        lines.append(f"module {_sanitize(func.name)}_kernel (")
        lines.append("  " + ",\n  ".join(ports))
        lines.append(");")
        lines.append("")

        # valid pipeline: valid_sr[k] is in_valid delayed k+1 cycles
        reduction_guards: dict[str, int] = {}
        for instr in func.reductions():
            start = 0 if comb else schedule.start_cycles.get(instr.result, 0)
            reduction_guards[instr.result] = window + start - 1
        valid_msb = max([0, geometry.out_valid_index] + list(reduction_guards.values()))
        lines.append(f"  reg [{valid_msb}:0] valid_sr;")
        lines.append("  always @(posedge clk) begin")
        lines.append("    if (rst) valid_sr <= 0;")
        lines.append("    else     valid_sr <= {valid_sr, in_valid};")
        lines.append("  end")
        if geometry.out_valid_index < 0:
            lines.append("  assign out_valid = in_valid;")
        else:
            lines.append(f"  assign out_valid = valid_sr[{geometry.out_valid_index}];")
        lines.append("")

        # shared shift-register delay-line emitter; one line per (buffer
        # name, source, depth), deduplicated for balancing reuse
        emitted_delays: dict[tuple[str, int], str] = {}

        def delay_line(src: str, dst: str, width: int, depth: int, buf: str,
                       comment: str | None = None) -> None:
            if comment:
                lines.append(f"  // {comment}")
            if depth == 0:
                lines.append(f"  wire [{width - 1}:0] {dst} = {src};")
                lines.append("")
                return
            lines.append(f"  reg [{width - 1}:0] {buf} [0:{depth - 1}];")
            lines.append(f"  integer i_{buf};")
            lines.append("  always @(posedge clk) begin")
            lines.append(f"    {buf}[0] <= {src};")
            lines.append(f"    for (i_{buf} = 1; i_{buf} < {depth}; i_{buf} = i_{buf} + 1)")
            lines.append(f"      {buf}[i_{buf}] <= {buf}[i_{buf} - 1];")
            lines.append("  end")
            lines.append(f"  wire [{width - 1}:0] {dst} = {buf}[{depth - 1}];")
            lines.append("")

        # input streams aligned to the offset window
        for ty, name in func.args:
            ident = _sanitize(name)
            delay_line(f"s_{ident}", f"w_{ident}", ty.width, window,
                       f"argbuf_{ident}",
                       comment=f"input stream %{name} aligned by {window} cycle(s)")

        # offset streams: delay window - o so every wire carries one item
        for off in func.offsets():
            o = self.module.resolve_offset(off.offset)
            depth = window - o
            src = _sanitize(off.source)
            dst = _sanitize(off.result)
            delay_line(f"s_{src}", f"w_{dst}", off.result_type.width, depth,
                       f"offbuf_{dst}",
                       comment=f"offset stream %{off.result} = %{off.source} "
                               f"offset {off.offset} (delay {depth})")

        # operand rendering with balancing delay lines (Figure 13's
        # pass-through buffers): an operand produced at cycle T but consumed
        # at cycle s > T goes through a s-T deep shift register
        def operand_text(instr: Instruction, index: int, consume_at: int) -> str:
            op = instr.operands[index]
            if op.kind is OperandKind.CONST:
                width = instr.result_type.width
                value = op.value
                if isinstance(value, float) and not value.is_integer():
                    return f"{width}'d{int(round(value))}"
                return f"{width}'d{int(value)}"
            if op.kind is OperandKind.GLOBAL:
                return f"g_{_sanitize(op.name)}"
            name = op.name
            ident = _sanitize(name)
            slack = consume_at - avail[name]
            if slack <= 0:
                return f"w_{ident}"
            key = (name, slack)
            if key not in emitted_delays:
                dst = f"w_{ident}_d{slack}"
                delay_line(f"w_{ident}", dst, widths[name], slack,
                           f"balbuf_{ident}_d{slack}",
                           comment=f"balance %{name} by {slack} cycle(s)")
                emitted_delays[key] = dst
            return emitted_delays[key]

        # datapath: one register stage per scheduled latency cycle
        for instr in func.instructions():
            width = instr.result_type.width
            name = _sanitize(instr.result)
            start = 0 if comb else schedule.start_cycles.get(instr.result, 0)
            lat = lats[instr.result]
            ops = [operand_text(instr, i, start) for i in range(len(instr.operands))]
            expr = self._instruction_expression(instr, ops)
            if instr.is_reduction:
                guard_index = reduction_guards[instr.result]
                guard = "in_valid" if guard_index < 0 else f"valid_sr[{guard_index}]"
                lines.append(f"  // reduction @{instr.result} (stage {start})")
                lines.append("  always @(posedge clk) begin")
                lines.append(f"    if (rst) g_{name} <= 0;")
                lines.append(f"    else if ({guard}) g_{name} <= {expr};")
                lines.append("  end")
            elif lat == 0:
                lines.append(f"  // %{instr.result} = {instr.qualified_opcode} "
                             f"(stage {start}, combinational)")
                lines.append(f"  wire [{width - 1}:0] w_{name} = {expr};")
            else:
                lines.append(f"  // %{instr.result} = {instr.qualified_opcode} "
                             f"(stage {start}, {lat} cycle(s))")
                lines.append(f"  reg [{width - 1}:0] r_{name};")
                for stage in range(1, lat):
                    lines.append(f"  reg [{width - 1}:0] r_{name}_p{stage};")
                lines.append("  always @(posedge clk) begin")
                lines.append(f"    r_{name} <= {expr};")
                for stage in range(1, lat):
                    prev = f"r_{name}" if stage == 1 else f"r_{name}_p{stage - 1}"
                    lines.append(f"    r_{name}_p{stage} <= {prev};")
                lines.append("  end")
                final = f"r_{name}" if lat == 1 else f"r_{name}_p{lat - 1}"
                lines.append(f"  wire [{width - 1}:0] w_{name} = {final};")
            lines.append("")

        # output streams, all aligned to the deepest output
        for port_name in out_ports:
            ident = _sanitize(port_name)
            slack = out_depth - avail.get(port_name, 0)
            src = f"w_{ident}"
            if slack > 0:
                dst = f"w_{ident}_o{slack}"
                delay_line(src, dst, widths[port_name], slack,
                           f"outbuf_{ident}",
                           comment=f"align output %{port_name} by {slack} cycle(s)")
                src = dst
            lines.append(f"  assign s_{ident} = {src};")
        lines.append("endmodule")
        return "\n".join(lines) + "\n"

    # ------------------------------------------------------------------
    # Compute unit and configuration include
    # ------------------------------------------------------------------
    def generate_compute_unit(self) -> str:
        """Emit the lane-replicated compute unit with stream control."""
        structure = self.structure
        kernel = structure.kernel_function
        func = self.module.get_function(kernel)
        lanes = structure.lanes
        lines = [
            f"// compute unit for design {self.module.name!r}: {lanes} lane(s) of @{kernel}",
            f"module {_sanitize(self.module.name)}_cu (",
            "  input  wire clk,",
            "  input  wire rst,",
            "  input  wire in_valid,",
            "  output wire out_valid",
            ");",
            "",
        ]
        for lane in range(lanes):
            lines.append(f"  // ---- lane {lane} ----")
            lines.append(f"  wire lane{lane}_out_valid;")
            args = ", ".join(
                f".s_{_sanitize(name)}({_sanitize(name)}_lane{lane})" for _, name in func.args
            )
            for ty, name in func.args:
                lines.append(
                    f"  wire [{ty.width - 1}:0] {_sanitize(name)}_lane{lane}; "
                    f"// fed by stream control"
                )
            lines.append(
                f"  {_sanitize(kernel)}_kernel lane{lane} (.clk(clk), .rst(rst), "
                f".in_valid(in_valid), .out_valid(lane{lane}_out_valid)"
                + (", " + args if args else "")
                + ");"
            )
            lines.append("")
        valid_terms = " & ".join(f"lane{lane}_out_valid" for lane in range(lanes)) or "in_valid"
        lines.append(f"  assign out_valid = {valid_terms};")
        lines.append("endmodule")
        return "\n".join(lines) + "\n"

    def generate_config_include(self) -> str:
        """The configuration include file of Figure 11's final stage."""
        s = self.structure
        kernel_schedule = self.schedules.get(s.kernel_function)
        depth = kernel_schedule.pipeline_depth if kernel_schedule else 0
        try:
            geometry = self.geometry(s.kernel_function)
            window, latency = geometry.window, geometry.latency
        except (ValueError, KeyError):
            window, latency = 0, depth
        lines = [
            f"// configuration include for {self.module.name}",
            f"`define TYTRA_DESIGN \"{self.module.name}\"",
            f"`define TYTRA_LANES {s.lanes}",
            f"`define TYTRA_KERNEL \"{s.kernel_function}\"",
            f"`define TYTRA_PIPELINE_DEPTH {depth}",
            f"`define TYTRA_WINDOW {window}",
            f"`define TYTRA_RTL_LATENCY {latency}",
            f"`define TYTRA_NI {s.instructions_per_pe}",
            f"`define TYTRA_NOFF {s.max_offset_span_words}",
            f"`define TYTRA_NWPT {s.words_per_item}",
            f"`define TYTRA_STREAMS {s.total_streams}",
        ]
        return "\n".join(lines) + "\n"

    # ------------------------------------------------------------------
    def generate_all(self) -> dict[str, str]:
        """Emit every output file as a name -> text mapping."""
        files: dict[str, str] = {}
        for name, func in self.module.functions.items():
            if name == self.module.main or not func.is_leaf:
                continue
            if func.kind in (FunctionKind.PIPE, FunctionKind.COMB):
                files[f"{_sanitize(name)}_kernel.v"] = self.generate_kernel(func)
        files[f"{_sanitize(self.module.name)}_cu.v"] = self.generate_compute_unit()
        files[f"{_sanitize(self.module.name)}_config.vh"] = self.generate_config_include()
        return files
