"""HDL and HLS-framework code generation.

``verilog``
    Emits synthesizeable Verilog for the scheduled kernel pipelines,
    offset buffers and the lane-replicated compute unit.

``wrapper``
    Emits the integration glue the paper describes for the Maxeler flow: a
    MaxJ-style wrapper kernel for the custom HDL block plus a host-side
    API stub (Figure 16's division of labour).
"""

from repro.compiler.codegen.verilog import VerilogGenerator
from repro.compiler.codegen.wrapper import generate_host_stub, generate_maxj_wrapper
from repro.compiler.codegen.testbench import generate_testbench

__all__ = [
    "VerilogGenerator",
    "generate_maxj_wrapper",
    "generate_host_stub",
    "generate_testbench",
]
