"""Verilog testbench generation for generated kernel pipelines.

The paper's flow hands the generated HDL to a vendor toolchain; a
downstream user of this reproduction will instead want to drive the
generated kernel module in an HDL simulator.  This generator emits a
self-checking-style testbench skeleton for a leaf datapath function:

* clock and reset generation;
* stimulus registers for every input stream, driven from a simple counter
  pattern (or from ``$readmemh`` files when ``use_memh`` is set);
* a cycle counter and an automatic ``$finish`` after the pipeline has
  drained (items + pipeline depth + margin cycles);
* waveform dumping and result logging of the output streams and the
  reduction registers.
"""

from __future__ import annotations

from repro.compiler.scheduling import OperatorLatencyModel, schedule_function
from repro.ir.functions import IRFunction, Module, StreamDirection

__all__ = ["generate_testbench"]


def _sanitize(name: str) -> str:
    out = name.replace(".", "_")
    if out and out[0].isdigit():
        out = "v" + out
    return out


def generate_testbench(
    module: Module,
    function_name: str | None = None,
    n_items: int = 256,
    clock_period_ns: int = 5,
    use_memh: bool = False,
) -> str:
    """Emit a Verilog testbench for one leaf kernel of ``module``."""
    if n_items <= 0:
        raise ValueError("n_items must be positive")
    if function_name is None:
        leaves = [f for f in module.functions.values()
                  if f.is_leaf and f.name != module.main and f.instructions()]
        if not leaves:
            raise ValueError("module has no leaf datapath function to test")
        func: IRFunction = max(leaves, key=lambda f: f.instruction_count())
    else:
        func = module.get_function(function_name)

    schedule = schedule_function(func, OperatorLatencyModel())
    depth = schedule.pipeline_depth
    kernel = f"{_sanitize(func.name)}_kernel"
    out_ports = [p.port for p in module.port_declarations
                 if p.function == func.name and p.direction is StreamDirection.OUTPUT]
    reductions = [r.result for r in func.reductions()]
    run_cycles = n_items + depth + 16

    lines: list[str] = [
        f"// Auto-generated testbench for @{func.name} "
        f"(pipeline depth {depth}, {n_items} work-items)",
        "`timescale 1ns/1ps",
        f"module tb_{_sanitize(func.name)};",
        "",
        "  reg clk = 1'b0;",
        "  reg rst = 1'b1;",
        "  reg in_valid = 1'b0;",
        "  wire out_valid;",
        f"  integer cycle = 0;",
        "",
        f"  always #{clock_period_ns / 2:g} clk = ~clk;",
        "",
    ]

    # stimulus for each input stream
    for ty, name in func.args:
        ident = _sanitize(name)
        lines.append(f"  reg [{ty.width - 1}:0] s_{ident};")
        if use_memh:
            lines.append(f"  reg [{ty.width - 1}:0] mem_{ident} [0:{n_items - 1}];")
    lines.append("")

    # outputs and reductions
    for port in out_ports:
        decl_width = func.arg_types[func.arg_names[0]].width if func.args else 32
        lines.append(f"  wire [{decl_width - 1}:0] s_{_sanitize(port)};")
    for red in func.reductions():
        lines.append(f"  wire [{red.result_type.width - 1}:0] g_{_sanitize(red.result)};")
    lines.append("")

    # device under test
    connections = [".clk(clk)", ".rst(rst)", ".in_valid(in_valid)", ".out_valid(out_valid)"]
    connections += [f".s_{_sanitize(n)}(s_{_sanitize(n)})" for _, n in func.args]
    connections += [f".s_{_sanitize(p)}(s_{_sanitize(p)})" for p in out_ports]
    connections += [f".g_{_sanitize(r)}(g_{_sanitize(r)})" for r in reductions]
    lines.append(f"  {kernel} dut (")
    lines.append("    " + ",\n    ".join(connections))
    lines.append("  );")
    lines.append("")

    # initialisation
    lines.append("  initial begin")
    lines.append(f'    $dumpfile("tb_{_sanitize(func.name)}.vcd");')
    lines.append(f"    $dumpvars(0, tb_{_sanitize(func.name)});")
    if use_memh:
        for _, name in func.args:
            ident = _sanitize(name)
            lines.append(f'    $readmemh("{ident}.memh", mem_{ident});')
    lines.append("    repeat (4) @(posedge clk);")
    lines.append("    rst = 1'b0;")
    lines.append("  end")
    lines.append("")

    # stimulus process
    lines.append("  always @(posedge clk) begin")
    lines.append("    if (rst) begin")
    lines.append("      cycle <= 0;")
    lines.append("      in_valid <= 1'b0;")
    for _, name in func.args:
        lines.append(f"      s_{_sanitize(name)} <= 0;")
    lines.append("    end else begin")
    lines.append("      cycle <= cycle + 1;")
    lines.append(f"      in_valid <= (cycle < {n_items});")
    for index, (_, name) in enumerate(func.args):
        ident = _sanitize(name)
        if use_memh:
            lines.append(f"      s_{ident} <= mem_{ident}[cycle % {n_items}];")
        else:
            lines.append(f"      s_{ident} <= cycle * {index + 3};")
    lines.append("    end")
    lines.append("  end")
    lines.append("")

    # logging + termination
    lines.append("  always @(posedge clk) begin")
    if out_ports:
        logged = ", ".join(f"s_{_sanitize(p)}" for p in out_ports)
        fmt = " ".join(f"{p}=%0d" for p in out_ports)
        lines.append(f'    if (out_valid) $display("cycle %0d: {fmt}", cycle, {logged});')
    lines.append(f"    if (cycle == {run_cycles}) begin")
    for red in reductions:
        lines.append(f'      $display("reduction {red} = %0d", g_{_sanitize(red)});')
    lines.append(f'      $display("done after %0d cycles (expected ~%0d)", cycle, {n_items + depth});')
    lines.append("      $finish;")
    lines.append("    end")
    lines.append("  end")
    lines.append("")
    lines.append("endmodule")
    return "\n".join(lines) + "\n"
