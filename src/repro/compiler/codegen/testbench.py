"""Verilog testbench generation for generated kernel pipelines.

The paper's flow hands the generated HDL to a vendor toolchain; this
reproduction instead closes the loop itself (:mod:`repro.flows`), so the
testbench is built to be *checkable by machines*:

* every input stream is driven from a 32-bit LCG whose per-stream seed is
  a pure function of ``(seed, stream index)`` — :func:`stimulus_words`
  reproduces the exact word sequence in Python, so any simulator (the
  pure-Python RTL backend, iverilog, verilator) sees identical stimulus
  and can be checked against the same reference outputs;
* results are printed as machine-parsable lines::

      RESULT <stream> <index> <hex>      one per output stream per item
      REDUCTION <name> <hex>             final accumulator values
      DONE <cycles>                      total cycles at $finish

  which :func:`parse_result_lines` turns back into Python values;
* the run length covers the pipeline's full RTL latency (offset window +
  datapath registers) plus a drain margin, and streams are driven to zero
  after the last item so boundary behaviour is deterministic.
"""

from __future__ import annotations

from repro.compiler.codegen.verilog import _sanitize
from repro.compiler.scheduling import OperatorLatencyModel
from repro.ir.functions import IRFunction, Module, StreamDirection

__all__ = [
    "LCG_MULTIPLIER",
    "LCG_INCREMENT",
    "DEFAULT_STIMULUS_SEED",
    "stream_seed",
    "stimulus_words",
    "select_leaf_function",
    "generate_testbench",
    "parse_result_lines",
]

#: the numerical-recipes LCG; any 32-bit full-period LCG would do, this one
#: is what the emitted Verilog hard-codes, so keep the two in lock step
LCG_MULTIPLIER = 1664525
LCG_INCREMENT = 1013904223
_MASK32 = 0xFFFFFFFF

#: default testbench stimulus seed (flows pass their own)
DEFAULT_STIMULUS_SEED = 0x7C0FFEE

#: per-stream seed spacing (the 32-bit golden ratio, to decorrelate streams)
_STREAM_SALT = 0x9E3779B9


def stream_seed(seed: int, stream_index: int) -> int:
    """The 32-bit LCG state stream ``stream_index`` starts from."""
    return (seed + _STREAM_SALT * (stream_index + 1)) & _MASK32


def stimulus_words(seed: int, stream_index: int, n_items: int, width: int) -> list[int]:
    """The exact word sequence the testbench drives on one input stream."""
    mask = (1 << width) - 1
    state = stream_seed(seed, stream_index)
    words = []
    for _ in range(n_items):
        words.append(state & mask)
        state = (state * LCG_MULTIPLIER + LCG_INCREMENT) & _MASK32
    return words


def select_leaf_function(module: Module, function_name: str | None) -> IRFunction:
    if function_name is not None:
        return module.get_function(function_name)
    leaves = [f for f in module.functions.values()
              if f.is_leaf and f.name != module.main and f.instructions()]
    if not leaves:
        raise ValueError("module has no leaf datapath function to test")
    return max(leaves, key=lambda f: f.instruction_count())


def generate_testbench(
    module: Module,
    function_name: str | None = None,
    n_items: int = 256,
    clock_period_ns: int = 5,
    use_memh: bool = False,
    seed: int = DEFAULT_STIMULUS_SEED,
) -> str:
    """Emit a self-checking Verilog testbench for one leaf kernel."""
    if n_items <= 0:
        raise ValueError("n_items must be positive")
    func = select_leaf_function(module, function_name)

    # the generator owns the timing geometry (offset window + balanced
    # datapath depth); reuse it so the drain margin is always sufficient
    from repro.compiler.codegen.verilog import VerilogGenerator

    generator = VerilogGenerator(module, latency_model=OperatorLatencyModel())
    geometry = generator.geometry(func.name)
    depth = geometry.latency
    kernel = f"{_sanitize(func.name)}_kernel"
    out_ports = [p for p in module.port_declarations
                 if p.function == func.name and p.direction is StreamDirection.OUTPUT]
    reductions = [r for r in func.reductions()]
    # the run must outlive BOTH the last output (window + datapath depth)
    # and the last reduction commit — a reduction can sit deeper in the
    # schedule than any output port, and schedule_depth bounds every
    # instruction's start cycle
    drain = geometry.window + max(geometry.datapath_depth, geometry.schedule_depth)
    run_cycles = n_items + drain + 16
    # reset long enough to flush every un-reset delay line with zeros: an
    # event-driven simulator powers the shift registers up as x, and the
    # deepest line is an offset buffer of window - o entries feeding up
    # to schedule_depth datapath registers
    deepest_line = max(
        [geometry.window]
        + [geometry.window - module.resolve_offset(off.offset)
           for off in func.offsets()]
    )
    flush_cycles = deepest_line + geometry.schedule_depth + 4

    lines: list[str] = [
        f"// Auto-generated testbench for @{func.name} "
        f"(RTL latency {depth}, {n_items} work-items, stimulus seed {seed:#x})",
        "`timescale 1ns/1ps",
        f"module tb_{_sanitize(func.name)};",
        "",
        "  reg clk = 1'b0;",
        "  reg rst = 1'b1;",
        "  reg in_valid = 1'b0;",
        "  wire out_valid;",
        "  integer cycle = 0;",
        "  integer out_index = 0;",
        "",
        f"  always #{clock_period_ns / 2:g} clk = ~clk;",
        "",
    ]

    # stimulus for each input stream: seeded LCG (or $readmemh files)
    for index, (ty, name) in enumerate(func.args):
        ident = _sanitize(name)
        lines.append(f"  reg [{ty.width - 1}:0] s_{ident};")
        if use_memh:
            lines.append(f"  reg [{ty.width - 1}:0] mem_{ident} [0:{n_items - 1}];")
        else:
            lines.append(f"  reg [31:0] lcg_{ident};  // stream {index} LCG state")
    lines.append("")

    # outputs and reductions
    for port in out_ports:
        lines.append(f"  wire [{port.element_type.width - 1}:0] s_{_sanitize(port.port)};")
    for red in reductions:
        lines.append(f"  wire [{red.result_type.width - 1}:0] g_{_sanitize(red.result)};")
    lines.append("")

    # device under test
    connections = [".clk(clk)", ".rst(rst)", ".in_valid(in_valid)", ".out_valid(out_valid)"]
    connections += [f".s_{_sanitize(n)}(s_{_sanitize(n)})" for _, n in func.args]
    connections += [f".s_{_sanitize(p.port)}(s_{_sanitize(p.port)})" for p in out_ports]
    connections += [f".g_{_sanitize(r.result)}(g_{_sanitize(r.result)})" for r in reductions]
    lines.append(f"  {kernel} dut (")
    lines.append("    " + ",\n    ".join(connections))
    lines.append("  );")
    lines.append("")

    # initialisation
    lines.append("  initial begin")
    lines.append(f'    $dumpfile("tb_{_sanitize(func.name)}.vcd");')
    lines.append(f"    $dumpvars(0, tb_{_sanitize(func.name)});")
    if use_memh:
        for _, name in func.args:
            ident = _sanitize(name)
            lines.append(f'    $readmemh("{ident}.memh", mem_{ident});')
    lines.append(f"    repeat ({flush_cycles}) @(posedge clk);  "
                 "// flush un-reset delay lines with zeros")
    lines.append("    rst = 1'b0;")
    lines.append("  end")
    lines.append("")

    # stimulus process
    lines.append("  always @(posedge clk) begin")
    lines.append("    if (rst) begin")
    lines.append("      cycle <= 0;")
    lines.append("      in_valid <= 1'b0;")
    for index, (_, name) in enumerate(func.args):
        ident = _sanitize(name)
        lines.append(f"      s_{ident} <= 0;")
        if not use_memh:
            lines.append(f"      lcg_{ident} <= 32'h{stream_seed(seed, index):08x};")
    lines.append("    end else begin")
    lines.append("      cycle <= cycle + 1;")
    lines.append(f"      in_valid <= (cycle < {n_items});")
    lines.append(f"      if (cycle < {n_items}) begin")
    for _, name in func.args:
        ident = _sanitize(name)
        if use_memh:
            lines.append(f"        s_{ident} <= mem_{ident}[cycle % {n_items}];")
        else:
            lines.append(f"        s_{ident} <= lcg_{ident}[{_stim_width(func, name) - 1}:0];")
            lines.append(f"        lcg_{ident} <= lcg_{ident} * 32'd{LCG_MULTIPLIER} "
                         f"+ 32'd{LCG_INCREMENT};")
    lines.append("      end else begin")
    for _, name in func.args:
        # zero after the last item: boundary windows read deterministic zeros
        lines.append(f"        s_{_sanitize(name)} <= 0;")
    lines.append("      end")
    lines.append("    end")
    lines.append("  end")
    lines.append("")

    # machine-parsable result logging + termination
    lines.append("  always @(posedge clk) begin")
    lines.append("    if (!rst && out_valid) begin")
    for port in out_ports:
        ident = _sanitize(port.port)
        lines.append(f'      $display("RESULT {port.port} %0d %h", out_index, s_{ident});')
    lines.append("      out_index <= out_index + 1;")
    lines.append("    end")
    lines.append(f"    if (cycle == {run_cycles}) begin")
    for red in reductions:
        lines.append(f'      $display("REDUCTION {red.result} %h", g_{_sanitize(red.result)});')
    lines.append('      $display("DONE %0d", cycle);')
    lines.append("      $finish;")
    lines.append("    end")
    lines.append("  end")
    lines.append("")
    lines.append("endmodule")
    return "\n".join(lines) + "\n"


def _stim_width(func: IRFunction, arg_name: str) -> int:
    """Bits of LCG state driven onto one stream (the state is 32 wide)."""
    return min(func.arg_types[arg_name].width, 32)


def parse_result_lines(text: str):
    """Parse ``RESULT``/``REDUCTION``/``DONE`` lines from simulator output.

    Returns ``(outputs, reductions, cycles)`` where ``outputs`` maps each
    stream name to ``{index: value}``, ``reductions`` maps accumulator
    names to their final values, and ``cycles`` is the ``DONE`` count
    (None when the simulation never printed one).  Lines containing ``x``
    or ``z`` digits are recorded as ``None`` — undefined values must never
    silently compare equal.
    """
    outputs: dict[str, dict[int, int | None]] = {}
    reductions: dict[str, int | None] = {}
    cycles: int | None = None

    def parse_hex(token: str) -> int | None:
        try:
            return int(token, 16)
        except ValueError:
            return None  # 'x'/'z' digits from an uninitialised signal

    for raw in text.splitlines():
        parts = raw.strip().split()
        if not parts:
            continue
        if parts[0] == "RESULT" and len(parts) == 4:
            outputs.setdefault(parts[1], {})[int(parts[2])] = parse_hex(parts[3])
        elif parts[0] == "REDUCTION" and len(parts) == 3:
            reductions[parts[1]] = parse_hex(parts[2])
        elif parts[0] == "DONE" and len(parts) == 2:
            cycles = int(parts[1])
    return outputs, reductions, cycles
