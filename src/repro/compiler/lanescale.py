"""The analytic lane-scaling law: O(families) analysis for O(points) sweeps.

The lane axis is the widest axis of every sweep (Figure 15), yet lanes do
not change the *shape* of a design: the ``reshapeTo L`` transformation
replicates one kernel pipeline ``L`` times behind a ``par`` wrapper and
gives each lane its own stream objects — the datapath, its schedule, its
per-instance resource cost, the offset buffers and the per-lane stream
pattern are all invariants of the *design family*.  This module makes
that invariant explicit:

:func:`check_lane_separable`
    Decides (cheaply, structurally) whether a module has exactly the
    replicated-lane shape the law covers.  Anything else — extra
    functions, a non-uniform wrapper, streams that do not replicate per
    lane — falls back to the full analysis path automatically.

:func:`family_fingerprint`
    Hashes the lane-*invariant* content of a separable module (PE
    datapath, constants, memory objects, ports, per-lane stream template)
    so every lane count of one family maps to one key.

:class:`FamilyAnalysis`
    Everything the estimation flow needs, analysed once from the family's
    canonical member, from which :func:`derive_structure`,
    :func:`derive_tree` and :func:`derive_classification` reconstruct any
    member's analysis products in O(lanes) dataclass assembly — no
    validation, no scheduling, no instruction walk.

:class:`LaneFamilyHandle`
    A lazy, pickle-safe stand-in for a kernel-built module: the sweep
    layer hands the pipeline ``(kernel, lanes, grid)`` recipes instead of
    eagerly lowered IR, so a warm family never lowers the member module
    at all.

Derived products are *bit-identical* to the full path's: the derivations
reuse the very same arithmetic (``estimate_from_structure``,
``pipeline_spec_from_schedule``) on identical integer inputs, which the
differential and property tests pin across every registered kernel.
"""

from __future__ import annotations

import hashlib
import threading
from dataclasses import dataclass, field

from repro.compiler.analysis import (
    ConfigurationNode,
    ConfigurationTree,
    ModuleClassification,
)
from repro.compiler.scheduling import OperatorLatencyModel, ScheduledPipeline
from repro.cost.cache import BoundedCache, default_disk_cache, env_int
from repro.cost.resource_model import ModuleStructure
from repro.ir.fingerprint import _token, fingerprint_function
from repro.ir.functions import FunctionKind, IRFunction, Module
from repro.models.design_space import DesignPoint as ClassPoint, classify_design_point

__all__ = [
    "LaneSeparability",
    "FamilyAnalysis",
    "LaneFamilyHandle",
    "check_lane_separable",
    "family_fingerprint",
    "latency_key",
    "derive_structure",
    "derive_tree",
    "derive_classification",
    "family_cache_info",
    "clear_family_caches",
    "register_recipe_alias",
]

#: disk-cache namespaces (bump SCHEMA_VERSION in cost.cache to invalidate)
_FAMILY_NAMESPACE = "family"
_RECIPE_NAMESPACE = "recipe"


def latency_key(model: OperatorLatencyModel) -> tuple:
    """Hashable identity of a latency model (a lane-scaling family axis)."""
    return (model.div_cycles_per_bit, model.sqrt_cycles_per_bit, model.input_stage_cycles)


# ----------------------------------------------------------------------
# Separability: does the module have the replicated-lane shape?
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class LaneSeparability:
    """The replicated-lane shape of a module, as found by the checker."""

    pe: str
    wrapper: str | None
    lanes: int
    call_args: tuple[str, ...]
    call_kind: str | None


def check_lane_separable(module: Module) -> LaneSeparability | None:
    """Check a module against the canonical replicated-lane shape.

    The shape is exactly what :func:`repro.functional.lower.lower_program`
    emits: ``main`` makes a single call, either directly to one leaf
    datapath (one lane) or to a ``par`` wrapper whose body is N identical
    calls to one leaf datapath (N lanes); no other functions exist; and
    the stream objects decompose into N identical per-lane groups.
    Returns None — meaning "use the full analysis path" — for anything
    else.
    """
    try:
        entry = module.entry
    except Exception:
        return None
    calls = entry.calls()
    if len(calls) != 1 or entry.instructions() or entry.offsets():
        return None
    call = calls[0]
    if not module.has_function(call.callee):
        return None
    target = module.get_function(call.callee)

    if target.is_leaf:
        pe, wrapper, lanes, template = target, None, 1, call
    elif target.kind is FunctionKind.PAR:
        body_calls = target.calls()
        if len(body_calls) < 2 or len(body_calls) != len(target.body):
            return None
        template = body_calls[0]
        for c in body_calls:
            if (c.callee != template.callee or tuple(c.args) != tuple(template.args)
                    or c.kind != template.kind):
                return None
        if not module.has_function(template.callee):
            return None
        pe = module.get_function(template.callee)
        if not pe.is_leaf:
            return None
        wrapper, lanes = target.name, len(body_calls)
    else:
        return None

    expected = {module.main, pe.name} | ({wrapper} if wrapper else set())
    if set(module.functions) != expected:
        return None

    # per-lane stream replication: every (memory, direction, pattern,
    # stride) group must split evenly across the lanes
    for count in _stream_groups(module).values():
        if count % lanes != 0:
            return None
    return LaneSeparability(
        pe=pe.name,
        wrapper=wrapper,
        lanes=lanes,
        call_args=tuple(template.args),
        call_kind=template.kind,
    )


def _stream_groups(module: Module) -> dict[tuple, int]:
    groups: dict[tuple, int] = {}
    for s in module.stream_objects.values():
        key = (s.memory, s.direction.value, s.pattern.value, s.stride)
        groups[key] = groups.get(key, 0) + 1
    return groups


def family_fingerprint(module: Module, sep: LaneSeparability) -> str:
    """Hash the lane-invariant content of a separable module.

    Excludes everything a lane count changes — the module name, the
    wrapper, the number of per-lane stream replicas — and includes
    everything the cost model reads: the PE datapath, the call template,
    constants, memory objects, port declarations and the per-lane stream
    template.
    """
    hasher = hashlib.sha256(b"lane-family/1")
    entry = module.entry
    hasher.update(_token(
        "main", entry.name, entry.kind.value,
        ",".join(f"{t}:{n}" for t, n in entry.args),
    ))
    hasher.update(_token("calltpl", ",".join(sep.call_args), sep.call_kind or ""))
    for cname in sorted(module.constants):
        hasher.update(_token("const", cname, module.constants[cname]))
    for obj in module.memory_objects.values():
        hasher.update(_token("mem", obj.name, obj.element_type, obj.size,
                             obj.addr_space, obj.label or ""))
    for key, count in sorted(_stream_groups(module).items()):
        hasher.update(_token("streamtpl", *key, count // sep.lanes))
    for port in module.port_declarations:
        hasher.update(_token("port", port.function, port.port, port.element_type,
                             port.direction.value, port.pattern.value,
                             port.base_offset, port.stream_object or "",
                             port.addr_space))
    fingerprint_function(hasher, module.get_function(sep.pe))
    return hasher.hexdigest()


# ----------------------------------------------------------------------
# The family analysis and the derivations
# ----------------------------------------------------------------------


@dataclass
class FamilyAnalysis:
    """Lane-invariant analysis products of one design family."""

    fingerprint: str
    latency: tuple
    pe: IRFunction
    pe_kind: FunctionKind
    main_name: str
    main_kind: FunctionKind
    wrapper: str | None
    schedules: dict[str, ScheduledPipeline]
    instructions_per_pe: int
    offset_buffers: list[tuple[str, int, int]]
    max_offset_span_words: int
    words_per_item: int
    in_streams_per_lane: int
    out_streams_per_lane: int
    element_width: int
    pipelined: bool
    has_seq: bool
    #: per-(device, noise) PE datapath usage, filled lazily by the
    #: resource stage (guarded by ``usage_lock``)
    leaf_usage: dict = field(default_factory=dict)
    usage_lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    def __getstate__(self):
        state = self.__dict__.copy()
        state.pop("usage_lock", None)
        # snapshot: usages are deterministic per (device, noise) content, so
        # a warm-started process can reuse them directly
        state["leaf_usage"] = dict(state.get("leaf_usage", {}))
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self.usage_lock = threading.Lock()

    @property
    def pe_name(self) -> str:
        return self.pe.name

    def wrapper_name_for(self, module: Module | None = None) -> str:
        """The par-wrapper name of a multi-lane member.

        Read from the member itself when it was lowered; otherwise reuse
        the canonical member's, falling back to the lowering convention.
        (The wrapper never contributes resources or schedule depth, so the
        name only labels the configuration tree.)
        """
        if module is not None:
            sep = check_lane_separable(module)
            if sep is not None and sep.wrapper:
                return sep.wrapper
        if self.wrapper:
            return self.wrapper
        base = self.pe_name[:-3] if self.pe_name.endswith("_pe") else self.pe_name
        return f"{base}_lanes"


def build_family(
    module: Module,
    sep: LaneSeparability,
    fingerprint: str,
    latency: tuple,
    structure: ModuleStructure,
    schedules: dict[str, ScheduledPipeline],
    classification: ModuleClassification,
) -> FamilyAnalysis | None:
    """Fold one member's full analysis into its family's invariants.

    Returns None when the member's analysis is not expressible per lane
    (stream totals that do not divide by the lane count) — the caller
    then simply does not register a family.
    """
    lanes = max(sep.lanes, 1)
    if structure.input_streams % lanes or structure.output_streams % lanes:
        return None
    return FamilyAnalysis(
        fingerprint=fingerprint,
        latency=latency,
        pe=module.get_function(sep.pe),
        pe_kind=module.get_function(sep.pe).kind,
        main_name=module.main,
        main_kind=module.entry.kind,
        wrapper=sep.wrapper,
        schedules=schedules,
        instructions_per_pe=structure.instructions_per_pe,
        offset_buffers=list(structure.offset_buffers),
        max_offset_span_words=structure.max_offset_span_words,
        words_per_item=structure.words_per_item,
        in_streams_per_lane=structure.input_streams // lanes,
        out_streams_per_lane=structure.output_streams // lanes,
        element_width=structure.element_width,
        pipelined=classification.pipelined,
        has_seq=classification.design_point.reuse_factor > 1,
    )


def derive_structure(
    family: FamilyAnalysis, lanes: int, module: Module | None = None
) -> ModuleStructure:
    """The :class:`ModuleStructure` of the ``lanes``-wide family member."""
    counts: dict[str, int] = {}
    if lanes > 1:
        counts[family.wrapper_name_for(module)] = 1
    counts[family.pe_name] = lanes
    return ModuleStructure(
        module=module,
        instance_counts=counts,
        kernel_function=family.pe_name,
        lanes=lanes,
        instructions_per_pe=family.instructions_per_pe,
        offset_buffers=list(family.offset_buffers),
        max_offset_span_words=family.max_offset_span_words,
        words_per_item=family.words_per_item,
        input_streams=family.in_streams_per_lane * lanes,
        output_streams=family.out_streams_per_lane * lanes,
        element_width=family.element_width,
    )


def derive_tree(
    family: FamilyAnalysis, lanes: int, design_name: str, module: Module | None = None
) -> ConfigurationTree:
    """The Figure-8 configuration tree of the ``lanes``-wide member."""
    pe_nodes = [
        ConfigurationNode(function=family.pe_name, kind=family.pe_kind, instance=i)
        for i in range(lanes)
    ]
    root = ConfigurationNode(function=family.main_name, kind=family.main_kind)
    if lanes > 1:
        root.children.append(
            ConfigurationNode(
                function=family.wrapper_name_for(module),
                kind=FunctionKind.PAR,
                children=pe_nodes,
            )
        )
    else:
        root.children.extend(pe_nodes)
    return ConfigurationTree(module_name=design_name, root=root)


def derive_classification(family: FamilyAnalysis, lanes: int) -> ModuleClassification:
    """The design-space classification of the ``lanes``-wide member."""
    point = ClassPoint(
        pipelined=family.pipelined,
        lanes=lanes,
        vectorization=1,
        reuse_factor=2 if family.has_seq else 1,
    )
    return ModuleClassification(
        design_point=point,
        configuration_class=classify_design_point(point),
        lanes=lanes,
        pipelined=family.pipelined,
    )


# ----------------------------------------------------------------------
# Lazy module handles: the sweep layer's O(families) lowering
# ----------------------------------------------------------------------


#: per-source-file content token, so persisted recipe aliases go stale
#: the moment a kernel's defining module changes (hashing the whole file
#: is deliberately conservative — and far cheaper than inspect.getsource,
#: which tokenizes the file to find the class block)
_KERNEL_CODE_TOKENS: dict[str, str] = {}


def _kernel_code_token(kernel) -> str:
    import inspect

    try:
        path = inspect.getfile(type(kernel))
    except (OSError, TypeError):
        return ""
    token = _KERNEL_CODE_TOKENS.get(path)
    if token is None:
        try:
            with open(path, "rb") as fh:
                data = fh.read()
        except OSError:
            data = b""
        token = hashlib.sha256(data).hexdigest()[:16]
        _KERNEL_CODE_TOKENS[path] = token
    return token


@dataclass
class LaneFamilyHandle:
    """A lazy, pickle-safe ``(kernel, lanes, grid)`` module recipe.

    The exploration layer knows that points along the lane axis belong to
    one design family before any IR exists; a handle carries that
    knowledge into the pipeline, which lowers the member module only when
    the family is cold or the design turns out not to be lane-separable.
    """

    kernel: object
    lanes: int
    grid: tuple[int, ...]
    _module: Module | None = field(default=None, repr=False, compare=False)

    @property
    def design_name(self) -> str:
        # mirrors ScientificKernel.build_module's lower_program naming
        return f"{self.kernel.name}_l{self.lanes}"

    def family_token(self) -> tuple:
        """Identity of the design family this recipe belongs to.

        Includes a hash of the kernel class's source *file* and of its
        instance state: the persisted recipe→family alias must stop
        matching when the kernel's lowering code (or a constructor
        parameter that shapes it) changes, not only when
        ``SCHEMA_VERSION`` is bumped.
        """
        cls = type(self.kernel)
        state = tuple(sorted(
            (k, repr(v)) for k, v in vars(self.kernel).items()
            if not k.startswith("_")
        ))
        return ("kernel-recipe", cls.__module__, cls.__qualname__,
                self.kernel.name, _kernel_code_token(self.kernel), state,
                tuple(self.grid))

    def point_token(self) -> tuple:
        return self.family_token() + (self.lanes,)

    def materialize(self) -> Module:
        """Lower (and cache) the member module."""
        if self._module is None:
            self._module = self.kernel.build_module(lanes=self.lanes, grid=tuple(self.grid))
        return self._module

    def __getstate__(self):
        state = self.__dict__.copy()
        state["_module"] = None  # workers re-lower only if their family is cold
        return state


# ----------------------------------------------------------------------
# Process-wide family caches (+ the persistent warm-start layer)
# ----------------------------------------------------------------------

_FAMILY_CACHE = BoundedCache(env_int("TYBEC_FAMILY_CACHE_SIZE", 256), name="family")
_RECIPE_INDEX = BoundedCache(env_int("TYBEC_FAMILY_CACHE_SIZE", 256), name="recipe")


def clear_family_caches() -> None:
    """Drop the in-process family caches (not the persistent store)."""
    _FAMILY_CACHE.clear()
    _RECIPE_INDEX.clear()


def family_cache_info() -> list[dict]:
    return [_FAMILY_CACHE.info(), _RECIPE_INDEX.info()]


def lookup_family(fingerprint: str, latency: tuple) -> FamilyAnalysis | None:
    """Find a family by fingerprint: memory first, then the disk store."""
    key = (fingerprint, latency)
    family = _FAMILY_CACHE.get(key)
    if family is not None:
        return family
    disk = default_disk_cache()
    if disk is not None:
        family = disk.get(_FAMILY_NAMESPACE, key)
        if family is not None:
            _FAMILY_CACHE.put(key, family)
    return family


def lookup_family_for_recipe(token: tuple, latency: tuple) -> FamilyAnalysis | None:
    """Find a family by sweep recipe without lowering any module."""
    key = (token, latency)
    fingerprint = _RECIPE_INDEX.get(key)
    if fingerprint is None:
        disk = default_disk_cache()
        if disk is not None:
            fingerprint = disk.get(_RECIPE_NAMESPACE, key)
            if fingerprint is not None:
                _RECIPE_INDEX.put(key, fingerprint)
    if fingerprint is None:
        return None
    return lookup_family(fingerprint, latency)


def register_family(family: FamilyAnalysis, recipe_token: tuple | None = None) -> None:
    """Publish a family to the in-process caches and the disk store."""
    key = (family.fingerprint, family.latency)
    _FAMILY_CACHE.put(key, family)
    disk = default_disk_cache()
    if disk is not None:
        disk.put(_FAMILY_NAMESPACE, key, family)
    if recipe_token is not None:
        register_recipe_alias(recipe_token, family)


def register_recipe_alias(recipe_token: tuple, family: FamilyAnalysis) -> None:
    """Map a sweep recipe to its family (idempotent, write-once).

    Called on every canonical analysis a handle triggers, so it must be
    cheap when the alias already exists — only a genuinely new alias
    touches the disk store.
    """
    index_key = (recipe_token, family.latency)
    if _RECIPE_INDEX.get(index_key) == family.fingerprint:
        return
    _RECIPE_INDEX.put(index_key, family.fingerprint)
    disk = default_disk_cache()
    if disk is not None:
        disk.put(_RECIPE_NAMESPACE, index_key, family.fingerprint)
