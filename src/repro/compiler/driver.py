"""The TyBEC compiler driver: parse → analyse → cost → (optionally) emit.

This is the prototype back-end compiler of §VI: it accepts a design
variant in TyTra-IR, produces the cost and performance estimates of
Figure 2, and can generate the HDL kernel code plus the HLS-framework
integration glue.  The estimation path is deliberately light-weight — the
paper reports ~0.3 s per variant against ~70 s for an HLS tool's
preliminary estimate — and the driver records its own wall-clock time so
the estimator-speed experiment can be reproduced.

The estimation flow itself lives in
:class:`repro.compiler.pipeline.EstimationPipeline`; the driver is the
facade that combines it with code generation and the ground-truth
substrates (synthesis, cycle simulation).
"""

from __future__ import annotations

from repro.compiler.codegen.verilog import VerilogGenerator
from repro.compiler.codegen.wrapper import generate_host_stub, generate_maxj_wrapper
from repro.compiler.pipeline import (
    CompilationOptions,
    CompiledVariant,
    EstimationPipeline,
)
from repro.cost.bandwidth import SustainedBandwidthModel
from repro.cost.calibration import DeviceCostDB
from repro.cost.report import CostReport
from repro.cost.resource_model import ModuleStructure
from repro.ir.functions import Module
from repro.ir.validator import validate_module
from repro.models.execution import KernelInstance
from repro.models.memory_execution import FormSelection, MemoryExecutionForm
from repro.models.streaming import AccessPattern, PatternKind
from repro.substrate.memory_sim import MemorySystemSimulator
from repro.substrate.pipeline_sim import PipelineSimulator, SimulationResult
from repro.substrate.synthesis import ResourceUsage, SyntheticSynthesizer
from repro.cost.throughput import EKITParameters

__all__ = ["CompilationOptions", "CompiledVariant", "TybecCompiler"]


class TybecCompiler:
    """Back-end compiler: costing and code generation for TyTra-IR designs."""

    def __init__(self, options: CompilationOptions | None = None):
        self.options = options or CompilationOptions()
        self.pipeline = EstimationPipeline(self.options)

    # ------------------------------------------------------------------
    # One-time per-device inputs (lazily built and process-wide cached)
    # ------------------------------------------------------------------
    @property
    def memory_simulator(self) -> MemorySystemSimulator:
        return self.pipeline.memory_simulator

    @property
    def cost_db(self) -> DeviceCostDB:
        return self.pipeline.cost_db

    @property
    def dram_bandwidth(self) -> SustainedBandwidthModel:
        return self.pipeline.dram_bandwidth

    @property
    def host_bandwidth(self) -> SustainedBandwidthModel:
        return self.pipeline.host_bandwidth

    # ------------------------------------------------------------------
    # Front door: parsing and analysis
    # ------------------------------------------------------------------
    def parse(self, text: str, name: str = "design") -> Module:
        return self.pipeline.parse(text, name)

    def analyze(self, module: Module) -> CompiledVariant:
        """Run the structural part of the estimation flow."""
        return self.pipeline.analyze(module)

    # ------------------------------------------------------------------
    # Parameter extraction and costing
    # ------------------------------------------------------------------
    def _select_form(self, footprint_bytes: int) -> FormSelection:
        return self.pipeline.select_form(footprint_bytes)

    def extract_parameters(
        self,
        variant: CompiledVariant,
        workload: KernelInstance,
        pattern: AccessPattern | PatternKind = PatternKind.CONTIGUOUS,
    ) -> tuple[EKITParameters, FormSelection]:
        """Derive the Table-I parameters for a variant and a workload."""
        return self.pipeline.extract_parameters(variant, workload, pattern)

    def cost(
        self,
        module: Module | str,
        workload: KernelInstance,
        pattern: AccessPattern | PatternKind = PatternKind.CONTIGUOUS,
    ) -> CostReport:
        """Cost one design variant for one workload (the Figure-2 use-case)."""
        return self.pipeline.cost(module, workload, pattern)

    def cost_many(self, jobs) -> list[CostReport]:
        """Cost a batch of (module, workload[, pattern]) jobs in order."""
        return self.pipeline.cost_many(jobs)

    # ------------------------------------------------------------------
    # Code generation
    # ------------------------------------------------------------------
    def emit_hdl(self, module: Module, include_wrapper: bool = True) -> dict[str, str]:
        """Generate synthesizeable HDL plus HLS-framework integration glue."""
        validate_module(module)
        structure = ModuleStructure.from_module(module)
        generator = VerilogGenerator(
            module, latency_model=self.options.latency_model, structure=structure
        )
        files = generator.generate_all()
        if include_wrapper:
            files[f"{module.name}_wrapper.maxj"] = generate_maxj_wrapper(module, structure)
            files[f"{module.name}_host.c"] = generate_host_stub(module, structure)
        return files

    # ------------------------------------------------------------------
    # Ground-truth helpers (the "actual" columns of Table II)
    # ------------------------------------------------------------------
    def synthesize_actual(self, variant: CompiledVariant) -> ResourceUsage:
        """Run the synthetic synthesiser on the compiled design."""
        synthesizer = SyntheticSynthesizer(self.options.device, self.options.synthesis_noise)
        netlist = variant.structure.to_netlist(
            balancing_register_bits=variant.balancing_register_bits
        )
        return synthesizer.synthesize_design(netlist)

    def simulate_actual(
        self,
        variant: CompiledVariant,
        workload: KernelInstance,
        pattern: AccessPattern | PatternKind = PatternKind.CONTIGUOUS,
    ) -> SimulationResult:
        """Cycle-simulate one kernel instance of the compiled design."""
        word_bytes = variant.pipeline_spec.element_bytes
        footprint = workload.global_size * variant.structure.words_per_item * word_bytes
        form = self._select_form(footprint).form
        access = (
            pattern
            if isinstance(pattern, AccessPattern)
            else AccessPattern.contiguous(word_bytes)
            if PatternKind(pattern) is PatternKind.CONTIGUOUS
            else AccessPattern.strided(2, word_bytes)
        )
        if form is MemoryExecutionForm.C:
            # data streams from on-chip block RAM: the memory system never
            # throttles the pipeline
            memory_gbps = None
        else:
            # steady-state DRAM bandwidth (launch/DMA setup is a per-instance
            # constant, not a rate limit on the stream)
            elements = max(1, footprint // word_bytes)
            seconds = self.memory_simulator.dram_stream_time(
                elements, word_bytes, access, include_setup=False
            )
            memory_gbps = footprint / seconds / 1e9 if seconds > 0 else None
        simulator = PipelineSimulator(self.memory_simulator if form is not MemoryExecutionForm.C else None)
        return simulator.run_kernel_instance(
            variant.pipeline_spec, workload.global_size, memory_gbps=memory_gbps
        )

    # ------------------------------------------------------------------
    def compile(
        self,
        module: Module | str,
        workload: KernelInstance,
        emit: bool = False,
    ) -> tuple[CostReport, dict[str, str]]:
        """Cost a variant and optionally emit its HDL in one call."""
        if isinstance(module, str):
            module = self.parse(module)
        report = self.cost(module, workload)
        files = self.emit_hdl(module) if emit else {}
        return report, files
