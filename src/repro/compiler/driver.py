"""The TyBEC compiler driver: parse → analyse → cost → (optionally) emit.

This is the prototype back-end compiler of §VI: it accepts a design
variant in TyTra-IR, produces the cost and performance estimates of
Figure 2, and can generate the HDL kernel code plus the HLS-framework
integration glue.  The estimation path is deliberately light-weight — the
paper reports ~0.3 s per variant against ~70 s for an HLS tool's
preliminary estimate — and the driver records its own wall-clock time so
the estimator-speed experiment can be reproduced.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.compiler.analysis import (
    ConfigurationTree,
    ModuleClassification,
    build_configuration_tree,
    classify_module,
)
from repro.compiler.codegen.verilog import VerilogGenerator
from repro.compiler.codegen.wrapper import generate_host_stub, generate_maxj_wrapper
from repro.compiler.scheduling import (
    OperatorLatencyModel,
    ScheduledPipeline,
    pipeline_spec_from_schedule,
    schedule_module,
)
from repro.cost.bandwidth import SustainedBandwidthModel
from repro.cost.calibration import DeviceCostDB, calibrate_device
from repro.cost.report import CostReport, FeasibilityCheck
from repro.cost.resource_model import ModuleResourceEstimate, ModuleStructure, ResourceEstimator
from repro.cost.throughput import EKITParameters, estimate_throughput
from repro.ir import parse_module
from repro.ir.functions import Module
from repro.ir.validator import validate_module
from repro.models.execution import KernelInstance
from repro.models.memory_execution import (
    FormSelection,
    MemoryExecutionForm,
    select_memory_execution_form,
)
from repro.models.streaming import AccessPattern, PatternKind
from repro.substrate.fpga_device import FPGADevice, MAIA_STRATIX_V_GSD8
from repro.substrate.memory_sim import MemorySystemSimulator
from repro.substrate.pipeline_sim import PipelineSimulator, PipelineSpec, SimulationResult
from repro.substrate.synthesis import ResourceUsage, SyntheticSynthesizer

__all__ = ["CompilationOptions", "CompiledVariant", "TybecCompiler"]


@dataclass
class CompilationOptions:
    """Configuration of a TyBEC compilation session.

    All empirically-derived inputs (the cost database and the bandwidth
    models) are built automatically from the substrate the first time they
    are needed and cached — mirroring the one-time per-device calibration
    of Figure 2 — but can be injected explicitly (e.g. the paper's own
    Figure-10 table).
    """

    device: FPGADevice = MAIA_STRATIX_V_GSD8
    clock_mhz: float | None = None
    cost_db: DeviceCostDB | None = None
    dram_bandwidth: SustainedBandwidthModel | None = None
    host_bandwidth: SustainedBandwidthModel | None = None
    latency_model: OperatorLatencyModel = field(default_factory=OperatorLatencyModel)
    form: str | MemoryExecutionForm = "auto"
    synthesis_noise: float = 0.025

    def resolved_clock_mhz(self) -> float:
        return self.clock_mhz if self.clock_mhz is not None else self.device.fmax_mhz


@dataclass
class CompiledVariant:
    """Everything the compiler derives from one design variant's IR."""

    module: Module
    structure: ModuleStructure
    configuration: ConfigurationTree
    classification: ModuleClassification
    schedules: dict[str, ScheduledPipeline]
    pipeline_spec: PipelineSpec

    @property
    def name(self) -> str:
        return self.module.name

    @property
    def lanes(self) -> int:
        return self.structure.lanes

    @property
    def pipeline_depth(self) -> int:
        return self.pipeline_spec.pipeline_depth

    @property
    def balancing_register_bits(self) -> int:
        return sum(s.balancing_register_bits + s.input_delay_bits for s in self.schedules.values())


class TybecCompiler:
    """Back-end compiler: costing and code generation for TyTra-IR designs."""

    def __init__(self, options: CompilationOptions | None = None):
        self.options = options or CompilationOptions()
        self._memory_sim: MemorySystemSimulator | None = None

    # ------------------------------------------------------------------
    # One-time per-device inputs (lazily built and cached)
    # ------------------------------------------------------------------
    @property
    def memory_simulator(self) -> MemorySystemSimulator:
        if self._memory_sim is None:
            self._memory_sim = MemorySystemSimulator(self.options.device)
        return self._memory_sim

    @property
    def cost_db(self) -> DeviceCostDB:
        if self.options.cost_db is None:
            synthesizer = SyntheticSynthesizer(self.options.device, self.options.synthesis_noise)
            self.options.cost_db = calibrate_device(
                synthesizer.characterize(), dsp_input_width=self.options.device.dsp_input_width
            )
        return self.options.cost_db

    @property
    def dram_bandwidth(self) -> SustainedBandwidthModel:
        if self.options.dram_bandwidth is None:
            self.options.dram_bandwidth = SustainedBandwidthModel.from_simulator(
                self.memory_simulator, name=f"{self.options.device.name}-dram"
            )
        return self.options.dram_bandwidth

    @property
    def host_bandwidth(self) -> SustainedBandwidthModel:
        if self.options.host_bandwidth is None:
            self.options.host_bandwidth = SustainedBandwidthModel.host_from_simulator(
                self.memory_simulator, name=f"{self.options.device.name}-host"
            )
        return self.options.host_bandwidth

    # ------------------------------------------------------------------
    # Front door: parsing and analysis
    # ------------------------------------------------------------------
    def parse(self, text: str, name: str = "design") -> Module:
        module = parse_module(text, name=name)
        validate_module(module)
        return module

    def analyze(self, module: Module) -> CompiledVariant:
        """Run the structural part of the estimation flow."""
        validate_module(module)
        structure = ModuleStructure.from_module(module)
        tree = build_configuration_tree(module)
        classification = classify_module(module)
        schedules = schedule_module(module, self.options.latency_model)
        spec = pipeline_spec_from_schedule(
            module, structure, schedules, clock_mhz=self.options.resolved_clock_mhz()
        )
        return CompiledVariant(
            module=module,
            structure=structure,
            configuration=tree,
            classification=classification,
            schedules=schedules,
            pipeline_spec=spec,
        )

    # ------------------------------------------------------------------
    # Parameter extraction and costing
    # ------------------------------------------------------------------
    def _select_form(self, footprint_bytes: int) -> FormSelection:
        if self.options.form != "auto":
            form = MemoryExecutionForm(self.options.form)
            return FormSelection(form, footprint_bytes, "forced by compilation options")
        return select_memory_execution_form(
            footprint_bytes, self.options.device.memory_hierarchy()
        )

    def extract_parameters(
        self,
        variant: CompiledVariant,
        workload: KernelInstance,
        pattern: AccessPattern | PatternKind = PatternKind.CONTIGUOUS,
    ) -> tuple[EKITParameters, FormSelection]:
        """Derive the Table-I parameters for a variant and a workload."""
        structure = variant.structure
        word_bytes = max(1, (structure.element_width + 7) // 8)
        nwpt = structure.words_per_item
        footprint = workload.global_size * nwpt * word_bytes
        selection = self._select_form(footprint)

        device = self.options.device
        dram = self.dram_bandwidth
        host = self.host_bandwidth
        params = EKITParameters.for_pipelined_design(
            hpb_gbps=host.peak_gbps,
            rho_h=host.rho(footprint),
            gpb_gbps=dram.peak_gbps,
            rho_g=dram.rho(footprint, pattern),
            ngs=workload.global_size,
            nwpt=nwpt,
            nki=workload.repetitions,
            noff=structure.max_offset_span_words,
            kpd=variant.pipeline_spec.pipeline_depth,
            fd_mhz=self.options.resolved_clock_mhz(),
            ni=structure.instructions_per_pe,
            knl=structure.lanes,
            dv=variant.pipeline_spec.vectorization,
            initiation_interval=1.0,
            word_bytes=word_bytes,
        )
        _ = device
        return params, selection

    def _feasibility(
        self,
        estimate: ModuleResourceEstimate,
        params: EKITParameters,
        form: MemoryExecutionForm,
    ) -> FeasibilityCheck:
        usage = estimate.total
        device = self.options.device
        limiting, util = usage.limiting_resource(device)

        # bandwidth demanded when the pipelines run at full rate
        words_per_second = params.knl * params.dv * params.fd_hz
        full_rate = words_per_second * params.nwpt * params.word_bytes / 1e9
        if form is MemoryExecutionForm.C:
            # data resident in on-chip local memory: DRAM only sees the
            # one-off staging transfer, which is never the constraint
            required_dram = 0.0
            required_host = full_rate / params.nki
        elif form is MemoryExecutionForm.B:
            required_dram = full_rate
            required_host = full_rate / params.nki
        else:
            required_dram = full_rate
            required_host = full_rate
        return FeasibilityCheck(
            fits_resources=usage.fits(device),
            limiting_resource=limiting,
            limiting_resource_utilization=util,
            required_dram_gbps=required_dram,
            available_dram_gbps=params.sustained_dram_gbps,
            required_host_gbps=required_host,
            available_host_gbps=params.sustained_host_gbps,
        )

    def cost(
        self,
        module: Module | str,
        workload: KernelInstance,
        pattern: AccessPattern | PatternKind = PatternKind.CONTIGUOUS,
    ) -> CostReport:
        """Cost one design variant for one workload (the Figure-2 use-case)."""
        # make sure the one-time inputs are ready so they are not billed to
        # the per-variant estimation time (the paper's 0.3 s figure is per
        # variant, with calibration done once per device)
        _ = self.cost_db, self.dram_bandwidth, self.host_bandwidth

        started = time.perf_counter()
        if isinstance(module, str):
            module = self.parse(module)
        variant = self.analyze(module)
        estimator = ResourceEstimator(self.cost_db)
        resources = estimator.estimate_module(module)
        # the estimation flow of Figure 11 also accounts for the data/control
        # delay lines the scheduler implies (pipeline balancing registers),
        # replicated once per lane
        balancing = ResourceUsage(
            reg=variant.balancing_register_bits * variant.structure.lanes
        )
        resources.total += balancing
        params, selection = self.extract_parameters(variant, workload, pattern)
        throughput = estimate_throughput(params, selection.form)
        feasibility = self._feasibility(resources, params, selection.form)
        elapsed = time.perf_counter() - started

        return CostReport(
            design=module.name,
            device=self.options.device,
            resources=resources,
            throughput=throughput,
            feasibility=feasibility,
            estimation_seconds=elapsed,
            notes=[f"memory-execution form {selection.form.value}: {selection.reason}"],
        )

    # ------------------------------------------------------------------
    # Code generation
    # ------------------------------------------------------------------
    def emit_hdl(self, module: Module, include_wrapper: bool = True) -> dict[str, str]:
        """Generate synthesizeable HDL plus HLS-framework integration glue."""
        validate_module(module)
        structure = ModuleStructure.from_module(module)
        generator = VerilogGenerator(
            module, latency_model=self.options.latency_model, structure=structure
        )
        files = generator.generate_all()
        if include_wrapper:
            files[f"{module.name}_wrapper.maxj"] = generate_maxj_wrapper(module, structure)
            files[f"{module.name}_host.c"] = generate_host_stub(module, structure)
        return files

    # ------------------------------------------------------------------
    # Ground-truth helpers (the "actual" columns of Table II)
    # ------------------------------------------------------------------
    def synthesize_actual(self, variant: CompiledVariant) -> ResourceUsage:
        """Run the synthetic synthesiser on the compiled design."""
        synthesizer = SyntheticSynthesizer(self.options.device, self.options.synthesis_noise)
        netlist = variant.structure.to_netlist(
            balancing_register_bits=variant.balancing_register_bits
        )
        return synthesizer.synthesize_design(netlist)

    def simulate_actual(
        self,
        variant: CompiledVariant,
        workload: KernelInstance,
        pattern: AccessPattern | PatternKind = PatternKind.CONTIGUOUS,
    ) -> SimulationResult:
        """Cycle-simulate one kernel instance of the compiled design."""
        word_bytes = variant.pipeline_spec.element_bytes
        footprint = workload.global_size * variant.structure.words_per_item * word_bytes
        form = self._select_form(footprint).form
        access = (
            pattern
            if isinstance(pattern, AccessPattern)
            else AccessPattern.contiguous(word_bytes)
            if PatternKind(pattern) is PatternKind.CONTIGUOUS
            else AccessPattern.strided(2, word_bytes)
        )
        if form is MemoryExecutionForm.C:
            # data streams from on-chip block RAM: the memory system never
            # throttles the pipeline
            memory_gbps = None
        else:
            # steady-state DRAM bandwidth (launch/DMA setup is a per-instance
            # constant, not a rate limit on the stream)
            elements = max(1, footprint // word_bytes)
            seconds = self.memory_simulator.dram_stream_time(
                elements, word_bytes, access, include_setup=False
            )
            memory_gbps = footprint / seconds / 1e9 if seconds > 0 else None
        simulator = PipelineSimulator(self.memory_simulator if form is not MemoryExecutionForm.C else None)
        return simulator.run_kernel_instance(
            variant.pipeline_spec, workload.global_size, memory_gbps=memory_gbps
        )

    # ------------------------------------------------------------------
    def compile(
        self,
        module: Module | str,
        workload: KernelInstance,
        emit: bool = False,
    ) -> tuple[CostReport, dict[str, str]]:
        """Cost a variant and optionally emit its HDL in one call."""
        if isinstance(module, str):
            module = self.parse(module)
        report = self.cost(module, workload)
        files = self.emit_hdl(module) if emit else {}
        return report, files
