"""Configuration analysis: from the IR's function hierarchy to the
configuration tree (paper Figure 8) and the design-space classification.

The TyTra compiler parses the parallelism constructs of the IR (``pipe``,
``par``, ``seq``, ``comb``) and extracts the architecture they imply.  The
result is a *configuration tree* whose root is the entry function and
whose children are the instantiated kernels; replication under a ``par``
node corresponds to thread-parallel lanes, nesting of ``pipe`` nodes to
coarse-grained pipelines and ``comb`` leaves to single-cycle custom
combinatorial blocks.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cost.resource_model import ModuleStructure
from repro.ir.functions import FunctionKind, Module
from repro.models.design_space import ConfigurationClass, DesignPoint, classify_design_point

__all__ = [
    "ConfigurationNode",
    "ConfigurationTree",
    "build_configuration_tree",
    "classify_from_parts",
    "classify_module",
    "ModuleClassification",
]


@dataclass
class ConfigurationNode:
    """One instantiated function in the configuration hierarchy."""

    function: str
    kind: FunctionKind
    instance: int = 0
    children: list["ConfigurationNode"] = field(default_factory=list)

    @property
    def is_leaf(self) -> bool:
        return not self.children

    def count(self, kind: FunctionKind) -> int:
        total = 1 if self.kind is kind else 0
        return total + sum(child.count(kind) for child in self.children)

    def leaves(self) -> list["ConfigurationNode"]:
        if self.is_leaf:
            return [self]
        out: list[ConfigurationNode] = []
        for child in self.children:
            out.extend(child.leaves())
        return out

    def depth(self) -> int:
        if self.is_leaf:
            return 1
        return 1 + max(child.depth() for child in self.children)


@dataclass
class ConfigurationTree:
    """The whole configuration extracted from a module."""

    module_name: str
    root: ConfigurationNode

    def leaves(self) -> list[ConfigurationNode]:
        return self.root.leaves()

    def count(self, kind: FunctionKind | str) -> int:
        return self.root.count(FunctionKind(kind))

    def depth(self) -> int:
        return self.root.depth()

    def lanes(self) -> int:
        """Parallel lanes: the widest ``par`` fan-out in the tree (1 if none)."""
        widest = 1

        def visit(node: ConfigurationNode) -> None:
            nonlocal widest
            if node.kind is FunctionKind.PAR:
                widest = max(widest, len(node.children))
            for child in node.children:
                visit(child)

        visit(self.root)
        return widest

    # -- rendering ---------------------------------------------------------
    def to_text(self) -> str:
        """ASCII rendering of the tree (the reproduction of Figure 8)."""
        lines: list[str] = [f"configuration of {self.module_name!r}"]

        def visit(node: ConfigurationNode, prefix: str, is_last: bool) -> None:
            connector = "`-- " if is_last else "|-- "
            label = f"@{node.function} [{node.kind}]"
            if node.instance:
                label += f" #{node.instance}"
            lines.append(prefix + connector + label)
            child_prefix = prefix + ("    " if is_last else "|   ")
            for i, child in enumerate(node.children):
                visit(child, child_prefix, i == len(node.children) - 1)

        lines.append(f"@{self.root.function} [{self.root.kind}]")
        for i, child in enumerate(self.root.children):
            visit(child, "", i == len(self.root.children) - 1)
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.to_text()


def build_configuration_tree(module: Module) -> ConfigurationTree:
    """Extract the configuration tree implied by the IR's call hierarchy."""
    instance_counters: dict[str, int] = {}

    def visit(name: str) -> ConfigurationNode:
        func = module.get_function(name)
        index = instance_counters.get(name, 0)
        instance_counters[name] = index + 1
        node = ConfigurationNode(function=name, kind=func.kind, instance=index)
        for call in func.calls():
            node.children.append(visit(call.callee))
        return node

    return ConfigurationTree(module_name=module.name, root=visit(module.main))


@dataclass(frozen=True)
class ModuleClassification:
    """The design-space coordinates and class of a module."""

    design_point: DesignPoint
    configuration_class: ConfigurationClass
    lanes: int
    pipelined: bool


def classify_from_parts(
    module: Module,
    tree: ConfigurationTree,
    structure: ModuleStructure,
    vectorization: int = 1,
) -> ModuleClassification:
    """Classify a variant from already-computed analysis products.

    The estimation pipeline computes the configuration tree and the
    module structure anyway; passing them in keeps classification from
    re-deriving both (a pure function of their values, so the result is
    identical to :func:`classify_module`'s).
    """
    pipelined = any(
        module.get_function(leaf.function).kind in (FunctionKind.PIPE, FunctionKind.COMB)
        for leaf in tree.leaves()
    )
    has_seq = tree.count(FunctionKind.SEQ) > 0
    point = DesignPoint(
        pipelined=pipelined,
        lanes=structure.lanes,
        vectorization=vectorization,
        reuse_factor=2 if has_seq else 1,
    )
    return ModuleClassification(
        design_point=point,
        configuration_class=classify_design_point(point),
        lanes=structure.lanes,
        pipelined=pipelined,
    )


def classify_module(module: Module, vectorization: int = 1) -> ModuleClassification:
    """Locate a design variant in the design-space model of Figure 5."""
    tree = build_configuration_tree(module)
    structure = ModuleStructure.from_module(module)
    return classify_from_parts(module, tree, structure, vectorization)
