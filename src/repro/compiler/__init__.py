"""The TyBEC back-end compiler (paper §VI, Figure 11).

The back-end compiler accepts a design variant in TyTra-IR, costs it and,
if needed, generates HDL code for it.  The estimation flow (the blue
stages of Figure 11) is:

1. parse memory and stream objects, accumulate their resource estimates;
2. analyse the function hierarchy and determine the configuration
   (:mod:`repro.compiler.analysis` — the tree of Figure 8);
3. parse the functions recursively — SSA instructions, implied offset
   buffers and counters — and accumulate costs
   (:mod:`repro.cost.resource_model`);
4. estimate the throughput for the configuration type
   (:mod:`repro.cost.throughput`).

The code-generation flow (the yellow stages) schedules the SSA
instructions, creates data/control delay lines, connects functional units
into a pipeline (:mod:`repro.compiler.scheduling`) and emits
synthesizeable HDL plus an HLS-framework wrapper
(:mod:`repro.compiler.codegen`).

:class:`repro.compiler.driver.TybecCompiler` orchestrates both flows.
"""

from repro.compiler.analysis import (
    ConfigurationNode,
    ConfigurationTree,
    build_configuration_tree,
    classify_module,
)
from repro.compiler.scheduling import (
    DataflowGraph,
    OperatorLatencyModel,
    ScheduledPipeline,
    schedule_function,
)
from repro.compiler.lanescale import (
    FamilyAnalysis,
    LaneFamilyHandle,
    check_lane_separable,
    family_fingerprint,
)
from repro.compiler.pipeline import (
    CalibrationArtifacts,
    EstimationPipeline,
    PipelineCacheStats,
    clear_calibration_cache,
    module_content_key,
    pipeline_cache_info,
)
from repro.compiler.driver import CompilationOptions, CompiledVariant, TybecCompiler

__all__ = [
    "ConfigurationNode",
    "ConfigurationTree",
    "build_configuration_tree",
    "classify_module",
    "DataflowGraph",
    "OperatorLatencyModel",
    "ScheduledPipeline",
    "schedule_function",
    "CompilationOptions",
    "CompiledVariant",
    "TybecCompiler",
    "CalibrationArtifacts",
    "EstimationPipeline",
    "PipelineCacheStats",
    "module_content_key",
    "FamilyAnalysis",
    "LaneFamilyHandle",
    "check_lane_separable",
    "family_fingerprint",
    "clear_calibration_cache",
    "pipeline_cache_info",
]
