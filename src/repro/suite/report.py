"""Canonical, deterministic suite reports.

A suite report is the JSON artifact the golden-regression harness pins:
re-running the same suite configuration on the same code must produce a
byte-identical file, and any cost-model change must show up as a
field-level difference.  Three properties make that work:

* **stable key ordering** — every mapping is serialised with sorted keys;
* **no wall-clock fields** — per-variant ``estimation_seconds`` is
  stripped (the engine's ``canonical_report_dict``), and the suite adds
  no timestamps;
* **float normalisation** — floats are rounded to 9 significant digits,
  which is far finer than any genuine model change yet coarse enough to
  absorb cross-platform BLAS/libm jitter in the calibration fits.

Every report is stamped with a schema version so the ``diff`` machinery
can refuse to compare incompatible layouts instead of reporting noise.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

__all__ = [
    "SCHEMA",
    "VALIDATION_SCHEMA",
    "FLOW_SCHEMA",
    "DSE_SCHEMA",
    "KNOWN_SCHEMAS",
    "FLOAT_SIGNIFICANT_DIGITS",
    "canonicalize",
    "canonical_json",
    "canonical_json_line",
    "SuiteReport",
    "load_report",
]

#: schema stamp of the suite-report JSON layout
SCHEMA = "repro-suite-report/1"

#: schema stamp of the cross-validation report layout (see :mod:`repro.validate`)
VALIDATION_SCHEMA = "repro-validation-report/1"

#: schema stamp of the RTL flow report layout (see :mod:`repro.flows`)
FLOW_SCHEMA = "repro-flow-report/1"

#: schema stamp of the optimizer-driven DSE report layout (per-round
#: provenance + each optimizer's own result summary; see
#: :func:`repro.suite.runner.run_dse`)
DSE_SCHEMA = "repro-dse-report/1"

#: every canonical-report layout this codebase knows how to load and diff
KNOWN_SCHEMAS = (SCHEMA, VALIDATION_SCHEMA, FLOW_SCHEMA, DSE_SCHEMA)

#: significant digits kept for floats in canonical payloads
FLOAT_SIGNIFICANT_DIGITS = 9


def canonicalize(value, float_digits: int = FLOAT_SIGNIFICANT_DIGITS):
    """Normalise a JSON-ish payload for deterministic serialisation.

    Floats are rounded to ``float_digits`` significant digits (integral
    floats stay floats, so the JSON type of a field never flips), tuples
    become lists, and mappings are rebuilt with sorted keys.
    """
    if isinstance(value, bool) or value is None or isinstance(value, (int, str)):
        return value
    if isinstance(value, float):
        return float(f"{value:.{float_digits}g}")
    if isinstance(value, dict):
        return {str(k): canonicalize(v, float_digits) for k, v in sorted(value.items())}
    if isinstance(value, (list, tuple)):
        return [canonicalize(v, float_digits) for v in value]
    raise TypeError(f"cannot canonicalise {type(value).__name__!r} value {value!r}")


def canonical_json(payload) -> str:
    """The canonical serialisation: sorted keys, 2-space indent, newline."""
    return json.dumps(canonicalize(payload), sort_keys=True, indent=2) + "\n"


def canonical_json_line(payload) -> str:
    """One canonical NDJSON line: same normalisation, no indentation.

    This is the streaming sibling of :func:`canonical_json` — the
    exploration service emits one line per event (progress entries, then
    the final report), and clients that concatenate the ``report`` event's
    payload back through :func:`canonical_json` recover the byte-identical
    file a batch run would have written.
    """
    return json.dumps(canonicalize(payload), sort_keys=True,
                      separators=(",", ":")) + "\n"


@dataclass
class SuiteReport:
    """A version-stamped suite report, ready to serialise or diff."""

    payload: dict

    @property
    def schema(self) -> str:
        return self.payload.get("schema", "")

    @property
    def kernels(self) -> dict:
        return self.payload.get("kernels", {})

    @property
    def totals(self) -> dict:
        return self.payload.get("totals", {})

    def kernel_payload(self, name: str) -> dict:
        """The standalone single-kernel payload (used for per-kernel goldens).

        Only the *shared sweep axes* of the config are embedded — the
        whole-suite fields (``kernels``, ``grids``, ``iterations``) are
        dropped, because the kernel's own workload is already pinned
        under ``kernels[name]["workload"]``.  This keeps a per-kernel
        golden independent of which *other* kernels are registered or
        selected: recording a subset and recording the full suite produce
        byte-identical files, and adding a seventh kernel to the registry
        does not invalidate the six existing goldens.
        """
        if name not in self.kernels:
            raise KeyError(f"suite report has no kernel {name!r}; "
                           f"available: {sorted(self.kernels)}")
        config = {k: v for k, v in self.payload["config"].items()
                  if k not in ("kernels", "grids", "iterations")}
        return {
            "schema": self.payload["schema"],
            "config": config,
            "kernels": {name: self.kernels[name]},
        }

    def canonical_dict(self) -> dict:
        return canonicalize(self.payload)

    def to_json(self) -> str:
        return canonical_json(self.payload)

    def write(self, path: Path | str) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.to_json())
        return path


def load_report(path: Path | str, expected_schema: str | None = None) -> dict:
    """Load a canonical-report payload, checking the schema stamp.

    ``expected_schema`` pins one layout (e.g. the golden harnesses, which
    know exactly what they recorded); by default any known layout loads,
    which is what ``suite diff`` wants — it compares two reports of the
    *same* layout, whichever that is.
    """
    payload = json.loads(Path(path).read_text())
    if not isinstance(payload, dict) or "schema" not in payload:
        raise ValueError(f"{path}: not a suite report (no schema stamp)")
    accepted = KNOWN_SCHEMAS if expected_schema is None else (expected_schema,)
    if payload["schema"] not in accepted:
        raise ValueError(
            f"{path}: schema {payload['schema']!r} is not one of the "
            f"supported {', '.join(repr(s) for s in accepted)}"
        )
    return payload
