"""The workload-suite subsystem: batch costing, canonical reports, goldens.

This package turns "add a scenario and trust its numbers" into a
first-class workflow on top of the exploration engine:

``runner``
    :class:`SuiteConfig` / :class:`WorkloadSuite` — enumerate kernel x
    device x form x lane (x clock x pattern) grids over every registered
    kernel and cost them in one engine batch (serial or process-pool).
``report``
    Canonical, deterministic, version-stamped JSON suite reports (stable
    key order, no wall-clock fields, normalised floats).
``diff``
    Field-by-field payload diffing with full paths — the regression
    primitive behind ``suite diff`` and the golden tests.
``golden``
    The golden-report harness: record ``tests/golden/*.json`` once,
    re-run and diff on every test run, regenerate explicitly via
    ``suite record-golden`` when a change is intentional.
"""

from repro.suite.report import (
    DSE_SCHEMA,
    FLOAT_SIGNIFICANT_DIGITS,
    SCHEMA,
    SuiteReport,
    canonical_json,
    canonicalize,
    load_report,
)
from repro.suite.diff import FieldDiff, diff_payloads, format_diffs
from repro.suite.runner import (
    DSE_OPTIMIZERS,
    DseRun,
    SuiteConfig,
    SuiteRun,
    WorkloadSuite,
    build_dse_report,
    resolve_dse_params,
    run_dse,
    tiny_grid,
)
from repro.suite.golden import (
    check_goldens,
    golden_config,
    golden_dir,
    record_goldens,
    run_golden_suite,
)

__all__ = [
    "SCHEMA",
    "DSE_SCHEMA",
    "DSE_OPTIMIZERS",
    "DseRun",
    "run_dse",
    "build_dse_report",
    "resolve_dse_params",
    "FLOAT_SIGNIFICANT_DIGITS",
    "SuiteReport",
    "canonicalize",
    "canonical_json",
    "load_report",
    "FieldDiff",
    "diff_payloads",
    "format_diffs",
    "SuiteConfig",
    "SuiteRun",
    "WorkloadSuite",
    "tiny_grid",
    "golden_config",
    "golden_dir",
    "run_golden_suite",
    "record_goldens",
    "check_goldens",
]
