"""Field-by-field diffing of canonical suite reports.

The diff walks two payloads in parallel and reports every leaf-level
difference with its full path (``kernels.sor.entries[3].report.
throughput.ekit_per_s``), so a cost-model regression points straight at
the quantity that moved.  An optional relative tolerance lets callers
accept bounded float drift; the golden harness uses the default of exact
equality on the canonically-rounded values.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.suite.report import canonicalize

__all__ = ["FieldDiff", "diff_payloads", "format_diffs"]


@dataclass(frozen=True)
class FieldDiff:
    """One leaf-level difference between two payloads."""

    path: str
    kind: str            # 'changed' | 'added' | 'removed' | 'type'
    left: object = None
    right: object = None

    def __str__(self) -> str:
        if self.kind == "added":
            return f"{self.path}: only in right ({self.right!r})"
        if self.kind == "removed":
            return f"{self.path}: only in left ({self.left!r})"
        return f"{self.path}: {self.left!r} != {self.right!r}"


def _floats_close(a: float, b: float, rtol: float) -> bool:
    if a == b:
        return True
    if rtol <= 0:
        return False
    scale = max(abs(a), abs(b))
    return abs(a - b) <= rtol * scale


def _walk(left, right, path: str, rtol: float, out: list[FieldDiff]) -> None:
    if isinstance(left, dict) and isinstance(right, dict):
        for key in sorted(set(left) | set(right)):
            sub = f"{path}.{key}" if path else str(key)
            if key not in left:
                out.append(FieldDiff(sub, "added", right=right[key]))
            elif key not in right:
                out.append(FieldDiff(sub, "removed", left=left[key]))
            else:
                _walk(left[key], right[key], sub, rtol, out)
        return
    if isinstance(left, list) and isinstance(right, list):
        for index in range(max(len(left), len(right))):
            sub = f"{path}[{index}]"
            if index >= len(left):
                out.append(FieldDiff(sub, "added", right=right[index]))
            elif index >= len(right):
                out.append(FieldDiff(sub, "removed", left=left[index]))
            else:
                _walk(left[index], right[index], sub, rtol, out)
        return
    # leaves: bool is checked before numbers (True != 1.0 is a type diff),
    # and an int/float flip is a type diff too — the canonical JSON bytes
    # change even when the values compare equal, so it must not pass silently
    if (
        isinstance(left, bool) != isinstance(right, bool)
        or isinstance(left, (int, float)) != isinstance(right, (int, float))
        or isinstance(left, float) != isinstance(right, float)
    ):
        out.append(FieldDiff(path, "type", left=left, right=right))
        return
    if isinstance(left, float) and isinstance(right, float):
        if not _floats_close(left, right, rtol):
            out.append(FieldDiff(path, "changed", left=left, right=right))
        return
    if left != right:
        out.append(FieldDiff(path, "changed", left=left, right=right))


def diff_payloads(left, right, rtol: float = 0.0) -> list[FieldDiff]:
    """All leaf-level differences between two payloads (empty = identical).

    Both sides are canonicalised first, so a payload fresh from the
    engine diffs cleanly against one that went through a JSON round-trip.
    """
    out: list[FieldDiff] = []
    _walk(canonicalize(left), canonicalize(right), "", rtol, out)
    return out


def format_diffs(diffs: list[FieldDiff], limit: int = 20) -> str:
    """Human-readable rendering of a diff list (truncated at ``limit``)."""
    if not diffs:
        return "reports are identical"
    lines = [f"{len(diffs)} field difference(s):"]
    lines.extend(f"  {d}" for d in diffs[:limit])
    if len(diffs) > limit:
        lines.append(f"  ... and {len(diffs) - limit} more")
    return "\n".join(lines)
