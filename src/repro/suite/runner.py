"""The workload suite: batch-costing every registered kernel.

The roofline-style DSE literature shows value by sweeping *many* kernels
per device; this module makes that a first-class operation.  A
:class:`SuiteConfig` names the kernels (default: every kernel in the
registry) and the sweep axes (device x memory-execution form x lanes
x clock x access pattern); :class:`WorkloadSuite` lowers that grid into
one flat job batch, drives the exploration engine — serial or
process-pool, the reports are byte-identical either way — and folds the
results into a canonical :class:`~repro.suite.report.SuiteReport`.

The suite is what both the golden-regression harness and the
``BENCH_suite`` throughput benchmark are built on: one costs the report
against checked-in goldens, the other times the batch.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.explore.engine import ExplorationEngine, SweepResult
from repro.explore.space import DesignSpace, build_jobs
from repro.kernels import REGISTRY, KernelWorkload, get_kernel
from repro.models.streaming import PatternKind
from repro.obs.profile import maybe_profile
from repro.obs.trace import span as trace_span
from repro.suite.report import DSE_SCHEMA, SCHEMA, SuiteReport
from repro.substrate import get_device

__all__ = ["SuiteConfig", "SuiteRun", "WorkloadSuite", "build_suite_report",
           "tiny_grid", "DseRun", "run_dse", "build_dse_report",
           "resolve_dse_params", "DSE_OPTIMIZERS"]


def tiny_grid(default_grid: tuple[int, ...], cap: int = 8) -> tuple[int, ...]:
    """Shrink a kernel's default grid to a smoke-test size (each dim <= cap)."""
    return tuple(min(int(d), cap) for d in default_grid)


@dataclass(frozen=True)
class SuiteConfig:
    """Declarative description of one suite run.

    Empty axis tuples mean "the default": every registered kernel, the
    device's fmax clock, the kernel's default grid and iteration count.
    Grids and iterations are validated through :class:`KernelWorkload`,
    so a malformed override fails before any costing starts.
    """

    kernels: tuple[str, ...] = ()
    devices: tuple[str, ...] = ("stratix-v",)
    lanes: tuple[int, ...] | None = None
    max_lanes: int = 4
    forms: tuple[str, ...] = ("auto",)
    patterns: tuple[str, ...] = ("contiguous",)
    clocks_mhz: tuple[float, ...] = ()
    #: per-kernel grid overrides; kernels not named use their default grid
    grids: dict = field(default_factory=dict)
    #: iteration override applied to every kernel (None = kernel default)
    iterations: int | None = None

    # ------------------------------------------------------------------
    @classmethod
    def tiny(cls, kernels: tuple[str, ...] = (), devices: tuple[str, ...] = ("stratix-v",),
             max_lanes: int = 4) -> "SuiteConfig":
        """The smoke-test configuration: every kernel on a tiny grid.

        This is also the *golden* configuration — small enough that the
        whole six-kernel suite costs in well under a second, yet it
        exercises the full parse -> analyse -> resource -> throughput ->
        feasibility flow of every kernel.
        """
        names = tuple(cls(kernels=tuple(kernels)).resolved_kernels())
        grids = {name: tiny_grid(REGISTRY[name].default_grid) for name in names}
        return cls(kernels=names, devices=tuple(devices), max_lanes=max_lanes,
                   grids=grids, iterations=10)

    # ------------------------------------------------------------------
    def resolved_kernels(self) -> list[str]:
        names = list(self.kernels) if self.kernels else REGISTRY.names()
        unknown = [n for n in names if n.lower() not in REGISTRY]
        if unknown:
            raise KeyError(f"unknown kernels {unknown}; available: {REGISTRY.names()}")
        return sorted(n.lower() for n in names)

    def workload_for(self, name: str) -> KernelWorkload:
        """The validated (kernel, grid, iterations) triple of one kernel."""
        name = name.lower()
        kernel_cls = REGISTRY[name]
        grids = {k.lower(): v for k, v in self.grids.items()}
        grid = tuple(grids.get(name, kernel_cls.default_grid))
        iterations = self.iterations if self.iterations is not None \
            else kernel_cls.default_iterations
        return KernelWorkload(kernel=name, grid=grid, iterations=iterations)

    def space_for(self, name: str) -> DesignSpace:
        """The design space the suite sweeps for one kernel."""
        workload = self.workload_for(name)
        return DesignSpace(
            kernel=get_kernel(name),
            grid=workload.grid,
            iterations=workload.iterations,
            lanes=list(self.lanes) if self.lanes is not None else None,
            max_lanes=self.max_lanes,
            clocks_mhz=tuple(self.clocks_mhz) or (None,),
            forms=tuple(self.forms),
            devices=tuple(get_device(d) for d in self.devices),
            patterns=tuple(PatternKind(p) for p in self.patterns),
        )

    def as_dict(self) -> dict:
        return {
            "kernels": self.resolved_kernels(),
            "devices": list(self.devices),
            "lanes": list(self.lanes) if self.lanes is not None else None,
            "max_lanes": self.max_lanes,
            "forms": list(self.forms),
            "patterns": list(self.patterns),
            "clocks_mhz": list(self.clocks_mhz),
            "grids": {k.lower(): list(v) for k, v in sorted(self.grids.items())},
            "iterations": self.iterations,
        }


@dataclass
class SuiteRun:
    """Outcome of one suite run: the canonical report plus batch timing.

    Timing lives *outside* the report on purpose — the report must be
    deterministic, the timing is what ``BENCH_suite.json`` records.
    """

    report: SuiteReport
    sweep: SweepResult

    @property
    def evaluated(self) -> int:
        return self.sweep.evaluated

    @property
    def wall_seconds(self) -> float:
        return self.sweep.wall_seconds

    @property
    def variants_per_second(self) -> float:
        return self.sweep.variants_per_second

    @property
    def stats(self) -> dict:
        """Aggregated pipeline cache/timing statistics of the batch.

        Lives outside the canonical report on purpose: hit rates and wall
        times are facts about one run, not about the cost model.
        """
        return self.sweep.stats


def build_suite_report(config: SuiteConfig, spaces: dict[str, DesignSpace],
                       sweep: SweepResult) -> SuiteReport:
    """Fold one completed sweep into the canonical suite report.

    Shared by :meth:`WorkloadSuite.run` and the exploration service so a
    report served over HTTP is byte-identical to the one a batch run (or
    ``tybec suite run``) writes for the same configuration — the
    acceptance criterion the golden harness and the coalescing tests both
    pin.
    """
    kernels: dict[str, dict] = {}
    feasible_total = 0
    for name, entries in WorkloadSuite.kernel_entries(spaces, sweep).items():
        count = len(entries)
        workload = config.workload_for(name)
        best = None
        feasible = [e for e in entries if e.report.feasible]
        feasible_total += len(feasible)
        if feasible:
            best = max(feasible, key=lambda e: e.report.ekit).point.as_dict()
        kernels[name] = {
            "workload": {"grid": list(workload.grid),
                         "iterations": workload.iterations},
            "points": count,
            "feasible_points": len(feasible),
            "best": best,
            "entries": [e.as_dict() for e in entries],
        }

    payload = {
        "schema": SCHEMA,
        "config": config.as_dict(),
        "kernels": kernels,
        "totals": {
            "kernels": len(kernels),
            "points": sweep.evaluated,
            "feasible": feasible_total,
        },
    }
    return SuiteReport(payload)


class WorkloadSuite:
    """Enumerate kernel x device x form x lane grids and cost them in batch."""

    def __init__(self, config: SuiteConfig | None = None, backend=None):
        self.config = config or SuiteConfig()
        self.engine = ExplorationEngine(backend)

    # ------------------------------------------------------------------
    def spaces(self) -> dict[str, DesignSpace]:
        """One design space per kernel, in sorted kernel order."""
        return {name: self.config.space_for(name) for name in self.config.resolved_kernels()}

    def jobs(self, spaces: dict[str, DesignSpace] | None = None):
        """The flat, deterministic job batch over all kernels."""
        jobs = []
        for space in (spaces or self.spaces()).values():
            jobs.extend(build_jobs(space))
        return jobs

    def total_points(self) -> int:
        return sum(len(space) for space in self.spaces().values())

    @staticmethod
    def kernel_entries(spaces: dict[str, DesignSpace], sweep: SweepResult):
        """Per-kernel slices of a sweep over ``spaces``, in sweep order.

        The engine flattens the per-kernel job batches into one sweep;
        this is the inverse — shared by the suite report builder and the
        cross-validation subsystem so both agree on which entries belong
        to which kernel.
        """
        slices: dict[str, list] = {}
        cursor = 0
        for name, space in spaces.items():
            count = len(space)
            slices[name] = sweep.entries[cursor : cursor + count]
            cursor += count
        return slices

    # ------------------------------------------------------------------
    def sweep(self, deadline=None) -> tuple[dict[str, DesignSpace], SweepResult]:
        """Cost every point of every kernel in one engine batch.

        A backend with a dense lowering evaluates each kernel's space as
        one broadcast pass (kernels that are not lane-separable fall back
        to the per-point oracle, per space); entry order and report bytes
        are identical either way.  A ``deadline`` is checked per design
        point on the per-point path and per kernel space on the dense one
        (a broadcast pass is a single vectorized evaluation — there is no
        finer-grained boundary to interrupt it at).
        """
        with trace_span("suite.sweep", kernels=len(self.config.kernels)), \
                maybe_profile("suite.sweep"):
            return self._sweep(deadline)

    def _sweep(self, deadline=None) -> tuple[dict[str, DesignSpace], SweepResult]:
        spaces = self.spaces()
        dense = getattr(self.engine.backend, "explore_space", None)
        if dense is None:
            jobs = self.jobs(spaces)
            if not jobs:
                raise ValueError(
                    "suite has no design points (no valid lane counts for the "
                    "configured grids?)"
                )
            return spaces, self.engine.cost_many(jobs, deadline=deadline)

        from repro.cost.vector import DenseUnsupportedError

        entries: list = []
        wall = 0.0
        total = 0
        for space in spaces.values():
            if len(space) == 0:
                continue
            if deadline is not None:
                deadline.check(f"dense sweep of {space.kernel.name}")
            total += len(space)
            try:
                result = dense(space).materialize_all()
            except DenseUnsupportedError:
                result = self.engine.cost_many(build_jobs(space),
                                               deadline=deadline)
            entries.extend(result.entries)
            wall += result.wall_seconds
        if total == 0:
            raise ValueError(
                "suite has no design points (no valid lane counts for the "
                "configured grids?)"
            )
        collect = getattr(self.engine.backend, "collect_stats", None)
        stats = collect() if collect is not None else {}
        return spaces, SweepResult(entries=entries, wall_seconds=wall, stats=stats)

    def run(self) -> SuiteRun:
        """Cost the whole suite and fold it into the canonical report."""
        spaces, sweep = self.sweep()
        report = build_suite_report(self.config, spaces, sweep)
        return SuiteRun(report=report, sweep=sweep)

    # ------------------------------------------------------------------
    def summary_rows(self, run: SuiteRun) -> list[dict]:
        """One row per design point, kernel column included (for the CLI)."""
        rows = []
        for name, info in run.report.kernels.items():
            for entry in info["entries"]:
                point, report = entry["point"], entry["report"]
                rows.append({
                    "kernel": name,
                    "lanes": point["lanes"],
                    "device": point["device"],
                    "clock_mhz": point["clock_mhz"],
                    "form": report["throughput"]["form"],
                    "pattern": point["pattern"],
                    "ekit_per_s": report["throughput"]["ekit_per_s"],
                    "feasible": report["feasibility"]["feasible"],
                })
        return rows


# ----------------------------------------------------------------------
# Optimizer-driven DSE over the suite grid
# ----------------------------------------------------------------------

#: the optimizers ``run_dse`` (and ``tybec suite dse`` / ``POST /dse``) accept
DSE_OPTIMIZERS = ("exhaustive", "fmax", "halving", "surrogate")

#: per-optimizer parameter defaults; also the set of *accepted* keys, so a
#: typo'd parameter fails loudly instead of silently running the default
_DSE_PARAM_DEFAULTS: dict[str, dict] = {
    "exhaustive": {},
    "fmax": {"resolution": 1.0, "probes_per_round": 3},
    "halving": {"budget": 64, "eta": 2, "rung_points": 2},
    "surrogate": {"keep_fraction": 0.1, "keep_min": 1},
}


def resolve_dse_params(optimizer: str, params: dict | None = None) -> dict:
    """Validate and default-fill the parameters of one DSE optimizer.

    The resolved dict is what the report (and the service's coalescing
    fingerprint) embeds — two requests differing only in an omitted
    default are the same search.
    """
    if optimizer not in DSE_OPTIMIZERS:
        raise ValueError(
            f"unknown optimizer {optimizer!r}; expected one of "
            f"{', '.join(DSE_OPTIMIZERS)}")
    resolved = dict(_DSE_PARAM_DEFAULTS[optimizer])
    for key, value in (params or {}).items():
        if key not in resolved:
            raise ValueError(
                f"optimizer {optimizer!r} has no parameter {key!r}; "
                f"accepted: {sorted(resolved) or 'none'}")
        resolved[key] = type(resolved[key])(value)
    return resolved


def _dse_optimizers(config: SuiteConfig, optimizer: str, params: dict,
                    dense_backend=None) -> dict[str, object]:
    """One named optimizer run per report slot.

    Exhaustive/fmax/surrogate search each kernel independently (one run
    per kernel); successive halving is inherently cross-kernel — its arms
    *are* the kernels × forms — so it produces a single ``halving`` run.
    """
    from repro.explore.optimizer import (
        ExhaustiveOptimizer,
        FmaxBinarySearchOptimizer,
        SuccessiveHalvingOptimizer,
        SurrogatePrunedOptimizer,
    )

    spaces = {name: config.space_for(name)
              for name in config.resolved_kernels()}
    if optimizer == "halving":
        arms = [(f"{name}:{form}", space.subspace(forms=(form,)))
                for name, space in spaces.items()
                for form in config.forms]
        return {"halving": SuccessiveHalvingOptimizer(arms, **params)}
    runs: dict[str, object] = {}
    for name, space in spaces.items():
        if optimizer == "exhaustive":
            runs[name] = ExhaustiveOptimizer(space)
        elif optimizer == "fmax":
            runs[name] = FmaxBinarySearchOptimizer(space, **params)
        else:
            runs[name] = SurrogatePrunedOptimizer(
                space, dense_backend=dense_backend, **params)
    return runs


@dataclass
class DseRun:
    """Outcome of one optimizer-driven DSE: canonical report + raw runs.

    Like :class:`SuiteRun`, timing lives outside the report — the report
    pins *what the search decided* (rounds, points, results), never how
    long a round took.
    """

    report: SuiteReport
    runs: dict
    optimizer: str
    params: dict
    wall_seconds: float = 0.0

    @property
    def evaluated(self) -> int:
        return sum(run.evaluated for run in self.runs.values())


def build_dse_report(config: SuiteConfig, optimizer: str, params: dict,
                     runs: dict) -> SuiteReport:
    """Fold completed optimizer runs into the canonical DSE report.

    Per-run payloads carry the round provenance (which round proposed how
    many points) and the optimizer's own result summary; totals aggregate
    across runs.  Deterministic by the same rules as the suite report —
    no wall-clock fields, canonical float rounding at serialisation.
    """
    runs_payload: dict[str, dict] = {}
    total_points = 0
    total_rounds = 0
    for label in sorted(runs):
        run = runs[label]
        total_points += run.evaluated
        total_rounds += len(run.rounds)
        runs_payload[label] = {
            "rounds": run.rounds_payload(),
            "evaluated": run.evaluated,
            "result": run.result,
        }
    payload = {
        "schema": DSE_SCHEMA,
        "optimizer": {"name": optimizer, "params": params},
        "config": config.as_dict(),
        "runs": runs_payload,
        "totals": {
            "runs": len(runs_payload),
            "rounds": total_rounds,
            "points": total_points,
        },
    }
    return SuiteReport(payload)


def run_dse(config: SuiteConfig | None = None, optimizer: str = "fmax", *,
            backend=None, dense_backend=None, params: dict | None = None,
            on_round=None, deadline=None) -> DseRun:
    """Drive one optimizer over the suite grid into a canonical DSE report.

    The suite-level entry point behind ``tybec suite dse`` and the
    service's ``POST /dse``: resolves the optimizer's parameters, builds
    one optimizer per report slot (per kernel, or one cross-kernel
    halving race), drives each through an
    :class:`~repro.explore.engine.ExplorationEngine` on ``backend``, and
    folds the runs into a ``repro-dse-report/1``.  ``on_round(label,
    round, entries)`` fires after every loop round — the streaming hook.
    ``dense_backend`` lets a long-lived caller (the service) share its
    warm dense caches with surrogate prunes.
    """
    import time

    config = config or SuiteConfig()
    params = resolve_dse_params(optimizer, params)
    optimizers = _dse_optimizers(config, optimizer, params,
                                 dense_backend=dense_backend)
    engine = ExplorationEngine(backend)
    runs: dict[str, object] = {}
    started = time.perf_counter()
    with trace_span("dse.run", optimizer=optimizer,
                    slots=len(optimizers)), maybe_profile("dse.run"):
        for label in sorted(optimizers):
            callback = None
            if on_round is not None:
                def callback(round_, entries, label=label):
                    on_round(label, round_, entries)
            runs[label] = engine.run_optimizer(optimizers[label],
                                               deadline=deadline,
                                               on_round=callback)
    wall = time.perf_counter() - started
    report = build_dse_report(config, optimizer, params, runs)
    return DseRun(report=report, runs=runs, optimizer=optimizer,
                  params=params, wall_seconds=wall)


