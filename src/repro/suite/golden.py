"""The golden-report regression harness.

Goldens pin the cost model's numeric outputs: one canonical per-kernel
JSON file per registered kernel, produced by the fixed
:func:`golden_config` suite on the default device.  The pytest harness
re-runs the pipeline and diffs the fresh report against the checked-in
file field by field, so any refactor that silently shifts a resource
count, a throughput figure or a feasibility verdict fails loudly.

Intentional changes are recorded with::

    PYTHONPATH=src python -m repro.cli suite record-golden

which rewrites ``tests/golden/*.json``; the git diff of those files *is*
the review artifact for a cost-model change.
"""

from __future__ import annotations

from pathlib import Path

from repro.suite.diff import FieldDiff, diff_payloads
from repro.suite.report import SCHEMA, SuiteReport, canonical_json, load_report
from repro.suite.runner import SuiteConfig, WorkloadSuite

__all__ = [
    "golden_config",
    "golden_dir",
    "run_golden_suite",
    "write_kernel_goldens",
    "diff_kernel_goldens",
    "record_goldens",
    "check_goldens",
]


def golden_config(kernels: tuple[str, ...] = ()) -> SuiteConfig:
    """The fixed configuration the goldens are recorded with.

    Tiny grids, 10 iterations, lanes up to 4, the default device — small
    enough to re-run inside the unit-test suite, wide enough to exercise
    every kernel's full estimation flow.
    """
    return SuiteConfig.tiny(kernels=kernels)


def golden_dir(root: Path | str | None = None) -> Path:
    """The goldens directory (``tests/golden`` under the repo root)."""
    if root is not None:
        return Path(root)
    # src/repro/suite/golden.py -> repo root is three parents above src/
    return Path(__file__).resolve().parents[3] / "tests" / "golden"


def run_golden_suite(kernels: tuple[str, ...] = ()) -> SuiteReport:
    """Run the golden configuration and return the canonical report."""
    return WorkloadSuite(golden_config(kernels)).run().report


def write_kernel_goldens(report: SuiteReport, directory: Path) -> list[Path]:
    """One canonical JSON file per kernel of ``report``; returns paths.

    The shared write half of every golden harness (suite, validation,
    flows) — each pins its own report flavour through the same layout.
    """
    directory.mkdir(parents=True, exist_ok=True)
    written = []
    for name in sorted(report.kernels):
        path = directory / f"{name}.json"
        path.write_text(canonical_json(report.kernel_payload(name)))
        written.append(path)
    return written


def diff_kernel_goldens(report: SuiteReport, directory: Path, schema: str,
                        missing_hint: str,
                        rtol: float = 0.0) -> dict[str, list[FieldDiff]]:
    """Diff a fresh report against per-kernel goldens in ``directory``.

    Returns ``{kernel: [diffs...]}`` — empty diff lists mean the pinned
    reports are still reproduced.  A missing golden file is reported as a
    single ``removed`` diff (with ``missing_hint`` naming the recording
    command) so new kernels cannot slip in unpinned.
    """
    results: dict[str, list[FieldDiff]] = {}
    for name in sorted(report.kernels):
        path = directory / f"{name}.json"
        if not path.exists():
            results[name] = [FieldDiff(str(path), "removed", left=missing_hint)]
            continue
        golden = load_report(path, expected_schema=schema)
        results[name] = diff_payloads(golden, report.kernel_payload(name), rtol=rtol)
    return results


def record_goldens(directory: Path | str | None = None,
                   kernels: tuple[str, ...] = ()) -> list[Path]:
    """(Re-)write one golden JSON per kernel; returns the written paths."""
    return write_kernel_goldens(run_golden_suite(kernels), golden_dir(directory))


def check_goldens(directory: Path | str | None = None,
                  kernels: tuple[str, ...] = (),
                  rtol: float = 0.0) -> dict[str, list[FieldDiff]]:
    """Re-run the pipeline and diff against the recorded goldens."""
    return diff_kernel_goldens(
        run_golden_suite(kernels), golden_dir(directory), SCHEMA,
        "golden file missing — run `suite record-golden`", rtol=rtol)
