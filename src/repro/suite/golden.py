"""The golden-report regression harness.

Goldens pin the cost model's numeric outputs: one canonical per-kernel
JSON file per registered kernel, produced by the fixed
:func:`golden_config` suite on the default device.  The pytest harness
re-runs the pipeline and diffs the fresh report against the checked-in
file field by field, so any refactor that silently shifts a resource
count, a throughput figure or a feasibility verdict fails loudly.

Intentional changes are recorded with::

    PYTHONPATH=src python -m repro.cli suite record-golden

which rewrites ``tests/golden/*.json``; the git diff of those files *is*
the review artifact for a cost-model change.
"""

from __future__ import annotations

from pathlib import Path

from repro.suite.diff import FieldDiff, diff_payloads
from repro.suite.report import SCHEMA, SuiteReport, canonical_json, load_report
from repro.suite.runner import SuiteConfig, WorkloadSuite

__all__ = [
    "golden_config",
    "golden_dir",
    "run_golden_suite",
    "record_goldens",
    "check_goldens",
]


def golden_config(kernels: tuple[str, ...] = ()) -> SuiteConfig:
    """The fixed configuration the goldens are recorded with.

    Tiny grids, 10 iterations, lanes up to 4, the default device — small
    enough to re-run inside the unit-test suite, wide enough to exercise
    every kernel's full estimation flow.
    """
    return SuiteConfig.tiny(kernels=kernels)


def golden_dir(root: Path | str | None = None) -> Path:
    """The goldens directory (``tests/golden`` under the repo root)."""
    if root is not None:
        return Path(root)
    # src/repro/suite/golden.py -> repo root is three parents above src/
    return Path(__file__).resolve().parents[3] / "tests" / "golden"


def run_golden_suite(kernels: tuple[str, ...] = ()) -> SuiteReport:
    """Run the golden configuration and return the canonical report."""
    return WorkloadSuite(golden_config(kernels)).run().report


def record_goldens(directory: Path | str | None = None,
                   kernels: tuple[str, ...] = ()) -> list[Path]:
    """(Re-)write one golden JSON per kernel; returns the written paths."""
    directory = golden_dir(directory)
    directory.mkdir(parents=True, exist_ok=True)
    report = run_golden_suite(kernels)
    written = []
    for name in sorted(report.kernels):
        path = directory / f"{name}.json"
        path.write_text(canonical_json(report.kernel_payload(name)))
        written.append(path)
    return written


def check_goldens(directory: Path | str | None = None,
                  kernels: tuple[str, ...] = (),
                  rtol: float = 0.0) -> dict[str, list[FieldDiff]]:
    """Re-run the pipeline and diff against the recorded goldens.

    Returns ``{kernel: [diffs...]}`` — empty diff lists mean the model
    still reproduces the pinned reports.  A missing golden file is
    reported as a single ``removed`` diff so new kernels cannot slip in
    unpinned.
    """
    directory = golden_dir(directory)
    report = run_golden_suite(kernels)
    results: dict[str, list[FieldDiff]] = {}
    for name in sorted(report.kernels):
        path = directory / f"{name}.json"
        if not path.exists():
            results[name] = [FieldDiff(str(path), "removed",
                                       left="golden file missing — run "
                                            "`suite record-golden`")]
            continue
        golden = load_report(path, expected_schema=SCHEMA)
        results[name] = diff_payloads(golden, report.kernel_payload(name), rtol=rtol)
    return results
