"""The kernel Python reference for RTL verification.

The kernels' float golden semantics (``KernelSpec.golden``) validate the
*algorithm*; the generated RTL implements the *integer datapath* the cost
model prices (fixed-point constants, width-wrapped arithmetic).  The
reference that an RTL simulation can be held to **exactly** is therefore
the elementwise evaluation, in Python, of the very IR function the
generator emitted — fed with the same deterministic stimulus the
testbench drives (:func:`repro.compiler.codegen.testbench.stimulus_words`)
and with the same boundary convention the hardware realises (delay lines
flushed with zeros: an offset that reaches before the first or past the
last stream item reads zero).

:func:`reference_outputs` returns per-item values for every output
stream, the final value of every reduction accumulator, and the item
validity window (items whose full offset neighbourhood lies inside the
stream) — everything a flow needs to check a simulation bit for bit.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.compiler.codegen.testbench import DEFAULT_STIMULUS_SEED, stimulus_words
from repro.flows.numeric import as_signed, mask, truncdiv
from repro.ir.functions import IRFunction, Module, StreamDirection
from repro.ir.instructions import Instruction, OperandKind, decode_predicate

__all__ = ["ReferenceResult", "reference_outputs", "kernel_stimulus", "evaluate_items"]


class ReferenceEvaluationError(ValueError):
    """The IR uses an opcode the integer reference cannot evaluate."""


@dataclass(frozen=True)
class ReferenceResult:
    """Expected RTL behaviour of one leaf datapath over one stimulus."""

    function: str
    n_items: int
    #: output stream name -> per-item expected words
    outputs: dict[str, list[int]]
    #: reduction accumulator name -> final expected value
    reductions: dict[str, int]
    #: item index -> True when its full offset window is in-stream
    interior: list[bool]

    @property
    def interior_items(self) -> int:
        return sum(self.interior)


def _compare(instr: Instruction, ops: list[int], widths: list[int]) -> int:
    signed, base = decode_predicate(instr.predicate, instr.result_type.is_signed)
    a, b = ops
    if signed:
        # the RTL wraps each operand *wire* in $signed: sign-extend each
        # at its own width (numerically identical to Verilog's
        # extend-to-max-width signed comparison)
        a, b = as_signed(a, widths[0]), as_signed(b, widths[1])
    if base == "eq":
        return 1 if a == b else 0
    if base == "ne":
        return 1 if a != b else 0
    if base == "lt":
        return 1 if a < b else 0
    if base == "le":
        return 1 if a <= b else 0
    if base == "gt":
        return 1 if a > b else 0
    return 1 if a >= b else 0  # ge


def _evaluate(instr: Instruction, ops: list[int], widths: list[int]) -> int:
    """One IR instruction over integer operands, RTL-faithful.

    Semantics mirror the generated Verilog: width-wrapped two's-complement
    arithmetic, zero-guarded truncating division, logical shifts on
    unsigned values and arithmetic shifts / signed compares on signed
    types.  ``widths`` carries each operand's *defining* width — the RTL
    applies ``$signed`` to the operand wires, so sign interpretation
    happens at the wire width, not the (possibly narrower) result width.
    """
    opcode = instr.opcode
    ty = instr.result_type
    width = ty.width

    def s(index: int) -> int:
        return as_signed(ops[index], widths[index]) if ty.is_signed else ops[index]

    if opcode in ("add", "fadd"):
        return mask(ops[0] + ops[1], width)
    if opcode in ("sub", "fsub"):
        return mask(ops[0] - ops[1], width)
    if opcode in ("mul", "fmul"):
        return mask(ops[0] * ops[1], width)
    if opcode in ("div", "udiv", "sdiv", "fdiv"):
        if opcode == "sdiv" or (opcode in ("div", "fdiv") and ty.is_signed):
            return mask(truncdiv(as_signed(ops[0], widths[0]),
                                 as_signed(ops[1], widths[1])), width)
        return mask(truncdiv(ops[0], ops[1]), width)
    if opcode in ("rem", "urem"):
        a, b = (as_signed(ops[0], widths[0]), as_signed(ops[1], widths[1])) \
            if (opcode == "rem" and ty.is_signed) else (ops[0], ops[1])
        if b == 0:
            return 0
        return mask(a - b * truncdiv(a, b), width)
    if opcode == "and":
        return ops[0] & ops[1]
    if opcode == "or":
        return ops[0] | ops[1]
    if opcode == "xor":
        return ops[0] ^ ops[1]
    if opcode == "not":
        return mask(~ops[0], width)
    if opcode == "shl":
        return mask(ops[0] << ops[1], width)
    if opcode == "lshr":
        return ops[0] >> ops[1]
    if opcode == "ashr":
        return mask(s(0) >> ops[1], width)
    if opcode in ("icmp", "fcmp"):
        return _compare(instr, ops, widths)
    if opcode == "select":
        return ops[1] if ops[0] else ops[2]
    if opcode == "min":
        return ops[0] if s(0) < s(1) else ops[1]
    if opcode == "max":
        return ops[0] if s(0) > s(1) else ops[1]
    if opcode == "abs":
        return mask(abs(s(0)), width)
    if opcode in ("mov", "trunc", "zext", "sext"):
        return mask(ops[0], width)
    if opcode == "mac":
        return mask(ops[0] * ops[1] + ops[2], width)
    if opcode == "sqrt":
        import math

        return math.isqrt(ops[0])
    raise ReferenceEvaluationError(
        f"opcode {opcode!r} has no integer reference semantics")


def kernel_stimulus(func: IRFunction, n_items: int,
                    seed: int = DEFAULT_STIMULUS_SEED) -> dict[str, list[int]]:
    """The exact input words the generated testbench drives, per stream."""
    return {
        name: stimulus_words(seed, index, n_items, min(ty.width, 32))
        for index, (ty, name) in enumerate(func.args)
    }


def evaluate_items(
    module: Module,
    func: IRFunction,
    stimulus: dict[str, list[int]],
    n_items: int,
):
    """Evaluate the datapath elementwise; returns (outputs, reductions, interior)."""
    resolved = {off.result: (off.source, module.resolve_offset(off.offset))
                for off in func.offsets()}
    out_ports = [p.port for p in module.port_declarations
                 if p.function == func.name and p.direction is StreamDirection.OUTPUT]
    reductions = {r.result: 0 for r in func.reductions()}

    # defining width of every named value — the RTL sign-interprets
    # operands at their wire width, so the reference must match
    value_widths: dict[str, int] = {name: ty.width for ty, name in func.args}
    for off in func.offsets():
        value_widths[off.result] = off.result_type.width
    for instr in func.instructions():
        value_widths[instr.result] = instr.result_type.width

    outputs: dict[str, list[int]] = {name: [] for name in out_ports}
    interior: list[bool] = []

    def sample(source: str, index: int) -> int:
        if 0 <= index < n_items:
            return stimulus[source][index]
        return 0  # flushed delay lines / zero-driven tail

    for i in range(n_items):
        env: dict[str, int] = {name: stimulus[name][i] for _, name in func.args}
        in_window = True
        for result, (source, offset) in resolved.items():
            position = i + offset
            env[result] = sample(source, position)
            if not 0 <= position < n_items:
                in_window = False
        interior.append(in_window)

        for instr in func.instructions():
            ops: list[int] = []
            widths: list[int] = []
            result_width = instr.result_type.width
            for op in instr.operands:
                if op.kind is OperandKind.CONST:
                    value = op.value
                    ops.append(int(round(value)) if isinstance(value, float)
                               else int(value))
                    widths.append(result_width)  # consts render at result width
                elif op.kind is OperandKind.GLOBAL:
                    ops.append(reductions.get(op.name, 0))
                    widths.append(value_widths.get(op.name, result_width))
                else:
                    ops.append(env[op.name])
                    widths.append(value_widths.get(op.name, result_width))
            value = mask(_evaluate(instr, ops, widths), result_width)
            if instr.is_reduction:
                reductions[instr.result] = value
            else:
                env[instr.result] = value

        for name in out_ports:
            outputs[name].append(env[name])

    return outputs, reductions, interior


def reference_outputs(
    module: Module,
    func: IRFunction,
    n_items: int,
    seed: int = DEFAULT_STIMULUS_SEED,
    stimulus: dict[str, list[int]] | None = None,
) -> ReferenceResult:
    """The full expected behaviour of one leaf datapath for one stimulus.

    Pass a precomputed ``stimulus`` (from :func:`kernel_stimulus`) to
    avoid regenerating it; by default it is derived from ``seed``.
    """
    if stimulus is None:
        stimulus = kernel_stimulus(func, n_items, seed)
    outputs, reductions, interior = evaluate_items(module, func, stimulus, n_items)
    return ReferenceResult(
        function=func.name,
        n_items=n_items,
        outputs=outputs,
        reductions=reductions,
        interior=interior,
    )
