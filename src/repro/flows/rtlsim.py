"""Driving an elaborated kernel netlist through one stream of work items.

This is the pure-Python counterpart of the generated testbench: reset,
stream ``n_items`` stimulus words (one per cycle, ``in_valid`` high),
zero-drive the tail, collect every ``out_valid`` output word and the
final reduction registers, and count cycles.  The resulting
:class:`RTLSimOutcome` is what the flows compare bit for bit against
:func:`repro.flows.refmodel.reference_outputs` and cycle for cycle
against the :class:`~repro.substrate.pipeline_sim.PipelineSimulator`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.compiler.codegen.verilog import _sanitize
from repro.flows.netlist import Netlist, NetlistSimulator
from repro.flows.refmodel import ReferenceResult

__all__ = ["RTLSimulationError", "RTLSimOutcome", "simulate_stream", "compare_outcome"]


class RTLSimulationError(RuntimeError):
    """The netlist failed to produce the expected number of outputs."""


@dataclass(frozen=True)
class RTLSimOutcome:
    """What one netlist simulation produced."""

    n_items: int
    #: cycle (counted from reset release) of the first/last out_valid
    first_output_cycle: int
    last_output_cycle: int
    #: output stream name (IR name, not port name) -> collected words
    outputs: dict[str, list[int]]
    #: reduction name -> final register value
    reductions: dict[str, int]

    @property
    def cycles(self) -> int:
        """Total cycles from reset release to the last output."""
        return self.last_output_cycle + 1

    @property
    def latency(self) -> int:
        """Input-to-output latency the netlist actually realises."""
        return self.first_output_cycle


def simulate_stream(
    netlist: Netlist,
    stimulus: dict[str, list[int]],
    n_items: int,
    output_names: list[str],
    reduction_names: list[str],
    max_extra_cycles: int = 4096,
    drain_cycles: int = 8,
) -> RTLSimOutcome:
    """Stream ``n_items`` through an elaborated kernel module.

    ``drain_cycles`` idle cycles run after the last output so reduction
    registers scheduled deeper than the output stage commit their final
    item before they are read.
    """
    if n_items <= 0:
        raise ValueError("n_items must be positive")
    sim = NetlistSimulator(netlist)
    stream_ports = {name: f"s_{_sanitize(name)}" for name in stimulus}
    out_ports = {name: f"s_{_sanitize(name)}" for name in output_names}
    red_ports = {name: f"g_{_sanitize(name)}" for name in reduction_names}
    for port in list(stream_ports.values()) + list(out_ports.values()):
        if port not in netlist.widths:
            raise RTLSimulationError(f"netlist has no port {port!r}")

    # reset preamble (registers already power up at zero, but the reset
    # path itself is part of the generated logic under test)
    idle = {"rst": 1, "in_valid": 0, **{p: 0 for p in stream_ports.values()}}
    for _ in range(2):
        sim.step(idle)

    outputs: dict[str, list[int]] = {name: [] for name in output_names}
    first_cycle = -1
    last_cycle = -1
    collected = 0
    cycle = 0
    budget = n_items + max_extra_cycles
    while collected < n_items:
        if cycle >= budget:
            raise RTLSimulationError(
                f"{netlist.name}: {collected}/{n_items} outputs after "
                f"{cycle} cycles — out_valid never caught up")
        driving = cycle < n_items
        inputs = {"rst": 0, "in_valid": 1 if driving else 0}
        for name, port in stream_ports.items():
            inputs[port] = stimulus[name][cycle] if driving else 0
        sampled = sim.step(inputs)
        if sampled.get("out_valid"):
            for name, port in out_ports.items():
                outputs[name].append(sampled[port])
            if first_cycle < 0:
                first_cycle = cycle
            last_cycle = cycle
            collected += 1
        cycle += 1

    for _ in range(max(0, drain_cycles)):
        sim.step({"rst": 0, "in_valid": 0,
                  **{port: 0 for port in stream_ports.values()}})

    reductions = {name: sim.values[port] for name, port in red_ports.items()}
    return RTLSimOutcome(
        n_items=n_items,
        first_output_cycle=first_cycle,
        last_output_cycle=last_cycle,
        outputs=outputs,
        reductions=reductions,
    )


def compare_outcome(outcome: RTLSimOutcome, reference: ReferenceResult,
                    max_mismatches: int = 8) -> dict:
    """Bit-exact functional comparison of a simulation against the reference.

    Every item of every output stream is compared — including the
    boundary items, whose expected values follow the same flushed-zero
    convention the hardware realises — plus every reduction accumulator.
    Returns a canonical-report-ready payload.
    """
    mismatches: list[dict] = []
    checked = 0
    total_mismatches = 0
    for name, expected in sorted(reference.outputs.items()):
        got = outcome.outputs.get(name, [])
        for index, value in enumerate(expected):
            checked += 1
            actual = got[index] if index < len(got) else None
            if actual != value:
                total_mismatches += 1
                if len(mismatches) < max_mismatches:
                    mismatches.append({
                        "stream": name,
                        "index": index,
                        "expected": value,
                        "actual": actual,
                        "interior": reference.interior[index],
                    })

    reduction_report = {}
    reductions_ok = True
    for name, expected in sorted(reference.reductions.items()):
        actual = outcome.reductions.get(name)
        equal = actual == expected
        reductions_ok = reductions_ok and equal
        reduction_report[name] = {
            "expected": expected,
            "actual": actual,
            "ok": equal,
        }

    return {
        "items": reference.n_items,
        "interior_items": reference.interior_items,
        "outputs_checked": checked,
        "output_mismatches": total_mismatches,
        "first_mismatches": mismatches,
        "reductions": reduction_report,
        "outputs_match": total_mismatches == 0,
        "reductions_match": reductions_ok,
        "ok": total_mismatches == 0 and reductions_ok,
    }
