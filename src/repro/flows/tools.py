"""External EDA tool discovery and invocation.

The pure-Python RTL backend needs nothing installed; the optional
adapters (iverilog, verilator, yosys) are discovered on ``PATH`` at use
time and skipped cleanly when absent — a flow asking for a missing tool
gets a :class:`ToolUnavailableError` it can turn into a skip, never a
crash deep inside ``subprocess``.
"""

from __future__ import annotations

import logging
import shutil
import subprocess
import time
from dataclasses import dataclass

from repro.cost.cache import env_int
from repro.obs.logs import get_logger, log_event
from repro.obs.trace import span as trace_span
from repro.resilience import (
    COUNTERS,
    Deadline,
    RetryPolicy,
    TransientError,
    maybe_fail,
)

_LOG = get_logger("flows.tools")

__all__ = [
    "ToolUnavailableError",
    "ToolCrashError",
    "ToolResult",
    "find_tool",
    "require_tool",
    "run_tool",
    "available_tools",
]

#: the external tools the optional adapters know how to drive
KNOWN_TOOLS = ("iverilog", "vvp", "verilator", "yosys")


class ToolUnavailableError(RuntimeError):
    """The requested external tool is not on PATH."""

    def __init__(self, tool: str):
        super().__init__(
            f"external tool {tool!r} not found on PATH; install it or use "
            "the pure-Python backend")
        self.tool = tool


class ToolCrashError(TransientError):
    """The tool subprocess could not be launched or died on the OS side.

    Transient: launch failures and kills are substrate trouble (fork
    pressure, OOM reaper), the kind a bounded retry can outlive.
    """


@dataclass(frozen=True)
class ToolResult:
    argv: tuple
    returncode: int
    stdout: str
    stderr: str
    #: the invocation hit its (deadline-clipped) timeout and was killed
    timed_out: bool = False
    #: non-exit-code failure description ("" when the tool actually ran)
    error: str = ""
    elapsed_seconds: float = 0.0
    #: invocations it took to produce this result (1 = first try)
    attempts: int = 1

    @property
    def ok(self) -> bool:
        return self.returncode == 0 and not self.timed_out and not self.error

    @property
    def failure_summary(self) -> str:
        """One line describing why the invocation failed ("" when ok)."""
        if self.ok:
            return ""
        name = self.argv[0] if self.argv else "tool"
        if self.timed_out:
            return (f"{name} timed out after {self.elapsed_seconds:.1f}s "
                    f"({self.attempts} attempt(s))")
        if self.error:
            return f"{name} failed to run: {self.error}"
        return f"{name} exited with status {self.returncode}"


def find_tool(name: str) -> str | None:
    """Absolute path of an external tool, or None when absent."""
    return shutil.which(name)


def require_tool(name: str) -> str:
    path = find_tool(name)
    if path is None:
        raise ToolUnavailableError(name)
    return path


#: default invocation budget for one external tool run
DEFAULT_TOOL_POLICY = RetryPolicy(
    max_attempts=env_int("TYBEC_TOOL_ATTEMPTS", 2),
    base_delay=0.05, max_delay=1.0)


def _decode(raw) -> str:
    """Partial output capture: TimeoutExpired hands back bytes or None."""
    if raw is None:
        return ""
    if isinstance(raw, bytes):
        return raw.decode("utf-8", errors="replace")
    return raw


def run_tool(argv: list[str], cwd=None, timeout: float = 300.0,
             deadline: Deadline | None = None,
             retry_policy: RetryPolicy | None = None) -> ToolResult:
    """Run one external tool invocation, capturing its output.

    Never lets ``subprocess`` trouble escape: a hung tool is killed at
    the (deadline-clipped) timeout and reported as a typed failure with
    whatever partial stdout/stderr it produced; a launch failure or an
    injected crash becomes ``error``.  Crash-shaped failures are retried
    per ``retry_policy``; timeouts and non-zero exits are not retried
    here — a deterministic tool that timed out once will time out again,
    and exit codes are the caller's domain knowledge.
    """
    tool = argv[0] if argv else "tool"
    with trace_span("tool.run", tool=tool) as sp:
        result = _run_tool(argv, cwd, timeout, deadline, retry_policy)
        if sp is not None:
            sp.attrs["returncode"] = result.returncode
            sp.attrs["attempts"] = result.attempts
        return result


def _run_tool(argv, cwd, timeout, deadline, retry_policy) -> ToolResult:
    argv_t = tuple(argv)
    policy = retry_policy or DEFAULT_TOOL_POLICY
    effective = timeout if deadline is None else deadline.clip(timeout)
    last: ToolResult | None = None
    for attempt in policy.attempts():
        if deadline is not None and deadline.expired:
            break
        started = time.perf_counter()
        try:
            maybe_fail("tool", salt=attempt)
            completed = subprocess.run(
                argv, cwd=cwd, timeout=effective, capture_output=True,
                text=True, check=False,
            )
            return ToolResult(
                argv_t, completed.returncode, completed.stdout,
                completed.stderr,
                elapsed_seconds=time.perf_counter() - started,
                attempts=attempt + 1,
            )
        except subprocess.TimeoutExpired as exc:
            log_event(
                _LOG,
                "tool.timeout",
                level=logging.WARNING,
                site="tool.run",
                key=argv_t[0] if argv_t else "",
                cause=f"timed out after {effective:.1f}s",
                attempt=attempt + 1,
            )
            return ToolResult(
                argv_t, returncode=-1,
                stdout=_decode(exc.stdout), stderr=_decode(exc.stderr),
                timed_out=True,
                error=f"timed out after {effective:.1f}s",
                elapsed_seconds=time.perf_counter() - started,
                attempts=attempt + 1,
            )
        except (TransientError, OSError) as exc:
            log_event(
                _LOG,
                "tool.crashed",
                level=logging.WARNING,
                site="tool.run",
                key=argv_t[0] if argv_t else "",
                cause=f"{type(exc).__name__}: {exc}",
                attempt=attempt + 1,
            )
            last = ToolResult(
                argv_t, returncode=-1, stdout="", stderr="",
                error=f"{type(exc).__name__}: {exc}",
                elapsed_seconds=time.perf_counter() - started,
                attempts=attempt + 1,
            )
            if attempt < policy.max_attempts - 1:
                COUNTERS.bump("retries")
                COUNTERS.bump("retries.tool")
                pause = policy.delay(attempt, key=f"tool:{argv_t[0] if argv_t else ''}")
                if deadline is not None:
                    pause = min(pause, deadline.remaining())
                if pause > 0:
                    time.sleep(pause)
    if last is None:
        log_event(
            _LOG,
            "tool.deadline_expired",
            level=logging.WARNING,
            site="tool.run",
            key=argv_t[0] if argv_t else "",
            cause="deadline expired before the tool could run",
        )
        last = ToolResult(
            argv_t, returncode=-1, stdout="", stderr="",
            error="deadline expired before the tool could run",
            timed_out=True, attempts=0,
        )
    return last


def available_tools() -> dict[str, str | None]:
    """Discovery report over every known external tool."""
    return {name: find_tool(name) for name in KNOWN_TOOLS}
