"""External EDA tool discovery and invocation.

The pure-Python RTL backend needs nothing installed; the optional
adapters (iverilog, verilator, yosys) are discovered on ``PATH`` at use
time and skipped cleanly when absent — a flow asking for a missing tool
gets a :class:`ToolUnavailableError` it can turn into a skip, never a
crash deep inside ``subprocess``.
"""

from __future__ import annotations

import shutil
import subprocess
from dataclasses import dataclass

__all__ = [
    "ToolUnavailableError",
    "ToolResult",
    "find_tool",
    "require_tool",
    "run_tool",
    "available_tools",
]

#: the external tools the optional adapters know how to drive
KNOWN_TOOLS = ("iverilog", "vvp", "verilator", "yosys")


class ToolUnavailableError(RuntimeError):
    """The requested external tool is not on PATH."""

    def __init__(self, tool: str):
        super().__init__(
            f"external tool {tool!r} not found on PATH; install it or use "
            "the pure-Python backend")
        self.tool = tool


@dataclass(frozen=True)
class ToolResult:
    argv: tuple
    returncode: int
    stdout: str
    stderr: str

    @property
    def ok(self) -> bool:
        return self.returncode == 0


def find_tool(name: str) -> str | None:
    """Absolute path of an external tool, or None when absent."""
    return shutil.which(name)


def require_tool(name: str) -> str:
    path = find_tool(name)
    if path is None:
        raise ToolUnavailableError(name)
    return path


def run_tool(argv: list[str], cwd=None, timeout: float = 300.0) -> ToolResult:
    """Run one external tool invocation, capturing its output."""
    completed = subprocess.run(
        argv, cwd=cwd, timeout=timeout, capture_output=True, text=True,
        check=False,
    )
    return ToolResult(tuple(argv), completed.returncode,
                      completed.stdout, completed.stderr)


def available_tools() -> dict[str, str | None]:
    """Discovery report over every known external tool."""
    return {name: find_tool(name) for name in KNOWN_TOOLS}
