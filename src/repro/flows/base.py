"""Flow base classes: declarative settings, managed run directories,
artifact manifests and content-keyed result caching.

A *flow* (the xeda sense of the word) takes one design — here a TyTra-IR
:class:`~repro.ir.functions.Module` — runs one or more tools over its
generated HDL and returns a parsed, canonical result payload.  The base
class owns everything every flow needs:

* **settings** — a frozen dataclass; the subset that affects results
  participates in the cache key;
* **managed run directories** — ``<root>/<design>-<flow>-<key8>/`` with
  every generated artifact plus a ``manifest.json`` of content hashes and
  the flow's own ``result.json``;
* **result caching** — flow results are pure functions of (flow version,
  module content fingerprint, settings), so they persist in the PR-3
  :class:`~repro.cost.cache.DiskCache` under the ``flowresults``
  namespace and re-running an unchanged design is a cache hit;
* the :class:`SimFlow`/:class:`SynthFlow` split mirrors xeda's: sim flows
  verify behaviour against the kernel Python reference, synth-style flows
  report netlist structure.
"""

from __future__ import annotations

import hashlib
import json
import time
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path

from repro.compiler.codegen.testbench import (
    DEFAULT_STIMULUS_SEED,
    select_leaf_function,
)
from repro.compiler.codegen.verilog import VerilogGenerator
from repro.compiler.scheduling import OperatorLatencyModel
from repro.cost.cache import default_disk_cache
from repro.ir.functions import IRFunction, Module, StreamDirection
from repro.obs.profile import maybe_profile
from repro.obs.trace import span as trace_span

__all__ = ["FlowSettings", "FlowResult", "Flow", "SimFlow", "SynthFlow"]

#: DiskCache namespace holding flow result payloads
CACHE_NAMESPACE = "flowresults"


@dataclass(frozen=True)
class FlowSettings:
    """Settings shared by every flow.

    Only the fields returned by :meth:`cache_token` may change the result
    payload; ``run_root`` merely controls where artifacts are written.
    """

    #: directory under which managed run directories are created
    #: (None = no artifacts on disk; the flow runs entirely in memory)
    run_root: Path | str | None = None
    #: stimulus seed shared with the generated testbench
    seed: int = DEFAULT_STIMULUS_SEED
    #: work items to stream (None = the flow's default)
    n_items: int | None = None
    #: consult/populate the persistent flow-result cache
    use_cache: bool = True

    def __post_init__(self) -> None:
        if self.n_items is not None and self.n_items <= 0:
            raise ValueError(f"n_items must be positive, got {self.n_items}")

    def cache_token(self) -> tuple:
        return ("seed", self.seed, "n_items", self.n_items)


@dataclass(frozen=True)
class FlowResult:
    """Outcome of one flow run."""

    flow: str
    design: str
    function: str | None
    payload: dict
    cached: bool
    wall_seconds: float
    run_dir: Path | None
    #: artifact name -> sha256 hex digest (the manifest)
    artifacts: dict
    #: per-stage wall seconds of this run (empty on a cache hit);
    #: deliberately outside the canonical payload, like SweepResult.stats
    stage_seconds: dict = None  # type: ignore[assignment]

    @property
    def ok(self) -> bool:
        return bool(self.payload.get("ok", True))


class Flow:
    """Base class for every flow.

    Sub-classes set ``name`` (the flow's identity, part of run-directory
    names and cache keys), bump ``VERSION`` whenever their payload layout
    or semantics change (invalidating cached results), and implement
    :meth:`execute` returning a JSON-canonicalisable payload.
    """

    name = "flow"
    VERSION = 1

    def __init__(
        self,
        module: Module,
        settings: FlowSettings | None = None,
        latency_model: OperatorLatencyModel | None = None,
        function_name: str | None = None,
    ):
        self.module = module
        self.settings = settings or FlowSettings()
        self.latency_model = latency_model or OperatorLatencyModel()
        self.generator = VerilogGenerator(module, latency_model=self.latency_model)
        self.function_name = function_name
        #: per-stage wall seconds of the most recent execute()
        self.stage_seconds: dict[str, float] = {}
        self._artifact_cache: dict[str, str] | None = None

    @contextmanager
    def _stage(self, name: str):
        """Time one stage of execute() into :attr:`stage_seconds`."""
        started = time.perf_counter()
        try:
            with trace_span("flow.stage", flow=self.name, stage=name):
                yield
        finally:
            self.stage_seconds[name] = (
                self.stage_seconds.get(name, 0.0)
                + time.perf_counter() - started
            )

    # -- to be provided by sub-classes ----------------------------------
    def execute(self) -> dict:
        """Run the flow's tools and return the canonical result payload."""
        raise NotImplementedError  # pragma: no cover - interface

    @classmethod
    def available(cls) -> bool:
        """Whether this flow's tools exist on this machine."""
        return True

    # -- artifacts -------------------------------------------------------
    def artifacts(self) -> dict[str, str]:
        """Generated files this flow operates on (name -> text)."""
        return self.generator.generate_all()

    def cached_artifacts(self) -> dict[str, str]:
        """:meth:`artifacts`, generated at most once per flow instance."""
        if self._artifact_cache is None:
            self._artifact_cache = self.artifacts()
        return self._artifact_cache

    # -- caching ---------------------------------------------------------
    def artifact_fingerprint(self) -> str:
        """Content hash of every generated file the flow operates on.

        Part of the cache key: a codegen change must invalidate cached
        verification verdicts even though the design's IR fingerprint is
        unchanged — serving a pre-edit verdict for post-edit Verilog
        would hide exactly the bug class this subsystem exists to catch.
        Generation is cheap (milliseconds) next to simulation.
        """
        hasher = hashlib.sha256()
        for name, text in sorted(self.cached_artifacts().items()):
            hasher.update(name.encode())
            hasher.update(b"\x00")
            hasher.update(text.encode())
            hasher.update(b"\x00")
        return hasher.hexdigest()

    def cache_token(self) -> tuple:
        latency = self.latency_model
        return (
            "flow", self.name, self.VERSION,
            "design", self.module.content_fingerprint(),
            "artifacts", self.artifact_fingerprint(),
            "function", self.function_name or "",
            "latency", latency.div_cycles_per_bit, latency.sqrt_cycles_per_bit,
            latency.input_stage_cycles,
            "settings", self.settings.cache_token(),
        )

    # -- run directories -------------------------------------------------
    def _run_dir(self) -> Path | None:
        root = self.settings.run_root
        if root is None:
            return None
        digest = hashlib.sha256(repr(self.cache_token()).encode()).hexdigest()[:8]
        run_dir = Path(root) / f"{self.module.name}-{self.name}-{digest}"
        run_dir.mkdir(parents=True, exist_ok=True)
        return run_dir

    def _write_artifacts(self, run_dir: Path, files: dict[str, str]) -> dict:
        manifest = {}
        for name, text in sorted(files.items()):
            (run_dir / name).write_text(text)
            manifest[name] = hashlib.sha256(text.encode()).hexdigest()
        (run_dir / "manifest.json").write_text(
            json.dumps(manifest, indent=2, sort_keys=True) + "\n")
        return manifest

    # -- the run protocol ------------------------------------------------
    def run(self) -> FlowResult:
        """Execute the flow (or serve it from the persistent cache)."""
        with trace_span("flow.run", flow=self.name,
                        design=self.module.name) as sp, \
                maybe_profile(f"flow.{self.name}"):
            result = self._run_flow()
            if sp is not None:
                sp.attrs["cached"] = result.cached
            return result

    def _run_flow(self) -> FlowResult:
        started = time.perf_counter()
        token = self.cache_token()
        cache = default_disk_cache() if self.settings.use_cache else None
        payload = cache.get(CACHE_NAMESPACE, token) if cache is not None else None
        cached = payload is not None

        run_dir = self._run_dir()
        manifest: dict = {}
        if run_dir is not None:
            manifest = self._write_artifacts(run_dir, self.cached_artifacts())

        if payload is None:
            payload = self.execute()
            if cache is not None:
                cache.put(CACHE_NAMESPACE, token, payload)
        if not manifest and self._artifact_cache is not None:
            # no run directory: still report the content hashes of the
            # artifacts the (possibly cached) verdict applies to
            manifest = {name: hashlib.sha256(text.encode()).hexdigest()
                        for name, text in sorted(self._artifact_cache.items())}

        if run_dir is not None:
            (run_dir / "result.json").write_text(
                json.dumps(payload, indent=2, sort_keys=True) + "\n")
        return FlowResult(
            flow=self.name,
            design=self.module.name,
            function=self.function_name,
            payload=payload,
            cached=cached,
            wall_seconds=time.perf_counter() - started,
            run_dir=run_dir,
            artifacts=manifest,
            stage_seconds=dict(self.stage_seconds),
        )


class SimFlow(Flow):
    """A flow that simulates one leaf datapath against its reference."""

    name = "sim"
    #: default work items streamed when settings leave n_items unset
    DEFAULT_ITEMS = 256

    def target_function(self) -> IRFunction:
        """The leaf datapath under test (largest leaf by default) — the
        same selection rule the testbench generator applies."""
        return select_leaf_function(self.module, self.function_name)

    @property
    def n_items(self) -> int:
        if self.settings.n_items is None:
            return self.DEFAULT_ITEMS
        return self.settings.n_items

    def output_names(self, func: IRFunction) -> list[str]:
        return [p.port for p in self.module.port_declarations
                if p.function == func.name
                and p.direction is StreamDirection.OUTPUT]

    def reduction_names(self, func: IRFunction) -> list[str]:
        return [r.result for r in func.reductions()]


class SynthFlow(Flow):
    """A flow that elaborates/synthesises the generated HDL and reports
    structural metrics instead of simulating behaviour."""

    name = "synth"
