"""Shared bit-level numeric helpers of the RTL backend.

The netlist simulator and the IR reference model are required to agree
bit for bit; the primitives they share — width masking, two's-complement
reinterpretation, Verilog-style truncating division — live here so a fix
to one side can never silently desynchronise the other.
"""

from __future__ import annotations

__all__ = ["mask", "as_signed", "truncdiv"]


def mask(value: int, width: int) -> int:
    """Truncate to ``width`` bits (what assignment to a net does)."""
    return value & ((1 << width) - 1)


def as_signed(value: int, width: int) -> int:
    """Reinterpret a ``width``-bit pattern as two's complement."""
    value = mask(value, width)
    return value - (1 << width) if value >= 1 << (width - 1) else value


def truncdiv(a: int, b: int) -> int:
    """Verilog division: truncates toward zero; the generated dividers
    are zero-guarded, so divide-by-zero yields 0."""
    if b == 0:
        return 0
    quotient = abs(a) // abs(b)
    return -quotient if (a < 0) != (b < 0) else quotient
