"""Concrete flows: the pure-Python RTL backend and the external adapters.

:class:`RTLSimFlow` is the dependency-free core of the subsystem — it
elaborates the generated Verilog *text* into a structural netlist,
streams the deterministic testbench stimulus through it, checks every
output word and reduction against the kernel's Python reference
(:mod:`repro.flows.refmodel`) and the cycle count against the
:class:`~repro.substrate.pipeline_sim.PipelineSimulator` in both its
analytic and cycle-stepping modes — closing the
estimate ↔ cycle-sim ↔ RTL-sim triangle.

:class:`ElaborateFlow` is the synth-side counterpart: structural lint
plus netlist statistics for every generated file.

The external adapters (:class:`IcarusSimFlow`, :class:`VerilatorLintFlow`,
:class:`YosysSynthFlow`) drive real tools discovered on ``PATH`` and are
skipped cleanly when absent.
"""

from __future__ import annotations

import math
import re
import tempfile
from pathlib import Path

from repro.compiler.codegen.testbench import generate_testbench, parse_result_lines
from repro.compiler.codegen.verilog import _sanitize
from repro.flows.base import Flow, SimFlow, SynthFlow
from repro.flows.netlist import elaborate, lint_module, lint_source
from repro.flows.refmodel import kernel_stimulus, reference_outputs
from repro.flows.rtlsim import RTLSimOutcome, compare_outcome, simulate_stream
from repro.flows.tools import find_tool, require_tool, run_tool
from repro.flows.verilog import parse_module_text, parse_modules
from repro.substrate.pipeline_sim import PipelineSimulator, PipelineSpec

__all__ = [
    "RTLSimFlow",
    "ElaborateFlow",
    "IcarusSimFlow",
    "VerilatorLintFlow",
    "YosysSynthFlow",
    "FLOW_CLASSES",
    "default_sim_flow",
]


class RTLSimFlow(SimFlow):
    """Elaborate + cycle-simulate the generated kernel, pure Python."""

    name = "rtl-sim"
    VERSION = 1

    def _cycle_legs(self, geometry, func, outcome: RTLSimOutcome) -> dict:
        """RTL cycles vs the pipeline simulator under testbench conditions.

        The testbench streams one item per cycle into a single lane with
        data effectively on-chip, so the matching simulator configuration
        is one lane, unconstrained memory, and the aligned offset window
        as the priming words.  The acceptance bound is the simulator's
        documented agreement invariant: one pipeline depth plus one issue
        interval.
        """
        element = func.args[0][0] if func.args else None
        spec = PipelineSpec(
            name=f"{self.module.name}/{func.name}",
            lanes=1,
            vectorization=1,
            pipeline_depth=max(1, geometry.schedule_depth),
            instructions=max(1, func.instruction_count()),
            cycles_per_instruction=1,
            offset_fill_words=geometry.window,
            input_words_per_item=max(1, len(func.args)),
            output_words_per_item=max(1, len(self.output_names(func))),
            element_bytes=max(1, (element.width + 7) // 8) if element else 4,
            clock_mhz=200.0,
        )
        simulator = PipelineSimulator()
        analytic = simulator.run_kernel_instance(spec, outcome.n_items, math.inf)
        stepped = simulator.run_kernel_instance(
            spec, outcome.n_items, math.inf, cycle_accurate=True)
        bound = spec.cycle_agreement_bound
        gap_analytic = abs(outcome.cycles - analytic.cycles)
        gap_stepped = abs(outcome.cycles - stepped.cycles)
        return {
            "rtl": outcome.cycles,
            "rtl_latency": outcome.latency,
            "analytic": analytic.cycles,
            "stepped": stepped.cycles,
            "gap_analytic": gap_analytic,
            "gap_stepped": gap_stepped,
            "bound": bound,
            "ok": gap_analytic <= bound and gap_stepped <= bound,
        }

    def execute(self) -> dict:
        func = self.target_function()
        with self._stage("emit"):
            geometry = self.generator.geometry(func.name)
            source = self.cached_artifacts()[f"{_sanitize(func.name)}_kernel.v"]
        with self._stage("elaborate"):
            rtl_module = parse_module_text(source)
            lint = lint_module(rtl_module)
            netlist = elaborate(rtl_module)
        n_items = self.n_items
        with self._stage("reference"):
            stimulus = kernel_stimulus(func, n_items, self.settings.seed)
            reference = reference_outputs(self.module, func, n_items,
                                          self.settings.seed, stimulus=stimulus)
        with self._stage("simulate"):
            outcome = simulate_stream(
                netlist,
                stimulus,
                n_items,
                self.output_names(func),
                self.reduction_names(func),
                max_extra_cycles=geometry.latency + 64,
                drain_cycles=geometry.schedule_depth + 4,
            )
        with self._stage("verify"):
            functional = compare_outcome(outcome, reference)
            cycles = self._cycle_legs(geometry, func, outcome)
        return {
            "backend": "pyrtl",
            "function": func.name,
            "items": n_items,
            "seed": self.settings.seed,
            "geometry": {
                "window": geometry.window,
                "datapath_depth": geometry.datapath_depth,
                "schedule_depth": geometry.schedule_depth,
                "latency": geometry.latency,
            },
            "netlist": netlist.stats(),
            "lint": lint,
            "functional": functional,
            "cycles": cycles,
            "ok": not lint and functional["ok"] and cycles["ok"],
        }


class ElaborateFlow(SynthFlow):
    """Parse, lint and structurally elaborate every generated file."""

    name = "rtl-elab"
    VERSION = 1

    def execute(self) -> dict:
        files = self.cached_artifacts()
        report: dict[str, dict] = {}
        clean = True
        for name, text in sorted(files.items()):
            if not name.endswith(".v"):
                continue
            problems = lint_source(text)
            clean = clean and not problems
            modules = {}
            if not problems:
                for module in parse_modules(text):
                    modules[module.name] = elaborate(module).stats()
            report[name] = {"lint": problems, "modules": modules}
        return {"files": report, "ok": clean}


# ----------------------------------------------------------------------
# External adapters (PATH-discovered, cleanly skipped when absent)
# ----------------------------------------------------------------------


class IcarusSimFlow(SimFlow):
    """Simulate the generated testbench with Icarus Verilog.

    Drives the *same* seeded stimulus as the pure-Python backend (it is
    baked into the generated testbench) and checks the machine-parsable
    ``RESULT`` lines against the same Python reference.
    """

    name = "iverilog-sim"
    VERSION = 1

    @classmethod
    def available(cls) -> bool:
        return find_tool("iverilog") is not None and find_tool("vvp") is not None

    def artifacts(self) -> dict[str, str]:
        files = super().artifacts()
        func = self.target_function()
        files[f"tb_{_sanitize(func.name)}.v"] = generate_testbench(
            self.module, function_name=func.name, n_items=self.n_items,
            seed=self.settings.seed,
        )
        return files

    def execute(self) -> dict:
        iverilog = require_tool("iverilog")
        vvp = require_tool("vvp")
        func = self.target_function()
        ident = _sanitize(func.name)
        n_items = self.n_items
        files = self.cached_artifacts()
        with tempfile.TemporaryDirectory(prefix="tybec-iverilog-") as tmp:
            tmp_path = Path(tmp)
            for name, text in files.items():
                (tmp_path / name).write_text(text)
            compile_result = run_tool(
                [iverilog, "-g2001", "-o", "sim.vvp",
                 f"tb_{ident}.v", f"{ident}_kernel.v"],
                cwd=tmp_path,
            )
            if not compile_result.ok:
                return {"backend": "iverilog", "ok": False,
                        "error": compile_result.stderr.strip().splitlines()[-5:]}
            sim_result = run_tool([vvp, "sim.vvp"], cwd=tmp_path)

        outputs, reductions, cycles = parse_result_lines(sim_result.stdout)
        reference = reference_outputs(self.module, func, n_items, self.settings.seed)
        collected = {
            name: [values.get(i) for i in range(n_items)]
            for name, values in outputs.items()
        }
        outcome = RTLSimOutcome(
            n_items=n_items,
            first_output_cycle=0,
            last_output_cycle=(cycles or 0) - 1,
            outputs=collected,
            reductions={k: v for k, v in reductions.items() if v is not None},
        )
        functional = compare_outcome(outcome, reference)
        return {
            "backend": "iverilog",
            "function": func.name,
            "items": n_items,
            "seed": self.settings.seed,
            "done_cycles": cycles,
            "functional": functional,
            "ok": sim_result.ok and functional["ok"],
        }


class VerilatorLintFlow(SynthFlow):
    """``verilator --lint-only`` over the generated kernel modules."""

    name = "verilator-lint"
    VERSION = 1

    @classmethod
    def available(cls) -> bool:
        return find_tool("verilator") is not None

    def execute(self) -> dict:
        verilator = require_tool("verilator")
        files = self.cached_artifacts()
        report: dict[str, dict] = {}
        clean = True
        with tempfile.TemporaryDirectory(prefix="tybec-verilator-") as tmp:
            tmp_path = Path(tmp)
            for name, text in files.items():
                (tmp_path / name).write_text(text)
            for name in sorted(files):
                if not name.endswith("_kernel.v"):
                    continue
                result = run_tool(
                    [verilator, "--lint-only", "-Wno-fatal", name], cwd=tmp_path)
                clean = clean and result.ok
                report[name] = {
                    "returncode": result.returncode,
                    "warnings": result.stderr.strip().splitlines()[:20],
                }
        return {"backend": "verilator", "files": report, "ok": clean}


class YosysSynthFlow(SynthFlow):
    """Elaborate the generated design with yosys and parse ``stat``."""

    name = "yosys-synth"
    VERSION = 1

    _STAT_RE = re.compile(r"Number of (?P<what>wires|cells|processes):\s+(?P<count>\d+)")

    @classmethod
    def available(cls) -> bool:
        return find_tool("yosys") is not None

    def execute(self) -> dict:
        yosys = require_tool("yosys")
        files = self.cached_artifacts()
        sources = [name for name in sorted(files) if name.endswith(".v")]
        with tempfile.TemporaryDirectory(prefix="tybec-yosys-") as tmp:
            tmp_path = Path(tmp)
            for name, text in files.items():
                (tmp_path / name).write_text(text)
            script = "; ".join(
                [f"read_verilog {name}" for name in sources]
                + ["hierarchy -check", "proc", "stat"]
            )
            result = run_tool([yosys, "-QT", "-p", script], cwd=tmp_path)
        stats = {m.group("what"): int(m.group("count"))
                 for m in self._STAT_RE.finditer(result.stdout)}
        return {
            "backend": "yosys",
            "stats": stats,
            "log_tail": result.stdout.strip().splitlines()[-5:],
            "ok": result.ok,
        }


#: flow registry for the CLI (name -> class)
FLOW_CLASSES: dict[str, type[Flow]] = {
    cls.name: cls
    for cls in (RTLSimFlow, ElaborateFlow, IcarusSimFlow,
                VerilatorLintFlow, YosysSynthFlow)
}


def default_sim_flow(backend: str = "pyrtl") -> type[SimFlow]:
    """The sim-flow class a backend name selects."""
    if backend in ("pyrtl", "python"):
        return RTLSimFlow
    if backend == "iverilog":
        return IcarusSimFlow
    raise KeyError(f"unknown simulation backend {backend!r}; "
                   "expected 'pyrtl' or 'iverilog'")
