"""A parser for the synthesizeable Verilog subset our generator emits.

The flow-orchestration subsystem closes the loop from generated HDL back
to the cost model *without* requiring an external simulator, which means
it must read the Verilog text the same way a tool would — elaborating the
:class:`~repro.compiler.codegen.verilog.VerilogGenerator` output from its
emitted source, not from the in-memory IR it was generated from.  A
codegen bug (a wrong operator, a missing delay stage, an undeclared wire)
is therefore visible to the flows, exactly as it would be to iverilog.

The grammar is the structural subset the generator produces:

* ``module``/``endmodule`` with an ANSI port list;
* ``wire``/``reg`` declarations, one-dimensional ``reg`` arrays,
  ``integer`` loop variables;
* continuous assignments (``assign x = e;`` and ``wire [..] x = e;``);
* ``always @(posedge clk)`` processes containing non-blocking
  assignments, ``if``/``else``, ``begin``/``end`` blocks and the
  shift-register ``for`` loop idiom;
* module instantiations with named port connections (parsed structurally;
  hierarchical simulation is out of scope for the pure-Python backend);
* expressions over identifiers, sized/unsized literals, bit- and
  part-selects, array indexing, concatenation, the usual operators,
  ``?:`` and ``$signed``.

Anything outside the subset raises :class:`VerilogParseError` with the
offending line — a loud failure, never a silent mis-simulation.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

__all__ = [
    "VerilogParseError",
    "Expr",
    "Statement",
    "PortDecl",
    "NetDecl",
    "ArrayDecl",
    "ContinuousAssign",
    "AlwaysBlock",
    "Instance",
    "VerilogModule",
    "parse_modules",
    "parse_module_text",
]


class VerilogParseError(ValueError):
    """The source stepped outside the supported structural subset."""


# ----------------------------------------------------------------------
# Tokenizer
# ----------------------------------------------------------------------

_TOKEN_RE = re.compile(
    r"""
      (?P<sized>\d+\s*'\s*[bdhBDH]\s*[0-9a-fA-F_xXzZ]+)
    | (?P<number>\d+\.\d+|\d+)
    | (?P<ident>\$?[A-Za-z_][A-Za-z_0-9$]*)
    | (?P<op><<<|>>>|<<|>>|<=|>=|==|!=|&&|\|\||[-+*/%&|^~!<>=?:,;()\[\]{}.#@])
    | (?P<ws>\s+)
    """,
    re.VERBOSE,
)

_COMMENT_LINE = re.compile(r"//[^\n]*")
_COMMENT_BLOCK = re.compile(r"/\*.*?\*/", re.DOTALL)


@dataclass(frozen=True)
class Token:
    kind: str  # 'sized' | 'number' | 'ident' | 'op'
    text: str
    line: int


def tokenize(source: str) -> list[Token]:
    text = _COMMENT_BLOCK.sub(lambda m: re.sub(r"[^\n]", " ", m.group()), source)
    text = _COMMENT_LINE.sub("", text)
    tokens: list[Token] = []
    line = 1
    pos = 0
    while pos < len(text):
        m = _TOKEN_RE.match(text, pos)
        if m is None:
            snippet = text[pos : pos + 20].splitlines()[0]
            raise VerilogParseError(f"line {line}: cannot tokenize at {snippet!r}")
        pos = m.end()
        kind = m.lastgroup
        value = m.group()
        if kind == "ws":
            line += value.count("\n")
            continue
        tokens.append(Token(kind, value, line))
    return tokens


# ----------------------------------------------------------------------
# AST
# ----------------------------------------------------------------------

#: expressions are nested tuples:
#:   ("const", value, width | None)
#:   ("id", name)
#:   ("index", name, index_expr)            array element / bit select
#:   ("slice", name, msb, lsb)              constant part select
#:   ("concat", [exprs...])
#:   ("unary", op, expr)
#:   ("binary", op, left, right)
#:   ("ternary", cond, then, else)
#:   ("signed", expr)
#:   ("call", name, [exprs...])
Expr = tuple

#: statements are nested tuples:
#:   ("nba", target_expr, rhs)              non-blocking assignment
#:   ("blocking", name, rhs)                loop-variable assignment
#:   ("if", cond, then_stmts, else_stmts)
#:   ("for", init_stmt, cond, update_stmt, body_stmts)
Statement = tuple


@dataclass(frozen=True)
class PortDecl:
    direction: str  # 'input' | 'output'
    net_kind: str   # 'wire' | 'reg'
    width: int
    name: str


@dataclass(frozen=True)
class NetDecl:
    net_kind: str   # 'wire' | 'reg' | 'integer'
    width: int
    name: str


@dataclass(frozen=True)
class ArrayDecl:
    width: int
    name: str
    size: int


@dataclass(frozen=True)
class ContinuousAssign:
    target: str
    expr: Expr
    line: int


@dataclass(frozen=True)
class AlwaysBlock:
    statements: tuple
    line: int


@dataclass(frozen=True)
class Instance:
    module: str
    name: str
    connections: tuple  # of (port, Expr)
    line: int


@dataclass
class VerilogModule:
    name: str
    ports: list[PortDecl] = field(default_factory=list)
    #: declarations, assigns, always blocks and instances in source order
    items: list = field(default_factory=list)

    @property
    def nets(self) -> dict[str, NetDecl]:
        return {d.name: d for d in self.items if isinstance(d, NetDecl)}

    @property
    def arrays(self) -> dict[str, ArrayDecl]:
        return {d.name: d for d in self.items if isinstance(d, ArrayDecl)}

    @property
    def assigns(self) -> list[ContinuousAssign]:
        return [d for d in self.items if isinstance(d, ContinuousAssign)]

    @property
    def always_blocks(self) -> list[AlwaysBlock]:
        return [d for d in self.items if isinstance(d, AlwaysBlock)]

    @property
    def instances(self) -> list[Instance]:
        return [d for d in self.items if isinstance(d, Instance)]

    def port(self, name: str) -> PortDecl | None:
        for port in self.ports:
            if port.name == name:
                return port
        return None

    def inputs(self) -> list[PortDecl]:
        return [p for p in self.ports if p.direction == "input"]

    def outputs(self) -> list[PortDecl]:
        return [p for p in self.ports if p.direction == "output"]


# ----------------------------------------------------------------------
# Parser
# ----------------------------------------------------------------------


class _Parser:
    def __init__(self, tokens: list[Token]):
        self.tokens = tokens
        self.pos = 0

    # -- token plumbing -------------------------------------------------
    def peek(self, ahead: int = 0) -> Token | None:
        index = self.pos + ahead
        return self.tokens[index] if index < len(self.tokens) else None

    def next(self) -> Token:
        token = self.peek()
        if token is None:
            raise VerilogParseError("unexpected end of input")
        self.pos += 1
        return token

    def expect(self, text: str) -> Token:
        token = self.next()
        if token.text != text:
            raise VerilogParseError(
                f"line {token.line}: expected {text!r}, got {token.text!r}")
        return token

    def accept(self, text: str) -> bool:
        token = self.peek()
        if token is not None and token.text == text:
            self.pos += 1
            return True
        return False

    def expect_ident(self) -> Token:
        token = self.next()
        if token.kind != "ident":
            raise VerilogParseError(
                f"line {token.line}: expected identifier, got {token.text!r}")
        return token

    # -- structure ------------------------------------------------------
    def parse_modules(self) -> list[VerilogModule]:
        modules = []
        while self.peek() is not None:
            token = self.peek()
            if token.text == "`define":  # pragma: no cover - defensive
                raise VerilogParseError(f"line {token.line}: unexpected directive")
            modules.append(self.parse_module())
        return modules

    def parse_module(self) -> VerilogModule:
        self.expect("module")
        name = self.expect_ident().text
        module = VerilogModule(name=name)
        self.expect("(")
        if not self.accept(")"):
            while True:
                module.ports.append(self._parse_port())
                if self.accept(")"):
                    break
                self.expect(",")
        self.expect(";")
        while not self.accept("endmodule"):
            self._parse_item(module)
        return module

    def _parse_range(self) -> int:
        """``[msb:lsb]`` -> width; absent range -> width 1."""
        if not self.accept("["):
            return 1
        msb = self._parse_const_int()
        self.expect(":")
        lsb = self._parse_const_int()
        self.expect("]")
        if lsb != 0:
            raise VerilogParseError(f"only [msb:0] ranges supported, got [{msb}:{lsb}]")
        return msb + 1

    def _parse_const_int(self) -> int:
        token = self.next()
        if token.kind == "number":
            return int(token.text)
        if token.kind == "sized":
            return _sized_value(token)[0]
        raise VerilogParseError(
            f"line {token.line}: expected constant, got {token.text!r}")

    def _parse_port(self) -> PortDecl:
        token = self.next()
        if token.text not in ("input", "output"):
            raise VerilogParseError(
                f"line {token.line}: expected port direction, got {token.text!r}")
        direction = token.text
        net_kind = "wire"
        if self.peek() is not None and self.peek().text in ("wire", "reg"):
            net_kind = self.next().text
        width = self._parse_range()
        name = self.expect_ident().text
        return PortDecl(direction, net_kind, width, name)

    def _parse_item(self, module: VerilogModule) -> None:
        token = self.peek()
        if token is None:
            raise VerilogParseError("unexpected end of input inside module")
        if token.text in ("wire", "reg"):
            self._parse_net_decl(module)
        elif token.text == "integer":
            self.next()
            name = self.expect_ident().text
            module.items.append(NetDecl("integer", 32, name))
            self.expect(";")
        elif token.text == "assign":
            line = self.next().line
            target = self.expect_ident().text
            self.expect("=")
            expr = self._parse_expr()
            self.expect(";")
            module.items.append(ContinuousAssign(target, expr, line))
        elif token.text == "always":
            self._parse_always(module)
        elif token.kind == "ident":
            self._parse_instance(module)
        else:
            raise VerilogParseError(
                f"line {token.line}: unexpected token {token.text!r} in module body")

    def _parse_net_decl(self, module: VerilogModule) -> None:
        kind = self.next().text  # wire | reg
        width = self._parse_range()
        name = self.expect_ident().text
        if self.accept("["):  # one-dimensional array: [0:size-1]
            low = self._parse_const_int()
            self.expect(":")
            high = self._parse_const_int()
            self.expect("]")
            self.expect(";")
            if kind != "reg" or low != 0:
                raise VerilogParseError(f"unsupported array declaration for {name!r}")
            module.items.append(ArrayDecl(width, name, high + 1))
            return
        if self.accept("="):  # wire with initialiser = continuous assign
            line = self.peek().line if self.peek() else 0
            expr = self._parse_expr()
            self.expect(";")
            module.items.append(NetDecl(kind, width, name))
            module.items.append(ContinuousAssign(name, expr, line))
            return
        self.expect(";")
        module.items.append(NetDecl(kind, width, name))

    def _parse_always(self, module: VerilogModule) -> None:
        line = self.expect("always").line
        self.expect("@")
        self.expect("(")
        edge = self.next()
        if edge.text != "posedge":
            raise VerilogParseError(
                f"line {edge.line}: only posedge-clocked processes supported")
        clock = self.expect_ident().text
        if clock != "clk":
            raise VerilogParseError(f"line {edge.line}: unexpected clock {clock!r}")
        self.expect(")")
        statements = self._parse_statement_or_block()
        module.items.append(AlwaysBlock(tuple(statements), line))

    def _parse_instance(self, module: VerilogModule) -> None:
        mod_token = self.expect_ident()
        inst_name = self.expect_ident().text
        self.expect("(")
        connections = []
        if not self.accept(")"):
            while True:
                self.expect(".")
                port = self.expect_ident().text
                self.expect("(")
                expr = self._parse_expr()
                self.expect(")")
                connections.append((port, expr))
                if self.accept(")"):
                    break
                self.expect(",")
        self.expect(";")
        module.items.append(
            Instance(mod_token.text, inst_name, tuple(connections), mod_token.line))

    # -- statements -----------------------------------------------------
    def _parse_statement_or_block(self) -> list[Statement]:
        if self.accept("begin"):
            statements = []
            while not self.accept("end"):
                statements.extend(self._parse_statement())
            return statements
        return self._parse_statement()

    def _parse_statement(self) -> list[Statement]:
        token = self.peek()
        if token is None:
            raise VerilogParseError("unexpected end of input in statement")
        if token.text == "begin":
            return self._parse_statement_or_block()
        if token.text == "if":
            self.next()
            self.expect("(")
            cond = self._parse_expr()
            self.expect(")")
            then_stmts = self._parse_statement_or_block()
            else_stmts: list[Statement] = []
            if self.accept("else"):
                else_stmts = self._parse_statement_or_block()
            return [("if", cond, tuple(then_stmts), tuple(else_stmts))]
        if token.text == "for":
            self.next()
            self.expect("(")
            init = self._parse_blocking()
            self.expect(";")
            cond = self._parse_expr()
            self.expect(";")
            update = self._parse_blocking()
            self.expect(")")
            body = self._parse_statement_or_block()
            return [("for", init, cond, update, tuple(body))]
        # assignment: lvalue <= expr ;   or   lvalue = expr ;
        target = self._parse_lvalue()
        op = self.next()
        if op.text == "<=":
            rhs = self._parse_expr()
            self.expect(";")
            return [("nba", target, rhs)]
        if op.text == "=":
            if target[0] != "id":
                raise VerilogParseError(
                    f"line {op.line}: blocking assignment to non-scalar target")
            rhs = self._parse_expr()
            self.expect(";")
            return [("blocking", target[1], rhs)]
        raise VerilogParseError(
            f"line {op.line}: expected assignment operator, got {op.text!r}")

    def _parse_blocking(self) -> Statement:
        name = self.expect_ident().text
        self.expect("=")
        return ("blocking", name, self._parse_expr())

    def _parse_lvalue(self) -> Expr:
        name = self.expect_ident().text
        if self.accept("["):
            index = self._parse_expr()
            self.expect("]")
            return ("index", name, index)
        return ("id", name)

    # -- expressions ----------------------------------------------------
    def _parse_expr(self) -> Expr:
        return self._parse_ternary()

    def _parse_ternary(self) -> Expr:
        cond = self._parse_binary(0)
        if self.accept("?"):
            then = self._parse_expr()
            self.expect(":")
            other = self._parse_expr()
            return ("ternary", cond, then, other)
        return cond

    _PRECEDENCE = [
        ("||",),
        ("&&",),
        ("|",),
        ("^",),
        ("&",),
        ("==", "!="),
        ("<", "<=", ">", ">="),
        ("<<", ">>", ">>>"),
        ("+", "-"),
        ("*", "/", "%"),
    ]

    def _parse_binary(self, level: int) -> Expr:
        if level >= len(self._PRECEDENCE):
            return self._parse_unary()
        expr = self._parse_binary(level + 1)
        ops = self._PRECEDENCE[level]
        while True:
            token = self.peek()
            if token is None or token.text not in ops:
                return expr
            self.next()
            right = self._parse_binary(level + 1)
            expr = ("binary", token.text, expr, right)

    def _parse_unary(self) -> Expr:
        token = self.peek()
        if token is not None and token.text in ("~", "-", "!"):
            self.next()
            return ("unary", token.text, self._parse_unary())
        return self._parse_primary()

    def _parse_primary(self) -> Expr:
        token = self.next()
        if token.text == "(":
            expr = self._parse_expr()
            self.expect(")")
            return expr
        if token.text == "{":
            parts = [self._parse_expr()]
            while self.accept(","):
                parts.append(self._parse_expr())
            self.expect("}")
            return ("concat", parts)
        if token.kind == "sized":
            value, width = _sized_value(token)
            return ("const", value, width)
        if token.kind == "number":
            if "." in token.text:
                raise VerilogParseError(
                    f"line {token.line}: real literals are not synthesizeable")
            return ("const", int(token.text), None)
        if token.kind == "ident":
            name = token.text
            if name == "$signed":
                self.expect("(")
                inner = self._parse_expr()
                self.expect(")")
                return ("signed", inner)
            if self.peek() is not None and self.peek().text == "(":
                self.next()
                args = []
                if not self.accept(")"):
                    args.append(self._parse_expr())
                    while self.accept(","):
                        args.append(self._parse_expr())
                    self.expect(")")
                return ("call", name, args)
            if self.accept("["):
                first = self._parse_expr()
                if self.accept(":"):
                    second = self._parse_expr()
                    self.expect("]")
                    msb = _require_const(first, token)
                    lsb = _require_const(second, token)
                    return ("slice", name, msb, lsb)
                self.expect("]")
                return ("index", name, first)
            return ("id", name)
        raise VerilogParseError(
            f"line {token.line}: unexpected token {token.text!r} in expression")


def _require_const(expr: Expr, token: Token) -> int:
    if expr[0] != "const":
        raise VerilogParseError(
            f"line {token.line}: part-select bounds must be constant")
    return expr[1]


def _sized_value(token: Token) -> tuple[int, int]:
    text = token.text.replace(" ", "").replace("_", "")
    width_text, rest = text.split("'", 1)
    base, digits = rest[0].lower(), rest[1:]
    if any(c in "xXzZ" for c in digits):
        raise VerilogParseError(
            f"line {token.line}: x/z literals are not supported ({token.text!r})")
    radix = {"b": 2, "d": 10, "h": 16}[base]
    return int(digits, radix), int(width_text)


# ----------------------------------------------------------------------
# Entry points
# ----------------------------------------------------------------------


def parse_modules(source: str) -> list[VerilogModule]:
    """Parse Verilog source into the modules it defines."""
    return _Parser(tokenize(source)).parse_modules()


def parse_module_text(source: str, name: str | None = None) -> VerilogModule:
    """Parse source and return one module (by name, or the only one)."""
    modules = parse_modules(source)
    if not modules:
        raise VerilogParseError("source defines no module")
    if name is None:
        if len(modules) > 1:
            raise VerilogParseError(
                f"source defines {len(modules)} modules; pass a name")
        return modules[0]
    for module in modules:
        if module.name == name:
            return module
    raise VerilogParseError(
        f"no module named {name!r}; found {[m.name for m in modules]}")
