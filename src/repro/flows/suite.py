"""Suite-scale RTL flows: the whole kernel grid, one canonical report.

:func:`run_flow_suite` batches a :class:`~repro.suite.runner.SuiteConfig`
grid through the PR-1 exploration engine (serial or process pool — the
costed sweep anchors the grid and warms the family caches), reduces the
kernel x device x form x lane points to their unique *RTL families*
(kernel, lanes, grid — the coordinates that change the generated HDL or
the stream it processes), runs the pure-Python :class:`RTLSimFlow` on
every family (optionally over a worker pool) and folds everything into a
canonical, version-stamped ``repro-flow-report/1`` with the same
determinism guarantees as the suite and validation reports: sorted keys,
no wall-clock fields, integers everywhere.

The per-kernel goldens live in ``tests/golden/flows`` and are recorded /
checked exactly like the PR-2 suite goldens (``tybec suite record-golden
--flows``); the CI ``flow-smoke`` job re-runs the grid and gates on them.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from pathlib import Path

from repro.compiler.codegen.testbench import DEFAULT_STIMULUS_SEED
from repro.explore.engine import SweepResult
from repro.flows.base import FlowSettings
from repro.flows.flows import RTLSimFlow
from repro.kernels import get_kernel
from repro.suite.diff import FieldDiff
from repro.suite.golden import (
    diff_kernel_goldens,
    golden_config,
    write_kernel_goldens,
)
from repro.suite.report import FLOW_SCHEMA, SuiteReport
from repro.suite.runner import SuiteConfig, WorkloadSuite

__all__ = [
    "FLOW_SCHEMA",
    "DEFAULT_MAX_ITEMS",
    "FlowFamily",
    "FlowReport",
    "FlowSuiteRun",
    "run_flow_suite",
    "flow_golden_dir",
    "run_golden_flows",
    "record_flow_goldens",
    "check_flow_goldens",
    "verilog_snapshot_dir",
    "kernel_verilog_bundle",
    "record_verilog_snapshots",
]

#: cap on work items streamed per family; bounds RTL simulation time on
#: full-size grids while leaving tiny (golden) grids exact
DEFAULT_MAX_ITEMS = 512


@dataclass(frozen=True)
class FlowFamily:
    """One unique RTL verification job: (kernel, lanes, grid) plus the
    per-lane stream length it is simulated with."""

    kernel: str
    lanes: int
    grid: tuple[int, ...]
    n_items: int
    seed: int

    @property
    def key(self) -> str:
        return f"l{self.lanes}"


class FlowReport(SuiteReport):
    """A canonical flow report (same shell as a suite report)."""

    @property
    def flow(self) -> dict:
        return self.payload.get("flow", {})

    def kernel_payload(self, name: str) -> dict:
        payload = super().kernel_payload(name)
        payload["flow"] = self.payload["flow"]
        return payload


@dataclass
class FlowSuiteRun:
    """Outcome of one suite-scale flow run."""

    report: FlowReport
    #: kernel -> family key -> RTLSimFlow payload
    records: dict[str, dict[str, dict]]
    sweep: SweepResult
    #: wall seconds spent in the RTL flows alone (outside the report)
    flow_seconds: float
    #: aggregated per-stage wall seconds over every flow (empty on
    #: cache-served runs); outside the canonical report, like sweep stats
    stage_seconds: dict = None  # type: ignore[assignment]

    @property
    def families(self) -> int:
        return sum(len(records) for records in self.records.values())

    @property
    def failures(self) -> list[tuple[str, str]]:
        return [
            (kernel, key)
            for kernel, records in self.records.items()
            for key, payload in records.items()
            if not payload.get("ok")
        ]

    @property
    def ok(self) -> bool:
        return not self.failures

    @property
    def simulated_items(self) -> int:
        return sum(payload.get("items", 0)
                   for records in self.records.values()
                   for payload in records.values())

    @property
    def items_per_second(self) -> float:
        if self.flow_seconds <= 0:
            return 0.0
        return self.simulated_items / self.flow_seconds

    @property
    def families_per_second(self) -> float:
        if self.flow_seconds <= 0:
            return 0.0
        return self.families / self.flow_seconds


def _family_payload(family: FlowFamily) -> tuple[dict, dict]:
    """Worker entry point: verify one RTL family (pure function).

    Returns ``(payload, stage_seconds)`` — the payload is deterministic,
    the stage timings are measurement and stay out of the report.
    """
    module = get_kernel(family.kernel).build_module(
        lanes=family.lanes, grid=family.grid)
    flow = RTLSimFlow(
        module,
        FlowSettings(n_items=family.n_items, seed=family.seed),
    )
    result = flow.run()
    return result.payload, dict(result.stage_seconds or {})


def _families_for(config: SuiteConfig, name: str, entries, seed: int,
                  max_items: int) -> list[FlowFamily]:
    workload = config.workload_for(name)
    lanes = sorted({entry.point.lanes for entry in entries})
    families = []
    for lane_count in lanes:
        per_lane = max(1, workload.global_size // lane_count)
        families.append(
            FlowFamily(
                kernel=name,
                lanes=lane_count,
                grid=workload.grid,
                n_items=min(per_lane, max_items),
                seed=seed,
            )
        )
    return families


def run_flow_suite(
    config: SuiteConfig | None = None,
    backend=None,
    *,
    seed: int = DEFAULT_STIMULUS_SEED,
    max_items: int = DEFAULT_MAX_ITEMS,
    jobs: int | None = None,
) -> FlowSuiteRun:
    """Cost a suite grid, then RTL-verify every unique design family.

    ``backend`` selects the costing backend; ``jobs`` fans the RTL
    simulations themselves over worker processes.  Flow payloads are pure
    functions of (kernel, lanes, grid, n_items, seed), so every
    combination produces byte-identical reports.
    """
    import time

    suite = WorkloadSuite(config or SuiteConfig(), backend)
    spaces, sweep = suite.sweep()
    slices = suite.kernel_entries(spaces, sweep)

    all_families: list[FlowFamily] = []
    per_kernel: dict[str, list[FlowFamily]] = {}
    for name, entries in slices.items():
        families = _families_for(suite.config, name, entries, seed, max_items)
        per_kernel[name] = families
        all_families.extend(families)

    started = time.perf_counter()
    if jobs and jobs > 1 and len(all_families) > 1:
        workers = min(jobs, os.cpu_count() or 1, len(all_families))
        with ProcessPoolExecutor(max_workers=workers) as executor:
            results = list(executor.map(_family_payload, all_families))
    else:
        results = [_family_payload(family) for family in all_families]
    flow_seconds = time.perf_counter() - started
    by_family = dict(zip(all_families, (payload for payload, _ in results)))
    stage_seconds: dict[str, float] = {}
    for _, stages in results:
        for stage, seconds in stages.items():
            stage_seconds[stage] = stage_seconds.get(stage, 0.0) + seconds

    kernels: dict[str, dict] = {}
    records: dict[str, dict[str, dict]] = {}
    families_total = 0
    ok_total = 0
    max_gap = 0
    for name, entries in slices.items():
        workload = suite.config.workload_for(name)
        family_payloads = {f.key: by_family[f] for f in per_kernel[name]}
        records[name] = family_payloads
        families_total += len(family_payloads)
        ok_total += sum(1 for p in family_payloads.values() if p.get("ok"))
        for payload in family_payloads.values():
            cycles = payload.get("cycles", {})
            max_gap = max(max_gap, cycles.get("gap_analytic", 0),
                          cycles.get("gap_stepped", 0))
        kernels[name] = {
            "workload": {"grid": list(workload.grid),
                         "iterations": workload.iterations},
            "points": len(entries),
            "families": {
                f.key: {"lanes": f.lanes, "items": f.n_items,
                        "result": by_family[f]}
                for f in per_kernel[name]
            },
        }

    payload = {
        "schema": FLOW_SCHEMA,
        "config": suite.config.as_dict(),
        "flow": {
            "backend": "pyrtl",
            "seed": seed,
            "max_items": max_items,
        },
        "kernels": kernels,
        "totals": {
            "kernels": len(kernels),
            "points": sweep.evaluated,
            "families": families_total,
            "ok": ok_total,
            "failing": families_total - ok_total,
            "max_cycle_gap": max_gap,
        },
    }
    return FlowSuiteRun(
        report=FlowReport(payload),
        records=records,
        sweep=sweep,
        flow_seconds=flow_seconds,
        stage_seconds=stage_seconds,
    )


# ----------------------------------------------------------------------
# The flow golden harness (mirrors repro.suite.golden)
# ----------------------------------------------------------------------


def flow_golden_dir(root: Path | str | None = None) -> Path:
    """``tests/golden/flows`` under the repo root."""
    if root is not None:
        return Path(root)
    # src/repro/flows/suite.py -> repo root is three parents above src/
    return Path(__file__).resolve().parents[3] / "tests" / "golden" / "flows"


def run_golden_flows(kernels: tuple[str, ...] = ()) -> FlowReport:
    """RTL-verify the golden suite configuration."""
    return run_flow_suite(golden_config(kernels)).report


def record_flow_goldens(directory: Path | str | None = None,
                        kernels: tuple[str, ...] = ()) -> list[Path]:
    """(Re-)write one flow golden per kernel; returns written paths."""
    return write_kernel_goldens(run_golden_flows(kernels),
                                flow_golden_dir(directory))


# ----------------------------------------------------------------------
# Golden Verilog snapshots (codegen text pinning)
# ----------------------------------------------------------------------

#: the pinned snapshot configuration: two lanes exercise the compute
#: unit's replication, the tiny golden grid keeps offset spans small,
#: and the fixed item count pins the testbench's stimulus block
SNAPSHOT_LANES = 2
SNAPSHOT_ITEMS = 64


def verilog_snapshot_dir(root: Path | str | None = None) -> Path:
    """``tests/golden/verilog`` under the repo root."""
    if root is not None:
        return Path(root)
    return Path(__file__).resolve().parents[3] / "tests" / "golden" / "verilog"


def kernel_verilog_bundle(kernel_name: str) -> str:
    """Every generated file of one kernel, concatenated deterministically.

    The bundle covers the kernel pipeline modules, the compute unit, the
    configuration include and the seeded testbench — the full emitted
    surface a codegen change can move.
    """
    from repro.compiler.codegen.testbench import generate_testbench
    from repro.compiler.codegen.verilog import VerilogGenerator
    from repro.suite.runner import tiny_grid

    kernel = get_kernel(kernel_name)
    grid = tiny_grid(kernel.default_grid)
    module = kernel.build_module(lanes=SNAPSHOT_LANES, grid=grid)
    generator = VerilogGenerator(module)
    files = dict(generator.generate_all())
    files["testbench.v"] = generate_testbench(module, n_items=SNAPSHOT_ITEMS)
    parts = [f"// golden Verilog snapshot for kernel {kernel_name!r} "
             f"(lanes {SNAPSHOT_LANES}, grid {grid}, {SNAPSHOT_ITEMS} items)\n"]
    for name in sorted(files):
        parts.append(f"// ==== file: {name} ====\n{files[name]}")
    return "\n".join(parts)


def record_verilog_snapshots(directory: Path | str | None = None,
                             kernels: tuple[str, ...] = ()) -> list[Path]:
    """(Re-)write one golden Verilog snapshot per kernel."""
    from repro.kernels import REGISTRY

    directory = verilog_snapshot_dir(directory)
    directory.mkdir(parents=True, exist_ok=True)
    names = sorted(k.lower() for k in kernels) if kernels else REGISTRY.names()
    written = []
    for name in names:
        path = directory / f"{name}.v"
        path.write_text(kernel_verilog_bundle(name))
        written.append(path)
    return written


def check_flow_goldens(directory: Path | str | None = None,
                       kernels: tuple[str, ...] = (),
                       rtol: float = 0.0) -> dict[str, list[FieldDiff]]:
    """Re-run the RTL flows and diff against the recorded goldens."""
    return diff_kernel_goldens(
        run_golden_flows(kernels), flow_golden_dir(directory), FLOW_SCHEMA,
        "flow golden missing — run `suite record-golden --flows`", rtol=rtol)
